//===- bench/microbench_hotloop.cpp - Hot-loop MIPS microbench ------------==//
//
// Measures raw single-thread simulation throughput — host MIPS (millions of
// simulated dynamic instructions per wall-clock second) — for every cell of
// the fig3 (SPECjvm98 benchmark x scheme) grid, driving System::run()
// directly (no result cache, no thread pool) so the number is the kernel's
// step/consume pipeline and nothing else. Emits BENCH_hotloop.json so every
// perf PR has a measured trajectory.
//
// Modes:
//   microbench_hotloop              full grid at --budget (default 20M)
//                                   instructions per cell, preceded by a
//                                   smoke-budget pass so the emitted JSON
//                                   carries a reference value for --smoke,
//                                   and by a traced smoke pass recording
//                                   the DYNACE_TRACE overhead
//                                   (traced_geomean_mips / trace_overhead_pct
//                                   in the JSON);
//   microbench_hotloop --smoke      tight-budget pass (default 2M, or
//                                   DYNACE_INSTR_BUDGET) compared against
//                                   the committed baseline JSON; exits
//                                   non-zero when geomean MIPS regressed
//                                   more than 20% (the ctest perf gate).
//                                   Tracing is forced off so the gate
//                                   always measures the disabled path.
//
// Flags: --budget N, --reps N, --out PATH, --baseline PATH, --min-ratio R.
//
// Each cell is timed --reps times (default 3 full / 1 smoke) and the
// fastest repetition is reported: simulated work is deterministic, so
// run-to-run spread is host noise and the minimum time is the best
// estimate of kernel capability on a shared machine.
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"
#include "sim/System.h"
#include "support/Env.h"
#include "workloads/WorkloadGenerator.h"
#include "workloads/WorkloadProfile.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace dynace;

#ifndef DYNACE_BUILD_TYPE
#define DYNACE_BUILD_TYPE "unknown"
#endif
#ifndef DYNACE_BUILD_FLAGS
#define DYNACE_BUILD_FLAGS ""
#endif
#ifndef DYNACE_BENCH_BASELINE
#define DYNACE_BENCH_BASELINE "BENCH_hotloop.json"
#endif

namespace {

struct Cell {
  std::string Benchmark;
  Scheme SchemeKind = Scheme::Baseline;
  uint64_t Instructions = 0;
  double Seconds = 0.0;
  double Mips = 0.0;
};

constexpr uint64_t kFullBudget = 20'000'000;
constexpr uint64_t kSmokeBudget = 2'000'000;
constexpr double kDefaultMinRatio = 0.8; ///< Fail below 80% of baseline.

double geomeanMips(const std::vector<Cell> &Cells) {
  if (Cells.empty())
    return 0.0;
  double LogSum = 0.0;
  for (const Cell &C : Cells)
    LogSum += std::log(C.Mips > 0.0 ? C.Mips : 1e-9);
  return std::exp(LogSum / static_cast<double>(Cells.size()));
}

/// Runs the full (benchmark x scheme) grid serially at \p Budget
/// instructions per cell, timing each cell \p Reps times and keeping the
/// fastest repetition; returns one Cell per grid entry.
std::vector<Cell> runGrid(uint64_t Budget, unsigned Reps, bool Verbose) {
  constexpr Scheme Schemes[] = {Scheme::Baseline, Scheme::Bbv,
                                Scheme::Hotspot};
  std::vector<Cell> Cells;
  for (const WorkloadProfile &P : specjvm98Profiles()) {
    // Generation is excluded from the timed region: the kernel under test
    // is step/consume, not the workload generator.
    GeneratedWorkload W = WorkloadGenerator::generate(P);
    for (Scheme S : Schemes) {
      SimulationOptions Opts;
      Opts.SchemeKind = S;
      Opts.MaxInstructions = Budget;
      double Seconds = 0.0;
      uint64_t Instructions = 0;
      for (unsigned Rep = 0; Rep != Reps; ++Rep) {
        System Sys(W.Prog, Opts);
        auto Start = std::chrono::steady_clock::now();
        SimulationResult R = Sys.run();
        double S0 = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - Start)
                        .count();
        if (Rep == 0 || S0 < Seconds) {
          Seconds = S0;
          Instructions = R.Instructions;
        }
      }
      Cell C;
      C.Benchmark = P.Name;
      C.SchemeKind = S;
      C.Instructions = Instructions;
      C.Seconds = Seconds;
      C.Mips = Seconds > 0.0
                   ? static_cast<double>(Instructions) / Seconds / 1e6
                   : 0.0;
      if (Verbose)
        std::fprintf(stderr, "[dynace] hotloop %s/%s: %.1fM instr, %.3fs, "
                             "%.2f MIPS\n",
                     C.Benchmark.c_str(), schemeName(S),
                     static_cast<double>(C.Instructions) / 1e6, C.Seconds,
                     C.Mips);
      Cells.push_back(std::move(C));
    }
  }
  return Cells;
}

void writeJson(std::ostream &OS, uint64_t Budget, uint64_t SmokeBudget,
               unsigned Reps, const std::vector<Cell> &Cells,
               double SmokeGeomean, double TracedGeomean,
               double TraceOverheadPct) {
  char Buf[256];
  OS << "{\n";
  OS << "  \"build_type\": \"" << DYNACE_BUILD_TYPE << "\",\n";
  OS << "  \"build_flags\": \"" << DYNACE_BUILD_FLAGS << "\",\n";
  OS << "  \"budget\": " << Budget << ",\n";
  OS << "  \"reps\": " << Reps << ",\n";
  OS << "  \"smoke_budget\": " << SmokeBudget << ",\n";
  std::snprintf(Buf, sizeof(Buf), "%.4f", SmokeGeomean);
  OS << "  \"smoke_geomean_mips\": " << Buf << ",\n";
  std::snprintf(Buf, sizeof(Buf), "%.4f", TracedGeomean);
  OS << "  \"traced_geomean_mips\": " << Buf << ",\n";
  std::snprintf(Buf, sizeof(Buf), "%.2f", TraceOverheadPct);
  OS << "  \"trace_overhead_pct\": " << Buf << ",\n";
  std::snprintf(Buf, sizeof(Buf), "%.4f", geomeanMips(Cells));
  OS << "  \"geomean_mips\": " << Buf << ",\n";
  OS << "  \"cells\": [\n";
  for (size_t I = 0; I != Cells.size(); ++I) {
    const Cell &C = Cells[I];
    std::snprintf(Buf, sizeof(Buf),
                  "    {\"benchmark\": \"%s\", \"scheme\": \"%s\", "
                  "\"instructions\": %llu, \"seconds\": %.4f, "
                  "\"mips\": %.4f}%s\n",
                  C.Benchmark.c_str(), schemeName(C.SchemeKind),
                  static_cast<unsigned long long>(C.Instructions), C.Seconds,
                  C.Mips, I + 1 == Cells.size() ? "" : ",");
    OS << Buf;
  }
  OS << "  ]\n}\n";
}

/// Minimal extractor for `"Key": <number>` from the baseline JSON (the
/// bench's own output format; not a general JSON parser).
bool findJsonNumber(const std::string &Text, const std::string &Key,
                    double &Out) {
  std::string Needle = "\"" + Key + "\":";
  size_t Pos = Text.find(Needle);
  if (Pos == std::string::npos)
    return false;
  Out = std::strtod(Text.c_str() + Pos + Needle.size(), nullptr);
  return true;
}

/// Minimal extractor for `"Key": "<string>"` from the baseline JSON.
bool findJsonString(const std::string &Text, const std::string &Key,
                    std::string &Out) {
  std::string Needle = "\"" + Key + "\": \"";
  size_t Pos = Text.find(Needle);
  if (Pos == std::string::npos)
    return false;
  size_t Begin = Pos + Needle.size();
  size_t End = Text.find('"', Begin);
  if (End == std::string::npos)
    return false;
  Out = Text.substr(Begin, End - Begin);
  return true;
}

void printHeader(uint64_t Budget, bool Smoke) {
  std::printf("[dynace] microbench_hotloop: build=%s flags=\"%s\" "
              "budget=%llu mode=%s\n",
              DYNACE_BUILD_TYPE, DYNACE_BUILD_FLAGS,
              static_cast<unsigned long long>(Budget),
              Smoke ? "smoke" : "full");
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  uint64_t Budget = 0;
  unsigned Reps = 0;
  std::string OutPath = "BENCH_hotloop.json";
  std::string BaselinePath = DYNACE_BENCH_BASELINE;
  double MinRatio = kDefaultMinRatio;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto NextArg = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Flag);
        std::exit(2);
      }
      return argv[++I];
    };
    if (Arg == "--smoke") {
      Smoke = true;
    } else if (Arg == "--budget") {
      std::optional<uint64_t> B = parseUnsignedInt(NextArg("--budget"));
      if (!B || *B == 0) {
        std::fprintf(stderr, "error: --budget needs a positive integer\n");
        return 2;
      }
      Budget = *B;
    } else if (Arg == "--reps") {
      std::optional<uint64_t> R = parseUnsignedInt(NextArg("--reps"));
      if (!R || *R == 0 || *R > 100) {
        std::fprintf(stderr, "error: --reps needs an integer in [1, 100]\n");
        return 2;
      }
      Reps = static_cast<unsigned>(*R);
    } else if (Arg == "--out") {
      OutPath = NextArg("--out");
    } else if (Arg == "--baseline") {
      BaselinePath = NextArg("--baseline");
    } else if (Arg == "--min-ratio") {
      MinRatio = std::strtod(NextArg("--min-ratio"), nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: microbench_hotloop [--smoke] [--budget N] "
                   "[--reps N] [--out PATH] [--baseline PATH] "
                   "[--min-ratio R]\n");
      return 2;
    }
  }

  if (Budget == 0)
    Budget = envUnsignedOr("DYNACE_INSTR_BUDGET",
                           Smoke ? kSmokeBudget : kFullBudget, 1);
  // Best-of-3 in both modes: on shared hosts a single smoke repetition is
  // noise-dominated (transient neighbor load can halve apparent MIPS and
  // flake the gate); three reps cost ~2s more and keep the minimum honest.
  if (Reps == 0)
    Reps = 3;
  printHeader(Budget, Smoke);

  if (Smoke) {
    // The ctest gate asserts the tracing-DISABLED kernel: force tracing
    // off even if DYNACE_TRACE leaked into the environment, so the number
    // compared against the baseline is always the single-branch path.
    obs::TraceCollector::instance().configure("");

    // Parse the baseline up front so no-baseline / mismatched-build runs
    // measure exactly once.
    bool HaveReference = false;
    double Reference = 0.0;
    std::ifstream In(BaselinePath);
    if (!In) {
      std::printf("[dynace] hotloop smoke: no baseline at %s; skipping "
                  "regression check\n",
                  BaselinePath.c_str());
    } else {
      std::stringstream Ss;
      Ss << In.rdbuf();
      std::string Text = Ss.str();
      // MIPS only compares like for like: a Debug or sanitizer build would
      // "regress" against a Release baseline by construction, not by bug.
      std::string BaselineBuild, BaselineFlags;
      findJsonString(Text, "build_type", BaselineBuild);
      findJsonString(Text, "build_flags", BaselineFlags);
      if (BaselineBuild != DYNACE_BUILD_TYPE ||
          BaselineFlags != DYNACE_BUILD_FLAGS) {
        std::printf("[dynace] hotloop smoke: baseline build '%s' [%s] != "
                    "current '%s' [%s]; skipping regression check\n",
                    BaselineBuild.c_str(), BaselineFlags.c_str(),
                    DYNACE_BUILD_TYPE, DYNACE_BUILD_FLAGS);
      } else if (!findJsonNumber(Text, "smoke_geomean_mips", Reference) &&
                 !findJsonNumber(Text, "geomean_mips", Reference)) {
        std::fprintf(stderr, "error: %s carries no geomean MIPS field\n",
                     BaselinePath.c_str());
        return 1;
      } else {
        HaveReference = Reference > 0.0;
      }
    }

    // Measure, retrying on a miss: shared hosts throttle in windows that
    // outlast best-of-N within a single pass, so one gate sample can land
    // entirely inside a slow window. A real regression fails every attempt;
    // transient contention does not.
    constexpr int kMaxAttempts = 3;
    double Geomean = 0.0;
    double Ratio = 1.0;
    for (int Attempt = 1; Attempt <= kMaxAttempts; ++Attempt) {
      std::vector<Cell> Cells = runGrid(Budget, Reps, /*Verbose=*/false);
      Geomean = geomeanMips(Cells);
      std::printf("[dynace] hotloop smoke: geomean %.2f MIPS over %zu cells\n",
                  Geomean, Cells.size());
      if (!HaveReference)
        return 0;
      Ratio = Geomean / Reference;
      std::printf("[dynace] hotloop smoke: baseline %.2f MIPS, current/"
                  "baseline = %.2fx (gate: >= %.2fx)\n",
                  Reference, Ratio, MinRatio);
      if (Ratio >= MinRatio)
        return 0;
      if (Attempt < kMaxAttempts) {
        std::fprintf(stderr,
                     "[dynace] hotloop smoke: below gate on attempt %d/%d; "
                     "re-measuring after a pause\n",
                     Attempt, kMaxAttempts);
        std::this_thread::sleep_for(std::chrono::seconds(10));
      }
    }
    std::fprintf(stderr,
                 "error: hot-loop throughput regressed: %.2f MIPS vs "
                 "baseline %.2f MIPS (%.0f%% of baseline, gate %.0f%%)\n",
                 Geomean, Reference, 100.0 * Ratio, 100.0 * MinRatio);
    return 1;
  }

  // Full mode: a smoke-budget pass first (its geomean is what --smoke runs
  // compare against, keeping the gate budget-for-budget fair), then a
  // traced pass at the same budget to record the tracing overhead, then
  // the full-budget grid for the recorded trajectory.
  obs::TraceCollector::instance().configure("");
  std::vector<Cell> SmokeCells = runGrid(kSmokeBudget, 1, /*Verbose=*/false);
  double SmokeGeomean = geomeanMips(SmokeCells);

  std::string TracePath = OutPath + ".trace.tmp";
  obs::TraceCollector::instance().configure(TracePath);
  std::vector<Cell> TracedCells = runGrid(kSmokeBudget, 1, /*Verbose=*/false);
  double TracedGeomean = geomeanMips(TracedCells);
  obs::TraceCollector::instance().configure(""); // Drops buffered events.
  std::remove(TracePath.c_str());
  double TraceOverheadPct =
      SmokeGeomean > 0.0 ? 100.0 * (1.0 - TracedGeomean / SmokeGeomean) : 0.0;
  std::printf("[dynace] hotloop traced: %.2f MIPS vs %.2f untraced "
              "(%.1f%% overhead)\n",
              TracedGeomean, SmokeGeomean, TraceOverheadPct);

  std::vector<Cell> Cells = runGrid(Budget, Reps, /*Verbose=*/true);

  std::ofstream Out(OutPath);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write %s\n", OutPath.c_str());
    return 1;
  }
  writeJson(Out, Budget, kSmokeBudget, Reps, Cells, SmokeGeomean,
            TracedGeomean, TraceOverheadPct);
  std::printf("[dynace] hotloop: geomean %.2f MIPS (smoke %.2f) over %zu "
              "cells -> %s\n",
              geomeanMips(Cells), SmokeGeomean, Cells.size(),
              OutPath.c_str());
  return 0;
}
