//===- bench/microbench_hotloop.cpp - Hot-loop MIPS microbench ------------==//
//
// Measures raw single-thread simulation throughput — host MIPS (millions of
// simulated dynamic instructions per wall-clock second) — for every cell of
// the fig3 (SPECjvm98 benchmark x scheme) grid, driving System::run()
// directly (no result cache, no thread pool) so the number is the kernel's
// step/consume pipeline and nothing else. Emits BENCH_hotloop.json so every
// perf PR has a measured trajectory.
//
// Modes:
//   microbench_hotloop              full grid at --budget (default 20M)
//                                   instructions per cell. Runs a
//                                   smoke-budget comparison first —
//                                   untraced vs DYNACE_TRACE'd reps
//                                   interleaved, best-of-N per mode — for
//                                   the smoke reference and the tracing
//                                   overhead, then the full-budget grid
//                                   with generic (DYNACE_SPECIALIZE=0) and
//                                   specialized (auto) reps interleaved,
//                                   best-of-N per mode per cell;
//   microbench_hotloop --smoke      tight-budget pass (default 2M, or
//                                   DYNACE_INSTR_BUDGET) compared against
//                                   the committed baseline JSON; exits
//                                   non-zero when geomean MIPS regressed
//                                   below --min-ratio x baseline (the
//                                   ctest perf gate). Honors
//                                   DYNACE_SPECIALIZE so the gate can pin
//                                   either kernel; tracing is forced off
//                                   so the gate always measures the
//                                   disabled path.
//
// Flags: --budget N, --reps N, --out PATH, --baseline PATH, --min-ratio R.
//
// Measurement discipline (the host is shared and noisy):
//  * each cell is timed --reps times (default 3) and the fastest
//    repetition is reported — simulated work is deterministic, so
//    run-to-run spread is host noise and the minimum time is the best
//    estimate of kernel capability;
//  * whenever two modes are compared (traced vs untraced, specialized vs
//    generic), their repetitions are interleaved A/B within every rep so
//    slow host windows hit both modes alike — back-to-back passes used to
//    credit whichever mode ran second with a warmed host (the committed
//    trace overhead was once *negative* for exactly that reason);
//  * the per-cell coefficient of variation across reps (sd/mean of the
//    rep times) is reported next to every number and recorded in the
//    JSON, so a flaky gate run can be told apart from a real regression
//    at a glance; --smoke warns when any cell exceeds 5%.
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"
#include "sim/System.h"
#include "support/Env.h"
#include "workloads/WorkloadGenerator.h"
#include "workloads/WorkloadProfile.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace dynace;

#ifndef DYNACE_BUILD_TYPE
#define DYNACE_BUILD_TYPE "unknown"
#endif
#ifndef DYNACE_BUILD_FLAGS
#define DYNACE_BUILD_FLAGS ""
#endif
#ifndef DYNACE_BENCH_BASELINE
#define DYNACE_BENCH_BASELINE "BENCH_hotloop.json"
#endif

namespace {

constexpr uint64_t kFullBudget = 20'000'000;
constexpr uint64_t kSmokeBudget = 2'000'000;
constexpr double kDefaultMinRatio = 0.8; ///< Fail below 80% of baseline.
constexpr double kCvWarnPct = 5.0;       ///< --smoke noise warning level.

/// One measured mode of one grid cell: best-of-reps time plus the spread
/// across the reps.
struct Timing {
  double Seconds = 0.0; ///< Fastest repetition.
  double Mips = 0.0;
  double CvPct = 0.0; ///< sd/mean of the rep times, percent.
};

struct Cell {
  std::string Benchmark;
  Scheme SchemeKind = Scheme::Baseline;
  uint64_t Instructions = 0;
  Timing Generic;
  Timing Specialized; ///< Meaningful only when WithSpecialized was set.
};

/// Reduces per-rep wall times to best + cv.
Timing reduceReps(const std::vector<double> &RepSeconds,
                  uint64_t Instructions) {
  Timing T;
  double Sum = 0.0;
  T.Seconds = RepSeconds[0];
  for (double S : RepSeconds) {
    Sum += S;
    if (S < T.Seconds)
      T.Seconds = S;
  }
  double Mean = Sum / static_cast<double>(RepSeconds.size());
  double Var = 0.0;
  for (double S : RepSeconds)
    Var += (S - Mean) * (S - Mean);
  Var /= static_cast<double>(RepSeconds.size());
  T.CvPct = Mean > 0.0 ? 100.0 * std::sqrt(Var) / Mean : 0.0;
  T.Mips = T.Seconds > 0.0
               ? static_cast<double>(Instructions) / T.Seconds / 1e6
               : 0.0;
  return T;
}

/// Runs one cell once and \returns the wall time, storing the retired
/// instruction count into \p Instructions.
double timeOnce(const Program &Prog, const SimulationOptions &Opts,
                uint64_t &Instructions) {
  System Sys(Prog, Opts);
  auto Start = std::chrono::steady_clock::now();
  SimulationResult R = Sys.run();
  double Seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Start)
                       .count();
  Instructions = R.Instructions;
  return Seconds;
}

/// Runs the full (benchmark x scheme) grid serially at \p Budget
/// instructions per cell. When \p WithSpecialized is set, every rep runs
/// the generic kernel (DYNACE_SPECIALIZE=0) and the specialized kernel
/// (auto) back to back — interleaved best-of-N per mode; otherwise only
/// the generic member is filled, with the specialization mode inherited
/// from the environment (the --smoke gate contract).
std::vector<Cell> runGrid(uint64_t Budget, unsigned Reps,
                          bool WithSpecialized, bool Verbose) {
  constexpr Scheme Schemes[] = {Scheme::Baseline, Scheme::Bbv,
                                Scheme::Hotspot};
  std::vector<Cell> Cells;
  for (const WorkloadProfile &P : specjvm98Profiles()) {
    // Generation is excluded from the timed region: the kernel under test
    // is step/consume, not the workload generator.
    GeneratedWorkload W = WorkloadGenerator::generate(P);
    if (WithSpecialized) {
      // One untimed auto-mode run per workload: the variant pick is
      // memoized by program digest, so this absorbs the calibration burst
      // that would otherwise land inside (only) the first timed
      // specialized rep of the first scheme and inflate that cell's cv.
      SimulationOptions Warm;
      Warm.MaxInstructions = 100'000;
      Warm.Specialize = "auto";
      uint64_t Ignored = 0;
      timeOnce(W.Prog, Warm, Ignored);
    }
    for (Scheme S : Schemes) {
      SimulationOptions Opts;
      Opts.SchemeKind = S;
      Opts.MaxInstructions = Budget;
      std::vector<double> GenSeconds(Reps);
      std::vector<double> SpecSeconds(Reps);
      uint64_t GenInstr = 0;
      uint64_t SpecInstr = 0;
      for (unsigned Rep = 0; Rep != Reps; ++Rep) {
        if (WithSpecialized)
          Opts.Specialize = "0"; // Else: inherit DYNACE_SPECIALIZE.
        GenSeconds[Rep] = timeOnce(W.Prog, Opts, GenInstr);
        if (WithSpecialized) {
          Opts.Specialize = "auto";
          SpecSeconds[Rep] = timeOnce(W.Prog, Opts, SpecInstr);
        }
      }
      Cell C;
      C.Benchmark = P.Name;
      C.SchemeKind = S;
      C.Instructions = GenInstr;
      C.Generic = reduceReps(GenSeconds, GenInstr);
      if (WithSpecialized) {
        // The specialized kernel must retire exactly the same stream.
        if (SpecInstr != GenInstr) {
          std::fprintf(stderr,
                       "error: specialized run retired %llu instructions "
                       "vs %llu generic (%s/%s)\n",
                       static_cast<unsigned long long>(SpecInstr),
                       static_cast<unsigned long long>(GenInstr),
                       C.Benchmark.c_str(), schemeName(S));
          std::exit(1);
        }
        C.Specialized = reduceReps(SpecSeconds, SpecInstr);
      }
      if (Verbose) {
        if (WithSpecialized)
          std::fprintf(stderr,
                       "[dynace] hotloop %s/%s: %.1fM instr, %.2f MIPS "
                       "(cv %.1f%%), specialized %.2f MIPS (cv %.1f%%)\n",
                       C.Benchmark.c_str(), schemeName(S),
                       static_cast<double>(C.Instructions) / 1e6,
                       C.Generic.Mips, C.Generic.CvPct, C.Specialized.Mips,
                       C.Specialized.CvPct);
        else
          std::fprintf(stderr,
                       "[dynace] hotloop %s/%s: %.1fM instr, %.3fs, "
                       "%.2f MIPS (cv %.1f%%)\n",
                       C.Benchmark.c_str(), schemeName(S),
                       static_cast<double>(C.Instructions) / 1e6,
                       C.Generic.Seconds, C.Generic.Mips, C.Generic.CvPct);
      }
      Cells.push_back(std::move(C));
    }
  }
  return Cells;
}

double geomeanMips(const std::vector<Cell> &Cells, bool Specialized) {
  if (Cells.empty())
    return 0.0;
  double LogSum = 0.0;
  for (const Cell &C : Cells) {
    double M = Specialized ? C.Specialized.Mips : C.Generic.Mips;
    LogSum += std::log(M > 0.0 ? M : 1e-9);
  }
  return std::exp(LogSum / static_cast<double>(Cells.size()));
}

double maxCvPct(const std::vector<Cell> &Cells) {
  double Max = 0.0;
  for (const Cell &C : Cells) {
    Max = C.Generic.CvPct > Max ? C.Generic.CvPct : Max;
    Max = C.Specialized.CvPct > Max ? C.Specialized.CvPct : Max;
  }
  return Max;
}

/// Smoke-budget traced vs untraced comparison (both generic): reps are
/// interleaved and each mode keeps its best, so host drift between the
/// two passes cannot masquerade as (negative) tracing overhead.
void measureTraceOverhead(uint64_t Budget, unsigned Reps,
                          const std::string &TracePath,
                          double &UntracedGeomean, double &TracedGeomean) {
  constexpr Scheme Schemes[] = {Scheme::Baseline, Scheme::Bbv,
                                Scheme::Hotspot};
  double UntracedLogSum = 0.0;
  double TracedLogSum = 0.0;
  size_t NumCells = 0;
  for (const WorkloadProfile &P : specjvm98Profiles()) {
    GeneratedWorkload W = WorkloadGenerator::generate(P);
    for (Scheme S : Schemes) {
      SimulationOptions Opts;
      Opts.SchemeKind = S;
      Opts.MaxInstructions = Budget;
      Opts.Specialize = "0";
      std::vector<double> Untraced(Reps);
      std::vector<double> Traced(Reps);
      uint64_t Instr = 0;
      for (unsigned Rep = 0; Rep != Reps; ++Rep) {
        obs::TraceCollector::instance().configure("");
        Untraced[Rep] = timeOnce(W.Prog, Opts, Instr);
        obs::TraceCollector::instance().configure(TracePath);
        Traced[Rep] = timeOnce(W.Prog, Opts, Instr);
        obs::TraceCollector::instance().configure(""); // Drop events.
      }
      UntracedLogSum += std::log(reduceReps(Untraced, Instr).Mips);
      TracedLogSum += std::log(reduceReps(Traced, Instr).Mips);
      ++NumCells;
    }
  }
  UntracedGeomean =
      std::exp(UntracedLogSum / static_cast<double>(NumCells));
  TracedGeomean = std::exp(TracedLogSum / static_cast<double>(NumCells));
}

void writeJson(std::ostream &OS, uint64_t Budget, uint64_t SmokeBudget,
               unsigned Reps, const std::vector<Cell> &Cells,
               double SmokeGeomean, double TracedGeomean,
               double TraceOverheadPct) {
  char Buf[512];
  OS << "{\n";
  OS << "  \"build_type\": \"" << DYNACE_BUILD_TYPE << "\",\n";
  OS << "  \"build_flags\": \"" << DYNACE_BUILD_FLAGS << "\",\n";
  OS << "  \"budget\": " << Budget << ",\n";
  OS << "  \"reps\": " << Reps << ",\n";
  OS << "  \"smoke_budget\": " << SmokeBudget << ",\n";
  std::snprintf(Buf, sizeof(Buf), "%.4f", SmokeGeomean);
  OS << "  \"smoke_geomean_mips\": " << Buf << ",\n";
  std::snprintf(Buf, sizeof(Buf), "%.4f", TracedGeomean);
  OS << "  \"traced_geomean_mips\": " << Buf << ",\n";
  std::snprintf(Buf, sizeof(Buf), "%.2f", TraceOverheadPct);
  OS << "  \"trace_overhead_pct\": " << Buf << ",\n";
  std::snprintf(Buf, sizeof(Buf), "%.4f",
                geomeanMips(Cells, /*Specialized=*/false));
  OS << "  \"geomean_mips\": " << Buf << ",\n";
  std::snprintf(Buf, sizeof(Buf), "%.4f",
                geomeanMips(Cells, /*Specialized=*/true));
  OS << "  \"specialized_geomean_mips\": " << Buf << ",\n";
  OS << "  \"cells\": [\n";
  for (size_t I = 0; I != Cells.size(); ++I) {
    const Cell &C = Cells[I];
    std::snprintf(Buf, sizeof(Buf),
                  "    {\"benchmark\": \"%s\", \"scheme\": \"%s\", "
                  "\"instructions\": %llu, \"seconds\": %.4f, "
                  "\"mips\": %.4f, \"cv\": %.2f, "
                  "\"specialized_mips\": %.4f, \"specialized_cv\": "
                  "%.2f}%s\n",
                  C.Benchmark.c_str(), schemeName(C.SchemeKind),
                  static_cast<unsigned long long>(C.Instructions),
                  C.Generic.Seconds, C.Generic.Mips, C.Generic.CvPct,
                  C.Specialized.Mips, C.Specialized.CvPct,
                  I + 1 == Cells.size() ? "" : ",");
    OS << Buf;
  }
  OS << "  ]\n}\n";
}

/// Minimal extractor for `"Key": <number>` from the baseline JSON (the
/// bench's own output format; not a general JSON parser).
bool findJsonNumber(const std::string &Text, const std::string &Key,
                    double &Out) {
  std::string Needle = "\"" + Key + "\":";
  size_t Pos = Text.find(Needle);
  if (Pos == std::string::npos)
    return false;
  Out = std::strtod(Text.c_str() + Pos + Needle.size(), nullptr);
  return true;
}

/// Minimal extractor for `"Key": "<string>"` from the baseline JSON.
bool findJsonString(const std::string &Text, const std::string &Key,
                    std::string &Out) {
  std::string Needle = "\"" + Key + "\": \"";
  size_t Pos = Text.find(Needle);
  if (Pos == std::string::npos)
    return false;
  size_t Begin = Pos + Needle.size();
  size_t End = Text.find('"', Begin);
  if (End == std::string::npos)
    return false;
  Out = Text.substr(Begin, End - Begin);
  return true;
}

void printHeader(uint64_t Budget, bool Smoke) {
  std::printf("[dynace] microbench_hotloop: build=%s flags=\"%s\" "
              "budget=%llu mode=%s specialize=%s\n",
              DYNACE_BUILD_TYPE, DYNACE_BUILD_FLAGS,
              static_cast<unsigned long long>(Budget),
              Smoke ? "smoke" : "full",
              Smoke ? envString("DYNACE_SPECIALIZE", "auto").c_str()
                    : "interleaved");
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  uint64_t Budget = 0;
  unsigned Reps = 0;
  std::string OutPath = "BENCH_hotloop.json";
  std::string BaselinePath = DYNACE_BENCH_BASELINE;
  double MinRatio = kDefaultMinRatio;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto NextArg = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Flag);
        std::exit(2);
      }
      return argv[++I];
    };
    if (Arg == "--smoke") {
      Smoke = true;
    } else if (Arg == "--budget") {
      std::optional<uint64_t> B = parseUnsignedInt(NextArg("--budget"));
      if (!B || *B == 0) {
        std::fprintf(stderr, "error: --budget needs a positive integer\n");
        return 2;
      }
      Budget = *B;
    } else if (Arg == "--reps") {
      std::optional<uint64_t> R = parseUnsignedInt(NextArg("--reps"));
      if (!R || *R == 0 || *R > 100) {
        std::fprintf(stderr, "error: --reps needs an integer in [1, 100]\n");
        return 2;
      }
      Reps = static_cast<unsigned>(*R);
    } else if (Arg == "--out") {
      OutPath = NextArg("--out");
    } else if (Arg == "--baseline") {
      BaselinePath = NextArg("--baseline");
    } else if (Arg == "--min-ratio") {
      MinRatio = std::strtod(NextArg("--min-ratio"), nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: microbench_hotloop [--smoke] [--budget N] "
                   "[--reps N] [--out PATH] [--baseline PATH] "
                   "[--min-ratio R]\n");
      return 2;
    }
  }

  if (Budget == 0)
    Budget = envUnsignedOr("DYNACE_INSTR_BUDGET",
                           Smoke ? kSmokeBudget : kFullBudget, 1);
  // Best-of-3 in both modes: on shared hosts a single smoke repetition is
  // noise-dominated (transient neighbor load can halve apparent MIPS and
  // flake the gate); three reps cost ~2s more and keep the minimum honest.
  if (Reps == 0)
    Reps = 3;
  printHeader(Budget, Smoke);

  if (Smoke) {
    // The ctest gate asserts the tracing-DISABLED kernel: force tracing
    // off even if DYNACE_TRACE leaked into the environment, so the number
    // compared against the baseline is always the single-branch path.
    obs::TraceCollector::instance().configure("");

    // Parse the baseline up front so no-baseline / mismatched-build runs
    // measure exactly once.
    bool HaveReference = false;
    double Reference = 0.0;
    std::ifstream In(BaselinePath);
    if (!In) {
      std::printf("[dynace] hotloop smoke: no baseline at %s; skipping "
                  "regression check\n",
                  BaselinePath.c_str());
    } else {
      std::stringstream Ss;
      Ss << In.rdbuf();
      std::string Text = Ss.str();
      // MIPS only compares like for like: a Debug or sanitizer build would
      // "regress" against a Release baseline by construction, not by bug.
      std::string BaselineBuild, BaselineFlags;
      findJsonString(Text, "build_type", BaselineBuild);
      findJsonString(Text, "build_flags", BaselineFlags);
      if (BaselineBuild != DYNACE_BUILD_TYPE ||
          BaselineFlags != DYNACE_BUILD_FLAGS) {
        std::printf("[dynace] hotloop smoke: baseline build '%s' [%s] != "
                    "current '%s' [%s]; skipping regression check\n",
                    BaselineBuild.c_str(), BaselineFlags.c_str(),
                    DYNACE_BUILD_TYPE, DYNACE_BUILD_FLAGS);
      } else if (!findJsonNumber(Text, "smoke_geomean_mips", Reference) &&
                 !findJsonNumber(Text, "geomean_mips", Reference)) {
        std::fprintf(stderr, "error: %s carries no geomean MIPS field\n",
                     BaselinePath.c_str());
        return 1;
      } else {
        HaveReference = Reference > 0.0;
      }
    }

    // Measure, retrying on a miss: shared hosts throttle in windows that
    // outlast best-of-N within a single pass, so one gate sample can land
    // entirely inside a slow window. A real regression fails every attempt;
    // transient contention does not.
    constexpr int kMaxAttempts = 3;
    double Geomean = 0.0;
    double Ratio = 1.0;
    for (int Attempt = 1; Attempt <= kMaxAttempts; ++Attempt) {
      std::vector<Cell> Cells =
          runGrid(Budget, Reps, /*WithSpecialized=*/false,
                  /*Verbose=*/false);
      Geomean = geomeanMips(Cells, /*Specialized=*/false);
      double MaxCv = maxCvPct(Cells);
      std::printf("[dynace] hotloop smoke: geomean %.2f MIPS over %zu "
                  "cells (max cv %.1f%%)\n",
                  Geomean, Cells.size(), MaxCv);
      // A noisy measurement is worth flagging even when the gate passes:
      // a later flake investigation starts from this line.
      for (const Cell &C : Cells)
        if (C.Generic.CvPct > kCvWarnPct)
          std::printf("[dynace] hotloop smoke: warning: %s/%s cv %.1f%% "
                      "exceeds %.1f%% — treat this sample as noisy\n",
                      C.Benchmark.c_str(), schemeName(C.SchemeKind),
                      C.Generic.CvPct, kCvWarnPct);
      if (!HaveReference)
        return 0;
      Ratio = Geomean / Reference;
      std::printf("[dynace] hotloop smoke: baseline %.2f MIPS, current/"
                  "baseline = %.2fx (gate: >= %.2fx)\n",
                  Reference, Ratio, MinRatio);
      if (Ratio >= MinRatio)
        return 0;
      if (Attempt < kMaxAttempts) {
        std::fprintf(stderr,
                     "[dynace] hotloop smoke: below gate on attempt %d/%d; "
                     "re-measuring after a pause\n",
                     Attempt, kMaxAttempts);
        std::this_thread::sleep_for(std::chrono::seconds(10));
      }
    }
    std::fprintf(stderr,
                 "error: hot-loop throughput regressed: %.2f MIPS vs "
                 "baseline %.2f MIPS (%.0f%% of baseline, gate %.0f%%)\n",
                 Geomean, Reference, 100.0 * Ratio, 100.0 * MinRatio);
    return 1;
  }

  // Full mode. First the smoke-budget traced/untraced comparison: its
  // untraced geomean is what --smoke runs compare against (keeping the
  // gate budget-for-budget fair), its traced geomean records the tracing
  // overhead.
  double SmokeGeomean = 0.0;
  double TracedGeomean = 0.0;
  std::string TracePath = OutPath + ".trace.tmp";
  measureTraceOverhead(kSmokeBudget, Reps, TracePath, SmokeGeomean,
                       TracedGeomean);
  std::remove(TracePath.c_str());
  double TraceOverheadPct =
      SmokeGeomean > 0.0 ? 100.0 * (1.0 - TracedGeomean / SmokeGeomean)
                         : 0.0;
  std::printf("[dynace] hotloop traced: %.2f MIPS vs %.2f untraced "
              "(%.1f%% overhead)\n",
              TracedGeomean, SmokeGeomean, TraceOverheadPct);

  // Then the full-budget grid, generic vs specialized interleaved.
  obs::TraceCollector::instance().configure("");
  std::vector<Cell> Cells =
      runGrid(Budget, Reps, /*WithSpecialized=*/true, /*Verbose=*/true);

  std::ofstream Out(OutPath);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write %s\n", OutPath.c_str());
    return 1;
  }
  writeJson(Out, Budget, kSmokeBudget, Reps, Cells, SmokeGeomean,
            TracedGeomean, TraceOverheadPct);
  double Generic = geomeanMips(Cells, /*Specialized=*/false);
  double Specialized = geomeanMips(Cells, /*Specialized=*/true);
  std::printf("[dynace] hotloop: geomean %.2f MIPS, specialized %.2f MIPS "
              "(%.3fx full / %.3fx smoke-generic), smoke %.2f, max cv "
              "%.1f%%, over %zu cells -> %s\n",
              Generic, Specialized,
              Generic > 0.0 ? Specialized / Generic : 0.0,
              SmokeGeomean > 0.0 ? Specialized / SmokeGeomean : 0.0,
              SmokeGeomean, maxCvPct(Cells), Cells.size(),
              OutPath.c_str());
  return 0;
}
