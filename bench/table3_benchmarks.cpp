//===- bench/table3_benchmarks.cpp - Tables 2 and 3 -----------------------==//
//
// Prints Table 2 (the simulated system configuration, with the scaled
// capacities/intervals of this reproduction) and Table 3 (the benchmark
// descriptions), plus a per-benchmark generation micro-benchmark measuring
// workload synthesis cost.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "workloads/WorkloadGenerator.h"

using namespace dynace;
using namespace dynace_bench;

static void generateOne(const WorkloadProfile &P, benchmark::State &State) {
  GeneratedWorkload W = WorkloadGenerator::generate(P);
  State.counters["methods"] = static_cast<double>(W.Prog.numMethods());
  State.counters["static_instrs"] =
      static_cast<double>(W.Prog.staticInstructionCount());
  State.counters["est_dyn_instrs"] = W.EstimatedInstructions;
  benchmark::DoNotOptimize(W);
}

int main(int argc, char **argv) {
  registerPerBenchmark("generate", generateOne);
  return benchMain(argc, argv, [](std::ostream &OS) {
    printBaselineConfig(OS, ExperimentRunner::defaultOptions());
    OS << '\n';
    printTable3(OS);
  });
}
