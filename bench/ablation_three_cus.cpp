//===- bench/ablation_three_cus.cpp - scaling to a third CU ---------------==//
//
// The paper's scalability claim, made concrete: add a third configurable
// unit (the issue window, reconfiguration interval 1K instructions) and
// compare how the two schemes cope. The hotspot scheme's CU decoupling
// still tests 4 settings per hotspot (small hotspots now tune the window);
// the BBV baseline's combinatorial sweep grows from 16 to 64 combos and
// finishes tuning even fewer phases.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Format.h"
#include "support/Table.h"

using namespace dynace;
using namespace dynace_bench;

static ExperimentRunner &threeCuRunner() {
  static ExperimentRunner R = [] {
    SimulationOptions Opts = ExperimentRunner::defaultOptions();
    Opts.EnableWindowCu = true;
    return ExperimentRunner(Opts);
  }();
  return R;
}

static void runOne(const WorkloadProfile &P, benchmark::State &State) {
  const BenchmarkRun &Run = threeCuRunner().run(P);
  if (Run.Hotspot.Ace) {
    State.counters["hs_tuned_pct"] =
        Run.Hotspot.Ace->TotalHotspots
            ? 100.0 * static_cast<double>(Run.Hotspot.Ace->TunedHotspots) /
                  static_cast<double>(Run.Hotspot.Ace->TotalHotspots)
            : 0.0;
  }
  if (Run.Bbv.BbvR)
    State.counters["bbv_tuned_phases"] =
        static_cast<double>(Run.Bbv.BbvR->TunedPhases);
  State.counters["window_energy_red_pct"] =
      100.0 * BenchmarkRun::reduction(Run.Hotspot.WindowEnergy,
                                      Run.Baseline.WindowEnergy);
}

static void printAblation(std::ostream &OS) {
  TextTable T;
  T.setHeader({"", "hs tuned", "hs slowdown", "bbv tuned phases",
               "bbv slowdown", "IQ energy red. (hs)"});
  for (const WorkloadProfile &P : specjvm98Profiles()) {
    const BenchmarkRun &R = threeCuRunner().run(P);
    double HsTuned =
        R.Hotspot.Ace && R.Hotspot.Ace->TotalHotspots
            ? static_cast<double>(R.Hotspot.Ace->TunedHotspots) /
                  static_cast<double>(R.Hotspot.Ace->TotalHotspots)
            : 0.0;
    T.addRow(
        {P.Name, formatPercent(HsTuned, 0),
         formatPercent(
             BenchmarkRun::slowdown(R.Hotspot.Cycles, R.Baseline.Cycles),
             2),
         std::to_string(R.Bbv.BbvR ? R.Bbv.BbvR->TunedPhases : 0),
         formatPercent(
             BenchmarkRun::slowdown(R.Bbv.Cycles, R.Baseline.Cycles), 2),
         formatPercent(BenchmarkRun::reduction(R.Hotspot.WindowEnergy,
                                               R.Baseline.WindowEnergy),
                       1)});
  }
  T.print(OS, "Ablation: three configurable units (issue window + L1D + "
              "L2). BBV sweeps 64 combos; hotspot decoupling stays at 4 "
              "settings per hotspot");
}

int main(int argc, char **argv) {
  dynace_bench::enableDefaultCache();
  registerPerBenchmark("ablation_three_cus", runOne);
  return benchMain(
      argc, argv,
      [](std::ostream &OS) {
        printAblation(OS);
        OS << '\n';
        printRunStats(OS, threeCuRunner().stats());
      },
      [] { threeCuRunner().runAll(specjvm98Profiles()); });
}
