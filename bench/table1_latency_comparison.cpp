//===- bench/table1_latency_comparison.cpp - Table 1 ----------------------==//
//
// Regenerates Table 1 with measured counterparts: the paper's qualitative
// comparison of identification and tuning latencies between temporal (BBV)
// and DO-based approaches. Paper shape: the DO approach pays a one-time
// identification latency but recognizes recurring phases with zero latency
// and tests only a subset of configurations.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace dynace;
using namespace dynace_bench;

static void runOne(const WorkloadProfile &P, benchmark::State &State) {
  const BenchmarkRun &R = runner().run(P);
  State.counters["hs_ident_latency_pct"] =
      100.0 * R.Hotspot.Do.IdentificationLatencyFraction;
  if (R.Hotspot.Ace && R.Hotspot.Ace->TotalHotspots)
    State.counters["hs_tunings_per_hotspot"] =
        static_cast<double>(R.Hotspot.Ace->PerCu[0].Tunings +
                            R.Hotspot.Ace->PerCu[1].Tunings) /
        static_cast<double>(R.Hotspot.Ace->TotalHotspots);
  if (R.Bbv.BbvR && R.Bbv.BbvR->TunedPhases)
    State.counters["bbv_tunings_per_phase"] =
        static_cast<double>(R.Bbv.BbvR->Tunings) /
        static_cast<double>(R.Bbv.BbvR->TunedPhases);
}

int main(int argc, char **argv) {
  dynace_bench::enableDefaultCache();
  registerPerBenchmark("table1", runOne);
  return benchMain(
      argc, argv, [](std::ostream &OS) { printTable1(OS, allRuns()); },
      [] { allRuns(); });
}
