//===- bench/fig3_energy_reduction.cpp - Figure 3(a)/(b) ------------------==//
//
// Regenerates Figure 3: L1D and L2 cache energy reduction of the BBV and
// hotspot schemes over the non-adaptive baseline, per SPECjvm98 benchmark
// plus the average. Paper shape: the hotspot scheme wins L1D everywhere
// (avg 47% vs 32%), wins L2 on most benchmarks (avg 58% vs 52%).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace dynace;
using namespace dynace_bench;

static void runOne(const WorkloadProfile &P, benchmark::State &State) {
  const BenchmarkRun &R = runner().run(P);
  double Base1 = R.Baseline.L1DEnergy.total();
  double Base2 = R.Baseline.L2Energy.total();
  State.counters["l1d_red_bbv_pct"] =
      100.0 * BenchmarkRun::reduction(R.Bbv.L1DEnergy.total(), Base1);
  State.counters["l1d_red_hotspot_pct"] =
      100.0 * BenchmarkRun::reduction(R.Hotspot.L1DEnergy.total(), Base1);
  State.counters["l2_red_bbv_pct"] =
      100.0 * BenchmarkRun::reduction(R.Bbv.L2Energy.total(), Base2);
  State.counters["l2_red_hotspot_pct"] =
      100.0 * BenchmarkRun::reduction(R.Hotspot.L2Energy.total(), Base2);
}

int main(int argc, char **argv) {
  dynace_bench::enableDefaultCache();
  registerPerBenchmark("fig3", runOne);
  return benchMain(
      argc, argv,
      [](std::ostream &OS) {
        printBaselineConfig(OS, runner().baseOptions());
        OS << '\n';
        printFigure3(OS, allRuns());
      },
      [] { allRuns(); });
}
