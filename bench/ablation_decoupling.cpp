//===- bench/ablation_decoupling.cpp - CU-decoupling ablation -------------==//
//
// Ablates the paper's core idea: with CU decoupling disabled, every
// eligible hotspot tunes the full 16-configuration cross product (the
// straightforward strategy of Section 2.3) instead of one unit's 4
// settings. Expected shape: far more tuning work, fewer hotspots finishing
// tuning, and worse energy/performance than the decoupled scheme.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Format.h"
#include "support/Table.h"

using namespace dynace;
using namespace dynace_bench;

static ExperimentRunner &coupledRunner() {
  static ExperimentRunner R = [] {
    SimulationOptions Opts = ExperimentRunner::defaultOptions();
    Opts.Ace.DecouplingEnabled = false;
    return ExperimentRunner(Opts);
  }();
  return R;
}

static uint64_t totalTunings(const SimulationResult &R) {
  uint64_t N = 0;
  if (R.Ace)
    for (const AceCuReport &Cu : R.Ace->PerCu)
      N += Cu.Tunings;
  return N;
}

static void runOne(const WorkloadProfile &P, benchmark::State &State) {
  const BenchmarkRun &Decoupled = runner().run(P);
  SimulationResult Coupled = coupledRunner().runScheme(P, Scheme::Hotspot);
  State.counters["tunings_decoupled"] =
      static_cast<double>(totalTunings(Decoupled.Hotspot));
  State.counters["tunings_coupled"] =
      static_cast<double>(totalTunings(Coupled));
  State.counters["slowdown_decoupled_pct"] =
      100.0 * BenchmarkRun::slowdown(Decoupled.Hotspot.Cycles,
                                     Decoupled.Baseline.Cycles);
  State.counters["slowdown_coupled_pct"] =
      100.0 *
      BenchmarkRun::slowdown(Coupled.Cycles, Decoupled.Baseline.Cycles);
}

static void printAblation(std::ostream &OS) {
  TextTable T;
  T.setHeader({"", "tunings", "tuned %", "L1D red.", "L2 red.",
               "slowdown"});
  for (const WorkloadProfile &P : specjvm98Profiles()) {
    const BenchmarkRun &D = runner().run(P);
    SimulationResult C = coupledRunner().runScheme(P, Scheme::Hotspot);
    auto Row = [&](const char *Tag, const SimulationResult &R) {
      double TunedPct =
          R.Ace && R.Ace->TotalHotspots
              ? static_cast<double>(R.Ace->TunedHotspots) /
                    static_cast<double>(R.Ace->TotalHotspots)
              : 0.0;
      T.addRow({P.Name + std::string(" ") + Tag,
                std::to_string(totalTunings(R)), formatPercent(TunedPct, 0),
                formatPercent(BenchmarkRun::reduction(
                                  R.L1DEnergy.total(),
                                  D.Baseline.L1DEnergy.total()),
                              1),
                formatPercent(BenchmarkRun::reduction(
                                  R.L2Energy.total(),
                                  D.Baseline.L2Energy.total()),
                              1),
                formatPercent(BenchmarkRun::slowdown(R.Cycles,
                                                     D.Baseline.Cycles),
                              2)});
    };
    Row("decoupled", D.Hotspot);
    Row("coupled  ", C);
  }
  T.print(OS, "Ablation: CU decoupling on (decoupled) vs testing all 16 "
              "combinatorial configurations per hotspot (coupled)");
}

int main(int argc, char **argv) {
  dynace_bench::enableDefaultCache();
  registerPerBenchmark("ablation_decoupling", runOne);
  return benchMain(argc, argv, printAblation, [] {
    allRuns();
    coupledRunner().runAllScheme(specjvm98Profiles(), Scheme::Hotspot);
  });
}
