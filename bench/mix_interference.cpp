//===- bench/mix_interference.cpp - multi-tenant mixes --------------------==//
//
// Runs the standard multi-tenant mixes (workloads/WorkloadProfile.h,
// standardMixProfiles) through the experiment pipeline: each mix is one
// program whose interleaving main round-robins its tenants' segments, so
// the adaptive schemes must re-tune across cross-tenant phase boundaries.
// The second table attributes the DO database per tenant (hotspots,
// invocations, inclusive instructions) and reports the tenant-switch count
// — the interference pressure the interleaving generates.
//
// DYNACE_MIX_TENANTS adds a custom mix: a comma-separated list of built-in
// benchmark names ("compress,db,jack"), at least two.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "sim/System.h"
#include "support/Env.h"
#include "support/Format.h"
#include "support/Table.h"
#include "workloads/WorkloadGenerator.h"

using namespace dynace;
using namespace dynace_bench;

static const std::vector<WorkloadProfile> &mixProfiles() {
  static const std::vector<WorkloadProfile> Profiles = [] {
    std::vector<WorkloadProfile> Out = standardMixProfiles();
    std::string Custom = envString("DYNACE_MIX_TENANTS");
    if (!Custom.empty()) {
      std::vector<WorkloadProfile> Tenants;
      size_t Pos = 0;
      while (Pos <= Custom.size()) {
        size_t Comma = Custom.find(',', Pos);
        std::string Name = Custom.substr(
            Pos, Comma == std::string::npos ? std::string::npos
                                            : Comma - Pos);
        Pos = Comma == std::string::npos ? Custom.size() + 1 : Comma + 1;
        const WorkloadProfile *P = findProfile(Name);
        if (!P)
          fatalError("DYNACE_MIX_TENANTS",
                     Status::error(ErrorCode::InvalidInput,
                                   "'" + Name +
                                       "' is not a built-in benchmark"));
        Tenants.push_back(*P);
      }
      if (Tenants.size() < 2)
        fatalError("DYNACE_MIX_TENANTS",
                   Status::error(ErrorCode::InvalidInput,
                                 "a mix needs at least two tenant names"));
      Out.push_back(makeMixProfile(std::move(Tenants)));
    }
    return Out;
  }();
  return Profiles;
}

static void printMixes(std::ostream &OS) {
  TextTable T;
  T.setHeader({"", "scheme", "L1D energy red.", "L2 energy red.",
               "slowdown", "reconfigs"});
  for (const WorkloadProfile &P : mixProfiles()) {
    const BenchmarkRun &R = runner().run(P);
    if (!R.complete()) {
      T.addRow({P.Name, "FAILED", "", "", "", ""});
      continue;
    }
    auto AddScheme = [&](const char *Scheme, const SimulationResult &S) {
      T.addRow({P.Name, Scheme,
                formatPercent(BenchmarkRun::reduction(
                                  S.L1DEnergy.total(),
                                  R.Baseline.L1DEnergy.total()),
                              1),
                formatPercent(BenchmarkRun::reduction(
                                  S.L2Energy.total(),
                                  R.Baseline.L2Energy.total()),
                              1),
                formatPercent(
                    BenchmarkRun::slowdown(S.Cycles, R.Baseline.Cycles), 2),
                formatCount(S.L1DHardwareReconfigs + S.L2HardwareReconfigs)});
    };
    AddScheme("bbv", R.Bbv);
    AddScheme("hotspot", R.Hotspot);
  }
  T.print(OS, "Multi-tenant mixes: adaptive schemes under cross-tenant "
              "phase interference");

  // Per-tenant attribution: a direct (serial, uncached) hotspot run per
  // mix, querying the DO system's tenant slices — the per-run result cache
  // stores aggregate DoStats only.
  TextTable A;
  A.setHeader({"", "tenant", "hotspots", "invocations", "incl. instrs"});
  for (const WorkloadProfile &P : mixProfiles()) {
    GeneratedWorkload W = WorkloadGenerator::generate(P);
    SimulationOptions Opts = ExperimentRunner::defaultOptions();
    Opts.SchemeKind = Scheme::Hotspot;
    System Sys(W.Prog, Opts);
    (void)Sys.run();
    const DoSystem *Do = Sys.doSystem();
    std::vector<TenantDoStats> Slices = Do->tenantStats();
    for (const TenantDoStats &S : Slices) {
      const std::string &TenantName =
          P.Tenants[S.Tenant - 1].Name;
      A.addRow({P.Name, TenantName, formatCount(S.NumHotspots),
                formatCount(S.Invocations),
                formatCount(S.InclusiveInstructions)});
    }
    A.addRow({P.Name, "(switches)",
              formatCount(Do->tenantSwitches()), "", ""});
  }
  A.print(OS, "Per-tenant DO attribution (hotspot scheme)");
}

static void runOne(const WorkloadProfile &P, benchmark::State &State) {
  const BenchmarkRun &R = runner().run(P);
  State.counters["hotspot_slowdown_pct"] =
      100.0 * BenchmarkRun::slowdown(R.Hotspot.Cycles, R.Baseline.Cycles);
  State.counters["hotspot_reconfigs"] =
      static_cast<double>(R.Hotspot.L1DHardwareReconfigs + R.Hotspot.L2HardwareReconfigs);
}

int main(int argc, char **argv) {
  enableDefaultCache();
  for (const WorkloadProfile &P : mixProfiles()) {
    benchmark::RegisterBenchmark(
        ("mix_interference/" + P.Name).c_str(),
        [&P](benchmark::State &State) {
          for (auto _ : State)
            runOne(P, State);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  return benchMain(argc, argv, printMixes,
                   [] { runner().runAll(mixProfiles()); });
}
