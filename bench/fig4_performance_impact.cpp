//===- bench/fig4_performance_impact.cpp - Figure 4 -----------------------==//
//
// Regenerates Figure 4: performance degradation (slowdown in cycles) of the
// BBV and hotspot schemes relative to the baseline. Paper shape: both stay
// small, with the hotspot scheme slightly better on average (1.56% vs
// 1.87%); at this reproduction's 1/200 run scale, tuning amortizes less and
// both averages sit a few percent higher (see EXPERIMENTS.md).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace dynace;
using namespace dynace_bench;

static void runOne(const WorkloadProfile &P, benchmark::State &State) {
  const BenchmarkRun &R = runner().run(P);
  State.counters["slowdown_bbv_pct"] =
      100.0 * BenchmarkRun::slowdown(R.Bbv.Cycles, R.Baseline.Cycles);
  State.counters["slowdown_hotspot_pct"] =
      100.0 * BenchmarkRun::slowdown(R.Hotspot.Cycles, R.Baseline.Cycles);
  State.counters["baseline_ipc"] = R.Baseline.Ipc;
}

int main(int argc, char **argv) {
  dynace_bench::enableDefaultCache();
  registerPerBenchmark("fig4", runOne);
  return benchMain(
      argc, argv, [](std::ostream &OS) { printFigure4(OS, allRuns()); },
      [] { allRuns(); });
}
