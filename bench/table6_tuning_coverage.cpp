//===- bench/table6_tuning_coverage.cpp - Table 6 -------------------------==//
//
// Regenerates Table 6: tuning attempts, best-configuration applications
// (reconfigs) and coverage for L1D/L2 hotspots and for BBV phases. Paper
// shape: CU decoupling lets the hotspot scheme tune with fewer tests while
// reconfiguring the cheap L1D far more often than the L2 (multi-grain
// adaptation), with good coverage for both hotspot classes.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace dynace;
using namespace dynace_bench;

static void runOne(const WorkloadProfile &P, benchmark::State &State) {
  const BenchmarkRun &R = runner().run(P);
  if (R.Hotspot.Ace) {
    const AceReport &A = *R.Hotspot.Ace;
    State.counters["hs_l1d_tunings"] =
        static_cast<double>(A.PerCu[0].Tunings);
    State.counters["hs_l1d_reconfigs"] =
        static_cast<double>(A.PerCu[0].Reconfigs);
    State.counters["hs_l1d_coverage_pct"] = 100.0 * A.PerCu[0].Coverage;
    State.counters["hs_l2_tunings"] =
        static_cast<double>(A.PerCu[1].Tunings);
    State.counters["hs_l2_reconfigs"] =
        static_cast<double>(A.PerCu[1].Reconfigs);
    State.counters["hs_l2_coverage_pct"] = 100.0 * A.PerCu[1].Coverage;
  }
  if (R.Bbv.BbvR) {
    State.counters["bbv_tunings"] =
        static_cast<double>(R.Bbv.BbvR->Tunings);
    State.counters["bbv_coverage_pct"] = 100.0 * R.Bbv.BbvR->Coverage;
  }
}

int main(int argc, char **argv) {
  dynace_bench::enableDefaultCache();
  registerPerBenchmark("table6", runOne);
  return benchMain(
      argc, argv,
      [](std::ostream &OS) {
        printTable6(OS, allRuns());
        OS << '\n';
        printMetrics(OS, allRuns());
      },
      [] { allRuns(); });
}
