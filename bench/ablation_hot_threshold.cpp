//===- bench/ablation_hot_threshold.cpp - hot_threshold sweep -------------==//
//
// Sweeps the DO system's hot_threshold (invocations before promotion).
// Expected shape: a higher threshold raises identification latency
// (Table 4's estimate is hot_threshold / avg invocations per hotspot) and
// shrinks the hotspot population, trading detection cost against
// adaptation coverage.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Format.h"
#include "support/Table.h"

using namespace dynace;
using namespace dynace_bench;

static const uint64_t kThresholds[] = {2, 8, 32};

static ExperimentRunner &runnerFor(uint64_t Threshold) {
  static std::map<uint64_t, std::unique_ptr<ExperimentRunner>> Runners;
  auto It = Runners.find(Threshold);
  if (It == Runners.end()) {
    SimulationOptions Opts = ExperimentRunner::defaultOptions();
    Opts.Do.HotThreshold = Threshold;
    It = Runners
             .emplace(Threshold,
                      std::make_unique<ExperimentRunner>(Opts))
             .first;
  }
  return *It->second;
}

static void runOne(const WorkloadProfile &P, benchmark::State &State) {
  for (uint64_t Threshold : kThresholds) {
    SimulationResult R = runnerFor(Threshold).runScheme(P, Scheme::Hotspot);
    std::string Tag = std::to_string(Threshold);
    State.counters["ident_latency_pct_t" + Tag] =
        100.0 * R.Do.IdentificationLatencyFraction;
    State.counters["hotspots_t" + Tag] =
        static_cast<double>(R.Do.NumHotspots);
  }
}

static void printAblation(std::ostream &OS) {
  TextTable T;
  T.setHeader({"", "hot_threshold", "hotspots", "code in hotspots",
               "ident. latency", "L1D coverage", "L2 coverage"});
  for (const WorkloadProfile &P : specjvm98Profiles()) {
    for (uint64_t Threshold : kThresholds) {
      SimulationResult R =
          runnerFor(Threshold).runScheme(P, Scheme::Hotspot);
      double L1DCov = R.Ace ? R.Ace->PerCu[0].Coverage : 0.0;
      double L2Cov = R.Ace ? R.Ace->PerCu[1].Coverage : 0.0;
      T.addRow({P.Name, std::to_string(Threshold),
                std::to_string(R.Do.NumHotspots),
                formatPercent(R.Do.HotspotCodeFraction, 1),
                formatPercent(R.Do.IdentificationLatencyFraction, 2),
                formatPercent(L1DCov, 1), formatPercent(L2Cov, 1)});
    }
  }
  T.print(OS, "Ablation: hot_threshold sweep (hotspot scheme)");
}

int main(int argc, char **argv) {
  dynace_bench::enableDefaultCache();
  registerPerBenchmark("ablation_hot_threshold", runOne);
  return benchMain(
      argc, argv,
      [](std::ostream &OS) {
        printAblation(OS);
        std::vector<RunStats> Stats;
        for (uint64_t Threshold : kThresholds) {
          std::vector<RunStats> S = runnerFor(Threshold).stats();
          Stats.insert(Stats.end(), S.begin(), S.end());
        }
        OS << '\n';
        printRunStats(OS, Stats);
      },
      [] {
        for (uint64_t Threshold : kThresholds)
          runnerFor(Threshold).runAllScheme(specjvm98Profiles(),
                                            Scheme::Hotspot);
      });
}
