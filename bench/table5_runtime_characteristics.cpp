//===- bench/table5_runtime_characteristics.cpp - Table 5 -----------------==//
//
// Regenerates Table 5: runtime characteristics of the hotspot and BBV
// approaches — L1D/L2 hotspot populations and tuning completion on the
// hotspot side; phase populations, tuned-phase interval share, and IPC
// CoVs on the BBV side. Paper shape: ~88% of hotspots finish tuning while
// only ~29% of BBV phases do (yet those cover ~70% of intervals), and
// inter-hotspot IPC variation far exceeds per-hotspot variation.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace dynace;
using namespace dynace_bench;

static void runOne(const WorkloadProfile &P, benchmark::State &State) {
  const BenchmarkRun &R = runner().run(P);
  if (R.Hotspot.Ace) {
    const AceReport &A = *R.Hotspot.Ace;
    State.counters["l1d_hotspots"] =
        static_cast<double>(A.PerCu[0].NumHotspots);
    State.counters["l2_hotspots"] =
        static_cast<double>(A.PerCu[1].NumHotspots);
    State.counters["tuned_pct"] =
        A.TotalHotspots ? 100.0 * static_cast<double>(A.TunedHotspots) /
                              static_cast<double>(A.TotalHotspots)
                        : 0.0;
  }
  if (R.Bbv.BbvR) {
    State.counters["bbv_phases"] =
        static_cast<double>(R.Bbv.BbvR->NumPhases);
    State.counters["bbv_tuned_phases"] =
        static_cast<double>(R.Bbv.BbvR->TunedPhases);
    State.counters["bbv_tuned_interval_pct"] =
        100.0 * R.Bbv.BbvR->IntervalsInTunedPhasesFraction;
  }
}

int main(int argc, char **argv) {
  dynace_bench::enableDefaultCache();
  registerPerBenchmark("table5", runOne);
  return benchMain(
      argc, argv, [](std::ostream &OS) { printTable5(OS, allRuns()); },
      [] { allRuns(); });
}
