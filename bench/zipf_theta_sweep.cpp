//===- bench/zipf_theta_sweep.cpp - workload-skew frontier ----------------==//
//
// Sweeps the Zipf skew knobs (WorkloadProfile::MethodZipfTheta /
// DataZipfTheta, set together by withZipfTheta) over a base benchmark and
// reports how hotspot concentration translates into tuning benefit.
// Expected shape: invocation concentration rises monotonically with theta
// (the knob's contract, pinned by tests/zipf_test.cpp), and with it the
// adaptive schemes' opportunity — fewer, hotter methods dominate execution,
// so per-hotspot tuning covers more of the run.
//
// DYNACE_ZIPF_BASE picks the base benchmark (default db, the suite's
// skew-story workload). DYNACE_ZIPF_THETA replaces the default sweep
// {0, 0.6, 0.9, 1.2} with a single what-if point.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Env.h"
#include "support/Format.h"
#include "support/Table.h"

using namespace dynace;
using namespace dynace_bench;

static const std::vector<WorkloadProfile> &sweepProfiles() {
  static const std::vector<WorkloadProfile> Profiles = [] {
    std::string BaseName = envString("DYNACE_ZIPF_BASE", "db");
    const WorkloadProfile *Base = findProfile(BaseName);
    if (!Base)
      fatalError("DYNACE_ZIPF_BASE",
                 Status::error(ErrorCode::InvalidInput,
                               "'" + BaseName +
                                   "' is not a built-in benchmark"));
    std::vector<double> Thetas = {0.0, 0.6, 0.9, 1.2};
    if (!envString("DYNACE_ZIPF_THETA").empty())
      Thetas = {envDoubleOr("DYNACE_ZIPF_THETA", 0.0, 0.0, 4.0)};
    return zipfSweepProfiles(*Base, Thetas);
  }();
  return Profiles;
}

static void printSweep(std::ostream &OS) {
  TextTable T;
  T.setHeader({"", "invoc. conc.", "hotspots", "hot code", "L1D energy red.",
               "L2 energy red.", "slowdown"});
  for (const WorkloadProfile &P : sweepProfiles()) {
    const BenchmarkRun &R = runner().run(P);
    if (!R.complete()) {
      T.addRow({P.Name, "FAILED", "", "", "", "", ""});
      continue;
    }
    T.addRow({P.Name,
              formatPercent(R.Hotspot.Do.InvocationConcentration, 1),
              formatCount(R.Hotspot.Do.NumHotspots),
              formatPercent(R.Hotspot.Do.HotspotCodeFraction, 1),
              formatPercent(BenchmarkRun::reduction(
                                R.Hotspot.L1DEnergy.total(),
                                R.Baseline.L1DEnergy.total()),
                            1),
              formatPercent(BenchmarkRun::reduction(
                                R.Hotspot.L2Energy.total(),
                                R.Baseline.L2Energy.total()),
                            1),
              formatPercent(BenchmarkRun::slowdown(R.Hotspot.Cycles,
                                                   R.Baseline.Cycles),
                            2)});
  }
  T.print(OS, "Zipf theta sweep (hotspot scheme vs baseline): skew -> "
              "hotspot concentration -> tuning benefit");
}

static void runOne(const WorkloadProfile &P, benchmark::State &State) {
  const BenchmarkRun &R = runner().run(P);
  State.counters["invocation_concentration_pct"] =
      100.0 * R.Hotspot.Do.InvocationConcentration;
  State.counters["hotspot_code_pct"] =
      100.0 * R.Hotspot.Do.HotspotCodeFraction;
  State.counters["l1d_energy_red_pct"] =
      100.0 * BenchmarkRun::reduction(R.Hotspot.L1DEnergy.total(),
                                      R.Baseline.L1DEnergy.total());
}

int main(int argc, char **argv) {
  enableDefaultCache();
  for (const WorkloadProfile &P : sweepProfiles()) {
    benchmark::RegisterBenchmark(
        ("zipf_theta_sweep/" + P.Name).c_str(),
        [&P](benchmark::State &State) {
          for (auto _ : State)
            runOne(P, State);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  return benchMain(argc, argv, printSweep,
                   [] { runner().runAll(sweepProfiles()); });
}
