//===- bench/ablation_reconfig_guard.cpp - hardware-guard ablation --------==//
//
// Ablates the Section 3.4 hardware support: the per-CU last-reconfiguration
// counter that silently rejects requests arriving within the CU's
// reconfiguration interval. Without it, nested hotspots re-snap the caches
// at every entry; expected shape: many more hardware reconfigurations and
// more cycles lost to flush/refill churn.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Format.h"
#include "support/Table.h"

using namespace dynace;
using namespace dynace_bench;

static ExperimentRunner &unguardedRunner() {
  static ExperimentRunner R = [] {
    SimulationOptions Opts = ExperimentRunner::defaultOptions();
    Opts.Ace.GuardEnabled = false;
    return ExperimentRunner(Opts);
  }();
  return R;
}

static void runOne(const WorkloadProfile &P, benchmark::State &State) {
  const BenchmarkRun &Guarded = runner().run(P);
  SimulationResult Unguarded =
      unguardedRunner().runScheme(P, Scheme::Hotspot);
  State.counters["l1d_reconfigs_guarded"] =
      static_cast<double>(Guarded.Hotspot.L1DHardwareReconfigs);
  State.counters["l1d_reconfigs_unguarded"] =
      static_cast<double>(Unguarded.L1DHardwareReconfigs);
  State.counters["slowdown_guarded_pct"] =
      100.0 * BenchmarkRun::slowdown(Guarded.Hotspot.Cycles,
                                     Guarded.Baseline.Cycles);
  State.counters["slowdown_unguarded_pct"] =
      100.0 *
      BenchmarkRun::slowdown(Unguarded.Cycles, Guarded.Baseline.Cycles);
}

static void printAblation(std::ostream &OS) {
  TextTable T;
  T.setHeader({"", "L1D reconfigs", "L2 reconfigs", "slowdown"});
  for (const WorkloadProfile &P : specjvm98Profiles()) {
    const BenchmarkRun &G = runner().run(P);
    SimulationResult U = unguardedRunner().runScheme(P, Scheme::Hotspot);
    T.addRow({P.Name + std::string(" guarded"),
              std::to_string(G.Hotspot.L1DHardwareReconfigs),
              std::to_string(G.Hotspot.L2HardwareReconfigs),
              formatPercent(BenchmarkRun::slowdown(G.Hotspot.Cycles,
                                                   G.Baseline.Cycles),
                            2)});
    T.addRow({P.Name + std::string(" unguarded"),
              std::to_string(U.L1DHardwareReconfigs),
              std::to_string(U.L2HardwareReconfigs),
              formatPercent(
                  BenchmarkRun::slowdown(U.Cycles, G.Baseline.Cycles), 2)});
  }
  T.print(OS, "Ablation: hardware reconfiguration guard on vs off");
}

int main(int argc, char **argv) {
  dynace_bench::enableDefaultCache();
  registerPerBenchmark("ablation_guard", runOne);
  return benchMain(argc, argv, printAblation, [] {
    allRuns();
    unguardedRunner().runAllScheme(specjvm98Profiles(), Scheme::Hotspot);
  });
}
