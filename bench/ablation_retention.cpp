//===- bench/ablation_retention.cpp - selective-sets retention ------------==//
//
// Ablates the selective-sets retention extension (DESIGN.md §8): when a
// cache shrinks, the surviving sets keep their contents instead of flushing
// the whole array. Expected shape: retention lowers reconfiguration
// write-back counts and the slowdown of both adaptive schemes, with energy
// results essentially unchanged.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Format.h"
#include "support/Table.h"

using namespace dynace;
using namespace dynace_bench;

static ExperimentRunner &flushAllRunner() {
  static ExperimentRunner R = [] {
    SimulationOptions Opts = ExperimentRunner::defaultOptions();
    Opts.Hierarchy.RetainOnDownsize = false;
    return ExperimentRunner(Opts);
  }();
  return R;
}

static void runOne(const WorkloadProfile &P, benchmark::State &State) {
  const BenchmarkRun &Retain = runner().run(P);
  SimulationResult Flush = flushAllRunner().runScheme(P, Scheme::Hotspot);
  State.counters["slowdown_retain_pct"] =
      100.0 * BenchmarkRun::slowdown(Retain.Hotspot.Cycles,
                                     Retain.Baseline.Cycles);
  State.counters["slowdown_flushall_pct"] =
      100.0 *
      BenchmarkRun::slowdown(Flush.Cycles, Retain.Baseline.Cycles);
}

static void printAblation(std::ostream &OS) {
  TextTable T;
  T.setHeader({"", "L1D energy red.", "L2 energy red.", "slowdown"});
  for (const WorkloadProfile &P : specjvm98Profiles()) {
    const BenchmarkRun &R = runner().run(P);
    SimulationResult F = flushAllRunner().runScheme(P, Scheme::Hotspot);
    T.addRow({P.Name + std::string(" retain"),
              formatPercent(BenchmarkRun::reduction(
                                R.Hotspot.L1DEnergy.total(),
                                R.Baseline.L1DEnergy.total()),
                            1),
              formatPercent(BenchmarkRun::reduction(
                                R.Hotspot.L2Energy.total(),
                                R.Baseline.L2Energy.total()),
                            1),
              formatPercent(BenchmarkRun::slowdown(R.Hotspot.Cycles,
                                                   R.Baseline.Cycles),
                            2)});
    T.addRow({P.Name + std::string(" flush-all"),
              formatPercent(
                  BenchmarkRun::reduction(F.L1DEnergy.total(),
                                          R.Baseline.L1DEnergy.total()),
                  1),
              formatPercent(
                  BenchmarkRun::reduction(F.L2Energy.total(),
                                          R.Baseline.L2Energy.total()),
                  1),
              formatPercent(
                  BenchmarkRun::slowdown(F.Cycles, R.Baseline.Cycles), 2)});
  }
  T.print(OS, "Ablation: selective-sets retention on downsize vs full "
              "flush (hotspot scheme)");
}

int main(int argc, char **argv) {
  dynace_bench::enableDefaultCache();
  registerPerBenchmark("ablation_retention", runOne);
  return benchMain(argc, argv, printAblation, [] {
    allRuns();
    flushAllRunner().runAllScheme(specjvm98Profiles(), Scheme::Hotspot);
  });
}
