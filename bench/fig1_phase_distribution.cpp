//===- bench/fig1_phase_distribution.cpp - Figure 1 -----------------------==//
//
// Regenerates Figure 1: the distribution of stable vs transitional BBV
// phases (fraction of sampling intervals). Paper shape: most intervals are
// stable; javac has by far the lowest stable fraction (~40%).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace dynace;
using namespace dynace_bench;

static void runOne(const WorkloadProfile &P, benchmark::State &State) {
  const BenchmarkRun &R = runner().run(P);
  if (R.Bbv.BbvR) {
    State.counters["stable_pct"] =
        100.0 * R.Bbv.BbvR->StableIntervalFraction;
    State.counters["phases"] = static_cast<double>(R.Bbv.BbvR->NumPhases);
    State.counters["intervals"] =
        static_cast<double>(R.Bbv.BbvR->TotalIntervals);
  }
}

int main(int argc, char **argv) {
  dynace_bench::enableDefaultCache();
  registerPerBenchmark("fig1", runOne);
  return benchMain(
      argc, argv, [](std::ostream &OS) { printFigure1(OS, allRuns()); },
      [] { allRuns(); });
}
