//===- bench/BenchCommon.h - Shared benchmark harness helpers ---*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the per-table/figure benchmark binaries. Each binary
/// first fans its full simulation grid out across the parallel experiment
/// pipeline (DYNACE_JOBS workers; see sim/ExperimentRunner.h), then
/// registers one google-benchmark per SPECjvm98 program — which hits the
/// warm in-memory cache — and afterwards prints the paper-style table plus
/// the pipeline's per-run accounting.
///
/// Results are cached on disk via DYNACE_CACHE_DIR (set by default here to
/// ".dynace-cache" so the suite simulates once across all binaries);
/// DYNACE_INSTR_BUDGET caps per-run instructions for quick smoke passes.
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_BENCH_BENCHCOMMON_H
#define DYNACE_BENCH_BENCHCOMMON_H

#include "obs/Profile.h"
#include "sim/ExperimentRunner.h"
#include "sim/Reports.h"
#include "workloads/WorkloadProfile.h"

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <functional>
#include <iostream>
#include <vector>

namespace dynace_bench {

/// Enables the on-disk result cache unless the user chose otherwise.
inline void enableDefaultCache() {
  setenv("DYNACE_CACHE_DIR", ".dynace-cache", /*overwrite=*/0);
}

/// Prints the build type + flags this binary was compiled with, so every
/// reported wall time / MIPS figure names the build that produced it.
inline void printBuildInfo(std::ostream &OS) {
#if defined(DYNACE_BUILD_TYPE) && defined(DYNACE_BUILD_FLAGS)
  OS << "[dynace] build: " << DYNACE_BUILD_TYPE << " (flags: \""
     << DYNACE_BUILD_FLAGS << "\")\n";
#else
  OS << "[dynace] build: unknown (configure via CMake for a stamped "
        "binary)\n";
#endif
}

/// The shared runner (one per binary; disk cache shares across binaries).
inline dynace::ExperimentRunner &runner() {
  static dynace::ExperimentRunner R(
      dynace::ExperimentRunner::defaultOptions());
  return R;
}

/// Runs the full triple for every SPECjvm98 profile through the parallel
/// pipeline on first use; later calls (and runner().run() calls) hit the
/// in-memory cache.
inline const std::vector<dynace::BenchmarkRun> &allRuns() {
  static std::vector<dynace::BenchmarkRun> Runs =
      runner().runAll(dynace::specjvm98Profiles());
  return Runs;
}

/// Registers one benchmark per SPECjvm98 program. \p PerBench runs the
/// simulations for that program and fills user counters.
template <typename Fn> void registerPerBenchmark(const char *Prefix, Fn F) {
  for (const dynace::WorkloadProfile &P : dynace::specjvm98Profiles()) {
    benchmark::RegisterBenchmark(
        (std::string(Prefix) + "/" + P.Name).c_str(),
        [&P, F](benchmark::State &State) {
          for (auto _ : State)
            F(P, State);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

/// Standard main body: fan the binary's simulation grid out across the
/// parallel pipeline via \p Prefetch (null = no prefetch), run
/// google-benchmark over the now-warm cache, then print the table via
/// \p Print and the pipeline's per-run accounting.
template <typename PrintFn>
int benchMain(int argc, char **argv, PrintFn Print,
              const std::function<void()> &Prefetch = nullptr) {
  enableDefaultCache();
  printBuildInfo(std::cout);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  if (Prefetch)
    Prefetch();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  {
    DYNACE_PROFILE_SCOPE("report");
    Print(std::cout);
    std::vector<dynace::RunStats> Stats = runner().stats();
    if (!Stats.empty()) {
      std::cout << '\n';
      dynace::printRunStats(std::cout, Stats);
    }
  }
  return 0;
}

} // namespace dynace_bench

#endif // DYNACE_BENCH_BENCHCOMMON_H
