//===- bench/BenchCommon.h - Shared benchmark harness helpers ---*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the per-table/figure benchmark binaries. Each binary
/// registers one google-benchmark per SPECjvm98 program (timing the
/// simulation triple) and afterwards prints the paper-style table.
///
/// Results are cached on disk via DYNACE_CACHE_DIR (set by default here to
/// ".dynace-cache" so the suite simulates once across all binaries);
/// DYNACE_INSTR_BUDGET caps per-run instructions for quick smoke passes.
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_BENCH_BENCHCOMMON_H
#define DYNACE_BENCH_BENCHCOMMON_H

#include "sim/ExperimentRunner.h"
#include "sim/Reports.h"
#include "workloads/WorkloadProfile.h"

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <vector>

namespace dynace_bench {

/// Enables the on-disk result cache unless the user chose otherwise.
inline void enableDefaultCache() {
  setenv("DYNACE_CACHE_DIR", ".dynace-cache", /*overwrite=*/0);
}

/// The shared runner (one per binary; disk cache shares across binaries).
inline dynace::ExperimentRunner &runner() {
  static dynace::ExperimentRunner R(
      dynace::ExperimentRunner::defaultOptions());
  return R;
}

/// Runs (cached) the full triple for every SPECjvm98 profile.
inline const std::vector<dynace::BenchmarkRun> &allRuns() {
  static std::vector<dynace::BenchmarkRun> Runs = [] {
    std::vector<dynace::BenchmarkRun> Out;
    for (const dynace::WorkloadProfile &P : dynace::specjvm98Profiles())
      Out.push_back(runner().run(P));
    return Out;
  }();
  return Runs;
}

/// Registers one benchmark per SPECjvm98 program. \p PerBench runs the
/// simulations for that program and fills user counters.
template <typename Fn> void registerPerBenchmark(const char *Prefix, Fn F) {
  for (const dynace::WorkloadProfile &P : dynace::specjvm98Profiles()) {
    benchmark::RegisterBenchmark(
        (std::string(Prefix) + "/" + P.Name).c_str(),
        [&P, F](benchmark::State &State) {
          for (auto _ : State)
            F(P, State);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

/// Standard main body: run google-benchmark, then print the table via
/// \p PrintFn.
template <typename PrintFn>
int benchMain(int argc, char **argv, PrintFn Print) {
  enableDefaultCache();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  Print(std::cout);
  return 0;
}

} // namespace dynace_bench

#endif // DYNACE_BENCH_BENCHCOMMON_H
