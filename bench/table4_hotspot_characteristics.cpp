//===- bench/table4_hotspot_characteristics.cpp - Table 4 -----------------==//
//
// Regenerates Table 4: runtime hotspot characteristics — dynamic
// instruction count, hotspot population, average hotspot size, fraction of
// execution inside hotspots, invocations per hotspot, and identification
// latency. Paper shape: hotspots cover >99% of execution; identification
// latency stays below ~4% of execution (worst case compress).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace dynace;
using namespace dynace_bench;

static void runOne(const WorkloadProfile &P, benchmark::State &State) {
  const BenchmarkRun &R = runner().run(P);
  const DoStats &S = R.Hotspot.Do;
  State.counters["hotspots"] = static_cast<double>(S.NumHotspots);
  State.counters["avg_size"] = S.AvgHotspotSize;
  State.counters["code_in_hotspots_pct"] = 100.0 * S.HotspotCodeFraction;
  State.counters["avg_invocations"] = S.AvgInvocationsPerHotspot;
  State.counters["ident_latency_pct"] =
      100.0 * S.IdentificationLatencyFraction;
}

int main(int argc, char **argv) {
  dynace_bench::enableDefaultCache();
  registerPerBenchmark("table4", runOne);
  return benchMain(
      argc, argv, [](std::ostream &OS) { printTable4(OS, allRuns()); },
      [] { allRuns(); });
}
