#!/bin/sh
# check_trace.sh — run a small traced grid and validate the trace file.
#
# Usage: scripts/check_trace.sh [repo-root [build-dir]]
#
# Drives the table6 bench binary (the full benchmark x scheme grid, with
# google-benchmark registration filtered out so only the pipeline prefetch
# runs) with DYNACE_TRACE pointed at a scratch file and a tight instruction
# budget, then checks:
#  * the file parses as JSON (python3 json.load);
#  * every event category belongs to the closed set of obs/Trace.h —
#    an unknown category is schema drift and fails the gate;
#  * the tuning-run acceptance events are present: hotspot promotion,
#    tuning transitions, reconfiguration accept/reject, and profiler
#    stage spans.
#
# DYNACE_CACHE_DIR is exported empty so the grid actually simulates: the
# bench's enableDefaultCache() uses setenv(overwrite=0), so the exported
# empty value wins and a warm on-disk cache cannot skip the traced paths.
# Wired into CMake as the `check_trace` ctest and into the sanitize gate.

set -e

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
build="${2:-$root/build}"
bin="$build/bench/table6_tuning_coverage"

if [ ! -x "$bin" ]; then
  echo "check_trace: missing $bin (build the bench targets first)" >&2
  exit 1
fi

trace="$(mktemp "${TMPDIR:-/tmp}/dynace_trace.XXXXXX")"
trap 'rm -f "$trace"' EXIT INT TERM

# 1M instructions per cell: enough for tuning measurements to finish and
# reconfigurations to apply (200k stops at tune.start), still sub-second.
DYNACE_TRACE="$trace" DYNACE_CACHE_DIR="" DYNACE_INSTR_BUDGET=1000000 \
DYNACE_PROFILE=1 \
  "$bin" --benchmark_filter='^$' >/dev/null 2>&1

python3 -c '
import json, sys
events = json.load(open(sys.argv[1]))["traceEvents"]
known = {"hotspot", "tuning", "reconfig", "vm", "cache", "runner", "stage",
         "serve"}
cats = {e["cat"] for e in events if "cat" in e}
unknown = cats - known
assert not unknown, "unknown trace categories: %s" % sorted(unknown)
for need in ("hotspot", "tuning", "reconfig", "stage"):
    assert need in cats, "no %r events in trace" % need
print("check_trace: OK (%d events, categories: %s)"
      % (len(events), ", ".join(sorted(cats))))
' "$trace"
