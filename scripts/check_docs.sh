#!/bin/sh
# check_docs.sh — fail when a public header under src/ lacks a Doxygen
# \file comment.
#
# Usage: scripts/check_docs.sh [repo-root]
#
# Wired into CMake as both the `check_docs` custom target and a ctest test,
# so doc drift fails the suite rather than accumulating silently.

root="${1:-$(dirname "$0")/..}"
status=0

for header in $(find "$root/src" -name '*.h' | sort); do
  if ! grep -q '\\file' "$header"; then
    echo "error: $header lacks a Doxygen \\file comment" >&2
    status=1
  fi
done

if [ "$status" -ne 0 ]; then
  echo "check_docs: FAILED (headers above need \\file documentation)" >&2
else
  echo "check_docs: OK ($(find "$root/src" -name '*.h' | wc -l) headers)"
fi
exit $status
