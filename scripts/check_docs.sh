#!/bin/sh
# check_docs.sh — fail when a public header under src/ lacks a Doxygen
# \file comment, or when a DYNACE_* environment variable read by the
# product code is missing from the documentation.
#
# Usage: scripts/check_docs.sh [repo-root]
#
# Wired into CMake as both the `check_docs` custom target and a ctest test,
# so doc drift fails the suite rather than accumulating silently.

root="${1:-$(dirname "$0")/..}"
status=0

for header in $(find "$root/src" -name '*.h' | sort); do
  if ! grep -q '\\file' "$header"; then
    echo "error: $header lacks a Doxygen \\file comment" >&2
    status=1
  fi
done

# Environment-variable completeness: every DYNACE_* knob the product code
# (src/, bench/, tools/, examples/) reads must be documented in
# README.md's environment table or EXPERIMENTS.md. Test fixtures under
# tests/ (DYNACE_TEST_*, DYNACE_UPDATE_GOLDEN) are exempt; DYNACE_SANITIZE
# is a CMake option, not an environment variable.
vars=$(grep -rhoE '"DYNACE_[A-Z0-9_]+"' \
         "$root/src" "$root/bench" "$root/tools" "$root/examples" \
       | tr -d '"' | sort -u)
nvars=0
for var in $vars; do
  nvars=$((nvars + 1))
  if ! grep -q "$var" "$root/README.md" "$root/EXPERIMENTS.md"; then
    echo "error: $var is read by the code but undocumented" \
         "(add it to README.md's environment table)" >&2
    status=1
  fi
done

# The workload/scenario and observability guides must exist and stay
# reachable from README.
for doc in WORKLOADS OBSERVABILITY; do
  if [ ! -f "$root/docs/$doc.md" ]; then
    echo "error: docs/$doc.md is missing" >&2
    status=1
  elif ! grep -q "docs/$doc\\.md" "$root/README.md"; then
    echo "error: README.md does not link docs/$doc.md" >&2
    status=1
  fi
done

if [ "$status" -ne 0 ]; then
  echo "check_docs: FAILED (see errors above)" >&2
else
  echo "check_docs: OK ($(find "$root/src" -name '*.h' | wc -l) headers," \
       "$nvars env vars documented)"
fi
exit $status
