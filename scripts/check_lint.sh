#!/bin/sh
# check_lint.sh — project-convention lint over the source tree.
#
# Usage: scripts/check_lint.sh [repo-root]
#
# Greps enforce conventions the compiler cannot:
#
#  * no raw getenv() outside src/support/ — configuration flows through
#    the strict envString/envBool/envUnsignedOr parsers (support/Env.h),
#    which validate and fail loudly instead of silently defaulting;
#  * no rand()/srand() outside src/support/ — all randomness comes from
#    the seeded SplitMix64 in support/Random.h so runs stay deterministic
#    and cacheable;
#  * no time() outside src/support/ — wall-clock reads go through the
#    observability layer (trace/profile epochs) or std::chrono at the
#    measurement sites that own them; a stray time() is almost always a
#    determinism bug;
#  * no abort() outside src/support/ — fatal exits go through
#    fatalError(support/Status.h), which reports the Status before
#    exiting, or through the VM trap machinery.
#
# When clang-tidy is on PATH, the .clang-tidy checks also run over the
# annotated concurrency TUs; without it the tidy step is skipped (the
# greps still gate). Wired into CMake as the `check_lint` ctest; the
# sanitize gate chains it too.

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
status=0

# Scanned trees: everything that ships logic, plus the test sources —
# a nondeterministic test (raw rand/time) is as much a reproducibility
# bug as nondeterministic product code. src/support is the one
# sanctioned home for env/random/clock/abort primitives and is excluded.
scan_files() {
  find "$root/src" "$root/bench" "$root/examples" "$root/tools" \
       "$root/tests" \
       \( -name '*.cpp' -o -name '*.h' \) -print | sort |
    grep -v '/src/support/'
}

# ban <label> <extended-regex>
ban() {
  label="$1"
  pattern="$2"
  hits=$(scan_files | xargs grep -En "$pattern" /dev/null 2>/dev/null)
  if [ -n "$hits" ]; then
    echo "error: banned call '$label' outside src/support/:" >&2
    echo "$hits" >&2
    status=1
  fi
}

ban "getenv(" '(^|[^a-zA-Z_:.>])getenv *\('
ban "rand()/srand()" '(^|[^a-zA-Z_])s?rand *\('
ban "time(" '(^|[^a-zA-Z_])time *\('
ban "abort(" '(^|[^a-zA-Z_])abort *\('

if command -v clang-tidy >/dev/null 2>&1; then
  tidy_files="$root/src/support/ThreadPool.cpp $root/src/obs/Trace.cpp \
              $root/src/obs/Metrics.cpp $root/src/obs/Profile.cpp"
  if ! clang-tidy --quiet $tidy_files -- -std=c++20 -I"$root/src"; then
    echo "error: clang-tidy reported findings" >&2
    status=1
  fi
  tidy_note="greps + clang-tidy"
else
  tidy_note="greps only; clang-tidy not found"
fi

if [ "$status" -ne 0 ]; then
  echo "check_lint: FAILED" >&2
else
  echo "check_lint: OK ($(scan_files | wc -l) files, $tidy_note)"
fi
exit $status
