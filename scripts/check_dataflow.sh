#!/bin/sh
# check_dataflow.sh — end-to-end gate for the dataflow analysis engine.
#
# Usage: scripts/check_dataflow.sh [repo-root [build-dir]]
#
# Drives the dynalint binary (the consumer surface of analysis/Dataflow)
# through every shipped entry point and checks the contracts the unit
# tests cannot see from inside the library:
#  * `--dataflow --all` exits 0 over the full benchmark suite — the
#    dataflow diagnostics are advisory (Warning severity) and must never
#    flip the exit code of a suite that lints clean today;
#  * `--all` (no --dataflow) stays warning-free — the default contract
#    is unchanged by this analysis existing;
#  * `--dataflow --zipf-sweep` covers the skewed profile variants the
#    experiments actually run;
#  * the dynatrace selftest sample, canonically dumped and piped through
#    `--trace -`, compiles and lints clean with dataflow on;
#  * `--dot-dataflow` emits a well-formed digraph: one `digraph` header,
#    balanced braces, and at least one mem-in-bounds fact over compress
#    (the generator's constant-base + masked-index idiom is provable; if
#    the fact count drops to zero the unguarded specializer tier has
#    silently stopped eliding guards).
#
# Wired into CMake as the `check_dataflow` ctest and into the sanitize
# gate chain.

set -e

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
build="${2:-$root/build}"
lint="$build/tools/dynalint"
trace="$build/tools/dynatrace"

for bin in "$lint" "$trace"; do
  if [ ! -x "$bin" ]; then
    echo "check_dataflow: missing $bin (build the tools targets first)" >&2
    exit 1
  fi
done

# Runs a dynalint invocation with output captured; on failure the full
# output is replayed so the ctest log shows what broke.
run_quiet() {
  log=$("$@" 2>&1) || {
    echo "check_dataflow: FAILED: $*" >&2
    echo "$log" >&2
    exit 1
  }
}

echo "check_dataflow: dynalint --dataflow --all"
run_quiet "$lint" --dataflow --all

echo "check_dataflow: default --all stays warning-free"
out=$("$lint" --all)
if echo "$out" | grep -vq ', 0 warnings)'; then
  echo "check_dataflow: default lint grew warnings:" >&2
  echo "$out" >&2
  exit 1
fi

echo "check_dataflow: dynalint --dataflow --zipf-sweep compress javac"
run_quiet "$lint" --dataflow --zipf-sweep compress javac

echo "check_dataflow: dynatrace --selftest-dump | dynalint --trace -"
run_quiet sh -c "'$trace' --selftest-dump | '$lint' --dataflow --trace -"

echo "check_dataflow: --dot-dataflow well-formedness"
dot=$("$lint" --dot-dataflow mid0 compress)
headers=$(echo "$dot" | grep -c '^digraph dataflow_')
if [ "$headers" -ne 1 ]; then
  echo "check_dataflow: expected exactly one digraph header, got $headers" >&2
  exit 1
fi
open=$(echo "$dot" | tr -cd '{' | wc -c)
close=$(echo "$dot" | tr -cd '}' | wc -c)
if [ "$open" -ne "$close" ]; then
  echo "check_dataflow: unbalanced braces in DOT output ($open vs $close)" >&2
  exit 1
fi
if ! echo "$dot" | grep -q 'mem-in-bounds'; then
  echo "check_dataflow: no mem-in-bounds facts in compress/mid0 —" \
       "the proof engine regressed" >&2
  exit 1
fi

echo "check_dataflow: OK"
