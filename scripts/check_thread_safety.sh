#!/bin/sh
# check_thread_safety.sh — compile-time lock-discipline gate.
#
# Usage: scripts/check_thread_safety.sh [repo-root]
#
# Runs Clang's -Wthread-safety analysis (see support/ThreadSafety.h and
# DESIGN.md §13) over the annotated concurrency TUs:
#
#  * positive half: every annotated TU must compile clean under
#    -Werror=thread-safety-analysis — an unlocked access to a GUARDED_BY
#    member anywhere in ThreadPool/TraceCollector/MetricsRegistry/
#    Profiler/ResultCache or the serve coordinator/worker fails the build
#    (the lock-free analysis TUs — Dataflow, Verifier — ride along so new
#    shared state there cannot land unannotated);
#  * negative half: tests/thread_safety_negative.cpp, which reads a
#    guarded member without the lock, must FAIL to compile — proving the
#    analysis is actually live, not silently disabled.
#
# The analysis is Clang-only (GCC compiles the annotations away), so when
# no clang++ is on PATH the script exits 77 and ctest records a SKIP
# (SKIP_RETURN_CODE), keeping GCC-only hosts green without weakening the
# gate where Clang exists.

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"

if ! command -v clang++ >/dev/null 2>&1; then
  echo "check_thread_safety: SKIPPED (clang++ not found; GCC builds" \
       "compile the annotations away)"
  exit 77
fi

flags="-fsyntax-only -std=c++20 -I$root/src -Wthread-safety \
       -Werror=thread-safety-analysis"

status=0
for tu in src/support/ThreadPool.cpp src/obs/Trace.cpp src/obs/Metrics.cpp \
          src/obs/Profile.cpp src/sim/ResultCache.cpp \
          src/serve/Coordinator.cpp src/serve/Worker.cpp \
          src/analysis/Dataflow.cpp src/analysis/Verifier.cpp; do
  if ! clang++ $flags "$root/$tu"; then
    echo "error: $tu fails -Wthread-safety" >&2
    status=1
  fi
done

# The negative test must NOT compile: a success here means the analysis
# is not rejecting unlocked guarded accesses and the whole gate is moot.
if clang++ $flags "$root/tests/thread_safety_negative.cpp" 2>/dev/null; then
  echo "error: tests/thread_safety_negative.cpp compiled — the" \
       "thread-safety analysis is not catching unlocked accesses" >&2
  status=1
fi

if [ "$status" -ne 0 ]; then
  echo "check_thread_safety: FAILED" >&2
else
  echo "check_thread_safety: OK (9 checked TUs clean, negative test" \
       "rejected)"
fi
exit $status
