#!/bin/sh
# check_serve.sh — end-to-end smoke of the distributed experiment service.
#
# Usage: scripts/check_serve.sh [repo-root [build-dir]]
#
# Drives the real binaries over a real Unix socket, the way a user would:
#
#  1. `dynace-submit --local` runs the grid serially in-process — the
#     ground-truth report.
#  2. A `dynace-serve --once` daemon runs the same grid across 3 forked
#     workers WITH CHAOS ON (every worker's second assignment crashes it,
#     and a fraction of coordinator/worker receives are dropped), plus a
#     write-ahead journal. The streamed report must be byte-identical to
#     the serial one (`cmp`), and the daemon log must show at least one
#     worker crash — chaos that never fired proves nothing.
#  3. A fresh daemon is pointed at the journal the first one left behind
#     (the "coordinator killed and restarted" story): its grid must be
#     fully replayed — zero re-execution — and still byte-identical.
#  4. `dynace-submit --shutdown` must stop that daemon with exit 0.
#
# Wired into CMake as the `check_serve` ctest and into check_sanitize.sh
# (the same flow under ASan/UBSan covers the fork/IPC paths that the
# gtest serve suite skips under TSan).

set -e

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
build="${2:-$root/build}"

jobs="$(nproc 2>/dev/null || echo 4)"
cmake --build "$build" -j"$jobs" --target dynace-serve dynace-submit >/dev/null

tmp="$(mktemp -d)"
daemon_pid=""
cleanup() {
  [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null
  rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

serve="$build/tools/dynace-serve"
submit="$build/tools/dynace-submit"
benchmarks="compress,db"
export DYNACE_INSTR_BUDGET=200000

wait_for_socket() {
  i=0
  while [ ! -S "$1" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
      echo "check_serve: daemon never bound $1" >&2
      cat "$tmp/serve.log" >&2 2>/dev/null
      exit 1
    fi
    sleep 0.1
  done
}

# --- 1. Serial ground truth ------------------------------------------------
DYNACE_CACHE_DIR="$tmp/cache-local" \
  "$submit" --local --benchmarks "$benchmarks" > "$tmp/local.txt"

# --- 2. Distributed grid under chaos, journaled ----------------------------
# worker.crash:2:1 — every worker's 2nd CellAssign kills it (with 3 workers
# and 6 cells the pigeonhole guarantees at least one fires);
# rpc.recv:13:1 — dropped receives in coordinator handlers and workers.
# Seed 1 keeps arm 0 clean, so the daemon's client-facing GridRequest recv
# (always the process's first) never injects — all chaos lands on paths
# the coordinator must absorb.
env DYNACE_CACHE_DIR="$tmp/cache-serve" \
    DYNACE_SERVE_WORKERS=3 \
    DYNACE_SERVE_HEARTBEAT_MS=50 \
    DYNACE_SERVE_JOURNAL="$tmp/journal.bin" \
    DYNACE_FAULT_SPEC='worker.crash:2:1,rpc.recv:13:1' \
    "$serve" --socket "$tmp/sock1" --once 2> "$tmp/serve.log" &
daemon_pid=$!
wait_for_socket "$tmp/sock1"

"$submit" --socket "$tmp/sock1" --benchmarks "$benchmarks" \
  > "$tmp/served.txt" 2> "$tmp/submit.log"
wait "$daemon_pid"
daemon_pid=""

if ! cmp -s "$tmp/local.txt" "$tmp/served.txt"; then
  echo "check_serve: chaos grid report differs from the serial run" >&2
  diff "$tmp/local.txt" "$tmp/served.txt" >&2 || true
  exit 1
fi
first_grid="$(grep 'grid done' "$tmp/serve.log" | head -n 1)"
case "$first_grid" in
  *" 0 crashes"*|"")
    echo "check_serve: chaos never fired (no worker crash): $first_grid" >&2
    cat "$tmp/serve.log" >&2
    exit 1 ;;
esac

# --- 3. Restarted coordinator resumes from the journal ---------------------
[ -s "$tmp/journal.bin" ] || { echo "check_serve: no journal written" >&2; exit 1; }
env DYNACE_CACHE_DIR="$tmp/cache-serve" \
    DYNACE_SERVE_WORKERS=3 \
    DYNACE_SERVE_JOURNAL="$tmp/journal.bin" \
    "$serve" --socket "$tmp/sock2" 2> "$tmp/serve2.log" &
daemon_pid=$!
wait_for_socket "$tmp/sock2"

"$submit" --socket "$tmp/sock2" --benchmarks "$benchmarks" > "$tmp/resumed.txt"
if ! cmp -s "$tmp/local.txt" "$tmp/resumed.txt"; then
  echo "check_serve: resumed grid report differs from the serial run" >&2
  diff "$tmp/local.txt" "$tmp/resumed.txt" >&2 || true
  exit 1
fi
if ! grep -q '(6 replayed' "$tmp/serve2.log"; then
  echo "check_serve: restarted daemon re-ran cells instead of replaying" \
       "the journal" >&2
  cat "$tmp/serve2.log" >&2
  exit 1
fi

# --- 4. Clean shutdown -----------------------------------------------------
"$submit" --socket "$tmp/sock2" --shutdown 2>/dev/null
if ! wait "$daemon_pid"; then
  echo "check_serve: daemon did not exit 0 on shutdown" >&2
  exit 1
fi
daemon_pid=""

echo "check_serve: OK (chaos grid byte-identical to serial, journal resume" \
     "replayed all cells, clean shutdown)"
