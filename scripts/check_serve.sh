#!/bin/sh
# check_serve.sh — end-to-end smoke of the distributed experiment service.
#
# Usage: scripts/check_serve.sh [repo-root [build-dir]]
#
# Drives the real binaries over a real Unix socket, the way a user would:
#
#  1. `dynace-submit --local` runs the grid serially in-process — the
#     ground-truth report.
#  2. A `dynace-serve --once` daemon runs the same grid across 3 forked
#     workers WITH CHAOS ON (every worker's second assignment crashes it,
#     and a fraction of coordinator/worker receives are dropped), plus a
#     write-ahead journal. The streamed report must be byte-identical to
#     the serial one (`cmp`), and the daemon log must show at least one
#     worker crash — chaos that never fired proves nothing.
#     The chaos daemon also runs with DYNACE_TRACE on: the merged trace
#     it writes must be valid JSON with at least one per-worker track
#     carrying worker.cell spans whose args name the cell and dispatch
#     attempt (the cross-process correlation contract).
#  3. A fresh daemon is pointed at the journal the first one left behind
#     (the "coordinator killed and restarted" story): its grid must be
#     fully replayed — zero re-execution — and still byte-identical.
#  4. The introspection plane: `dynace-top --once` and `dynace-submit
#     --stats` against the live daemon must exit 0 and describe the
#     replayed grid.
#  5. `dynace-submit --shutdown` must stop that daemon with exit 0.
#
# Wired into CMake as the `check_serve` ctest and into check_sanitize.sh
# (the same flow under ASan/UBSan covers the fork/IPC paths that the
# gtest serve suite skips under TSan).

set -e

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
build="${2:-$root/build}"

jobs="$(nproc 2>/dev/null || echo 4)"
cmake --build "$build" -j"$jobs" --target dynace-serve dynace-submit \
  dynace-top >/dev/null

tmp="$(mktemp -d)"
daemon_pid=""
cleanup() {
  [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null
  rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

serve="$build/tools/dynace-serve"
submit="$build/tools/dynace-submit"
top="$build/tools/dynace-top"
benchmarks="compress,db"
export DYNACE_INSTR_BUDGET=200000

wait_for_socket() {
  i=0
  while [ ! -S "$1" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
      echo "check_serve: daemon never bound $1" >&2
      cat "$tmp/serve.log" >&2 2>/dev/null
      exit 1
    fi
    sleep 0.1
  done
}

# --- 1. Serial ground truth ------------------------------------------------
DYNACE_CACHE_DIR="$tmp/cache-local" \
  "$submit" --local --benchmarks "$benchmarks" > "$tmp/local.txt"

# --- 2. Distributed grid under chaos, journaled ----------------------------
# worker.crash:2:1 — every worker's 2nd CellAssign kills it (with 3 workers
# and 6 cells the pigeonhole guarantees at least one fires);
# rpc.recv:13:1 — dropped receives in coordinator handlers and workers.
# Seed 1 keeps arm 0 clean, so the daemon's client-facing GridRequest recv
# (always the process's first) never injects — all chaos lands on paths
# the coordinator must absorb.
env DYNACE_CACHE_DIR="$tmp/cache-serve" \
    DYNACE_SERVE_WORKERS=3 \
    DYNACE_SERVE_HEARTBEAT_MS=50 \
    DYNACE_SERVE_JOURNAL="$tmp/journal.bin" \
    DYNACE_FAULT_SPEC='worker.crash:2:1,rpc.recv:13:1' \
    DYNACE_TRACE="$tmp/trace.json" \
    "$serve" --socket "$tmp/sock1" --once 2> "$tmp/serve.log" &
daemon_pid=$!
wait_for_socket "$tmp/sock1"

"$submit" --socket "$tmp/sock1" --benchmarks "$benchmarks" \
  > "$tmp/served.txt" 2> "$tmp/submit.log"
wait "$daemon_pid"
daemon_pid=""

if ! cmp -s "$tmp/local.txt" "$tmp/served.txt"; then
  echo "check_serve: chaos grid report differs from the serial run" >&2
  diff "$tmp/local.txt" "$tmp/served.txt" >&2 || true
  exit 1
fi
first_grid="$(grep 'grid done' "$tmp/serve.log" | head -n 1)"
case "$first_grid" in
  *" 0 crashes"*|"")
    echo "check_serve: chaos never fired (no worker crash): $first_grid" >&2
    cat "$tmp/serve.log" >&2
    exit 1 ;;
esac

# The chaos daemon's merged trace: one file, coordinator and (respawned)
# worker spans on shared clock-aligned timelines. Validated structurally,
# not against exact scheduling — chaos timing varies, the contract does
# not: valid JSON, at least one per-worker track (tid >= 1001) whose
# worker.cell spans name their cell and dispatch attempt.
[ -s "$tmp/trace.json" ] || {
  echo "check_serve: chaos daemon wrote no trace" >&2; exit 1; }
python3 -c '
import json, sys
events = json.load(open(sys.argv[1]))["traceEvents"]
tracks = {}
for e in events:
    if e.get("tid", 0) >= 1001 and e.get("ph") == "X":
        tracks.setdefault(e["tid"], []).append(e)
assert tracks, "no per-worker spans merged into the coordinator trace"
cells = [e for t in tracks.values() for e in t
         if e.get("name") == "worker.cell"]
assert cells, "no worker.cell spans on any worker track"
for e in cells:
    args = e.get("args", {})
    assert "cell" in args and "attempt" in args, \
        "worker.cell span without cell/attempt args: %r" % (e,)
names = {e.get("args", {}).get("name") for e in events
         if e.get("name") == "thread_name"}
assert any(n and n.startswith("worker ") for n in names), \
    "worker tracks are unnamed"
print("check_serve: merged trace OK (%d worker tracks, %d worker.cell "
      "spans)" % (len(tracks), len(cells)))
' "$tmp/trace.json"

# --- 3. Restarted coordinator resumes from the journal ---------------------
[ -s "$tmp/journal.bin" ] || { echo "check_serve: no journal written" >&2; exit 1; }
env DYNACE_CACHE_DIR="$tmp/cache-serve" \
    DYNACE_SERVE_WORKERS=3 \
    DYNACE_SERVE_JOURNAL="$tmp/journal.bin" \
    "$serve" --socket "$tmp/sock2" 2> "$tmp/serve2.log" &
daemon_pid=$!
wait_for_socket "$tmp/sock2"

"$submit" --socket "$tmp/sock2" --benchmarks "$benchmarks" > "$tmp/resumed.txt"
if ! cmp -s "$tmp/local.txt" "$tmp/resumed.txt"; then
  echo "check_serve: resumed grid report differs from the serial run" >&2
  diff "$tmp/local.txt" "$tmp/resumed.txt" >&2 || true
  exit 1
fi
if ! grep -q '(6 replayed' "$tmp/serve2.log"; then
  echo "check_serve: restarted daemon re-ran cells instead of replaying" \
       "the journal" >&2
  cat "$tmp/serve2.log" >&2
  exit 1
fi

# --- 4. Introspection plane ------------------------------------------------
# The daemon is idle between grids: both pollers must reach it over the
# stats socket (default: "<socket>.stats") and describe the grid it just
# replayed.
"$top" --once --stats-socket "$tmp/sock2.stats" > "$tmp/top.txt"
if ! grep -q 'last grid' "$tmp/top.txt"; then
  echo "check_serve: dynace-top --once did not describe the last grid" >&2
  cat "$tmp/top.txt" >&2
  exit 1
fi
"$submit" --socket "$tmp/sock2" --stats > "$tmp/stats.txt"
if ! grep -q 'cells: 6 total' "$tmp/stats.txt"; then
  echo "check_serve: dynace-submit --stats missing the cell totals" >&2
  cat "$tmp/stats.txt" >&2
  exit 1
fi

# --- 5. Clean shutdown -----------------------------------------------------
"$submit" --socket "$tmp/sock2" --shutdown 2>/dev/null
if ! wait "$daemon_pid"; then
  echo "check_serve: daemon did not exit 0 on shutdown" >&2
  exit 1
fi
daemon_pid=""

echo "check_serve: OK (chaos grid byte-identical to serial with a merged" \
     "trace, journal resume replayed all cells, stats plane live, clean" \
     "shutdown)"
