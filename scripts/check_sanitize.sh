#!/bin/sh
# check_sanitize.sh — build the robustness tests under AddressSanitizer +
# UndefinedBehaviorSanitizer and run them.
#
# Usage: scripts/check_sanitize.sh [repo-root [build-dir]]
#
# The fault-injection and cache-corruption suites exercise every recovery
# path (injected faults, truncated and bit-flipped cache entries, retry
# exhaustion); running them sanitized proves the error paths are as clean
# as the happy paths. Wired into CMake as the `check_sanitize` ctest: it
# configures a side build with -DDYNACE_SANITIZE=address,undefined, builds
# only the two test binaries, and fails on any test failure or sanitizer
# finding (halt_on_error aborts the process, failing the test).

set -e

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
build="${2:-$root/build-sanitize}"

cmake -S "$root" -B "$build" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDYNACE_SANITIZE=address,undefined >/dev/null

jobs="$(nproc 2>/dev/null || echo 4)"
cmake --build "$build" -j"$jobs" \
  --target fault_injection_test resultcache_corruption_test \
           serve_wire_test serve_journal_test serve_test \
           table6_tuning_coverage dynalint dynatrace \
           microbench_hotloop dynace-serve dynace-submit \
           dynace-top obs_test >/dev/null

export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

"$build/tests/fault_injection_test"
"$build/tests/resultcache_corruption_test"

# The distributed-service suites: wire/protocol fuzz (including the
# telemetry and stats codecs), journal torn-tail and kill-resume, the
# coordinator chaos grid (worker crashes, lease re-dispatch, breaker
# fallback) with its merged-trace and stats-plane assertions, and the
# observability layer itself — fork, socketpair and shared-state paths
# all under ASan/UBSan.
"$build/tests/serve_wire_test"
"$build/tests/serve_journal_test"
"$build/tests/serve_test"
"$build/tests/obs_test"

# And the real binaries end to end (daemon + client over a Unix socket,
# chaos on with a merged trace, journal resume, stats plane, clean
# shutdown). check_serve.sh also drives dynace-top --once against the
# live daemon; the no-daemon exit contract runs sanitized here.
"$root/scripts/check_serve.sh" "$root" "$build"
if "$build/tools/dynace-top" --once \
     --stats-socket "$build/no-such-daemon.stats" >/dev/null; then
  echo "check_sanitize: dynace-top --once must exit nonzero with no daemon" >&2
  exit 1
fi

# The trace schema gate under sanitizers: the traced grid exercises every
# emit site (per-thread buffers, flush, JSON rendering) with ASan/UBSan
# watching.
"$root/scripts/check_trace.sh" "$root" "$build"

# The static verifier over every generated workload, sanitized: CFG and
# call-graph construction walk every instruction of every benchmark, so an
# out-of-bounds read in the analysis itself surfaces here.
"$build/tools/dynalint" --all

# dynatrace round-trip smoke, sanitized: the embedded selftest (parse ->
# canonical dump -> re-parse -> compile -> simulate), then the shipped
# example trace through the same canonical fixed point — parser, compiler
# and formatter all run with ASan/UBSan watching.
"$build/tools/dynatrace" --selftest >/dev/null
"$build/tools/dynatrace" --dump "$root/tools/dynatrace/example.trace" \
  > "$build/example.canon"
"$build/tools/dynatrace" --dump - < "$build/example.canon" \
  > "$build/example.canon2"
cmp "$build/example.canon" "$build/example.canon2"

# The dataflow analysis gate, sanitized: abstract interpretation walks
# every instruction of every benchmark (plus the zipf-skewed variants and
# the dynatrace pipe), so a lattice indexing bug or an overflow in the
# interval arithmetic surfaces here with ASan/UBSan watching.
"$root/scripts/check_dataflow.sh" "$root" "$build"

# The specialized kernels under ASan/UBSan: one smoke-budget grid pass
# with DYNACE_SPECIALIZE=1 (the proof-gated unguarded tier) drives every
# fused/branch-specialized/unguarded handler,
# the calibration burst and the image cache through the sanitizers. The
# MIPS gate is moot here (a sanitized build never matches the Release
# baseline, so the regression check self-skips on the build-type stamp);
# what this buys is memory-safety coverage of the specializer paths.
DYNACE_SPECIALIZE=1 "$build/bench/microbench_hotloop" --smoke \
  --budget 200000 --reps 1 >/dev/null

# Convention lint rides along so the sanitize gate is also a full
# conformance pass (greps are build-independent; cheap to repeat).
"$root/scripts/check_lint.sh" "$root"

echo "check_sanitize: OK (fault injection + cache corruption + serve chaos" \
     "+ traced grid + dynalint + dynatrace round-trip + dataflow gate" \
     "+ specialized smoke + lint under ASan/UBSan)"
