//===- tests/bbv_test.cpp - BBV accumulator and manager tests -------------==//

#include "bbv/BbvAccumulator.h"
#include "bbv/BbvManager.h"

#include <gtest/gtest.h>

#include <memory>

using namespace dynace;

// ------------------------------------------------------------ Accumulator

TEST(BbvAccumulator, NormalizedSumsToOne) {
  BbvAccumulator A(32, 24);
  A.addBlock(0x40000000, 10);
  A.addBlock(0x40000080, 30);
  std::vector<double> V = A.normalized();
  double Sum = 0;
  for (double X : V)
    Sum += X;
  EXPECT_NEAR(Sum, 1.0, 1e-12);
}

TEST(BbvAccumulator, EmptyNormalizesToZeros) {
  BbvAccumulator A(32, 24);
  for (double X : A.normalized())
    EXPECT_DOUBLE_EQ(X, 0.0);
}

TEST(BbvAccumulator, BucketIndexUsesPcBitsAboveTwo) {
  BbvAccumulator A(32, 24);
  // PCs differing only in the 2 LSBs land in the same bucket.
  A.addBlock(0x1000, 5);
  A.addBlock(0x1003, 5);
  std::vector<double> V = A.normalized();
  int NonZero = 0;
  for (double X : V)
    NonZero += X > 0;
  EXPECT_EQ(NonZero, 1);
  // PCs differing in bit 2 land in different buckets.
  A.reset();
  A.addBlock(0x1000, 5);
  A.addBlock(0x1004, 5);
  NonZero = 0;
  for (double X : A.normalized())
    NonZero += X > 0;
  EXPECT_EQ(NonZero, 2);
}

TEST(BbvAccumulator, CountersSaturate) {
  BbvAccumulator A(32, /*CounterBits=*/8); // Saturate at 255.
  for (int I = 0; I != 100; ++I)
    A.addBlock(0x1000, 50);
  // One saturated bucket normalizes to 1.0 with no overflow artifacts.
  std::vector<double> V = A.normalized();
  double Max = 0;
  for (double X : V)
    Max = std::max(Max, X);
  EXPECT_DOUBLE_EQ(Max, 1.0);
}

TEST(BbvAccumulator, ResetClearsBuckets) {
  BbvAccumulator A(32, 24);
  A.addBlock(0x1000, 5);
  A.reset();
  for (double X : A.normalized())
    EXPECT_DOUBLE_EQ(X, 0.0);
}

TEST(BbvAccumulator, ManhattanDistanceProperties) {
  std::vector<double> A = {0.5, 0.5, 0.0};
  std::vector<double> B = {0.0, 0.5, 0.5};
  std::vector<double> C = {1.0, 0.0, 0.0};
  // Identity.
  EXPECT_DOUBLE_EQ(BbvAccumulator::manhattanDistance(A, A), 0.0);
  // Symmetry.
  EXPECT_DOUBLE_EQ(BbvAccumulator::manhattanDistance(A, B),
                   BbvAccumulator::manhattanDistance(B, A));
  // Range: normalized vectors are at most 2 apart.
  EXPECT_LE(BbvAccumulator::manhattanDistance(B, C), 2.0);
  EXPECT_DOUBLE_EQ(BbvAccumulator::manhattanDistance(
                       {1.0, 0.0}, std::vector<double>{0.0, 1.0}),
                   2.0);
  // Triangle inequality.
  EXPECT_LE(BbvAccumulator::manhattanDistance(A, C),
            BbvAccumulator::manhattanDistance(A, B) +
                BbvAccumulator::manhattanDistance(B, C));
}

// ---------------------------------------------------------------- Manager

namespace {

/// Scripted platform/unit rig for the BBV manager.
struct BbvRig {
  uint64_t Cycles = 0;
  uint64_t Instructions = 0;
  double Energy = 0.0;
  std::unique_ptr<ConfigurableUnit> L1D;
  std::unique_ptr<ConfigurableUnit> L2;
  std::unique_ptr<BbvManager> Manager;

  double Ipc = 2.0;
  double Epi = 1.0;
  double CycleCarry = 0.0;

  explicit BbvRig(BbvConfig Config = BbvConfig()) {
    L1D = std::make_unique<ConfigurableUnit>(
        "L1D", 4, 10000, 0, [](unsigned) { return ReconfigCost{}; });
    L2 = std::make_unique<ConfigurableUnit>(
        "L2", 4, 100000, 0, [](unsigned) { return ReconfigCost{}; });
    AcePlatform P;
    P.Cycles = [this] { return Cycles; };
    P.Instructions = [this] { return Instructions; };
    P.Energy = [this] { return Energy; };
    P.Stall = [](uint64_t) {};
    Manager = std::make_unique<BbvManager>(
        std::vector<ConfigurableUnit *>{L1D.get(), L2.get()}, std::move(P),
        Config);
  }

  /// Feeds one full sampling interval whose code signature is a loop at
  /// \p BranchPC; IPC/EPI scripted by the current members. Cycles and
  /// energy advance per instruction so the boundary (fired inside the last
  /// onInstruction) observes the interval's full cost.
  void interval(uint64_t BranchPC) {
    uint64_t N = Manager->config().IntervalInstructions;
    for (uint64_t I = 0; I != N; ++I) {
      DynInst D;
      D.PC = (I % 10 == 9) ? BranchPC : BranchPC + 4 * (1 + I % 9);
      D.Class = OpClass::IntAlu;
      if (I % 10 == 9) {
        D.IsCondBranch = true;
        D.Taken = true;
      }
      Instructions += 1;
      CycleCarry += 1.0 / Ipc;
      uint64_t Whole = static_cast<uint64_t>(CycleCarry);
      Cycles += Whole;
      CycleCarry -= static_cast<double>(Whole);
      Energy += Epi;
      Manager->onInstruction(D);
    }
  }
};

} // namespace

TEST(BbvManager, EnumeratesFullCrossProduct) {
  BbvRig Rig;
  // 4 x 4 combos; phase table starts empty.
  EXPECT_EQ(Rig.Manager->numPhases(), 0u);
}

TEST(BbvManager, DistinctSignaturesCreateDistinctPhases) {
  BbvRig Rig;
  Rig.interval(0x40000000);
  Rig.interval(0x40000004);
  Rig.interval(0x40000008);
  EXPECT_EQ(Rig.Manager->numPhases(), 3u);
}

TEST(BbvManager, RecurringSignatureMatchesExistingPhase) {
  BbvRig Rig;
  Rig.interval(0x40000000);
  Rig.interval(0x40000004);
  Rig.interval(0x40000000);
  EXPECT_EQ(Rig.Manager->numPhases(), 2u);
  EXPECT_EQ(Rig.Manager->phase(0).Intervals, 2u);
}

TEST(BbvManager, StableAndTransitionalIntervalCounting) {
  BbvRig Rig;
  // Phase A for 4 intervals (stable), B for 1 (transitional), A for 3.
  for (int I = 0; I != 4; ++I)
    Rig.interval(0x40000000);
  Rig.interval(0x40000004);
  for (int I = 0; I != 3; ++I)
    Rig.interval(0x40000000);
  Rig.Manager->finish();
  BbvReport R = Rig.Manager->report(Rig.Instructions);
  EXPECT_EQ(R.TotalIntervals, 8u);
  EXPECT_NEAR(R.StableIntervalFraction, 7.0 / 8.0, 1e-9);
}

TEST(BbvManager, TuningProgressesThroughCombosAndSelects) {
  BbvConfig Config;
  Config.CalibrateReference = true;
  BbvRig Rig(Config);
  // One long-lived phase: 16 combos x (warm + test) + calibration fits in
  // a few dozen intervals.
  for (int I = 0; I != 60; ++I)
    Rig.interval(0x40000000);
  const BbvPhaseData &P = Rig.Manager->phase(0);
  EXPECT_TRUE(P.Tuned);
  EXPECT_GT(P.Tunings, 8u);
  // Flat IPC and EPI: nothing beats combo 0 by the margin.
  EXPECT_EQ(P.BestConfig, 0u);
}

TEST(BbvManager, TunedPhaseReappliesStoredConfigOnRecurrence) {
  BbvRig Rig;
  for (int I = 0; I != 60; ++I)
    Rig.interval(0x40000000);
  ASSERT_TRUE(Rig.Manager->phase(0).Tuned);
  // Switch away and back: the tuned phase reapplies its best combo at the
  // first interval of recurrence (reconfigs counter moves).
  BbvReport Before = Rig.Manager->report(Rig.Instructions);
  Rig.interval(0x4000001c);
  Rig.interval(0x40000000);
  Rig.interval(0x40000000);
  BbvReport After = Rig.Manager->report(Rig.Instructions);
  EXPECT_GE(After.Coverage, Before.Coverage * 0.5); // Still adapting.
  EXPECT_EQ(After.NumPhases, 2u);
}

TEST(BbvManager, UntunedPhaseNotAdaptedUntilStable) {
  BbvRig Rig;
  Rig.interval(0x40000000); // New phase: transitional, no decision.
  BbvReport R = Rig.Manager->report(Rig.Instructions);
  EXPECT_EQ(R.Tunings, 0u);
}

TEST(BbvManager, MeasurementDroppedOnMidTuningPhaseChange) {
  BbvRig Rig;
  // Establish stability, start testing, then switch phases; the pending
  // test must not record into the wrong phase.
  for (int I = 0; I != 4; ++I)
    Rig.interval(0x40000000);
  uint64_t TuningsBefore = Rig.Manager->phase(0).Tunings;
  Rig.interval(0x40000004); // Decision targeted phase 0; interval is B.
  EXPECT_EQ(Rig.Manager->phase(0).Tunings, TuningsBefore);
}

TEST(BbvManager, ReportAggregates) {
  BbvRig Rig;
  for (int I = 0; I != 30; ++I)
    Rig.interval(0x40000000);
  for (int I = 0; I != 30; ++I)
    Rig.interval(0x40000004);
  Rig.Manager->finish();
  BbvReport R = Rig.Manager->report(Rig.Instructions);
  EXPECT_EQ(R.NumPhases, 2u);
  EXPECT_EQ(R.TotalIntervals, 60u);
  EXPECT_EQ(R.ReconfigsPerCu.size(), 2u);
  EXPECT_GT(R.Coverage, 0.0);
  EXPECT_LE(R.Coverage, 1.0);
  EXPECT_GE(R.PerPhaseIpcCov, 0.0);
}

TEST(BbvManager, ComboOrderVariesFirstUnitFastest) {
  // Combo 1 must differ from combo 0 in the FIRST unit (L1D), leaving L2
  // at its largest setting.
  BbvConfig Config;
  BbvRig Rig(Config);
  // Drive a stable phase through the first two test slots and check which
  // unit moved.
  for (int I = 0; I != 6; ++I)
    Rig.interval(0x40000000);
  // After warm+test of combo 0 and warm of combo 1, L1D should have been
  // requested to setting 1 at some point while L2 stayed at 0.
  EXPECT_EQ(Rig.L2->currentSetting(), 0u);
}
