//===- tests/support_test.cpp - support library unit tests ----------------==//

#include "support/Format.h"
#include "support/Random.h"
#include "support/Statistics.h"
#include "support/Table.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

using namespace dynace;

// ---------------------------------------------------------------- Statistics

TEST(RunningStat, EmptyIsZero) {
  RunningStat S;
  EXPECT_EQ(S.count(), 0u);
  EXPECT_DOUBLE_EQ(S.mean(), 0.0);
  EXPECT_DOUBLE_EQ(S.variance(), 0.0);
  EXPECT_DOUBLE_EQ(S.cov(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat S;
  S.add(42.0);
  EXPECT_EQ(S.count(), 1u);
  EXPECT_DOUBLE_EQ(S.mean(), 42.0);
  EXPECT_DOUBLE_EQ(S.variance(), 0.0);
}

TEST(RunningStat, MatchesNaiveComputation) {
  std::vector<double> Values = {1.5, 2.5, 3.0, 7.25, -2.0, 0.0, 11.0};
  RunningStat S;
  double Sum = 0;
  for (double V : Values) {
    S.add(V);
    Sum += V;
  }
  double Mean = Sum / Values.size();
  double Var = 0;
  for (double V : Values)
    Var += (V - Mean) * (V - Mean);
  Var /= Values.size();
  EXPECT_NEAR(S.mean(), Mean, 1e-12);
  EXPECT_NEAR(S.variance(), Var, 1e-12);
  EXPECT_NEAR(S.stddev(), std::sqrt(Var), 1e-12);
}

TEST(RunningStat, CovIsStddevOverMean) {
  RunningStat S;
  S.add(10.0);
  S.add(20.0);
  EXPECT_NEAR(S.cov(), S.stddev() / 15.0, 1e-12);
}

TEST(RunningStat, CovZeroMeanIsZero) {
  RunningStat S;
  S.add(-1.0);
  S.add(1.0);
  EXPECT_DOUBLE_EQ(S.cov(), 0.0);
}

TEST(RunningStat, MergeMatchesSequential) {
  RunningStat A, B, All;
  for (int I = 0; I != 10; ++I) {
    A.add(I * 1.5);
    All.add(I * 1.5);
  }
  for (int I = 0; I != 7; ++I) {
    B.add(100.0 - I);
    All.add(100.0 - I);
  }
  A.merge(B);
  EXPECT_EQ(A.count(), All.count());
  EXPECT_NEAR(A.mean(), All.mean(), 1e-9);
  EXPECT_NEAR(A.variance(), All.variance(), 1e-9);
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat A, Empty;
  A.add(3.0);
  A.merge(Empty);
  EXPECT_EQ(A.count(), 1u);
  Empty.merge(A);
  EXPECT_EQ(Empty.count(), 1u);
  EXPECT_DOUBLE_EQ(Empty.mean(), 3.0);
}

TEST(RunningStat, ClearResets) {
  RunningStat S;
  S.add(5.0);
  S.clear();
  EXPECT_EQ(S.count(), 0u);
  EXPECT_DOUBLE_EQ(S.mean(), 0.0);
}

TEST(Statistics, MeanOfAndCovOf) {
  EXPECT_DOUBLE_EQ(meanOf({}), 0.0);
  EXPECT_DOUBLE_EQ(meanOf({2.0, 4.0}), 3.0);
  EXPECT_DOUBLE_EQ(covOf({5.0, 5.0, 5.0}), 0.0);
  EXPECT_GT(covOf({1.0, 9.0}), 0.5);
}

TEST(Statistics, WeightedMean) {
  EXPECT_DOUBLE_EQ(weightedMean({1.0, 3.0}, {1.0, 1.0}), 2.0);
  EXPECT_DOUBLE_EQ(weightedMean({1.0, 3.0}, {3.0, 1.0}), 1.5);
  EXPECT_DOUBLE_EQ(weightedMean({1.0}, {0.0}), 0.0);
}

// -------------------------------------------------------------------- Random

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 A(123), B(123);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 A(1), B(2);
  int Same = 0;
  for (int I = 0; I != 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 2);
}

TEST(SplitMix64, NextBelowInRange) {
  SplitMix64 Rng(7);
  for (int I = 0; I != 1000; ++I)
    EXPECT_LT(Rng.nextBelow(17), 17u);
}

TEST(SplitMix64, NextInRangeInclusive) {
  SplitMix64 Rng(9);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I != 2000; ++I) {
    uint64_t V = Rng.nextInRange(3, 5);
    EXPECT_GE(V, 3u);
    EXPECT_LE(V, 5u);
    SawLo |= V == 3;
    SawHi |= V == 5;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(SplitMix64, NextDoubleInUnitInterval) {
  SplitMix64 Rng(11);
  for (int I = 0; I != 1000; ++I) {
    double D = Rng.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(SplitMix64, NextBoolRoughlyFair) {
  SplitMix64 Rng(13);
  int True = 0;
  for (int I = 0; I != 10000; ++I)
    True += Rng.nextBool(0.3);
  EXPECT_NEAR(True / 10000.0, 0.3, 0.03);
}

TEST(Random, SampleDiscreteRespectsWeights) {
  SplitMix64 Rng(17);
  std::vector<double> W = {0.0, 10.0, 0.0};
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(sampleDiscrete(Rng, W), 1u);
}

TEST(Random, SampleDiscreteProportions) {
  SplitMix64 Rng(19);
  std::vector<double> W = {1.0, 3.0};
  int Counts[2] = {0, 0};
  for (int I = 0; I != 20000; ++I)
    ++Counts[sampleDiscrete(Rng, W)];
  EXPECT_NEAR(Counts[1] / 20000.0, 0.75, 0.03);
}

TEST(Random, ZipfWeightsDecreasing) {
  std::vector<double> W = zipfWeights(10, 0.8);
  ASSERT_EQ(W.size(), 10u);
  for (size_t I = 1; I != W.size(); ++I)
    EXPECT_LT(W[I], W[I - 1]);
  EXPECT_DOUBLE_EQ(W[0], 1.0);
}

// -------------------------------------------------------------------- Format

TEST(Format, Percent) {
  EXPECT_EQ(formatPercent(0.9903), "99.03%");
  EXPECT_EQ(formatPercent(0.5, 0), "50%");
  EXPECT_EQ(formatPercent(0.0365), "3.65%");
  EXPECT_EQ(formatPercent(1.0, 1), "100.0%");
}

TEST(Format, Count) {
  EXPECT_EQ(formatCount(0), "0");
  EXPECT_EQ(formatCount(999), "999");
  EXPECT_EQ(formatCount(1000), "1,000");
  EXPECT_EQ(formatCount(81645), "81,645");
  EXPECT_EQ(formatCount(1234567890), "1,234,567,890");
}

TEST(Format, Scientific) {
  EXPECT_EQ(formatScientific(9.83e9), "9.83E+09");
  EXPECT_EQ(formatScientific(5.1e9), "5.10E+09");
}

TEST(Format, Fixed) {
  EXPECT_EQ(formatFixed(1.567, 2), "1.57");
  EXPECT_EQ(formatFixed(2.0, 1), "2.0");
}

// --------------------------------------------------------------------- Table

TEST(TextTable, RendersAlignedColumns) {
  TextTable T;
  T.setHeader({"name", "value"});
  T.addRow({"alpha", "1"});
  T.addRow({"b", "22222"});
  std::ostringstream OS;
  T.print(OS, "Title");
  std::string Out = OS.str();
  EXPECT_NE(Out.find("Title"), std::string::npos);
  EXPECT_NE(Out.find("alpha"), std::string::npos);
  EXPECT_NE(Out.find("22222"), std::string::npos);
  // Right-aligned numeric column: "1" must be padded to width of "22222".
  EXPECT_NE(Out.find("    1"), std::string::npos);
}

TEST(TextTable, EmptyTablePrintsNothing) {
  TextTable T;
  std::ostringstream OS;
  T.print(OS);
  EXPECT_TRUE(OS.str().empty());
}

TEST(TextTable, ShortRowsLeaveBlanks) {
  TextTable T;
  T.setHeader({"a", "b", "c"});
  T.addRow({"x"});
  std::ostringstream OS;
  T.print(OS);
  EXPECT_NE(OS.str().find("x"), std::string::npos);
}

TEST(TextTable, SeparatorBetweenSections) {
  TextTable T;
  T.setHeader({"k"});
  T.addRow({"one"});
  T.addSeparator();
  T.addRow({"two"});
  std::ostringstream OS;
  T.print(OS);
  // Expect at least three rules: under header, before "two", and at end.
  std::string Out = OS.str();
  size_t Rules = 0, Pos = 0;
  while ((Pos = Out.find("---", Pos)) != std::string::npos) {
    ++Rules;
    Pos = Out.find('\n', Pos);
  }
  EXPECT_GE(Rules, 3u);
}
