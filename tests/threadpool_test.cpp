//===- tests/threadpool_test.cpp - ThreadPool unit tests ------------------==//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <vector>

using namespace dynace;

TEST(ThreadPool, SubmitReturnsTaskResults) {
  ThreadPool Pool(4);
  std::vector<std::future<int>> Futures;
  for (int I = 0; I != 32; ++I)
    Futures.push_back(Pool.submit([I] { return I * I; }));
  for (int I = 0; I != 32; ++I)
    EXPECT_EQ(Futures[I].get(), I * I);
}

TEST(ThreadPool, ExceptionPropagatesToFutureGet) {
  ThreadPool Pool(2);
  std::future<int> Bad = Pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  std::future<int> Good = Pool.submit([] { return 7; });
  EXPECT_THROW(Bad.get(), std::runtime_error);
  // A throwing task must not take the pool down with it.
  EXPECT_EQ(Good.get(), 7);
}

TEST(ThreadPool, SingleThreadRunsTasksInSubmissionOrder) {
  ThreadPool Pool(1);
  EXPECT_EQ(Pool.size(), 1u);
  std::vector<int> Order;
  std::vector<std::future<void>> Futures;
  for (int I = 0; I != 16; ++I)
    Futures.push_back(Pool.submit([I, &Order] { Order.push_back(I); }));
  for (std::future<void> &F : Futures)
    F.get();
  ASSERT_EQ(Order.size(), 16u);
  for (int I = 0; I != 16; ++I)
    EXPECT_EQ(Order[I], I); // FIFO: the degenerate case is strictly serial.
}

TEST(ThreadPool, ZeroThreadRequestClampsToOne) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.size(), 1u);
  EXPECT_EQ(Pool.submit([] { return 42; }).get(), 42);
}

TEST(ThreadPool, WaitDrainsAllQueuedTasks) {
  std::atomic<int> Done{0};
  ThreadPool Pool(3);
  for (int I = 0; I != 64; ++I)
    Pool.submit([&Done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ++Done;
    });
  Pool.wait();
  EXPECT_EQ(Done.load(), 64);
}

TEST(ThreadPool, DestructorRunsEverySubmittedTask) {
  std::atomic<int> Done{0};
  {
    ThreadPool Pool(2);
    for (int I = 0; I != 50; ++I)
      Pool.submit([&Done] { ++Done; });
  } // Destructor drains the queue before joining.
  EXPECT_EQ(Done.load(), 50);
}

TEST(ThreadPool, DefaultThreadCountHonorsDynaceJobs) {
  ASSERT_EQ(setenv("DYNACE_JOBS", "3", /*overwrite=*/1), 0);
  EXPECT_EQ(ThreadPool::defaultThreadCount(), 3u);
  ASSERT_EQ(unsetenv("DYNACE_JOBS"), 0);
  EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
  // Malformed values are fatal rather than silently ignored; see
  // env_test.cpp for the death tests.
}
