//===- tests/obs_test.cpp - Observability layer tests ---------------------==//
//
// Covers the obs/ subsystem: trace event ordering within a thread, log2
// histogram bucket boundaries, metrics snapshot merging across ThreadPool
// workers, structural JSON validity of an emitted trace file (including
// the closed category set), and the determinism contract — per-run metrics
// identical between a 1-worker and a 4-worker pipeline.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "sim/ExperimentRunner.h"
#include "sim/ResultCache.h"
#include "support/ThreadPool.h"
#include "workloads/WorkloadGenerator.h"
#include "workloads/WorkloadProfile.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

using namespace dynace;

namespace {

std::string tempTracePath(const char *Tag) {
  return ::testing::TempDir() + "dynace_obs_" + Tag + "_" +
         std::to_string(::getpid()) + ".json";
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::stringstream Ss;
  Ss << In.rdbuf();
  return Ss.str();
}

/// Restores a disabled collector and removes the trace file even when the
/// test body exits early via a failed ASSERT.
struct TraceFixture {
  explicit TraceFixture(const char *Tag) : Path(tempTracePath(Tag)) {
    obs::TraceCollector::instance().configure(Path);
  }
  ~TraceFixture() {
    obs::TraceCollector::instance().configure("");
    std::remove(Path.c_str());
  }
  std::string Path;
};

/// Minimal JSON syntax checker (objects, arrays, strings with escapes,
/// numbers, true/false/null). \returns true when \p Text is exactly one
/// valid JSON value. No external parser: the ctest must not depend on
/// python (scripts/check_trace.sh covers that angle).
class JsonChecker {
public:
  explicit JsonChecker(const std::string &Text) : S(Text) {}
  bool valid() {
    skipWs();
    if (!value())
      return false;
    skipWs();
    return Pos == S.size();
  }

private:
  bool value() {
    if (Pos >= S.size())
      return false;
    switch (S[Pos]) {
    case '{':
      return object();
    case '[':
      return array();
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return number();
    }
  }
  bool object() {
    ++Pos; // '{'
    skipWs();
    if (Pos < S.size() && S[Pos] == '}')
      return ++Pos, true;
    while (true) {
      skipWs();
      if (!string())
        return false;
      skipWs();
      if (Pos >= S.size() || S[Pos] != ':')
        return false;
      ++Pos;
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (Pos < S.size() && S[Pos] == ',') {
        ++Pos;
        continue;
      }
      break;
    }
    if (Pos >= S.size() || S[Pos] != '}')
      return false;
    return ++Pos, true;
  }
  bool array() {
    ++Pos; // '['
    skipWs();
    if (Pos < S.size() && S[Pos] == ']')
      return ++Pos, true;
    while (true) {
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (Pos < S.size() && S[Pos] == ',') {
        ++Pos;
        continue;
      }
      break;
    }
    if (Pos >= S.size() || S[Pos] != ']')
      return false;
    return ++Pos, true;
  }
  bool string() {
    if (Pos >= S.size() || S[Pos] != '"')
      return false;
    ++Pos;
    while (Pos < S.size() && S[Pos] != '"') {
      if (S[Pos] == '\\') {
        ++Pos;
        if (Pos >= S.size())
          return false;
      }
      ++Pos;
    }
    if (Pos >= S.size())
      return false;
    return ++Pos, true;
  }
  bool number() {
    size_t Begin = Pos;
    if (Pos < S.size() && S[Pos] == '-')
      ++Pos;
    while (Pos < S.size() &&
           (std::isdigit(static_cast<unsigned char>(S[Pos])) ||
            S[Pos] == '.' || S[Pos] == 'e' || S[Pos] == 'E' ||
            S[Pos] == '+' || S[Pos] == '-'))
      ++Pos;
    return Pos > Begin;
  }
  bool literal(const char *L) {
    size_t N = std::strlen(L);
    if (S.compare(Pos, N, L) != 0)
      return false;
    Pos += N;
    return true;
  }
  void skipWs() {
    while (Pos < S.size() &&
           std::isspace(static_cast<unsigned char>(S[Pos])))
      ++Pos;
  }

  const std::string &S;
  size_t Pos = 0;
};

/// Every `"cat": "<...>"` occurrence in the trace text.
std::vector<std::string> extractCategories(const std::string &Text) {
  std::vector<std::string> Cats;
  const std::string Needle = "\"cat\": \"";
  for (size_t Pos = Text.find(Needle); Pos != std::string::npos;
       Pos = Text.find(Needle, Pos + 1)) {
    size_t Begin = Pos + Needle.size();
    size_t End = Text.find('"', Begin);
    if (End != std::string::npos)
      Cats.push_back(Text.substr(Begin, End - Begin));
  }
  return Cats;
}

SimulationOptions quickOptions(Scheme S) {
  SimulationOptions Opts;
  Opts.SchemeKind = S;
  Opts.MaxInstructions = 300000;
  return Opts;
}

} // namespace

TEST(TraceCollector, EventsWithinAThreadStayOrdered) {
  TraceFixture Fx("order");
  DYNACE_TRACE_INSTANT("vm", "first");
  DYNACE_TRACE_INSTANT("vm", "second");
  DYNACE_TRACE_INSTANT("vm", "third");
  ASSERT_TRUE(obs::TraceCollector::instance().flush());

  std::string Text = slurp(Fx.Path);
  size_t First = Text.find("\"first\"");
  size_t Second = Text.find("\"second\"");
  size_t Third = Text.find("\"third\"");
  ASSERT_NE(First, std::string::npos);
  ASSERT_NE(Second, std::string::npos);
  ASSERT_NE(Third, std::string::npos);
  // flush() sorts by timestamp; same-thread emissions have monotonically
  // increasing timestamps, so file order must equal emission order.
  EXPECT_LT(First, Second);
  EXPECT_LT(Second, Third);
}

TEST(TraceCollector, DisabledPathEmitsNothing) {
  obs::TraceCollector::instance().configure("");
  EXPECT_FALSE(obs::traceEnabled());
  DYNACE_TRACE_INSTANT("vm", "ghost", obs::traceArg("k", uint64_t(1)));
  EXPECT_FALSE(obs::TraceCollector::instance().flush());
}

TEST(TraceCollector, JsonEscapingAndKnownCategories) {
  EXPECT_EQ(obs::jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  for (const char *Cat :
       {"hotspot", "tuning", "reconfig", "vm", "cache", "runner", "stage"})
    EXPECT_TRUE(obs::isKnownTraceCategory(Cat)) << Cat;
  EXPECT_FALSE(obs::isKnownTraceCategory("surprise"));
}

TEST(Histogram, BucketBoundariesAreLog2) {
  // Bucket 0 holds only the value 0; bucket i >= 1 holds [2^(i-1), 2^i-1].
  EXPECT_EQ(histogramBucketFor(0), 0u);
  EXPECT_EQ(histogramBucketFor(1), 1u);
  EXPECT_EQ(histogramBucketFor(2), 2u);
  EXPECT_EQ(histogramBucketFor(3), 2u);
  EXPECT_EQ(histogramBucketFor(4), 3u);
  EXPECT_EQ(histogramBucketFor(7), 3u);
  EXPECT_EQ(histogramBucketFor(8), 4u);
  EXPECT_EQ(histogramBucketFor(1023), 10u);
  EXPECT_EQ(histogramBucketFor(1024), 11u);
  EXPECT_EQ(histogramBucketFor(UINT64_MAX), 64u);
  for (unsigned I = 1; I != kHistogramBuckets; ++I) {
    uint64_t Lo = histogramBucketLowerBound(I);
    EXPECT_EQ(histogramBucketFor(Lo), I);
    EXPECT_EQ(histogramBucketFor(Lo - 1), I - 1);
  }

  Histogram H;
  for (uint64_t V : {0ull, 1ull, 2ull, 3ull, 1024ull})
    H.record(V);
  HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 5u);
  EXPECT_EQ(S.Sum, 1030u);
  EXPECT_EQ(S.Buckets[0], 1u);
  EXPECT_EQ(S.Buckets[1], 1u);
  EXPECT_EQ(S.Buckets[2], 2u);
  EXPECT_EQ(S.Buckets[11], 1u);
  // Trailing zero buckets are trimmed from snapshots.
  EXPECT_EQ(S.Buckets.size(), 12u);
}

TEST(MetricsRegistry, SnapshotMergeAcrossThreadPoolWorkers) {
  // The pipeline pattern: each worker accumulates into its own registry,
  // and the per-worker snapshots merge into one aggregate. The merged
  // instruments must equal the arithmetic totals regardless of worker
  // count or scheduling.
  constexpr unsigned kWorkers = 4;
  constexpr unsigned kTasks = 16;
  std::vector<MetricsSnapshot> Parts(kTasks);
  {
    ThreadPool Pool(kWorkers);
    std::vector<std::future<void>> Futures;
    for (unsigned T = 0; T != kTasks; ++T)
      Futures.push_back(Pool.submit([T, &Parts] {
        MetricsRegistry R;
        R.counter("work.items").inc(T + 1);
        R.gauge("work.last").set(static_cast<double>(T));
        for (uint64_t V = 0; V != 10; ++V)
          R.histogram("work.sizes").record(V * (T + 1));
        Parts[T] = R.snapshot();
      }));
    for (std::future<void> &F : Futures)
      F.get();
  }

  MetricsRegistry Merged;
  for (const MetricsSnapshot &S : Parts)
    Merged.merge(S);
  MetricsSnapshot Total = Merged.snapshot();

  // 1 + 2 + ... + 16.
  EXPECT_EQ(Total.counterOr("work.items"), 136u);
  // Sum over tasks of (0+1+...+9)*(T+1) = 45 * 136.
  HistogramSnapshot H = Total.Histograms.at("work.sizes");
  EXPECT_EQ(H.Count, kTasks * 10u);
  EXPECT_EQ(H.Sum, 45u * 136u);
  // merge() is associative with identical totals however it is grouped.
  MetricsRegistry Pairwise;
  for (unsigned T = 0; T != kTasks; T += 2) {
    MetricsRegistry Pair;
    Pair.merge(Parts[T]);
    Pair.merge(Parts[T + 1]);
    Pairwise.merge(Pair.snapshot());
  }
  EXPECT_EQ(Pairwise.snapshot().Counters, Total.Counters);
  EXPECT_EQ(Pairwise.snapshot().Histograms, Total.Histograms);
}

TEST(TraceFile, TuningRunEmitsValidJsonWithKnownCategories) {
  TraceFixture Fx("tuningrun");
  GeneratedWorkload W = WorkloadGenerator::generate(specjvm98Profiles()[0]);
  {
    System Sys(W.Prog, quickOptions(Scheme::Hotspot));
    SimulationResult R = Sys.run();
    EXPECT_GT(R.Instructions, 0u);
  }
  ASSERT_TRUE(obs::TraceCollector::instance().flush());

  std::string Text = slurp(Fx.Path);
  ASSERT_FALSE(Text.empty());
  EXPECT_TRUE(JsonChecker(Text).valid()) << "trace is not valid JSON";

  std::vector<std::string> Cats = extractCategories(Text);
  ASSERT_FALSE(Cats.empty());
  for (const std::string &Cat : Cats)
    EXPECT_TRUE(obs::isKnownTraceCategory(Cat.c_str()))
        << "unknown category: " << Cat;
  // The acceptance events of a tuning run: hotspot promotion, tuning
  // transitions, and reconfiguration accept/reject.
  EXPECT_NE(Text.find("\"cat\": \"hotspot\""), std::string::npos);
  EXPECT_NE(Text.find("\"cat\": \"tuning\""), std::string::npos);
  EXPECT_NE(Text.find("\"cat\": \"reconfig\""), std::string::npos);
  EXPECT_NE(Text.find("\"trace.flush\""), std::string::npos);
}

TEST(MetricsDeterminism, PerRunMetricsIdenticalForJobs1And4) {
  // The per-run registry must be driven only by deterministic simulation
  // events: the snapshot (and hence the full serialized result) has to be
  // bit-identical whether the pipeline ran on one worker or four.
  unsetenv("DYNACE_CACHE_DIR");
  std::vector<WorkloadProfile> Profiles(specjvm98Profiles().begin(),
                                        specjvm98Profiles().begin() + 3);
  SimulationOptions Opts;
  Opts.MaxInstructions = 150000;

  ExperimentRunner Serial(Opts);
  std::vector<BenchmarkRun> RunsSerial = Serial.runAll(Profiles, /*Jobs=*/1);
  ExperimentRunner Parallel(Opts);
  std::vector<BenchmarkRun> RunsParallel =
      Parallel.runAll(Profiles, /*Jobs=*/4);

  ASSERT_EQ(RunsSerial.size(), RunsParallel.size());
  for (size_t I = 0; I != RunsSerial.size(); ++I) {
    EXPECT_EQ(RunsSerial[I].Hotspot.Metrics, RunsParallel[I].Hotspot.Metrics);
    EXPECT_EQ(RunsSerial[I].Bbv.Metrics, RunsParallel[I].Bbv.Metrics);
    EXPECT_FALSE(RunsSerial[I].Hotspot.Metrics.empty());
    EXPECT_GT(RunsSerial[I].Hotspot.Metrics.counterOr("sim.batches"), 0u);
    // The snapshot rides the canonical serialization, so the whole result
    // digests identically too.
    EXPECT_EQ(serializeResult(RunsSerial[I].Hotspot),
              serializeResult(RunsParallel[I].Hotspot));
  }
}
