//===- tests/obs_test.cpp - Observability layer tests ---------------------==//
//
// Covers the obs/ subsystem: trace event ordering within a thread, log2
// histogram bucket boundaries, metrics snapshot merging across ThreadPool
// workers, structural JSON validity of an emitted trace file (including
// the closed category set), and the determinism contract — per-run metrics
// identical between a 1-worker and a 4-worker pipeline.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "sim/ExperimentRunner.h"
#include "sim/ResultCache.h"
#include "support/ThreadPool.h"
#include "workloads/WorkloadGenerator.h"
#include "workloads/WorkloadProfile.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

using namespace dynace;

namespace {

std::string tempTracePath(const char *Tag) {
  return ::testing::TempDir() + "dynace_obs_" + Tag + "_" +
         std::to_string(::getpid()) + ".json";
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::stringstream Ss;
  Ss << In.rdbuf();
  return Ss.str();
}

/// Restores a disabled collector and removes the trace file even when the
/// test body exits early via a failed ASSERT.
struct TraceFixture {
  explicit TraceFixture(const char *Tag) : Path(tempTracePath(Tag)) {
    obs::TraceCollector::instance().configure(Path);
  }
  ~TraceFixture() {
    obs::TraceCollector::instance().configure("");
    std::remove(Path.c_str());
  }
  std::string Path;
};

/// Minimal JSON syntax checker (objects, arrays, strings with escapes,
/// numbers, true/false/null). \returns true when \p Text is exactly one
/// valid JSON value. No external parser: the ctest must not depend on
/// python (scripts/check_trace.sh covers that angle).
class JsonChecker {
public:
  explicit JsonChecker(const std::string &Text) : S(Text) {}
  bool valid() {
    skipWs();
    if (!value())
      return false;
    skipWs();
    return Pos == S.size();
  }

private:
  bool value() {
    if (Pos >= S.size())
      return false;
    switch (S[Pos]) {
    case '{':
      return object();
    case '[':
      return array();
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return number();
    }
  }
  bool object() {
    ++Pos; // '{'
    skipWs();
    if (Pos < S.size() && S[Pos] == '}')
      return ++Pos, true;
    while (true) {
      skipWs();
      if (!string())
        return false;
      skipWs();
      if (Pos >= S.size() || S[Pos] != ':')
        return false;
      ++Pos;
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (Pos < S.size() && S[Pos] == ',') {
        ++Pos;
        continue;
      }
      break;
    }
    if (Pos >= S.size() || S[Pos] != '}')
      return false;
    return ++Pos, true;
  }
  bool array() {
    ++Pos; // '['
    skipWs();
    if (Pos < S.size() && S[Pos] == ']')
      return ++Pos, true;
    while (true) {
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (Pos < S.size() && S[Pos] == ',') {
        ++Pos;
        continue;
      }
      break;
    }
    if (Pos >= S.size() || S[Pos] != ']')
      return false;
    return ++Pos, true;
  }
  bool string() {
    if (Pos >= S.size() || S[Pos] != '"')
      return false;
    ++Pos;
    while (Pos < S.size() && S[Pos] != '"') {
      if (S[Pos] == '\\') {
        ++Pos;
        if (Pos >= S.size())
          return false;
      }
      ++Pos;
    }
    if (Pos >= S.size())
      return false;
    return ++Pos, true;
  }
  bool number() {
    size_t Begin = Pos;
    if (Pos < S.size() && S[Pos] == '-')
      ++Pos;
    while (Pos < S.size() &&
           (std::isdigit(static_cast<unsigned char>(S[Pos])) ||
            S[Pos] == '.' || S[Pos] == 'e' || S[Pos] == 'E' ||
            S[Pos] == '+' || S[Pos] == '-'))
      ++Pos;
    return Pos > Begin;
  }
  bool literal(const char *L) {
    size_t N = std::strlen(L);
    if (S.compare(Pos, N, L) != 0)
      return false;
    Pos += N;
    return true;
  }
  void skipWs() {
    while (Pos < S.size() &&
           std::isspace(static_cast<unsigned char>(S[Pos])))
      ++Pos;
  }

  const std::string &S;
  size_t Pos = 0;
};

/// Every `"cat": "<...>"` occurrence in the trace text.
std::vector<std::string> extractCategories(const std::string &Text) {
  std::vector<std::string> Cats;
  const std::string Needle = "\"cat\": \"";
  for (size_t Pos = Text.find(Needle); Pos != std::string::npos;
       Pos = Text.find(Needle, Pos + 1)) {
    size_t Begin = Pos + Needle.size();
    size_t End = Text.find('"', Begin);
    if (End != std::string::npos)
      Cats.push_back(Text.substr(Begin, End - Begin));
  }
  return Cats;
}

SimulationOptions quickOptions(Scheme S) {
  SimulationOptions Opts;
  Opts.SchemeKind = S;
  Opts.MaxInstructions = 300000;
  return Opts;
}

} // namespace

TEST(TraceCollector, EventsWithinAThreadStayOrdered) {
  TraceFixture Fx("order");
  DYNACE_TRACE_INSTANT("vm", "first");
  DYNACE_TRACE_INSTANT("vm", "second");
  DYNACE_TRACE_INSTANT("vm", "third");
  ASSERT_TRUE(obs::TraceCollector::instance().flush());

  std::string Text = slurp(Fx.Path);
  size_t First = Text.find("\"first\"");
  size_t Second = Text.find("\"second\"");
  size_t Third = Text.find("\"third\"");
  ASSERT_NE(First, std::string::npos);
  ASSERT_NE(Second, std::string::npos);
  ASSERT_NE(Third, std::string::npos);
  // flush() sorts by timestamp; same-thread emissions have monotonically
  // increasing timestamps, so file order must equal emission order.
  EXPECT_LT(First, Second);
  EXPECT_LT(Second, Third);
}

TEST(TraceCollector, DisabledPathEmitsNothing) {
  obs::TraceCollector::instance().configure("");
  EXPECT_FALSE(obs::traceEnabled());
  DYNACE_TRACE_INSTANT("vm", "ghost", obs::traceArg("k", uint64_t(1)));
  EXPECT_FALSE(obs::TraceCollector::instance().flush());
}

TEST(TraceCollector, JsonEscapingAndKnownCategories) {
  EXPECT_EQ(obs::jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  for (const char *Cat : {"hotspot", "tuning", "reconfig", "vm", "cache",
                          "runner", "stage", "serve"})
    EXPECT_TRUE(obs::isKnownTraceCategory(Cat)) << Cat;
  // The set is closed: anything else — including near-misses and the
  // kind of attacker-chosen category a forged serve frame could carry —
  // must reject so the wire decoder can refuse it outright.
  for (const char *Cat : {"surprise", "serve2", "Serve", "", "vm "})
    EXPECT_FALSE(obs::isKnownTraceCategory(Cat)) << Cat;
}

TEST(TraceCollector, DrainReturnsSortedEventsAndClearsBuffers) {
  TraceFixture Fx("drain");
  obs::TraceCollector &C = obs::TraceCollector::instance();
  DYNACE_TRACE_INSTANT("vm", "one");
  DYNACE_TRACE_INSTANT("vm", "two");
  obs::traceComplete("serve", "span", 10.0, 5.0);

  std::vector<obs::TraceEvent> Events = C.drain();
  ASSERT_EQ(Events.size(), 3u);
  for (size_t I = 1; I != Events.size(); ++I)
    EXPECT_LE(Events[I - 1].TsUs, Events[I].TsUs) << "drain must sort";
  // The worker-side contract: drain empties the buffers, so the next
  // per-cell drain ships only that cell's spans.
  EXPECT_TRUE(C.drain().empty());
  // And the drained events never reach the trace file.
  ASSERT_TRUE(C.flush());
  std::string Text = slurp(Fx.Path);
  EXPECT_EQ(Text.find("\"one\""), std::string::npos);
}

TEST(TraceCollector, ForeignEventsKeepTheirTidAndNamedTrack) {
  TraceFixture Fx("foreign");
  obs::TraceCollector &C = obs::TraceCollector::instance();
  // The coordinator-side merge contract: a worker span re-emitted via
  // emitForeign() keeps its synthetic per-worker track id instead of
  // being stamped with the emitting thread's id.
  obs::TraceEvent E;
  E.Cat = obs::internTraceString("serve");
  E.Name = obs::internTraceString("worker.cell");
  E.TsUs = 42.0;
  E.DurUs = 7.0;
  E.Tid = 1042;
  E.Args = obs::traceArg("cell", uint64_t(3));
  C.emitForeign(std::move(E));
  C.nameTrack(1042, "worker 42");
  ASSERT_TRUE(C.flush());

  std::string Text = slurp(Fx.Path);
  EXPECT_TRUE(JsonChecker(Text).valid());
  EXPECT_NE(Text.find("\"tid\": 1042"), std::string::npos);
  EXPECT_NE(Text.find("\"worker.cell\""), std::string::npos);
  EXPECT_NE(Text.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(Text.find("\"worker 42\""), std::string::npos);
}

TEST(TraceCollector, InternTraceStringCanonicalizesAndDeduplicates) {
  // Known categories intern to their canonical literal, so decoded wire
  // spans compare pointer-equal with locally emitted ones.
  const char *Serve = obs::internTraceString("serve");
  EXPECT_STREQ(Serve, "serve");
  EXPECT_EQ(Serve, obs::internTraceString(std::string("ser") + "ve"));
  EXPECT_TRUE(obs::isKnownTraceCategory(Serve));
  // Arbitrary names dedupe: the same content yields the same storage.
  const char *A = obs::internTraceString("worker.cell.custom");
  const char *B = obs::internTraceString("worker.cell.custom");
  EXPECT_EQ(A, B);
  EXPECT_STREQ(A, "worker.cell.custom");
  EXPECT_NE(A, obs::internTraceString("worker.cell.other"));
}

TEST(Histogram, BucketBoundariesAreLog2) {
  // Bucket 0 holds only the value 0; bucket i >= 1 holds [2^(i-1), 2^i-1].
  EXPECT_EQ(histogramBucketFor(0), 0u);
  EXPECT_EQ(histogramBucketFor(1), 1u);
  EXPECT_EQ(histogramBucketFor(2), 2u);
  EXPECT_EQ(histogramBucketFor(3), 2u);
  EXPECT_EQ(histogramBucketFor(4), 3u);
  EXPECT_EQ(histogramBucketFor(7), 3u);
  EXPECT_EQ(histogramBucketFor(8), 4u);
  EXPECT_EQ(histogramBucketFor(1023), 10u);
  EXPECT_EQ(histogramBucketFor(1024), 11u);
  EXPECT_EQ(histogramBucketFor(UINT64_MAX), 64u);
  for (unsigned I = 1; I != kHistogramBuckets; ++I) {
    uint64_t Lo = histogramBucketLowerBound(I);
    EXPECT_EQ(histogramBucketFor(Lo), I);
    EXPECT_EQ(histogramBucketFor(Lo - 1), I - 1);
  }

  Histogram H;
  for (uint64_t V : {0ull, 1ull, 2ull, 3ull, 1024ull})
    H.record(V);
  HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 5u);
  EXPECT_EQ(S.Sum, 1030u);
  EXPECT_EQ(S.Buckets[0], 1u);
  EXPECT_EQ(S.Buckets[1], 1u);
  EXPECT_EQ(S.Buckets[2], 2u);
  EXPECT_EQ(S.Buckets[11], 1u);
  // Trailing zero buckets are trimmed from snapshots.
  EXPECT_EQ(S.Buckets.size(), 12u);
}

TEST(MetricsRegistry, SnapshotMergeAcrossThreadPoolWorkers) {
  // The pipeline pattern: each worker accumulates into its own registry,
  // and the per-worker snapshots merge into one aggregate. The merged
  // instruments must equal the arithmetic totals regardless of worker
  // count or scheduling.
  constexpr unsigned kWorkers = 4;
  constexpr unsigned kTasks = 16;
  std::vector<MetricsSnapshot> Parts(kTasks);
  {
    ThreadPool Pool(kWorkers);
    std::vector<std::future<void>> Futures;
    for (unsigned T = 0; T != kTasks; ++T)
      Futures.push_back(Pool.submit([T, &Parts] {
        MetricsRegistry R;
        R.counter("work.items").inc(T + 1);
        R.gauge("work.last").set(static_cast<double>(T));
        for (uint64_t V = 0; V != 10; ++V)
          R.histogram("work.sizes").record(V * (T + 1));
        Parts[T] = R.snapshot();
      }));
    for (std::future<void> &F : Futures)
      F.get();
  }

  MetricsRegistry Merged;
  for (const MetricsSnapshot &S : Parts)
    Merged.merge(S);
  MetricsSnapshot Total = Merged.snapshot();

  // 1 + 2 + ... + 16.
  EXPECT_EQ(Total.counterOr("work.items"), 136u);
  // Sum over tasks of (0+1+...+9)*(T+1) = 45 * 136.
  HistogramSnapshot H = Total.Histograms.at("work.sizes");
  EXPECT_EQ(H.Count, kTasks * 10u);
  EXPECT_EQ(H.Sum, 45u * 136u);
  // merge() is associative with identical totals however it is grouped.
  MetricsRegistry Pairwise;
  for (unsigned T = 0; T != kTasks; T += 2) {
    MetricsRegistry Pair;
    Pair.merge(Parts[T]);
    Pair.merge(Parts[T + 1]);
    Pairwise.merge(Pair.snapshot());
  }
  EXPECT_EQ(Pairwise.snapshot().Counters, Total.Counters);
  EXPECT_EQ(Pairwise.snapshot().Histograms, Total.Histograms);
}

TEST(MetricsSnapshot, DeltaClampsCountersAndDetectsGaugeChanges) {
  MetricsSnapshot Base;
  Base.Counters = {{"kept", 5}, {"shrunk", 7}, {"flat", 2}};
  Base.Gauges = {{"same", 1.5}, {"moved", 2.0}};
  MetricsSnapshot Now;
  Now.Counters = {{"kept", 9}, {"shrunk", 3}, {"flat", 2}, {"fresh", 4}};
  Now.Gauges = {{"same", 1.5}, {"moved", 8.0}, {"appeared", 0.5}};

  MetricsSnapshot D = Now.delta(Base);
  EXPECT_EQ(D.counterOr("kept"), 4u);
  EXPECT_EQ(D.counterOr("fresh"), 4u);
  // A counter that went backwards (a registry reset, or fork-inherited
  // state the worker never touched) clamps to zero and is omitted — the
  // coordinator must never fold negative noise into the fleet registry.
  EXPECT_EQ(D.Counters.count("shrunk"), 0u);
  EXPECT_EQ(D.Counters.count("flat"), 0u);
  // Gauges: only changed or newly appeared values ride the delta.
  EXPECT_EQ(D.Gauges.count("same"), 0u);
  EXPECT_EQ(D.Gauges.at("moved"), 8.0);
  EXPECT_EQ(D.Gauges.at("appeared"), 0.5);
}

TEST(MetricsSnapshot, DeltaIsMergesInverseOnAGrowingRegistry) {
  // The serve worker telemetry contract: Base.merge(Now.delta(Base))
  // reconstructs Now exactly when the registry only grew — so per-cell
  // deltas folded into the coordinator's fleet registry sum to the same
  // totals the worker holds, with no double counting of the baseline.
  MetricsRegistry R;
  R.counter("cells").inc(2);
  R.histogram("wall_ms").record(100);
  R.gauge("ipc").set(1.25);
  MetricsSnapshot Base = R.snapshot();

  R.counter("cells").inc(3);
  R.counter("retries").inc(1);
  R.histogram("wall_ms").record(100);
  R.histogram("wall_ms").record(4096);
  R.gauge("ipc").set(2.5);
  MetricsSnapshot Now = R.snapshot();

  MetricsSnapshot Delta = Now.delta(Base);
  EXPECT_EQ(Delta.counterOr("cells"), 3u);
  EXPECT_EQ(Delta.counterOr("retries"), 1u);
  EXPECT_EQ(Delta.Histograms.at("wall_ms").Count, 2u);
  EXPECT_EQ(Delta.Histograms.at("wall_ms").Sum, 100u + 4096u);

  MetricsRegistry Rebuilt;
  Rebuilt.merge(Base);
  Rebuilt.merge(Delta);
  MetricsSnapshot Round = Rebuilt.snapshot();
  EXPECT_EQ(Round.Counters, Now.Counters);
  EXPECT_EQ(Round.Histograms, Now.Histograms);
  EXPECT_EQ(Round.Gauges, Now.Gauges);
}

TEST(TraceFile, TuningRunEmitsValidJsonWithKnownCategories) {
  TraceFixture Fx("tuningrun");
  GeneratedWorkload W = WorkloadGenerator::generate(specjvm98Profiles()[0]);
  {
    System Sys(W.Prog, quickOptions(Scheme::Hotspot));
    SimulationResult R = Sys.run();
    EXPECT_GT(R.Instructions, 0u);
  }
  ASSERT_TRUE(obs::TraceCollector::instance().flush());

  std::string Text = slurp(Fx.Path);
  ASSERT_FALSE(Text.empty());
  EXPECT_TRUE(JsonChecker(Text).valid()) << "trace is not valid JSON";

  std::vector<std::string> Cats = extractCategories(Text);
  ASSERT_FALSE(Cats.empty());
  for (const std::string &Cat : Cats)
    EXPECT_TRUE(obs::isKnownTraceCategory(Cat.c_str()))
        << "unknown category: " << Cat;
  // The acceptance events of a tuning run: hotspot promotion, tuning
  // transitions, and reconfiguration accept/reject.
  EXPECT_NE(Text.find("\"cat\": \"hotspot\""), std::string::npos);
  EXPECT_NE(Text.find("\"cat\": \"tuning\""), std::string::npos);
  EXPECT_NE(Text.find("\"cat\": \"reconfig\""), std::string::npos);
  EXPECT_NE(Text.find("\"trace.flush\""), std::string::npos);
}

TEST(MetricsDeterminism, PerRunMetricsIdenticalForJobs1And4) {
  // The per-run registry must be driven only by deterministic simulation
  // events: the snapshot (and hence the full serialized result) has to be
  // bit-identical whether the pipeline ran on one worker or four.
  unsetenv("DYNACE_CACHE_DIR");
  std::vector<WorkloadProfile> Profiles(specjvm98Profiles().begin(),
                                        specjvm98Profiles().begin() + 3);
  SimulationOptions Opts;
  Opts.MaxInstructions = 150000;

  ExperimentRunner Serial(Opts);
  std::vector<BenchmarkRun> RunsSerial = Serial.runAll(Profiles, /*Jobs=*/1);
  ExperimentRunner Parallel(Opts);
  std::vector<BenchmarkRun> RunsParallel =
      Parallel.runAll(Profiles, /*Jobs=*/4);

  ASSERT_EQ(RunsSerial.size(), RunsParallel.size());
  for (size_t I = 0; I != RunsSerial.size(); ++I) {
    EXPECT_EQ(RunsSerial[I].Hotspot.Metrics, RunsParallel[I].Hotspot.Metrics);
    EXPECT_EQ(RunsSerial[I].Bbv.Metrics, RunsParallel[I].Bbv.Metrics);
    EXPECT_FALSE(RunsSerial[I].Hotspot.Metrics.empty());
    EXPECT_GT(RunsSerial[I].Hotspot.Metrics.counterOr("sim.batches"), 0u);
    // The snapshot rides the canonical serialization, so the whole result
    // digests identically too.
    EXPECT_EQ(serializeResult(RunsSerial[I].Hotspot),
              serializeResult(RunsParallel[I].Hotspot));
  }
}
