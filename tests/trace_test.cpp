//===- tests/trace_test.cpp - dynatrace-v1 frontend tests -----------------==//
//
// Pins the trace frontend's two contracts: well-formed traces round-trip
// through parse -> canonical format -> compile into a verified, halting,
// deterministic program; malformed traces are rejected as InvalidInput
// Status values carrying "<file>:<line>:" diagnostics, never best-effort
// programs (and never process aborts).
//
//===----------------------------------------------------------------------===//

#include "vm/Interpreter.h"
#include "workloads/TraceFrontend.h"

#include <gtest/gtest.h>

#include <string>

using namespace dynace;

namespace {

const char *kGood = R"(dynatrace 1
# comment
method helper footprint=64
  block 32 1 0 2 0 branchy
end
method fp footprint=128
  block 16 1 1 0 2
end
method main footprint=32
  block 10 2 1 1 1
  call helper 3
  call fp
end
entry main
)";

} // namespace

TEST(TraceParse, AcceptsWellFormed) {
  Expected<TraceSpec> Spec = parseTraceSpec(kGood, "good.trace");
  ASSERT_TRUE(Spec.ok()) << Spec.status().toString();
  ASSERT_EQ(Spec->Methods.size(), 3u);
  EXPECT_EQ(Spec->Entry, "main");
  EXPECT_EQ(Spec->Methods[0].Name, "helper");
  EXPECT_EQ(Spec->Methods[0].FootprintWords, 64u);
  ASSERT_EQ(Spec->Methods[0].Stmts.size(), 1u);
  EXPECT_TRUE(Spec->Methods[0].Stmts[0].B.Branchy);
  const TraceMethod &Main = Spec->Methods[2];
  ASSERT_EQ(Main.Stmts.size(), 3u);
  EXPECT_EQ(Main.Stmts[0].K, TraceStmt::Block);
  EXPECT_EQ(Main.Stmts[1].K, TraceStmt::Call);
  EXPECT_EQ(Main.Stmts[1].C.Callee, "helper");
  EXPECT_EQ(Main.Stmts[1].C.Times, 3u);
  EXPECT_EQ(Main.Stmts[2].C.Times, 1u) << "call count defaults to 1";
}

TEST(TraceParse, CanonicalFormatIsAFixedPoint) {
  Expected<TraceSpec> Spec = parseTraceSpec(kGood);
  ASSERT_TRUE(Spec.ok());
  std::string Canon = formatTraceSpec(*Spec);
  Expected<TraceSpec> Re = parseTraceSpec(Canon, "canon");
  ASSERT_TRUE(Re.ok()) << Re.status().toString();
  EXPECT_EQ(formatTraceSpec(*Re), Canon);
}

namespace {

struct RejectCase {
  const char *Label;
  const char *Text;
  /// Expected "<file>:<line>:" diagnostic prefix fragment (null = only the
  /// error code is checked, for end-of-input problems with no single line).
  const char *Needle;
};

} // namespace

TEST(TraceParse, RejectsMalformedInput) {
  const RejectCase Cases[] = {
      {"missing header", "method m\n  block 1 1 0 1 0\nend\nentry m\n",
       "t:1:"},
      {"unsupported version", "dynatrace 2\n", "t:1:"},
      {"unknown directive", "dynatrace 1\nfrobnicate\n", "t:2:"},
      {"nested method", "dynatrace 1\nmethod a\nmethod b\n", "t:3:"},
      {"duplicate method",
       "dynatrace 1\nmethod a\n  block 1 1 0 1 0\nend\nmethod a\n"
       "  block 1 1 0 1 0\nend\nentry a\n",
       "t:5:"},
      {"block outside method", "dynatrace 1\nblock 1 1 0 1 0\n", "t:2:"},
      {"call outside method", "dynatrace 1\ncall a\n", "t:2:"},
      {"non-numeric count",
       "dynatrace 1\nmethod a\n  block x 1 0 1 0\nend\nentry a\n", "t:3:"},
      {"too many ops per iteration",
       "dynatrace 1\nmethod a\n  block 1 65 0 1 0\nend\nentry a\n", "t:3:"},
      {"unknown block flag",
       "dynatrace 1\nmethod a\n  block 1 1 0 1 0 sideways\nend\nentry a\n",
       "t:3:"},
      {"footprint out of range",
       "dynatrace 1\nmethod a footprint=8\n  block 1 1 0 1 0\nend\n"
       "entry a\n",
       "t:2:"},
      {"empty method body", "dynatrace 1\nmethod a\nend\nentry a\n", "t:2:"},
      {"end without method", "dynatrace 1\nend\n", "t:2:"},
      {"duplicate entry",
       "dynatrace 1\nmethod a\n  block 1 1 0 1 0\nend\nentry a\nentry a\n",
       "t:6:"},
      {"missing entry", "dynatrace 1\nmethod a\n  block 1 1 0 1 0\nend\n",
       nullptr},
      {"unterminated method",
       "dynatrace 1\nmethod a\n  block 1 1 0 1 0\n", nullptr},
      {"empty input", "", nullptr},
  };
  for (const RejectCase &C : Cases) {
    Expected<TraceSpec> Spec = parseTraceSpec(C.Text, "t");
    ASSERT_FALSE(Spec.ok()) << C.Label;
    EXPECT_EQ(Spec.status().code(), ErrorCode::InvalidInput) << C.Label;
    if (C.Needle) {
      EXPECT_NE(Spec.status().message().find(C.Needle), std::string::npos)
          << C.Label << ": got \"" << Spec.status().message() << "\"";
    }
  }
}

TEST(TraceCompile, RejectsUnknownCallee) {
  Expected<GeneratedWorkload> W =
      ingestTrace("dynatrace 1\nmethod a\n  call b 2\nend\nentry a\n");
  ASSERT_FALSE(W.ok());
  EXPECT_EQ(W.status().code(), ErrorCode::InvalidInput);
}

TEST(TraceCompile, RejectsRecursion) {
  // Direct self-recursion.
  Expected<GeneratedWorkload> A =
      ingestTrace("dynatrace 1\nmethod a\n  call a\nend\nentry a\n");
  ASSERT_FALSE(A.ok());
  EXPECT_EQ(A.status().code(), ErrorCode::InvalidInput);
  // Mutual recursion through a forward reference.
  Expected<GeneratedWorkload> B = ingestTrace(
      "dynatrace 1\nmethod a\n  call b\nend\nmethod b\n  call a\nend\n"
      "entry a\n");
  ASSERT_FALSE(B.ok());
  EXPECT_EQ(B.status().code(), ErrorCode::InvalidInput);
}

TEST(TraceCompile, CompilesToVerifiedHaltingProgram) {
  Expected<GeneratedWorkload> W = ingestTrace(kGood, "good.trace");
  ASSERT_TRUE(W.ok()) << W.status().toString();
  EXPECT_TRUE(W->Prog.isFinalized());
  EXPECT_GT(W->EstimatedInstructions, 0.0);
  Interpreter I(W->Prog);
  uint64_t Ran = I.run(10'000'000);
  EXPECT_TRUE(I.isHalted()) << "trace programs terminate";
  EXPECT_GT(Ran, 100u);
}

TEST(TraceCompile, SimulationIsDeterministic) {
  Expected<GeneratedWorkload> A = ingestTrace(kGood);
  Expected<GeneratedWorkload> B = ingestTrace(kGood);
  ASSERT_TRUE(A.ok() && B.ok());
  Interpreter IA(A->Prog), IB(B->Prog);
  DynInst DA, DB;
  while (!IA.isHalted()) {
    IA.step(DA);
    IB.step(DB);
    ASSERT_EQ(DA.PC, DB.PC);
    ASSERT_EQ(DA.MemAddr, DB.MemAddr);
  }
  EXPECT_TRUE(IB.isHalted());
}

TEST(TraceCompile, ForwardReferencesResolve) {
  // main is defined before its callees; compile fills placeholders.
  Expected<GeneratedWorkload> W = ingestTrace(
      "dynatrace 1\nmethod main\n  call late 2\nend\n"
      "method late footprint=64\n  block 8 1 0 1 0\nend\nentry main\n");
  ASSERT_TRUE(W.ok()) << W.status().toString();
  Interpreter I(W->Prog);
  (void)I.run(1'000'000);
  EXPECT_TRUE(I.isHalted());
}
