//===- tests/status_test.cpp - Status/Expected unit tests -----------------==//
//
// Covers the structured error-handling primitives the fault-tolerant
// pipeline is built on: Status success/failure semantics, the stable
// taxonomy names rendered into FAILED(<code>) report cells, and
// Expected<T> value/error duality.
//
//===----------------------------------------------------------------------==//

#include "support/Status.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace dynace;

TEST(Status, DefaultConstructedIsSuccess) {
  Status S;
  EXPECT_TRUE(S.ok());
  EXPECT_TRUE(static_cast<bool>(S));
  EXPECT_EQ(S.message(), "");
  EXPECT_EQ(S.toString(), "ok");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status S = Status::error(ErrorCode::IoError, "cannot open 'x'");
  EXPECT_FALSE(S.ok());
  EXPECT_FALSE(static_cast<bool>(S));
  EXPECT_EQ(S.code(), ErrorCode::IoError);
  EXPECT_EQ(S.message(), "cannot open 'x'");
  EXPECT_EQ(S.toString(), "io-error: cannot open 'x'");
}

TEST(Status, ErrorCodeNamesAreStable) {
  // These names appear in FAILED(<code>) report cells and in log lines;
  // changing one silently breaks downstream grep-ability.
  EXPECT_STREQ(errorCodeName(ErrorCode::InvalidInput), "invalid-input");
  EXPECT_STREQ(errorCodeName(ErrorCode::Trap), "trap");
  EXPECT_STREQ(errorCodeName(ErrorCode::IoError), "io-error");
  EXPECT_STREQ(errorCodeName(ErrorCode::Timeout), "timeout");
  EXPECT_STREQ(errorCodeName(ErrorCode::Injected), "injected");
  EXPECT_STREQ(errorCodeName(ErrorCode::Unavailable), "unavailable");
}

TEST(Status, CopyPreservesError) {
  Status A = Status::error(ErrorCode::Timeout, "deadline");
  Status B = A;
  EXPECT_FALSE(B.ok());
  EXPECT_EQ(B.code(), ErrorCode::Timeout);
  EXPECT_EQ(B.message(), "deadline");
  // The source is unchanged.
  EXPECT_EQ(A.toString(), "timeout: deadline");
}

namespace {

Expected<int> parsePositive(int V) {
  if (V <= 0)
    return Status::error(ErrorCode::InvalidInput, "not positive");
  return V;
}

} // namespace

TEST(Expected, ValueSideBehavesLikeTheValue) {
  Expected<int> E = parsePositive(7);
  ASSERT_TRUE(E.ok());
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_EQ(E.get(), 7);
  EXPECT_EQ(*E, 7);
  EXPECT_EQ(E.take(), 7);
}

TEST(Expected, ErrorSideCarriesTheStatus) {
  Expected<int> E = parsePositive(-1);
  ASSERT_FALSE(E.ok());
  ASSERT_FALSE(static_cast<bool>(E));
  EXPECT_EQ(E.status().code(), ErrorCode::InvalidInput);
  EXPECT_EQ(E.status().message(), "not positive");
}

TEST(Expected, MoveOnlyPayloadsWork) {
  Expected<std::vector<std::string>> E =
      std::vector<std::string>{"a", "b", "c"};
  ASSERT_TRUE(E.ok());
  EXPECT_EQ(E->size(), 3u);
  std::vector<std::string> V = E.take();
  EXPECT_EQ(V.size(), 3u);
  EXPECT_EQ(V[2], "c");
}

TEST(Expected, IfInitPatternReadsNaturally) {
  // The call-site idiom used throughout the codebase.
  if (Expected<int> E = parsePositive(3); !E)
    FAIL() << "unexpected error: " << E.status().toString();
  if (Expected<int> E = parsePositive(0))
    FAIL() << "unexpected success";
}
