//===- tests/sim_test.cpp - System / runner / reports tests ---------------==//

#include "isa/MethodBuilder.h"
#include "sim/ExperimentRunner.h"
#include "sim/Reports.h"
#include "sim/ResultCache.h"
#include "sim/System.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace dynace;

namespace {

/// A small program: main calls a kernel scanning a 2 KB array, repeatedly.
Program smallProgram(int64_t KernelIters = 2000, int64_t Calls = 300) {
  Program P;
  uint64_t Words = 256;
  uint64_t Base = P.addGlobal(Words);

  MethodBuilder K("kernel");
  K.iconst(1, 0);
  K.iconst(2, static_cast<int64_t>(Base));
  K.iconst(3, static_cast<int64_t>(Words - 1));
  K.iconst(4, 0);
  MethodBuilder::Label Top = K.newLabel();
  K.bind(Top);
  K.add(5, 1, 0);
  K.and_(5, 5, 3);
  K.loadIdx(6, 2, 5);
  K.add(4, 4, 6);
  K.storeIdx(2, 5, 4);
  K.addi(1, 1, 1);
  K.bri(CondKind::Lt, 1, KernelIters, Top);
  K.ret(4);
  MethodId Kernel = P.addMethod(K.take());

  MethodBuilder M("main");
  M.iconst(1, 0);
  MethodBuilder::Label Loop = M.newLabel();
  M.bind(Loop);
  M.mov(2, 1);
  M.call(3, Kernel, 2, 1);
  M.addi(1, 1, 1);
  M.bri(CondKind::Lt, 1, Calls, Loop);
  M.halt();
  P.setEntry(P.addMethod(M.take()));
  EXPECT_TRUE(P.finalize());
  return P;
}

} // namespace

TEST(System, BaselineRunCompletes) {
  Program P = smallProgram();
  SimulationOptions Opts;
  System Sys(P, Opts);
  SimulationResult R = Sys.run();
  EXPECT_GT(R.Instructions, 1000u);
  EXPECT_GT(R.Cycles, 0u);
  EXPECT_GT(R.Ipc, 0.0);
  EXPECT_LE(R.Ipc, 4.0);
  EXPECT_GT(R.L1DEnergy.total(), 0.0);
  EXPECT_GT(R.L2Energy.total(), 0.0);
}

TEST(System, SchemeWiring) {
  Program P = smallProgram(100, 5);
  SimulationOptions Opts;

  Opts.SchemeKind = Scheme::Baseline;
  System Base(P, Opts);
  EXPECT_EQ(Base.aceManager(), nullptr);
  EXPECT_EQ(Base.bbvManager(), nullptr);
  EXPECT_NE(Base.doSystem(), nullptr); // DO on in every scheme by default.
  EXPECT_EQ(Base.l1dUnit(), nullptr);  // No CUs without adaptation.

  Opts.SchemeKind = Scheme::Bbv;
  System Bbv(P, Opts);
  EXPECT_EQ(Bbv.aceManager(), nullptr);
  EXPECT_NE(Bbv.bbvManager(), nullptr);
  EXPECT_NE(Bbv.l1dUnit(), nullptr);

  Opts.SchemeKind = Scheme::Hotspot;
  System Hot(P, Opts);
  EXPECT_NE(Hot.aceManager(), nullptr);
  EXPECT_EQ(Hot.bbvManager(), nullptr);
  EXPECT_NE(Hot.l2Unit(), nullptr);
}

TEST(System, InstructionCapRespected) {
  Program P = smallProgram(100000, 100000);
  SimulationOptions Opts;
  Opts.MaxInstructions = 50000;
  System Sys(P, Opts);
  SimulationResult R = Sys.run();
  EXPECT_GE(R.Instructions, 50000u);
  EXPECT_LT(R.Instructions, 51000u);
}

TEST(System, ResultsCarrySchemeReports) {
  Program P = smallProgram();
  SimulationOptions Opts;
  Opts.SchemeKind = Scheme::Hotspot;
  SimulationResult Hot = System(P, Opts).run();
  ASSERT_TRUE(Hot.Ace.has_value());
  EXPECT_FALSE(Hot.BbvR.has_value());
  EXPECT_GT(Hot.Do.NumHotspots, 0u);

  Opts.SchemeKind = Scheme::Bbv;
  SimulationResult Bbv = System(P, Opts).run();
  ASSERT_TRUE(Bbv.BbvR.has_value());
  EXPECT_FALSE(Bbv.Ace.has_value());
}

TEST(System, HotspotSchemeSavesL1DEnergyOnSmallWorkingSet) {
  Program P = smallProgram(5000, 400); // ~2 KB working set, 35K-instr kernel.
  SimulationOptions Opts;
  SimulationResult Base = System(P, Opts).run();
  Opts.SchemeKind = Scheme::Hotspot;
  SimulationResult Hot = System(P, Opts).run();
  double Reduction =
      BenchmarkRun::reduction(Hot.L1DEnergy.total(), Base.L1DEnergy.total());
  EXPECT_GT(Reduction, 0.2);
  // And the slowdown stays moderate.
  EXPECT_LT(BenchmarkRun::slowdown(Hot.Cycles, Base.Cycles), 0.10);
}

TEST(System, DeterministicAcrossRuns) {
  Program P = smallProgram();
  SimulationOptions Opts;
  Opts.SchemeKind = Scheme::Hotspot;
  SimulationResult A = System(P, Opts).run();
  SimulationResult B = System(P, Opts).run();
  EXPECT_EQ(A.Instructions, B.Instructions);
  EXPECT_EQ(A.Cycles, B.Cycles);
  EXPECT_DOUBLE_EQ(A.L1DEnergy.total(), B.L1DEnergy.total());
}

TEST(System, SchemeNames) {
  EXPECT_STREQ(schemeName(Scheme::Baseline), "baseline");
  EXPECT_STREQ(schemeName(Scheme::Bbv), "bbv");
  EXPECT_STREQ(schemeName(Scheme::Hotspot), "hotspot");
}

TEST(System, ResidencyVectorsCoverAllSettings) {
  Program P = smallProgram();
  SimulationOptions Opts;
  Opts.SchemeKind = Scheme::Hotspot;
  SimulationResult R = System(P, Opts).run();
  ASSERT_EQ(R.L1DAccessesBySetting.size(), 4u);
  ASSERT_EQ(R.L2AccessesBySetting.size(), 4u);
  uint64_t Total = 0;
  for (uint64_t V : R.L1DAccessesBySetting)
    Total += V;
  EXPECT_EQ(Total, R.L1DStats.accesses());
}

// --------------------------------------------------------- ExperimentRunner

TEST(ExperimentRunner, CachesRunsByName) {
  SimulationOptions Opts;
  Opts.MaxInstructions = 300000; // Keep the test fast.
  ExperimentRunner Runner(Opts);
  const WorkloadProfile &P = specjvm98Profiles()[1]; // db
  const BenchmarkRun &A = Runner.run(P);
  const BenchmarkRun &B = Runner.run(P);
  EXPECT_EQ(&A, &B); // Same cached object.
  EXPECT_EQ(A.Name, "db");
  EXPECT_GT(A.Baseline.Instructions, 0u);
}

TEST(ExperimentRunner, RunSchemeProducesRequestedScheme) {
  SimulationOptions Opts;
  Opts.MaxInstructions = 200000;
  ExperimentRunner Runner(Opts);
  SimulationResult R =
      Runner.runScheme(specjvm98Profiles()[0], Scheme::Bbv);
  EXPECT_EQ(R.SchemeKind, Scheme::Bbv);
  EXPECT_TRUE(R.BbvR.has_value());
}

TEST(ExperimentRunner, HelperMath) {
  EXPECT_DOUBLE_EQ(BenchmarkRun::reduction(50.0, 100.0), 0.5);
  EXPECT_DOUBLE_EQ(BenchmarkRun::reduction(100.0, 0.0), 0.0);
  EXPECT_NEAR(BenchmarkRun::slowdown(110, 100), 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(BenchmarkRun::slowdown(100, 0), 0.0);
}

TEST(ExperimentRunner, ReductionClampsAndFlagsRegressions) {
  bool Regressed = false;
  // A scheme spending more energy than baseline is a (negative) regression.
  EXPECT_NEAR(BenchmarkRun::reduction(110.0, 100.0, &Regressed), -0.1,
              1e-12);
  EXPECT_TRUE(Regressed);
  // Pathological regressions clamp to -100% instead of e.g. -400%.
  EXPECT_DOUBLE_EQ(BenchmarkRun::reduction(500.0, 100.0, &Regressed), -1.0);
  EXPECT_TRUE(Regressed);
  // Improvements don't set the flag and stay unclamped within [-1, 1].
  EXPECT_DOUBLE_EQ(BenchmarkRun::reduction(25.0, 100.0, &Regressed), 0.75);
  EXPECT_FALSE(Regressed);
  // A non-positive baseline is "no meaningful ratio", not a regression.
  EXPECT_DOUBLE_EQ(BenchmarkRun::reduction(10.0, 0.0, &Regressed), 0.0);
  EXPECT_FALSE(Regressed);
}

// ------------------------------------------------------------------ Reports

TEST(Reports, PrintersProduceExpectedHeadings) {
  SimulationOptions Opts;
  Opts.MaxInstructions = 300000;
  ExperimentRunner Runner(Opts);
  std::vector<BenchmarkRun> Runs = {Runner.run(specjvm98Profiles()[1])};

  struct Case {
    void (*Fn)(std::ostream &, const std::vector<BenchmarkRun> &);
    const char *Needle;
    bool PerBenchmark;
  };
  const Case Cases[] = {
      {printFigure1, "stable", true},
      {printTable1, "Recurring phase", false}, // Aggregate-only table.
      {printTable4, "number of hotspots", true},
      {printTable5, "per-hotspot IPC CoV", true},
      {printTable6, "L1D tunings", true},
      {printFigure3, "L2 cache energy reduction", true},
      {printFigure4, "Performance degradation", true},
  };
  for (const Case &C : Cases) {
    std::ostringstream OS;
    C.Fn(OS, Runs);
    EXPECT_NE(OS.str().find(C.Needle), std::string::npos) << C.Needle;
    if (C.PerBenchmark) {
      EXPECT_NE(OS.str().find("db"), std::string::npos) << C.Needle;
    }
  }

  std::ostringstream Config;
  printBaselineConfig(Config, Opts);
  EXPECT_NE(Config.str().find("L1 D-cache"), std::string::npos);
  std::ostringstream T3;
  printTable3(T3);
  EXPECT_NE(T3.str().find("compress"), std::string::npos);
}

TEST(System, WindowCuManagesIssueWindow) {
  // ~2.8K-instr kernel invocations: below the L1D band, inside the window
  // CU's band [interval/2 = 500, 5000).
  Program P = smallProgram(400, 1200);
  SimulationOptions Opts;
  Opts.SchemeKind = Scheme::Hotspot;
  Opts.EnableWindowCu = true;
  System Sys(P, Opts);
  SimulationResult R = Sys.run();
  ASSERT_NE(Sys.windowUnit(), nullptr);
  ASSERT_EQ(R.InstructionsByWindowSetting.size(), 4u);
  // The kernel is a serial dependence chain: a smaller window loses no
  // IPC, so the tuner should move residency off the largest setting.
  uint64_t Total = 0;
  for (uint64_t N : R.InstructionsByWindowSetting)
    Total += N;
  EXPECT_EQ(Total, R.Instructions);
  EXPECT_LT(R.InstructionsByWindowSetting[0], Total);
  EXPECT_GT(R.WindowEnergy, 0.0);
}

TEST(System, WindowCuDisabledByDefault) {
  Program P = smallProgram(100, 5);
  SimulationOptions Opts;
  Opts.SchemeKind = Scheme::Hotspot;
  System Sys(P, Opts);
  EXPECT_EQ(Sys.windowUnit(), nullptr);
}

TEST(System, ThreeCuBbvEnumeratesSixtyFourCombos) {
  Program P = smallProgram(100, 50);
  SimulationOptions Opts;
  Opts.SchemeKind = Scheme::Bbv;
  Opts.EnableWindowCu = true;
  System Sys(P, Opts);
  ASSERT_NE(Sys.bbvManager(), nullptr);
  Sys.run(); // Smoke: three units wired without issue.
}

TEST(ResultCacheRoundTrip, SaveAndLoadPreservesResult) {
  Program P = smallProgram(500, 60);
  SimulationOptions Opts;
  Opts.SchemeKind = Scheme::Hotspot;
  SimulationResult R = System(P, Opts).run();
  std::string Path = ::testing::TempDir() + "/dynace_result.txt";
  ASSERT_TRUE(saveResult(Path, R));
  SimulationResult L;
  ASSERT_TRUE(loadResult(Path, L));
  EXPECT_EQ(L.Instructions, R.Instructions);
  EXPECT_EQ(L.Cycles, R.Cycles);
  EXPECT_DOUBLE_EQ(L.L1DEnergy.Dynamic, R.L1DEnergy.Dynamic);
  EXPECT_DOUBLE_EQ(L.MemoryEnergy, R.MemoryEnergy);
  EXPECT_EQ(L.L1DAccessesBySetting, R.L1DAccessesBySetting);
  ASSERT_TRUE(L.Ace.has_value());
  EXPECT_EQ(L.Ace->TotalHotspots, R.Ace->TotalHotspots);
  EXPECT_EQ(L.Ace->PerCu.size(), R.Ace->PerCu.size());
  EXPECT_EQ(L.Ace->PerCu[0].Reconfigs, R.Ace->PerCu[0].Reconfigs);
  EXPECT_FALSE(L.BbvR.has_value());
}

TEST(ResultCacheRoundTrip, LoadRejectsMissingAndCorrupt) {
  SimulationResult R;
  EXPECT_FALSE(loadResult("/nonexistent/path.txt", R));
  std::string Path = ::testing::TempDir() + "/dynace_corrupt.txt";
  FILE *F = fopen(Path.c_str(), "w");
  fputs("not-a-result\n", F);
  fclose(F);
  EXPECT_FALSE(loadResult(Path, R));
}

TEST(ResultCacheRoundTrip, KeyDistinguishesOptions) {
  SimulationOptions A, B;
  B.Ace.DecouplingEnabled = false;
  EXPECT_NE(resultCacheKey("db", A), resultCacheKey("db", B));
  SimulationOptions C;
  C.EnableWindowCu = true;
  EXPECT_NE(resultCacheKey("db", A), resultCacheKey("db", C));
  EXPECT_EQ(resultCacheKey("db", A), resultCacheKey("db", A));
}
