//===- tests/golden_determinism_test.cpp ----------------------------------==//
//
// The batched-kernel determinism contract, enforced bit-for-bit:
//
//  * a small fixed workload run under all three schemes serializes to
//    exactly the digests committed in tests/golden/determinism.golden —
//    any kernel change that alters results (and would therefore require a
//    kResultCacheVersion bump) fails here first;
//  * the parallel pipeline (DYNACE_JOBS-style Jobs=4) produces serializations
//    byte-identical to Jobs=1.
//
// Regenerate the golden file (after an INTENTIONAL result change only) with
//   DYNACE_UPDATE_GOLDEN=1 ./golden_determinism_test
// and bump kResultCacheVersion in the same commit.
//
//===----------------------------------------------------------------------===//

#include "sim/ExperimentRunner.h"
#include "sim/ResultCache.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace dynace;

#ifndef DYNACE_GOLDEN_FILE
#define DYNACE_GOLDEN_FILE "golden/determinism.golden"
#endif

namespace {

/// FNV-1a 64-bit over the canonical result serialization.
uint64_t fnv1a(const std::string &S) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

std::string hex(uint64_t V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

/// Fixed options for the golden workload: environment-independent (no
/// DYNACE_INSTR_BUDGET), 2M instructions — 20 BBV intervals, 200 L1D and
/// 20 L2 reconfiguration windows, enough for all three schemes to adapt.
SimulationOptions goldenOptions() {
  SimulationOptions Opts;
  Opts.MaxInstructions = 2'000'000;
  return Opts;
}

std::string digestLines(const BenchmarkRun &Run) {
  std::ostringstream OS;
  OS << "baseline " << hex(fnv1a(serializeResult(Run.Baseline))) << "\n"
     << "bbv " << hex(fnv1a(serializeResult(Run.Bbv))) << "\n"
     << "hotspot " << hex(fnv1a(serializeResult(Run.Hotspot))) << "\n";
  return OS.str();
}

} // namespace

TEST(GoldenDeterminism, BatchedKernelMatchesGoldenAndParallelIsIdentical) {
  // The digests must come from simulation, not a stale on-disk entry.
  unsetenv("DYNACE_CACHE_DIR");

  const WorkloadProfile *Profile = findProfile("compress");
  ASSERT_NE(Profile, nullptr);

  ExperimentRunner Serial(goldenOptions());
  std::vector<BenchmarkRun> SerialRuns = Serial.runAll({*Profile}, 1);
  ASSERT_EQ(SerialRuns.size(), 1u);

  ExperimentRunner Parallel(goldenOptions());
  std::vector<BenchmarkRun> ParallelRuns = Parallel.runAll({*Profile}, 4);
  ASSERT_EQ(ParallelRuns.size(), 1u);

  // Jobs=1 vs Jobs=4: byte-identical serializations.
  EXPECT_EQ(serializeResult(SerialRuns[0].Baseline),
            serializeResult(ParallelRuns[0].Baseline));
  EXPECT_EQ(serializeResult(SerialRuns[0].Bbv),
            serializeResult(ParallelRuns[0].Bbv));
  EXPECT_EQ(serializeResult(SerialRuns[0].Hotspot),
            serializeResult(ParallelRuns[0].Hotspot));

  std::string Digests = digestLines(SerialRuns[0]);

  if (std::getenv("DYNACE_UPDATE_GOLDEN")) {
    std::ofstream Out(DYNACE_GOLDEN_FILE);
    ASSERT_TRUE(Out.good()) << "cannot write " << DYNACE_GOLDEN_FILE;
    Out << Digests;
    GTEST_SKIP() << "golden file regenerated at " << DYNACE_GOLDEN_FILE;
  }

  std::ifstream In(DYNACE_GOLDEN_FILE);
  ASSERT_TRUE(In.good()) << "missing golden file " << DYNACE_GOLDEN_FILE
                         << " (regenerate with DYNACE_UPDATE_GOLDEN=1)";
  std::stringstream Ss;
  Ss << In.rdbuf();
  EXPECT_EQ(Ss.str(), Digests)
      << "simulation results diverged from the committed golden digests — "
         "the kernel changed observable behavior; if intentional, "
         "regenerate the golden file AND bump kResultCacheVersion";
}
