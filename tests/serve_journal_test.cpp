//===- tests/serve_journal_test.cpp - Crash-resumable journal -------------==//
//
// Pins the journal's durability contract (serve/Journal.h): append ->
// replay round-trips records exactly; truncation at ANY length replays a
// clean prefix and reports the dropped tail (a torn final record after a
// crash costs re-execution, never a wrong record); mid-file corruption
// ends the replay at the last valid record; a foreign file is refused.
// The capstone test fork()s a coordinator running a journaled grid,
// _exit()s it mid-grid — the "kill -9 the coordinator" scenario — and
// asserts the resumed grid adopts the journaled cells instead of
// re-running them, with per-cell results bit-identical to an undisturbed
// serial run.
//
//===----------------------------------------------------------------------==//

#include "serve/Coordinator.h"
#include "serve/Journal.h"
#include "sim/ResultCache.h"
#include "support/FaultInjector.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace dynace;
using namespace dynace::serve;

namespace {

std::string freshDir(const std::string &Tag) {
  std::string Dir = ::testing::TempDir() + "dynace_" + Tag + "_" +
                    std::to_string(::getpid());
  ::mkdir(Dir.c_str(), 0755);
  return Dir;
}

/// Small enough for sub-second cells.
SimulationOptions quickOptions() {
  SimulationOptions Opts;
  Opts.MaxInstructions = 50000;
  return Opts;
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

void writeFile(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
}

CellResultMsg record(uint64_t Index, const std::string &Bench) {
  CellResultMsg M;
  M.CellIndex = Index;
  M.Cell = {Bench, Scheme::Baseline};
  M.CacheKey = "key-" + std::to_string(Index);
  M.Attempts = 1;
  M.ResultText = "body of record " + std::to_string(Index);
  return M;
}

class ServeJournal : public ::testing::Test {
protected:
  void SetUp() override {
    ASSERT_TRUE(FaultInjector::instance().configure("").ok());
    unsetenv("DYNACE_CACHE_DIR");
    unsetenv("DYNACE_RUN_TIMEOUT_MS");
  }
  void TearDown() override {
    ASSERT_TRUE(FaultInjector::instance().configure("").ok());
  }
};

} // namespace

TEST_F(ServeJournal, MissingFileIsAnEmptyReplay) {
  Expected<JournalReplay> R =
      journalReplay(freshDir("missing") + "/nope.bin");
  ASSERT_TRUE(R.ok()) << R.status().toString();
  EXPECT_TRUE(R.get().Records.empty());
  EXPECT_EQ(R.get().DroppedTailBytes, 0u);
}

TEST_F(ServeJournal, AppendReplayRoundTripsInOrder) {
  std::string Path = freshDir("roundtrip") + "/journal.bin";
  for (uint64_t I = 0; I != 3; ++I)
    ASSERT_TRUE(journalAppend(Path, record(I, "compress")).ok());

  Expected<JournalReplay> R = journalReplay(Path);
  ASSERT_TRUE(R.ok()) << R.status().toString();
  ASSERT_EQ(R.get().Records.size(), 3u);
  EXPECT_EQ(R.get().DroppedTailBytes, 0u);
  for (uint64_t I = 0; I != 3; ++I) {
    const CellResultMsg &M = R.get().Records[I];
    EXPECT_EQ(M.CellIndex, I);
    EXPECT_EQ(M.CacheKey, "key-" + std::to_string(I));
    EXPECT_EQ(M.ResultText, "body of record " + std::to_string(I));
  }
}

TEST_F(ServeJournal, TruncationAtEveryLengthReplaysACleanPrefix) {
  std::string Dir = freshDir("torn");
  std::string Path = Dir + "/journal.bin";
  for (uint64_t I = 0; I != 3; ++I)
    ASSERT_TRUE(journalAppend(Path, record(I, "db")).ok());
  std::string Full = readFile(Path);
  ASSERT_GT(Full.size(), 8u);

  std::string Torn = Dir + "/torn.bin";
  for (size_t Len = 0; Len != Full.size(); ++Len) {
    writeFile(Torn, Full.substr(0, Len));
    Expected<JournalReplay> R = journalReplay(Torn);
    if (Len == 0) {
      // Created-but-empty: a coordinator killed before its first append.
      ASSERT_TRUE(R.ok());
      EXPECT_TRUE(R.get().Records.empty());
      continue;
    }
    if (Len < 8) {
      // Too short to even hold the header: refused as not-a-journal.
      ASSERT_FALSE(R.ok()) << "length " << Len;
      EXPECT_EQ(R.status().code(), ErrorCode::InvalidInput);
      continue;
    }
    ASSERT_TRUE(R.ok()) << "length " << Len << ": " << R.status().toString();
    // Whatever replays is a clean prefix with every field intact — a torn
    // tail may only DROP records, never alter one.
    ASSERT_LE(R.get().Records.size(), 3u);
    for (size_t I = 0; I != R.get().Records.size(); ++I) {
      EXPECT_EQ(R.get().Records[I].CellIndex, I) << "length " << Len;
      EXPECT_EQ(R.get().Records[I].ResultText,
                "body of record " + std::to_string(I))
          << "length " << Len;
    }
    EXPECT_EQ(R.get().DroppedTailBytes + 8 +
                  (Full.size() - 8) / 3 * R.get().Records.size(),
              Len)
        << "length " << Len;
  }
}

TEST_F(ServeJournal, MidFileCorruptionEndsTheReplayAtTheLastValidRecord) {
  std::string Dir = freshDir("flip");
  std::string Path = Dir + "/journal.bin";
  for (uint64_t I = 0; I != 3; ++I)
    ASSERT_TRUE(journalAppend(Path, record(I, "jack")).ok());
  std::string Full = readFile(Path);

  // Flip one bit inside the second record's body (records are equal-sized
  // here, so its byte range is easy to compute).
  size_t RecordSize = (Full.size() - 8) / 3;
  std::string Mut = Full;
  Mut[8 + RecordSize + RecordSize / 2] ^= 0x10;
  std::string Flipped = Dir + "/flipped.bin";
  writeFile(Flipped, Mut);

  Expected<JournalReplay> R = journalReplay(Flipped);
  ASSERT_TRUE(R.ok()) << R.status().toString();
  ASSERT_EQ(R.get().Records.size(), 1u) << "replay must stop at the flip";
  EXPECT_EQ(R.get().Records[0].CellIndex, 0u);
  EXPECT_EQ(R.get().DroppedTailBytes, Full.size() - 8 - RecordSize);
}

TEST_F(ServeJournal, ForeignFilesAreRefusedNotAppendedTo) {
  std::string Dir = freshDir("foreign");
  std::string Path = Dir + "/notes.txt";
  writeFile(Path, "these are not journal bytes at all");
  Expected<JournalReplay> R = journalReplay(Path);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.status().code(), ErrorCode::InvalidInput);

  // Wrong version: same refusal (version skew must never half-parse).
  std::string Versioned = Dir + "/v9.bin";
  writeFile(Versioned, std::string("DYNJ\x09\0\0\0", 8));
  R = journalReplay(Versioned);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.status().code(), ErrorCode::InvalidInput);
}

TEST_F(ServeJournal, KilledCoordinatorResumesFromTheJournal) {
  std::string Dir = freshDir("resume");
  std::string Journal = Dir + "/journal.bin";
  std::vector<CellSpec> Cells = gridForBenchmarks({"compress"}); // 3 cells.
  SimulationOptions Opts = quickOptions();
  ServeConfig Config;
  Config.Workers = 0; // Inline: the child must die mid-grid, not mid-fork.
  Config.JournalPath = Journal;

  // "kill -9" the first coordinator after its second cell committed. The
  // sink streams in grid order from the coordinator thread, so dying
  // inside it models a crash at a precise, reproducible point.
  pid_t Pid = ::fork();
  ASSERT_GE(Pid, 0);
  if (Pid == 0) {
    size_t Streamed = 0;
    (void)runGrid(Config, Opts, Cells,
                  [&](size_t, const GridCell &) {
                    if (++Streamed == 2)
                      ::_exit(0);
                  });
    ::_exit(1); // Unreachable when the kill fired as intended.
  }
  int St = 0;
  ASSERT_EQ(::waitpid(Pid, &St, 0), Pid);
  ASSERT_TRUE(WIFEXITED(St) && WEXITSTATUS(St) == 0)
      << "child coordinator did not die inside the sink";

  // Exactly the two committed cells are durable.
  Expected<JournalReplay> Replay = journalReplay(Journal);
  ASSERT_TRUE(Replay.ok()) << Replay.status().toString();
  ASSERT_EQ(Replay.get().Records.size(), 2u);
  EXPECT_EQ(Replay.get().DroppedTailBytes, 0u);

  // The resumed coordinator adopts them and executes only the third cell.
  Expected<GridResult> Grid = runGrid(Config, Opts, Cells);
  ASSERT_TRUE(Grid.ok()) << Grid.status().toString();
  EXPECT_EQ(Grid.get().Stats.ReplayedCells, 2u);
  EXPECT_EQ(Grid.get().Stats.InlineCells, 1u);
  EXPECT_EQ(Grid.get().Stats.FailedCells, 0u);

  // And the resumed grid is bit-identical to an undisturbed serial run.
  const WorkloadProfile *P = findProfile("compress");
  ASSERT_NE(P, nullptr);
  ASSERT_EQ(Grid.get().Cells.size(), 3u);
  for (size_t I = 0; I != 3; ++I) {
    SimulationResult Serial =
        runExperimentCell(*P, Cells[I].SchemeKind, Opts).first;
    EXPECT_EQ(serializeResult(Grid.get().Cells[I].Result),
              serializeResult(Serial))
        << "cell " << I;
  }
}
