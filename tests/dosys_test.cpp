//===- tests/dosys_test.cpp - DO system unit tests ------------------------==//

#include "dosys/DoSystem.h"

#include <gtest/gtest.h>

using namespace dynace;

namespace {

/// Records hotspot events.
struct RecordingClient : public DoClient {
  std::vector<MethodId> Detected;
  std::vector<MethodId> Enters;
  std::vector<std::pair<MethodId, uint64_t>> Exits;
  void onHotspotDetected(MethodId Id) override { Detected.push_back(Id); }
  void onHotspotEnter(MethodId Id) override { Enters.push_back(Id); }
  void onHotspotExit(MethodId Id, uint64_t Inclusive) override {
    Exits.push_back({Id, Inclusive});
  }
};

/// Drives one complete leaf invocation of \p Instructions instructions.
void invoke(DoSystem &Do, MethodId Id, uint64_t &Clock,
            uint64_t Instructions) {
  Do.onMethodEnter(Id, Clock);
  Clock += Instructions;
  Do.onMethodExit(Id, Instructions, Clock);
}

DoConfig testConfig(uint64_t HotThreshold = 4,
                    uint64_t SampleInstr = 1000000) {
  DoConfig C;
  C.HotThreshold = HotThreshold;
  C.HotSampleInstructions = SampleInstr;
  return C;
}

} // namespace

TEST(DoSystem, PromotesAtInvocationThreshold) {
  DoSystem Do(4, testConfig(4));
  RecordingClient Client;
  Do.setClient(&Client);
  uint64_t Clock = 0;
  for (int I = 0; I != 3; ++I)
    invoke(Do, 1, Clock, 100);
  EXPECT_FALSE(Do.isHotspot(1));
  EXPECT_TRUE(Client.Detected.empty());
  invoke(Do, 1, Clock, 100); // 4th invocation promotes.
  EXPECT_TRUE(Do.isHotspot(1));
  ASSERT_EQ(Client.Detected.size(), 1u);
  EXPECT_EQ(Client.Detected[0], 1u);
}

TEST(DoSystem, PromotesBySampleInstructions) {
  // A long-running method is promoted after few invocations, like Jikes'
  // timer-based sampling would.
  DoSystem Do(2, testConfig(/*HotThreshold=*/1000,
                            /*SampleInstr=*/50000));
  RecordingClient Client;
  Do.setClient(&Client);
  uint64_t Clock = 0;
  invoke(Do, 0, Clock, 60000); // Accumulates 60K inclusive.
  EXPECT_FALSE(Do.isHotspot(0));
  invoke(Do, 0, Clock, 60000); // Promoted at this entry.
  EXPECT_TRUE(Do.isHotspot(0));
}

TEST(DoSystem, HotspotEventsOnlyAfterPromotion) {
  DoSystem Do(2, testConfig(2));
  RecordingClient Client;
  Do.setClient(&Client);
  uint64_t Clock = 0;
  invoke(Do, 0, Clock, 10);
  EXPECT_TRUE(Client.Enters.empty());
  invoke(Do, 0, Clock, 10); // Promotion fires detected + enter + exit.
  EXPECT_EQ(Client.Enters.size(), 1u);
  EXPECT_EQ(Client.Exits.size(), 1u);
  invoke(Do, 0, Clock, 10);
  EXPECT_EQ(Client.Enters.size(), 2u);
}

TEST(DoSystem, ExitEventCarriesInclusiveSize) {
  DoSystem Do(2, testConfig(1));
  RecordingClient Client;
  Do.setClient(&Client);
  uint64_t Clock = 0;
  invoke(Do, 0, Clock, 777);
  ASSERT_EQ(Client.Exits.size(), 1u);
  EXPECT_EQ(Client.Exits[0].second, 777u);
}

TEST(DoSystem, MidInvocationPromotionStaysBalanced) {
  // Outer enters cold; a recursive inner invocation promotes the method;
  // the outer exit must NOT fire an unmatched hotspot exit.
  DoSystem Do(1, testConfig(2));
  RecordingClient Client;
  Do.setClient(&Client);
  Do.onMethodEnter(0, 0);       // 1st invocation (cold).
  Do.onMethodEnter(0, 10);      // 2nd invocation: promoted, hot enter.
  Do.onMethodExit(0, 5, 15);    // Hot exit.
  Do.onMethodExit(0, 20, 20);   // Outer exit: entered cold, no hot exit.
  EXPECT_EQ(Client.Enters.size(), 1u);
  EXPECT_EQ(Client.Exits.size(), 1u);
}

TEST(DoSystem, SizeEmaTracksInvocationSizes) {
  DoConfig C = testConfig(1);
  C.SizeEmaAlpha = 0.5;
  DoSystem Do(1, C);
  uint64_t Clock = 0;
  invoke(Do, 0, Clock, 1000);
  EXPECT_DOUBLE_EQ(Do.hotspotSize(0), 1000.0);
  invoke(Do, 0, Clock, 2000);
  EXPECT_DOUBLE_EQ(Do.hotspotSize(0), 1500.0);
  invoke(Do, 0, Clock, 1500);
  EXPECT_DOUBLE_EQ(Do.hotspotSize(0), 1500.0);
}

TEST(DoSystem, StatsCountHotspotsAndInvocations) {
  DoSystem Do(3, testConfig(2));
  uint64_t Clock = 0;
  for (int I = 0; I != 10; ++I)
    invoke(Do, 0, Clock, 100);
  for (int I = 0; I != 6; ++I)
    invoke(Do, 1, Clock, 200);
  invoke(Do, 2, Clock, 50); // Never promoted.
  DoStats S = Do.stats(Clock);
  EXPECT_EQ(S.NumHotspots, 2u);
  EXPECT_NEAR(S.AvgInvocationsPerHotspot, (10.0 + 6.0) / 2.0, 1e-9);
  EXPECT_NEAR(S.AvgHotspotSize, 150.0, 1e-9);
  EXPECT_NEAR(S.IdentificationLatencyFraction, 2.0 / 8.0, 1e-9);
}

TEST(DoSystem, HotspotCodeFractionCoversNestedHotRegions) {
  DoSystem Do(2, testConfig(1)); // Everything hot immediately.
  uint64_t Clock = 0;
  // Method 0 encloses method 1; only the outer span counts once.
  Do.onMethodEnter(0, Clock);
  Clock += 100;
  Do.onMethodEnter(1, Clock);
  Clock += 300;
  Do.onMethodExit(1, 300, Clock);
  Clock += 100;
  Do.onMethodExit(0, 500, Clock);
  Clock += 500; // Non-hot execution afterwards.
  DoStats S = Do.stats(Clock);
  EXPECT_NEAR(S.HotspotCodeFraction, 500.0 / 1000.0, 1e-9);
}

TEST(DoSystem, StallChargedOnPromotionAndCounters) {
  uint64_t Stalled = 0;
  DoConfig C = testConfig(2);
  C.Costs.JitCompileCycles = 1000;
  C.Costs.CounterUpdateCycles = 1;
  DoSystem Do(1, C, [&](uint64_t Cycles) { Stalled += Cycles; });
  uint64_t Clock = 0;
  invoke(Do, 0, Clock, 10); // Counter update only.
  EXPECT_EQ(Stalled, 1u);
  invoke(Do, 0, Clock, 10); // Counter update + JIT.
  EXPECT_EQ(Stalled, 1u + 1u + 1000u);
  invoke(Do, 0, Clock, 10); // Hot: no baseline counter cost.
  EXPECT_EQ(Stalled, 1002u);
}

TEST(DoSystem, NumMethodsReflectsProgram) {
  DoSystem Do(17, testConfig());
  EXPECT_EQ(Do.numMethods(), 17u);
}

TEST(DoSystem, EntryAccessorExposesState) {
  DoSystem Do(2, testConfig(3));
  uint64_t Clock = 0;
  invoke(Do, 1, Clock, 10);
  invoke(Do, 1, Clock, 10);
  const DoEntry &E = Do.entry(1);
  EXPECT_EQ(E.Invocations, 2u);
  EXPECT_FALSE(E.IsHotspot);
  EXPECT_EQ(E.InclusiveInstructions, 20u);
}

// The VM pushes the entry frame at Interpreter construction, before a
// listener can be attached, so the entry method's enter is never observed
// — yet the halt unwind reports its exit. That unmatched exit must be
// accounted (size/inclusive bookkeeping) without touching hot-region
// state.
TEST(DoSystem, ExitWithoutObservedEnterIsSafe) {
  DoSystem Do(4, testConfig(2));
  RecordingClient Client;
  Do.setClient(&Client);
  uint64_t Clock = 0;
  // Promote method 1 with balanced invocations.
  invoke(Do, 1, Clock, 100);
  invoke(Do, 1, Clock, 100);
  EXPECT_TRUE(Do.isHotspot(1));
  // The entry method (id 0) exits at halt with no matching enter.
  Do.onMethodExit(0, Clock, Clock);
  DoStats S = Do.stats(Clock);
  EXPECT_EQ(S.NumHotspots, 1u);
  EXPECT_TRUE(Client.Exits.size() == 1) << "no phantom hot exit for id 0";
}
