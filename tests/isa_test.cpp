//===- tests/isa_test.cpp - ISA / program / builder unit tests ------------==//

#include "isa/Instruction.h"
#include "isa/MethodBuilder.h"
#include "isa/Opcode.h"
#include "isa/Program.h"

#include <gtest/gtest.h>

using namespace dynace;

// ------------------------------------------------------------------- Opcode

struct OpClassCase {
  Opcode Op;
  OpClass Expected;
};

class OpClassTest : public ::testing::TestWithParam<OpClassCase> {};

TEST_P(OpClassTest, MapsToExpectedClass) {
  EXPECT_EQ(opClassOf(GetParam().Op), GetParam().Expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, OpClassTest,
    ::testing::Values(
        OpClassCase{Opcode::IConst, OpClass::IntAlu},
        OpClassCase{Opcode::Mov, OpClass::IntAlu},
        OpClassCase{Opcode::Add, OpClass::IntAlu},
        OpClassCase{Opcode::Sub, OpClass::IntAlu},
        OpClassCase{Opcode::Mul, OpClass::IntMult},
        OpClassCase{Opcode::MulI, OpClass::IntMult},
        OpClassCase{Opcode::Div, OpClass::IntDiv},
        OpClassCase{Opcode::Rem, OpClass::IntDiv},
        OpClassCase{Opcode::And, OpClass::IntAlu},
        OpClassCase{Opcode::Or, OpClass::IntAlu},
        OpClassCase{Opcode::Xor, OpClass::IntAlu},
        OpClassCase{Opcode::Shl, OpClass::IntAlu},
        OpClassCase{Opcode::Shr, OpClass::IntAlu},
        OpClassCase{Opcode::AddI, OpClass::IntAlu},
        OpClassCase{Opcode::AndI, OpClass::IntAlu},
        OpClassCase{Opcode::FAdd, OpClass::FpAlu},
        OpClassCase{Opcode::FSub, OpClass::FpAlu},
        OpClassCase{Opcode::FMul, OpClass::FpMultDiv},
        OpClassCase{Opcode::FDiv, OpClass::FpMultDiv},
        OpClassCase{Opcode::Load, OpClass::Load},
        OpClassCase{Opcode::LoadIdx, OpClass::Load},
        OpClassCase{Opcode::Store, OpClass::Store},
        OpClassCase{Opcode::StoreIdx, OpClass::Store},
        OpClassCase{Opcode::Br, OpClass::Branch},
        OpClassCase{Opcode::BrI, OpClass::Branch},
        OpClassCase{Opcode::Jmp, OpClass::Jump},
        OpClassCase{Opcode::Call, OpClass::Jump},
        OpClassCase{Opcode::Ret, OpClass::Jump},
        OpClassCase{Opcode::Alloc, OpClass::Other},
        OpClassCase{Opcode::Halt, OpClass::Other}));

TEST(Opcode, NamesAreNonEmpty) {
  EXPECT_STREQ(opcodeName(Opcode::Add), "add");
  EXPECT_STREQ(opcodeName(Opcode::LoadIdx), "loadidx");
  EXPECT_STREQ(condName(CondKind::Lt), "lt");
  EXPECT_STREQ(condName(CondKind::Ge), "ge");
}

// -------------------------------------------------------------- Instruction

TEST(Instruction, ControlFlowPredicate) {
  Instruction In;
  In.Op = Opcode::Br;
  EXPECT_TRUE(In.isControlFlow());
  EXPECT_TRUE(In.isConditionalBranch());
  In.Op = Opcode::Add;
  EXPECT_FALSE(In.isControlFlow());
  In.Op = Opcode::Call;
  EXPECT_TRUE(In.isControlFlow());
  EXPECT_FALSE(In.isConditionalBranch());
}

TEST(Instruction, MemOpPredicate) {
  Instruction In;
  In.Op = Opcode::Load;
  EXPECT_TRUE(In.isMemOp());
  In.Op = Opcode::StoreIdx;
  EXPECT_TRUE(In.isMemOp());
  In.Op = Opcode::Br;
  EXPECT_FALSE(In.isMemOp());
}

// ------------------------------------------------------------ MethodBuilder

TEST(MethodBuilder, ForwardLabelFixup) {
  MethodBuilder B("m");
  MethodBuilder::Label L = B.newLabel();
  B.jmp(L);      // Forward reference.
  B.iconst(1, 5);
  B.bind(L);
  B.ret(1);
  Method M = B.take();
  ASSERT_EQ(M.Code.size(), 3u);
  EXPECT_EQ(M.Code[0].Op, Opcode::Jmp);
  EXPECT_EQ(M.Code[0].Imm, 2); // Jumps to the ret.
}

TEST(MethodBuilder, BackwardLabel) {
  MethodBuilder B("loop");
  MethodBuilder::Label Top = B.newLabel();
  B.iconst(1, 0);
  B.bind(Top);
  B.addi(1, 1, 1);
  B.bri(CondKind::Lt, 1, 10, Top);
  B.ret(1);
  Method M = B.take();
  EXPECT_EQ(M.Code[2].Imm, 1); // Back-edge to the addi.
}

TEST(MethodBuilder, BriStoresComparisonInAux) {
  MethodBuilder B("m");
  MethodBuilder::Label L = B.newLabel();
  B.bind(L);
  B.bri(CondKind::Eq, 3, 77, L);
  B.ret(0);
  Method M = B.take();
  EXPECT_EQ(M.Code[0].Aux, 77);
  EXPECT_EQ(M.Code[0].Src1, 3);
  EXPECT_EQ(M.Code[0].Cond, CondKind::Eq);
}

TEST(MethodBuilder, CallEncoding) {
  MethodBuilder B("m");
  B.call(/*Dst=*/5, /*Callee=*/9, /*FirstArg=*/2, /*NumArgs=*/3);
  B.ret(5);
  Method M = B.take();
  EXPECT_EQ(M.Code[0].Op, Opcode::Call);
  EXPECT_EQ(M.Code[0].Imm, 9);
  EXPECT_EQ(M.Code[0].Src1, 2);
  EXPECT_EQ(M.Code[0].Src2, 3);
  EXPECT_EQ(M.Code[0].Dst, 5);
}

TEST(MethodBuilder, CallWithNoArgsHasNoArgWindow) {
  MethodBuilder B("m");
  B.call(1, 0);
  B.ret(1);
  Method M = B.take();
  EXPECT_EQ(M.Code[0].Src1, kNoReg);
  EXPECT_EQ(M.Code[0].Src2, 0);
}

TEST(MethodBuilder, StoreIdxUsesDstAsIndex) {
  MethodBuilder B("m");
  B.storeIdx(/*Base=*/1, /*Index=*/2, /*Value=*/3, /*Disp=*/8);
  B.halt();
  Method M = B.take();
  EXPECT_EQ(M.Code[0].Src1, 1);
  EXPECT_EQ(M.Code[0].Dst, 2);
  EXPECT_EQ(M.Code[0].Src2, 3);
  EXPECT_EQ(M.Code[0].Imm, 8);
}

TEST(MethodBuilder, SizeTracksEmission) {
  MethodBuilder B("m");
  EXPECT_EQ(B.size(), 0u);
  B.iconst(0, 1);
  B.iconst(1, 2);
  EXPECT_EQ(B.size(), 2u);
}

// ------------------------------------------------------------------ Program

namespace {

Method makeRetMethod(const std::string &Name) {
  MethodBuilder B(Name);
  B.iconst(0, 1);
  B.ret(0);
  return B.take();
}

} // namespace

TEST(Program, FinalizeAssignsSequentialCodeAddresses) {
  Program P;
  MethodId A = P.addMethod(makeRetMethod("a"));
  MethodId B = P.addMethod(makeRetMethod("b"));
  P.setEntry(A);
  ASSERT_TRUE(P.finalize());
  EXPECT_EQ(P.method(A).CodeBase, kCodeBase);
  EXPECT_EQ(P.method(B).CodeBase, kCodeBase + 2 * kInstrBytes);
  EXPECT_EQ(P.method(B).pcOf(1), P.method(B).CodeBase + kInstrBytes);
}

TEST(Program, AddGlobalAssignsDisjointRegions) {
  Program P;
  uint64_t G1 = P.addGlobal(16);
  uint64_t G2 = P.addGlobal(8);
  EXPECT_EQ(G1, kHeapBase);
  EXPECT_EQ(G2, kHeapBase + 16 * 8);
  EXPECT_EQ(P.globalWords(), 24u);
}

TEST(Program, RejectsEmptyProgram) {
  Program P;
  Status S = P.finalize();
  EXPECT_FALSE(S);
  EXPECT_EQ(S.code(), ErrorCode::InvalidInput);
  EXPECT_NE(S.message().find("no methods"), std::string::npos);
}

TEST(Program, RejectsBranchTargetOutOfRange) {
  Program P;
  Method M;
  M.Name = "bad";
  Instruction Br;
  Br.Op = Opcode::Jmp;
  Br.Imm = 5; // Out of range.
  M.Code.push_back(Br);
  Instruction Halt;
  Halt.Op = Opcode::Halt;
  M.Code.push_back(Halt);
  P.addMethod(std::move(M));
  Status S = P.finalize();
  EXPECT_FALSE(S);
  EXPECT_EQ(S.code(), ErrorCode::InvalidInput);
  EXPECT_NE(S.message().find("branch target"), std::string::npos);
}

TEST(Program, RejectsCallTargetOutOfRange) {
  Program P;
  MethodBuilder B("bad");
  B.call(1, /*Callee=*/3);
  B.ret(1);
  P.addMethod(B.take());
  Status S = P.finalize();
  EXPECT_FALSE(S);
  EXPECT_EQ(S.code(), ErrorCode::InvalidInput);
  EXPECT_NE(S.message().find("call target"), std::string::npos);
}

TEST(Program, RejectsRegisterOutOfRange) {
  Program P;
  Method M;
  M.Name = "bad";
  Instruction In;
  In.Op = Opcode::Mov;
  In.Dst = kNumRegs; // One past the last register.
  In.Src1 = 0;
  M.Code.push_back(In);
  Instruction Halt;
  Halt.Op = Opcode::Halt;
  M.Code.push_back(Halt);
  P.addMethod(std::move(M));
  Status S = P.finalize();
  EXPECT_FALSE(S);
  EXPECT_EQ(S.code(), ErrorCode::InvalidInput);
  EXPECT_NE(S.message().find("register"), std::string::npos);
}

TEST(Program, RejectsMissingTerminator) {
  Program P;
  Method M;
  M.Name = "bad";
  Instruction In;
  In.Op = Opcode::IConst;
  In.Dst = 0;
  M.Code.push_back(In);
  P.addMethod(std::move(M));
  Status S = P.finalize();
  EXPECT_FALSE(S);
  EXPECT_EQ(S.code(), ErrorCode::InvalidInput);
  EXPECT_NE(S.message().find("ret/halt/jmp"), std::string::npos);
}

TEST(Program, RejectsBadCallArgumentWindow) {
  Program P;
  MethodBuilder B("bad");
  // FirstArg 30 + 3 args would read past the register file.
  B.call(1, 0, /*FirstArg=*/30, /*NumArgs=*/3);
  B.ret(1);
  P.addMethod(B.take());
  Status S = P.finalize();
  EXPECT_FALSE(S);
  EXPECT_EQ(S.code(), ErrorCode::InvalidInput);
  EXPECT_NE(S.message().find("argument window"), std::string::npos);
}

TEST(Program, RejectsEntryOutOfRange) {
  Program P;
  P.addMethod(makeRetMethod("a"));
  P.setEntry(7);
  Status S = P.finalize();
  EXPECT_FALSE(S);
  EXPECT_EQ(S.code(), ErrorCode::InvalidInput);
  EXPECT_NE(S.message().find("entry"), std::string::npos);
}

TEST(Program, StaticInstructionCount) {
  Program P;
  P.addMethod(makeRetMethod("a"));
  P.addMethod(makeRetMethod("b"));
  EXPECT_EQ(P.staticInstructionCount(), 4u);
}

TEST(Program, FinalizedFlag) {
  Program P;
  P.addMethod(makeRetMethod("a"));
  EXPECT_FALSE(P.isFinalized());
  ASSERT_TRUE(P.finalize());
  EXPECT_TRUE(P.isFinalized());
}
