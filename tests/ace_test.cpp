//===- tests/ace_test.cpp - ConfigurableUnit and AceManager tests ---------==//

#include "ace/AceManager.h"
#include "ace/ConfigurableUnit.h"
#include "dosys/DoSystem.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

using namespace dynace;

// ---------------------------------------------------------- ConfigurableUnit

namespace {

ConfigurableUnit makeUnit(const std::string &Name, uint64_t Interval,
                          uint64_t *ApplyCount = nullptr) {
  return ConfigurableUnit(Name, 4, Interval, 0, [ApplyCount](unsigned) {
    if (ApplyCount)
      ++*ApplyCount;
    return ReconfigCost{};
  });
}

} // namespace

TEST(ConfigurableUnit, FirstRequestAlwaysApplies) {
  ConfigurableUnit U = makeUnit("u", 1000);
  CuRequestResult R = U.request(2, /*NowInstr=*/0);
  EXPECT_TRUE(R.InEffect);
  EXPECT_TRUE(R.Changed);
  EXPECT_EQ(U.currentSetting(), 2u);
}

TEST(ConfigurableUnit, SameSettingIsInEffectWithoutChange) {
  uint64_t Applies = 0;
  ConfigurableUnit U = makeUnit("u", 1000, &Applies);
  U.request(1, 0);
  CuRequestResult R = U.request(1, 1);
  EXPECT_TRUE(R.InEffect);
  EXPECT_FALSE(R.Changed);
  EXPECT_EQ(Applies, 1u);
}

TEST(ConfigurableUnit, GuardRejectsWithinInterval) {
  ConfigurableUnit U = makeUnit("u", 1000);
  U.request(1, 0);
  CuRequestResult R = U.request(2, 999); // 999 < 1000 since last change.
  EXPECT_FALSE(R.InEffect);
  EXPECT_FALSE(R.Changed);
  EXPECT_EQ(U.currentSetting(), 1u);
  EXPECT_EQ(U.guardRejections(), 1u);
}

TEST(ConfigurableUnit, GuardAllowsAfterInterval) {
  ConfigurableUnit U = makeUnit("u", 1000);
  U.request(1, 0);
  CuRequestResult R = U.request(2, 1000);
  EXPECT_TRUE(R.Changed);
  EXPECT_EQ(U.currentSetting(), 2u);
  EXPECT_EQ(U.changesApplied(), 2u);
}

TEST(ConfigurableUnit, GuardBypassForAblation) {
  ConfigurableUnit U = makeUnit("u", 1000000);
  U.request(1, 0);
  CuRequestResult R = U.request(2, 1, /*GuardEnabled=*/false);
  EXPECT_TRUE(R.Changed);
}

TEST(ConfigurableUnit, SameSettingDoesNotResetGuardTimer) {
  ConfigurableUnit U = makeUnit("u", 1000);
  U.request(1, 0);
  U.request(1, 500);                      // No change, no timer update.
  EXPECT_TRUE(U.request(2, 1000).Changed); // Allowed at exactly interval.
}

// ----------------------------------------------------------- AceManager rig

namespace {

/// A scripted platform: the test controls instruction/cycle/energy flow.
struct FakePlatform {
  uint64_t Cycles = 0;
  uint64_t Instructions = 0;
  double Energy = 0.0;
  uint64_t StalledCycles = 0;

  AcePlatform make() {
    AcePlatform P;
    P.Cycles = [this] { return Cycles; };
    P.Instructions = [this] { return Instructions; };
    P.Energy = [this] { return Energy; };
    P.Stall = [this](uint64_t C) { StalledCycles += C; };
    return P;
  }
};

/// Test rig: one L1D-like and one L2-like unit with scripted per-setting
/// IPC and energy-per-instruction; a DoSystem wired to an AceManager.
struct AceRig {
  FakePlatform Platform;
  std::unique_ptr<ConfigurableUnit> L1D;
  std::unique_ptr<ConfigurableUnit> L2;
  std::unique_ptr<DoSystem> Do;
  std::unique_ptr<AceManager> Manager;

  /// Scripted behavior, indexed by the L1D setting.
  double IpcBySetting[4] = {2.0, 2.0, 2.0, 2.0};
  double EpiBySetting[4] = {1.0, 0.8, 0.6, 0.4};

  explicit AceRig(AceManagerConfig Config = AceManagerConfig(),
                  size_t NumMethods = 8) {
    L1D = std::make_unique<ConfigurableUnit>(
        "L1D", 4, /*Interval=*/10000, 0,
        [](unsigned) { return ReconfigCost{}; });
    L2 = std::make_unique<ConfigurableUnit>(
        "L2", 4, /*Interval=*/100000, 0,
        [](unsigned) { return ReconfigCost{}; });
    DoConfig DC;
    DC.HotThreshold = 1; // Promote on first invocation.
    Do = std::make_unique<DoSystem>(NumMethods, DC);
    Manager = std::make_unique<AceManager>(
        std::vector<ConfigurableUnit *>{L1D.get(), L2.get()}, *Do,
        Platform.make(), Config);
    Do->setClient(Manager.get());
  }

  /// Runs one invocation of \p Id of \p Instructions instructions, with
  /// IPC/EPI determined by the scripted tables and the ACTIVE L1D setting
  /// (so the manager's configuration choices feed back into what it
  /// measures).
  void invoke(MethodId Id, uint64_t Instructions) {
    Do->onMethodEnter(Id, Platform.Instructions);
    unsigned S = L1D->currentSetting();
    Platform.Instructions += Instructions;
    Platform.Cycles += static_cast<uint64_t>(
        static_cast<double>(Instructions) / IpcBySetting[S]);
    Platform.Energy += EpiBySetting[S] * static_cast<double>(Instructions);
    Do->onMethodExit(Id, Instructions, Platform.Instructions);
  }

  const HotspotAceData &data(MethodId Id) const {
    return Manager->hotspotData(Id);
  }
};

} // namespace

// -------------------------------------------------------------- Classifying

struct ClassifyCase {
  uint64_t Size;
  int ExpectedClass; // -2 = unmanaged.
};

class ClassifyTest : public ::testing::TestWithParam<ClassifyCase> {};

TEST_P(ClassifyTest, SizeBandSelectsCu) {
  AceRig Rig;
  const ClassifyCase &C = GetParam();
  Rig.invoke(0, C.Size);
  Rig.invoke(0, C.Size); // Classification uses the size EMA at entry.
  const HotspotAceData &H = Rig.data(0);
  if (C.ExpectedClass == -2) {
    EXPECT_EQ(H.State, TuneState::Inactive);
    EXPECT_TRUE(H.Configs.empty());
  } else {
    EXPECT_EQ(H.CuClass, C.ExpectedClass);
    EXPECT_NE(H.State, TuneState::Inactive);
  }
}

// L1D band: [interval/2, L2 interval/2) = [5K, 50K); L2: >= 50K.
INSTANTIATE_TEST_SUITE_P(
    Bands, ClassifyTest,
    ::testing::Values(ClassifyCase{1000, -2}, ClassifyCase{4999, -2},
                      ClassifyCase{5000, 0}, ClassifyCase{20000, 0},
                      ClassifyCase{49000, 0}, ClassifyCase{51000, 1},
                      ClassifyCase{500000, 1}));

TEST(AceManager, DecoupledHotspotTestsOnlyOneCuSettings) {
  AceRig Rig;
  Rig.invoke(0, 20000);
  Rig.invoke(0, 20000);
  EXPECT_EQ(Rig.data(0).Configs.size(), 4u); // One CU's settings, not 16.
}

TEST(AceManager, NoDecouplingTestsCrossProduct) {
  AceManagerConfig Config;
  Config.DecouplingEnabled = false;
  AceRig Rig(Config);
  Rig.invoke(0, 20000);
  Rig.invoke(0, 20000);
  EXPECT_EQ(Rig.data(0).CuClass, -1);
  EXPECT_EQ(Rig.data(0).Configs.size(), 16u);
}

// ------------------------------------------------------------------- Tuning

TEST(AceManager, TuningSelectsMostEnergyEfficientConfig) {
  AceRig Rig;
  // Flat IPC, strictly decreasing EPI: the smallest setting must win.
  for (int I = 0; I != 64 && Rig.data(0).State != TuneState::Configured; ++I)
    Rig.invoke(0, 20000);
  const HotspotAceData &H = Rig.data(0);
  ASSERT_EQ(H.State, TuneState::Configured);
  EXPECT_EQ(H.BestConfig, 3u);
  EXPECT_TRUE(H.EverConfigured);
}

TEST(AceManager, PerformanceThresholdRejectsSlowConfigs) {
  AceRig Rig;
  // Setting 2 and below destroy IPC; EPI still decreasing.
  Rig.IpcBySetting[2] = 1.0;
  Rig.IpcBySetting[3] = 0.8;
  for (int I = 0; I != 64 && Rig.data(0).State != TuneState::Configured; ++I)
    Rig.invoke(0, 20000);
  const HotspotAceData &H = Rig.data(0);
  ASSERT_EQ(H.State, TuneState::Configured);
  EXPECT_EQ(H.BestConfig, 1u); // Largest config passing the 2% floor.
}

TEST(AceManager, EarlyAbortStopsSweepOnBreach) {
  AceRig Rig;
  Rig.IpcBySetting[1] = 1.0; // First candidate already breaches.
  for (int I = 0; I != 64 && Rig.data(0).State != TuneState::Configured; ++I)
    Rig.invoke(0, 20000);
  const HotspotAceData &H = Rig.data(0);
  ASSERT_EQ(H.State, TuneState::Configured);
  EXPECT_EQ(H.BestConfig, 0u);
  // Settings 2 and 3 were never measured (early abort).
  EXPECT_TRUE(std::isnan(H.MeasuredIpc[2]));
  EXPECT_TRUE(std::isnan(H.MeasuredIpc[3]));
}

TEST(AceManager, EpiMarginBlocksMarginalWins) {
  AceManagerConfig Config;
  Config.EpiMargin = 0.05;
  AceRig Rig(Config);
  // Tiny (2%) energy improvements must not justify a switch.
  Rig.EpiBySetting[1] = 0.99;
  Rig.EpiBySetting[2] = 0.98;
  Rig.EpiBySetting[3] = 0.985;
  for (int I = 0; I != 64 && Rig.data(0).State != TuneState::Configured; ++I)
    Rig.invoke(0, 20000);
  EXPECT_EQ(Rig.data(0).BestConfig, 0u);
}

TEST(AceManager, ConfiguredHotspotAppliesItsSetting) {
  AceRig Rig;
  for (int I = 0; I != 64 && Rig.data(0).State != TuneState::Configured; ++I)
    Rig.invoke(0, 20000);
  ASSERT_EQ(Rig.data(0).State, TuneState::Configured);
  // Disturb the hardware, then re-invoke: the configuration code restores
  // the hotspot's best setting.
  Rig.Platform.Instructions += 20000; // Get past the guard interval.
  Rig.L1D->request(0, Rig.Platform.Instructions);
  Rig.Platform.Instructions += 20000;
  Rig.invoke(0, 20000);
  EXPECT_EQ(Rig.L1D->currentSetting(), 3u);
  EXPECT_GT(Rig.data(0).ReconfigApplications, 0u);
}

TEST(AceManager, NestedInvocationsMeasureOutermostOnly) {
  AceRig Rig;
  // Manually nest: enter, enter, exit, exit.
  Rig.Do->onMethodEnter(0, Rig.Platform.Instructions);
  Rig.Platform.Instructions += 10000;
  Rig.Do->onMethodEnter(0, Rig.Platform.Instructions);
  Rig.Platform.Instructions += 10000;
  Rig.Platform.Cycles += 10000;
  Rig.Do->onMethodExit(0, 10000, Rig.Platform.Instructions);
  Rig.Platform.Instructions += 10000;
  Rig.Do->onMethodExit(0, 30000, Rig.Platform.Instructions);
  EXPECT_EQ(Rig.data(0).Depth, 0u);
  // No crash, balanced depth; tuning proceeds on outermost pairs only.
}

TEST(AceManager, GuardRejectionSkipsMeasurement) {
  AceRig Rig;
  // Two L1D hotspots alternating faster than the guard interval: requests
  // get rejected and those invocations are not recorded as measurements.
  Rig.invoke(0, 6000);
  Rig.invoke(1, 6000);
  Rig.invoke(0, 6000);
  Rig.invoke(1, 6000);
  uint64_t Rejections = Rig.L1D->guardRejections();
  // Whether rejections happened depends on config schedule; the invariant
  // is: no measurement may complete while its config is not in effect.
  (void)Rejections;
  const HotspotAceData &H0 = Rig.data(0);
  for (size_t C = 0; C != H0.MeasuredIpc.size(); ++C)
    if (!std::isnan(H0.MeasuredIpc[C]))
      SUCCEED();
}

TEST(AceManager, RetuneTriggersOnBehaviorShiftAndIsBounded) {
  AceManagerConfig Config;
  Config.RetuneThreshold = 0.3;
  Config.SampleEveryN = 1; // Sample every exit.
  Config.MaxRetunes = 2;
  AceRig Rig(Config);
  for (int I = 0; I != 64 && Rig.data(0).State != TuneState::Configured; ++I)
    Rig.invoke(0, 20000);
  ASSERT_EQ(Rig.data(0).State, TuneState::Configured);
  // Shift behavior: IPC at every setting collapses.
  for (int S = 0; S != 4; ++S)
    Rig.IpcBySetting[S] = 0.5;
  Rig.invoke(0, 20000);
  EXPECT_EQ(Rig.data(0).Retunes, 1u);
  EXPECT_EQ(Rig.data(0).State, TuneState::Tuning);
  // Run long enough to finish retuning and trigger at most MaxRetunes.
  for (int I = 0; I != 200; ++I)
    Rig.invoke(0, 20000);
  EXPECT_LE(Rig.data(0).Retunes, 2u);
}

TEST(AceManager, ShortInvocationMeasurementsDiscarded) {
  AceManagerConfig Config;
  Config.MinMeasureFraction = 0.5;
  AceRig Rig(Config);
  Rig.invoke(0, 20000);
  Rig.invoke(0, 20000);
  const HotspotAceData &Before = Rig.data(0);
  unsigned PlanBefore = Before.PlanPos;
  // An invocation far below the size estimate must not advance the plan.
  Rig.invoke(0, 500);
  EXPECT_EQ(Rig.data(0).PlanPos, PlanBefore);
}

// ------------------------------------------------------------------ Report

TEST(AceManager, ReportCountsPerCuClasses) {
  AceRig Rig;
  // Method 0: L1D class; method 1: L2 class; method 2: unmanaged.
  for (int I = 0; I != 40; ++I)
    Rig.invoke(0, 20000);
  for (int I = 0; I != 40; ++I)
    Rig.invoke(1, 80000);
  for (int I = 0; I != 40; ++I)
    Rig.invoke(2, 100);
  AceReport R = Rig.Manager->report(Rig.Platform.Instructions);
  ASSERT_EQ(R.PerCu.size(), 3u); // L1D, L2, "all".
  EXPECT_EQ(R.PerCu[0].NumHotspots, 1u);
  EXPECT_EQ(R.PerCu[1].NumHotspots, 1u);
  EXPECT_EQ(R.TotalHotspots, 2u);
  EXPECT_EQ(R.TunedHotspots, 2u);
  EXPECT_GT(R.PerCu[0].Tunings, 0u);
  EXPECT_GT(R.PerCu[0].Coverage, 0.0);
  EXPECT_LT(R.PerCu[0].Coverage, 1.0);
}

TEST(AceManager, CoverageReflectsManagedShare) {
  AceRig Rig;
  for (int I = 0; I != 20; ++I)
    Rig.invoke(0, 20000);  // Managed.
  for (int I = 0; I != 20; ++I)
    Rig.invoke(2, 100);    // Unmanaged filler.
  AceReport R = Rig.Manager->report(Rig.Platform.Instructions);
  // The first invocation predates classification (no size estimate yet),
  // so coverage is slightly below the managed share of instructions.
  double ManagedShare = 20.0 * 20000.0 / (20.0 * 20000.0 + 20.0 * 100.0);
  EXPECT_NEAR(R.PerCu[0].Coverage, ManagedShare, 0.08);
  EXPECT_LE(R.PerCu[0].Coverage, ManagedShare);
}

TEST(AceManager, PairedPlanInterleavesReference) {
  AceRig Rig;
  Rig.invoke(0, 20000);
  Rig.invoke(0, 20000);
  const HotspotAceData &H = Rig.data(0);
  ASSERT_EQ(H.Plan.size(), 6u); // 0,1,0,2,0,3.
  EXPECT_EQ(H.Plan[0], 0u);
  EXPECT_EQ(H.Plan[1], 1u);
  EXPECT_EQ(H.Plan[2], 0u);
  EXPECT_EQ(H.Plan[3], 2u);
  EXPECT_EQ(H.Plan[4], 0u);
  EXPECT_EQ(H.Plan[5], 3u);
}

TEST(AceManager, UnpairedPlanIsLinear) {
  AceManagerConfig Config;
  Config.PairedReference = false;
  AceRig Rig(Config);
  Rig.invoke(0, 20000);
  Rig.invoke(0, 20000);
  const HotspotAceData &H = Rig.data(0);
  ASSERT_EQ(H.Plan.size(), 4u);
  for (unsigned C = 0; C != 4; ++C)
    EXPECT_EQ(H.Plan[C], C);
}
