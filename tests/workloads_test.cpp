//===- tests/workloads_test.cpp - workload generator tests ----------------==//

#include "dosys/DoSystem.h"
#include "vm/Interpreter.h"
#include "workloads/WorkloadGenerator.h"
#include "workloads/WorkloadProfile.h"

#include <gtest/gtest.h>

using namespace dynace;

TEST(Profiles, SevenBenchmarksInPaperOrder) {
  const auto &P = specjvm98Profiles();
  ASSERT_EQ(P.size(), 7u);
  EXPECT_EQ(P[0].Name, "compress");
  EXPECT_EQ(P[1].Name, "db");
  EXPECT_EQ(P[2].Name, "jack");
  EXPECT_EQ(P[3].Name, "javac");
  EXPECT_EQ(P[4].Name, "jess");
  EXPECT_EQ(P[5].Name, "mpegaudio");
  EXPECT_EQ(P[6].Name, "mtrt");
}

TEST(Profiles, FindProfileByName) {
  EXPECT_NE(findProfile("db"), nullptr);
  EXPECT_EQ(findProfile("db")->Name, "db");
  EXPECT_EQ(findProfile("nonesuch"), nullptr);
}

TEST(Profiles, JavacHasLargestMethodPopulation) {
  const WorkloadProfile *Javac = findProfile("javac");
  for (const WorkloadProfile &P : specjvm98Profiles())
    EXPECT_LE(P.NumLeaves + P.NumMids + P.NumRegions,
              Javac->NumLeaves + Javac->NumMids + Javac->NumRegions);
}

class GenerateTest : public ::testing::TestWithParam<int> {};

TEST_P(GenerateTest, ProducesValidProgram) {
  const WorkloadProfile &P = specjvm98Profiles()[GetParam()];
  GeneratedWorkload W = WorkloadGenerator::generate(P);
  EXPECT_TRUE(W.Prog.isFinalized());
  // Method population: leaves + mids + regions + per-region scanner + main.
  EXPECT_EQ(W.Prog.numMethods(),
            P.NumLeaves + P.NumMids + 2 * P.NumRegions + 1);
  EXPECT_GT(W.Prog.globalWords(), 0u);
  EXPECT_GT(W.EstimatedInstructions, 1e6);
}

TEST_P(GenerateTest, RunsUnderTheVm) {
  const WorkloadProfile &P = specjvm98Profiles()[GetParam()];
  GeneratedWorkload W = WorkloadGenerator::generate(P);
  Interpreter I(W.Prog);
  uint64_t Ran = I.run(2'000'000);
  EXPECT_EQ(Ran, 2'000'000u) << "program must run at least 2M instructions";
  EXPECT_FALSE(I.isHalted());
}

TEST_P(GenerateTest, DeterministicAcrossGenerations) {
  const WorkloadProfile &P = specjvm98Profiles()[GetParam()];
  GeneratedWorkload A = WorkloadGenerator::generate(P);
  GeneratedWorkload B = WorkloadGenerator::generate(P);
  ASSERT_EQ(A.Prog.numMethods(), B.Prog.numMethods());
  ASSERT_EQ(A.MethodSizeEst.size(), B.MethodSizeEst.size());
  for (size_t I = 0; I != A.MethodSizeEst.size(); ++I)
    EXPECT_DOUBLE_EQ(A.MethodSizeEst[I], B.MethodSizeEst[I]);
  // Identical dynamic behavior over a prefix.
  Interpreter IA(A.Prog), IB(B.Prog);
  DynInst DA, DB;
  for (int I = 0; I != 100000; ++I) {
    IA.step(DA);
    IB.step(DB);
    ASSERT_EQ(DA.PC, DB.PC);
    ASSERT_EQ(DA.MemAddr, DB.MemAddr);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, GenerateTest,
                         ::testing::Range(0, 7));

TEST(Generator, SizeEstimatesMatchMeasuredInclusiveSizes) {
  // Run compress under a DO system and compare build-time size estimates
  // against measured inclusive sizes for methods that executed.
  const WorkloadProfile &P = *findProfile("compress");
  GeneratedWorkload W = WorkloadGenerator::generate(P);
  Interpreter I(W.Prog);
  DoConfig DC;
  DC.HotThreshold = 1;
  DoSystem Do(W.Prog.numMethods(), DC);
  I.setListener(&Do);
  I.reset();
  I.run(8'000'000);

  size_t Checked = 0;
  for (MethodId Id = 0; Id != W.Prog.numMethods(); ++Id) {
    if (Do.entry(Id).SizeSamples < 3 || W.MethodSizeEst[Id] < 1000)
      continue;
    double Measured = Do.hotspotSize(Id);
    double Est = W.MethodSizeEst[Id];
    EXPECT_LT(Measured / Est, 3.0) << "method " << Id;
    EXPECT_GT(Measured / Est, 0.33) << "method " << Id;
    ++Checked;
  }
  EXPECT_GT(Checked, 20u);
}

TEST(Generator, MostMethodsAreReachable) {
  const WorkloadProfile &P = *findProfile("db");
  GeneratedWorkload W = WorkloadGenerator::generate(P);
  Interpreter I(W.Prog);
  DoConfig DC;
  DC.HotThreshold = 1;
  DoSystem Do(W.Prog.numMethods(), DC);
  I.setListener(&Do);
  I.reset();
  // One full outer iteration touches every region/mid at least once.
  I.run(30'000'000);
  size_t Invoked = 0;
  for (MethodId Id = 0; Id != W.Prog.numMethods(); ++Id)
    Invoked += Do.entry(Id).Invocations > 0;
  EXPECT_GT(static_cast<double>(Invoked) /
                static_cast<double>(W.Prog.numMethods()),
            0.8);
}

TEST(Generator, RegionSizesLandInL2Band) {
  const WorkloadProfile &P = *findProfile("jack");
  GeneratedWorkload W = WorkloadGenerator::generate(P);
  // Region ids follow mids and scanners in creation order; identify by
  // name instead.
  Interpreter I(W.Prog);
  DoConfig DC;
  DC.HotThreshold = 1;
  DoSystem Do(W.Prog.numMethods(), DC);
  I.setListener(&Do);
  I.reset();
  I.run(20'000'000);
  size_t InBand = 0, Total = 0;
  for (MethodId Id = 0; Id != W.Prog.numMethods(); ++Id) {
    const Method &M = W.Prog.method(Id);
    if (M.Name.rfind("region", 0) != 0 || Do.entry(Id).SizeSamples == 0)
      continue;
    ++Total;
    InBand += Do.hotspotSize(Id) >= 50000.0;
  }
  ASSERT_GT(Total, 5u);
  EXPECT_GT(static_cast<double>(InBand) / static_cast<double>(Total), 0.8);
}

TEST(Generator, DistinctSeedsProduceDistinctPrograms) {
  WorkloadProfile A = *findProfile("jess");
  WorkloadProfile B = A;
  B.Seed += 1;
  GeneratedWorkload WA = WorkloadGenerator::generate(A);
  GeneratedWorkload WB = WorkloadGenerator::generate(B);
  bool AnyDifferent = false;
  for (size_t I = 0;
       I != std::min(WA.MethodSizeEst.size(), WB.MethodSizeEst.size()); ++I)
    AnyDifferent |= WA.MethodSizeEst[I] != WB.MethodSizeEst[I];
  EXPECT_TRUE(AnyDifferent);
}
