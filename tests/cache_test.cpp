//===- tests/cache_test.cpp - cache model unit tests ----------------------==//

#include "cache/Cache.h"
#include "cache/MemoryHierarchy.h"
#include "cache/ReconfigurableCache.h"
#include "cache/Tlb.h"

#include <gtest/gtest.h>

using namespace dynace;

namespace {

CacheGeometry smallGeom() {
  CacheGeometry G;
  G.SizeBytes = 1024; // 8 sets x 2 ways x 64 B.
  G.BlockBytes = 64;
  G.Assoc = 2;
  G.HitLatency = 1;
  return G;
}

} // namespace

// ----------------------------------------------------------------- Geometry

TEST(CacheGeometry, SetAndLineMath) {
  CacheGeometry G = smallGeom();
  EXPECT_EQ(G.numSets(), 8u);
  EXPECT_EQ(G.numLines(), 16u);
  CacheGeometry L2{128 * 1024, 128, 4, 10};
  EXPECT_EQ(L2.numSets(), 256u);
  EXPECT_EQ(L2.numLines(), 1024u);
}

// -------------------------------------------------------------------- Cache

TEST(Cache, FirstAccessMissesThenHits) {
  Cache C(smallGeom());
  EXPECT_FALSE(C.access(0x1000, false).Hit);
  EXPECT_TRUE(C.access(0x1000, false).Hit);
  EXPECT_TRUE(C.access(0x1030, false).Hit); // Same 64 B block.
  EXPECT_FALSE(C.access(0x1040, false).Hit); // Next block.
}

TEST(Cache, StatsCountReadsWritesMisses) {
  Cache C(smallGeom());
  C.access(0x0, false);
  C.access(0x0, false);
  C.access(0x0, true);
  C.access(0x40, true);
  const CacheStats &S = C.stats();
  EXPECT_EQ(S.Reads, 2u);
  EXPECT_EQ(S.Writes, 2u);
  EXPECT_EQ(S.ReadMisses, 1u);
  EXPECT_EQ(S.WriteMisses, 1u);
  EXPECT_DOUBLE_EQ(S.missRate(), 0.5);
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  Cache C(smallGeom()); // 2-way: three conflicting blocks force eviction.
  uint64_t SetStride = 8 * 64; // Same set every 512 bytes.
  C.access(0 * SetStride, false);      // A
  C.access(1 * SetStride, false);      // B
  C.access(0 * SetStride, false);      // Touch A: B becomes LRU.
  C.access(2 * SetStride, false);      // C evicts B.
  EXPECT_TRUE(C.probe(0 * SetStride));
  EXPECT_FALSE(C.probe(1 * SetStride));
  EXPECT_TRUE(C.probe(2 * SetStride));
}

TEST(Cache, DirtyEvictionReportsWriteback) {
  Cache C(smallGeom());
  uint64_t SetStride = 8 * 64;
  C.access(0, true); // Dirty.
  C.access(1 * SetStride, false);
  CacheAccessResult R = C.access(2 * SetStride, false); // Evicts dirty A.
  EXPECT_TRUE(R.EvictedDirty);
  EXPECT_EQ(R.EvictedAddr, 0u);
  EXPECT_EQ(C.stats().Writebacks, 1u);
}

TEST(Cache, CleanEvictionHasNoWriteback) {
  Cache C(smallGeom());
  uint64_t SetStride = 8 * 64;
  C.access(0, false);
  C.access(1 * SetStride, false);
  CacheAccessResult R = C.access(2 * SetStride, false);
  EXPECT_FALSE(R.EvictedDirty);
}

TEST(Cache, FlushDirtyWritesBackAndKeepsLinesValid) {
  Cache C(smallGeom());
  C.access(0x0, true);
  C.access(0x40, true);
  C.access(0x80, false);
  std::vector<uint64_t> Addrs;
  EXPECT_EQ(C.flushDirty(&Addrs), 2u);
  EXPECT_EQ(Addrs.size(), 2u);
  EXPECT_EQ(C.dirtyLineCount(), 0u);
  EXPECT_TRUE(C.probe(0x0)); // Still resident, now clean.
  // A second flush finds nothing.
  EXPECT_EQ(C.flushDirty(), 0u);
}

TEST(Cache, InvalidateAllReportsLostDirty) {
  Cache C(smallGeom());
  C.access(0x0, true);
  C.access(0x40, false);
  EXPECT_EQ(C.invalidateAll(), 1u);
  EXPECT_FALSE(C.probe(0x0));
  EXPECT_FALSE(C.probe(0x40));
}

TEST(Cache, ProbeDoesNotPerturbState) {
  Cache C(smallGeom());
  C.access(0x0, false);
  uint64_t Misses = C.stats().misses();
  C.probe(0x9999999);
  EXPECT_EQ(C.stats().misses(), Misses);
}

/// Property: after any access sequence, the number of resident blocks never
/// exceeds capacity, and re-access of the most recent address always hits.
class CachePropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint32_t>> {};

TEST_P(CachePropertyTest, CapacityAndRecencyInvariants) {
  auto [Size, Assoc] = GetParam();
  CacheGeometry G;
  G.SizeBytes = Size;
  G.BlockBytes = 64;
  G.Assoc = Assoc;
  Cache C(G);
  uint64_t State = 12345;
  uint64_t Last = 0;
  for (int I = 0; I != 5000; ++I) {
    State = State * 6364136223846793005ull + 1442695040888963407ull;
    Last = (State >> 20) & 0xffff0;
    C.access(Last, (State & 1) != 0);
    ASSERT_TRUE(C.probe(Last)) << "most recent access must be resident";
  }
  EXPECT_LE(C.dirtyLineCount(), G.numLines());
  EXPECT_EQ(C.stats().accesses(), 5000u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CachePropertyTest,
    ::testing::Combine(::testing::Values(1024u, 4096u, 16384u),
                       ::testing::Values(1u, 2u, 4u)));

// ------------------------------------------------------- ReconfigurableCache

namespace {

std::vector<CacheGeometry> l1dLadder() {
  return {{8 * 1024, 64, 2, 1},
          {4 * 1024, 64, 2, 1},
          {2 * 1024, 64, 2, 1},
          {1 * 1024, 64, 2, 1}};
}

} // namespace

TEST(ReconfigurableCache, StartsAtInitialSetting) {
  ReconfigurableCache C(l1dLadder(), 0, "L1D");
  EXPECT_EQ(C.setting(), 0u);
  EXPECT_EQ(C.numSettings(), 4u);
  EXPECT_EQ(C.geometry().SizeBytes, 8u * 1024u);
  EXPECT_EQ(C.geometryOf(3).SizeBytes, 1024u);
}

TEST(ReconfigurableCache, ReconfigureToSameSettingIsNoOp) {
  ReconfigurableCache C(l1dLadder(), 1, "L1D");
  ReconfigResult R = C.reconfigure(1);
  EXPECT_FALSE(R.Changed);
  EXPECT_EQ(C.reconfigurationCount(), 0u);
}

TEST(ReconfigurableCache, FlushAllReconfigureWritesBackDirtyLines) {
  ReconfigurableCache C(l1dLadder(), 0, "L1D", /*RetainOnDownsize=*/false);
  C.access(0x0, true);
  C.access(0x40, true);
  C.access(0x80, false);
  std::vector<uint64_t> Writebacks;
  ReconfigResult R = C.reconfigure(2, &Writebacks);
  EXPECT_TRUE(R.Changed);
  EXPECT_EQ(R.Writebacks, 2u);
  EXPECT_EQ(Writebacks.size(), 2u);
  EXPECT_EQ(C.setting(), 2u);
  EXPECT_EQ(C.reconfigurationCount(), 1u);
  EXPECT_EQ(C.reconfigurationWritebacks(), 2u);
  // Contents were invalidated: previously resident blocks miss now.
  EXPECT_FALSE(C.access(0x0, false).Hit);
}

TEST(ReconfigurableCache, DownsizeRetainsSurvivingSets) {
  // 8 KB -> 2 KB (64 -> 16 sets): lines in sets 0..15 survive with their
  // dirty state; lines in disabled sets write back and drop.
  ReconfigurableCache C(l1dLadder(), 0, "L1D", /*RetainOnDownsize=*/true);
  C.access(0x0, true);        // Set 0: survives (still dirty).
  C.access(16 * 64, true);    // Set 16: disabled -> written back.
  C.access(0x40, false);      // Set 1: survives clean.
  std::vector<uint64_t> Writebacks;
  ReconfigResult R = C.reconfigure(2, &Writebacks);
  EXPECT_EQ(R.Writebacks, 1u);
  ASSERT_EQ(Writebacks.size(), 1u);
  EXPECT_EQ(Writebacks[0], 16u * 64u);
  EXPECT_TRUE(C.access(0x0, false).Hit);
  EXPECT_TRUE(C.access(0x40, false).Hit);
  EXPECT_FALSE(C.access(16 * 64, false).Hit);
}

TEST(ReconfigurableCache, UpsizeStartsCold) {
  ReconfigurableCache C(l1dLadder(), 3, "L1D", /*RetainOnDownsize=*/true);
  C.access(0x0, true);
  ReconfigResult R = C.reconfigure(0, nullptr);
  EXPECT_EQ(R.Writebacks, 1u); // Dirty state cannot be carried upward.
  EXPECT_FALSE(C.access(0x0, false).Hit);
}

TEST(ReconfigurableCache, RetainedDirtyLineWritesBackLater) {
  ReconfigurableCache C(l1dLadder(), 0, "L1D", /*RetainOnDownsize=*/true);
  C.access(0x0, true); // Set 0, dirty.
  C.reconfigure(3, nullptr); // 1 KB: retained, still dirty.
  // Evict it from the 1 KB configuration (8 sets, 2 ways).
  uint64_t SetStride = 8 * 64;
  C.access(1 * SetStride, false);
  CacheAccessResult R = C.access(2 * SetStride, false);
  EXPECT_TRUE(R.EvictedDirty);
  EXPECT_EQ(R.EvictedAddr, 0u);
}

TEST(ReconfigurableCache, PerSettingStatsAreSeparate) {
  ReconfigurableCache C(l1dLadder(), 0, "L1D");
  C.access(0x0, false);
  C.reconfigure(3);
  C.access(0x0, false);
  C.access(0x0, false);
  EXPECT_EQ(C.statsOf(0).accesses(), 1u);
  EXPECT_EQ(C.statsOf(3).accesses(), 2u);
  CacheStats Total = C.totalStats();
  EXPECT_EQ(Total.accesses(), 3u);
}

// ---------------------------------------------------------------------- TLB

TEST(Tlb, MissThenHitWithinPage) {
  Tlb T(128, 4, 30, "DTLB");
  EXPECT_EQ(T.access(0x1000), 30u);
  EXPECT_EQ(T.access(0x1ff8), 0u); // Same 4 KB page.
  EXPECT_EQ(T.access(0x2000), 30u); // Next page.
  EXPECT_EQ(T.accesses(), 3u);
  EXPECT_EQ(T.misses(), 2u);
}

TEST(Tlb, CapacityEviction) {
  Tlb T(8, 2, 30, "tiny");
  // Touch many distinct pages mapping beyond capacity; early ones evict.
  for (uint64_t Pg = 0; Pg != 64; ++Pg)
    T.access(Pg * 4096);
  EXPECT_EQ(T.misses(), 64u);
  EXPECT_EQ(T.access(0), 30u); // Page 0 long evicted.
}

// --------------------------------------------------------- MemoryHierarchy

TEST(MemoryHierarchy, DataAccessLatencyTiers) {
  HierarchyConfig Config;
  MemoryHierarchy H(Config);
  // Cold: DTLB miss + L1D miss + L2 miss + memory.
  MemAccessInfo First = H.dataAccess(0x100000, false);
  EXPECT_FALSE(First.L1Hit);
  EXPECT_FALSE(First.L2Hit);
  EXPECT_GE(First.Latency, Config.MemoryLatency);
  EXPECT_EQ(H.memoryReads(), 1u);
  // Warm: L1 hit at hit latency.
  MemAccessInfo Second = H.dataAccess(0x100000, false);
  EXPECT_TRUE(Second.L1Hit);
  EXPECT_EQ(Second.Latency, Config.L1DSettings[0].HitLatency);
}

TEST(MemoryHierarchy, L2HitAfterL1Eviction) {
  HierarchyConfig Config;
  MemoryHierarchy H(Config);
  uint64_t A = 0x0;
  H.dataAccess(A, false);
  // Evict A from L1D (8 KB, 64 sets, 2-way) by touching two conflicting
  // blocks; A stays in the (much larger) L2.
  uint64_t SetStride = 64 * 64;
  H.dataAccess(A + SetStride, false);
  H.dataAccess(A + 2 * SetStride, false);
  MemAccessInfo R = H.dataAccess(A, false);
  EXPECT_FALSE(R.L1Hit);
  EXPECT_TRUE(R.L2Hit);
  EXPECT_EQ(H.memoryReads(), 3u); // No extra memory read for the L2 hit.
}

TEST(MemoryHierarchy, DirtyL1EvictionWritesIntoL2) {
  HierarchyConfig Config;
  MemoryHierarchy H(Config);
  uint64_t SetStride = 64 * 64;
  H.dataAccess(0, true); // Dirty in L1D.
  uint64_t L2WritesBefore = H.l2().totalStats().Writes;
  H.dataAccess(1 * SetStride, false);
  H.dataAccess(2 * SetStride, false); // Evicts the dirty line.
  EXPECT_GT(H.l2().totalStats().Writes, L2WritesBefore);
}

TEST(MemoryHierarchy, InstrFetchUsesL1I) {
  HierarchyConfig Config;
  MemoryHierarchy H(Config);
  uint32_t Cold = H.instrFetch(0x40000000);
  uint32_t Warm = H.instrFetch(0x40000000);
  EXPECT_GT(Cold, Warm);
  EXPECT_EQ(Warm, Config.L1I.HitLatency);
}

namespace {

HierarchyConfig flushAllConfig() {
  HierarchyConfig C;
  C.RetainOnDownsize = false;
  return C;
}

} // namespace

TEST(MemoryHierarchy, ReconfigureL1DCostScalesWithDirtyLines) {
  MemoryHierarchy H{flushAllConfig()};
  ReconfigCost CleanCost = H.reconfigureL1D(1);
  EXPECT_TRUE(CleanCost.Changed);
  EXPECT_EQ(CleanCost.Writebacks, 0u);

  // Dirty a number of lines, then resize again.
  for (uint64_t I = 0; I != 32; ++I)
    H.dataAccess(I * 64, true);
  ReconfigCost DirtyCost = H.reconfigureL1D(2);
  EXPECT_EQ(DirtyCost.Writebacks, 32u);
  EXPECT_GT(DirtyCost.Cycles, CleanCost.Cycles);
}

TEST(MemoryHierarchy, RetentionReducesReconfigureCost) {
  // Same dirty set, retention vs flush-all: the retaining hierarchy must
  // write back strictly fewer lines on a downsize.
  MemoryHierarchy Retain{HierarchyConfig()};
  MemoryHierarchy Flush{flushAllConfig()};
  for (uint64_t I = 0; I != 32; ++I) {
    Retain.dataAccess(I * 64, true);
    Flush.dataAccess(I * 64, true);
  }
  ReconfigCost RC = Retain.reconfigureL1D(1);
  ReconfigCost FC = Flush.reconfigureL1D(1);
  EXPECT_LT(RC.Writebacks, FC.Writebacks);
  EXPECT_LE(RC.Cycles, FC.Cycles);
}

TEST(MemoryHierarchy, ReconfigureL2SendsWritebacksToMemory) {
  MemoryHierarchy H{flushAllConfig()};
  // Stride 128 B so each dirty L1D line maps to its own (128 B) L2 line.
  for (uint64_t I = 0; I != 16; ++I)
    H.dataAccess(I * 128, true);
  // Push dirty lines down into L2 by flushing L1D via reconfiguration.
  H.reconfigureL1D(1);
  uint64_t MemWritesBefore = H.memoryWrites();
  ReconfigCost Cost = H.reconfigureL2(1);
  EXPECT_TRUE(Cost.Changed);
  EXPECT_EQ(Cost.Writebacks, 16u);
  EXPECT_EQ(H.memoryWrites(), MemWritesBefore + 16u);
}

TEST(MemoryHierarchy, ReconfigureToSameSettingFree) {
  MemoryHierarchy H{HierarchyConfig()};
  ReconfigCost Cost = H.reconfigureL1D(0);
  EXPECT_FALSE(Cost.Changed);
  EXPECT_EQ(Cost.Cycles, 0u);
}

TEST(MemoryHierarchy, DefaultConfigMatchesScaledTable2) {
  HierarchyConfig Config;
  ASSERT_EQ(Config.L1DSettings.size(), 4u);
  ASSERT_EQ(Config.L2Settings.size(), 4u);
  // 8x ladder from largest to smallest, factor 2 between settings.
  for (int I = 0; I != 3; ++I) {
    EXPECT_EQ(Config.L1DSettings[I].SizeBytes,
              2 * Config.L1DSettings[I + 1].SizeBytes);
    EXPECT_EQ(Config.L2Settings[I].SizeBytes,
              2 * Config.L2Settings[I + 1].SizeBytes);
  }
  EXPECT_EQ(Config.L2Settings[0].SizeBytes /
                Config.L1DSettings[0].SizeBytes,
            16u); // L2:L1D capacity ratio preserved from Table 2.
}

// --------------------------------------------------- Reconfiguration stress

/// Property: under an arbitrary interleaving of accesses and
/// reconfigurations, the reconfigurable cache never loses a dirty write
/// silently — every dirty line is either still resident, or was reported
/// as a write-back — and its statistics stay consistent.
class ReconfigStressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReconfigStressTest, RandomInterleavingKeepsInvariants) {
  ReconfigurableCache C(l1dLadder(), 0, "L1D", /*RetainOnDownsize=*/true);
  uint64_t State = GetParam();
  auto Next = [&State] {
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    return State;
  };
  uint64_t TotalWritebacks = 0;
  uint64_t Accesses = 0;
  for (int I = 0; I != 20000; ++I) {
    uint64_t R = Next();
    if (R % 97 == 0) {
      ReconfigResult RR = C.reconfigure(static_cast<unsigned>(R >> 8) % 4);
      TotalWritebacks += RR.Writebacks;
      continue;
    }
    uint64_t Addr = (R >> 16) & 0x7fff0;
    CacheAccessResult AR = C.access(Addr, (R & 1) != 0);
    TotalWritebacks += AR.EvictedDirty;
    ++Accesses;
    // The just-touched block must be resident in the active configuration.
    ASSERT_TRUE(C.access(Addr, false).Hit);
    ++Accesses;
  }
  CacheStats S = C.totalStats();
  EXPECT_EQ(S.accesses(), Accesses);
  EXPECT_LE(S.misses(), S.accesses());
  EXPECT_EQ(C.reconfigurationWritebacks() <= S.Writes, true)
      << "cannot write back more lines than were ever written";
  EXPECT_LE(C.geometry().numLines(), l1dLadder()[0].numLines());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReconfigStressTest,
                         ::testing::Values(1u, 42u, 0xdeadbeefu, 7777u,
                                           123456789u));

/// Property: retention never *invents* hits — every line resident after a
/// downsize was resident before it.
TEST(ReconfigurableCache, RetentionNeverInventsLines) {
  ReconfigurableCache C(l1dLadder(), 0, "L1D", /*RetainOnDownsize=*/true);
  std::vector<uint64_t> Touched;
  for (uint64_t I = 0; I != 300; ++I) {
    uint64_t Addr = (I * 2654435761u) & 0xffc0;
    C.access(Addr, I % 3 == 0);
    Touched.push_back(Addr);
  }
  C.reconfigure(2, nullptr);
  // Probing addresses never touched must miss (no invented residency).
  for (uint64_t I = 0; I != 300; ++I) {
    uint64_t Addr = 0x100000 + ((I * 2654435761u) & 0xffc0);
    EXPECT_FALSE(C.probe(Addr)) << Addr;
  }
}
