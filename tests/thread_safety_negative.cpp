//===- tests/thread_safety_negative.cpp -----------------------------------==//
//
// Must-NOT-compile fixture for the thread-safety gate: reads a GUARDED_BY
// member without holding the mutex. scripts/check_thread_safety.sh
// compiles this TU under clang++ -Werror=thread-safety-analysis and FAILS
// the gate if it succeeds — a success would mean the analysis is silently
// off and the positive half of the gate proves nothing.
//
// Deliberately not registered as a CMake target: GCC (which compiles the
// annotations away) would happily build it.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadSafety.h"

namespace {

class Account {
public:
  void deposit(int Amount) {
    dynace::MutexLock Lock(M);
    Balance += Amount;
  }

  // BUG (intentional): unlocked read of a guarded member. Clang's
  // -Wthread-safety-analysis must reject this function.
  int peek() const { return Balance; }

private:
  mutable dynace::Mutex M;
  int Balance GUARDED_BY(M) = 0;
};

} // namespace

int threadSafetyNegativeProbe() {
  Account A;
  A.deposit(1);
  return A.peek();
}
