//===- tests/resultcache_concurrent_test.cpp - Parallel pipeline tests ----==//
//
// Exercises the hardened result cache under concurrency (atomic publish,
// per-key locking, torn-write recovery) and verifies the acceptance
// criterion of the parallel pipeline: a DYNACE_JOBS=4 grid produces
// byte-identical serialized results to the serial (1-job) path. Run these
// under ThreadSanitizer via -DDYNACE_SANITIZE=thread.
//
//===----------------------------------------------------------------------==//

#include "sim/ExperimentRunner.h"
#include "sim/ResultCache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include <sys/stat.h>
#include <unistd.h>

using namespace dynace;

namespace {

/// A unique fresh directory under the test temp root.
std::string freshDir(const std::string &Tag) {
  std::string Dir = ::testing::TempDir() + "dynace_" + Tag + "_" +
                    std::to_string(::getpid());
  ::mkdir(Dir.c_str(), 0755);
  return Dir;
}

/// Reads a whole file; empty string when missing.
std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream OS;
  OS << In.rdbuf();
  return OS.str();
}

/// Options small enough for sub-second simulations.
SimulationOptions quickOptions() {
  SimulationOptions Opts;
  Opts.MaxInstructions = 150000;
  return Opts;
}

/// Serializes \p R and returns the bytes saveResult would publish.
std::string serialized(const SimulationResult &R, const std::string &Dir,
                       const std::string &Tag) {
  std::string Path = Dir + "/" + Tag + ".txt";
  EXPECT_TRUE(saveResult(Path, R));
  return slurp(Path);
}

} // namespace

TEST(ParallelPipeline, FourJobGridMatchesSerialByteIdentical) {
  unsetenv("DYNACE_CACHE_DIR"); // Pure simulation, no disk reuse.
  std::vector<WorkloadProfile> Profiles = {specjvm98Profiles()[0],
                                           specjvm98Profiles()[1]};

  ExperimentRunner Serial(quickOptions());
  ExperimentRunner Parallel(quickOptions());
  std::vector<BenchmarkRun> A = Serial.runAll(Profiles, /*Jobs=*/1);
  std::vector<BenchmarkRun> B = Parallel.runAll(Profiles, /*Jobs=*/4);

  ASSERT_EQ(A.size(), B.size());
  std::string Dir = freshDir("grid");
  for (size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A[I].Name, B[I].Name); // Deterministic input order.
    const SimulationResult *SA[] = {&A[I].Baseline, &A[I].Bbv,
                                    &A[I].Hotspot};
    const SimulationResult *SB[] = {&B[I].Baseline, &B[I].Bbv,
                                    &B[I].Hotspot};
    for (int S = 0; S != 3; ++S) {
      SimulationOptions KeyOpts = quickOptions();
      KeyOpts.SchemeKind = SA[S]->SchemeKind;
      EXPECT_EQ(resultCacheKey(A[I].Name, KeyOpts),
                resultCacheKey(B[I].Name, KeyOpts));
      std::string Tag = A[I].Name + "_" + std::to_string(S);
      EXPECT_EQ(serialized(*SA[S], Dir, Tag + "_serial"),
                serialized(*SB[S], Dir, Tag + "_parallel"))
          << A[I].Name << " scheme " << S;
    }
  }
}

TEST(ParallelPipeline, TwoWorkersOnOneKeySimulateOnce) {
  std::string Dir = freshDir("dedup");
  ASSERT_EQ(setenv("DYNACE_CACHE_DIR", Dir.c_str(), 1), 0);

  ExperimentRunner Runner(quickOptions());
  const WorkloadProfile &P = specjvm98Profiles()[0];
  SimulationResult R1, R2;
  std::thread T1([&] { R1 = Runner.runScheme(P, Scheme::Baseline); });
  std::thread T2([&] { R2 = Runner.runScheme(P, Scheme::Baseline); });
  T1.join();
  T2.join();
  unsetenv("DYNACE_CACHE_DIR");

  EXPECT_EQ(R1.Instructions, R2.Instructions);
  EXPECT_EQ(R1.Cycles, R2.Cycles);
  // The per-key lock makes the loser wait and then load the winner's
  // entry: exactly one simulation, one cache hit.
  std::vector<RunStats> Stats = Runner.stats();
  ASSERT_EQ(Stats.size(), 2u);
  int Simulated = 0, Hits = 0;
  for (const RunStats &S : Stats)
    S.CacheHit ? ++Hits : ++Simulated;
  EXPECT_EQ(Simulated, 1);
  EXPECT_EQ(Hits, 1);
}

TEST(ParallelPipeline, TornCacheEntryIsDetectedAndResimulated) {
  std::string Dir = freshDir("torn");
  ASSERT_EQ(setenv("DYNACE_CACHE_DIR", Dir.c_str(), 1), 0);
  const WorkloadProfile &P = specjvm98Profiles()[0];

  ExperimentRunner First(quickOptions());
  SimulationResult Original = First.runScheme(P, Scheme::Hotspot);

  // Truncate the published entry to simulate a torn/partial write.
  SimulationOptions KeyOpts = quickOptions();
  KeyOpts.SchemeKind = Scheme::Hotspot;
  std::string Path = Dir + "/" + resultCacheKey(P.Name, KeyOpts) + ".txt";
  std::string Full = slurp(Path);
  ASSERT_FALSE(Full.empty());
  std::ofstream(Path, std::ios::binary | std::ios::trunc)
      << Full.substr(0, Full.size() / 2);

  SimulationResult Junk;
  EXPECT_FALSE(loadResult(Path, Junk)); // A miss, not garbage or a crash.

  // A fresh runner treats the torn entry as a miss, re-simulates, and
  // republishes a loadable entry with the same deterministic result.
  ExperimentRunner Second(quickOptions());
  SimulationResult Redone = Second.runScheme(P, Scheme::Hotspot);
  unsetenv("DYNACE_CACHE_DIR");
  ASSERT_EQ(Second.stats().size(), 1u);
  EXPECT_FALSE(Second.stats()[0].CacheHit);
  EXPECT_EQ(Redone.Instructions, Original.Instructions);
  EXPECT_EQ(Redone.Cycles, Original.Cycles);
  SimulationResult Reloaded;
  EXPECT_TRUE(loadResult(Path, Reloaded));
  EXPECT_EQ(Reloaded.Cycles, Original.Cycles);
}

TEST(ParallelPipeline, ConcurrentSaveAndLoadNeverTear) {
  unsetenv("DYNACE_CACHE_DIR");
  // One cheap but fully populated result (hotspot carries an AceReport).
  ExperimentRunner Runner(quickOptions());
  SimulationResult R = Runner.runScheme(specjvm98Profiles()[0],
                                        Scheme::Hotspot);

  std::string Path = freshDir("atomic") + "/entry.txt";
  std::atomic<bool> Stop{false};
  std::atomic<int> GoodLoads{0};
  std::thread Reader([&] {
    while (!Stop.load()) {
      SimulationResult L;
      if (loadResult(Path, L)) { // Atomic rename: all-or-nothing.
        EXPECT_EQ(L.Cycles, R.Cycles);
        EXPECT_EQ(L.Instructions, R.Instructions);
        ++GoodLoads;
      }
    }
  });
  std::vector<std::thread> Writers;
  for (int W = 0; W != 3; ++W)
    Writers.emplace_back([&] {
      for (int I = 0; I != 20; ++I)
        EXPECT_TRUE(saveResult(Path, R));
    });
  for (std::thread &T : Writers)
    T.join();
  Stop = true;
  Reader.join();
  EXPECT_GT(GoodLoads.load(), 0);
}

TEST(ParallelPipeline, LockResultKeyIsMutuallyExclusive) {
  std::unique_lock<std::mutex> Held = lockResultKey("some-key");
  std::atomic<bool> Acquired{false};
  std::thread Waiter([&] {
    std::unique_lock<std::mutex> Lock = lockResultKey("some-key");
    Acquired = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(Acquired.load()); // Blocked behind the held key.
  // A different key is independent.
  { std::unique_lock<std::mutex> Other = lockResultKey("other-key"); }
  Held.unlock();
  Waiter.join();
  EXPECT_TRUE(Acquired.load());
}

TEST(ParallelPipeline, SaveFailsCleanlyOnUnwritablePath) {
  ExperimentRunner Runner(quickOptions());
  SimulationResult R = Runner.runScheme(specjvm98Profiles()[0],
                                        Scheme::Baseline);
  EXPECT_FALSE(saveResult("/nonexistent-dir/deeper/entry.txt", R));
}
