//===- tests/fault_injection_test.cpp - Deterministic fault injection -----==//
//
// Exercises the fault-tolerant pipeline end to end: DYNACE_FAULT_SPEC
// parsing, the deterministic (N + seed) % rate firing rule, retry with
// backoff recovering bit-identically from injected faults at every site,
// graceful degradation (FAILED cells, completed grid) once retries are
// exhausted, the wall-clock watchdog, and trap surfacing through
// System::runChecked(). The injector is a process singleton, so every test
// resets it to the empty plan on teardown.
//
//===----------------------------------------------------------------------==//

#include "isa/MethodBuilder.h"
#include "sim/ExperimentRunner.h"
#include "sim/Reports.h"
#include "sim/ResultCache.h"
#include "support/FaultInjector.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

using namespace dynace;

namespace {

/// A unique fresh directory under the test temp root.
std::string freshDir(const std::string &Tag) {
  std::string Dir = ::testing::TempDir() + "dynace_" + Tag + "_" +
                    std::to_string(::getpid());
  ::mkdir(Dir.c_str(), 0755);
  return Dir;
}

/// Options small enough for sub-second simulations.
SimulationOptions quickOptions() {
  SimulationOptions Opts;
  Opts.MaxInstructions = 150000;
  return Opts;
}

/// Every test starts and ends with injection disabled and the pipeline env
/// knobs unset, so tests cannot leak a fault plan into each other.
class FaultInjection : public ::testing::Test {
protected:
  void SetUp() override { clean(); }
  void TearDown() override { clean(); }

  static void clean() {
    ASSERT_TRUE(FaultInjector::instance().configure("").ok());
    unsetenv("DYNACE_CACHE_DIR");
    unsetenv("DYNACE_MAX_RETRIES");
    unsetenv("DYNACE_RUN_TIMEOUT_MS");
    unsetenv("DYNACE_STALL_MS");
    unsetenv("DYNACE_FAULT_SPEC");
  }
};

} // namespace

// ------------------------------------------------------------ Spec parsing

TEST_F(FaultInjection, RejectsMalformedSpecs) {
  FaultInjector &FI = FaultInjector::instance();
  const char *Bad[] = {
      "bogus",                             // no colons
      "cache.read",                        // missing rate and seed
      "cache.read:1",                      // missing seed
      "cache.read:1:2:3",                  // too many fields
      "nope.site:1:0",                     // unknown site
      "cache.read:0:0",                    // zero rate
      "cache.read:x:0",                    // non-numeric rate
      "cache.read:1:x",                    // non-numeric seed
      "cache.read:1:0,cache.read:2:1",     // duplicate site
      "cache.read:1:0,,cache.write:1:0",   // empty entry
  };
  for (const char *Spec : Bad) {
    Status S = FI.configure(Spec);
    EXPECT_FALSE(S.ok()) << "accepted: " << Spec;
    EXPECT_EQ(S.code(), ErrorCode::InvalidInput) << Spec;
  }
}

TEST_F(FaultInjection, MalformedSpecKeepsThePreviousPlan) {
  FaultInjector &FI = FaultInjector::instance();
  ASSERT_TRUE(FI.configure("cache.read:1:0").ok());
  ASSERT_TRUE(FI.enabled());
  EXPECT_FALSE(FI.configure("garbage").ok());
  // The old plan is still live: the site still fires.
  EXPECT_TRUE(FI.enabled());
  EXPECT_TRUE(FI.shouldFail(FaultSite::CacheRead));
}

TEST_F(FaultInjection, AcceptsValidSpecsAndDisablesOnEmpty) {
  FaultInjector &FI = FaultInjector::instance();
  EXPECT_TRUE(FI.configure(nullptr).ok());
  EXPECT_FALSE(FI.enabled());
  EXPECT_TRUE(FI.configure("").ok());
  EXPECT_FALSE(FI.enabled());
  EXPECT_TRUE(
      FI.configure("cache.read:3:1,cache.write:2:0,cache.rename:5:4,"
                   "runner.worker:7:6")
          .ok());
  EXPECT_TRUE(FI.enabled());
  // Unconfigured never fires; empty spec disables again.
  EXPECT_TRUE(FI.configure("").ok());
  EXPECT_FALSE(FI.shouldFail(FaultSite::CacheRead));
}

TEST_F(FaultInjection, ConfigureFromEnvReadsTheSpec) {
  FaultInjector &FI = FaultInjector::instance();
  ASSERT_EQ(setenv("DYNACE_FAULT_SPEC", "cache.rename:5:0", 1), 0);
  EXPECT_TRUE(FI.configureFromEnv().ok());
  EXPECT_TRUE(FI.enabled());
  unsetenv("DYNACE_FAULT_SPEC");
  EXPECT_TRUE(FI.configureFromEnv().ok());
  EXPECT_FALSE(FI.enabled());
}

TEST_F(FaultInjection, SiteNamesRoundTrip) {
  EXPECT_STREQ(faultSiteName(FaultSite::CacheRead), "cache.read");
  EXPECT_STREQ(faultSiteName(FaultSite::CacheWrite), "cache.write");
  EXPECT_STREQ(faultSiteName(FaultSite::CacheRename), "cache.rename");
  EXPECT_STREQ(faultSiteName(FaultSite::RunnerWorker), "runner.worker");
}

TEST_F(FaultInjection, MakeErrorIsClassifiedAsInjected) {
  Status S = FaultInjector::makeError(FaultSite::RunnerWorker);
  ASSERT_FALSE(S.ok());
  EXPECT_EQ(S.code(), ErrorCode::Injected);
  EXPECT_NE(S.message().find("runner.worker"), std::string::npos);
}

// ------------------------------------------------------------- Firing rule

TEST_F(FaultInjection, FiringPatternIsAPureFunctionOfTheArmIndex) {
  FaultInjector &FI = FaultInjector::instance();
  ASSERT_TRUE(FI.configure("cache.write:3:2").ok());
  for (uint64_t N = 0; N != 9; ++N)
    EXPECT_EQ(FI.shouldFail(FaultSite::CacheWrite), (N + 2) % 3 == 0)
        << "arm " << N;
  EXPECT_EQ(FI.armCount(FaultSite::CacheWrite), 9u);
  EXPECT_EQ(FI.firedCount(FaultSite::CacheWrite), 3u);
  // A site with no rule never fires but still counts its armings.
  EXPECT_FALSE(FI.shouldFail(FaultSite::CacheRead));
  EXPECT_EQ(FI.armCount(FaultSite::CacheRead), 1u);
  EXPECT_EQ(FI.firedCount(FaultSite::CacheRead), 0u);
  // Reconfiguring resets the counters: the same plan replays identically.
  ASSERT_TRUE(FI.configure("cache.write:3:2").ok());
  EXPECT_EQ(FI.armCount(FaultSite::CacheWrite), 0u);
  for (uint64_t N = 0; N != 9; ++N)
    EXPECT_EQ(FI.shouldFail(FaultSite::CacheWrite), (N + 2) % 3 == 0);
}

TEST_F(FaultInjection, RateTwoNeverFiresTwiceInARow) {
  // The guarantee the bit-identical retry tests lean on: at rate >= 2 a
  // failed attempt's immediate retry always gets through.
  FaultInjector &FI = FaultInjector::instance();
  ASSERT_TRUE(FI.configure("runner.worker:2:0").ok());
  bool Prev = false;
  for (int N = 0; N != 16; ++N) {
    bool Fired = FI.shouldFail(FaultSite::RunnerWorker);
    EXPECT_FALSE(Prev && Fired) << "consecutive failures at arm " << N;
    Prev = Fired;
  }
  EXPECT_EQ(FI.firedCount(FaultSite::RunnerWorker), 8u);
}

// ------------------------------------- Retry recovery across all sites

TEST_F(FaultInjection, RetriedWorkerFaultsYieldBitIdenticalResults) {
  const WorkloadProfile &P = specjvm98Profiles()[0];
  ExperimentRunner Golden(quickOptions());
  std::vector<BenchmarkRun> G = Golden.runAll({P}, /*Jobs=*/1);
  ASSERT_EQ(G.size(), 1u);
  ASSERT_TRUE(G[0].complete());

  FaultInjector &FI = FaultInjector::instance();
  ASSERT_TRUE(FI.configure("runner.worker:2:0").ok());
  ExperimentRunner Faulty(quickOptions());
  // Jobs=1 keeps the arming order serial: each cell's first attempt fires
  // (even arm) and its retry succeeds (odd arm).
  std::vector<BenchmarkRun> F = Faulty.runAll({P}, /*Jobs=*/1);
  EXPECT_EQ(FI.firedCount(FaultSite::RunnerWorker), 3u); // One per cell.
  ASSERT_TRUE(FI.configure("").ok());

  ASSERT_EQ(F.size(), 1u);
  EXPECT_TRUE(F[0].complete());
  const CellOutcome *Outcomes[] = {&F[0].BaselineOutcome, &F[0].BbvOutcome,
                                   &F[0].HotspotOutcome};
  for (const CellOutcome *O : Outcomes) {
    EXPECT_FALSE(O->Failed);
    EXPECT_EQ(O->Attempts, 2u) << "first attempt injected, retry clean";
    EXPECT_EQ(O->label(), "ok");
  }
  // The recovered grid is bit-identical to the undisturbed one.
  EXPECT_EQ(serializeResult(F[0].Baseline), serializeResult(G[0].Baseline));
  EXPECT_EQ(serializeResult(F[0].Bbv), serializeResult(G[0].Bbv));
  EXPECT_EQ(serializeResult(F[0].Hotspot), serializeResult(G[0].Hotspot));
}

TEST_F(FaultInjection, CacheSiteFaultsDegradeToMissAndStayBitIdentical) {
  const WorkloadProfile &P = specjvm98Profiles()[0];
  ExperimentRunner Golden(quickOptions());
  std::string GoldenBytes =
      serializeResult(Golden.runScheme(P, Scheme::Baseline));

  FaultInjector &FI = FaultInjector::instance();
  const char *Sites[] = {"cache.read", "cache.write", "cache.rename"};
  const FaultSite SiteIds[] = {FaultSite::CacheRead, FaultSite::CacheWrite,
                               FaultSite::CacheRename};
  for (int I = 0; I != 3; ++I) {
    std::string Dir = freshDir(std::string("site_") + std::to_string(I));
    ASSERT_EQ(setenv("DYNACE_CACHE_DIR", Dir.c_str(), 1), 0);
    ASSERT_TRUE(
        FI.configure((std::string(Sites[I]) + ":2:0").c_str()).ok());

    ExperimentRunner Runner(quickOptions());
    SimulationResult R = Runner.runScheme(P, Scheme::Baseline);
    // The site fired at least once, yet the pipeline degraded gracefully
    // (read fault -> miss, write/rename fault -> unpublished) and the
    // result is still bit-identical.
    EXPECT_GE(FI.firedCount(SiteIds[I]), 1u) << Sites[I];
    EXPECT_EQ(serializeResult(R), GoldenBytes) << Sites[I];
    ASSERT_EQ(Runner.stats().size(), 1u);
    EXPECT_FALSE(Runner.stats()[0].Failed) << Sites[I];
    EXPECT_FALSE(Runner.stats()[0].CacheHit) << Sites[I];

    ASSERT_TRUE(FI.configure("").ok());
    unsetenv("DYNACE_CACHE_DIR");
  }
}

// -------------------------------------------------- Graceful degradation

TEST_F(FaultInjection, ExhaustedRetriesFailTheCellButCompleteTheGrid) {
  std::vector<WorkloadProfile> Profiles = {specjvm98Profiles()[0],
                                           specjvm98Profiles()[1]};
  FaultInjector &FI = FaultInjector::instance();
  ASSERT_TRUE(FI.configure("runner.worker:1:0").ok()); // Every attempt fails.

  ExperimentRunner Runner(quickOptions());
  std::vector<BenchmarkRun> Runs = Runner.runAll(Profiles, /*Jobs=*/2);
  ASSERT_TRUE(FI.configure("").ok());

  // The grid completed — no abort, every cell present, in input order.
  ASSERT_EQ(Runs.size(), 2u);
  for (size_t I = 0; I != Runs.size(); ++I) {
    EXPECT_EQ(Runs[I].Name, Profiles[I].Name);
    EXPECT_FALSE(Runs[I].complete());
    EXPECT_EQ(Runs[I].failureLabel(), "FAILED(injected)");
    const CellOutcome *Outcomes[] = {&Runs[I].BaselineOutcome,
                                     &Runs[I].BbvOutcome,
                                     &Runs[I].HotspotOutcome};
    const SimulationResult *Results[] = {&Runs[I].Baseline, &Runs[I].Bbv,
                                         &Runs[I].Hotspot};
    for (int S = 0; S != 3; ++S) {
      EXPECT_TRUE(Outcomes[S]->Failed);
      EXPECT_EQ(Outcomes[S]->Code, ErrorCode::Injected);
      EXPECT_EQ(Outcomes[S]->Attempts, 3u); // 1 + DYNACE_MAX_RETRIES default.
      EXPECT_EQ(Results[S]->Instructions, 0u); // Empty result, scheme set.
      EXPECT_EQ(Results[S]->SchemeKind,
                static_cast<Scheme>(S)); // Baseline, Bbv, Hotspot order.
    }
  }

  // Accounting and reports degrade instead of lying: stats carry the
  // failure, printRunStats renders FAILED(injected) cells and a failure
  // total, and the paper tables mark the benchmark rather than crash.
  std::vector<RunStats> Stats = Runner.stats();
  ASSERT_EQ(Stats.size(), 6u);
  for (const RunStats &S : Stats) {
    EXPECT_TRUE(S.Failed);
    EXPECT_EQ(S.Code, ErrorCode::Injected);
    EXPECT_EQ(S.Attempts, 3u);
  }
  std::ostringstream OS;
  printRunStats(OS, Stats);
  EXPECT_NE(OS.str().find("FAILED(injected)"), std::string::npos);
  EXPECT_NE(OS.str().find("6 failed"), std::string::npos);
  std::ostringstream Tables;
  printTable5(Tables, Runs);
  printFigure3(Tables, Runs);
  printFigure4(Tables, Runs);
  EXPECT_NE(Tables.str().find("FAILED(injected)"), std::string::npos);
}

TEST_F(FaultInjection, MultiClauseSpecFiresEverySiteIndependently) {
  // The positive half of the multi-clause DYNACE_FAULT_SPEC contract: with
  // several sites armed SIMULTANEOUSLY, each follows its own
  // (N + seed) % rate counter, every site fires, and the pipeline still
  // degrades to bit-identical results.
  const WorkloadProfile &P = specjvm98Profiles()[0];
  ExperimentRunner Golden(quickOptions());
  std::string GoldenBytes =
      serializeResult(Golden.runScheme(P, Scheme::Baseline));

  std::string Dir = freshDir("multisite");
  ASSERT_EQ(setenv("DYNACE_CACHE_DIR", Dir.c_str(), 1), 0);
  FaultInjector &FI = FaultInjector::instance();
  ASSERT_TRUE(
      FI.configure("cache.read:2:0,cache.write:2:0,runner.worker:2:1").ok());

  // Run 1: the read probe faults (-> miss), the first attempt survives
  // (seed 1), the publish faults (-> unpublished). Run 2: the read probe
  // passes but finds nothing, the first attempt faults and the retry
  // recovers, the publish succeeds.
  ExperimentRunner Runner(quickOptions());
  SimulationResult R1 = Runner.runScheme(P, Scheme::Baseline);
  SimulationResult R2 = Runner.runScheme(P, Scheme::Baseline);
  EXPECT_GE(FI.firedCount(FaultSite::CacheRead), 1u);
  EXPECT_GE(FI.firedCount(FaultSite::CacheWrite), 1u);
  EXPECT_GE(FI.firedCount(FaultSite::RunnerWorker), 1u);
  EXPECT_EQ(serializeResult(R1), GoldenBytes);
  EXPECT_EQ(serializeResult(R2), GoldenBytes);
}

TEST_F(FaultInjection, PerAttemptTimeoutBudget) {
  // DYNACE_RUN_TIMEOUT_MS is a PER-ATTEMPT budget: an injected stall burns
  // attempt 1's own budget before it ever simulates (Timeout), and attempt
  // 2 starts with a fresh deadline — earlier attempts, their backoff, and
  // their stalls must never shrink a later attempt's budget. If the
  // deadline were measured from the cell's start instead, attempt 2 would
  // inherit an already-expired budget and the cell could never recover.
  const WorkloadProfile &P = specjvm98Profiles()[0];
  std::string GoldenBytes =
      serializeResult(runExperimentCell(P, Scheme::Baseline, quickOptions())
                          .first);

  ASSERT_EQ(setenv("DYNACE_STALL_MS", "2000", 1), 0);
  ASSERT_EQ(setenv("DYNACE_RUN_TIMEOUT_MS", "1500", 1), 0);
  FaultInjector &FI = FaultInjector::instance();
  ASSERT_TRUE(FI.configure("worker.stall:2:0").ok());

  auto [R, Outcome] = runExperimentCell(P, Scheme::Baseline, quickOptions());
  EXPECT_EQ(FI.firedCount(FaultSite::WorkerStall), 1u);
  ASSERT_TRUE(FI.configure("").ok());
  unsetenv("DYNACE_STALL_MS");
  unsetenv("DYNACE_RUN_TIMEOUT_MS");
  EXPECT_FALSE(Outcome.Failed) << Outcome.Reason;
  EXPECT_EQ(Outcome.Attempts, 2u)
      << "attempt 1 times out pre-simulation, attempt 2 recovers";
  EXPECT_EQ(serializeResult(R), GoldenBytes);
}

TEST_F(FaultInjection, MaxRetriesEnvBoundsTheAttempts) {
  ASSERT_EQ(setenv("DYNACE_MAX_RETRIES", "0", 1), 0);
  FaultInjector &FI = FaultInjector::instance();
  ASSERT_TRUE(FI.configure("runner.worker:1:0").ok());

  ExperimentRunner Runner(quickOptions());
  std::pair<SimulationResult, CellOutcome> Cell =
      Runner.runSchemeChecked(specjvm98Profiles()[0], Scheme::Baseline);
  ASSERT_TRUE(FI.configure("").ok());
  unsetenv("DYNACE_MAX_RETRIES");

  EXPECT_TRUE(Cell.second.Failed);
  EXPECT_EQ(Cell.second.Attempts, 1u); // No retries allowed.
  EXPECT_EQ(Cell.second.Code, ErrorCode::Injected);
}

// ------------------------------------------------- Watchdog and VM traps

namespace {

/// A finalized program that never halts (pure compute loop).
Program infiniteLoopProgram() {
  Program P;
  MethodBuilder B("spin");
  B.iconst(1, 0);
  MethodBuilder::Label Top = B.newLabel();
  B.bind(Top);
  B.addi(1, 1, 1);
  B.jmp(Top);
  P.setEntry(P.addMethod(B.take()));
  Status S = P.finalize();
  EXPECT_TRUE(S) << S.toString();
  return P;
}

/// A finalized program that divides by zero after a few instructions.
Program divByZeroProgram() {
  Program P;
  MethodBuilder B("boom");
  B.iconst(1, 7);
  B.iconst(2, 0);
  B.div(3, 1, 2);
  B.halt();
  P.setEntry(P.addMethod(B.take()));
  Status S = P.finalize();
  EXPECT_TRUE(S) << S.toString();
  return P;
}

} // namespace

TEST_F(FaultInjection, WatchdogStopsRunawayRunsWithTimeout) {
  Program P = infiniteLoopProgram();
  SimulationOptions Opts;
  Opts.TimeoutMs = 30; // MaxInstructions = 0: only the watchdog can stop it.
  System Sys(P, Opts);
  Expected<SimulationResult> E = Sys.runChecked();
  ASSERT_FALSE(E.ok());
  EXPECT_EQ(E.status().code(), ErrorCode::Timeout);
  EXPECT_NE(E.status().message().find("exceeded"), std::string::npos);
}

TEST_F(FaultInjection, VmTrapSurfacesAsStructuredError) {
  Program P = divByZeroProgram();
  System Sys(P, SimulationOptions());
  Expected<SimulationResult> E = Sys.runChecked();
  ASSERT_FALSE(E.ok());
  EXPECT_EQ(E.status().code(), ErrorCode::Trap);
  EXPECT_NE(E.status().message().find("divide-by-zero"), std::string::npos);
}
