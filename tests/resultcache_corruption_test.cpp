//===- tests/resultcache_corruption_test.cpp - Cache corruption fuzzing ---==//
//
// Fuzz-style robustness tests for the on-disk result cache: a published
// entry is truncated at every byte length and bit-flipped at every byte
// offset, and every corrupted variant must load as a clean structured miss
// — never as garbage values, never as a crash. Corrupt entries are
// quarantined (renamed to <entry>.corrupt) so they are inspected once and
// never re-parsed; entries of another format version are plain misses left
// in place. Run under -DDYNACE_SANITIZE=address,undefined for full effect.
//
//===----------------------------------------------------------------------==//

#include "sim/ExperimentRunner.h"
#include "sim/ResultCache.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/stat.h>
#include <unistd.h>

using namespace dynace;

namespace {

/// A unique fresh directory under the test temp root.
std::string freshDir(const std::string &Tag) {
  std::string Dir = ::testing::TempDir() + "dynace_" + Tag + "_" +
                    std::to_string(::getpid());
  ::mkdir(Dir.c_str(), 0755);
  return Dir;
}

bool fileExists(const std::string &Path) {
  return ::access(Path.c_str(), F_OK) == 0;
}

void writeBytes(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out << Bytes;
}

/// Options small enough for sub-second simulations.
SimulationOptions quickOptions() {
  SimulationOptions Opts;
  Opts.MaxInstructions = 150000;
  return Opts;
}

/// One fully populated result (hotspot carries an AceReport, so the
/// serialization exercises the variable-length cu records too), shared by
/// all fuzz cases in this binary.
const SimulationResult &referenceResult() {
  static const SimulationResult R = [] {
    unsetenv("DYNACE_CACHE_DIR");
    ExperimentRunner Runner(quickOptions());
    return Runner.runScheme(specjvm98Profiles()[0], Scheme::Hotspot);
  }();
  return R;
}

/// Loads the corrupted bytes at a scratch path and checks the contract:
/// the load either fails with a structured error (InvalidInput means the
/// file was quarantined; IoError means it was left in place) or succeeds
/// as a faithful parse — re-serializing to exactly the bytes on disk (a
/// corrupted free-text field, such as a cu name, is indistinguishable
/// from a legitimate one and round-trips verbatim) or to the original
/// entry (corruption confined to trailing whitespace no field reads).
/// What can never happen is a load that invents data: shortened numbers,
/// reinterpreted fields, or a crash. \returns true when it failed.
bool checkCorruptLoad(const std::string &Dir, const std::string &Bytes,
                      const std::string &OriginalBytes,
                      const std::string &What) {
  std::string Path = Dir + "/entry.txt";
  writeBytes(Path, Bytes);
  Expected<SimulationResult> E = loadResultChecked(Path);
  if (E.ok()) {
    std::string Reserialized = serializeResult(E.get());
    EXPECT_TRUE(Reserialized == OriginalBytes || Reserialized == Bytes)
        << What;
    std::remove(Path.c_str());
    return false;
  }
  ErrorCode Code = E.status().code();
  if (Code == ErrorCode::InvalidInput) {
    // Quarantined: the entry moved aside, the key now misses cleanly.
    EXPECT_FALSE(fileExists(Path)) << What;
    EXPECT_TRUE(fileExists(Path + ".corrupt")) << What;
  } else {
    // A stale-version (or unreadable) entry is a plain miss, in place.
    EXPECT_EQ(Code, ErrorCode::IoError) << What;
    EXPECT_TRUE(fileExists(Path)) << What;
  }
  std::remove(Path.c_str());
  std::remove((Path + ".corrupt").c_str());
  return true;
}

} // namespace

TEST(ResultCacheCorruption, IntactEntryRoundTrips) {
  std::string Dir = freshDir("roundtrip");
  std::string Path = Dir + "/entry.txt";
  const SimulationResult &R = referenceResult();
  ASSERT_TRUE(saveResult(Path, R));
  Expected<SimulationResult> E = loadResultChecked(Path);
  ASSERT_TRUE(E.ok());
  EXPECT_EQ(serializeResult(E.get()), serializeResult(R));
}

TEST(ResultCacheCorruption, TruncationAtEveryLengthNeverYieldsGarbage) {
  std::string Dir = freshDir("trunc");
  std::string Full = serializeResult(referenceResult());
  ASSERT_GT(Full.size(), 100u);

  size_t Failed = 0;
  for (size_t Len = 0; Len != Full.size(); ++Len)
    if (checkCorruptLoad(Dir, Full.substr(0, Len), Full,
                         "truncated to " + std::to_string(Len) + " bytes"))
      ++Failed;
  // Essentially every truncation must miss; only lengths cutting inside
  // the trailing newline region can still parse (to the identical value,
  // as checkCorruptLoad verified).
  EXPECT_GE(Failed, Full.size() - 2);
}

TEST(ResultCacheCorruption, BitFlipAtEveryOffsetNeverYieldsGarbage) {
  std::string Dir = freshDir("flip");
  std::string Full = serializeResult(referenceResult());

  size_t Failed = 0;
  for (size_t I = 0; I != Full.size(); ++I) {
    std::string Flipped = Full;
    Flipped[I] = static_cast<char>(Flipped[I] ^ 0x80);
    // A high-bit flip makes the byte unparseable in any numeric or keyed
    // position; only flips inside free-text cu names can still load, and
    // checkCorruptLoad holds those to an exact byte round-trip.
    if (checkCorruptLoad(Dir, Flipped, Full,
                         "bit flip at offset " + std::to_string(I)))
      ++Failed;
  }
  // The overwhelming majority of offsets are structural and must miss.
  EXPECT_GE(Failed, Full.size() * 9 / 10);
}

TEST(ResultCacheCorruption, GarbageEntryIsQuarantinedOnce) {
  std::string Dir = freshDir("garbage");
  std::string Path = Dir + "/entry.txt";
  writeBytes(Path, "this is not a cache entry\n");

  uint64_t Before = resultCacheQuarantineCount();
  Expected<SimulationResult> E = loadResultChecked(Path);
  ASSERT_FALSE(E.ok());
  EXPECT_EQ(E.status().code(), ErrorCode::InvalidInput);
  EXPECT_NE(E.status().message().find("quarantined"), std::string::npos);
  EXPECT_EQ(resultCacheQuarantineCount(), Before + 1);

  // The bytes survive for inspection; the entry itself misses cleanly
  // from now on (no repeated quarantine, no repeated parse).
  EXPECT_FALSE(fileExists(Path));
  EXPECT_TRUE(fileExists(Path + ".corrupt"));
  Expected<SimulationResult> Again = loadResultChecked(Path);
  ASSERT_FALSE(Again.ok());
  EXPECT_EQ(Again.status().code(), ErrorCode::IoError);
  EXPECT_EQ(resultCacheQuarantineCount(), Before + 1);
}

TEST(ResultCacheCorruption, StaleVersionIsAMissNotCorruption) {
  std::string Dir = freshDir("stale");
  std::string Path = Dir + "/entry.txt";
  writeBytes(Path, "dynace-result-v999\nscheme 0\n");

  uint64_t Before = resultCacheQuarantineCount();
  Expected<SimulationResult> E = loadResultChecked(Path);
  ASSERT_FALSE(E.ok());
  EXPECT_EQ(E.status().code(), ErrorCode::IoError);
  EXPECT_NE(E.status().message().find("stale"), std::string::npos);
  // Left in place for whatever binary speaks that version; not counted.
  EXPECT_TRUE(fileExists(Path));
  EXPECT_FALSE(fileExists(Path + ".corrupt"));
  EXPECT_EQ(resultCacheQuarantineCount(), Before);
}

TEST(ResultCacheCorruption, TrailingJunkIsCorruption) {
  // A shortened final value with leftover digits must not load (the
  // trailing-junk check): "bbv_coverage 0.75" truncated mid-number by a
  // flip would otherwise parse as 0.7 and quietly drop the "5".
  std::string Dir = freshDir("tail");
  std::string Full = serializeResult(referenceResult());
  EXPECT_TRUE(checkCorruptLoad(Dir, Full + "surplus", Full, "trailing junk"));
}

TEST(ResultCacheCorruption, RunnerAttributesQuarantinesToTheProbingCell) {
  std::string Dir = freshDir("runnerq");
  ASSERT_EQ(setenv("DYNACE_CACHE_DIR", Dir.c_str(), 1), 0);
  const WorkloadProfile &P = specjvm98Profiles()[0];

  // Publish a valid entry, then corrupt it in place.
  ExperimentRunner First(quickOptions());
  SimulationResult Original = First.runScheme(P, Scheme::Baseline);
  SimulationOptions KeyOpts = quickOptions();
  KeyOpts.SchemeKind = Scheme::Baseline;
  std::string Path = Dir + "/" + resultCacheKey(P.Name, KeyOpts) + ".txt";
  ASSERT_TRUE(fileExists(Path));
  writeBytes(Path, "corrupted beyond recognition\n");

  // A fresh runner quarantines on probe, re-simulates deterministically,
  // and records the quarantine against the probing cell.
  ExperimentRunner Second(quickOptions());
  SimulationResult Redone = Second.runScheme(P, Scheme::Baseline);
  unsetenv("DYNACE_CACHE_DIR");

  EXPECT_EQ(serializeResult(Redone), serializeResult(Original));
  EXPECT_TRUE(fileExists(Path + ".corrupt"));
  ASSERT_EQ(Second.stats().size(), 1u);
  EXPECT_FALSE(Second.stats()[0].CacheHit);
  EXPECT_FALSE(Second.stats()[0].Failed);
  EXPECT_EQ(Second.stats()[0].Quarantined, 1u);
  // The republished entry is loadable again.
  SimulationResult Reloaded;
  EXPECT_TRUE(loadResult(Path, Reloaded));
  EXPECT_EQ(serializeResult(Reloaded), serializeResult(Original));
}
