//===- tests/serve_test.cpp - Distributed experiment service chaos --------==//
//
// End-to-end coverage of the serve coordinator (serve/Coordinator.h): a
// clean multi-worker grid is bit-identical to a serial in-process run,
// and stays bit-identical under every injected failure — worker crashes
// mid-grid (with respawn and, once the circuit breaker opens, inline
// fallback), transport faults, stalled workers whose leases expire and
// re-dispatch, and a full journal replay. Determinism is the load-bearing
// invariant: the chaos tests compare serialized result bytes, not just
// outcomes.
//
// Worker tests fork() from a multithreaded parent, which ThreadSanitizer
// does not support (its runtime deadlocks in the child); those tests skip
// under TSan and the sanitize gate covers them via scripts/check_serve.sh
// with ASan/UBSan instead.
//
//===----------------------------------------------------------------------==//

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "serve/Coordinator.h"
#include "sim/Reports.h"
#include "sim/ResultCache.h"
#include "support/FaultInjector.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

using namespace dynace;
using namespace dynace::serve;

namespace {

bool tsanActive() {
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
  return true;
#endif
#endif
  return false;
}

/// Small enough for sub-second cells.
SimulationOptions quickOptions() {
  SimulationOptions Opts;
  Opts.MaxInstructions = 50000;
  return Opts;
}

/// Serial ground truth: the same cells through the same execution core,
/// no coordinator involved.
std::vector<std::string> serialCellBytes(const std::vector<CellSpec> &Cells,
                                         const SimulationOptions &Opts) {
  std::vector<std::string> Bytes;
  for (const CellSpec &Spec : Cells) {
    const WorkloadProfile *P = findProfile(Spec.Benchmark);
    EXPECT_NE(P, nullptr) << Spec.Benchmark;
    Bytes.push_back(
        serializeResult(runExperimentCell(*P, Spec.SchemeKind, Opts).first));
  }
  return Bytes;
}

void expectBitIdentical(const GridResult &Grid,
                        const std::vector<std::string> &Serial) {
  ASSERT_EQ(Grid.Cells.size(), Serial.size());
  for (size_t I = 0; I != Serial.size(); ++I)
    EXPECT_EQ(serializeResult(Grid.Cells[I].Result), Serial[I])
        << "cell " << I;
}

/// Enables tracing to a temp file for one test body and restores the
/// disabled collector (and removes the file) even on early ASSERT exits.
struct ServeTraceFixture {
  explicit ServeTraceFixture(const char *Tag)
      : Path(::testing::TempDir() + "dynace_serve_" + Tag + "_" +
             std::to_string(::getpid()) + ".json") {
    obs::TraceCollector::instance().configure(Path);
  }
  ~ServeTraceFixture() {
    obs::TraceCollector::instance().configure("");
    std::remove(Path.c_str());
  }
  std::string slurp() const {
    std::ifstream In(Path, std::ios::binary);
    std::stringstream Ss;
    Ss << In.rdbuf();
    return Ss.str();
  }
  std::string Path;
};

/// Every test starts and ends with injection disabled and the serve env
/// knobs unset (the injector is a process singleton; forked workers
/// inherit both).
class Serve : public ::testing::Test {
protected:
  void SetUp() override { clean(); }
  void TearDown() override { clean(); }

  static void clean() {
    ASSERT_TRUE(FaultInjector::instance().configure("").ok());
    unsetenv("DYNACE_CACHE_DIR");
    unsetenv("DYNACE_RUN_TIMEOUT_MS");
    unsetenv("DYNACE_STALL_MS");
    unsetenv("DYNACE_MAX_RETRIES");
  }
};

} // namespace

// -------------------------------------------------------------- Grid shape

TEST_F(Serve, GridForBenchmarksIsProfileMajor) {
  std::vector<CellSpec> Cells = gridForBenchmarks({"compress", "db"});
  ASSERT_EQ(Cells.size(), 6u);
  EXPECT_EQ(Cells[0].Benchmark, "compress");
  EXPECT_EQ(Cells[0].SchemeKind, Scheme::Baseline);
  EXPECT_EQ(Cells[2].SchemeKind, Scheme::Hotspot);
  EXPECT_EQ(Cells[3].Benchmark, "db");
}

TEST_F(Serve, DuplicateCellsAreRejectedUpFront) {
  std::vector<CellSpec> Cells = gridForBenchmarks({"compress", "compress"});
  Expected<GridResult> Grid =
      runGrid(ServeConfig{}, quickOptions(), Cells);
  ASSERT_FALSE(Grid.ok());
  EXPECT_EQ(Grid.status().code(), ErrorCode::InvalidInput);
}

TEST_F(Serve, ConfigFromEnvRejectsMalformedValues) {
  ASSERT_EQ(setenv("DYNACE_SERVE_WORKERS", "not-a-number", 1), 0);
  Expected<ServeConfig> C = ServeConfig::fromEnv();
  unsetenv("DYNACE_SERVE_WORKERS");
  ASSERT_FALSE(C.ok());
  EXPECT_EQ(C.status().code(), ErrorCode::InvalidInput);
  EXPECT_NE(C.status().message().find("DYNACE_SERVE_WORKERS"),
            std::string::npos);
}

// ----------------------------------------------------------- Inline ladder

TEST_F(Serve, WorkersZeroRunsTheGridInline) {
  std::vector<CellSpec> Cells = gridForBenchmarks({"compress"});
  SimulationOptions Opts = quickOptions();
  ServeConfig Config;
  Config.Workers = 0;

  std::vector<size_t> Streamed;
  Expected<GridResult> Grid =
      runGrid(Config, Opts, Cells,
              [&](size_t I, const GridCell &) { Streamed.push_back(I); });
  ASSERT_TRUE(Grid.ok()) << Grid.status().toString();
  EXPECT_EQ(Grid.get().Stats.Cells, 3u);
  EXPECT_EQ(Grid.get().Stats.InlineCells, 3u);
  EXPECT_EQ(Grid.get().Stats.WorkerDispatches, 0u);
  EXPECT_EQ(Grid.get().Stats.Respawns, 0u);
  // The sink observed every cell, strictly in grid order.
  EXPECT_EQ(Streamed, (std::vector<size_t>{0, 1, 2}));
  expectBitIdentical(Grid.get(), serialCellBytes(Cells, Opts));
}

TEST_F(Serve, UnknownBenchmarkFailsItsCellButCompletesTheGrid) {
  std::vector<CellSpec> Cells = gridForBenchmarks({"compress"});
  Cells.push_back({"no-such-benchmark", Scheme::Baseline});
  ServeConfig Config;
  Config.Workers = 0;
  Expected<GridResult> Grid = runGrid(Config, quickOptions(), Cells);
  ASSERT_TRUE(Grid.ok()) << Grid.status().toString();
  ASSERT_EQ(Grid.get().Cells.size(), 4u);
  EXPECT_EQ(Grid.get().Stats.FailedCells, 1u);
  EXPECT_TRUE(Grid.get().Cells[3].Outcome.Failed);
  EXPECT_EQ(Grid.get().Cells[3].Outcome.Code, ErrorCode::InvalidInput);
  EXPECT_FALSE(Grid.get().Cells[0].Outcome.Failed);
}

// ------------------------------------------------------------ Worker fleet

TEST_F(Serve, CleanWorkerGridMatchesTheSerialRunBitForBit) {
  if (tsanActive())
    GTEST_SKIP() << "fork-based; covered by check_serve.sh under ASan";
  std::vector<CellSpec> Cells = gridForBenchmarks({"compress", "db"});
  SimulationOptions Opts = quickOptions();
  ServeConfig Config;
  Config.Workers = 3;
  Config.HeartbeatMs = 50;

  Expected<GridResult> Grid = runGrid(Config, Opts, Cells);
  ASSERT_TRUE(Grid.ok()) << Grid.status().toString();
  const GridStats &St = Grid.get().Stats;
  EXPECT_EQ(St.Cells, 6u);
  EXPECT_EQ(St.WorkerCrashes, 0u);
  EXPECT_EQ(St.InlineCells, 0u);
  EXPECT_GE(St.WorkerDispatches, 6u);
  expectBitIdentical(Grid.get(), serialCellBytes(Cells, Opts));
}

TEST_F(Serve, ChaosCrashAndRecvFaultsStayBitIdentical) {
  if (tsanActive())
    GTEST_SKIP() << "fork-based; covered by check_serve.sh under ASan";
  // Two simultaneous fault clauses: every worker's second CellAssign
  // crashes it (worker.crash seed 1 rate 2) and every 13th receive — in
  // the coordinator's handler threads and in workers alike — is dropped.
  // The grid must still complete with results bit-identical to serial.
  std::vector<CellSpec> Cells = gridForBenchmarks({"compress", "db"});
  SimulationOptions Opts = quickOptions();
  ASSERT_TRUE(FaultInjector::instance()
                  .configure("worker.crash:2:1,rpc.recv:13:1")
                  .ok());
  ServeConfig Config;
  Config.Workers = 3;
  Config.HeartbeatMs = 50;
  Config.MaxRespawns = 16;

  Expected<GridResult> Grid = runGrid(Config, Opts, Cells);
  ASSERT_TRUE(FaultInjector::instance().configure("").ok());
  ASSERT_TRUE(Grid.ok()) << Grid.status().toString();
  const GridStats &St = Grid.get().Stats;
  EXPECT_EQ(St.Cells, 6u);
  EXPECT_EQ(St.FailedCells, 0u);
  EXPECT_GE(St.WorkerCrashes, 1u) << "the chaos spec never fired";
  EXPECT_GE(St.Respawns, 1u);
  expectBitIdentical(Grid.get(), serialCellBytes(Cells, Opts));
}

TEST_F(Serve, StalledWorkerLeaseExpiresAndRedispatches) {
  if (tsanActive())
    GTEST_SKIP() << "fork-based; covered by check_serve.sh under ASan";
  // Each worker's second cell stalls 1500 ms against a 250 ms lease: the
  // lease expires, the cell re-dispatches, the first completion wins and
  // the straggler's late duplicate is dropped — results still serial.
  std::vector<CellSpec> Cells = gridForBenchmarks({"compress", "db"});
  SimulationOptions Opts = quickOptions();
  ASSERT_EQ(setenv("DYNACE_STALL_MS", "1500", 1), 0);
  ASSERT_TRUE(FaultInjector::instance().configure("worker.stall:5:4").ok());
  ServeConfig Config;
  Config.Workers = 2;
  Config.HeartbeatMs = 50;
  Config.LeaseMs = 250;

  Expected<GridResult> Grid = runGrid(Config, Opts, Cells);
  ASSERT_TRUE(FaultInjector::instance().configure("").ok());
  unsetenv("DYNACE_STALL_MS");
  ASSERT_TRUE(Grid.ok()) << Grid.status().toString();
  const GridStats &St = Grid.get().Stats;
  EXPECT_EQ(St.Cells, 6u);
  EXPECT_EQ(St.FailedCells, 0u);
  EXPECT_GE(St.Redispatches, 1u) << "no lease ever expired";
  expectBitIdentical(Grid.get(), serialCellBytes(Cells, Opts));
}

TEST_F(Serve, CrashLoopOpensTheBreakerAndFallsBackInline) {
  if (tsanActive())
    GTEST_SKIP() << "fork-based; covered by check_serve.sh under ASan";
  // Every CellAssign crashes its worker (rate 1): the fleet crash-loops,
  // the respawn budget burns out, and the whole grid completes inline.
  std::vector<CellSpec> Cells = gridForBenchmarks({"compress"});
  SimulationOptions Opts = quickOptions();
  ASSERT_TRUE(FaultInjector::instance().configure("worker.crash:1:0").ok());
  ServeConfig Config;
  Config.Workers = 2;
  Config.HeartbeatMs = 50;
  Config.MaxRespawns = 2;

  Expected<GridResult> Grid = runGrid(Config, Opts, Cells);
  ASSERT_TRUE(FaultInjector::instance().configure("").ok());
  ASSERT_TRUE(Grid.ok()) << Grid.status().toString();
  const GridStats &St = Grid.get().Stats;
  EXPECT_EQ(St.Cells, 3u);
  EXPECT_EQ(St.FailedCells, 0u);
  EXPECT_GE(St.WorkerCrashes, 2u);
  EXPECT_EQ(St.Respawns, 2u) << "breaker must cap respawns exactly";
  EXPECT_GE(St.InlineCells, 1u) << "no inline fallback happened";
  expectBitIdentical(Grid.get(), serialCellBytes(Cells, Opts));
}

// ------------------------------------------------------------ Journal path

TEST_F(Serve, FullJournalReplaySkipsAllExecution) {
  std::string Journal = ::testing::TempDir() + "dynace_serve_replay_" +
                        std::to_string(::getpid()) + ".bin";
  std::remove(Journal.c_str());
  std::vector<CellSpec> Cells = gridForBenchmarks({"compress"});
  SimulationOptions Opts = quickOptions();
  ServeConfig Config;
  Config.Workers = 0;
  Config.JournalPath = Journal;

  Expected<GridResult> First = runGrid(Config, Opts, Cells);
  ASSERT_TRUE(First.ok()) << First.status().toString();
  EXPECT_EQ(First.get().Stats.InlineCells, 3u);

  // Second run: every cell adopted from the journal, nothing executes.
  Expected<GridResult> Second = runGrid(Config, Opts, Cells);
  ASSERT_TRUE(Second.ok()) << Second.status().toString();
  EXPECT_EQ(Second.get().Stats.ReplayedCells, 3u);
  EXPECT_EQ(Second.get().Stats.InlineCells, 0u);
  EXPECT_EQ(Second.get().Stats.WorkerDispatches, 0u);
  for (size_t I = 0; I != 3; ++I)
    EXPECT_EQ(serializeResult(Second.get().Cells[I].Result),
              serializeResult(First.get().Cells[I].Result))
        << "cell " << I;
  std::remove(Journal.c_str());
}

// -------------------------------------------------- Telemetry and stats

TEST_F(Serve, GridFoldsServeCountersIntoTheProcessRegistry) {
  // The coordinator's one-shot flush: exactly one serve.grids increment
  // per grid, cell accounting mirrored into serve.* counters, and the
  // daemon's human "grid done" line is a rendering of that same delta —
  // the two cannot drift apart.
  std::vector<CellSpec> Cells = gridForBenchmarks({"compress"});
  ServeConfig Config;
  Config.Workers = 0;

  MetricsSnapshot Before = MetricsRegistry::process().snapshot();
  Expected<GridResult> Grid = runGrid(Config, quickOptions(), Cells);
  ASSERT_TRUE(Grid.ok()) << Grid.status().toString();
  MetricsSnapshot Delta =
      MetricsRegistry::process().snapshot().delta(Before);

  EXPECT_EQ(Delta.counterOr("serve.grids"), 1u);
  EXPECT_EQ(Delta.counterOr("serve.cells.total"), 3u);
  EXPECT_EQ(Delta.counterOr("serve.cells.inline"), 3u);
  EXPECT_EQ(Delta.counterOr("serve.dispatches"), 0u);
  EXPECT_EQ(renderServeSummary(Delta),
            "grid done: 3 cells (0 replayed, 3 inline, 0 failed), "
            "0 dispatches (0 re-dispatched, 0 duplicates dropped), "
            "0 crashes, 0 respawns");
}

TEST_F(Serve, PerCellResultMetricsStayFreeOfFleetAccounting) {
  if (tsanActive())
    GTEST_SKIP() << "fork-based; covered by check_serve.sh under ASan";
  // The determinism firewall: per-run metrics inside each cell result are
  // driven only by simulation events, so a served cell's snapshot equals
  // the serial one bit-for-bit and never carries serve.*/scheduling noise
  // (which would poison the result cache and the golden digests).
  std::vector<CellSpec> Cells = gridForBenchmarks({"compress"});
  SimulationOptions Opts = quickOptions();
  ServeConfig Config;
  Config.Workers = 2;
  Config.HeartbeatMs = 50;

  Expected<GridResult> Grid = runGrid(Config, Opts, Cells);
  ASSERT_TRUE(Grid.ok()) << Grid.status().toString();
  ASSERT_EQ(Grid.get().Stats.InlineCells, 0u);

  for (size_t I = 0; I != Cells.size(); ++I) {
    const WorkloadProfile *P = findProfile(Cells[I].Benchmark);
    ASSERT_NE(P, nullptr);
    MetricsSnapshot Serial =
        runExperimentCell(*P, Cells[I].SchemeKind, Opts).first.Metrics;
    const MetricsSnapshot &Served = Grid.get().Cells[I].Result.Metrics;
    EXPECT_EQ(Served, Serial) << "cell " << I;
    EXPECT_FALSE(Served.empty());
    for (const auto &[Name, V] : Served.Counters)
      EXPECT_NE(Name.substr(0, 6), "serve.") << Name;
    for (const auto &[Name, H] : Served.Histograms)
      EXPECT_NE(Name.substr(0, 6), "serve.") << Name;
  }
}

TEST_F(Serve, CrashChaosTraceMergesWorkerSpansWithCellAndAttempt) {
  if (tsanActive())
    GTEST_SKIP() << "fork-based; covered by check_serve.sh under ASan";
  // The cross-process correlation contract, on a deterministic chaos
  // scenario: one worker slot, every second CellAssign crashes its
  // worker, and a crashed cell requeues to the back of the pending
  // queue. Worker 1 finishes cell 0 and dies on cell 1; respawned
  // worker 2 finishes cell 2 (cell 1 went to the back) and dies
  // retrying cell 1; worker 3 finally lands cell 1 on attempt 3. The
  // merged trace must carry each completion as a worker.cell span on
  // its own worker track, distinguishable by (cell, attempt) — crashed
  // attempts emit no span (the crash fires before the span opens).
  ServeTraceFixture Fx("chaostrace");
  std::vector<CellSpec> Cells = gridForBenchmarks({"compress"});
  SimulationOptions Opts = quickOptions();
  ASSERT_TRUE(FaultInjector::instance().configure("worker.crash:2:1").ok());
  ServeConfig Config;
  Config.Workers = 1;
  Config.HeartbeatMs = 50;
  Config.MaxRespawns = 2;

  Expected<GridResult> Grid = runGrid(Config, Opts, Cells);
  ASSERT_TRUE(FaultInjector::instance().configure("").ok());
  ASSERT_TRUE(Grid.ok()) << Grid.status().toString();
  EXPECT_EQ(Grid.get().Stats.WorkerCrashes, 2u);
  EXPECT_EQ(Grid.get().Stats.Respawns, 2u);
  EXPECT_EQ(Grid.get().Stats.Redispatches, 0u);
  expectBitIdentical(Grid.get(), serialCellBytes(Cells, Opts));

  ASSERT_TRUE(obs::TraceCollector::instance().flush());
  std::string Text = Fx.slurp();
  ASSERT_FALSE(Text.empty());
  // Every completion span, with its dispatch attempt: cells 0 and 2 on
  // their first try, cell 1 on its third.
  EXPECT_NE(Text.find("\"worker.cell\""), std::string::npos);
  EXPECT_NE(Text.find("\"cell\": 0, \"attempt\": 1"), std::string::npos);
  EXPECT_NE(Text.find("\"cell\": 2, \"attempt\": 1"), std::string::npos);
  EXPECT_NE(Text.find("\"cell\": 1, \"attempt\": 3"), std::string::npos);
  // Distinct per-worker tracks (1000 + WorkerId), each named; a respawn
  // gets a fresh id, so the crashed and replacement workers never share
  // a track.
  EXPECT_NE(Text.find("\"tid\": 1001"), std::string::npos);
  EXPECT_NE(Text.find("\"tid\": 1003"), std::string::npos);
  EXPECT_NE(Text.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(Text.find("\"worker 1\""), std::string::npos);
  EXPECT_NE(Text.find("\"worker 3\""), std::string::npos);
  // Coordinator-side serve events share the same timeline.
  EXPECT_NE(Text.find("\"lease\""), std::string::npos);
  EXPECT_NE(Text.find("\"worker.respawn\""), std::string::npos);
}

TEST_F(Serve, StatsSnapshotDescribesTheLastGridWhenIdle) {
  std::vector<CellSpec> Cells = gridForBenchmarks({"compress"});
  ServeConfig Config;
  Config.Workers = 0;
  Expected<GridResult> Grid = runGrid(Config, quickOptions(), Cells);
  ASSERT_TRUE(Grid.ok()) << Grid.status().toString();

  StatsReplyMsg S = currentServeStats();
  EXPECT_FALSE(S.GridActive);
  EXPECT_GE(S.GridsServed, 1u);
  EXPECT_NE(S.GridId, 0u);
  EXPECT_EQ(S.Cells, 3u);
  EXPECT_EQ(S.DoneCells, 3u);
  EXPECT_EQ(S.InlineCells, 3u);
  EXPECT_EQ(S.PendingCells, 0u);
  EXPECT_EQ(S.InFlightLeases, 0u);
  EXPECT_TRUE(S.Workers.empty());

  std::string Text = renderServeStats(S);
  EXPECT_NE(Text.find("idle; last grid "), std::string::npos);
  EXPECT_NE(Text.find("  cells: 3 total, 3 done, 0 pending, 0 in flight, "
                      "0 failed (0 replayed, 3 inline, 0 quarantined)\n"),
            std::string::npos);
  EXPECT_NE(Text.find("journal 0 bytes"), std::string::npos);
}

// ------------------------------------------------------------- The report

TEST_F(Serve, GridReportIsBitIdenticalAcrossServeAndSerial) {
  if (tsanActive())
    GTEST_SKIP() << "fork-based; covered by check_serve.sh under ASan";
  std::vector<std::string> Benchmarks = {"compress", "db"};
  std::vector<CellSpec> Cells = gridForBenchmarks(Benchmarks);
  SimulationOptions Opts = quickOptions();

  // Serial: plain in-process cells, assembled and printed.
  std::vector<GridCell> SerialCells;
  for (const CellSpec &Spec : Cells) {
    const WorkloadProfile *P = findProfile(Spec.Benchmark);
    ASSERT_NE(P, nullptr);
    auto [R, Outcome] = runExperimentCell(*P, Spec.SchemeKind, Opts);
    SerialCells.push_back({std::move(R), Outcome, ""});
  }
  Expected<std::vector<BenchmarkRun>> SerialRuns =
      assembleBenchmarkRuns(Cells, SerialCells);
  ASSERT_TRUE(SerialRuns.ok());
  std::ostringstream SerialReport;
  printGridReport(SerialReport, SerialRuns.get());

  // Distributed, with chaos on top.
  ASSERT_TRUE(FaultInjector::instance().configure("worker.crash:2:1").ok());
  ServeConfig Config;
  Config.Workers = 3;
  Config.HeartbeatMs = 50;
  Expected<GridResult> Grid = runGrid(Config, Opts, Cells);
  ASSERT_TRUE(FaultInjector::instance().configure("").ok());
  ASSERT_TRUE(Grid.ok()) << Grid.status().toString();
  Expected<std::vector<BenchmarkRun>> ServeRuns =
      assembleBenchmarkRuns(Cells, Grid.get().Cells);
  ASSERT_TRUE(ServeRuns.ok());
  std::ostringstream ServeReport;
  printGridReport(ServeReport, ServeRuns.get());

  EXPECT_EQ(ServeReport.str(), SerialReport.str());
  EXPECT_NE(ServeReport.str().find("Cell digests"), std::string::npos);
}

TEST_F(Serve, AssembleRejectsANonProfileMajorGrid) {
  std::vector<CellSpec> Cells = {{"compress", Scheme::Baseline},
                                 {"compress", Scheme::Hotspot},
                                 {"compress", Scheme::Bbv}};
  std::vector<GridCell> Results(3);
  Expected<std::vector<BenchmarkRun>> Runs =
      assembleBenchmarkRuns(Cells, Results);
  ASSERT_FALSE(Runs.ok());
  EXPECT_EQ(Runs.status().code(), ErrorCode::InvalidInput);
}
