//===- tests/integration_test.cpp - cross-module end-to-end tests ---------==//
//
// End-to-end checks of the paper's mechanisms on small custom programs:
// CU decoupling assigns hotspots to the right units, the hotspot scheme
// reduces energy without excessive slowdown, the guard rate-limits real
// hardware, and the ablation switches behave.
//
//===----------------------------------------------------------------------===//

#include "isa/MethodBuilder.h"
#include "sim/ExperimentRunner.h"
#include "sim/System.h"

#include <gtest/gtest.h>

using namespace dynace;

namespace {

/// Builds a nested two-tier program: an outer "phase" method (L2-sized)
/// calling an inner kernel (L1D-sized) several times, repeated by main.
/// Footprints: inner array \p InnerWords, outer array \p OuterWords.
Program nestedProgram(uint64_t InnerWords, uint64_t OuterWords,
                      int64_t InnerIters, int64_t InnerCalls,
                      int64_t OuterCalls) {
  Program P;
  uint64_t InnerBase = P.addGlobal(InnerWords);
  uint64_t OuterBase = P.addGlobal(OuterWords);

  MethodBuilder Inner("inner");
  Inner.iconst(1, 0);
  Inner.iconst(2, static_cast<int64_t>(InnerBase));
  Inner.iconst(3, static_cast<int64_t>(InnerWords - 1));
  Inner.iconst(4, 0);
  MethodBuilder::Label ITop = Inner.newLabel();
  Inner.bind(ITop);
  Inner.add(5, 1, 0);
  Inner.and_(5, 5, 3);
  Inner.loadIdx(6, 2, 5);
  Inner.add(4, 4, 6);
  Inner.storeIdx(2, 5, 4);
  Inner.addi(1, 1, 1);
  Inner.bri(CondKind::Lt, 1, InnerIters, ITop);
  Inner.ret(4);
  MethodId InnerId = P.addMethod(Inner.take());

  MethodBuilder Outer("outer");
  // Outer scan with stride 8 words over its own (larger) array.
  Outer.iconst(1, 0);
  Outer.iconst(2, static_cast<int64_t>(OuterBase));
  Outer.iconst(3, static_cast<int64_t>(OuterWords - 1));
  Outer.iconst(4, 0);
  MethodBuilder::Label OTop = Outer.newLabel();
  Outer.bind(OTop);
  Outer.muli(5, 1, 8);
  Outer.and_(5, 5, 3);
  Outer.loadIdx(6, 2, 5);
  Outer.add(4, 4, 6);
  Outer.addi(1, 1, 1);
  Outer.bri(CondKind::Lt, 1, 400, OTop);
  // Call the inner kernel InnerCalls times.
  Outer.iconst(7, 0);
  MethodBuilder::Label CTop = Outer.newLabel();
  Outer.bind(CTop);
  Outer.add(8, 0, 7);
  Outer.call(9, InnerId, 8, 1);
  Outer.addi(7, 7, 1);
  Outer.bri(CondKind::Lt, 7, InnerCalls, CTop);
  Outer.ret(4);
  MethodId OuterId = P.addMethod(Outer.take());

  MethodBuilder Main("main");
  Main.iconst(1, 0);
  MethodBuilder::Label MTop = Main.newLabel();
  Main.bind(MTop);
  Main.mov(2, 1);
  Main.call(3, OuterId, 2, 1);
  Main.addi(1, 1, 1);
  Main.bri(CondKind::Lt, 1, OuterCalls, MTop);
  Main.halt();
  P.setEntry(P.addMethod(Main.take()));
  EXPECT_TRUE(P.finalize());
  return P;
}

} // namespace

TEST(Integration, CuDecouplingAssignsTiersToUnits) {
  // Inner ~14K instructions (L1D band), outer ~90K (L2 band).
  Program P = nestedProgram(/*InnerWords=*/256, /*OuterWords=*/4096,
                            /*InnerIters=*/2000, /*InnerCalls=*/6,
                            /*OuterCalls=*/120);
  SimulationOptions Opts;
  Opts.SchemeKind = Scheme::Hotspot;
  System Sys(P, Opts);
  Sys.run();
  const HotspotAceData &Inner = Sys.aceManager()->hotspotData(0);
  const HotspotAceData &Outer = Sys.aceManager()->hotspotData(1);
  EXPECT_EQ(Inner.CuClass, 0) << "inner kernel tunes the L1D";
  EXPECT_EQ(Outer.CuClass, 1) << "outer phase tunes the L2";
  EXPECT_EQ(Inner.Configs.size(), 4u);
  EXPECT_EQ(Outer.Configs.size(), 4u);
}

TEST(Integration, HotspotSchemeShrinksCachesForSmallWorkingSets) {
  Program P = nestedProgram(256, 1024, 2000, 6, 150);
  SimulationOptions Opts;
  SimulationResult Base = System(P, Opts).run();
  Opts.SchemeKind = Scheme::Hotspot;
  System Hot(P, Opts);
  SimulationResult HotR = Hot.run();

  // Working sets are tiny: both caches should spend most accesses below
  // the maximum setting, cutting both caches' energy.
  EXPECT_LT(HotR.L1DAccessesBySetting[0],
            HotR.L1DStats.accesses() * 3 / 4);
  double L1DRed = BenchmarkRun::reduction(HotR.L1DEnergy.total(),
                                          Base.L1DEnergy.total());
  double L2Red = BenchmarkRun::reduction(HotR.L2Energy.total(),
                                         Base.L2Energy.total());
  EXPECT_GT(L1DRed, 0.15);
  EXPECT_GT(L2Red, 0.15);
  EXPECT_LT(BenchmarkRun::slowdown(HotR.Cycles, Base.Cycles), 0.10);
}

TEST(Integration, BigWorkingSetKeepsLargeCache) {
  // Inner working set (48 KB) defeats every L1D setting; the outer array
  // (32 KB) needs a large L2. EPI should then pick small (nothing helps)
  // or keep large (IPC floor) — but the *IPC* must never collapse more
  // than the threshold-bounded amount.
  Program P = nestedProgram(/*InnerWords=*/8192, /*OuterWords=*/4096, 3000,
                            5, 120);
  SimulationOptions Opts;
  SimulationResult Base = System(P, Opts).run();
  Opts.SchemeKind = Scheme::Hotspot;
  SimulationResult Hot = System(P, Opts).run();
  EXPECT_LT(BenchmarkRun::slowdown(Hot.Cycles, Base.Cycles), 0.12);
}

TEST(Integration, GuardRateLimitsReconfigurations) {
  Program P = nestedProgram(256, 2048, 2000, 6, 150);
  SimulationOptions Opts;
  Opts.SchemeKind = Scheme::Hotspot;
  System Sys(P, Opts);
  SimulationResult R = Sys.run();
  // The L1D guard allows at most one change per 10K instructions.
  EXPECT_LE(R.L1DHardwareReconfigs, R.Instructions / 10000 + 2);
  EXPECT_LE(R.L2HardwareReconfigs, R.Instructions / 100000 + 2);
}

TEST(Integration, DisablingGuardAllowsMoreReconfigurations) {
  Program P = nestedProgram(256, 2048, 900, 4, 400);
  SimulationOptions Opts;
  Opts.SchemeKind = Scheme::Hotspot;
  SimulationResult Guarded = System(P, Opts).run();
  Opts.Ace.GuardEnabled = false;
  SimulationResult Unguarded = System(P, Opts).run();
  EXPECT_GE(Unguarded.L1DHardwareReconfigs, Guarded.L1DHardwareReconfigs);
}

TEST(Integration, NoDecouplingTestsManyMoreConfigurations) {
  Program P = nestedProgram(256, 2048, 2000, 6, 200);
  SimulationOptions Opts;
  Opts.SchemeKind = Scheme::Hotspot;
  SimulationResult Decoupled = System(P, Opts).run();
  Opts.Ace.DecouplingEnabled = false;
  SimulationResult Coupled = System(P, Opts).run();
  ASSERT_TRUE(Decoupled.Ace.has_value());
  ASSERT_TRUE(Coupled.Ace.has_value());
  uint64_t DecoupledTunings = 0, CoupledTunings = 0;
  for (const AceCuReport &Cu : Decoupled.Ace->PerCu)
    DecoupledTunings += Cu.Tunings;
  for (const AceCuReport &Cu : Coupled.Ace->PerCu)
    CoupledTunings += Cu.Tunings;
  // The cross product (16 configs, paired -> 31 slots) dwarfs the
  // decoupled sweeps (4 configs each).
  EXPECT_GT(CoupledTunings, DecoupledTunings);
}

TEST(Integration, BbvDetectsRecurringStablePhases) {
  // Two alternating long phases over different code; BBV should find a
  // small number of phases with high stability.
  Program P = nestedProgram(256, 2048, 4000, 8, 120);
  SimulationOptions Opts;
  Opts.SchemeKind = Scheme::Bbv;
  SimulationResult R = System(P, Opts).run();
  ASSERT_TRUE(R.BbvR.has_value());
  EXPECT_GE(R.BbvR->NumPhases, 1u);
  EXPECT_LE(R.BbvR->NumPhases, 10u);
  EXPECT_GT(R.BbvR->StableIntervalFraction, 0.8);
}

TEST(Integration, DoOverheadChargedOnlyWithDoSystem) {
  Program P = nestedProgram(256, 2048, 2000, 6, 60);
  SimulationOptions Opts;
  SimulationResult WithDo = System(P, Opts).run();
  Opts.DoSystemAlwaysOn = false;
  SimulationResult WithoutDo = System(P, Opts).run();
  EXPECT_EQ(WithDo.Instructions, WithoutDo.Instructions);
  EXPECT_GT(WithDo.Cycles, WithoutDo.Cycles); // JIT + counter stalls.
}

TEST(Integration, HotspotBeatsBbvOnNestedWorkload) {
  // The headline comparison on a miniature workload: with nested phases of
  // different granularity, the hotspot scheme should achieve at least the
  // BBV scheme's L1D energy reduction.
  Program P = nestedProgram(256, 4096, 3000, 8, 150);
  SimulationOptions Opts;
  SimulationResult Base = System(P, Opts).run();
  Opts.SchemeKind = Scheme::Bbv;
  SimulationResult Bbv = System(P, Opts).run();
  Opts.SchemeKind = Scheme::Hotspot;
  SimulationResult Hot = System(P, Opts).run();
  double BbvL1D = BenchmarkRun::reduction(Bbv.L1DEnergy.total(),
                                          Base.L1DEnergy.total());
  double HotL1D = BenchmarkRun::reduction(Hot.L1DEnergy.total(),
                                          Base.L1DEnergy.total());
  EXPECT_GE(HotL1D, BbvL1D - 0.05);
}
