//===- tests/uarch_test.cpp - branch predictor and core timing tests ------==//

#include "uarch/BranchPredictor.h"
#include "uarch/Core.h"

#include <gtest/gtest.h>

using namespace dynace;

// --------------------------------------------------------- BranchPredictor

TEST(BranchPredictor, LearnsAlwaysTaken) {
  BranchPredictor P(2048);
  uint64_t PC = 0x4000;
  for (int I = 0; I != 8; ++I)
    P.predictAndUpdate(PC, true);
  EXPECT_TRUE(P.predict(PC));
  uint64_t Before = P.mispredicts();
  P.predictAndUpdate(PC, true);
  EXPECT_EQ(P.mispredicts(), Before);
}

TEST(BranchPredictor, LearnsAlwaysNotTaken) {
  BranchPredictor P(2048);
  uint64_t PC = 0x4400;
  for (int I = 0; I != 8; ++I)
    P.predictAndUpdate(PC, false);
  EXPECT_FALSE(P.predict(PC));
}

TEST(BranchPredictor, GshareLearnsAlternatingPattern) {
  BranchPredictor P(2048);
  uint64_t PC = 0x5000;
  // Warm up on a strict alternation; gshare keys on the history register,
  // so late mispredict rate must fall well below 50%.
  for (int I = 0; I != 512; ++I)
    P.predictAndUpdate(PC, (I & 1) != 0);
  uint64_t Before = P.mispredicts();
  for (int I = 0; I != 256; ++I)
    P.predictAndUpdate(PC, (I & 1) != 0);
  uint64_t Late = P.mispredicts() - Before;
  EXPECT_LT(Late, 32u);
}

TEST(BranchPredictor, CountsLookupsAndMispredicts) {
  BranchPredictor P(2048);
  P.predictAndUpdate(0x100, true);
  P.predictAndUpdate(0x100, true);
  EXPECT_EQ(P.lookups(), 2u);
  EXPECT_LE(P.mispredicts(), 2u);
  EXPECT_GE(P.mispredictRate(), 0.0);
  EXPECT_LE(P.mispredictRate(), 1.0);
}

TEST(BranchPredictor, DistinctPcsIndependentBimodal) {
  BranchPredictor P(2048);
  for (int I = 0; I != 8; ++I) {
    P.predictAndUpdate(0x1000, true);
    P.predictAndUpdate(0x2000, false);
  }
  EXPECT_TRUE(P.predict(0x1000));
  EXPECT_FALSE(P.predict(0x2000));
}

// --------------------------------------------------------------------- Core

namespace {

DynInst aluInst(uint64_t PC, uint8_t Dst = kNoReg, uint8_t Src1 = kNoReg,
                uint8_t Src2 = kNoReg) {
  DynInst D;
  D.PC = PC;
  D.Class = OpClass::IntAlu;
  D.Dst = Dst;
  D.Src1 = Src1;
  D.Src2 = Src2;
  return D;
}

DynInst loadInst(uint64_t PC, uint64_t Addr, uint8_t Dst) {
  DynInst D;
  D.PC = PC;
  D.Class = OpClass::Load;
  D.Dst = Dst;
  D.MemAddr = Addr;
  return D;
}

struct CoreFixture : public ::testing::Test {
  HierarchyConfig HC;
  MemoryHierarchy Hier{HC};
  CoreConfig CC;
  Core Cpu{CC, Hier};

  /// Code footprint for synthetic streams: loop over a small (1 KB) code
  /// region like real kernels do, so the I-cache behaves as in steady
  /// state rather than streaming cold forever.
  static uint64_t loopPc(uint64_t I, uint64_t Base = 0x40000000) {
    return Base + (I % 256) * 4;
  }

  /// Feeds N independent ALU instructions on a looped code footprint.
  void feedIndependent(uint64_t N, uint64_t PCBase = 0x40000000) {
    for (uint64_t I = 0; I != N; ++I)
      Cpu.consume(aluInst(loopPc(I, PCBase),
                          /*Dst=*/static_cast<uint8_t>(I % 24)));
  }
};

} // namespace

TEST_F(CoreFixture, IpcNeverExceedsIssueWidth) {
  feedIndependent(10000);
  EXPECT_LE(Cpu.ipc(), static_cast<double>(CC.CommitWidth) + 1e-9);
  EXPECT_GT(Cpu.ipc(), 0.5);
}

TEST_F(CoreFixture, IndependentCodeApproachesWidth) {
  feedIndependent(50000);
  // Independent single-cycle ALU ops should sustain close to 4-wide.
  EXPECT_GT(Cpu.ipc(), 2.5);
}

TEST_F(CoreFixture, DependenceChainSerializes) {
  // A chain r1 = r1 + ... executes at 1 IPC at best.
  for (uint64_t I = 0; I != 20000; ++I)
    Cpu.consume(aluInst(loopPc(I), /*Dst=*/1, /*Src1=*/1));
  EXPECT_LT(Cpu.ipc(), 1.1);
  EXPECT_GT(Cpu.ipc(), 0.8);
}

TEST_F(CoreFixture, StreamingLoadsSlowerThanResident) {
  // Repeated loads of one line hit after the first fill; streaming loads
  // over distinct lines keep missing. Use separate hierarchies so the
  // comparison is not confounded by shared cache state.
  HierarchyConfig HCA, HCB;
  MemoryHierarchy HierA{HCA}, HierB{HCB};
  Core Warm(CC, HierA);
  for (uint64_t I = 0; I != 2000; ++I)
    Warm.consume(loadInst(loopPc(I), 0x1000, /*Dst=*/1));
  Core Stream(CC, HierB);
  for (uint64_t I = 0; I != 2000; ++I)
    Stream.consume(loadInst(loopPc(I), 0x800000 + I * 64, /*Dst=*/1));
  EXPECT_GT(Stream.cycles(), Warm.cycles());
}

TEST_F(CoreFixture, LoadLatencyExposedThroughDependents) {
  // load r1 ; add r2 = r1 + r1 ; repeat — dependents wait for the load.
  for (uint64_t I = 0; I != 1000; ++I) {
    Cpu.consume(loadInst(loopPc(2 * I), (I % 4) * 64, /*Dst=*/1));
    Cpu.consume(aluInst(loopPc(2 * I + 1), /*Dst=*/2, /*Src1=*/1));
  }
  // L1 hits take >= 1 cycle: the chain cannot exceed ~2 instructions per
  // 2 cycles.
  EXPECT_LT(Cpu.ipc(), 2.2);
}

TEST_F(CoreFixture, MispredictsCostCycles) {
  // A pseudo-random branch pattern defeats both predictor components;
  // compare against an always-taken loop branch.
  auto RunBranches = [&](bool Random) {
    HierarchyConfig HC2;
    MemoryHierarchy Hier2{HC2};
    Core C(CC, Hier2);
    uint64_t State = 88172645463325252ull;
    for (uint64_t I = 0; I != 20000; ++I) {
      DynInst D;
      D.PC = 0x40001000;
      D.Class = OpClass::Branch;
      D.IsCondBranch = true;
      State ^= State << 13;
      State ^= State >> 7;
      State ^= State << 17;
      D.Taken = Random ? (State & 1) != 0 : true;
      D.Target = 0x40001000;
      C.consume(D);
      C.consume(aluInst(0x40001004, 1));
    }
    return C.cycles();
  };
  uint64_t Predictable = RunBranches(false);
  uint64_t Hard = RunBranches(true);
  EXPECT_GT(Hard, Predictable + 10000);
}

TEST_F(CoreFixture, StallAdvancesTime) {
  feedIndependent(100);
  uint64_t Before = Cpu.cycles();
  Cpu.stall(5000);
  feedIndependent(100);
  EXPECT_GE(Cpu.cycles(), Before + 5000);
}

TEST_F(CoreFixture, ResetClearsTime) {
  feedIndependent(100);
  EXPECT_GT(Cpu.cycles(), 0u);
  Cpu.reset();
  EXPECT_EQ(Cpu.cycles(), 0u);
  EXPECT_EQ(Cpu.instructions(), 0u);
}

TEST_F(CoreFixture, InstructionCountTracksConsumed) {
  feedIndependent(1234);
  EXPECT_EQ(Cpu.instructions(), 1234u);
}

TEST_F(CoreFixture, DivOccupiesUnitLonger) {
  auto RunOps = [&](OpClass Class) {
    HierarchyConfig HC2;
    MemoryHierarchy Hier2{HC2};
    Core C(CC, Hier2);
    for (uint64_t I = 0; I != 5000; ++I) {
      DynInst D = aluInst(loopPc(I), static_cast<uint8_t>(I % 8));
      D.Class = Class;
      C.consume(D);
    }
    return C.cycles();
  };
  // Unpipelined divides through 2 units must be much slower than ALU ops
  // through 4 pipelined units.
  EXPECT_GT(RunOps(OpClass::IntDiv), 4 * RunOps(OpClass::IntAlu));
}

TEST_F(CoreFixture, SmallerWindowLowersIlp) {
  CoreConfig Narrow = CC;
  Narrow.WindowSize = 4;
  HierarchyConfig HC2;
  MemoryHierarchy Hier2(HC2);
  Core Wide(CC, Hier);
  Core Tight(Narrow, Hier2);
  // Long-latency load followed by independent ALU work: a tiny window
  // cannot slide past the load.
  for (int I = 0; I != 2000; ++I) {
    DynInst L = loadInst(0x40000000 + I * 40,
                         0x900000 + static_cast<uint64_t>(I) * 64, 1);
    Wide.consume(L);
    Tight.consume(L);
    for (int J = 0; J != 8; ++J) {
      DynInst A = aluInst(0x40000004 + I * 40 + J * 4,
                          static_cast<uint8_t>(2 + J));
      Wide.consume(A);
      Tight.consume(A);
    }
  }
  EXPECT_GT(Tight.cycles(), Wide.cycles());
}

TEST_F(CoreFixture, FetchStallsOnIcacheMiss) {
  // Jumping across many distinct code blocks forces I-cache misses.
  Core C(CC, Hier);
  for (int I = 0; I != 2000; ++I) {
    DynInst D = aluInst(0x40000000 + static_cast<uint64_t>(I) * 4096,
                        static_cast<uint8_t>(I % 8));
    C.consume(D);
  }
  Core Sequential(CC, Hier);
  for (int I = 0; I != 2000; ++I)
    Sequential.consume(
        aluInst(0x50000000 + I * 4, static_cast<uint8_t>(I % 8)));
  EXPECT_GT(C.cycles(), Sequential.cycles());
}

// ------------------------------------------------- Adaptive issue window

TEST_F(CoreFixture, WindowSettingsDefaultToFullSize) {
  EXPECT_EQ(Cpu.windowSettings().size(), 1u);
  EXPECT_EQ(Cpu.windowSettings()[0], CC.WindowSize);
}

TEST_F(CoreFixture, SmallerWindowSettingLowersIlp) {
  HierarchyConfig HCA, HCB;
  MemoryHierarchy HierA{HCA}, HierB{HCB};
  Core Full(CC, HierA), Tiny(CC, HierB);
  Tiny.configureWindowSettings({64, 4});
  Tiny.setWindowSetting(1);
  // Long-latency loads + independent filler: a 4-entry window cannot
  // slide past the loads.
  for (uint64_t I = 0; I != 2000; ++I) {
    DynInst L = loadInst(loopPc(I * 9), 0x900000 + I * 64, 1);
    Full.consume(L);
    Tiny.consume(L);
    for (int J = 0; J != 8; ++J) {
      DynInst A = aluInst(loopPc(I * 9 + 1 + J),
                          static_cast<uint8_t>(2 + J));
      Full.consume(A);
      Tiny.consume(A);
    }
  }
  EXPECT_GT(Tiny.cycles(), Full.cycles());
}

TEST_F(CoreFixture, WindowResidencyCountsPerSetting) {
  Cpu.configureWindowSettings({64, 16});
  feedIndependent(100);
  Cpu.setWindowSetting(1);
  feedIndependent(300);
  const std::vector<uint64_t> &N = Cpu.instructionsByWindowSetting();
  ASSERT_EQ(N.size(), 2u);
  EXPECT_EQ(N[0], 100u);
  EXPECT_EQ(N[1], 300u);
}

TEST_F(CoreFixture, WindowSettingRestorableAtRuntime) {
  Cpu.configureWindowSettings({64, 32, 16, 8});
  Cpu.setWindowSetting(3);
  EXPECT_EQ(Cpu.windowSetting(), 3u);
  feedIndependent(100);
  Cpu.setWindowSetting(0);
  EXPECT_EQ(Cpu.windowSetting(), 0u);
  feedIndependent(100);
  EXPECT_EQ(Cpu.instructions(), 200u);
}

// ----------------------------------------------------- Predictor properties

/// Property: for any fixed periodic pattern with period <= 8, the combined
/// predictor's steady-state mispredict rate is far below chance.
class PeriodicPatternTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PeriodicPatternTest, LearnsShortPeriodicPatterns) {
  uint32_t Period = GetParam();
  uint32_t Pattern = 0b10110100u; // Arbitrary bits, cycled at Period.
  BranchPredictor P(2048);
  for (int I = 0; I != 4096; ++I)
    P.predictAndUpdate(0x7000, ((Pattern >> (I % Period)) & 1) != 0);
  uint64_t Before = P.mispredicts();
  for (int I = 4096; I != 4096 + 512; ++I)
    P.predictAndUpdate(0x7000, ((Pattern >> (I % Period)) & 1) != 0);
  EXPECT_LT(P.mispredicts() - Before, 100u) << "period " << Period;
}

INSTANTIATE_TEST_SUITE_P(Periods, PeriodicPatternTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u, 8u));

/// Property: the core's cycle count is monotone in the instruction stream
/// (consuming more instructions never reduces time) and deterministic.
TEST_F(CoreFixture, CyclesMonotoneAndDeterministic) {
  HierarchyConfig HCA, HCB;
  MemoryHierarchy HierA{HCA}, HierB{HCB};
  Core A(CC, HierA), B(CC, HierB);
  uint64_t Prev = 0;
  for (uint64_t I = 0; I != 5000; ++I) {
    DynInst D = I % 7 == 0
                    ? loadInst(loopPc(I), (I % 64) * 64,
                               static_cast<uint8_t>(I % 8))
                    : aluInst(loopPc(I), static_cast<uint8_t>(I % 8),
                              static_cast<uint8_t>((I + 1) % 8));
    A.consume(D);
    B.consume(D);
    ASSERT_GE(A.cycles(), Prev);
    Prev = A.cycles();
    ASSERT_EQ(A.cycles(), B.cycles());
  }
}
