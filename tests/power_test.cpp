//===- tests/power_test.cpp - energy model and meter tests ----------------==//

#include "cache/MemoryHierarchy.h"
#include "power/EnergyModel.h"
#include "power/PowerMeter.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace dynace;

// ------------------------------------------------------------- EnergyModel

TEST(EnergyModel, DynamicEnergyGrowsWithSize) {
  EnergyModel M;
  CacheGeometry Small{1024, 64, 2, 1};
  CacheGeometry Big{8192, 64, 2, 1};
  EXPECT_LT(M.l1DynamicAccess(Small), M.l1DynamicAccess(Big));
  CacheGeometry L2Small{16 * 1024, 128, 4, 10};
  CacheGeometry L2Big{128 * 1024, 128, 4, 10};
  EXPECT_LT(M.l2DynamicAccess(L2Small), M.l2DynamicAccess(L2Big));
}

TEST(EnergyModel, DynamicScalingFollowsExponent) {
  EnergyModel M;
  CacheGeometry A{2048, 64, 2, 1};
  CacheGeometry B{4096, 64, 2, 1};
  double Ratio = M.l1DynamicAccess(B) / M.l1DynamicAccess(A);
  EXPECT_NEAR(Ratio, std::pow(2.0, M.params().DynamicExponent), 1e-9);
}

TEST(EnergyModel, LeakageIsLinearInSize) {
  EnergyModel M;
  CacheGeometry A{2048, 64, 2, 1};
  CacheGeometry B{8192, 64, 2, 1};
  EXPECT_NEAR(M.l1LeakagePerCycle(B) / M.l1LeakagePerCycle(A), 4.0, 1e-9);
  CacheGeometry L2A{16 * 1024, 128, 4, 10};
  CacheGeometry L2B{64 * 1024, 128, 4, 10};
  EXPECT_NEAR(M.l2LeakagePerCycle(L2B) / M.l2LeakagePerCycle(L2A), 4.0,
              1e-9);
}

TEST(EnergyModel, ReferenceAnchors) {
  EnergyModelParams P;
  EnergyModel M(P);
  CacheGeometry Ref64K{64 * 1024, 64, 2, 1};
  EXPECT_NEAR(M.l1DynamicAccess(Ref64K), P.L1DynamicAt64K, 1e-9);
  CacheGeometry Ref1M{1024 * 1024, 128, 4, 10};
  EXPECT_NEAR(M.l2DynamicAccess(Ref1M), P.L2DynamicAt1M, 1e-9);
  EXPECT_NEAR(M.l1LeakagePerCycle(Ref64K), P.L1LeakagePer64K, 1e-9);
  EXPECT_NEAR(M.l2LeakagePerCycle(Ref1M), P.L2LeakagePer1M, 1e-9);
}

TEST(EnergyModel, CustomParams) {
  EnergyModelParams P;
  P.MemoryAccess = 42.0;
  P.FlushLineTransfer = 7.0;
  EnergyModel M(P);
  EXPECT_DOUBLE_EQ(M.memoryAccess(), 42.0);
  EXPECT_DOUBLE_EQ(M.flushLineTransfer(), 7.0);
}

// -------------------------------------------------------------- PowerMeter

namespace {

struct MeterFixture : public ::testing::Test {
  HierarchyConfig HC;
  MemoryHierarchy Hier{HC};
  EnergyModel Model;
  PowerMeter Meter{Hier, Model};
};

} // namespace

TEST_F(MeterFixture, NoActivityNoEnergy) {
  EXPECT_DOUBLE_EQ(Meter.l1dEnergy().total(), 0.0);
  EXPECT_DOUBLE_EQ(Meter.l2Energy().total(), 0.0);
  EXPECT_DOUBLE_EQ(Meter.memoryEnergy(), 0.0);
}

TEST_F(MeterFixture, DynamicEnergyMatchesHandComputation) {
  Hier.dataAccess(0x0, false);  // L1D miss -> L2 miss -> memory.
  Hier.dataAccess(0x0, false);  // L1D hit.
  EnergyBreakdown L1D = Meter.l1dEnergy();
  double PerAccess = Model.l1DynamicAccess(HC.L1DSettings[0]);
  EXPECT_NEAR(L1D.Dynamic, 2.0 * PerAccess, 1e-9);
  EnergyBreakdown L2 = Meter.l2Energy();
  EXPECT_NEAR(L2.Dynamic, Model.l2DynamicAccess(HC.L2Settings[0]), 1e-9);
  EXPECT_NEAR(Meter.memoryEnergy(), Model.memoryAccess(), 1e-9);
}

TEST_F(MeterFixture, LeakageIntegratesOverCycles) {
  Meter.syncLeakage(1000);
  EnergyBreakdown L2 = Meter.l2Energy();
  EXPECT_NEAR(L2.Leakage, 1000.0 * Model.l2LeakagePerCycle(HC.L2Settings[0]),
              1e-9);
  // Second sync adds only the delta.
  Meter.syncLeakage(1500);
  EXPECT_NEAR(Meter.l2Energy().Leakage,
              1500.0 * Model.l2LeakagePerCycle(HC.L2Settings[0]), 1e-9);
}

TEST_F(MeterFixture, LeakageUsesActiveSettingAcrossReconfig) {
  Meter.syncLeakage(1000); // 1000 cycles at the largest L2.
  Hier.reconfigureL2(3);   // Smallest.
  Meter.syncLeakage(3000); // 2000 cycles at the smallest L2.
  double Expected = 1000.0 * Model.l2LeakagePerCycle(HC.L2Settings[0]) +
                    2000.0 * Model.l2LeakagePerCycle(HC.L2Settings[3]);
  EXPECT_NEAR(Meter.l2Energy().Leakage, Expected, 1e-9);
}

TEST_F(MeterFixture, AccessesChargedAtServingSetting) {
  Hier.dataAccess(0x0, false);
  Hier.reconfigureL1D(3);
  Hier.dataAccess(0x0, false);
  double Expected = Model.l1DynamicAccess(HC.L1DSettings[0]) +
                    Model.l1DynamicAccess(HC.L1DSettings[3]);
  EXPECT_NEAR(Meter.l1dEnergy().Dynamic, Expected, 1e-9);
}

TEST_F(MeterFixture, ReconfigEnergyCountsFlushedLines) {
  // Dirty lines in sets that the 8 KB -> 4 KB downsize disables (sets
  // 32..39), so they are genuinely written back despite retention.
  for (uint64_t I = 0; I != 8; ++I)
    Hier.dataAccess((32 + I) * 64, true);
  Hier.reconfigureL1D(1);
  EnergyBreakdown L1D = Meter.l1dEnergy();
  double Expected = 8.0 * (Model.l1DynamicAccess(HC.L1DSettings[0]) +
                           Model.flushLineTransfer());
  EXPECT_NEAR(L1D.Reconfig, Expected, 1e-9);
}

TEST_F(MeterFixture, TotalIsSumOfParts) {
  for (uint64_t I = 0; I != 64; ++I)
    Hier.dataAccess(I * 64, I % 2 == 0);
  Hier.instrFetch(0x40000000);
  Meter.syncLeakage(5000);
  double Total = Meter.l1dEnergy().total() + Meter.l2Energy().total() +
                 Meter.l1iEnergy().total() + Meter.memoryEnergy();
  EXPECT_NEAR(Meter.totalEnergy(), Total, 1e-9);
  EXPECT_GT(Total, 0.0);
}

TEST_F(MeterFixture, SmallerCacheLowersDynamicEnergyPerAccess) {
  // Same access count at the smallest setting must cost less dynamically.
  MemoryHierarchy HierSmall{HC};
  PowerMeter MeterSmall(HierSmall, Model);
  HierSmall.reconfigureL1D(3);
  for (uint64_t I = 0; I != 100; ++I) {
    Hier.dataAccess(I % 8 * 64, false);
    HierSmall.dataAccess(I % 8 * 64, false);
  }
  EXPECT_LT(MeterSmall.l1dEnergy().Dynamic, Meter.l1dEnergy().Dynamic);
}

TEST(EnergyModel, WindowEnergyScalesLinearly) {
  EnergyModel M;
  EXPECT_NEAR(M.windowDynamicPerInstr(32) / M.windowDynamicPerInstr(64),
              0.5, 1e-12);
  EXPECT_NEAR(M.windowLeakagePerCycle(16) / M.windowLeakagePerCycle(64),
              0.25, 1e-12);
  EXPECT_DOUBLE_EQ(M.windowDynamicPerInstr(64),
                   M.params().WindowDynamicAt64);
}
