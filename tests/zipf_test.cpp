//===- tests/zipf_test.cpp - Zipf sampling & workload-skew knobs ----------==//
//
// Pins the skew frontier's statistical contracts: the sampler's empirical
// rank frequencies against the zipfMassFraction closed form, seed
// determinism, the theta=0 uniform degenerate case, and the profile-level
// knobs (withZipfTheta naming, sweep construction, multi-tenant mixes).
//
//===----------------------------------------------------------------------===//

#include "support/Random.h"
#include "vm/Interpreter.h"
#include "workloads/WorkloadGenerator.h"
#include "workloads/WorkloadProfile.h"

#include <gtest/gtest.h>

#include <initializer_list>
#include <vector>

using namespace dynace;

TEST(ZipfMass, DegenerateCases) {
  // Whole population (or more) carries all the mass.
  EXPECT_DOUBLE_EQ(zipfMassFraction(100, 100, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(zipfMassFraction(100, 200, 0.7), 1.0);
  // Theta 0 is uniform: the head carries exactly K/N.
  EXPECT_NEAR(zipfMassFraction(100, 25, 0.0), 0.25, 1e-12);
  EXPECT_NEAR(zipfMassFraction(64, 16, 0.0), 0.25, 1e-12);
}

TEST(ZipfMass, MonotoneInHeadSizeAndTheta) {
  for (size_t K = 1; K < 50; ++K)
    EXPECT_LT(zipfMassFraction(50, K, 0.9), zipfMassFraction(50, K + 1, 0.9));
  double Prev = 0.0;
  for (double Theta : {0.0, 0.3, 0.6, 0.9, 1.2, 2.0}) {
    double F = zipfMassFraction(200, 20, Theta);
    EXPECT_GT(F, Prev) << "theta=" << Theta;
    Prev = F;
  }
}

TEST(ZipfSampler, EmpiricalHeadMassMatchesClosedForm) {
  constexpr size_t N = 100;
  constexpr int Draws = 200000;
  for (double Theta : {0.6, 1.0, 1.4}) {
    ZipfGenerator G(N, Theta, /*Seed=*/42);
    std::vector<uint64_t> Counts(N, 0);
    for (int I = 0; I != Draws; ++I)
      ++Counts[G.next()];
    for (size_t K : {size_t(1), size_t(10), size_t(25)}) {
      uint64_t Head = 0;
      for (size_t I = 0; I != K; ++I)
        Head += Counts[I];
      double Empirical = static_cast<double>(Head) / Draws;
      EXPECT_NEAR(Empirical, zipfMassFraction(N, K, Theta), 0.01)
          << "theta=" << Theta << " K=" << K;
    }
  }
}

TEST(ZipfSampler, ThetaZeroIsUniform) {
  constexpr size_t N = 64;
  constexpr int Draws = 256000; // 4000 expected per rank.
  ZipfGenerator G(N, 0.0, /*Seed=*/7);
  std::vector<uint64_t> Counts(N, 0);
  for (int I = 0; I != Draws; ++I)
    ++Counts[G.next()];
  // ~8 sigma per-rank band: loose enough to never flake (the stream is
  // deterministic anyway), tight enough to catch any rank bias.
  for (size_t I = 0; I != N; ++I)
    EXPECT_NEAR(static_cast<double>(Counts[I]), Draws / double(N), 500.0)
        << "rank " << I;
}

TEST(ZipfSampler, SeedDeterminism) {
  ZipfGenerator A(128, 0.9, 123), B(128, 0.9, 123), C(128, 0.9, 124);
  bool Differs = false;
  for (int I = 0; I != 1000; ++I) {
    size_t RA = A.next();
    ASSERT_EQ(RA, B.next());
    Differs |= RA != C.next();
  }
  EXPECT_TRUE(Differs) << "different seeds must give different streams";
}

// ZipfSampler's documented contract: drop-in for sampleDiscrete over
// zipfWeights with identical draw consumption and identical ranks. The
// generator's single-tenant bit-identity rests on this.
TEST(ZipfSampler, BitCompatibleWithSampleDiscrete) {
  constexpr size_t N = 37;
  const double Theta = 0.8;
  ZipfSampler S(N, Theta);
  std::vector<double> W = zipfWeights(N, Theta);
  SplitMix64 RA(99), RB(99);
  for (int I = 0; I != 5000; ++I)
    ASSERT_EQ(S.next(RA), sampleDiscrete(RB, W));
  EXPECT_EQ(S.numRanks(), N);
  EXPECT_DOUBLE_EQ(S.theta(), Theta);
}

TEST(SkewKnob, WithZipfThetaNamingAndSweep) {
  const WorkloadProfile *Db = findProfile("db");
  ASSERT_NE(Db, nullptr);
  WorkloadProfile V = withZipfTheta(*Db, 1.2);
  EXPECT_EQ(V.Name, "db@z1.20");
  EXPECT_DOUBLE_EQ(V.MethodZipfTheta, 1.2);
  EXPECT_DOUBLE_EQ(V.DataZipfTheta, 1.2);
  std::vector<WorkloadProfile> Sweep = zipfSweepProfiles(*Db, {0.0, 0.6});
  ASSERT_EQ(Sweep.size(), 2u);
  EXPECT_EQ(Sweep[0].Name, "db@z0.00");
  EXPECT_EQ(Sweep[1].Name, "db@z0.60");
}

TEST(SkewKnob, ThetaChangesGeneratedProgram) {
  const WorkloadProfile *Db = findProfile("db");
  GeneratedWorkload Canonical = WorkloadGenerator::generate(*Db);
  GeneratedWorkload Skewed =
      WorkloadGenerator::generate(withZipfTheta(*Db, 1.2));
  // Same method population; only picks, iteration budgets and data routes
  // move with theta.
  ASSERT_EQ(Canonical.Prog.numMethods(), Skewed.Prog.numMethods());
  Interpreter IA(Canonical.Prog), IB(Skewed.Prog);
  DynInst DA, DB;
  bool Diverged = false;
  for (int I = 0; I != 200000 && !Diverged; ++I) {
    IA.step(DA);
    IB.step(DB);
    Diverged = DA.PC != DB.PC || DA.MemAddr != DB.MemAddr;
  }
  EXPECT_TRUE(Diverged) << "theta knob must change dynamic behavior";
}

TEST(SkewKnob, SkewedVariantGeneratesDeterministically) {
  WorkloadProfile V = withZipfTheta(*findProfile("compress"), 1.2);
  GeneratedWorkload A = WorkloadGenerator::generate(V);
  GeneratedWorkload B = WorkloadGenerator::generate(V);
  ASSERT_EQ(A.Prog.numMethods(), B.Prog.numMethods());
  Interpreter IA(A.Prog), IB(B.Prog);
  DynInst DA, DB;
  for (int I = 0; I != 100000; ++I) {
    IA.step(DA);
    IB.step(DB);
    ASSERT_EQ(DA.PC, DB.PC);
    ASSERT_EQ(DA.MemAddr, DB.MemAddr);
  }
}

TEST(Mix, ProfileConstruction) {
  WorkloadProfile Mix =
      makeMixProfile({*findProfile("compress"), *findProfile("db")});
  EXPECT_EQ(Mix.Name, "mix:compress+db");
  EXPECT_TRUE(Mix.isMix());
  ASSERT_EQ(Mix.Tenants.size(), 2u);
  EXPECT_GE(Mix.OuterIterations, 1u);
}

TEST(Mix, StandardMixGrid) {
  const std::vector<WorkloadProfile> &Mixes = standardMixProfiles();
  ASSERT_EQ(Mixes.size(), 3u);
  EXPECT_EQ(Mixes[0].Name, "mix:compress+db");
  EXPECT_EQ(Mixes[1].Name, "mix:db+javac+mpegaudio");
  EXPECT_EQ(Mixes[2].Name, "mix:db@z1.20+compress");
  for (const WorkloadProfile &P : Mixes)
    EXPECT_TRUE(P.isMix());
}

TEST(Mix, GeneratesTenantTaggedProgram) {
  WorkloadProfile Mix =
      makeMixProfile({*findProfile("compress"), *findProfile("db")});
  GeneratedWorkload W = WorkloadGenerator::generate(Mix);
  EXPECT_TRUE(W.Prog.isFinalized());
  // Per tenant: leaves + mids + regions + per-region scanner; plus the one
  // untagged interleaving main.
  uint32_t Expected = 1;
  for (const WorkloadProfile &T : Mix.Tenants)
    Expected += T.NumLeaves + T.NumMids + 2 * T.NumRegions;
  ASSERT_EQ(W.Prog.numMethods(), Expected);
  EXPECT_EQ(W.Prog.maxTenant(), 2u);
  uint32_t PerTenant[3] = {0, 0, 0};
  for (uint32_t Id = 0; Id != W.Prog.numMethods(); ++Id) {
    uint16_t T = W.Prog.method(Id).Tenant;
    ASSERT_LE(T, 2u);
    ++PerTenant[T];
  }
  EXPECT_EQ(PerTenant[0], 1u) << "only main is untagged";
  const WorkloadProfile &T1 = Mix.Tenants[0], &T2 = Mix.Tenants[1];
  EXPECT_EQ(PerTenant[1], T1.NumLeaves + T1.NumMids + 2 * T1.NumRegions);
  EXPECT_EQ(PerTenant[2], T2.NumLeaves + T2.NumMids + 2 * T2.NumRegions);
}

TEST(Mix, RunsUnderTheVmDeterministically) {
  WorkloadProfile Mix =
      makeMixProfile({*findProfile("compress"), *findProfile("db")});
  GeneratedWorkload A = WorkloadGenerator::generate(Mix);
  GeneratedWorkload B = WorkloadGenerator::generate(Mix);
  Interpreter IA(A.Prog), IB(B.Prog);
  DynInst DA, DB;
  for (int I = 0; I != 200000; ++I) {
    IA.step(DA);
    IB.step(DB);
    ASSERT_EQ(DA.PC, DB.PC);
    ASSERT_EQ(DA.MemAddr, DB.MemAddr);
  }
  EXPECT_FALSE(IA.isHalted());
}

TEST(Mix, SingleTenantProfilesCarryNoTags) {
  GeneratedWorkload W = WorkloadGenerator::generate(*findProfile("db"));
  EXPECT_EQ(W.Prog.maxTenant(), kNoTenant);
}
