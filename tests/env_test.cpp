//===- tests/env_test.cpp -------------------------------------------------==//
//
// Strict environment-variable parsing: DYNACE_INSTR_BUDGET / DYNACE_JOBS
// must reject non-numeric, negative, trailing-garbage and overflowing
// values with a fatal diagnostic instead of silently simulating with a
// misread knob.
//
//===----------------------------------------------------------------------===//

#include "sim/ExperimentRunner.h"
#include "support/Env.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace dynace;

TEST(EnvParsing, AcceptsPlainDecimal) {
  EXPECT_EQ(parseUnsignedInt("0"), 0u);
  EXPECT_EQ(parseUnsignedInt("42"), 42u);
  EXPECT_EQ(parseUnsignedInt("18446744073709551615"), UINT64_MAX);
}

TEST(EnvParsing, RejectsMalformed) {
  EXPECT_FALSE(parseUnsignedInt(nullptr).has_value());
  EXPECT_FALSE(parseUnsignedInt("").has_value());
  EXPECT_FALSE(parseUnsignedInt("abc").has_value());
  EXPECT_FALSE(parseUnsignedInt("-4").has_value());    // strtoull wraps this.
  EXPECT_FALSE(parseUnsignedInt("+4").has_value());
  EXPECT_FALSE(parseUnsignedInt("10x").has_value());   // Trailing garbage.
  EXPECT_FALSE(parseUnsignedInt("3.5").has_value());
  EXPECT_FALSE(parseUnsignedInt(" 7").has_value());    // No whitespace.
  EXPECT_FALSE(parseUnsignedInt("0x10").has_value());  // No base prefixes.
  // One past UINT64_MAX overflows.
  EXPECT_FALSE(parseUnsignedInt("18446744073709551616").has_value());
}

TEST(EnvParsing, UnsetYieldsDefaultWithoutRangeCheck) {
  unsetenv("DYNACE_TEST_KNOB");
  // Default 0 is returned even though the range floor is 1 (out-of-band
  // "unset" marker).
  EXPECT_EQ(envUnsignedOr("DYNACE_TEST_KNOB", 0, 1, 100), 0u);
  setenv("DYNACE_TEST_KNOB", "", 1);
  EXPECT_EQ(envUnsignedOr("DYNACE_TEST_KNOB", 7, 1, 100), 7u);
  unsetenv("DYNACE_TEST_KNOB");
}

TEST(EnvParsing, SetValueIsParsedAndRangeChecked) {
  setenv("DYNACE_TEST_KNOB", "64", 1);
  EXPECT_EQ(envUnsignedOr("DYNACE_TEST_KNOB", 0, 1, 100), 64u);
  unsetenv("DYNACE_TEST_KNOB");
}

TEST(EnvParsingDeathTest, GarbageIsFatal) {
  setenv("DYNACE_TEST_KNOB", "banana", 1);
  EXPECT_EXIT(envUnsignedOr("DYNACE_TEST_KNOB", 0),
              testing::ExitedWithCode(2), "not a valid non-negative");
  setenv("DYNACE_TEST_KNOB", "-3", 1);
  EXPECT_EXIT(envUnsignedOr("DYNACE_TEST_KNOB", 0),
              testing::ExitedWithCode(2), "not a valid non-negative");
  setenv("DYNACE_TEST_KNOB", "101", 1);
  EXPECT_EXIT(envUnsignedOr("DYNACE_TEST_KNOB", 0, 1, 100),
              testing::ExitedWithCode(2), "out of range");
  unsetenv("DYNACE_TEST_KNOB");
}

TEST(EnvParsingDeathTest, InstrBudgetGarbageIsFatal) {
  setenv("DYNACE_INSTR_BUDGET", "2e6", 1);
  EXPECT_EXIT(ExperimentRunner::defaultOptions(),
              testing::ExitedWithCode(2), "DYNACE_INSTR_BUDGET");
  unsetenv("DYNACE_INSTR_BUDGET");
}

TEST(EnvParsingDeathTest, JobsGarbageIsFatal) {
  setenv("DYNACE_JOBS", "-2", 1);
  EXPECT_EXIT(ThreadPool::defaultThreadCount(), testing::ExitedWithCode(2),
              "DYNACE_JOBS");
  setenv("DYNACE_JOBS", "0", 1);
  EXPECT_EXIT(ThreadPool::defaultThreadCount(), testing::ExitedWithCode(2),
              "out of range");
  unsetenv("DYNACE_JOBS");
}

TEST(EnvString, UnsetOrEmptyYieldsDefault) {
  unsetenv("DYNACE_TEST_STR");
  EXPECT_EQ(envString("DYNACE_TEST_STR"), "");
  EXPECT_EQ(envString("DYNACE_TEST_STR", "fallback"), "fallback");
  setenv("DYNACE_TEST_STR", "", 1);
  EXPECT_EQ(envString("DYNACE_TEST_STR", "fallback"), "fallback");
  setenv("DYNACE_TEST_STR", "trace.json", 1);
  EXPECT_EQ(envString("DYNACE_TEST_STR", "fallback"), "trace.json");
  unsetenv("DYNACE_TEST_STR");
}

TEST(EnvBool, AcceptsCanonicalSpellingsOnly) {
  unsetenv("DYNACE_TEST_BOOL");
  EXPECT_TRUE(*envBoolChecked("DYNACE_TEST_BOOL", true));
  EXPECT_FALSE(*envBoolChecked("DYNACE_TEST_BOOL", false));
  for (const char *V : {"1", "true", "on"}) {
    setenv("DYNACE_TEST_BOOL", V, 1);
    EXPECT_TRUE(*envBoolChecked("DYNACE_TEST_BOOL", false)) << V;
  }
  for (const char *V : {"0", "false", "off"}) {
    setenv("DYNACE_TEST_BOOL", V, 1);
    EXPECT_FALSE(*envBoolChecked("DYNACE_TEST_BOOL", true)) << V;
  }
  // Strict parse: anything else is a structured error, not a guess.
  for (const char *V : {"yes", "TRUE", "2", " 1", "banana"}) {
    setenv("DYNACE_TEST_BOOL", V, 1);
    Expected<bool> E = envBoolChecked("DYNACE_TEST_BOOL", false);
    ASSERT_FALSE(E.ok()) << V;
    EXPECT_EQ(E.status().code(), ErrorCode::InvalidInput) << V;
    EXPECT_NE(E.status().message().find("DYNACE_TEST_BOOL"),
              std::string::npos);
  }
  unsetenv("DYNACE_TEST_BOOL");
}

TEST(EnvBoolDeathTest, GarbageIsFatal) {
  setenv("DYNACE_TEST_BOOL", "maybe", 1);
  EXPECT_EXIT(envBoolOr("DYNACE_TEST_BOOL", false),
              testing::ExitedWithCode(2), "DYNACE_TEST_BOOL");
  unsetenv("DYNACE_TEST_BOOL");
}

TEST(EnvParsing, InstrBudgetAndJobsHonorValidValues) {
  setenv("DYNACE_INSTR_BUDGET", "123456", 1);
  EXPECT_EQ(ExperimentRunner::defaultOptions().MaxInstructions, 123456u);
  unsetenv("DYNACE_INSTR_BUDGET");
  EXPECT_EQ(ExperimentRunner::defaultOptions().MaxInstructions, 0u);

  setenv("DYNACE_JOBS", "3", 1);
  EXPECT_EQ(ThreadPool::defaultThreadCount(), 3u);
  unsetenv("DYNACE_JOBS");
  EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
}
