//===- tests/analysis_test.cpp - CFG / call graph / verifier tests --------==//
//
// Coverage contract: every DiagKind has at least one malformed fixture
// here that triggers it (and a well-formed near-miss that does not), so a
// verifier regression that silently stops reporting a defect class fails
// this suite, not a downstream simulation.
//
//===----------------------------------------------------------------------===//

#include "analysis/Cfg.h"
#include "analysis/Fusion.h"
#include "analysis/Verifier.h"
#include "isa/MethodBuilder.h"
#include "workloads/WorkloadGenerator.h"
#include "workloads/WorkloadProfile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

using namespace dynace;
using namespace dynace::analysis;

namespace {

// ---------------------------------------------------- fixture construction
//
// Malformed fixtures are assembled from raw Instructions (MethodBuilder
// and Program::finalize would reject them); the verifier runs fine on
// unfinalized programs.

Instruction ins(Opcode Op) {
  Instruction I;
  I.Op = Op;
  return I;
}

Instruction iconst(uint8_t Dst, int64_t Imm) {
  Instruction I = ins(Opcode::IConst);
  I.Dst = Dst;
  I.Imm = Imm;
  return I;
}

Instruction addi(uint8_t Dst, uint8_t Src, int64_t Imm) {
  Instruction I = ins(Opcode::AddI);
  I.Dst = Dst;
  I.Src1 = Src;
  I.Imm = Imm;
  return I;
}

Instruction bri(uint8_t Src, int64_t CmpImm, int64_t Target) {
  Instruction I = ins(Opcode::BrI);
  I.Cond = CondKind::Lt;
  I.Src1 = Src;
  I.Aux = CmpImm;
  I.Imm = Target;
  return I;
}

Instruction jmp(int64_t Target) {
  Instruction I = ins(Opcode::Jmp);
  I.Imm = Target;
  return I;
}

Instruction call(MethodId Callee, uint8_t FirstArg = kNoReg,
                 uint8_t NumArgs = kNoReg) {
  Instruction I = ins(Opcode::Call);
  I.Dst = 1;
  I.Src1 = FirstArg;
  I.Src2 = NumArgs;
  I.Imm = static_cast<int64_t>(Callee);
  return I;
}

Instruction ret(uint8_t Value) {
  Instruction I = ins(Opcode::Ret);
  I.Src1 = Value;
  return I;
}

/// One-method program from a raw code vector.
Program makeProgram(std::vector<Instruction> Code,
                    const std::string &Name = "m") {
  Program P;
  Method M;
  M.Name = Name;
  M.Code = std::move(Code);
  P.addMethod(std::move(M));
  P.setEntry(0);
  return P;
}

/// Appends another method; \returns its id.
MethodId addMethod(Program &P, std::vector<Instruction> Code,
                   const std::string &Name) {
  Method M;
  M.Name = Name;
  M.Code = std::move(Code);
  return P.addMethod(std::move(M));
}

bool hasKind(const std::vector<Diagnostic> &Diags, DiagKind Kind) {
  return std::any_of(Diags.begin(), Diags.end(),
                     [Kind](const Diagnostic &D) { return D.Kind == Kind; });
}

// A minimal well-formed method: loads a constant and returns it.
std::vector<Instruction> cleanCode() { return {iconst(1, 7), ret(1)}; }

// ----------------------------------------------------------- CFG structure

TEST(Cfg, StraightLineIsOneBlock) {
  Method M;
  M.Code = {iconst(1, 0), addi(1, 1, 1), ret(1)};
  Cfg G = Cfg::build(M);
  ASSERT_EQ(G.numBlocks(), 1u);
  EXPECT_EQ(G.blocks()[0].First, 0u);
  EXPECT_EQ(G.blocks()[0].Last, 2u);
  EXPECT_FALSE(G.fallsOffEnd());
}

TEST(Cfg, LoopSplitsAtBranchTarget) {
  // 0: iconst | 1: addi (loop head) | 2: bri -> 1 | 3: ret
  Method M;
  M.Code = {iconst(1, 0), addi(1, 1, 1), bri(1, 100, 1), ret(1)};
  Cfg G = Cfg::build(M);
  ASSERT_EQ(G.numBlocks(), 3u);
  EXPECT_EQ(G.blockContaining(0), 0u);
  EXPECT_EQ(G.blockContaining(1), 1u);
  EXPECT_EQ(G.blockContaining(2), 1u);
  EXPECT_EQ(G.blockContaining(3), 2u);
  // bb1 (the loop body) has two successors: itself and the exit block.
  const BasicBlock &Body = G.blocks()[1];
  ASSERT_EQ(Body.Succs.size(), 2u);
  EXPECT_TRUE(std::count(Body.Succs.begin(), Body.Succs.end(), 1u));
  EXPECT_TRUE(std::count(Body.Succs.begin(), Body.Succs.end(), 2u));
  // Preds mirror succs: the body is its own predecessor.
  EXPECT_TRUE(std::count(Body.Preds.begin(), Body.Preds.end(), 1u));
}

TEST(Cfg, CallDoesNotEndABlock) {
  Method M;
  M.Code = {iconst(1, 0), call(0), addi(1, 1, 1), ret(1)};
  Cfg G = Cfg::build(M);
  EXPECT_EQ(G.numBlocks(), 1u);
}

TEST(Cfg, FallsOffEndWhenLastInstrIsNotATerminator) {
  Method M;
  M.Code = {iconst(1, 0), addi(1, 1, 1)};
  EXPECT_TRUE(Cfg::build(M).fallsOffEnd());
  M.Code.push_back(ret(1));
  EXPECT_FALSE(Cfg::build(M).fallsOffEnd());
}

TEST(Cfg, DotDumpNamesTheMethodAndItsBlocks) {
  Method M;
  M.Name = "loopy";
  M.Code = {iconst(1, 0), bri(1, 10, 0)};
  // Self-contained check that the DOT dump is a digraph with block nodes.
  std::string Dot = Cfg::build(M).toDot(M);
  EXPECT_NE(Dot.find("digraph"), std::string::npos);
  EXPECT_NE(Dot.find("loopy"), std::string::npos);
  EXPECT_NE(Dot.find("bb0"), std::string::npos);
}

// -------------------------------------------------------------- call graph

TEST(CallGraph, CollectsCallSitesInInstructionOrder) {
  Program P = makeProgram({iconst(1, 0), ret(1)}, "leaf");
  MethodId Mid = addMethod(P, {call(0), addi(1, 1, 1), call(0), ret(1)},
                           "mid");
  CallGraph CG = CallGraph::build(P);
  ASSERT_EQ(CG.numMethods(), 2u);
  ASSERT_EQ(CG.callSites(Mid).size(), 2u);
  EXPECT_EQ(CG.callSites(Mid)[0].Instr, 0u);
  EXPECT_EQ(CG.callSites(Mid)[1].Instr, 2u);
  EXPECT_EQ(CG.callSites(Mid)[0].Callee, 0u);
  EXPECT_TRUE(CG.findCycle().empty());
}

TEST(CallGraph, FindsARecursionCycleInCallOrder) {
  // a -> b -> a: the cycle must come back in call order.
  Program P = makeProgram({iconst(1, 0), call(1), ret(1)}, "a");
  addMethod(P, {iconst(1, 0), call(0), ret(1)}, "b");
  std::vector<MethodId> Cycle = CallGraph::build(P).findCycle();
  ASSERT_EQ(Cycle.size(), 2u);
  // Each cycle element calls the next (wrapping): verify the edges exist.
  CallGraph CG = CallGraph::build(P);
  for (size_t I = 0; I != Cycle.size(); ++I) {
    MethodId Caller = Cycle[I];
    MethodId Callee = Cycle[(I + 1) % Cycle.size()];
    bool Edge = false;
    for (const CallSite &S : CG.callSites(Caller))
      Edge |= S.Callee == Callee;
    EXPECT_TRUE(Edge) << "missing cycle edge " << Caller << "->" << Callee;
  }
}

TEST(CallGraph, ReachableFromFollowsCallEdges) {
  Program P = makeProgram({iconst(1, 0), ret(1)}, "leaf");
  MethodId Mid = addMethod(P, {call(0), ret(1)}, "mid");
  MethodId Orphan = addMethod(P, cleanCode(), "orphan");
  std::vector<bool> R = CallGraph::build(P).reachableFrom(Mid);
  EXPECT_TRUE(R[Mid]);
  EXPECT_TRUE(R[0]);
  EXPECT_FALSE(R[Orphan]);
}

// ------------------------------------------------- verifier: defect table

struct DefectCase {
  const char *Name;
  DiagKind Expected;
  Program (*Build)();
};

class VerifierDefectTest : public ::testing::TestWithParam<DefectCase> {};

TEST_P(VerifierDefectTest, ReportsTheExpectedKind) {
  const DefectCase &C = GetParam();
  Program P = C.Build();
  std::vector<Diagnostic> Diags = verifyProgram(P);
  EXPECT_TRUE(hasKind(Diags, C.Expected))
      << C.Name << ": expected a " << diagKindName(C.Expected)
      << " diagnostic";
  // The Status wrapper folds the FIRST diagnostic — which may belong to a
  // different check group — but must always classify as InvalidInput with
  // a dynalint[...] prefix.
  Status S = verifyProgramStatus(P);
  ASSERT_FALSE(S.ok()) << C.Name;
  EXPECT_EQ(S.code(), ErrorCode::InvalidInput);
  EXPECT_NE(S.message().find("dynalint["), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, VerifierDefectTest,
    ::testing::Values(
        DefectCase{"empty-method", DiagKind::EmptyMethod,
                   [] { return makeProgram({}); }},
        DefectCase{"bad-register", DiagKind::BadRegister,
                   [] {
                     return makeProgram({iconst(40, 0), ret(1)});
                   }},
        DefectCase{"bad-branch-target", DiagKind::BadBranchTarget,
                   [] { return makeProgram({jmp(99), ret(1)}); }},
        DefectCase{"bad-call-target", DiagKind::BadCallTarget,
                   [] {
                     return makeProgram({iconst(1, 0), call(7), ret(1)});
                   }},
        DefectCase{"bad-call-window", DiagKind::BadCallWindow,
                   [] {
                     // Window [r30, +5) leaves the 32-register file.
                     return makeProgram(
                         {iconst(1, 0), call(0, 30, 5), ret(1)});
                   }},
        DefectCase{"off-end-fallthrough", DiagKind::OffEndFallthrough,
                   [] {
                     return makeProgram({iconst(1, 0), addi(1, 1, 1)});
                   }},
        DefectCase{"dead-block", DiagKind::DeadBlock,
                   [] {
                     // instr 1 is unreachable (jmp skips it).
                     return makeProgram({jmp(2), addi(1, 1, 1), ret(1)});
                   }},
        DefectCase{"unreachable-exit", DiagKind::UnreachableExit,
                   [] {
                     // The skipped instruction IS an exit: its hook can
                     // never fire.
                     return makeProgram({jmp(2), ret(1), ret(1)});
                   }},
        DefectCase{"no-exit-path", DiagKind::NoExitPath,
                   [] {
                     // instr 1 jumps to itself; no ret/halt anywhere
                     // beyond it.
                     return makeProgram({iconst(1, 0), jmp(1)});
                   }},
        DefectCase{"reentrant-entry", DiagKind::ReentrantEntry,
                   [] {
                     // Loop back to instruction 0 = the entry hook point.
                     return makeProgram({addi(1, 1, 1), bri(1, 10, 0),
                                         ret(1)});
                   }},
        DefectCase{"reconfig-interval-entry", DiagKind::ReconfigInterval,
                   [] {
                     // Call as the first instruction: coincident with the
                     // method-entry reconfiguration point.
                     Program P = makeProgram({call(1), ret(1)}, "caller");
                     addMethod(P, cleanCode(), "leaf");
                     return P;
                   }},
        DefectCase{"reconfig-interval-call-call", DiagKind::ReconfigInterval,
                   [] {
                     // Two adjacent calls: zero instructions between the
                     // reconfiguration points.
                     Program P = makeProgram(
                         {iconst(1, 0), call(1), call(1), ret(1)},
                         "caller");
                     addMethod(P, cleanCode(), "leaf");
                     return P;
                   }},
        DefectCase{"unbalanced-stack", DiagKind::UnbalancedStack,
                   [] {
                     // Direct self-recursion.
                     return makeProgram(
                         {iconst(1, 0), call(0), ret(1)}, "rec");
                   }},
        DefectCase{"bad-entry-method", DiagKind::BadEntryMethod,
                   [] {
                     Program P = makeProgram(cleanCode());
                     P.setEntry(5);
                     return P;
                   }}),
    [](const ::testing::TestParamInfo<DefectCase> &Info) {
      std::string Name = Info.param.Name;
      std::replace(Name.begin(), Name.end(), '-', '_');
      return Name;
    });

// --------------------------------------------- verifier: clean near-misses

TEST(Verifier, CleanProgramHasNoDiagnostics) {
  Program P = makeProgram(cleanCode());
  EXPECT_TRUE(verifyProgram(P).empty());
  EXPECT_TRUE(verifyProgramStatus(P).ok());
}

TEST(Verifier, LoopWithExitIsClean) {
  // Loop head at instr 1 (NOT 0), bounded, with a reachable ret.
  Program P = makeProgram({iconst(1, 0), addi(1, 1, 1), bri(1, 100, 1),
                           ret(1)});
  EXPECT_TRUE(verifyProgram(P).empty());
}

TEST(Verifier, SpacedCallsAreCleanAtDefaultGap) {
  // One instruction between entry and the call, and between the calls:
  // gap 1 >= ReconfigMinGap 1.
  Program P = makeProgram(
      {iconst(1, 0), call(1), addi(1, 1, 1), call(1), ret(1)}, "caller");
  addMethod(P, cleanCode(), "leaf");
  EXPECT_TRUE(verifyProgram(P).empty());
}

TEST(Verifier, EmptyProgramIsBadEntry) {
  Program P;
  std::vector<Diagnostic> Diags = verifyProgram(P);
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_EQ(Diags[0].Kind, DiagKind::BadEntryMethod);
}

// ----------------------------------------------------- verifier: options

TEST(VerifierOptions, LargerGapFlagsSpacedCalls) {
  Program P = makeProgram(
      {iconst(1, 0), call(1), addi(1, 1, 1), call(1), ret(1)}, "caller");
  addMethod(P, cleanCode(), "leaf");
  VerifierOptions O;
  O.ReconfigMinGap = 10;
  std::vector<Diagnostic> Diags = verifyProgram(P, O);
  EXPECT_TRUE(hasKind(Diags, DiagKind::ReconfigInterval));
  O.ReconfigMinGap = 0; // 0 disables the check entirely.
  EXPECT_TRUE(verifyProgram(P, O).empty());
}

TEST(VerifierOptions, DoAceChecksOffSkipsPlacementChecks) {
  Program P = makeProgram({iconst(1, 0), call(0), ret(1)}, "rec");
  VerifierOptions O;
  O.DoAceChecks = false;
  // Recursion (UnbalancedStack) and the reconfig check are ACE-only.
  EXPECT_TRUE(verifyProgram(P, O).empty());
}

TEST(VerifierOptions, FlagDeadBlocksOffSuppressesUnreachabilityDiags) {
  Program P = makeProgram({jmp(2), ret(1), ret(1)});
  VerifierOptions O;
  O.FlagDeadBlocks = false;
  std::vector<Diagnostic> Diags = verifyProgram(P, O);
  EXPECT_FALSE(hasKind(Diags, DiagKind::DeadBlock));
  EXPECT_FALSE(hasKind(Diags, DiagKind::UnreachableExit));
}

TEST(VerifierOptions, MaxDiagnosticsCapsTheReport) {
  // Every instruction has a bad register: far more defects than the cap.
  std::vector<Instruction> Code(10, iconst(40, 0));
  Code.push_back(ret(1));
  Program P = makeProgram(std::move(Code));
  VerifierOptions O;
  O.MaxDiagnostics = 3;
  EXPECT_EQ(verifyProgram(P, O).size(), 3u);
}

// ------------------------------------------------- diagnostics rendering

TEST(Diagnostic, RenderNamesMethodInstrAndKind) {
  Program P = makeProgram({jmp(99), ret(1)}, "broken");
  std::vector<Diagnostic> Diags = verifyProgram(P);
  ASSERT_FALSE(Diags.empty());
  std::string R = Diags[0].render(P);
  EXPECT_NE(R.find("method 'broken'"), std::string::npos);
  EXPECT_NE(R.find("instr 0"), std::string::npos);
  EXPECT_NE(R.find("[bad-branch-target]"), std::string::npos);
}

TEST(Diagnostic, StatusMessageCarriesTheKindTag) {
  Program P = makeProgram({iconst(1, 0), call(0), ret(1)}, "rec");
  Status S = verifyProgramStatus(P);
  ASSERT_FALSE(S.ok());
  EXPECT_NE(S.message().find("dynalint[unbalanced-stack]"),
            std::string::npos);
}

TEST(Diagnostic, KindNamesAreStableAndDistinct) {
  std::vector<std::string> Names;
  for (int K = 0; K <= static_cast<int>(DiagKind::FusionAcrossBoundary);
       ++K)
    Names.push_back(diagKindName(static_cast<DiagKind>(K)));
  std::vector<std::string> Sorted = Names;
  std::sort(Sorted.begin(), Sorted.end());
  EXPECT_EQ(std::unique(Sorted.begin(), Sorted.end()), Sorted.end());
  EXPECT_EQ(Names.front(), "empty-method");
  EXPECT_EQ(Names.back(), "fusion-across-boundary");
}

// ------------------------------------------------- finalize strict mode

TEST(FinalizeStrict, StructurallyValidButUnverifiableProgramIsRejected) {
  // Passes finalize's structural checks (targets in range, terminator
  // present) but has a dead block — only the strict hook catches it.
  Program P = makeProgram({jmp(2), addi(1, 1, 1), ret(1)});
  EXPECT_TRUE(P.finalize().ok());

  Program Q = makeProgram({jmp(2), addi(1, 1, 1), ret(1)});
  Status S = Q.finalize(verifyProgramStatus);
  ASSERT_FALSE(S.ok());
  EXPECT_EQ(S.code(), ErrorCode::InvalidInput);
  EXPECT_NE(S.message().find("dynalint[dead-block]"), std::string::npos);
  EXPECT_FALSE(Q.isFinalized());
}

TEST(FinalizeStrict, CleanProgramFinalizesAndAssignsAddresses) {
  Program P = makeProgram(cleanCode());
  ASSERT_TRUE(P.finalize(verifyProgramStatus).ok());
  EXPECT_TRUE(P.isFinalized());
  EXPECT_EQ(P.method(0).CodeBase, kCodeBase);
}

// --------------------------------------------- generated-workload sweep

TEST(WorkloadSweep, EveryGeneratedBenchmarkVerifiesClean) {
  // The generator gates through finalize(verifyProgramStatus) already (it
  // fatalError()s otherwise); re-verifying here reports ALL diagnostics
  // with full context if the gate and the verifier ever drift.
  for (const WorkloadProfile &Profile : specjvm98Profiles()) {
    GeneratedWorkload W = WorkloadGenerator::generate(Profile);
    std::vector<Diagnostic> Diags = verifyProgram(W.Prog);
    std::string Rendered;
    for (const Diagnostic &D : Diags)
      Rendered += D.render(W.Prog) + "\n";
    EXPECT_TRUE(Diags.empty())
        << Profile.Name << " has verifier diagnostics:\n" << Rendered;
    EXPECT_TRUE(W.Prog.isFinalized()) << Profile.Name;
  }
}

} // namespace

// ---------------------------------------------- fusion hook-boundary rule
//
// verifyFusionPlan takes the plan as external input (the specializer's
// selection), so its defect classes get their own table here rather than
// riding the verifyProgram DefectCase suite. Every way a plan can move a
// DO hook point has a fixture; dynalint --all runs the same check over
// the fusible-run-derived plans of every generated benchmark.

namespace {

/// caller: two blocks (a loop body entered at instr 3) plus a leaf
/// callee — enough shape for spans-call and spans-block fixtures.
///   0: iconst  1: addi  2: call leaf  |  3: addi  4: addi  5: bri->3  |
///   6: ret
Program fusionFixture() {
  Program P = makeProgram({iconst(1, 0), addi(1, 1, 1), call(1),
                           addi(1, 1, 1), addi(2, 1, 1), bri(1, 10, 3),
                           ret(1)},
                          "caller");
  addMethod(P, cleanCode(), "leaf");
  return P;
}

/// One straight-line block ending in Ret: spans-ret and off-end fixtures.
Program straightLineFixture() {
  return makeProgram({iconst(1, 0), addi(1, 1, 1), addi(2, 1, 1), ret(1)});
}

} // namespace

TEST(FusionPlan, SpanningACallIsFlagged) {
  Program P = fusionFixture();
  std::vector<Diagnostic> Diags =
      verifyFusionPlan(P, 0, {{/*First=*/1, /*Len=*/2}});
  ASSERT_TRUE(hasKind(Diags, DiagKind::FusionAcrossBoundary));
  EXPECT_NE(Diags[0].Message.find("method-boundary"), std::string::npos);
}

TEST(FusionPlan, SpanningARetIsFlagged) {
  Program P = straightLineFixture();
  std::vector<Diagnostic> Diags =
      verifyFusionPlan(P, 0, {{/*First=*/2, /*Len=*/2}});
  ASSERT_TRUE(hasKind(Diags, DiagKind::FusionAcrossBoundary));
  EXPECT_NE(Diags[0].Message.find("method-boundary"), std::string::npos);
}

TEST(FusionPlan, CrossingABasicBlockIsFlagged) {
  // [2, +2) starts in the entry block and reaches into the loop body the
  // bri at 5 targets — a branch may enter mid-group.
  Program P = fusionFixture();
  std::vector<Diagnostic> Diags =
      verifyFusionPlan(P, 0, {{/*First=*/2, /*Len=*/2}});
  ASSERT_TRUE(hasKind(Diags, DiagKind::FusionAcrossBoundary));
  EXPECT_NE(Diags[0].Message.find("basic-block"), std::string::npos);
}

TEST(FusionPlan, LeavingTheMethodIsFlagged) {
  Program P = straightLineFixture();
  std::vector<Diagnostic> Diags =
      verifyFusionPlan(P, 0, {{/*First=*/3, /*Len=*/2}});
  ASSERT_TRUE(hasKind(Diags, DiagKind::FusionAcrossBoundary));
  EXPECT_NE(Diags[0].Message.find("leaves the method"), std::string::npos);
}

TEST(FusionPlan, OverlappingGroupsAreFlagged) {
  Program P = straightLineFixture();
  std::vector<Diagnostic> Diags =
      verifyFusionPlan(P, 0, {{0, 2}, {1, 2}});
  ASSERT_TRUE(hasKind(Diags, DiagKind::FusionAcrossBoundary));
  EXPECT_NE(Diags[0].Message.find("overlap"), std::string::npos);
}

TEST(FusionPlan, BadGroupLengthIsFlagged) {
  Program P = straightLineFixture();
  for (uint32_t Len : {0u, 1u, 4u}) {
    std::vector<Diagnostic> Diags = verifyFusionPlan(P, 0, {{0, Len}});
    ASSERT_TRUE(hasKind(Diags, DiagKind::FusionAcrossBoundary)) << Len;
    EXPECT_NE(Diags[0].Message.find("pairs and triples"),
              std::string::npos);
  }
}

TEST(FusionPlan, TailConditionalBranchIsAdmissible) {
  // [3, +3) = addi addi bri, all inside the loop-body block with the
  // branch last — the one position a cond branch may be fused at.
  Program P = fusionFixture();
  EXPECT_TRUE(verifyFusionPlan(P, 0, {{3, 3}}).empty());
  EXPECT_TRUE(verifyFusionPlanStatus(P, 0, {{3, 3}}).ok());
}

TEST(FusionPlan, CleanPlanPassesAndStatusTagsFailures) {
  Program P = straightLineFixture();
  EXPECT_TRUE(verifyFusionPlanStatus(P, 0, {{0, 2}}).ok());
  Status S = verifyFusionPlanStatus(P, 0, {{2, 2}});
  ASSERT_FALSE(S.ok());
  EXPECT_EQ(S.code(), ErrorCode::InvalidInput);
  EXPECT_NE(S.message().find("dynalint[fusion-across-boundary]"),
            std::string::npos);
}

TEST(FusionPlan, FusibleRunsNeverProduceAFlaggedPlan) {
  // The selector/verifier agreement dynalint asserts per benchmark, in
  // miniature: the densest plan derivable from fusibleRuns must verify
  // clean on every generated benchmark's entry method.
  for (const WorkloadProfile &Prof : specjvm98Profiles()) {
    GeneratedWorkload W = WorkloadGenerator::generate(Prof);
    const Program &P = W.Prog;
    for (MethodId Id = 0; Id != P.numMethods(); ++Id) {
      const Method &M = P.method(Id);
      Cfg G = Cfg::build(M);
      std::vector<FusionGroup> Plan;
      for (const FusionRun &R : fusibleRuns(M, G)) {
        uint32_t I = R.First;
        const uint32_t End = R.First + R.Len;
        while (End - I >= 2) {
          uint32_t Len = End - I >= 3 ? 3 : 2;
          Plan.push_back({I, Len});
          I += Len;
        }
      }
      EXPECT_TRUE(verifyFusionPlan(P, Id, Plan).empty())
          << Prof.Name << " method " << Id;
    }
  }
}
