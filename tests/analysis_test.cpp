//===- tests/analysis_test.cpp - CFG / call graph / verifier tests --------==//
//
// Coverage contract: every DiagKind has at least one malformed fixture
// here that triggers it (and a well-formed near-miss that does not), so a
// verifier regression that silently stops reporting a defect class fails
// this suite, not a downstream simulation.
//
//===----------------------------------------------------------------------===//

#include "analysis/Cfg.h"
#include "analysis/Dataflow.h"
#include "analysis/Fusion.h"
#include "analysis/Verifier.h"
#include "isa/MethodBuilder.h"
#include "workloads/WorkloadGenerator.h"
#include "workloads/WorkloadProfile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

using namespace dynace;
using namespace dynace::analysis;

namespace {

// ---------------------------------------------------- fixture construction
//
// Malformed fixtures are assembled from raw Instructions (MethodBuilder
// and Program::finalize would reject them); the verifier runs fine on
// unfinalized programs.

Instruction ins(Opcode Op) {
  Instruction I;
  I.Op = Op;
  return I;
}

Instruction iconst(uint8_t Dst, int64_t Imm) {
  Instruction I = ins(Opcode::IConst);
  I.Dst = Dst;
  I.Imm = Imm;
  return I;
}

Instruction addi(uint8_t Dst, uint8_t Src, int64_t Imm) {
  Instruction I = ins(Opcode::AddI);
  I.Dst = Dst;
  I.Src1 = Src;
  I.Imm = Imm;
  return I;
}

Instruction bri(uint8_t Src, int64_t CmpImm, int64_t Target) {
  Instruction I = ins(Opcode::BrI);
  I.Cond = CondKind::Lt;
  I.Src1 = Src;
  I.Aux = CmpImm;
  I.Imm = Target;
  return I;
}

Instruction jmp(int64_t Target) {
  Instruction I = ins(Opcode::Jmp);
  I.Imm = Target;
  return I;
}

Instruction call(MethodId Callee, uint8_t FirstArg = kNoReg,
                 uint8_t NumArgs = kNoReg) {
  Instruction I = ins(Opcode::Call);
  I.Dst = 1;
  I.Src1 = FirstArg;
  I.Src2 = NumArgs;
  I.Imm = static_cast<int64_t>(Callee);
  return I;
}

Instruction ret(uint8_t Value) {
  Instruction I = ins(Opcode::Ret);
  I.Src1 = Value;
  return I;
}

/// One-method program from a raw code vector.
Program makeProgram(std::vector<Instruction> Code,
                    const std::string &Name = "m") {
  Program P;
  Method M;
  M.Name = Name;
  M.Code = std::move(Code);
  P.addMethod(std::move(M));
  P.setEntry(0);
  return P;
}

/// Appends another method; \returns its id.
MethodId addMethod(Program &P, std::vector<Instruction> Code,
                   const std::string &Name) {
  Method M;
  M.Name = Name;
  M.Code = std::move(Code);
  return P.addMethod(std::move(M));
}

bool hasKind(const std::vector<Diagnostic> &Diags, DiagKind Kind) {
  return std::any_of(Diags.begin(), Diags.end(),
                     [Kind](const Diagnostic &D) { return D.Kind == Kind; });
}

// A minimal well-formed method: loads a constant and returns it.
std::vector<Instruction> cleanCode() { return {iconst(1, 7), ret(1)}; }

// ----------------------------------------------------------- CFG structure

TEST(Cfg, StraightLineIsOneBlock) {
  Method M;
  M.Code = {iconst(1, 0), addi(1, 1, 1), ret(1)};
  Cfg G = Cfg::build(M);
  ASSERT_EQ(G.numBlocks(), 1u);
  EXPECT_EQ(G.blocks()[0].First, 0u);
  EXPECT_EQ(G.blocks()[0].Last, 2u);
  EXPECT_FALSE(G.fallsOffEnd());
}

TEST(Cfg, LoopSplitsAtBranchTarget) {
  // 0: iconst | 1: addi (loop head) | 2: bri -> 1 | 3: ret
  Method M;
  M.Code = {iconst(1, 0), addi(1, 1, 1), bri(1, 100, 1), ret(1)};
  Cfg G = Cfg::build(M);
  ASSERT_EQ(G.numBlocks(), 3u);
  EXPECT_EQ(G.blockContaining(0), 0u);
  EXPECT_EQ(G.blockContaining(1), 1u);
  EXPECT_EQ(G.blockContaining(2), 1u);
  EXPECT_EQ(G.blockContaining(3), 2u);
  // bb1 (the loop body) has two successors: itself and the exit block.
  const BasicBlock &Body = G.blocks()[1];
  ASSERT_EQ(Body.Succs.size(), 2u);
  EXPECT_TRUE(std::count(Body.Succs.begin(), Body.Succs.end(), 1u));
  EXPECT_TRUE(std::count(Body.Succs.begin(), Body.Succs.end(), 2u));
  // Preds mirror succs: the body is its own predecessor.
  EXPECT_TRUE(std::count(Body.Preds.begin(), Body.Preds.end(), 1u));
}

TEST(Cfg, CallDoesNotEndABlock) {
  Method M;
  M.Code = {iconst(1, 0), call(0), addi(1, 1, 1), ret(1)};
  Cfg G = Cfg::build(M);
  EXPECT_EQ(G.numBlocks(), 1u);
}

TEST(Cfg, FallsOffEndWhenLastInstrIsNotATerminator) {
  Method M;
  M.Code = {iconst(1, 0), addi(1, 1, 1)};
  EXPECT_TRUE(Cfg::build(M).fallsOffEnd());
  M.Code.push_back(ret(1));
  EXPECT_FALSE(Cfg::build(M).fallsOffEnd());
}

TEST(Cfg, DotDumpNamesTheMethodAndItsBlocks) {
  Method M;
  M.Name = "loopy";
  M.Code = {iconst(1, 0), bri(1, 10, 0)};
  // Self-contained check that the DOT dump is a digraph with block nodes.
  std::string Dot = Cfg::build(M).toDot(M);
  EXPECT_NE(Dot.find("digraph"), std::string::npos);
  EXPECT_NE(Dot.find("loopy"), std::string::npos);
  EXPECT_NE(Dot.find("bb0"), std::string::npos);
}

// -------------------------------------------------------------- call graph

TEST(CallGraph, CollectsCallSitesInInstructionOrder) {
  Program P = makeProgram({iconst(1, 0), ret(1)}, "leaf");
  MethodId Mid = addMethod(P, {call(0), addi(1, 1, 1), call(0), ret(1)},
                           "mid");
  CallGraph CG = CallGraph::build(P);
  ASSERT_EQ(CG.numMethods(), 2u);
  ASSERT_EQ(CG.callSites(Mid).size(), 2u);
  EXPECT_EQ(CG.callSites(Mid)[0].Instr, 0u);
  EXPECT_EQ(CG.callSites(Mid)[1].Instr, 2u);
  EXPECT_EQ(CG.callSites(Mid)[0].Callee, 0u);
  EXPECT_TRUE(CG.findCycle().empty());
}

TEST(CallGraph, FindsARecursionCycleInCallOrder) {
  // a -> b -> a: the cycle must come back in call order.
  Program P = makeProgram({iconst(1, 0), call(1), ret(1)}, "a");
  addMethod(P, {iconst(1, 0), call(0), ret(1)}, "b");
  std::vector<MethodId> Cycle = CallGraph::build(P).findCycle();
  ASSERT_EQ(Cycle.size(), 2u);
  // Each cycle element calls the next (wrapping): verify the edges exist.
  CallGraph CG = CallGraph::build(P);
  for (size_t I = 0; I != Cycle.size(); ++I) {
    MethodId Caller = Cycle[I];
    MethodId Callee = Cycle[(I + 1) % Cycle.size()];
    bool Edge = false;
    for (const CallSite &S : CG.callSites(Caller))
      Edge |= S.Callee == Callee;
    EXPECT_TRUE(Edge) << "missing cycle edge " << Caller << "->" << Callee;
  }
}

TEST(CallGraph, ReachableFromFollowsCallEdges) {
  Program P = makeProgram({iconst(1, 0), ret(1)}, "leaf");
  MethodId Mid = addMethod(P, {call(0), ret(1)}, "mid");
  MethodId Orphan = addMethod(P, cleanCode(), "orphan");
  std::vector<bool> R = CallGraph::build(P).reachableFrom(Mid);
  EXPECT_TRUE(R[Mid]);
  EXPECT_TRUE(R[0]);
  EXPECT_FALSE(R[Orphan]);
}

// ------------------------------------------------- verifier: defect table

struct DefectCase {
  const char *Name;
  DiagKind Expected;
  Program (*Build)();
};

class VerifierDefectTest : public ::testing::TestWithParam<DefectCase> {};

TEST_P(VerifierDefectTest, ReportsTheExpectedKind) {
  const DefectCase &C = GetParam();
  Program P = C.Build();
  std::vector<Diagnostic> Diags = verifyProgram(P);
  EXPECT_TRUE(hasKind(Diags, C.Expected))
      << C.Name << ": expected a " << diagKindName(C.Expected)
      << " diagnostic";
  // The Status wrapper folds the FIRST diagnostic — which may belong to a
  // different check group — but must always classify as InvalidInput with
  // a dynalint[...] prefix.
  Status S = verifyProgramStatus(P);
  ASSERT_FALSE(S.ok()) << C.Name;
  EXPECT_EQ(S.code(), ErrorCode::InvalidInput);
  EXPECT_NE(S.message().find("dynalint["), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, VerifierDefectTest,
    ::testing::Values(
        DefectCase{"empty-method", DiagKind::EmptyMethod,
                   [] { return makeProgram({}); }},
        DefectCase{"bad-register", DiagKind::BadRegister,
                   [] {
                     return makeProgram({iconst(40, 0), ret(1)});
                   }},
        DefectCase{"bad-branch-target", DiagKind::BadBranchTarget,
                   [] { return makeProgram({jmp(99), ret(1)}); }},
        DefectCase{"bad-call-target", DiagKind::BadCallTarget,
                   [] {
                     return makeProgram({iconst(1, 0), call(7), ret(1)});
                   }},
        DefectCase{"bad-call-window", DiagKind::BadCallWindow,
                   [] {
                     // Window [r30, +5) leaves the 32-register file.
                     return makeProgram(
                         {iconst(1, 0), call(0, 30, 5), ret(1)});
                   }},
        DefectCase{"off-end-fallthrough", DiagKind::OffEndFallthrough,
                   [] {
                     return makeProgram({iconst(1, 0), addi(1, 1, 1)});
                   }},
        DefectCase{"dead-block", DiagKind::DeadBlock,
                   [] {
                     // instr 1 is unreachable (jmp skips it).
                     return makeProgram({jmp(2), addi(1, 1, 1), ret(1)});
                   }},
        DefectCase{"unreachable-exit", DiagKind::UnreachableExit,
                   [] {
                     // The skipped instruction IS an exit: its hook can
                     // never fire.
                     return makeProgram({jmp(2), ret(1), ret(1)});
                   }},
        DefectCase{"no-exit-path", DiagKind::NoExitPath,
                   [] {
                     // instr 1 jumps to itself; no ret/halt anywhere
                     // beyond it.
                     return makeProgram({iconst(1, 0), jmp(1)});
                   }},
        DefectCase{"reentrant-entry", DiagKind::ReentrantEntry,
                   [] {
                     // Loop back to instruction 0 = the entry hook point.
                     return makeProgram({addi(1, 1, 1), bri(1, 10, 0),
                                         ret(1)});
                   }},
        DefectCase{"reconfig-interval-entry", DiagKind::ReconfigInterval,
                   [] {
                     // Call as the first instruction: coincident with the
                     // method-entry reconfiguration point.
                     Program P = makeProgram({call(1), ret(1)}, "caller");
                     addMethod(P, cleanCode(), "leaf");
                     return P;
                   }},
        DefectCase{"reconfig-interval-call-call", DiagKind::ReconfigInterval,
                   [] {
                     // Two adjacent calls: zero instructions between the
                     // reconfiguration points.
                     Program P = makeProgram(
                         {iconst(1, 0), call(1), call(1), ret(1)},
                         "caller");
                     addMethod(P, cleanCode(), "leaf");
                     return P;
                   }},
        DefectCase{"unbalanced-stack", DiagKind::UnbalancedStack,
                   [] {
                     // Direct self-recursion.
                     return makeProgram(
                         {iconst(1, 0), call(0), ret(1)}, "rec");
                   }},
        DefectCase{"bad-entry-method", DiagKind::BadEntryMethod,
                   [] {
                     Program P = makeProgram(cleanCode());
                     P.setEntry(5);
                     return P;
                   }}),
    [](const ::testing::TestParamInfo<DefectCase> &Info) {
      std::string Name = Info.param.Name;
      std::replace(Name.begin(), Name.end(), '-', '_');
      return Name;
    });

// --------------------------------------------- verifier: clean near-misses

TEST(Verifier, CleanProgramHasNoDiagnostics) {
  Program P = makeProgram(cleanCode());
  EXPECT_TRUE(verifyProgram(P).empty());
  EXPECT_TRUE(verifyProgramStatus(P).ok());
}

TEST(Verifier, LoopWithExitIsClean) {
  // Loop head at instr 1 (NOT 0), bounded, with a reachable ret.
  Program P = makeProgram({iconst(1, 0), addi(1, 1, 1), bri(1, 100, 1),
                           ret(1)});
  EXPECT_TRUE(verifyProgram(P).empty());
}

TEST(Verifier, SpacedCallsAreCleanAtDefaultGap) {
  // One instruction between entry and the call, and between the calls:
  // gap 1 >= ReconfigMinGap 1.
  Program P = makeProgram(
      {iconst(1, 0), call(1), addi(1, 1, 1), call(1), ret(1)}, "caller");
  addMethod(P, cleanCode(), "leaf");
  EXPECT_TRUE(verifyProgram(P).empty());
}

TEST(Verifier, EmptyProgramIsBadEntry) {
  Program P;
  std::vector<Diagnostic> Diags = verifyProgram(P);
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_EQ(Diags[0].Kind, DiagKind::BadEntryMethod);
}

// ----------------------------------------------------- verifier: options

TEST(VerifierOptions, LargerGapFlagsSpacedCalls) {
  Program P = makeProgram(
      {iconst(1, 0), call(1), addi(1, 1, 1), call(1), ret(1)}, "caller");
  addMethod(P, cleanCode(), "leaf");
  VerifierOptions O;
  O.ReconfigMinGap = 10;
  std::vector<Diagnostic> Diags = verifyProgram(P, O);
  EXPECT_TRUE(hasKind(Diags, DiagKind::ReconfigInterval));
  O.ReconfigMinGap = 0; // 0 disables the check entirely.
  EXPECT_TRUE(verifyProgram(P, O).empty());
}

TEST(VerifierOptions, DoAceChecksOffSkipsPlacementChecks) {
  Program P = makeProgram({iconst(1, 0), call(0), ret(1)}, "rec");
  VerifierOptions O;
  O.DoAceChecks = false;
  // Recursion (UnbalancedStack) and the reconfig check are ACE-only.
  EXPECT_TRUE(verifyProgram(P, O).empty());
}

TEST(VerifierOptions, FlagDeadBlocksOffSuppressesUnreachabilityDiags) {
  Program P = makeProgram({jmp(2), ret(1), ret(1)});
  VerifierOptions O;
  O.FlagDeadBlocks = false;
  std::vector<Diagnostic> Diags = verifyProgram(P, O);
  EXPECT_FALSE(hasKind(Diags, DiagKind::DeadBlock));
  EXPECT_FALSE(hasKind(Diags, DiagKind::UnreachableExit));
}

TEST(VerifierOptions, MaxDiagnosticsCapsTheReport) {
  // Every instruction has a bad register: far more defects than the cap.
  std::vector<Instruction> Code(10, iconst(40, 0));
  Code.push_back(ret(1));
  Program P = makeProgram(std::move(Code));
  VerifierOptions O;
  O.MaxDiagnostics = 3;
  EXPECT_EQ(verifyProgram(P, O).size(), 3u);
}

// ------------------------------------------------- diagnostics rendering

TEST(Diagnostic, RenderNamesMethodInstrAndKind) {
  Program P = makeProgram({jmp(99), ret(1)}, "broken");
  std::vector<Diagnostic> Diags = verifyProgram(P);
  ASSERT_FALSE(Diags.empty());
  std::string R = Diags[0].render(P);
  EXPECT_NE(R.find("method 'broken'"), std::string::npos);
  EXPECT_NE(R.find("instr 0"), std::string::npos);
  EXPECT_NE(R.find("[bad-branch-target]"), std::string::npos);
}

TEST(Diagnostic, StatusMessageCarriesTheKindTag) {
  Program P = makeProgram({iconst(1, 0), call(0), ret(1)}, "rec");
  Status S = verifyProgramStatus(P);
  ASSERT_FALSE(S.ok());
  EXPECT_NE(S.message().find("dynalint[unbalanced-stack]"),
            std::string::npos);
}

TEST(Diagnostic, KindNamesAreStableAndDistinct) {
  std::vector<std::string> Names;
  for (int K = 0; K <= static_cast<int>(DiagKind::AlwaysFalseGuard); ++K)
    Names.push_back(diagKindName(static_cast<DiagKind>(K)));
  std::vector<std::string> Sorted = Names;
  std::sort(Sorted.begin(), Sorted.end());
  EXPECT_EQ(std::unique(Sorted.begin(), Sorted.end()), Sorted.end());
  EXPECT_EQ(Names.front(), "empty-method");
  EXPECT_EQ(Names.back(), "always-false-guard");
}

TEST(Diagnostic, SeverityPartitionsWarningsFromErrors) {
  // The dataflow lints are advisory (Warning); everything pre-existing
  // plus provable traps keeps gating Status (Error).
  EXPECT_EQ(diagSeverity(DiagKind::DeadStore), DiagSeverity::Warning);
  EXPECT_EQ(diagSeverity(DiagKind::UseBeforeDef), DiagSeverity::Warning);
  EXPECT_EQ(diagSeverity(DiagKind::AlwaysFalseGuard),
            DiagSeverity::Warning);
  EXPECT_EQ(diagSeverity(DiagKind::ProvablyTrapping), DiagSeverity::Error);
  EXPECT_EQ(diagSeverity(DiagKind::EmptyMethod), DiagSeverity::Error);
  EXPECT_EQ(diagSeverity(DiagKind::FusionAcrossBoundary),
            DiagSeverity::Error);
}

// ------------------------------------------------- finalize strict mode

TEST(FinalizeStrict, StructurallyValidButUnverifiableProgramIsRejected) {
  // Passes finalize's structural checks (targets in range, terminator
  // present) but has a dead block — only the strict hook catches it.
  Program P = makeProgram({jmp(2), addi(1, 1, 1), ret(1)});
  EXPECT_TRUE(P.finalize().ok());

  Program Q = makeProgram({jmp(2), addi(1, 1, 1), ret(1)});
  Status S = Q.finalize(verifyProgramStatus);
  ASSERT_FALSE(S.ok());
  EXPECT_EQ(S.code(), ErrorCode::InvalidInput);
  EXPECT_NE(S.message().find("dynalint[dead-block]"), std::string::npos);
  EXPECT_FALSE(Q.isFinalized());
}

TEST(FinalizeStrict, CleanProgramFinalizesAndAssignsAddresses) {
  Program P = makeProgram(cleanCode());
  ASSERT_TRUE(P.finalize(verifyProgramStatus).ok());
  EXPECT_TRUE(P.isFinalized());
  EXPECT_EQ(P.method(0).CodeBase, kCodeBase);
}

// --------------------------------------------- generated-workload sweep

TEST(WorkloadSweep, EveryGeneratedBenchmarkVerifiesClean) {
  // The generator gates through finalize(verifyProgramStatus) already (it
  // fatalError()s otherwise); re-verifying here reports ALL diagnostics
  // with full context if the gate and the verifier ever drift.
  for (const WorkloadProfile &Profile : specjvm98Profiles()) {
    GeneratedWorkload W = WorkloadGenerator::generate(Profile);
    std::vector<Diagnostic> Diags = verifyProgram(W.Prog);
    std::string Rendered;
    for (const Diagnostic &D : Diags)
      Rendered += D.render(W.Prog) + "\n";
    EXPECT_TRUE(Diags.empty())
        << Profile.Name << " has verifier diagnostics:\n" << Rendered;
    EXPECT_TRUE(W.Prog.isFinalized()) << Profile.Name;
  }
}

} // namespace

// ---------------------------------------------- fusion hook-boundary rule
//
// verifyFusionPlan takes the plan as external input (the specializer's
// selection), so its defect classes get their own table here rather than
// riding the verifyProgram DefectCase suite. Every way a plan can move a
// DO hook point has a fixture; dynalint --all runs the same check over
// the fusible-run-derived plans of every generated benchmark.

namespace {

/// caller: two blocks (a loop body entered at instr 3) plus a leaf
/// callee — enough shape for spans-call and spans-block fixtures.
///   0: iconst  1: addi  2: call leaf  |  3: addi  4: addi  5: bri->3  |
///   6: ret
Program fusionFixture() {
  Program P = makeProgram({iconst(1, 0), addi(1, 1, 1), call(1),
                           addi(1, 1, 1), addi(2, 1, 1), bri(1, 10, 3),
                           ret(1)},
                          "caller");
  addMethod(P, cleanCode(), "leaf");
  return P;
}

/// One straight-line block ending in Ret: spans-ret and off-end fixtures.
Program straightLineFixture() {
  return makeProgram({iconst(1, 0), addi(1, 1, 1), addi(2, 1, 1), ret(1)});
}

} // namespace

TEST(FusionPlan, SpanningACallIsFlagged) {
  Program P = fusionFixture();
  std::vector<Diagnostic> Diags =
      verifyFusionPlan(P, 0, {{/*First=*/1, /*Len=*/2}});
  ASSERT_TRUE(hasKind(Diags, DiagKind::FusionAcrossBoundary));
  EXPECT_NE(Diags[0].Message.find("method-boundary"), std::string::npos);
}

TEST(FusionPlan, SpanningARetIsFlagged) {
  Program P = straightLineFixture();
  std::vector<Diagnostic> Diags =
      verifyFusionPlan(P, 0, {{/*First=*/2, /*Len=*/2}});
  ASSERT_TRUE(hasKind(Diags, DiagKind::FusionAcrossBoundary));
  EXPECT_NE(Diags[0].Message.find("method-boundary"), std::string::npos);
}

TEST(FusionPlan, CrossingABasicBlockIsFlagged) {
  // [2, +2) starts in the entry block and reaches into the loop body the
  // bri at 5 targets — a branch may enter mid-group.
  Program P = fusionFixture();
  std::vector<Diagnostic> Diags =
      verifyFusionPlan(P, 0, {{/*First=*/2, /*Len=*/2}});
  ASSERT_TRUE(hasKind(Diags, DiagKind::FusionAcrossBoundary));
  EXPECT_NE(Diags[0].Message.find("basic-block"), std::string::npos);
}

TEST(FusionPlan, LeavingTheMethodIsFlagged) {
  Program P = straightLineFixture();
  std::vector<Diagnostic> Diags =
      verifyFusionPlan(P, 0, {{/*First=*/3, /*Len=*/2}});
  ASSERT_TRUE(hasKind(Diags, DiagKind::FusionAcrossBoundary));
  EXPECT_NE(Diags[0].Message.find("leaves the method"), std::string::npos);
}

TEST(FusionPlan, OverlappingGroupsAreFlagged) {
  Program P = straightLineFixture();
  std::vector<Diagnostic> Diags =
      verifyFusionPlan(P, 0, {{0, 2}, {1, 2}});
  ASSERT_TRUE(hasKind(Diags, DiagKind::FusionAcrossBoundary));
  EXPECT_NE(Diags[0].Message.find("overlap"), std::string::npos);
}

TEST(FusionPlan, BadGroupLengthIsFlagged) {
  Program P = straightLineFixture();
  for (uint32_t Len : {0u, 1u, 4u}) {
    std::vector<Diagnostic> Diags = verifyFusionPlan(P, 0, {{0, Len}});
    ASSERT_TRUE(hasKind(Diags, DiagKind::FusionAcrossBoundary)) << Len;
    EXPECT_NE(Diags[0].Message.find("pairs and triples"),
              std::string::npos);
  }
}

TEST(FusionPlan, TailConditionalBranchIsAdmissible) {
  // [3, +3) = addi addi bri, all inside the loop-body block with the
  // branch last — the one position a cond branch may be fused at.
  Program P = fusionFixture();
  EXPECT_TRUE(verifyFusionPlan(P, 0, {{3, 3}}).empty());
  EXPECT_TRUE(verifyFusionPlanStatus(P, 0, {{3, 3}}).ok());
}

TEST(FusionPlan, CleanPlanPassesAndStatusTagsFailures) {
  Program P = straightLineFixture();
  EXPECT_TRUE(verifyFusionPlanStatus(P, 0, {{0, 2}}).ok());
  Status S = verifyFusionPlanStatus(P, 0, {{2, 2}});
  ASSERT_FALSE(S.ok());
  EXPECT_EQ(S.code(), ErrorCode::InvalidInput);
  EXPECT_NE(S.message().find("dynalint[fusion-across-boundary]"),
            std::string::npos);
}

TEST(FusionPlan, FusibleRunsNeverProduceAFlaggedPlan) {
  // The selector/verifier agreement dynalint asserts per benchmark, in
  // miniature: the densest plan derivable from fusibleRuns must verify
  // clean on every generated benchmark's entry method.
  for (const WorkloadProfile &Prof : specjvm98Profiles()) {
    GeneratedWorkload W = WorkloadGenerator::generate(Prof);
    const Program &P = W.Prog;
    for (MethodId Id = 0; Id != P.numMethods(); ++Id) {
      const Method &M = P.method(Id);
      Cfg G = Cfg::build(M);
      std::vector<FusionGroup> Plan;
      for (const FusionRun &R : fusibleRuns(M, G)) {
        uint32_t I = R.First;
        const uint32_t End = R.First + R.Len;
        while (End - I >= 2) {
          uint32_t Len = End - I >= 3 ? 3 : 2;
          Plan.push_back({I, Len});
          I += Len;
        }
      }
      EXPECT_TRUE(verifyFusionPlan(P, Id, Plan).empty())
          << Prof.Name << " method " << Id;
    }
  }
}

// -------------------------------------------------------- dataflow engine
//
// Defect-table discipline for the dataflow DiagKinds: every kind has a
// minimal firing fixture AND a structurally-similar near-miss that stays
// silent, so a lattice regression shows up here rather than as a silent
// loss of diagnostics (or worse, an unsound proof).

namespace {

Instruction div3(uint8_t Dst, uint8_t A, uint8_t B) {
  Instruction I = ins(Opcode::Div);
  I.Dst = Dst;
  I.Src1 = A;
  I.Src2 = B;
  return I;
}

Instruction store(uint8_t Base, uint8_t Value, int64_t Disp = 0) {
  Instruction I = ins(Opcode::Store);
  I.Src1 = Base;
  I.Src2 = Value;
  I.Imm = Disp;
  return I;
}

Instruction load(uint8_t Dst, uint8_t Base, int64_t Disp = 0) {
  Instruction I = ins(Opcode::Load);
  I.Dst = Dst;
  I.Src1 = Base;
  I.Imm = Disp;
  return I;
}

Instruction halt() { return ins(Opcode::Halt); }

/// Runs the verifier with dataflow checks enabled (warnings included).
std::vector<Diagnostic> lintDataflow(const Program &P) {
  VerifierOptions O;
  O.DataflowChecks = true;
  return verifyProgram(P, O);
}

} // namespace

TEST(DataflowDiag, DeadStoreFiresOnOverwrittenPureDef) {
  Program P = makeProgram({iconst(1, 5), iconst(1, 7), ret(1)});
  std::vector<Diagnostic> Diags = lintDataflow(P);
  EXPECT_TRUE(hasKind(Diags, DiagKind::DeadStore));
  // Advisory only: the program still verifies as a Status.
  EXPECT_TRUE(verifyProgramStatus(P).ok());
}

TEST(DataflowDiag, DeadStoreNearMissValueIsRead) {
  Program P = makeProgram({iconst(1, 5), addi(1, 1, 2), ret(1)});
  EXPECT_FALSE(hasKind(lintDataflow(P), DiagKind::DeadStore));
}

TEST(DataflowDiag, UseBeforeDefFiresOnUnassignedRead) {
  // The entry method runs with zero arguments, so r2 only ever holds the
  // frame's zero-fill here.
  Program P = makeProgram({addi(1, 2, 0), ret(1)});
  EXPECT_TRUE(hasKind(lintDataflow(P), DiagKind::UseBeforeDef));
  EXPECT_TRUE(verifyProgramStatus(P).ok());
}

TEST(DataflowDiag, UseBeforeDefNearMissAssignedFirst) {
  Program P = makeProgram({iconst(2, 1), addi(1, 2, 0), ret(1)});
  EXPECT_FALSE(hasKind(lintDataflow(P), DiagKind::UseBeforeDef));
}

TEST(DataflowDiag, UseBeforeDefNearMissArgumentRegisterIsAssigned) {
  // A callee invoked with one argument may read r0 freely: the call-site
  // scan (maxEntryArgs) marks it assigned.
  Program P = makeProgram({iconst(3, 1), call(1, /*FirstArg=*/3,
                                               /*NumArgs=*/1),
                           ret(1)},
                          "main");
  addMethod(P, {addi(1, 0, 2), ret(1)}, "callee");
  EXPECT_FALSE(hasKind(lintDataflow(P), DiagKind::UseBeforeDef));
}

TEST(DataflowDiag, ProvablyTrappingFiresOnConstantZeroDivisor) {
  Program P =
      makeProgram({iconst(1, 5), iconst(2, 0), div3(3, 1, 2), ret(3)});
  std::vector<Diagnostic> Diags = lintDataflow(P);
  EXPECT_TRUE(hasKind(Diags, DiagKind::ProvablyTrapping));
  // Error severity: strict finalize (the unary overload) rejects it...
  Status S = verifyProgramStatus(P);
  ASSERT_FALSE(S.ok());
  EXPECT_NE(S.message().find("dynalint[provably-trapping]"),
            std::string::npos);
  // ...but the default options (DataflowChecks off) keep accepting it,
  // preserving the historical contract for non-strict callers.
  VerifierOptions Off;
  EXPECT_FALSE(hasKind(verifyProgram(P, Off), DiagKind::ProvablyTrapping));
}

TEST(DataflowDiag, ProvablyTrappingNearMissNonZeroDivisor) {
  Program P =
      makeProgram({iconst(1, 5), iconst(2, 3), div3(3, 1, 2), ret(3)});
  EXPECT_FALSE(hasKind(lintDataflow(P), DiagKind::ProvablyTrapping));
  EXPECT_TRUE(verifyProgramStatus(P).ok());
}

TEST(DataflowDiag, ProvablyTrappingNearMissUnknownDivisor) {
  // Divisor merges {0, 3} across a branch: MAY trap, but not provably —
  // the lattice join must not manufacture certainty.
  Program P = makeProgram({iconst(1, 5), iconst(2, 0), bri(1, 10, 4),
                           iconst(2, 3), div3(3, 1, 2), ret(3)});
  EXPECT_FALSE(hasKind(lintDataflow(P), DiagKind::ProvablyTrapping));
}

TEST(DataflowDiag, AlwaysFalseGuardFiresOnConstantCondition) {
  // r1 == 5, so `bri Lt r1, 3` can never be taken.
  Program P =
      makeProgram({iconst(1, 5), bri(1, 3, 3), addi(1, 1, 1), ret(1)});
  EXPECT_TRUE(hasKind(lintDataflow(P), DiagKind::AlwaysFalseGuard));
  EXPECT_TRUE(verifyProgramStatus(P).ok());
}

TEST(DataflowDiag, AlwaysFalseGuardFiresOnProvablyTrueCondition) {
  // The dual: 5 < 10 always holds, so the fallthrough is dead.
  Program P =
      makeProgram({iconst(1, 5), bri(1, 10, 3), addi(1, 1, 1), ret(1)});
  EXPECT_TRUE(hasKind(lintDataflow(P), DiagKind::AlwaysFalseGuard));
}

TEST(DataflowDiag, AlwaysFalseGuardNearMissLoopExit) {
  // A counted loop's back-edge test goes both ways; widening must leave
  // enough slack that it is not misjudged as constant.
  Program P = makeProgram(
      {iconst(1, 0), addi(1, 1, 1), bri(1, 10, 1), ret(1)});
  EXPECT_FALSE(hasKind(lintDataflow(P), DiagKind::AlwaysFalseGuard));
}

TEST(DataflowDiag, WarningsNeverGateStatusEvenInBulk) {
  // A method full of advisory findings still converts to an OK Status:
  // only Error-severity kinds may gate finalize or dynalint exit codes.
  Program P = makeProgram({iconst(1, 1), iconst(1, 2), addi(2, 3, 0),
                           iconst(1, 5), bri(1, 3, 6), addi(1, 1, 1),
                           ret(1)});
  std::vector<Diagnostic> Diags = lintDataflow(P);
  EXPECT_TRUE(hasKind(Diags, DiagKind::DeadStore));
  EXPECT_TRUE(hasKind(Diags, DiagKind::UseBeforeDef));
  EXPECT_TRUE(hasKind(Diags, DiagKind::AlwaysFalseGuard));
  EXPECT_TRUE(verifyProgramStatus(P).ok());
}

// --------------------------------------------------- dataflow lattice/API

TEST(Dataflow, ValueRangeLatticeBasics) {
  ValueRange B = ValueRange::bottom();
  ValueRange T = ValueRange::top();
  ValueRange C5 = ValueRange::constant(5);
  ValueRange I = ValueRange::interval(3, 9);
  EXPECT_TRUE(B.isBottom());
  EXPECT_TRUE(T.isTop());
  EXPECT_TRUE(C5.isConstant());
  EXPECT_FALSE(I.isConstant());
  EXPECT_TRUE(I.contains(3));
  EXPECT_TRUE(I.contains(9));
  EXPECT_FALSE(I.contains(10));
  // Join is the interval hull; bottom is the identity.
  EXPECT_EQ(B.join(C5), C5);
  EXPECT_EQ(C5.join(I), ValueRange::interval(3, 9));
  EXPECT_EQ(ValueRange::constant(1).join(ValueRange::constant(4)),
            ValueRange::interval(1, 4));
  EXPECT_TRUE(T.join(C5).isTop());
  // Widening blows moved bounds to the lattice extremes.
  ValueRange W = ValueRange::interval(0, 5).widen(ValueRange::interval(0, 4));
  EXPECT_EQ(W.Lo, 0);
  EXPECT_EQ(W.Hi, INT64_MAX);
}

TEST(Dataflow, ConstantPropagationThroughStraightLine) {
  Program P = makeProgram(
      {iconst(1, 6), iconst(2, 7), addi(3, 1, 1), ret(3)});
  const Method &M = P.method(0);
  Cfg G = Cfg::build(M);
  MethodDataflow D = analyzeMethod(P, M, G, /*EntryArgs=*/0);
  // Straight line = one block; entry ranges are the frame zero-fill.
  ASSERT_EQ(D.RangeIn.size(), G.blocks().size());
  EXPECT_EQ(D.RangeIn[0][1], ValueRange::constant(0));
  // Liveness: nothing is live into the entry block of a 0-arg method.
  EXPECT_EQ(D.LiveIn[0], 0u);
}

TEST(Dataflow, LoopRangeConvergesWithWidening) {
  // r1 increments without a provable bound: analysis must terminate and
  // r1's range at the loop head must cover every concrete iterate.
  Program P = makeProgram(
      {iconst(1, 0), addi(1, 1, 1), bri(1, 1000000, 1), ret(1)});
  const Method &M = P.method(0);
  Cfg G = Cfg::build(M);
  MethodDataflow D = analyzeMethod(P, M, G, /*EntryArgs=*/0);
  uint32_t HeadIdx = G.blockContaining(1);
  ASSERT_LT(HeadIdx, G.numBlocks());
  ValueRange R1 = D.RangeIn[HeadIdx][1];
  EXPECT_TRUE(R1.contains(0));
  EXPECT_TRUE(R1.contains(999999));
}

TEST(Dataflow, MemInBoundsProvenForStaticGlobalAccess) {
  Program P = makeProgram({iconst(1, static_cast<int64_t>(kHeapBase)),
                           iconst(2, 9), store(1, 2, 8), load(3, 1, 8),
                           ret(3)});
  P.addGlobal(4); // words [kHeapBase, kHeapBase + 32)
  const Method &M = P.method(0);
  Cfg G = Cfg::build(M);
  MethodDataflow D = analyzeMethod(P, M, G, /*EntryArgs=*/0);
  EXPECT_TRUE(D.Facts[2] & DF_MemInBounds) << "store at +8 is in bounds";
  EXPECT_TRUE(D.Facts[3] & DF_MemInBounds) << "load at +8 is in bounds";
}

TEST(Dataflow, MemInBoundsNotClaimedOutsideTheSegment) {
  // Displacement 64 lands one word past the 4-word global segment: the
  // VM would wrap modulo the heap mask, so no proof may be issued.
  Program P = makeProgram({iconst(1, static_cast<int64_t>(kHeapBase)),
                           iconst(2, 9), store(1, 2, 64), ret(2)});
  P.addGlobal(4);
  const Method &M = P.method(0);
  Cfg G = Cfg::build(M);
  MethodDataflow D = analyzeMethod(P, M, G, /*EntryArgs=*/0);
  EXPECT_FALSE(D.Facts[2] & DF_MemInBounds);
}

TEST(Dataflow, MaxEntryArgsTracksTheWidestCallSite) {
  Program P = makeProgram(
      {iconst(3, 1), call(1, /*FirstArg=*/3, /*NumArgs=*/1),
       call(1, /*FirstArg=*/2, /*NumArgs=*/2), ret(1)},
      "main");
  addMethod(P, {addi(1, 0, 2), ret(1)}, "callee");
  std::vector<unsigned> Args = maxEntryArgs(P);
  ASSERT_EQ(Args.size(), 2u);
  EXPECT_EQ(Args[0], 0u) << "nobody calls main";
  EXPECT_EQ(Args[1], 2u) << "widest call site wins";
}

TEST(Dataflow, ProofSetSkipsMethodsWithOffEndBranchTargets) {
  // A branch target equal to Code.size() is tolerated by the VM (it
  // falls to the off-end sentinel) but violates Cfg::build's contract;
  // computeProofSet must leave such methods fully guarded, not crash.
  Program P = makeProgram({iconst(1, 5), bri(1, 3, 2)});
  ProofSet PS = computeProofSet(P);
  ASSERT_EQ(PS.MethodFacts.size(), 1u);
  EXPECT_TRUE(PS.MethodFacts[0].empty());
  EXPECT_EQ(PS.provenGuardCount(), 0u);
}

TEST(Dataflow, DotDumpIsWellFormedAndCarriesFacts) {
  Program P = makeProgram({iconst(1, static_cast<int64_t>(kHeapBase)),
                           iconst(2, 9), store(1, 2, 8), ret(2)});
  P.addGlobal(4);
  const Method &M = P.method(0);
  Cfg G = Cfg::build(M);
  MethodDataflow D = analyzeMethod(P, M, G, /*EntryArgs=*/0);
  std::string Dot = dataflowToDot(P, M, G, D);
  EXPECT_NE(Dot.find("digraph dataflow_m"), std::string::npos);
  EXPECT_NE(Dot.find("mem-in-bounds"), std::string::npos);
  EXPECT_NE(Dot.find("live-in"), std::string::npos);
  EXPECT_EQ(std::count(Dot.begin(), Dot.end(), '{'),
            std::count(Dot.begin(), Dot.end(), '}'));
}

TEST(Dataflow, GeneratedWorkloadsAreProofDense) {
  // The benchmark generator's memory idiom (constant global base +
  // masked index) is exactly what the interval lattice proves; if this
  // count collapses, the unguarded tier silently stops eliding guards.
  GeneratedWorkload W = WorkloadGenerator::generate(*findProfile("compress"));
  ProofSet PS = computeProofSet(W.Prog);
  EXPECT_GT(PS.provenGuardCount(), 100u);
}
