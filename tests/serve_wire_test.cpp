//===- tests/serve_wire_test.cpp - Serve framing + protocol fuzz ----------==//
//
// Pins the zero-trust contract of the serve transport (serve/Wire.h,
// serve/Protocol.h): a frame truncated at ANY byte offset parses as
// "incomplete" (keep reading) and a frame bit-flipped at ANY offset is
// rejected — never silently decoded as a different message. Also covers
// the socket paths (roundtrip, EOF, timeout, garbage, injected rpc.send /
// rpc.recv faults) and the strict Status-returning payload decoders.
//
//===----------------------------------------------------------------------==//

#include "serve/Protocol.h"
#include "serve/Wire.h"
#include "support/FaultInjector.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

using namespace dynace;
using namespace dynace::serve;

namespace {

/// Every test starts and ends with fault injection disabled (the injector
/// is a process singleton).
class ServeWire : public ::testing::Test {
protected:
  void SetUp() override {
    ASSERT_TRUE(FaultInjector::instance().configure("").ok());
  }
  void TearDown() override {
    ASSERT_TRUE(FaultInjector::instance().configure("").ok());
  }
};

/// A representative CellResult payload: every field type the protocol
/// uses (u8, u32, u64, doubles, strings with embedded NULs) including the
/// wire-v2 telemetry freight (spans + metrics delta), so the fuzz sweeps
/// below cover every section of the encoding.
CellResultMsg sampleResult() {
  CellResultMsg M;
  M.CellIndex = 7;
  M.Cell.Benchmark = "compress";
  M.Cell.SchemeKind = Scheme::Hotspot;
  M.CacheKey = "0123456789abcdef";
  M.Failed = false;
  M.Code = 0;
  M.Attempts = 2;
  M.CacheHit = true;
  M.Quarantined = 1;
  M.Reason = "";
  M.ResultText = std::string("dynace-result-v3\nbin\0ary\n", 25);
  M.GridId = 0xabcdef0012345678ull;
  M.DispatchAttempt = 3;
  M.Spans.push_back({"serve", "worker.cell", 12.5, 3400.75,
                     "\"cell\": 7, \"attempt\": 3"});
  M.Spans.push_back({"vm", "run", 20.0, -1.0, ""});
  M.DroppedSpans = 2;
  M.MetricsDelta.Counters["cache.miss"] = 4;
  M.MetricsDelta.Gauges["vm.final_ipc"] = 1.25;
  HistogramSnapshot H;
  H.Count = 2;
  H.Sum = 6;
  H.Buckets = {0, 1, 0, 1};
  M.MetricsDelta.Histograms["runner.cell_ms"] = H;
  return M;
}

/// A representative StatsReply: active grid, two workers (one leased,
/// one dead).
StatsReplyMsg sampleStats() {
  StatsReplyMsg S;
  S.GridActive = true;
  S.GridsServed = 3;
  S.GridId = 0x1234000000000042ull;
  S.Cells = 21;
  S.DoneCells = 10;
  S.PendingCells = 8;
  S.InFlightLeases = 1;
  S.FailedCells = 1;
  S.ReplayedCells = 6;
  S.InlineCells = 2;
  S.Dispatches = 15;
  S.Redispatches = 3;
  S.DuplicateResults = 1;
  S.WorkerCrashes = 2;
  S.Respawns = 2;
  S.QuarantinedCells = 1;
  S.JournalBytes = 4096;
  S.Workers.push_back({1, 4242, true, 5, 1200, 17, 4});
  S.Workers.push_back({2, 4243, false, WorkerStatMsg::kIdle, 0, 900, 6});
  return S;
}

} // namespace

// ----------------------------------------------------------- Frame basics

TEST_F(ServeWire, FrameTypeNamesAreStable) {
  EXPECT_STREQ(frameTypeName(FrameType::Hello), "hello");
  EXPECT_STREQ(frameTypeName(FrameType::GridRequest), "grid-request");
  EXPECT_STREQ(frameTypeName(FrameType::CellAssign), "cell-assign");
  EXPECT_STREQ(frameTypeName(FrameType::CellResult), "cell-result");
  EXPECT_STREQ(frameTypeName(FrameType::Heartbeat), "heartbeat");
  EXPECT_STREQ(frameTypeName(FrameType::Shutdown), "shutdown");
  EXPECT_STREQ(frameTypeName(FrameType::Done), "done");
  EXPECT_STREQ(frameTypeName(FrameType::Error), "error");
  EXPECT_STREQ(frameTypeName(FrameType::StatsRequest), "stats-request");
  EXPECT_STREQ(frameTypeName(FrameType::StatsReply), "stats-reply");
  EXPECT_STREQ(frameTypeName(static_cast<FrameType>(0)), "?");
}

TEST_F(ServeWire, RoundTripsEveryTypeAndPayloadShape) {
  const FrameType Types[] = {FrameType::Hello,      FrameType::GridRequest,
                             FrameType::CellAssign,  FrameType::CellResult,
                             FrameType::Heartbeat,  FrameType::Shutdown,
                             FrameType::Done,       FrameType::Error,
                             FrameType::StatsRequest, FrameType::StatsReply};
  const std::string Payloads[] = {
      "", "x", std::string("\0\xff\x01", 3), std::string(4096, 'A')};
  for (FrameType T : Types)
    for (const std::string &P : Payloads) {
      std::string Bytes = encodeFrame(T, P);
      ASSERT_EQ(Bytes.size(), kFrameHeaderSize + P.size());
      size_t Consumed = 0;
      Expected<Frame> F = decodeFrame(Bytes, Consumed);
      ASSERT_TRUE(F.ok()) << F.status().toString();
      EXPECT_EQ(Consumed, Bytes.size());
      EXPECT_EQ(F.get().Type, T);
      EXPECT_EQ(F.get().Payload, P);
    }
}

TEST_F(ServeWire, DecodeConsumesOnlyTheFirstFrame) {
  std::string Two =
      encodeFrame(FrameType::Hello, "a") + encodeFrame(FrameType::Done, "b");
  size_t Consumed = 0;
  Expected<Frame> F = decodeFrame(Two, Consumed);
  ASSERT_TRUE(F.ok());
  EXPECT_EQ(F.get().Type, FrameType::Hello);
  EXPECT_EQ(Consumed, kFrameHeaderSize + 1);
}

// ------------------------------------------------------------- Fuzz sweeps

TEST_F(ServeWire, TruncationAtEveryOffsetParsesAsIncompleteNeverWrong) {
  std::string Bytes =
      encodeFrame(FrameType::CellResult, encodeCellResult(sampleResult()));
  for (size_t Len = 0; Len != Bytes.size(); ++Len) {
    size_t Consumed = 0;
    Expected<Frame> F = decodeFrame(Bytes.substr(0, Len), Consumed);
    ASSERT_FALSE(F.ok()) << "decoded a truncated frame at length " << Len;
    EXPECT_EQ(F.status().code(), ErrorCode::IoError) << "length " << Len;
    EXPECT_NE(F.status().message().find("incomplete"), std::string::npos)
        << "length " << Len << ": " << F.status().toString();
  }
}

TEST_F(ServeWire, BitFlipAtEveryOffsetNeverYieldsADifferentFrame) {
  std::string Bytes =
      encodeFrame(FrameType::CellResult, encodeCellResult(sampleResult()));
  for (size_t Off = 0; Off != Bytes.size(); ++Off)
    for (int Bit = 0; Bit != 8; ++Bit) {
      std::string Mut = Bytes;
      Mut[Off] = static_cast<char>(Mut[Off] ^ (1 << Bit));
      size_t Consumed = 0;
      Expected<Frame> F = decodeFrame(Mut, Consumed);
      // A flip may look "incomplete" (the length field grew) or invalid
      // (magic/version/type/length/checksum); it must never decode.
      ASSERT_FALSE(F.ok())
          << "accepted a corrupt frame (offset " << Off << " bit " << Bit
          << ")";
      EXPECT_TRUE(F.status().code() == ErrorCode::InvalidInput ||
                  F.status().code() == ErrorCode::IoError)
          << "offset " << Off << " bit " << Bit << ": "
          << F.status().toString();
    }
}

TEST_F(ServeWire, StatsReplyTruncationAndBitFlipFuzz) {
  // Same sweep as the CellResult one, over the other telemetry-heavy
  // codec: truncation is always "incomplete", a flip never decodes.
  std::string Bytes =
      encodeFrame(FrameType::StatsReply, encodeStatsReply(sampleStats()));
  for (size_t Len = 0; Len != Bytes.size(); ++Len) {
    size_t Consumed = 0;
    Expected<Frame> F = decodeFrame(Bytes.substr(0, Len), Consumed);
    ASSERT_FALSE(F.ok()) << "decoded a truncated frame at length " << Len;
    EXPECT_EQ(F.status().code(), ErrorCode::IoError) << "length " << Len;
  }
  for (size_t Off = 0; Off != Bytes.size(); ++Off)
    for (int Bit = 0; Bit != 8; ++Bit) {
      std::string Mut = Bytes;
      Mut[Off] = static_cast<char>(Mut[Off] ^ (1 << Bit));
      size_t Consumed = 0;
      Expected<Frame> F = decodeFrame(Mut, Consumed);
      ASSERT_FALSE(F.ok())
          << "accepted a corrupt frame (offset " << Off << " bit " << Bit
          << ")";
    }
}

TEST_F(ServeWire, OversizedLengthIsRejectedBeforeBuffering) {
  // Craft a header whose length field exceeds the cap: rejected as
  // InvalidInput immediately — NOT treated as an incomplete frame the
  // receiver would buffer 4 GiB for.
  std::string Bytes = encodeFrame(FrameType::Hello, "");
  uint32_t Huge = kMaxFramePayload + 1;
  for (int I = 0; I != 4; ++I)
    Bytes[6 + I] = static_cast<char>((Huge >> (8 * I)) & 0xff);
  size_t Consumed = 0;
  Expected<Frame> F = decodeFrame(Bytes, Consumed);
  ASSERT_FALSE(F.ok());
  EXPECT_EQ(F.status().code(), ErrorCode::InvalidInput);
}

TEST_F(ServeWire, ForeignMagicIsRejectedAtAnyLength) {
  // Even a 1-byte stream that can never become "DYNW" is InvalidInput
  // (drop the connection), not "incomplete" (wait forever).
  size_t Consumed = 0;
  Expected<Frame> F = decodeFrame("G", Consumed);
  ASSERT_FALSE(F.ok());
  EXPECT_EQ(F.status().code(), ErrorCode::InvalidInput);
}

// ------------------------------------------------------------ Socket paths

TEST_F(ServeWire, SendRecvRoundTripsOverASocketpair) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  std::string Payload = encodeCellResult(sampleResult());
  ASSERT_TRUE(sendFrame(Fds[0], FrameType::CellResult, Payload).ok());
  ASSERT_TRUE(sendFrame(Fds[0], FrameType::Shutdown, "").ok());

  Expected<Frame> A = recvFrame(Fds[1], /*TimeoutMs=*/2000);
  ASSERT_TRUE(A.ok()) << A.status().toString();
  EXPECT_EQ(A.get().Type, FrameType::CellResult);
  EXPECT_EQ(A.get().Payload, Payload);
  Expected<Frame> B = recvFrame(Fds[1], /*TimeoutMs=*/2000);
  ASSERT_TRUE(B.ok()) << B.status().toString();
  EXPECT_EQ(B.get().Type, FrameType::Shutdown);

  // No data inside the poll budget -> Timeout (the connection is fine).
  Expected<Frame> T = recvFrame(Fds[1], /*TimeoutMs=*/20);
  ASSERT_FALSE(T.ok());
  EXPECT_EQ(T.status().code(), ErrorCode::Timeout);

  // Peer gone -> Unavailable, on both recv and send.
  ::close(Fds[0]);
  Expected<Frame> E = recvFrame(Fds[1], /*TimeoutMs=*/2000);
  ASSERT_FALSE(E.ok());
  EXPECT_EQ(E.status().code(), ErrorCode::Unavailable);
  Status S = sendFrame(Fds[1], FrameType::Hello, "");
  ASSERT_FALSE(S.ok());
  EXPECT_EQ(S.code(), ErrorCode::Unavailable);
  ::close(Fds[1]);
}

TEST_F(ServeWire, GarbageOnTheSocketIsInvalidInput) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  std::string Garbage = "this is not a DYNW frame";
  ASSERT_EQ(::send(Fds[0], Garbage.data(), Garbage.size(), 0),
            static_cast<ssize_t>(Garbage.size()));
  Expected<Frame> F = recvFrame(Fds[1], /*TimeoutMs=*/2000);
  ASSERT_FALSE(F.ok());
  EXPECT_EQ(F.status().code(), ErrorCode::InvalidInput);
  ::close(Fds[0]);
  ::close(Fds[1]);
}

TEST_F(ServeWire, RpcFaultSitesInjectDeterministically) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  FaultInjector &FI = FaultInjector::instance();

  ASSERT_TRUE(FI.configure("rpc.send:2:0").ok());
  Status S = sendFrame(Fds[0], FrameType::Hello, "");
  EXPECT_EQ(S.code(), ErrorCode::Injected); // Arm 0 fires; nothing sent.
  EXPECT_TRUE(sendFrame(Fds[0], FrameType::Hello, "x").ok()); // Arm 1 passes.

  ASSERT_TRUE(FI.configure("rpc.recv:2:0").ok());
  Expected<Frame> F = recvFrame(Fds[1], /*TimeoutMs=*/2000);
  ASSERT_FALSE(F.ok());
  EXPECT_EQ(F.status().code(), ErrorCode::Injected);
  // The injected receive read nothing: the frame is still queued and the
  // next receive gets it intact.
  F = recvFrame(Fds[1], /*TimeoutMs=*/2000);
  ASSERT_TRUE(F.ok()) << F.status().toString();
  EXPECT_EQ(F.get().Payload, "x");
  ::close(Fds[0]);
  ::close(Fds[1]);
}

// ------------------------------------------------- Strict payload decoders

TEST_F(ServeWire, ProtocolMessagesRoundTrip) {
  GridRequestMsg G;
  G.Cells = {{"compress", Scheme::Baseline},
             {"compress", Scheme::Hotspot},
             {"db", Scheme::Bbv}};
  Expected<GridRequestMsg> G2 = decodeGridRequest(encodeGridRequest(G));
  ASSERT_TRUE(G2.ok());
  ASSERT_EQ(G2.get().Cells.size(), 3u);
  EXPECT_EQ(G2.get().Cells[1].Benchmark, "compress");
  EXPECT_EQ(G2.get().Cells[1].SchemeKind, Scheme::Hotspot);
  EXPECT_EQ(G2.get().Cells[2].Benchmark, "db");

  CellAssignMsg A;
  A.CellIndex = 42;
  A.Cell = {"mtrt", Scheme::Bbv};
  A.GridId = 0xfeed000000000001ull;
  A.Attempt = 2;
  Expected<CellAssignMsg> A2 = decodeCellAssign(encodeCellAssign(A));
  ASSERT_TRUE(A2.ok());
  EXPECT_EQ(A2.get().CellIndex, 42u);
  EXPECT_EQ(A2.get().Cell.Benchmark, "mtrt");
  EXPECT_EQ(A2.get().GridId, A.GridId);
  EXPECT_EQ(A2.get().Attempt, 2u);

  CellResultMsg R = sampleResult();
  Expected<CellResultMsg> R2 = decodeCellResult(encodeCellResult(R));
  ASSERT_TRUE(R2.ok());
  EXPECT_EQ(R2.get().CellIndex, R.CellIndex);
  EXPECT_EQ(R2.get().Cell.Benchmark, R.Cell.Benchmark);
  EXPECT_EQ(R2.get().Cell.SchemeKind, R.Cell.SchemeKind);
  EXPECT_EQ(R2.get().CacheKey, R.CacheKey);
  EXPECT_EQ(R2.get().Attempts, R.Attempts);
  EXPECT_EQ(R2.get().CacheHit, R.CacheHit);
  EXPECT_EQ(R2.get().Quarantined, R.Quarantined);
  EXPECT_EQ(R2.get().ResultText, R.ResultText); // Embedded NULs survive.
  EXPECT_EQ(R2.get().GridId, R.GridId);
  EXPECT_EQ(R2.get().DispatchAttempt, R.DispatchAttempt);
  ASSERT_EQ(R2.get().Spans.size(), 2u);
  EXPECT_EQ(R2.get().Spans[0].Cat, "serve");
  EXPECT_EQ(R2.get().Spans[0].Name, "worker.cell");
  EXPECT_EQ(R2.get().Spans[0].TsUs, 12.5);
  EXPECT_EQ(R2.get().Spans[0].DurUs, 3400.75);
  EXPECT_EQ(R2.get().Spans[0].Args, "\"cell\": 7, \"attempt\": 3");
  EXPECT_EQ(R2.get().Spans[1].DurUs, -1.0); // Instant events survive.
  EXPECT_EQ(R2.get().DroppedSpans, 2u);
  EXPECT_EQ(R2.get().MetricsDelta, R.MetricsDelta);

  HelloMsg H{11, 222, 987654321123ull};
  Expected<HelloMsg> H2 = decodeHello(encodeHello(H));
  ASSERT_TRUE(H2.ok());
  EXPECT_EQ(H2.get().WorkerId, 11u);
  EXPECT_EQ(H2.get().Pid, 222u);
  EXPECT_EQ(H2.get().TraceEpochNs, 987654321123ull);

  Expected<StatsRequestMsg> Q2 =
      decodeStatsRequest(encodeStatsRequest(StatsRequestMsg()));
  ASSERT_TRUE(Q2.ok());
  EXPECT_FALSE(decodeStatsRequest("x").ok()); // Must be empty.

  StatsReplyMsg T = sampleStats();
  Expected<StatsReplyMsg> T2 = decodeStatsReply(encodeStatsReply(T));
  ASSERT_TRUE(T2.ok()) << T2.status().toString();
  EXPECT_EQ(T2.get().GridActive, true);
  EXPECT_EQ(T2.get().GridsServed, T.GridsServed);
  EXPECT_EQ(T2.get().GridId, T.GridId);
  EXPECT_EQ(T2.get().Cells, T.Cells);
  EXPECT_EQ(T2.get().DoneCells, T.DoneCells);
  EXPECT_EQ(T2.get().PendingCells, T.PendingCells);
  EXPECT_EQ(T2.get().InFlightLeases, T.InFlightLeases);
  EXPECT_EQ(T2.get().JournalBytes, T.JournalBytes);
  ASSERT_EQ(T2.get().Workers.size(), 2u);
  EXPECT_EQ(T2.get().Workers[0].WorkerId, 1u);
  EXPECT_EQ(T2.get().Workers[0].LeasedCell, 5u);
  EXPECT_EQ(T2.get().Workers[0].LeaseRemainingMs, 1200u);
  EXPECT_EQ(T2.get().Workers[1].Live, false);
  EXPECT_EQ(T2.get().Workers[1].LeasedCell, WorkerStatMsg::kIdle);
  EXPECT_EQ(T2.get().Workers[1].CellsDone, 6u);

  HeartbeatMsg B{3, HeartbeatMsg::kIdle};
  Expected<HeartbeatMsg> B2 = decodeHeartbeat(encodeHeartbeat(B));
  ASSERT_TRUE(B2.ok());
  EXPECT_EQ(B2.get().CellIndex, HeartbeatMsg::kIdle);

  DoneMsg D{"report text\n", 21, 2};
  Expected<DoneMsg> D2 = decodeDone(encodeDone(D));
  ASSERT_TRUE(D2.ok());
  EXPECT_EQ(D2.get().Report, "report text\n");
  EXPECT_EQ(D2.get().Cells, 21u);
  EXPECT_EQ(D2.get().FailedCells, 2u);

  Expected<ErrorMsg> E2 = decodeErrorMsg(encodeErrorMsg({"why"}));
  ASSERT_TRUE(E2.ok());
  EXPECT_EQ(E2.get().Reason, "why");
}

TEST_F(ServeWire, DecodersRejectTruncationAtEveryOffsetAndTrailingBytes) {
  std::string Bytes = encodeCellResult(sampleResult());
  for (size_t Len = 0; Len != Bytes.size(); ++Len) {
    Expected<CellResultMsg> M = decodeCellResult(Bytes.substr(0, Len));
    ASSERT_FALSE(M.ok()) << "decoded a truncated payload at length " << Len;
    EXPECT_EQ(M.status().code(), ErrorCode::InvalidInput) << Len;
  }
  Expected<CellResultMsg> M = decodeCellResult(Bytes + "z");
  ASSERT_FALSE(M.ok()) << "accepted trailing bytes";
  EXPECT_EQ(M.status().code(), ErrorCode::InvalidInput);
}

TEST_F(ServeWire, DecodersRejectOutOfRangeEnumsAndFlags) {
  // Encoders write fields verbatim; decoders are the trust boundary.
  CellAssignMsg A;
  A.Cell = {"compress", static_cast<Scheme>(3)}; // No such scheme.
  Expected<CellAssignMsg> A2 = decodeCellAssign(encodeCellAssign(A));
  ASSERT_FALSE(A2.ok());
  EXPECT_EQ(A2.status().code(), ErrorCode::InvalidInput);

  CellResultMsg R = sampleResult();
  R.Code = 200; // No such ErrorCode.
  Expected<CellResultMsg> R2 = decodeCellResult(encodeCellResult(R));
  ASSERT_FALSE(R2.ok());
  EXPECT_EQ(R2.status().code(), ErrorCode::InvalidInput);
}

TEST_F(ServeWire, SpanDecodingIsZeroTrust) {
  // A hostile worker must not be able to corrupt the merged trace file:
  // categories outside the closed set, unprintable names, non-finite
  // timestamps and non-JSON args bodies are all rejected at decode.
  auto Reject = [](WireSpan S) {
    CellResultMsg M = sampleResult();
    M.Spans = {std::move(S)};
    Expected<CellResultMsg> D = decodeCellResult(encodeCellResult(M));
    ASSERT_FALSE(D.ok());
    EXPECT_EQ(D.status().code(), ErrorCode::InvalidInput);
  };
  Reject({"exfil", "worker.cell", 1.0, 2.0, ""});       // Unknown category.
  Reject({"serve", "", 1.0, 2.0, ""});                  // Empty name.
  Reject({"serve", "bad\"name", 1.0, 2.0, ""});         // Quote in name.
  Reject({"serve", "bad\nname", 1.0, 2.0, ""});         // Control char.
  Reject({"serve", "x", std::nan(""), 2.0, ""});        // Non-finite ts.
  Reject({"serve", "x", 1.0, std::nan(""), ""});        // Non-finite dur.
  Reject({"serve", "x", 1.0, 2.0, "not json"});         // Garbage args.
  Reject({"serve", "x", 1.0, 2.0, "\"k\": {\"v\": 1}"}); // Nested object.
  Reject({"serve", "x", 1.0, 2.0, "\"k\": \"\x01\""});  // Raw control char.
  Reject({"serve", "x", 1.0, 2.0, std::string(5000, ' ')}); // Args cap.

  // And the edge of validity still decodes: escaped strings, numbers,
  // literals.
  CellResultMsg M = sampleResult();
  M.Spans = {{"serve", "x", 0.0, -1.0,
              "\"s\": \"a\\\"b\\u0041\", \"n\": -1.5e3, \"t\": true, "
              "\"z\": null"}};
  EXPECT_TRUE(decodeCellResult(encodeCellResult(M)).ok());
}

TEST_F(ServeWire, SpanCountFieldCannotDriveAllocation) {
  // Forged span count beyond the cap, and beyond what the payload could
  // hold, are both rejected before any allocation happens.
  CellResultMsg M = sampleResult();
  std::string Bytes = encodeCellResult(M);
  // The span-count u32 sits right after the DispatchAttempt u32; find it
  // by re-encoding with zero spans and diffing the prefix length.
  CellResultMsg Zero = M;
  Zero.Spans.clear();
  std::string ZeroBytes = encodeCellResult(Zero);
  size_t Prefix = 0;
  while (Prefix < ZeroBytes.size() && Bytes[Prefix] == ZeroBytes[Prefix])
    Prefix++;
  // Everything before the span count is identical (2 vs 0 spans), so the
  // first diverging byte is the count's little-endian LSB.
  size_t CountOff = Prefix;
  ASSERT_LE(CountOff + 4, Bytes.size());
  for (uint32_t Forged : {kMaxWireSpans + 1, 0x40000000u}) {
    std::string Mut = Bytes;
    for (int I = 0; I != 4; ++I)
      Mut[CountOff + I] = static_cast<char>((Forged >> (8 * I)) & 0xff);
    Expected<CellResultMsg> D = decodeCellResult(Mut);
    ASSERT_FALSE(D.ok());
    EXPECT_EQ(D.status().code(), ErrorCode::InvalidInput);
  }
}

TEST_F(ServeWire, MetricsBlockIsZeroTrust) {
  auto Encoded = [](const MetricsSnapshot &Delta) {
    CellResultMsg M = sampleResult();
    M.MetricsDelta = Delta;
    return encodeCellResult(M);
  };
  // Metric names outside the [A-Za-z0-9._#-] alphabet or over the length
  // cap are rejected (they feed registry lookups and JSON dumps).
  MetricsSnapshot Bad;
  Bad.Counters["evil name"] = 1;
  EXPECT_FALSE(decodeCellResult(Encoded(Bad)).ok());
  Bad = MetricsSnapshot();
  Bad.Counters[std::string(300, 'a')] = 1;
  EXPECT_FALSE(decodeCellResult(Encoded(Bad)).ok());
  Bad = MetricsSnapshot();
  Bad.Gauges["g"] = std::nan(""); // Non-finite gauge.
  EXPECT_FALSE(decodeCellResult(Encoded(Bad)).ok());
  // A histogram with more buckets than the fixed layout is a forgery.
  Bad = MetricsSnapshot();
  HistogramSnapshot H;
  H.Buckets.assign(kHistogramBuckets + 1, 1);
  Bad.Histograms["h"] = H;
  EXPECT_FALSE(decodeCellResult(Encoded(Bad)).ok());
}

TEST_F(ServeWire, StatsReplyWorkerCountCannotDriveAllocation) {
  StatsReplyMsg S = sampleStats();
  std::string Bytes = encodeStatsReply(S);
  // The worker-count u32 sits 4 + 49*2 + 4 bytes from the end (two
  // 49-byte worker entries follow it).
  ASSERT_GE(Bytes.size(), 4u + 49u * 2);
  size_t CountOff = Bytes.size() - 49 * 2 - 4;
  for (uint32_t Forged : {kMaxWireWorkerStats + 1, 0x20000000u}) {
    std::string Mut = Bytes;
    for (int I = 0; I != 4; ++I)
      Mut[CountOff + I] = static_cast<char>((Forged >> (8 * I)) & 0xff);
    Expected<StatsReplyMsg> D = decodeStatsReply(Mut);
    ASSERT_FALSE(D.ok());
    EXPECT_EQ(D.status().code(), ErrorCode::InvalidInput);
  }
}

TEST_F(ServeWire, GridRequestCountFieldCannotDriveAllocation) {
  // A forged cell count far beyond the actual payload is rejected by the
  // count*minsize <= payload guard, not trusted into a reserve().
  GridRequestMsg G;
  G.Cells = {{"a", Scheme::Baseline}};
  std::string Bytes = encodeGridRequest(G);
  uint32_t Forged = 0x40000000;
  for (int I = 0; I != 4; ++I)
    Bytes[I] = static_cast<char>((Forged >> (8 * I)) & 0xff);
  Expected<GridRequestMsg> G2 = decodeGridRequest(Bytes);
  ASSERT_FALSE(G2.ok());
  EXPECT_EQ(G2.status().code(), ErrorCode::InvalidInput);
}
