//===- tests/serve_wire_test.cpp - Serve framing + protocol fuzz ----------==//
//
// Pins the zero-trust contract of the serve transport (serve/Wire.h,
// serve/Protocol.h): a frame truncated at ANY byte offset parses as
// "incomplete" (keep reading) and a frame bit-flipped at ANY offset is
// rejected — never silently decoded as a different message. Also covers
// the socket paths (roundtrip, EOF, timeout, garbage, injected rpc.send /
// rpc.recv faults) and the strict Status-returning payload decoders.
//
//===----------------------------------------------------------------------==//

#include "serve/Protocol.h"
#include "serve/Wire.h"
#include "support/FaultInjector.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

using namespace dynace;
using namespace dynace::serve;

namespace {

/// Every test starts and ends with fault injection disabled (the injector
/// is a process singleton).
class ServeWire : public ::testing::Test {
protected:
  void SetUp() override {
    ASSERT_TRUE(FaultInjector::instance().configure("").ok());
  }
  void TearDown() override {
    ASSERT_TRUE(FaultInjector::instance().configure("").ok());
  }
};

/// A representative CellResult payload: every field type the protocol
/// uses (u8, u32, u64, strings with embedded NULs).
CellResultMsg sampleResult() {
  CellResultMsg M;
  M.CellIndex = 7;
  M.Cell.Benchmark = "compress";
  M.Cell.SchemeKind = Scheme::Hotspot;
  M.CacheKey = "0123456789abcdef";
  M.Failed = false;
  M.Code = 0;
  M.Attempts = 2;
  M.CacheHit = true;
  M.Quarantined = 1;
  M.Reason = "";
  M.ResultText = std::string("dynace-result-v3\nbin\0ary\n", 25);
  return M;
}

} // namespace

// ----------------------------------------------------------- Frame basics

TEST_F(ServeWire, FrameTypeNamesAreStable) {
  EXPECT_STREQ(frameTypeName(FrameType::Hello), "hello");
  EXPECT_STREQ(frameTypeName(FrameType::GridRequest), "grid-request");
  EXPECT_STREQ(frameTypeName(FrameType::CellAssign), "cell-assign");
  EXPECT_STREQ(frameTypeName(FrameType::CellResult), "cell-result");
  EXPECT_STREQ(frameTypeName(FrameType::Heartbeat), "heartbeat");
  EXPECT_STREQ(frameTypeName(FrameType::Shutdown), "shutdown");
  EXPECT_STREQ(frameTypeName(FrameType::Done), "done");
  EXPECT_STREQ(frameTypeName(FrameType::Error), "error");
  EXPECT_STREQ(frameTypeName(static_cast<FrameType>(0)), "?");
}

TEST_F(ServeWire, RoundTripsEveryTypeAndPayloadShape) {
  const FrameType Types[] = {FrameType::Hello,     FrameType::GridRequest,
                             FrameType::CellAssign, FrameType::CellResult,
                             FrameType::Heartbeat, FrameType::Shutdown,
                             FrameType::Done,      FrameType::Error};
  const std::string Payloads[] = {
      "", "x", std::string("\0\xff\x01", 3), std::string(4096, 'A')};
  for (FrameType T : Types)
    for (const std::string &P : Payloads) {
      std::string Bytes = encodeFrame(T, P);
      ASSERT_EQ(Bytes.size(), kFrameHeaderSize + P.size());
      size_t Consumed = 0;
      Expected<Frame> F = decodeFrame(Bytes, Consumed);
      ASSERT_TRUE(F.ok()) << F.status().toString();
      EXPECT_EQ(Consumed, Bytes.size());
      EXPECT_EQ(F.get().Type, T);
      EXPECT_EQ(F.get().Payload, P);
    }
}

TEST_F(ServeWire, DecodeConsumesOnlyTheFirstFrame) {
  std::string Two =
      encodeFrame(FrameType::Hello, "a") + encodeFrame(FrameType::Done, "b");
  size_t Consumed = 0;
  Expected<Frame> F = decodeFrame(Two, Consumed);
  ASSERT_TRUE(F.ok());
  EXPECT_EQ(F.get().Type, FrameType::Hello);
  EXPECT_EQ(Consumed, kFrameHeaderSize + 1);
}

// ------------------------------------------------------------- Fuzz sweeps

TEST_F(ServeWire, TruncationAtEveryOffsetParsesAsIncompleteNeverWrong) {
  std::string Bytes =
      encodeFrame(FrameType::CellResult, encodeCellResult(sampleResult()));
  for (size_t Len = 0; Len != Bytes.size(); ++Len) {
    size_t Consumed = 0;
    Expected<Frame> F = decodeFrame(Bytes.substr(0, Len), Consumed);
    ASSERT_FALSE(F.ok()) << "decoded a truncated frame at length " << Len;
    EXPECT_EQ(F.status().code(), ErrorCode::IoError) << "length " << Len;
    EXPECT_NE(F.status().message().find("incomplete"), std::string::npos)
        << "length " << Len << ": " << F.status().toString();
  }
}

TEST_F(ServeWire, BitFlipAtEveryOffsetNeverYieldsADifferentFrame) {
  std::string Bytes =
      encodeFrame(FrameType::CellResult, encodeCellResult(sampleResult()));
  for (size_t Off = 0; Off != Bytes.size(); ++Off)
    for (int Bit = 0; Bit != 8; ++Bit) {
      std::string Mut = Bytes;
      Mut[Off] = static_cast<char>(Mut[Off] ^ (1 << Bit));
      size_t Consumed = 0;
      Expected<Frame> F = decodeFrame(Mut, Consumed);
      // A flip may look "incomplete" (the length field grew) or invalid
      // (magic/version/type/length/checksum); it must never decode.
      ASSERT_FALSE(F.ok())
          << "accepted a corrupt frame (offset " << Off << " bit " << Bit
          << ")";
      EXPECT_TRUE(F.status().code() == ErrorCode::InvalidInput ||
                  F.status().code() == ErrorCode::IoError)
          << "offset " << Off << " bit " << Bit << ": "
          << F.status().toString();
    }
}

TEST_F(ServeWire, OversizedLengthIsRejectedBeforeBuffering) {
  // Craft a header whose length field exceeds the cap: rejected as
  // InvalidInput immediately — NOT treated as an incomplete frame the
  // receiver would buffer 4 GiB for.
  std::string Bytes = encodeFrame(FrameType::Hello, "");
  uint32_t Huge = kMaxFramePayload + 1;
  for (int I = 0; I != 4; ++I)
    Bytes[6 + I] = static_cast<char>((Huge >> (8 * I)) & 0xff);
  size_t Consumed = 0;
  Expected<Frame> F = decodeFrame(Bytes, Consumed);
  ASSERT_FALSE(F.ok());
  EXPECT_EQ(F.status().code(), ErrorCode::InvalidInput);
}

TEST_F(ServeWire, ForeignMagicIsRejectedAtAnyLength) {
  // Even a 1-byte stream that can never become "DYNW" is InvalidInput
  // (drop the connection), not "incomplete" (wait forever).
  size_t Consumed = 0;
  Expected<Frame> F = decodeFrame("G", Consumed);
  ASSERT_FALSE(F.ok());
  EXPECT_EQ(F.status().code(), ErrorCode::InvalidInput);
}

// ------------------------------------------------------------ Socket paths

TEST_F(ServeWire, SendRecvRoundTripsOverASocketpair) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  std::string Payload = encodeCellResult(sampleResult());
  ASSERT_TRUE(sendFrame(Fds[0], FrameType::CellResult, Payload).ok());
  ASSERT_TRUE(sendFrame(Fds[0], FrameType::Shutdown, "").ok());

  Expected<Frame> A = recvFrame(Fds[1], /*TimeoutMs=*/2000);
  ASSERT_TRUE(A.ok()) << A.status().toString();
  EXPECT_EQ(A.get().Type, FrameType::CellResult);
  EXPECT_EQ(A.get().Payload, Payload);
  Expected<Frame> B = recvFrame(Fds[1], /*TimeoutMs=*/2000);
  ASSERT_TRUE(B.ok()) << B.status().toString();
  EXPECT_EQ(B.get().Type, FrameType::Shutdown);

  // No data inside the poll budget -> Timeout (the connection is fine).
  Expected<Frame> T = recvFrame(Fds[1], /*TimeoutMs=*/20);
  ASSERT_FALSE(T.ok());
  EXPECT_EQ(T.status().code(), ErrorCode::Timeout);

  // Peer gone -> Unavailable, on both recv and send.
  ::close(Fds[0]);
  Expected<Frame> E = recvFrame(Fds[1], /*TimeoutMs=*/2000);
  ASSERT_FALSE(E.ok());
  EXPECT_EQ(E.status().code(), ErrorCode::Unavailable);
  Status S = sendFrame(Fds[1], FrameType::Hello, "");
  ASSERT_FALSE(S.ok());
  EXPECT_EQ(S.code(), ErrorCode::Unavailable);
  ::close(Fds[1]);
}

TEST_F(ServeWire, GarbageOnTheSocketIsInvalidInput) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  std::string Garbage = "this is not a DYNW frame";
  ASSERT_EQ(::send(Fds[0], Garbage.data(), Garbage.size(), 0),
            static_cast<ssize_t>(Garbage.size()));
  Expected<Frame> F = recvFrame(Fds[1], /*TimeoutMs=*/2000);
  ASSERT_FALSE(F.ok());
  EXPECT_EQ(F.status().code(), ErrorCode::InvalidInput);
  ::close(Fds[0]);
  ::close(Fds[1]);
}

TEST_F(ServeWire, RpcFaultSitesInjectDeterministically) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  FaultInjector &FI = FaultInjector::instance();

  ASSERT_TRUE(FI.configure("rpc.send:2:0").ok());
  Status S = sendFrame(Fds[0], FrameType::Hello, "");
  EXPECT_EQ(S.code(), ErrorCode::Injected); // Arm 0 fires; nothing sent.
  EXPECT_TRUE(sendFrame(Fds[0], FrameType::Hello, "x").ok()); // Arm 1 passes.

  ASSERT_TRUE(FI.configure("rpc.recv:2:0").ok());
  Expected<Frame> F = recvFrame(Fds[1], /*TimeoutMs=*/2000);
  ASSERT_FALSE(F.ok());
  EXPECT_EQ(F.status().code(), ErrorCode::Injected);
  // The injected receive read nothing: the frame is still queued and the
  // next receive gets it intact.
  F = recvFrame(Fds[1], /*TimeoutMs=*/2000);
  ASSERT_TRUE(F.ok()) << F.status().toString();
  EXPECT_EQ(F.get().Payload, "x");
  ::close(Fds[0]);
  ::close(Fds[1]);
}

// ------------------------------------------------- Strict payload decoders

TEST_F(ServeWire, ProtocolMessagesRoundTrip) {
  GridRequestMsg G;
  G.Cells = {{"compress", Scheme::Baseline},
             {"compress", Scheme::Hotspot},
             {"db", Scheme::Bbv}};
  Expected<GridRequestMsg> G2 = decodeGridRequest(encodeGridRequest(G));
  ASSERT_TRUE(G2.ok());
  ASSERT_EQ(G2.get().Cells.size(), 3u);
  EXPECT_EQ(G2.get().Cells[1].Benchmark, "compress");
  EXPECT_EQ(G2.get().Cells[1].SchemeKind, Scheme::Hotspot);
  EXPECT_EQ(G2.get().Cells[2].Benchmark, "db");

  CellAssignMsg A;
  A.CellIndex = 42;
  A.Cell = {"mtrt", Scheme::Bbv};
  Expected<CellAssignMsg> A2 = decodeCellAssign(encodeCellAssign(A));
  ASSERT_TRUE(A2.ok());
  EXPECT_EQ(A2.get().CellIndex, 42u);
  EXPECT_EQ(A2.get().Cell.Benchmark, "mtrt");

  CellResultMsg R = sampleResult();
  Expected<CellResultMsg> R2 = decodeCellResult(encodeCellResult(R));
  ASSERT_TRUE(R2.ok());
  EXPECT_EQ(R2.get().CellIndex, R.CellIndex);
  EXPECT_EQ(R2.get().Cell.Benchmark, R.Cell.Benchmark);
  EXPECT_EQ(R2.get().Cell.SchemeKind, R.Cell.SchemeKind);
  EXPECT_EQ(R2.get().CacheKey, R.CacheKey);
  EXPECT_EQ(R2.get().Attempts, R.Attempts);
  EXPECT_EQ(R2.get().CacheHit, R.CacheHit);
  EXPECT_EQ(R2.get().Quarantined, R.Quarantined);
  EXPECT_EQ(R2.get().ResultText, R.ResultText); // Embedded NULs survive.

  HelloMsg H{11, 222};
  Expected<HelloMsg> H2 = decodeHello(encodeHello(H));
  ASSERT_TRUE(H2.ok());
  EXPECT_EQ(H2.get().WorkerId, 11u);
  EXPECT_EQ(H2.get().Pid, 222u);

  HeartbeatMsg B{3, HeartbeatMsg::kIdle};
  Expected<HeartbeatMsg> B2 = decodeHeartbeat(encodeHeartbeat(B));
  ASSERT_TRUE(B2.ok());
  EXPECT_EQ(B2.get().CellIndex, HeartbeatMsg::kIdle);

  DoneMsg D{"report text\n", 21, 2};
  Expected<DoneMsg> D2 = decodeDone(encodeDone(D));
  ASSERT_TRUE(D2.ok());
  EXPECT_EQ(D2.get().Report, "report text\n");
  EXPECT_EQ(D2.get().Cells, 21u);
  EXPECT_EQ(D2.get().FailedCells, 2u);

  Expected<ErrorMsg> E2 = decodeErrorMsg(encodeErrorMsg({"why"}));
  ASSERT_TRUE(E2.ok());
  EXPECT_EQ(E2.get().Reason, "why");
}

TEST_F(ServeWire, DecodersRejectTruncationAtEveryOffsetAndTrailingBytes) {
  std::string Bytes = encodeCellResult(sampleResult());
  for (size_t Len = 0; Len != Bytes.size(); ++Len) {
    Expected<CellResultMsg> M = decodeCellResult(Bytes.substr(0, Len));
    ASSERT_FALSE(M.ok()) << "decoded a truncated payload at length " << Len;
    EXPECT_EQ(M.status().code(), ErrorCode::InvalidInput) << Len;
  }
  Expected<CellResultMsg> M = decodeCellResult(Bytes + "z");
  ASSERT_FALSE(M.ok()) << "accepted trailing bytes";
  EXPECT_EQ(M.status().code(), ErrorCode::InvalidInput);
}

TEST_F(ServeWire, DecodersRejectOutOfRangeEnumsAndFlags) {
  // Encoders write fields verbatim; decoders are the trust boundary.
  CellAssignMsg A;
  A.Cell = {"compress", static_cast<Scheme>(3)}; // No such scheme.
  Expected<CellAssignMsg> A2 = decodeCellAssign(encodeCellAssign(A));
  ASSERT_FALSE(A2.ok());
  EXPECT_EQ(A2.status().code(), ErrorCode::InvalidInput);

  CellResultMsg R = sampleResult();
  R.Code = 200; // No such ErrorCode.
  Expected<CellResultMsg> R2 = decodeCellResult(encodeCellResult(R));
  ASSERT_FALSE(R2.ok());
  EXPECT_EQ(R2.status().code(), ErrorCode::InvalidInput);
}

TEST_F(ServeWire, GridRequestCountFieldCannotDriveAllocation) {
  // A forged cell count far beyond the actual payload is rejected by the
  // count*minsize <= payload guard, not trusted into a reserve().
  GridRequestMsg G;
  G.Cells = {{"a", Scheme::Baseline}};
  std::string Bytes = encodeGridRequest(G);
  uint32_t Forged = 0x40000000;
  for (int I = 0; I != 4; ++I)
    Bytes[I] = static_cast<char>((Forged >> (8 * I)) & 0xff);
  Expected<GridRequestMsg> G2 = decodeGridRequest(Bytes);
  ASSERT_FALSE(G2.ok());
  EXPECT_EQ(G2.status().code(), ErrorCode::InvalidInput);
}
