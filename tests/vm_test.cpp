//===- tests/vm_test.cpp - Interpreter unit tests -------------------------==//

#include "isa/MethodBuilder.h"
#include "vm/Interpreter.h"
#include "vm/Specializer.h"
#include "workloads/WorkloadGenerator.h"
#include "workloads/WorkloadProfile.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstring>
#include <vector>

using namespace dynace;

namespace {

/// Builds a single-method program from a builder callback.
template <typename Fn> Program buildProgram(Fn &&Build) {
  Program P;
  MethodBuilder B("main");
  Build(P, B);
  P.setEntry(P.addMethod(B.take()));
  dynace::Status S = P.finalize();
  EXPECT_TRUE(S) << S.toString();
  return P;
}

/// Runs the program to completion and returns all emitted DynInsts.
std::vector<DynInst> trace(Interpreter &I, uint64_t Cap = 100000) {
  std::vector<DynInst> Out;
  DynInst D;
  while (!I.isHalted() && Out.size() < Cap) {
    I.step(D);
    Out.push_back(D);
  }
  return Out;
}

/// Records method enter/exit events.
struct RecordingListener : public VmListener {
  struct Event {
    bool Enter;
    MethodId Id;
    uint64_t Inclusive;
  };
  std::vector<Event> Events;
  void onMethodEnter(MethodId Id, uint64_t) override {
    Events.push_back({true, Id, 0});
  }
  void onMethodExit(MethodId Id, uint64_t Inclusive, uint64_t) override {
    Events.push_back({false, Id, Inclusive});
  }
};

} // namespace

// -------------------------------------------------------------- Arithmetic

struct AluCase {
  Opcode Op;
  int64_t A, B, Expected;
};

class AluTest : public ::testing::TestWithParam<AluCase> {};

TEST_P(AluTest, ComputesExpectedValue) {
  const AluCase &C = GetParam();
  Program P = buildProgram([&](Program &, MethodBuilder &B) {
    B.iconst(1, C.A);
    B.iconst(2, C.B);
    Instruction In; // Emit the op under test via the builder helpers.
    (void)In;
    switch (C.Op) {
    case Opcode::Add:
      B.add(3, 1, 2);
      break;
    case Opcode::Sub:
      B.sub(3, 1, 2);
      break;
    case Opcode::Mul:
      B.mul(3, 1, 2);
      break;
    case Opcode::Div:
      B.div(3, 1, 2);
      break;
    case Opcode::Rem:
      B.rem(3, 1, 2);
      break;
    case Opcode::And:
      B.and_(3, 1, 2);
      break;
    case Opcode::Or:
      B.or_(3, 1, 2);
      break;
    case Opcode::Xor:
      B.xor_(3, 1, 2);
      break;
    case Opcode::Shl:
      B.shl(3, 1, 2);
      break;
    case Opcode::Shr:
      B.shr(3, 1, 2);
      break;
    default:
      FAIL() << "unsupported case";
    }
    // Store the result so the test can read it back from memory.
    uint64_t Addr = B.size(); // placeholder to appease clang; not used
    (void)Addr;
    B.iconst(4, static_cast<int64_t>(kHeapBase));
    B.store(4, 3);
    B.halt();
  });
  Interpreter I(P);
  trace(I);
  EXPECT_EQ(static_cast<int64_t>(I.readWord(kHeapBase)), C.Expected);
}

INSTANTIATE_TEST_SUITE_P(
    IntOps, AluTest,
    ::testing::Values(
        AluCase{Opcode::Add, 7, 5, 12}, AluCase{Opcode::Add, -3, 3, 0},
        AluCase{Opcode::Sub, 7, 5, 2}, AluCase{Opcode::Sub, 5, 7, -2},
        AluCase{Opcode::Mul, 6, 7, 42}, AluCase{Opcode::Mul, -4, 3, -12},
        AluCase{Opcode::Div, 42, 6, 7}, AluCase{Opcode::Div, -42, 6, -7},
        AluCase{Opcode::Rem, 43, 6, 1},
        AluCase{Opcode::And, 0b1100, 0b1010, 0b1000},
        AluCase{Opcode::Or, 0b1100, 0b1010, 0b1110},
        AluCase{Opcode::Xor, 0b1100, 0b1010, 0b0110},
        AluCase{Opcode::Shl, 3, 4, 48}, AluCase{Opcode::Shr, 48, 4, 3},
        AluCase{Opcode::Shl, 1, 64, 1} /* shift masked to 0 */));

TEST(Interpreter, ImmediateOps) {
  Program P = buildProgram([](Program &, MethodBuilder &B) {
    B.iconst(1, 10);
    B.addi(2, 1, -3);
    B.muli(3, 2, 6);
    B.andi(4, 3, 0xf);
    B.iconst(5, static_cast<int64_t>(kHeapBase));
    B.store(5, 2, 0);
    B.store(5, 3, 8);
    B.store(5, 4, 16);
    B.halt();
  });
  Interpreter I(P);
  trace(I);
  EXPECT_EQ(I.readWord(kHeapBase), 7u);
  EXPECT_EQ(I.readWord(kHeapBase + 8), 42u);
  EXPECT_EQ(I.readWord(kHeapBase + 16), 10u); // 42 & 0xf
}

TEST(Interpreter, FloatingPointOps) {
  Program P = buildProgram([](Program &, MethodBuilder &B) {
    B.fconst(1, 1.5);
    B.fconst(2, 2.0);
    B.fmul(3, 1, 2);  // 3.0
    B.fadd(4, 3, 1);  // 4.5
    B.fsub(5, 4, 2);  // 2.5
    B.fdiv(6, 5, 2);  // 1.25
    B.iconst(7, static_cast<int64_t>(kHeapBase));
    B.store(7, 6);
    B.halt();
  });
  Interpreter I(P);
  trace(I);
  EXPECT_DOUBLE_EQ(std::bit_cast<double>(I.readWord(kHeapBase)), 1.25);
}

// ------------------------------------------------------------ Control flow

struct CondCase {
  CondKind Cond;
  int64_t A, B;
  bool Taken;
};

class CondTest : public ::testing::TestWithParam<CondCase> {};

TEST_P(CondTest, EvaluatesCondition) {
  const CondCase &C = GetParam();
  Program P = buildProgram([&](Program &, MethodBuilder &B) {
    B.iconst(1, C.A);
    B.iconst(2, C.B);
    B.iconst(3, 0);
    MethodBuilder::Label Skip = B.newLabel();
    B.br(C.Cond, 1, 2, Skip);
    B.iconst(3, 1); // Executed only on fall-through.
    B.bind(Skip);
    B.iconst(4, static_cast<int64_t>(kHeapBase));
    B.store(4, 3);
    B.halt();
  });
  Interpreter I(P);
  trace(I);
  // Taken branch skips the marker write, leaving 0.
  EXPECT_EQ(I.readWord(kHeapBase), C.Taken ? 0u : 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Conditions, CondTest,
    ::testing::Values(
        CondCase{CondKind::Eq, 5, 5, true}, CondCase{CondKind::Eq, 5, 6, false},
        CondCase{CondKind::Ne, 5, 6, true}, CondCase{CondKind::Ne, 5, 5, false},
        CondCase{CondKind::Lt, -1, 0, true}, CondCase{CondKind::Lt, 0, 0, false},
        CondCase{CondKind::Le, 0, 0, true}, CondCase{CondKind::Le, 1, 0, false},
        CondCase{CondKind::Gt, 1, 0, true}, CondCase{CondKind::Gt, 0, 0, false},
        CondCase{CondKind::Ge, 0, 0, true},
        CondCase{CondKind::Ge, -1, 0, false}));

TEST(Interpreter, LoopExecutesExpectedIterations) {
  Program P = buildProgram([](Program &, MethodBuilder &B) {
    B.iconst(1, 0);
    B.iconst(2, 0);
    MethodBuilder::Label Top = B.newLabel();
    B.bind(Top);
    B.addi(2, 2, 3);
    B.addi(1, 1, 1);
    B.bri(CondKind::Lt, 1, 10, Top);
    B.iconst(4, static_cast<int64_t>(kHeapBase));
    B.store(4, 2);
    B.halt();
  });
  Interpreter I(P);
  trace(I);
  EXPECT_EQ(I.readWord(kHeapBase), 30u);
}

TEST(Interpreter, BranchEventFields) {
  Program P = buildProgram([](Program &, MethodBuilder &B) {
    B.iconst(1, 1);
    MethodBuilder::Label L = B.newLabel();
    B.bri(CondKind::Eq, 1, 1, L); // Taken.
    B.iconst(2, 0);
    B.bind(L);
    B.halt();
  });
  Interpreter I(P);
  std::vector<DynInst> T = trace(I);
  ASSERT_GE(T.size(), 2u);
  const DynInst &Br = T[1];
  EXPECT_TRUE(Br.IsCondBranch);
  EXPECT_TRUE(Br.Taken);
  EXPECT_EQ(Br.Target, P.method(P.entry()).pcOf(3));
  EXPECT_EQ(Br.Class, OpClass::Branch);
}

// ------------------------------------------------------------------- Memory

TEST(Interpreter, LoadStoreRoundTrip) {
  Program P = buildProgram([](Program &Prog, MethodBuilder &B) {
    uint64_t G = Prog.addGlobal(4);
    B.iconst(1, static_cast<int64_t>(G));
    B.iconst(2, 1234);
    B.store(1, 2, 16);
    B.load(3, 1, 16);
    B.store(1, 3, 24);
    B.halt();
  });
  Interpreter I(P);
  trace(I);
  EXPECT_EQ(I.readWord(kHeapBase + 24), 1234u);
}

TEST(Interpreter, IndexedAddressing) {
  Program P = buildProgram([](Program &Prog, MethodBuilder &B) {
    uint64_t G = Prog.addGlobal(8);
    B.iconst(1, static_cast<int64_t>(G));
    B.iconst(2, 3); // index
    B.iconst(3, 99);
    B.storeIdx(1, 2, 3);  // G[3] = 99
    B.loadIdx(4, 1, 2);   // r4 = G[3]
    B.store(1, 4, 0);     // G[0] = r4
    B.halt();
  });
  Interpreter I(P);
  std::vector<DynInst> T = trace(I);
  EXPECT_EQ(I.readWord(kHeapBase), 99u);
  EXPECT_EQ(I.readWord(kHeapBase + 24), 99u);
  // The StoreIdx event must carry the effective address and no Dst.
  const DynInst &St = T[3];
  EXPECT_EQ(St.Class, OpClass::Store);
  EXPECT_EQ(St.MemAddr, kHeapBase + 24);
  EXPECT_EQ(St.Dst, kNoReg);
}

TEST(Interpreter, AllocReturnsDisjointRegions) {
  Program P = buildProgram([](Program &, MethodBuilder &B) {
    B.iconst(1, 16);
    B.alloc(2, 1);
    B.alloc(3, 1);
    B.iconst(4, static_cast<int64_t>(kHeapBase));
    B.store(4, 2, 0);
    B.store(4, 3, 8);
    B.halt();
  });
  Interpreter I(P);
  trace(I);
  uint64_t A = I.readWord(kHeapBase);
  uint64_t B2 = I.readWord(kHeapBase + 8);
  EXPECT_EQ(B2 - A, 16u * 8u);
}

TEST(Interpreter, MemoryWrapsInsteadOfCrashing) {
  Program P = buildProgram([](Program &, MethodBuilder &B) {
    B.iconst(1, static_cast<int64_t>(kHeapBase + (1ull << 40)));
    B.iconst(2, 7);
    B.store(1, 2);
    B.load(3, 1);
    B.iconst(4, static_cast<int64_t>(kHeapBase));
    B.store(4, 3, 8);
    B.halt();
  });
  Interpreter I(P);
  trace(I);
  EXPECT_EQ(I.readWord(kHeapBase + 8), 7u);
}

// -------------------------------------------------------------------- Calls

TEST(Interpreter, CallPassesArgsAndReturnsValue) {
  Program P;
  MethodBuilder Callee("add2");
  Callee.add(2, 0, 1);
  Callee.ret(2);
  MethodId CalleeId = P.addMethod(Callee.take());

  MethodBuilder Main("main");
  Main.iconst(5, 30);
  Main.iconst(6, 12);
  Main.call(7, CalleeId, /*FirstArg=*/5, /*NumArgs=*/2);
  Main.iconst(8, static_cast<int64_t>(kHeapBase));
  Main.store(8, 7);
  Main.halt();
  P.setEntry(P.addMethod(Main.take()));
  ASSERT_TRUE(P.finalize());

  Interpreter I(P);
  DynInst D;
  while (!I.isHalted())
    I.step(D);
  EXPECT_EQ(I.readWord(kHeapBase), 42u);
}

TEST(Interpreter, RecursionComputesFactorial) {
  Program P;
  // fact(n) = n <= 1 ? 1 : n * fact(n - 1)
  MethodBuilder F("fact");
  MethodBuilder::Label Base = F.newLabel();
  F.bri(CondKind::Le, 0, 1, Base);
  F.addi(1, 0, -1);
  F.call(2, /*Callee=*/0, /*FirstArg=*/1, /*NumArgs=*/1);
  F.mul(3, 0, 2);
  F.ret(3);
  F.bind(Base);
  F.iconst(3, 1);
  F.ret(3);
  MethodId FactId = P.addMethod(F.take());
  ASSERT_EQ(FactId, 0u);

  MethodBuilder Main("main");
  Main.iconst(1, 6);
  Main.call(2, FactId, /*FirstArg=*/1, /*NumArgs=*/1);
  Main.iconst(3, static_cast<int64_t>(kHeapBase));
  Main.store(3, 2);
  Main.halt();
  P.setEntry(P.addMethod(Main.take()));
  ASSERT_TRUE(P.finalize());

  Interpreter I(P);
  DynInst D;
  while (!I.isHalted())
    I.step(D);
  EXPECT_EQ(I.readWord(kHeapBase), 720u);
}

TEST(Interpreter, ListenerSeesBalancedEvents) {
  Program P;
  MethodBuilder Leaf("leaf");
  Leaf.iconst(1, 1);
  Leaf.ret(1);
  MethodId LeafId = P.addMethod(Leaf.take());

  MethodBuilder Main("main");
  Main.call(1, LeafId);
  Main.call(2, LeafId);
  Main.halt();
  MethodId MainId = P.addMethod(Main.take());
  P.setEntry(MainId);
  ASSERT_TRUE(P.finalize());

  Interpreter I(P);
  RecordingListener L;
  I.setListener(&L);
  I.reset(); // Re-fire the entry enter with the listener installed.
  DynInst D;
  while (!I.isHalted())
    I.step(D);

  // main enter, leaf enter/exit x2, main exit (via halt unwinding).
  ASSERT_EQ(L.Events.size(), 6u);
  EXPECT_TRUE(L.Events[0].Enter);
  EXPECT_EQ(L.Events[0].Id, MainId);
  EXPECT_TRUE(L.Events[1].Enter);
  EXPECT_EQ(L.Events[1].Id, LeafId);
  EXPECT_FALSE(L.Events[2].Enter);
  EXPECT_EQ(L.Events[2].Inclusive, 2u); // iconst + ret.
  EXPECT_FALSE(L.Events[5].Enter);
  EXPECT_EQ(L.Events[5].Id, MainId);
}

TEST(Interpreter, InclusiveSizeIncludesCallees) {
  Program P;
  MethodBuilder Leaf("leaf");
  Leaf.iconst(1, 1);
  Leaf.iconst(2, 2);
  Leaf.ret(1);
  MethodId LeafId = P.addMethod(Leaf.take());

  MethodBuilder Mid("mid");
  Mid.call(1, LeafId);
  Mid.ret(1);
  MethodId MidId = P.addMethod(Mid.take());

  MethodBuilder Main("main");
  Main.call(1, MidId);
  Main.halt();
  P.setEntry(P.addMethod(Main.take()));
  ASSERT_TRUE(P.finalize());

  Interpreter I(P);
  RecordingListener L;
  I.setListener(&L);
  I.reset();
  DynInst D;
  while (!I.isHalted())
    I.step(D);

  // Find mid's exit: inclusive must cover call + leaf(3) + ret = 5.
  bool Found = false;
  for (const auto &E : L.Events)
    if (!E.Enter && E.Id == MidId) {
      EXPECT_EQ(E.Inclusive, 5u);
      Found = true;
    }
  EXPECT_TRUE(Found);
}

// --------------------------------------------------------------- Lifecycle

TEST(Interpreter, RunCapStopsEarly) {
  Program P = buildProgram([](Program &, MethodBuilder &B) {
    B.iconst(1, 0);
    MethodBuilder::Label Top = B.newLabel();
    B.bind(Top);
    B.addi(1, 1, 1);
    B.jmp(Top); // Infinite loop.
  });
  Interpreter I(P);
  uint64_t Ran = I.run(1000);
  EXPECT_EQ(Ran, 1000u);
  EXPECT_FALSE(I.isHalted());
  EXPECT_EQ(I.instructionCount(), 1000u);
}

TEST(Interpreter, ResetRestoresInitialState) {
  Program P = buildProgram([](Program &, MethodBuilder &B) {
    B.iconst(1, 5);
    B.iconst(2, static_cast<int64_t>(kHeapBase));
    B.store(2, 1);
    B.halt();
  });
  Interpreter I(P);
  trace(I);
  EXPECT_TRUE(I.isHalted());
  EXPECT_EQ(I.readWord(kHeapBase), 5u);
  I.reset();
  EXPECT_FALSE(I.isHalted());
  EXPECT_EQ(I.instructionCount(), 0u);
  EXPECT_EQ(I.readWord(kHeapBase), 0u); // Memory zeroed.
}

TEST(Interpreter, DeterministicInstructionCount) {
  Program P = buildProgram([](Program &, MethodBuilder &B) {
    B.iconst(1, 0);
    MethodBuilder::Label Top = B.newLabel();
    B.bind(Top);
    B.addi(1, 1, 1);
    B.bri(CondKind::Lt, 1, 100, Top);
    B.halt();
  });
  Interpreter A(P), B2(P);
  DynInst D;
  while (!A.isHalted())
    A.step(D);
  while (!B2.isHalted())
    B2.step(D);
  EXPECT_EQ(A.instructionCount(), B2.instructionCount());
  EXPECT_EQ(A.instructionCount(), 1u + 100u * 2u + 1u);
}

TEST(Interpreter, StepAfterHaltIsNoOp) {
  Program P = buildProgram([](Program &, MethodBuilder &B) { B.halt(); });
  Interpreter I(P);
  DynInst D;
  I.step(D);
  EXPECT_TRUE(I.isHalted());
  uint64_t Count = I.instructionCount();
  EXPECT_EQ(I.step(D), Interpreter::Status::Halted);
  EXPECT_EQ(I.instructionCount(), Count);
}

TEST(Interpreter, PcAddressesMatchMethodLayout) {
  Program P = buildProgram([](Program &, MethodBuilder &B) {
    B.iconst(1, 1);
    B.iconst(2, 2);
    B.halt();
  });
  Interpreter I(P);
  std::vector<DynInst> T = trace(I);
  ASSERT_EQ(T.size(), 3u);
  EXPECT_EQ(T[0].PC, kCodeBase);
  EXPECT_EQ(T[1].PC, kCodeBase + kInstrBytes);
  EXPECT_EQ(T[2].PC, kCodeBase + 2 * kInstrBytes);
}

// -------------------------------------------------------------------- Traps

namespace {

/// Builds a div-by-zero program: two retiring iconsts, then the trap.
Program divZeroProgram(Opcode DivOrRem) {
  return buildProgram([&](Program &, MethodBuilder &B) {
    B.iconst(1, 42);
    B.iconst(2, 0);
    if (DivOrRem == Opcode::Div)
      B.div(3, 1, 2);
    else
      B.rem(3, 1, 2);
    B.halt();
  });
}

} // namespace

TEST(Trap, DivideByZeroTrapsWithoutRetiring) {
  Program P = divZeroProgram(Opcode::Div);
  Interpreter I(P);
  DynInst D;
  EXPECT_EQ(I.step(D), Interpreter::Status::Running);
  EXPECT_EQ(I.step(D), Interpreter::Status::Running);
  EXPECT_EQ(I.step(D), Interpreter::Status::Trapped);
  EXPECT_TRUE(I.trapped());
  EXPECT_FALSE(I.isHalted());
  EXPECT_EQ(I.trapInfo().Kind, TrapKind::DivideByZero);
  EXPECT_EQ(I.trapInfo().Method, P.entry());
  EXPECT_EQ(I.trapInfo().PC, kCodeBase + 2 * kInstrBytes);
  // The trapping instruction did not retire: only the two iconsts count.
  EXPECT_EQ(I.instructionCount(), 2u);
  // The trap is sticky: further stepping is a no-op.
  EXPECT_EQ(I.step(D), Interpreter::Status::Trapped);
  EXPECT_EQ(I.instructionCount(), 2u);
}

TEST(Trap, RemainderByZeroTrapsInBatchDispatch) {
  Program P = divZeroProgram(Opcode::Rem);
  Interpreter I(P);
  DynInst Buf[16];
  // The batch stops at the trap having filled only the retired prefix.
  EXPECT_EQ(I.stepBatch(Buf, 16), 2u);
  EXPECT_TRUE(I.trapped());
  EXPECT_EQ(I.trapInfo().Kind, TrapKind::DivideByZero);
  EXPECT_EQ(I.trapInfo().PC, kCodeBase + 2 * kInstrBytes);
  EXPECT_EQ(I.instructionCount(), 2u);
  // A trapped machine refuses further batches.
  EXPECT_EQ(I.stepBatch(Buf, 16), 0u);
}

TEST(Trap, InvalidOpcodeTraps) {
  // The verifier checks operands and terminators but not the opcode byte
  // itself; the interpreter's trap is the backstop for a rotten byte.
  Program P;
  Method M;
  M.Name = "rotten";
  Instruction Bad;
  Bad.Op = static_cast<Opcode>(200);
  Instruction Halt;
  Halt.Op = Opcode::Halt;
  M.Code = {Bad, Halt};
  P.setEntry(P.addMethod(std::move(M)));
  ASSERT_TRUE(P.finalize());

  // step() path.
  Interpreter I(P);
  DynInst D;
  EXPECT_EQ(I.step(D), Interpreter::Status::Trapped);
  EXPECT_EQ(I.trapInfo().Kind, TrapKind::InvalidOpcode);
  EXPECT_EQ(I.instructionCount(), 0u);

  // stepBatch() path.
  Interpreter J(P);
  DynInst Buf[8];
  EXPECT_EQ(J.stepBatch(Buf, 8), 0u);
  EXPECT_TRUE(J.trapped());
  EXPECT_EQ(J.trapInfo().Kind, TrapKind::InvalidOpcode);
}

TEST(Trap, RunawayRecursionTrapsAsStackOverflow) {
  // A self-recursive method with no base case: every executed Call pushes
  // a frame until the depth bound trips.
  Program P;
  MethodBuilder B("rec");
  B.call(1, /*Callee=*/0);
  B.ret(1);
  P.setEntry(P.addMethod(B.take()));
  ASSERT_TRUE(P.finalize());

  Interpreter I(P);
  uint64_t Executed = I.run(10 * kMaxCallDepth);
  EXPECT_TRUE(I.trapped());
  EXPECT_FALSE(I.isHalted());
  EXPECT_EQ(I.trapInfo().Kind, TrapKind::StackOverflow);
  EXPECT_EQ(I.callDepth(), kMaxCallDepth);
  // Every retired instruction was a Call, one per pushed frame (the entry
  // frame is pushed by reset, not by a Call); the trapping Call did not
  // retire.
  EXPECT_EQ(Executed, kMaxCallDepth - 1);
  EXPECT_EQ(I.instructionCount(), kMaxCallDepth - 1);
}

TEST(Trap, ResetClearsTheTrap) {
  Program P = divZeroProgram(Opcode::Div);
  Interpreter I(P);
  I.run(100);
  ASSERT_TRUE(I.trapped());
  I.reset();
  EXPECT_FALSE(I.trapped());
  EXPECT_EQ(I.trapInfo().Kind, TrapKind::None);
  EXPECT_EQ(I.instructionCount(), 0u);
  // The machine re-executes to the same deterministic trap.
  I.run(100);
  EXPECT_TRUE(I.trapped());
  EXPECT_EQ(I.trapInfo().Kind, TrapKind::DivideByZero);
}

TEST(Trap, TrapKindNamesAreStable) {
  EXPECT_STREQ(trapKindName(TrapKind::None), "none");
  EXPECT_STREQ(trapKindName(TrapKind::InvalidOpcode), "invalid-opcode");
  EXPECT_STREQ(trapKindName(TrapKind::PcOutOfRange), "pc-out-of-range");
  EXPECT_STREQ(trapKindName(TrapKind::BadCallTarget), "bad-call-target");
  EXPECT_STREQ(trapKindName(TrapKind::DivideByZero), "divide-by-zero");
  EXPECT_STREQ(trapKindName(TrapKind::StackOverflow), "stack-overflow");
}

// ------------------------------------------------------- Specialization

// The specialized kernels (Fused2/Fused3/BranchSpec) are a pure
// performance substitution: for every program, every batch size, and
// every stopping condition they must emit the exact DynInst stream the
// generic kernel emits and leave identical architectural state behind.
// These tests run the two kernels in lockstep over the full SPECjvm98
// profile set plus a high-skew Zipf variant of each, with batch lengths
// drawn from an LCG so batch boundaries land at arbitrary points in
// fused groups.

namespace {

/// The event-stream contract: fields the timing model and BBV accounting
/// consume. Target is intentionally excluded (the generic kernel leaves
/// it stale for non-branches), MemAddr only matters for memory ops and
/// Taken only for conditional branches.
void expectSameEvent(const DynInst &G, const DynInst &S, uint64_t Idx) {
  ASSERT_EQ(G.PC, S.PC) << "at instruction " << Idx;
  ASSERT_EQ(G.Class, S.Class) << "at instruction " << Idx;
  ASSERT_EQ(G.Dst, S.Dst) << "at instruction " << Idx;
  ASSERT_EQ(G.Src1, S.Src1) << "at instruction " << Idx;
  ASSERT_EQ(G.Src2, S.Src2) << "at instruction " << Idx;
  ASSERT_EQ(G.IsCondBranch, S.IsCondBranch) << "at instruction " << Idx;
  if (G.Class == OpClass::Load || G.Class == OpClass::Store)
    ASSERT_EQ(G.MemAddr, S.MemAddr) << "at instruction " << Idx;
  if (G.IsCondBranch)
    ASSERT_EQ(G.Taken, S.Taken) << "at instruction " << Idx;
}

/// FNV-1a over the whole heap — cheap way to compare final memory images.
uint64_t heapDigest(const Interpreter &I) {
  uint64_t H = 1469598103934665603ull;
  for (uint64_t W = 0; W != I.heapWords(); ++W) {
    uint64_t V = I.readWord(W * 8);
    for (int B = 0; B != 8; ++B) {
      H ^= (V >> (8 * B)) & 0xff;
      H *= 1099511628211ull;
    }
  }
  return H;
}

/// Steps \p G (generic) and \p S (specialized image installed) in
/// lockstep for up to \p Cap instructions with LCG-drawn batch sizes,
/// asserting stream and state equality throughout.
void runLockstep(const Program &P, SpecVariant V, uint64_t Cap,
                 uint64_t Seed) {
  Interpreter G(P), S(P);
  SpecProgram Image = Specializer::build(P, V);
  S.setSpecialization(&Image);
  std::vector<DynInst> BG(257), BS(257);
  uint64_t Lcg = Seed, Checked = 0;
  while (Checked < Cap) {
    Lcg = Lcg * 6364136223846793005ull + 1442695040888963407ull;
    // Mostly small batches (so boundaries bisect fused pairs/triples),
    // with occasional full buffers.
    static constexpr size_t Sizes[] = {1, 2, 3, 7, 64, 257};
    size_t N = Sizes[(Lcg >> 33) % 6];
    size_t NG = G.stepBatch(BG.data(), N);
    size_t NS = S.stepBatch(BS.data(), N);
    ASSERT_EQ(NG, NS) << "batch length diverged after " << Checked;
    for (size_t I = 0; I != NG; ++I)
      expectSameEvent(BG[I], BS[I], Checked + I);
    Checked += NG;
    ASSERT_EQ(G.instructionCount(), S.instructionCount());
    ASSERT_EQ(G.isHalted(), S.isHalted());
    ASSERT_EQ(G.trapped(), S.trapped());
    if (G.isHalted() || G.trapped())
      break;
    // Without a listener the kernels execute method boundaries inline, so
    // a zero-length batch is only legal at end of execution.
    ASSERT_NE(NG, 0u) << "zero-length batch while still running";
  }
  EXPECT_EQ(G.topFrameRegs(), S.topFrameRegs());
  EXPECT_EQ(heapDigest(G), heapDigest(S));
}

} // namespace

TEST(Specializer, DifferentialAgainstGenericAllProfiles) {
  for (const WorkloadProfile &Base : specjvm98Profiles()) {
    for (bool Skewed : {false, true}) {
      WorkloadProfile P = Skewed ? withZipfTheta(Base, 1.2) : Base;
      GeneratedWorkload W = WorkloadGenerator::generate(P);
      for (SpecVariant V :
           {SpecVariant::Fused2, SpecVariant::Fused3,
            SpecVariant::BranchSpec, SpecVariant::Unguarded}) {
        SCOPED_TRACE(P.Name + "/" + specVariantName(V));
        runLockstep(W.Prog, V, 120'000,
                    Specializer::programDigest(W.Prog) ^
                        static_cast<uint64_t>(V));
      }
    }
  }
}

TEST(Specializer, DifferentialWithListenerStopsBeforeBoundaries) {
  // With a listener installed (the System::run configuration) both
  // kernels stop BEFORE Call/Ret/Halt and the boundary instruction runs
  // through step(), firing method-entry/exit hooks. The two kernels must
  // agree on where the stops fall and on the hook sequence.
  struct CountingListener : VmListener {
    std::vector<std::pair<bool, MethodId>> Hooks;
    void onMethodEnter(MethodId Id, uint64_t) override {
      Hooks.push_back({true, Id});
    }
    void onMethodExit(MethodId Id, uint64_t, uint64_t) override {
      Hooks.push_back({false, Id});
    }
  };
  for (const WorkloadProfile &Base : specjvm98Profiles()) {
    if (Base.Name != "compress" && Base.Name != "javac")
      continue;
    GeneratedWorkload W = WorkloadGenerator::generate(Base);
    SpecProgram Image =
        Specializer::build(W.Prog, SpecVariant::BranchSpec);
    Interpreter G(W.Prog), S(W.Prog);
    CountingListener LG, LS;
    G.setListener(&LG);
    S.setListener(&LS);
    S.setSpecialization(&Image);
    std::vector<DynInst> BG(64), BS(64);
    uint64_t Checked = 0;
    while (Checked < 100'000 && !G.isHalted() && !G.trapped()) {
      size_t NG = G.stepBatch(BG.data(), 64);
      size_t NS = S.stepBatch(BS.data(), 64);
      ASSERT_EQ(NG, NS) << "stop point diverged after " << Checked;
      for (size_t I = 0; I != NG; ++I)
        expectSameEvent(BG[I], BS[I], Checked + I);
      Checked += NG;
      if (NG == 0) {
        // Next instruction is a method boundary: run it serially, as
        // System::runLoop does.
        DynInst DG, DS;
        G.step(DG);
        S.step(DS);
        if (!G.trapped())
          expectSameEvent(DG, DS, Checked);
        ++Checked;
      }
      ASSERT_EQ(G.instructionCount(), S.instructionCount());
      ASSERT_EQ(G.isHalted(), S.isHalted());
      ASSERT_EQ(G.trapped(), S.trapped());
    }
    ASSERT_EQ(LG.Hooks, LS.Hooks);
    EXPECT_GT(LG.Hooks.size(), 0u);
  }
}

TEST(Specializer, ParseSpecializeValueAcceptsDocumentedForms) {
  struct Case {
    const char *Value;
    SpecRequest::Kind K;
    SpecVariant V;
  } Cases[] = {
      {"0", SpecRequest::Kind::Off, SpecVariant::Generic},
      {"generic", SpecRequest::Kind::Off, SpecVariant::Generic},
      {"1", SpecRequest::Kind::Force, SpecVariant::Unguarded},
      {"auto", SpecRequest::Kind::Auto, SpecVariant::Generic},
      {"fused2", SpecRequest::Kind::Force, SpecVariant::Fused2},
      {"fused3", SpecRequest::Kind::Force, SpecVariant::Fused3},
      {"branchspec", SpecRequest::Kind::Force, SpecVariant::BranchSpec},
      {"unguarded", SpecRequest::Kind::Force, SpecVariant::Unguarded},
  };
  for (const Case &C : Cases) {
    Expected<SpecRequest> R = parseSpecializeValue(C.Value);
    ASSERT_TRUE(R) << C.Value;
    EXPECT_EQ(R->K, C.K) << C.Value;
    if (R->K == SpecRequest::Kind::Force)
      EXPECT_EQ(R->Variant, C.V) << C.Value;
  }
}

TEST(Specializer, ParseSpecializeValueRejectsEverythingElse) {
  // Strict parsing: misconfiguration fails loudly instead of silently
  // running the wrong kernel.
  for (const char *Bad :
       {"", "2", "on", "off", "AUTO", " auto", "auto ", "Fused2",
        "fused4", "branch", "true", "yes"}) {
    Expected<SpecRequest> R = parseSpecializeValue(Bad);
    EXPECT_FALSE(R) << "'" << Bad << "' should not parse";
  }
}

// ------------------------------------------------------- unguarded tier

namespace {

/// True when the two images encode the same instructions (handlers,
/// operands, events, fusion plans) — everything except the Variant tag.
void expectSameImage(const SpecProgram &A, const SpecProgram &B) {
  ASSERT_EQ(A.Methods.size(), B.Methods.size());
  for (size_t M = 0; M != A.Methods.size(); ++M) {
    const SpecMethodImage &IA = A.Methods[M], &IB = B.Methods[M];
    ASSERT_EQ(IA.Insts.size(), IB.Insts.size()) << "method " << M;
    for (size_t I = 0; I != IA.Insts.size(); ++I)
      EXPECT_EQ(std::memcmp(&IA.Insts[I], &IB.Insts[I], sizeof(SpecInst)),
                0)
          << "method " << M << " instr " << I;
    EXPECT_EQ(IA.Plan.size(), IB.Plan.size()) << "method " << M;
  }
  EXPECT_EQ(A.FusedInstructions, B.FusedInstructions);
  EXPECT_EQ(A.TotalInstructions, B.TotalInstructions);
}

/// Counts image instructions whose handler lies in [First, Last].
size_t countHandlersIn(const SpecProgram &P, uint16_t First, uint16_t Last) {
  size_t N = 0;
  for (const SpecMethodImage &M : P.Methods)
    for (const SpecInst &SI : M.Insts)
      if (SI.Handler >= First && SI.Handler <= Last)
        ++N;
  return N;
}

} // namespace

TEST(Specializer, UnguardedWithoutProofsMatchesBranchSpecImage) {
  // Every address below flows through Alloc (top in the range lattice)
  // and the divisor is a loop-carried unknown, so the dataflow engine can
  // prove nothing. The Unguarded image must then be instruction-identical
  // to BranchSpec: proofs are the only licensed difference.
  Program P = buildProgram([](Program &, MethodBuilder &B) {
    MethodBuilder::Label Top = B.newLabel();
    B.iconst(/*Dst=*/1, 4);
    B.alloc(/*Dst=*/2, /*Words=*/1); // r2 = dynamic pointer: range top
    B.iconst(/*Dst=*/3, 9);
    B.store(/*Base=*/2, /*Value=*/3);
    B.bind(Top);
    B.load(/*Dst=*/4, /*Base=*/2);
    B.div(/*Dst=*/5, /*A=*/4, /*B=*/1); // r1 only provably != 0 via const
    B.addi(/*Dst=*/1, /*A=*/1, -1);
    B.storeIdx(/*Base=*/2, /*Index=*/0, /*Value=*/5);
    B.bri(CondKind::Gt, /*A=*/1, 1, Top);
    B.halt();
  });
  // r1 IS provably nonzero at the div ([1, 4] after widening-free
  // convergence)... unless the loop's decrement widens it to top. Either
  // way the *memory* ops stay unprovable; accept the div going either
  // way and compare everything else via the full-image equality below
  // only when no proof landed at all.
  SpecProgram BS = Specializer::build(P, SpecVariant::BranchSpec);
  SpecProgram U = Specializer::build(P, SpecVariant::Unguarded);
  EXPECT_EQ(BS.Variant, SpecVariant::BranchSpec);
  EXPECT_EQ(U.Variant, SpecVariant::Unguarded);
  EXPECT_EQ(countHandlersIn(U, HS_LoadU, HS_StoreIdxU), 0u)
      << "no memory op here is provable; unguarded mem handlers leaked in";
  if (countHandlersIn(U, HS_LoadU, HS_Count - 1) == 0)
    expectSameImage(BS, U);
}

TEST(Specializer, UnguardedRemapsProvenMemAndDivHandlers) {
  // Static global base + constant offsets + masked index: every memory
  // access is provably inside [kHeapBase, kHeapBase + 8 * globalWords)
  // and the divisor is a nonzero constant, so the Unguarded image must
  // carry unguarded handlers somewhere (as a single or inside a fused
  // group) and lockstep must stay bit-identical.
  Program P = buildProgram([](Program &Pr, MethodBuilder &B) {
    uint64_t Base = Pr.addGlobal(16);
    MethodBuilder::Label Top = B.newLabel();
    B.iconst(/*Dst=*/1, static_cast<int64_t>(Base));
    B.iconst(/*Dst=*/2, 40);
    B.iconst(/*Dst=*/6, 3);
    B.store(/*Base=*/1, /*Value=*/2, /*Disp=*/8);
    B.bind(Top);
    B.load(/*Dst=*/3, /*Base=*/1, /*Disp=*/8);
    B.andi(/*Dst=*/4, /*A=*/3, 15); // index in [0, 15]
    B.loadIdx(/*Dst=*/5, /*Base=*/1, /*Index=*/4);
    B.div(/*Dst=*/5, /*A=*/5, /*B=*/6); // divisor r6 == 3
    B.storeIdx(/*Base=*/1, /*Index=*/4, /*Value=*/5);
    B.addi(/*Dst=*/2, /*A=*/2, -1);
    B.store(/*Base=*/1, /*Value=*/2, /*Disp=*/8);
    B.bri(CondKind::Gt, /*A=*/2, 0, Top);
    B.halt();
  });
  SpecProgram U = Specializer::build(P, SpecVariant::Unguarded);
  EXPECT_GT(countHandlersIn(U, HS_LoadU, HS_Count - 1), 0u)
      << "provable facts produced no unguarded handlers";
  EXPECT_GT(countHandlersIn(U, HS_DivNZ, HS_RemNZ), 0u)
      << "constant nonzero divisor did not unlock HS_DivNZ";
  // The proof-elided kernels must be observationally identical.
  runLockstep(P, SpecVariant::Unguarded, 2'000,
              Specializer::programDigest(P));
}

TEST(Specializer, UnguardedImagesAreDeterministic) {
  GeneratedWorkload W = WorkloadGenerator::generate(*findProfile("compress"));
  SpecProgram A = Specializer::build(W.Prog, SpecVariant::Unguarded);
  SpecProgram B = Specializer::build(W.Prog, SpecVariant::Unguarded);
  expectSameImage(A, B);
  // compress is proof-dense (constant global bases, masked indices):
  // the unguarded tier must actually elide guards there.
  EXPECT_GT(countHandlersIn(A, HS_LoadU, HS_Count - 1), 0u);
}
