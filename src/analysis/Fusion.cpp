//===- analysis/Fusion.cpp - Superinstruction fusion analysis -------------===//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/Fusion.h"

#include <algorithm>
#include <map>

using namespace dynace;
using namespace dynace::analysis;

bool dynace::analysis::isFusibleInterior(Opcode Op) {
  switch (Op) {
  case Opcode::IConst:
  case Opcode::Mov:
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::AddI:
  case Opcode::MulI:
  case Opcode::AndI:
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv: // IEEE: x/0 is inf/nan, never a trap.
  case Opcode::Load:
  case Opcode::Store:
  case Opcode::LoadIdx:
  case Opcode::StoreIdx:
  case Opcode::Alloc: // Bump allocation wraps, never traps.
    return true;
  case Opcode::Div: // Traps on zero divisor; a trap must not retire
  case Opcode::Rem: // the instructions fused behind it.
  case Opcode::Br:
  case Opcode::BrI:
  case Opcode::Jmp:
  case Opcode::Call:
  case Opcode::Ret:
  case Opcode::Halt:
    return false;
  }
  return false;
}

std::vector<FusionRun> dynace::analysis::fusibleRuns(const Method &M,
                                                     const Cfg &G) {
  std::vector<FusionRun> Runs;
  for (const BasicBlock &B : G.blocks()) {
    uint32_t I = B.First;
    while (I <= B.Last) {
      if (!isFusibleInterior(M.Code[I].Op)) {
        ++I;
        continue;
      }
      uint32_t First = I;
      while (I <= B.Last && isFusibleInterior(M.Code[I].Op))
        ++I;
      bool EndsInBranch = false;
      // A Br/BrI terminating the block may ride along as the run's final
      // instruction: it cannot be entered mid-group (it ends the block)
      // and fusing the compare-branch is the classic pair.
      if (I == B.Last && (M.Code[I].Op == Opcode::Br ||
                          M.Code[I].Op == Opcode::BrI)) {
        EndsInBranch = true;
        ++I;
      }
      uint32_t Len = I - First;
      if (Len >= 2)
        Runs.push_back({First, Len, EndsInBranch});
    }
  }
  std::sort(Runs.begin(), Runs.end(),
            [](const FusionRun &A, const FusionRun &B) {
              return A.First < B.First;
            });
  return Runs;
}

std::vector<HotSequence>
dynace::analysis::hotSequences(const Method &M, const Cfg &G, size_t TopK,
                               uint64_t LoopWeight) {
  // Loop headers: targets of a retreating CFG edge (successor block does
  // not start later than its source) — the static stand-in for "executed
  // many times".
  std::vector<bool> IsLoopHeader(G.numBlocks(), false);
  const auto &Blocks = G.blocks();
  for (size_t S = 0; S < Blocks.size(); ++S)
    for (uint32_t T : Blocks[S].Succs)
      if (Blocks[T].First <= Blocks[S].First)
        IsLoopHeader[T] = true;

  struct SeqInfo {
    uint64_t Weight = 0;
    uint32_t FirstSeen = 0;
  };
  std::map<std::vector<Opcode>, SeqInfo> Counts;
  for (const FusionRun &R : fusibleRuns(M, G)) {
    uint32_t Block = G.blockContaining(R.First);
    uint64_t W = IsLoopHeader[Block] ? LoopWeight : 1;
    for (uint32_t N = 2; N <= 3; ++N) {
      if (R.Len < N)
        continue;
      for (uint32_t I = R.First; I + N <= R.First + R.Len; ++I) {
        std::vector<Opcode> Key;
        Key.reserve(N);
        for (uint32_t K = 0; K < N; ++K)
          Key.push_back(M.Code[I + K].Op);
        auto [It, Fresh] = Counts.try_emplace(std::move(Key));
        It->second.Weight += W;
        if (Fresh)
          It->second.FirstSeen = I;
      }
    }
  }

  std::vector<HotSequence> Out;
  Out.reserve(Counts.size());
  for (auto &[Ops, Info] : Counts)
    Out.push_back({Ops, Info.Weight});
  std::stable_sort(Out.begin(), Out.end(),
                   [&](const HotSequence &A, const HotSequence &B) {
                     if (A.Weight != B.Weight)
                       return A.Weight > B.Weight;
                     if (A.Ops.size() != B.Ops.size())
                       return A.Ops.size() < B.Ops.size();
                     return Counts.at(A.Ops).FirstSeen <
                            Counts.at(B.Ops).FirstSeen;
                   });
  if (Out.size() > TopK)
    Out.resize(TopK);
  return Out;
}

namespace {

void addFusionDiag(std::vector<Diagnostic> &Diags, MethodId Id, uint32_t Instr,
                   std::string Message) {
  Diagnostic D;
  D.Kind = DiagKind::FusionAcrossBoundary;
  D.Method = Id;
  D.Instr = Instr;
  D.Message = std::move(Message);
  Diags.push_back(std::move(D));
}

} // namespace

std::vector<Diagnostic>
dynace::analysis::verifyFusionPlan(const Program &P, MethodId Id,
                                   const std::vector<FusionGroup> &Groups) {
  std::vector<Diagnostic> Diags;
  if (Id >= P.numMethods()) {
    addFusionDiag(Diags, Id, 0,
                  "fusion plan names method id " + std::to_string(Id) +
                      " of a " + std::to_string(P.numMethods()) +
                      "-method program");
    return Diags;
  }
  const Method &M = P.method(Id);
  const Cfg G = Cfg::build(M);
  std::vector<bool> Covered(M.Code.size(), false);
  for (const FusionGroup &F : Groups) {
    if (F.Len < 2 || F.Len > 3) {
      addFusionDiag(Diags, Id, F.First,
                    "fusion group of length " + std::to_string(F.Len) +
                        " (only pairs and triples are instantiated)");
      continue;
    }
    if (F.First >= M.Code.size() || F.Len > M.Code.size() - F.First) {
      addFusionDiag(Diags, Id, F.First,
                    "fusion group [" + std::to_string(F.First) + ", +" +
                        std::to_string(F.Len) + ") leaves the method's " +
                        std::to_string(M.Code.size()) + " instructions");
      continue;
    }
    const uint32_t Last = F.First + F.Len - 1;
    const uint32_t Block = G.blockContaining(F.First);
    if (G.blocks()[Block].Last < Last ||
        G.blockContaining(Last) != Block) {
      addFusionDiag(Diags, Id, F.First,
                    "fusion group crosses a basic-block boundary at instr " +
                        std::to_string(G.blocks()[Block].Last + 1) +
                        " (a branch may enter mid-group)");
      continue;
    }
    bool Bad = false;
    for (uint32_t I = F.First; I <= Last && !Bad; ++I) {
      const Opcode Op = M.Code[I].Op;
      const bool IsTailBranch =
          I == Last && (Op == Opcode::Br || Op == Opcode::BrI);
      if (Op == Opcode::Call || Op == Opcode::Ret || Op == Opcode::Halt) {
        addFusionDiag(Diags, Id, I,
                      std::string("fusion group spans the method-boundary "
                                  "op at instr ") +
                          std::to_string(I) +
                          " — the DO hook would fire at a shifted "
                          "instruction count");
        Bad = true;
      } else if (!IsTailBranch && !isFusibleInterior(Op)) {
        addFusionDiag(Diags, Id, I,
                      "non-fusible opcode at interior position " +
                          std::to_string(I));
        Bad = true;
      }
    }
    if (Bad)
      continue;
    for (uint32_t I = F.First; I <= Last; ++I) {
      if (Covered[I]) {
        addFusionDiag(Diags, Id, I,
                      "fusion groups overlap at instr " + std::to_string(I));
        break;
      }
      Covered[I] = true;
    }
  }
  return Diags;
}

Status dynace::analysis::verifyFusionPlanStatus(
    const Program &P, MethodId Id, const std::vector<FusionGroup> &Groups) {
  std::vector<Diagnostic> Diags = verifyFusionPlan(P, Id, Groups);
  if (Diags.empty())
    return Status();
  return Status::error(ErrorCode::InvalidInput,
                       std::string("dynalint[") + diagKindName(Diags[0].Kind) +
                           "]: " + Diags[0].render(P));
}
