//===- analysis/Dataflow.cpp - Worklist dataflow analyses -----------------===//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/Dataflow.h"

#include <cstdio>
#include <deque>

using namespace dynace;
using namespace dynace::analysis;

namespace {

/// Bit for register \p R; 0 for kNoReg or out-of-range operands (the
/// verifier's instruction checks report those — the analysis just stays
/// well-defined on malformed input).
uint32_t regBit(uint8_t R) { return R < kNumRegs ? (1u << R) : 0u; }

/// \returns the register-read mask of \p In.
uint32_t useMask(const Instruction &In) {
  switch (In.Op) {
  case Opcode::IConst:
  case Opcode::Jmp:
  case Opcode::Halt:
    return 0;
  case Opcode::Mov:
  case Opcode::AddI:
  case Opcode::MulI:
  case Opcode::AndI:
  case Opcode::Load:
  case Opcode::BrI:
  case Opcode::Alloc:
    return regBit(In.Src1);
  case Opcode::Ret:
    return In.Src1 == kNoReg ? 0 : regBit(In.Src1);
  case Opcode::StoreIdx: // Dst holds the index register (a read).
    return regBit(In.Src1) | regBit(In.Src2) | regBit(In.Dst);
  case Opcode::Call: {
    const unsigned NumArgs = In.Src2 == kNoReg ? 0 : In.Src2;
    uint32_t M = 0;
    for (unsigned I = 0; I != NumArgs; ++I)
      M |= regBit(static_cast<uint8_t>(In.Src1 + I));
    return M;
  }
  default: // Reg-reg ALU/FP, Store, LoadIdx, Br.
    return regBit(In.Src1) | regBit(In.Src2);
  }
}

/// \returns the register \p In writes, or kNoReg.
uint8_t defReg(const Instruction &In) {
  switch (In.Op) {
  case Opcode::Store:
  case Opcode::StoreIdx:
  case Opcode::Br:
  case Opcode::BrI:
  case Opcode::Jmp:
  case Opcode::Ret:
  case Opcode::Halt:
    return kNoReg;
  default:
    return In.Dst < kNumRegs ? In.Dst : kNoReg;
  }
}

/// True for side-effect-free register producers — the only ops the
/// dead-store diagnostic may flag. Div/Rem can trap, memory ops carry a
/// MemAddr event, Alloc moves the bump cursor, Call transfers control.
bool isPureDef(Opcode Op) {
  switch (Op) {
  case Opcode::IConst:
  case Opcode::Mov:
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::AddI:
  case Opcode::MulI:
  case Opcode::AndI:
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv:
    return true;
  default:
    return false;
  }
}

//===----------------------------------------------------------------------===//
// Interval transfer functions
//
// Registers hold uint64 values with wrap-around semantics; ranges track
// the signed (two's-complement) reinterpretation. Interval arithmetic is
// applied only when the __builtin overflow checks prove no value in
// range can wrap — then the signed result equals the VM's uint64 result
// reinterpreted — and degrades to top otherwise. Constant folds mirror
// the VM operation exactly on uint64 before reinterpreting.
//===----------------------------------------------------------------------===//

ValueRange addRange(const ValueRange &A, const ValueRange &B) {
  if (A.isBottom() || B.isBottom())
    return ValueRange::bottom();
  int64_t Lo, Hi;
  if (__builtin_add_overflow(A.Lo, B.Lo, &Lo) ||
      __builtin_add_overflow(A.Hi, B.Hi, &Hi))
    return ValueRange::top();
  return {Lo, Hi};
}

ValueRange subRange(const ValueRange &A, const ValueRange &B) {
  if (A.isBottom() || B.isBottom())
    return ValueRange::bottom();
  int64_t Lo, Hi;
  if (__builtin_sub_overflow(A.Lo, B.Hi, &Lo) ||
      __builtin_sub_overflow(A.Hi, B.Lo, &Hi))
    return ValueRange::top();
  return {Lo, Hi};
}

ValueRange mulRange(const ValueRange &A, const ValueRange &B) {
  if (A.isBottom() || B.isBottom())
    return ValueRange::bottom();
  // Exact products over a box attain min/max at corners; if no corner
  // overflows, no interior product does either, so uint64 wrap never
  // engages.
  const int64_t As[2] = {A.Lo, A.Hi}, Bs[2] = {B.Lo, B.Hi};
  int64_t Lo = INT64_MAX, Hi = INT64_MIN;
  for (int64_t X : As)
    for (int64_t Y : Bs) {
      int64_t P;
      if (__builtin_mul_overflow(X, Y, &P))
        return ValueRange::top();
      Lo = P < Lo ? P : Lo;
      Hi = P > Hi ? P : Hi;
    }
  return {Lo, Hi};
}

ValueRange andRange(const ValueRange &A, const ValueRange &B) {
  if (A.isBottom() || B.isBottom())
    return ValueRange::bottom();
  if (A.isConstant() && B.isConstant())
    return ValueRange::constant(static_cast<int64_t>(
        static_cast<uint64_t>(A.Lo) & static_cast<uint64_t>(B.Lo)));
  // Masking with a non-negative value clears the sign bit and can only
  // lower the magnitude: a & b <= b when b >= 0.
  if (B.Lo >= 0)
    return {0, B.Hi};
  if (A.Lo >= 0)
    return {0, A.Hi};
  return ValueRange::top();
}

/// Constant folds for ops with no useful interval rule; mirrors the VM's
/// uint64 semantics bit for bit.
ValueRange foldBinary(Opcode Op, const ValueRange &A, const ValueRange &B) {
  if (A.isBottom() || B.isBottom())
    return ValueRange::bottom();
  if (!A.isConstant() || !B.isConstant())
    return ValueRange::top();
  const uint64_t X = static_cast<uint64_t>(A.Lo);
  const uint64_t Y = static_cast<uint64_t>(B.Lo);
  switch (Op) {
  case Opcode::Or:
    return ValueRange::constant(static_cast<int64_t>(X | Y));
  case Opcode::Xor:
    return ValueRange::constant(static_cast<int64_t>(X ^ Y));
  case Opcode::Shl:
    return ValueRange::constant(static_cast<int64_t>(X << (Y & 63)));
  case Opcode::Shr:
    return ValueRange::constant(static_cast<int64_t>(X >> (Y & 63)));
  default:
    return ValueRange::top();
  }
}

/// Forward state: one range per register plus the definitely-assigned
/// mask (intersection lattice).
struct FlowState {
  std::array<ValueRange, kNumRegs> R;
  uint32_t Assigned = 0;
};

ValueRange regRange(const FlowState &S, uint8_t Reg) {
  return Reg < kNumRegs ? S.R[Reg] : ValueRange::top();
}

/// Applies \p In to \p S (register effects only; control flow is the
/// caller's job).
void transfer(const Instruction &In, FlowState &S) {
  const uint8_t D = defReg(In);
  if (D == kNoReg)
    return;
  ValueRange V = ValueRange::top();
  switch (In.Op) {
  case Opcode::IConst:
    V = ValueRange::constant(In.Imm);
    break;
  case Opcode::Mov:
    V = regRange(S, In.Src1);
    break;
  case Opcode::Add:
    V = addRange(regRange(S, In.Src1), regRange(S, In.Src2));
    break;
  case Opcode::Sub:
    V = subRange(regRange(S, In.Src1), regRange(S, In.Src2));
    break;
  case Opcode::Mul:
    V = mulRange(regRange(S, In.Src1), regRange(S, In.Src2));
    break;
  case Opcode::And:
    V = andRange(regRange(S, In.Src1), regRange(S, In.Src2));
    break;
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
    V = foldBinary(In.Op, regRange(S, In.Src1), regRange(S, In.Src2));
    break;
  case Opcode::AddI:
    V = addRange(regRange(S, In.Src1), ValueRange::constant(In.Imm));
    break;
  case Opcode::MulI:
    V = mulRange(regRange(S, In.Src1), ValueRange::constant(In.Imm));
    break;
  case Opcode::AndI:
    V = andRange(regRange(S, In.Src1), ValueRange::constant(In.Imm));
    break;
  default:
    // Div/Rem (trap-prone), FP (bit patterns), Load/LoadIdx (memory),
    // Alloc (heap address), Call (return value): top.
    break;
  }
  S.R[D] = V;
  S.Assigned |= regBit(D);
}

/// Condition outcome over ranges: can \p Cond be true / false for some
/// concrete values in \p A x \p B?
struct CondOutcome {
  bool MayTrue = true;
  bool MayFalse = true;
};

CondOutcome evalCondRange(CondKind Cond, const ValueRange &A,
                          const ValueRange &B) {
  CondOutcome O;
  if (A.isBottom() || B.isBottom())
    return O;
  const bool Disjoint = A.Hi < B.Lo || B.Hi < A.Lo;
  const bool BothSameConst =
      A.isConstant() && B.isConstant() && A.Lo == B.Lo;
  switch (Cond) {
  case CondKind::Eq:
    O.MayTrue = !Disjoint;
    O.MayFalse = !BothSameConst;
    break;
  case CondKind::Ne:
    O.MayTrue = !BothSameConst;
    O.MayFalse = !Disjoint;
    break;
  case CondKind::Lt:
    O.MayTrue = A.Lo < B.Hi;
    O.MayFalse = A.Hi >= B.Lo;
    break;
  case CondKind::Le:
    O.MayTrue = A.Lo <= B.Hi;
    O.MayFalse = A.Hi > B.Lo;
    break;
  case CondKind::Gt:
    O.MayTrue = A.Hi > B.Lo;
    O.MayFalse = A.Lo <= B.Hi;
    break;
  case CondKind::Ge:
    O.MayTrue = A.Hi >= B.Lo;
    O.MayFalse = A.Lo < B.Hi;
    break;
  }
  return O;
}

/// \returns the range of the effective address of memory op \p In under
/// \p S, or top when any component could make the uint64 arithmetic
/// wrap. Load/Store: Src1 + Imm; LoadIdx: Src1 + Src2*8 + Imm; StoreIdx:
/// Src1 + Dst*8 + Imm (Dst holds the index register).
ValueRange addressRange(const Instruction &In, const FlowState &S) {
  ValueRange Addr = addRange(regRange(S, In.Src1),
                             ValueRange::constant(In.Imm));
  if (In.Op == Opcode::LoadIdx || In.Op == Opcode::StoreIdx) {
    const uint8_t IdxReg = In.Op == Opcode::LoadIdx ? In.Src2 : In.Dst;
    Addr = addRange(Addr, mulRange(regRange(S, IdxReg),
                                   ValueRange::constant(8)));
  }
  return Addr;
}

/// After the forward fixpoint: walks each reachable block once more with
/// its converged entry state and derives the per-instruction facts.
void deriveFacts(const Program &P, const Method &M, const Cfg &G,
                 const std::vector<FlowState> &In,
                 const std::vector<bool> &Reached, MethodDataflow &DF) {
  // The static global segment [kHeapBase, kHeapBase + 8*globalWords):
  // addresses proven inside it make the interpreter's heap-base rebias
  // exact and its power-of-two wrap mask a no-op (the memory array is at
  // least globalWords long).
  int64_t SegLo = static_cast<int64_t>(kHeapBase);
  int64_t SegHi = 0;
  bool HaveSegment = false;
  {
    int64_t Span;
    if (P.globalWords() > 0 &&
        P.globalWords() <= (1ull << 40) && // Far above any real program.
        !__builtin_mul_overflow(static_cast<int64_t>(P.globalWords()), 8,
                                &Span) &&
        !__builtin_add_overflow(SegLo, Span - 1, &SegHi))
      HaveSegment = true;
  }

  const std::vector<BasicBlock> &Blocks = G.blocks();
  for (uint32_t B = 0; B != Blocks.size(); ++B) {
    const BasicBlock &BB = Blocks[B];
    if (!Reached[B]) {
      for (uint32_t I = BB.First; I <= BB.Last; ++I)
        DF.Facts[I] |= DF_Unreachable;
      continue;
    }
    FlowState S = In[B];
    for (uint32_t I = BB.First; I <= BB.Last; ++I) {
      const Instruction &Ins = M.Code[I];
      if (useMask(Ins) & ~S.Assigned)
        DF.Facts[I] |= DF_MaybeUninitRead;
      switch (Ins.Op) {
      case Opcode::Div:
      case Opcode::Rem: {
        const ValueRange Divisor = regRange(S, Ins.Src2);
        if (!Divisor.isBottom()) {
          if (!Divisor.contains(0))
            DF.Facts[I] |= DF_DivisorNonZero;
          else if (Divisor.isConstant())
            DF.Facts[I] |= DF_DivisorZero;
        }
        break;
      }
      case Opcode::Load:
      case Opcode::Store:
      case Opcode::LoadIdx:
      case Opcode::StoreIdx: {
        const ValueRange Addr = addressRange(Ins, S);
        if (HaveSegment && !Addr.isBottom() && !Addr.isTop() &&
            Addr.Lo >= SegLo && Addr.Hi <= SegHi)
          DF.Facts[I] |= DF_MemInBounds;
        break;
      }
      case Opcode::Br:
      case Opcode::BrI: {
        const ValueRange A = regRange(S, Ins.Src1);
        const ValueRange B2 = Ins.Op == Opcode::Br
                                  ? regRange(S, Ins.Src2)
                                  : ValueRange::constant(Ins.Aux);
        const CondOutcome O = evalCondRange(Ins.Cond, A, B2);
        if (!O.MayTrue)
          DF.Facts[I] |= DF_BranchNeverTaken;
        if (!O.MayFalse)
          DF.Facts[I] |= DF_BranchAlwaysTaken;
        break;
      }
      default:
        break;
      }
      transfer(Ins, S);
    }

    // Dead stores: backward in-block walk from the converged live-out.
    uint32_t Live = DF.LiveOut[B];
    for (uint32_t I = BB.Last + 1; I-- > BB.First;) {
      const Instruction &Ins = M.Code[I];
      const uint8_t D = defReg(Ins);
      if (D != kNoReg && isPureDef(Ins.Op) && !(Live & regBit(D)))
        DF.Facts[I] |= DF_DeadStore;
      if (D != kNoReg)
        Live &= ~regBit(D);
      Live |= useMask(Ins);
    }
  }
}

} // namespace

std::vector<unsigned> dynace::analysis::maxEntryArgs(const Program &P) {
  std::vector<unsigned> Args(P.numMethods(), 0);
  for (MethodId Id = 0; Id != P.numMethods(); ++Id)
    for (const Instruction &In : P.method(Id).Code) {
      if (In.Op != Opcode::Call || In.Imm < 0 ||
          static_cast<size_t>(In.Imm) >= P.numMethods())
        continue;
      unsigned N = In.Src2 == kNoReg ? 0 : In.Src2;
      if (N > kNumRegs)
        N = kNumRegs; // BadCallWindow reports the defect; stay in range.
      unsigned &Slot = Args[static_cast<MethodId>(In.Imm)];
      Slot = N > Slot ? N : Slot;
    }
  return Args;
}

MethodDataflow dynace::analysis::analyzeMethod(const Program &P,
                                               const Method &M, const Cfg &G,
                                               unsigned EntryArgs) {
  (void)P;
  const std::vector<BasicBlock> &Blocks = G.blocks();
  const uint32_t NumBlocks = static_cast<uint32_t>(Blocks.size());
  MethodDataflow DF;
  DF.LiveIn.assign(NumBlocks, 0);
  DF.LiveOut.assign(NumBlocks, 0);
  DF.AssignedIn.assign(NumBlocks, 0);
  DF.RangeIn.resize(NumBlocks);
  DF.Facts.assign(M.Code.size(), 0);
  if (NumBlocks == 0)
    return DF;

  // ------------------------------------------------------------ liveness
  // Backward bitvector fixpoint. The worklist is a simple round-robin
  // sweep in reverse block order: bitvector liveness converges in a
  // handful of sweeps and the order keeps results deterministic.
  {
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (uint32_t B = NumBlocks; B-- > 0;) {
        uint32_t Out = 0;
        for (uint32_t S : Blocks[B].Succs)
          Out |= DF.LiveIn[S];
        uint32_t Live = Out;
        for (uint32_t I = Blocks[B].Last + 1; I-- > Blocks[B].First;) {
          const Instruction &In = M.Code[I];
          const uint8_t D = defReg(In);
          if (D != kNoReg)
            Live &= ~regBit(D);
          Live |= useMask(In);
        }
        if (Out != DF.LiveOut[B] || Live != DF.LiveIn[B]) {
          DF.LiveOut[B] = Out;
          DF.LiveIn[B] = Live;
          Changed = true;
        }
      }
    }
  }

  // ------------------------------- ranges + definite assignment (forward)
  // Deterministic worklist with interval widening: after a block's entry
  // state has been updated kWidenAfter times, any still-growing bound
  // jumps to the lattice extreme, so the ascending chain is finite.
  constexpr uint32_t kWidenAfter = 8;
  std::vector<FlowState> In(NumBlocks);
  std::vector<bool> Reached(NumBlocks, false);
  std::vector<uint32_t> Updates(NumBlocks, 0);
  std::vector<bool> Queued(NumBlocks, false);
  {
    FlowState Entry;
    for (unsigned R = 0; R != kNumRegs; ++R)
      Entry.R[R] = R < EntryArgs ? ValueRange::top()
                                 : ValueRange::constant(0); // Frame zero-fill.
    Entry.Assigned = EntryArgs >= kNumRegs
                         ? ~0u
                         : ((EntryArgs ? (1u << EntryArgs) - 1u : 0u));
    In[0] = Entry;
    Reached[0] = true;

    std::deque<uint32_t> Worklist{0};
    Queued[0] = true;
    while (!Worklist.empty()) {
      const uint32_t B = Worklist.front();
      Worklist.pop_front();
      Queued[B] = false;
      FlowState Out = In[B];
      for (uint32_t I = Blocks[B].First; I <= Blocks[B].Last; ++I)
        transfer(M.Code[I], Out);
      for (uint32_t S : Blocks[B].Succs) {
        bool ChangedSucc = false;
        if (!Reached[S]) {
          In[S] = Out;
          Reached[S] = true;
          ChangedSucc = true;
        } else {
          FlowState Joined = In[S];
          Joined.Assigned &= Out.Assigned;
          for (unsigned R = 0; R != kNumRegs; ++R)
            Joined.R[R] = In[S].R[R].join(Out.R[R]);
          if (Updates[S] >= kWidenAfter)
            for (unsigned R = 0; R != kNumRegs; ++R)
              Joined.R[R] = Joined.R[R].widen(In[S].R[R]);
          bool Same = Joined.Assigned == In[S].Assigned;
          for (unsigned R = 0; Same && R != kNumRegs; ++R)
            Same = Joined.R[R] == In[S].R[R];
          if (!Same) {
            In[S] = Joined;
            ChangedSucc = true;
          }
        }
        if (ChangedSucc) {
          ++Updates[S];
          if (!Queued[S]) {
            Worklist.push_back(S);
            Queued[S] = true;
          }
        }
      }
    }
  }

  for (uint32_t B = 0; B != NumBlocks; ++B) {
    DF.AssignedIn[B] = Reached[B] ? In[B].Assigned : ~0u;
    DF.RangeIn[B] = Reached[B]
                        ? In[B].R
                        : [] {
                            std::array<ValueRange, kNumRegs> Bot;
                            Bot.fill(ValueRange::bottom());
                            return Bot;
                          }();
  }

  deriveFacts(P, M, G, In, Reached, DF);
  return DF;
}

ProofSet dynace::analysis::computeProofSet(const Program &P) {
  ProofSet PS;
  PS.MethodFacts.resize(P.numMethods());
  const std::vector<unsigned> Args = maxEntryArgs(P);
  for (MethodId Id = 0; Id != P.numMethods(); ++Id) {
    const Method &M = P.method(Id);
    // Cfg::build requires a non-empty method with every branch target
    // strictly inside the code (the specializer tolerates a target ==
    // size — it falls through to the off-end sentinel — so check here
    // rather than assume the caller verified). No CFG, no facts: the
    // method simply keeps every guard.
    bool CfgSafe = !M.Code.empty();
    for (const Instruction &In : M.Code) {
      if (In.Op != Opcode::Br && In.Op != Opcode::BrI &&
          In.Op != Opcode::Jmp)
        continue;
      if (In.Imm < 0 || static_cast<size_t>(In.Imm) >= M.Code.size())
        CfgSafe = false;
    }
    if (!CfgSafe)
      continue;
    const Cfg G = Cfg::build(M);
    PS.MethodFacts[Id] = analyzeMethod(P, M, G, Args[Id]).Facts;
  }
  return PS;
}

std::string dynace::analysis::dataflowToDot(const Program &P, const Method &M,
                                            const Cfg &G,
                                            const MethodDataflow &DF) {
  (void)P;
  auto Hex = [](uint32_t V) {
    char Buf[16];
    std::snprintf(Buf, sizeof(Buf), "0x%08x", V);
    return std::string(Buf);
  };
  std::string Out = "digraph dataflow_" + M.Name + " {\n";
  Out += "  label=\"" + M.Name + " dataflow\";\n  node [shape=box];\n";
  const std::vector<BasicBlock> &Blocks = G.blocks();
  for (uint32_t B = 0; B != Blocks.size(); ++B) {
    const BasicBlock &BB = Blocks[B];
    std::string Label = "bb" + std::to_string(B) + " [" +
                        std::to_string(BB.First) + ".." +
                        std::to_string(BB.Last) + "]\\l";
    Label += "live-in " + Hex(DF.LiveIn[B]) + "  live-out " +
             Hex(DF.LiveOut[B]) + "\\l";
    Label += "assigned " + Hex(DF.AssignedIn[B]) + "\\l";
    for (unsigned R = 0; R != kNumRegs; ++R) {
      const ValueRange &V = DF.RangeIn[B][R];
      if (V.isTop() || V.isBottom())
        continue;
      Label += "r" + std::to_string(R) + " = [" + std::to_string(V.Lo) +
               ", " + std::to_string(V.Hi) + "]\\l";
    }
    // Per-instruction facts, one line per flagged instruction.
    for (uint32_t I = BB.First; I <= BB.Last; ++I) {
      const uint8_t F = DF.Facts[I];
      if (!F)
        continue;
      Label += "instr " + std::to_string(I) + ":";
      if (F & DF_DivisorNonZero)
        Label += " div-nonzero";
      if (F & DF_DivisorZero)
        Label += " div-zero";
      if (F & DF_MemInBounds)
        Label += " mem-in-bounds";
      if (F & DF_DeadStore)
        Label += " dead-store";
      if (F & DF_MaybeUninitRead)
        Label += " maybe-uninit";
      if (F & DF_BranchNeverTaken)
        Label += " never-taken";
      if (F & DF_BranchAlwaysTaken)
        Label += " always-taken";
      if (F & DF_Unreachable)
        Label += " unreachable";
      Label += "\\l";
    }
    Out += "  bb" + std::to_string(B) + " [label=\"" + Label + "\"];\n";
  }
  for (uint32_t B = 0; B != Blocks.size(); ++B)
    for (uint32_t S : Blocks[B].Succs)
      Out += "  bb" + std::to_string(B) + " -> bb" + std::to_string(S) +
             ";\n";
  Out += "}\n";
  return Out;
}
