//===- analysis/Fusion.h - Superinstruction fusion analysis -----*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static analysis backing the VM's superinstruction specializer
/// (vm/Specializer.h, DESIGN.md §15): which instruction runs may be fused,
/// which opcode sequences dominate a method statically, and whether a
/// concrete fusion plan respects the DO hook-boundary rule.
///
/// The hook-boundary rule: the dynamic optimization system observes the
/// program exclusively at method boundaries (Call/Ret/Halt, executed one
/// at a time through Interpreter::step when a listener is installed). A
/// fused group that contained one of those — or that straddled a basic
/// block boundary, where a branch may enter its middle — would retire
/// several instructions as one dispatch and shift the instruction counts
/// at which hooks fire. Fusion is therefore restricted to straight-line
/// runs strictly inside one CFG basic block containing no boundary op and
/// no trap-prone op, with a conditional branch admitted only as a run's
/// final instruction (it ends the block anyway).
///
/// \c fusibleRuns enumerates the maximal such runs; \c hotSequences ranks
/// the opcode n-grams inside them by a static loop-depth-weighted count
/// (the query the specializer's fixed handler family was curated from);
/// \c verifyFusionPlan checks an externally produced plan against the
/// rule, reporting DiagKind::FusionAcrossBoundary — the dynalint defect
/// class registered for this layer. dynalint --all runs every generated
/// method's own candidate enumeration back through the plan verifier.
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_ANALYSIS_FUSION_H
#define DYNACE_ANALYSIS_FUSION_H

#include "analysis/Cfg.h"
#include "analysis/Verifier.h"
#include "isa/Program.h"
#include "support/Status.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dynace {
namespace analysis {

/// One fusion group: \c Len consecutive instructions of a method starting
/// at instruction index \c First, dispatched as a single superinstruction.
struct FusionGroup {
  uint32_t First = 0;
  uint32_t Len = 0;
};

/// A maximal fusible straight-line run (see file comment for the rules).
struct FusionRun {
  uint32_t First = 0;
  uint32_t Len = 0;
  /// True when the run's last instruction is a conditional branch
  /// (Br/BrI) — admissible only in that final position.
  bool EndsInCondBranch = false;
};

/// \returns true when \p Op may appear inside a fused group at a
/// non-final position: integer/FP ALU ops, moves, constants and
/// loads/stores. Excludes method-boundary ops (Call/Ret/Halt), control
/// transfers (Br/BrI/Jmp) and the trapping divides (Div/Rem/FDiv keeps
/// FDiv — it cannot trap; integer Div/Rem can, and a trap must not retire
/// the instructions fused behind it).
bool isFusibleInterior(Opcode Op);

/// Enumerates the maximal fusible runs of \p M given its CFG \p G.
/// Runs never cross a basic-block boundary and contain only
/// isFusibleInterior() opcodes, except that a run extending to a block's
/// final Br/BrI also includes that branch (EndsInCondBranch). Runs of
/// length 1 are omitted — nothing to fuse.
/// \returns the runs in instruction order.
std::vector<FusionRun> fusibleRuns(const Method &M, const Cfg &G);

/// One ranked opcode n-gram from hotSequences().
struct HotSequence {
  std::vector<Opcode> Ops;
  /// Static occurrence count weighted by loop depth: an occurrence in a
  /// block that is the target of a CFG back-edge counts kLoopWeight times.
  uint64_t Weight = 0;
};

/// Static hot-sequence query: counts opcode n-grams (n = 2 and 3) inside
/// the fusible runs of \p M, weighting occurrences in loop-header blocks
/// (targets of a back-edge, the static stand-in for execution frequency)
/// by \p LoopWeight.
/// \returns up to \p TopK sequences, heaviest first (ties: shorter first,
/// then instruction order of first occurrence).
std::vector<HotSequence> hotSequences(const Method &M, const Cfg &G,
                                      size_t TopK = 16,
                                      uint64_t LoopWeight = 8);

/// Checks the fusion plan \p Groups for method \p Id of \p P against the
/// hook-boundary rule. Reports DiagKind::FusionAcrossBoundary for any
/// group that overlaps another group, leaves the method's code, contains
/// a Call/Ret/Halt or other non-fusible opcode at an interior position,
/// has a conditional branch anywhere but last, or spans a basic-block
/// boundary. Group lengths other than 2 or 3 are also flagged (the VM
/// only instantiates pair/triple kernels).
/// \returns all diagnostics, in plan order.
std::vector<Diagnostic> verifyFusionPlan(const Program &P, MethodId Id,
                                         const std::vector<FusionGroup> &Groups);

/// Status-returning wrapper over verifyFusionPlan, mirroring
/// verifyProgramStatus: success on a clean plan, else InvalidInput with
/// the first diagnostic rendered under a "dynalint[<kind>]: " prefix.
/// \returns the verification status.
Status verifyFusionPlanStatus(const Program &P, MethodId Id,
                              const std::vector<FusionGroup> &Groups);

} // namespace analysis
} // namespace dynace

#endif // DYNACE_ANALYSIS_FUSION_H
