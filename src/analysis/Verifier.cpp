//===- analysis/Verifier.cpp ----------------------------------------------==//

#include "analysis/Verifier.h"

#include "analysis/Cfg.h"
#include "analysis/Dataflow.h"

#include <cassert>
#include <deque>
#include <string>

using namespace dynace;
using namespace dynace::analysis;

const char *dynace::analysis::diagKindName(DiagKind Kind) {
  switch (Kind) {
  case DiagKind::EmptyMethod:
    return "empty-method";
  case DiagKind::BadRegister:
    return "bad-register";
  case DiagKind::BadBranchTarget:
    return "bad-branch-target";
  case DiagKind::BadCallTarget:
    return "bad-call-target";
  case DiagKind::BadCallWindow:
    return "bad-call-window";
  case DiagKind::OffEndFallthrough:
    return "off-end-fallthrough";
  case DiagKind::DeadBlock:
    return "dead-block";
  case DiagKind::UnreachableExit:
    return "unreachable-exit";
  case DiagKind::NoExitPath:
    return "no-exit-path";
  case DiagKind::ReentrantEntry:
    return "reentrant-entry";
  case DiagKind::ReconfigInterval:
    return "reconfig-interval";
  case DiagKind::UnbalancedStack:
    return "unbalanced-stack";
  case DiagKind::BadEntryMethod:
    return "bad-entry-method";
  case DiagKind::FusionAcrossBoundary:
    return "fusion-across-boundary";
  case DiagKind::DeadStore:
    return "dead-store";
  case DiagKind::UseBeforeDef:
    return "use-before-def";
  case DiagKind::ProvablyTrapping:
    return "provably-trapping";
  case DiagKind::AlwaysFalseGuard:
    return "always-false-guard";
  }
  return "unknown";
}

DiagSeverity dynace::analysis::diagSeverity(DiagKind Kind) {
  switch (Kind) {
  case DiagKind::DeadStore:
  case DiagKind::UseBeforeDef:
  case DiagKind::AlwaysFalseGuard:
    return DiagSeverity::Warning;
  default:
    return DiagSeverity::Error;
  }
}

std::string Diagnostic::render(const Program &P) const {
  std::string Out;
  if (Kind == DiagKind::BadEntryMethod || Method >= P.numMethods())
    Out = "program: ";
  else
    Out = "method '" + P.method(Method).Name + "' instr " +
          std::to_string(Instr) + ": ";
  Out += std::string("[") + diagKindName(Kind) + "] " + Message;
  return Out;
}

namespace {

/// Appends \p D to \p Diags (tiny helper keeping call sites one-liners).
void addDiag(std::vector<Diagnostic> &Diags, DiagKind Kind, MethodId Method,
             uint32_t Instr, std::string Message) {
  Diagnostic D;
  D.Kind = Kind;
  D.Method = Method;
  D.Instr = Instr;
  D.Message = std::move(Message);
  Diags.push_back(std::move(D));
}

/// Invokes \p F for every intra-method successor of instruction \p I.
/// Call falls through (it returns to I+1); a Br/BrI/Jmp target must be in
/// range (checked before any caller runs).
template <typename Fn>
void forEachSucc(const Method &M, uint32_t I, Fn F) {
  const Instruction &In = M.Code[I];
  const uint32_t N = static_cast<uint32_t>(M.Code.size());
  switch (In.Op) {
  case Opcode::Br:
  case Opcode::BrI:
    F(static_cast<uint32_t>(In.Imm));
    if (I + 1 < N)
      F(I + 1);
    break;
  case Opcode::Jmp:
    F(static_cast<uint32_t>(In.Imm));
    break;
  case Opcode::Ret:
  case Opcode::Halt:
    break;
  default:
    if (I + 1 < N)
      F(I + 1);
    break;
  }
}

/// BFS over instructions from \p Starts (distance 0 each), stopping at
/// Call instructions: a reconfiguration point ends the "consecutive pair"
/// a path can form, so expansion never crosses one.
/// \returns per instruction the minimum number of instructions executed
///          strictly between the origin point and it (-1 = unreached);
///          for a Call instruction this is the reconfiguration gap.
std::vector<int64_t> minDistStoppingAtCalls(const Method &M,
                                            const std::vector<uint32_t> &Starts) {
  std::vector<int64_t> Dist(M.Code.size(), -1);
  std::deque<uint32_t> Queue;
  for (uint32_t S : Starts)
    if (Dist[S] < 0) {
      Dist[S] = 0;
      Queue.push_back(S);
    }
  while (!Queue.empty()) {
    uint32_t I = Queue.front();
    Queue.pop_front();
    if (M.Code[I].Op == Opcode::Call)
      continue; // The pair ends here; paths beyond form new pairs.
    forEachSucc(M, I, [&](uint32_t S) {
      if (Dist[S] < 0) {
        Dist[S] = Dist[I] + 1;
        Queue.push_back(S);
      }
    });
  }
  return Dist;
}

/// The instruction-level structural checks (group one). \returns true when
/// the method satisfies the Cfg::build preconditions (non-empty, all
/// branch targets in range), so the CFG checks may run.
bool checkInstructions(const Program &P, const Method &M,
                       std::vector<Diagnostic> &Diags) {
  if (M.Code.empty()) {
    addDiag(Diags, DiagKind::EmptyMethod, M.Id, 0, "method has no code");
    return false;
  }

  bool CfgSafe = true;
  auto RegOk = [](uint8_t R) { return R == kNoReg || R < kNumRegs; };
  for (uint32_t I = 0, E = static_cast<uint32_t>(M.Code.size()); I != E;
       ++I) {
    const Instruction &In = M.Code[I];
    if (!RegOk(In.Dst) || !RegOk(In.Src1) || !RegOk(In.Src2))
      addDiag(Diags, DiagKind::BadRegister, M.Id, I,
              "register operand outside r0..r" +
                  std::to_string(kNumRegs - 1));
    switch (In.Op) {
    case Opcode::Br:
    case Opcode::BrI:
    case Opcode::Jmp:
      if (In.Imm < 0 || static_cast<size_t>(In.Imm) >= M.Code.size()) {
        addDiag(Diags, DiagKind::BadBranchTarget, M.Id, I,
                "branch target " + std::to_string(In.Imm) +
                    " outside the method's " +
                    std::to_string(M.Code.size()) + " instructions");
        CfgSafe = false;
      }
      break;
    case Opcode::Call: {
      if (In.Imm < 0 || static_cast<size_t>(In.Imm) >= P.numMethods())
        addDiag(Diags, DiagKind::BadCallTarget, M.Id, I,
                "call target " + std::to_string(In.Imm) +
                    " is not a method id (program has " +
                    std::to_string(P.numMethods()) + " methods)");
      unsigned NumArgs = In.Src2 == kNoReg ? 0 : In.Src2;
      if (NumArgs > kNumRegs ||
          (NumArgs > 0 &&
           (In.Src1 == kNoReg || In.Src1 + NumArgs > kNumRegs)))
        addDiag(Diags, DiagKind::BadCallWindow, M.Id, I,
                "argument window [r" + std::to_string(In.Src1) + ", +" +
                    std::to_string(NumArgs) +
                    ") leaves the register file");
      break;
    }
    default:
      break;
    }
  }
  return CfgSafe;
}

/// The CFG checks (group two) plus the per-method DO/ACE placement checks
/// (group three). Precondition: checkInstructions() returned true.
void checkCfg(const Method &M, const VerifierOptions &O,
              std::vector<Diagnostic> &Diags) {
  Cfg G = Cfg::build(M);
  const std::vector<BasicBlock> &Blocks = G.blocks();
  const uint32_t NumBlocks = static_cast<uint32_t>(Blocks.size());

  if (G.fallsOffEnd())
    addDiag(Diags, DiagKind::OffEndFallthrough, M.Id,
            static_cast<uint32_t>(M.Code.size()) - 1,
            "execution can run past the method's last instruction");

  // Forward reachability from the entry block.
  std::vector<bool> Reach(NumBlocks, false);
  {
    std::deque<uint32_t> Queue{0};
    Reach[0] = true;
    while (!Queue.empty()) {
      uint32_t B = Queue.front();
      Queue.pop_front();
      for (uint32_t S : Blocks[B].Succs)
        if (!Reach[S]) {
          Reach[S] = true;
          Queue.push_back(S);
        }
    }
  }

  // Backward reachability from the exit blocks (Ret/Halt terminators). The
  // block that falls off the end also "leaves" the method — seeding it
  // keeps NoExitPath orthogonal to the OffEndFallthrough diagnostic above.
  std::vector<bool> CanExit(NumBlocks, false);
  {
    std::deque<uint32_t> Queue;
    for (uint32_t B = 0; B != NumBlocks; ++B) {
      const Instruction &Last = M.Code[Blocks[B].Last];
      if (Last.Op == Opcode::Ret || Last.Op == Opcode::Halt) {
        CanExit[B] = true;
        Queue.push_back(B);
      }
    }
    if (G.fallsOffEnd()) {
      // The block ending at the last instruction leaves the method too
      // (erroneously — reported above as OffEndFallthrough, not again as
      // NoExitPath).
      uint32_t B =
          G.blockContaining(static_cast<uint32_t>(M.Code.size()) - 1);
      if (!CanExit[B]) {
        CanExit[B] = true;
        Queue.push_back(B);
      }
    }
    while (!Queue.empty()) {
      uint32_t B = Queue.front();
      Queue.pop_front();
      for (uint32_t Pred : Blocks[B].Preds)
        if (!CanExit[Pred]) {
          CanExit[Pred] = true;
          Queue.push_back(Pred);
        }
    }
  }

  for (uint32_t B = 0; B != NumBlocks; ++B) {
    if (!Reach[B]) {
      // Both unreachability diagnostics sit behind FlagDeadBlocks (the
      // option's contract): off means "only executability matters".
      if (O.FlagDeadBlocks) {
        addDiag(Diags, DiagKind::DeadBlock, M.Id, Blocks[B].First,
                "block bb" + std::to_string(B) + " (instr " +
                    std::to_string(Blocks[B].First) + ".." +
                    std::to_string(Blocks[B].Last) +
                    ") is unreachable from the method entry");
        const Instruction &Last = M.Code[Blocks[B].Last];
        if (Last.Op == Opcode::Ret || Last.Op == Opcode::Halt)
          addDiag(Diags, DiagKind::UnreachableExit, M.Id, Blocks[B].Last,
                  std::string(Last.Op == Opcode::Ret ? "ret" : "halt") +
                      " is unreachable: its exit hook can never fire");
      }
      continue;
    }
    if (!CanExit[B])
      addDiag(Diags, DiagKind::NoExitPath, M.Id, Blocks[B].First,
              "no ret/halt is reachable from block bb" + std::to_string(B) +
                  " (infinite loop without exit)");
  }

  if (!O.DoAceChecks)
    return;

  // Single entry: the hotspot entry hook fires when the VM enters
  // instruction 0; a branch back to 0 would re-fire it mid-invocation.
  for (uint32_t I = 0, E = static_cast<uint32_t>(M.Code.size()); I != E;
       ++I) {
    const Instruction &In = M.Code[I];
    if ((In.Op == Opcode::Br || In.Op == Opcode::BrI ||
         In.Op == Opcode::Jmp) &&
        In.Imm == 0)
      addDiag(Diags, DiagKind::ReentrantEntry, M.Id, I,
              "branch re-enters instruction 0: the method-entry hook "
              "point is also a loop target");
  }

  // Reconfiguration spacing: method entry and every Call are
  // reconfiguration points (each fires the callee's method-entry hook).
  // Check the minimum instruction distance of every consecutive pair on
  // any static path.
  if (O.ReconfigMinGap == 0)
    return;
  std::vector<uint32_t> CallSites;
  for (uint32_t I = 0, E = static_cast<uint32_t>(M.Code.size()); I != E;
       ++I)
    if (M.Code[I].Op == Opcode::Call)
      CallSites.push_back(I);
  if (CallSites.empty())
    return;

  auto CheckOrigin = [&](const std::vector<uint32_t> &Starts,
                         const std::string &OriginDesc) {
    std::vector<int64_t> Dist = minDistStoppingAtCalls(M, Starts);
    for (uint32_t C : CallSites)
      if (Dist[C] >= 0 &&
          static_cast<uint64_t>(Dist[C]) < O.ReconfigMinGap)
        addDiag(Diags, DiagKind::ReconfigInterval, M.Id, C,
                "call only " + std::to_string(Dist[C]) +
                    " instruction(s) after " + OriginDesc +
                    " (reconfiguration min gap " +
                    std::to_string(O.ReconfigMinGap) + ")");
  };

  CheckOrigin({0}, "method entry");
  for (uint32_t C : CallSites) {
    std::vector<uint32_t> Starts;
    forEachSucc(M, C, [&](uint32_t S) { Starts.push_back(S); });
    if (!Starts.empty())
      CheckOrigin(Starts, "the call at instr " + std::to_string(C));
  }
}

/// The dataflow diagnostics (group four; behind VerifierOptions::
/// DataflowChecks). Precondition: verifyMethod reported nothing for \p M,
/// so the CFG and the analyses are well-defined. Facts on DF_Unreachable
/// instructions are skipped — the DeadBlock diagnostic already covers
/// those.
void checkDataflow(const Program &P, const Method &M, unsigned EntryArgs,
                   std::vector<Diagnostic> &Diags) {
  const Cfg G = Cfg::build(M);
  const MethodDataflow DF = analyzeMethod(P, M, G, EntryArgs);
  for (uint32_t I = 0, E = static_cast<uint32_t>(M.Code.size()); I != E;
       ++I) {
    const uint8_t F = DF.Facts[I];
    if (F & DF_Unreachable)
      continue;
    const Instruction &In = M.Code[I];
    if (F & DF_DeadStore)
      addDiag(Diags, DiagKind::DeadStore, M.Id, I,
              "r" + std::to_string(In.Dst) +
                  " written here is never read on any path (dead store)");
    if (F & DF_MaybeUninitRead)
      addDiag(Diags, DiagKind::UseBeforeDef, M.Id, I,
              "reads a register not definitely assigned on every path "
              "(observes the frame's zero-fill)");
    if (F & DF_DivisorZero)
      addDiag(Diags, DiagKind::ProvablyTrapping, M.Id, I,
              std::string(In.Op == Opcode::Div ? "div" : "rem") +
                  " divisor r" + std::to_string(In.Src2) +
                  " is provably zero: this instruction always traps");
    if (F & DF_BranchNeverTaken)
      addDiag(Diags, DiagKind::AlwaysFalseGuard, M.Id, I,
              "branch condition is provably false: the guard never fires");
    if (F & DF_BranchAlwaysTaken)
      addDiag(Diags, DiagKind::AlwaysFalseGuard, M.Id, I,
              "branch condition is provably true: the fallthrough is dead");
  }
}

} // namespace

std::vector<Diagnostic>
dynace::analysis::verifyMethod(const Program &P, const Method &M,
                               const VerifierOptions &O) {
  std::vector<Diagnostic> Diags;
  if (checkInstructions(P, M, Diags))
    checkCfg(M, O, Diags);
  return Diags;
}

std::vector<Diagnostic>
dynace::analysis::verifyProgram(const Program &P, const VerifierOptions &O) {
  std::vector<Diagnostic> Diags;
  if (P.numMethods() == 0) {
    addDiag(Diags, DiagKind::BadEntryMethod, 0, 0, "program has no methods");
    return Diags;
  }
  if (P.entry() >= P.numMethods())
    addDiag(Diags, DiagKind::BadEntryMethod, 0, 0,
            "entry method id " + std::to_string(P.entry()) +
                " out of range (program has " +
                std::to_string(P.numMethods()) + " methods)");

  std::vector<bool> MethodClean(P.numMethods(), false);
  for (MethodId Id = 0;
       Id != P.numMethods() && Diags.size() < O.MaxDiagnostics; ++Id) {
    std::vector<Diagnostic> MDiags = verifyMethod(P, P.method(Id), O);
    MethodClean[Id] = MDiags.empty();
    for (Diagnostic &D : MDiags) {
      if (Diags.size() >= O.MaxDiagnostics)
        break;
      Diags.push_back(std::move(D));
    }
  }

  if (O.DataflowChecks) {
    const std::vector<unsigned> Args = maxEntryArgs(P);
    for (MethodId Id = 0;
         Id != P.numMethods() && Diags.size() < O.MaxDiagnostics; ++Id) {
      if (!MethodClean[Id])
        continue; // The analyses assume a structurally valid method.
      std::vector<Diagnostic> DFDiags;
      checkDataflow(P, P.method(Id), Args[Id], DFDiags);
      for (Diagnostic &D : DFDiags) {
        if (O.ErrorsOnly && diagSeverity(D.Kind) == DiagSeverity::Warning)
          continue;
        if (Diags.size() >= O.MaxDiagnostics)
          break;
        Diags.push_back(std::move(D));
      }
    }
  }

  if (O.DoAceChecks && Diags.size() < O.MaxDiagnostics) {
    CallGraph CG = CallGraph::build(P);
    std::vector<MethodId> Cycle = CG.findCycle();
    if (!Cycle.empty()) {
      // Locate the call site in Cycle.front() that enters the cycle.
      MethodId Caller = Cycle.front();
      MethodId Callee = Cycle.size() > 1 ? Cycle[1] : Cycle.front();
      uint32_t Site = 0;
      for (const CallSite &S : CG.callSites(Caller))
        if (S.Callee == Callee) {
          Site = S.Instr;
          break;
        }
      std::string Path;
      for (MethodId Id : Cycle)
        Path += P.method(Id).Name + " -> ";
      Path += P.method(Cycle.front()).Name;
      addDiag(Diags, DiagKind::UnbalancedStack, Caller, Site,
              "static recursion (" + Path +
                  "): call/ret stack depth is unbounded on this path");
    }
  }
  return Diags;
}

Status dynace::analysis::verifyProgramStatus(const Program &P,
                                             const VerifierOptions &O) {
  VerifierOptions FirstOnly = O;
  FirstOnly.MaxDiagnostics = 1;
  FirstOnly.ErrorsOnly = true; // Warnings never fail a Status.
  std::vector<Diagnostic> Diags = verifyProgram(P, FirstOnly);
  if (Diags.empty())
    return Status();
  const Diagnostic &D = Diags.front();
  return Status::error(ErrorCode::InvalidInput,
                       std::string("dynalint[") + diagKindName(D.Kind) +
                           "]: " + D.render(P));
}

Status dynace::analysis::verifyProgramStatus(const Program &P) {
  VerifierOptions Strict;
  Strict.DataflowChecks = true; // Strict mode also rejects provable traps.
  return verifyProgramStatus(P, Strict);
}
