//===- analysis/Cfg.h - Control-flow and call graphs ------------*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Control-flow-graph construction over a \c Method and call-graph
/// construction over a \c Program — the structures the static verifier
/// (analysis/Verifier.h, surfaced as the \c dynalint tool) analyzes, and
/// which dynalint can dump as Graphviz DOT.
///
/// Blocks are maximal straight-line instruction runs: a block ends at a
/// control-transfer instruction (Br/BrI/Jmp/Ret/Halt) or just before a
/// branch target. \c Call does NOT end a block — it returns to the next
/// instruction, so for intra-method control flow it behaves like a
/// straight-line instruction; call edges live in the \c CallGraph instead.
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_ANALYSIS_CFG_H
#define DYNACE_ANALYSIS_CFG_H

#include "isa/Program.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dynace {
namespace analysis {

/// One basic block: the inclusive instruction index range [First, Last]
/// plus CFG edges (block indices).
struct BasicBlock {
  uint32_t First = 0;
  uint32_t Last = 0;
  std::vector<uint32_t> Succs;
  std::vector<uint32_t> Preds;

  /// \returns the number of instructions in the block.
  uint32_t size() const { return Last - First + 1; }
};

/// The control-flow graph of one method. Block 0 is the entry block (it
/// starts at instruction 0).
class Cfg {
public:
  /// Builds the CFG of \p M.
  ///
  /// Precondition: every Br/BrI/Jmp target of \p M is in range and the
  /// method is non-empty (the verifier checks both before building; the
  /// builder asserts them).
  /// \returns the CFG.
  static Cfg build(const Method &M);

  const std::vector<BasicBlock> &blocks() const { return Blocks; }
  size_t numBlocks() const { return Blocks.size(); }

  /// \returns the index of the block containing instruction \p Instr.
  uint32_t blockContaining(uint32_t Instr) const;

  /// True when some block's execution can run past the last instruction of
  /// the method (its final instruction is neither an unconditional
  /// transfer nor an exit) — the "off-end fallthrough" defect. Only the
  /// block ending at the method's last instruction can have this property.
  bool fallsOffEnd() const { return OffEnd; }

  /// Renders the CFG as a Graphviz digraph: one record node per block
  /// listing its instructions (disassembled via opcodeName), solid edges
  /// for CFG successors. \p MethodName labels the graph.
  /// \returns the DOT text.
  std::string toDot(const Method &M) const;

private:
  std::vector<BasicBlock> Blocks;
  bool OffEnd = false;
};

/// One call site: the Call instruction's index and its callee.
struct CallSite {
  uint32_t Instr = 0;
  MethodId Callee = 0;
};

/// The program's call graph: per-method call-site lists.
class CallGraph {
public:
  /// Builds the call graph of \p P.
  ///
  /// Precondition: every Call target is a valid method id (the verifier
  /// checks this first; the builder skips out-of-range callees so it can
  /// run on partially malformed fixtures).
  /// \returns the call graph.
  static CallGraph build(const Program &P);

  /// Call sites of method \p Id, in instruction order.
  const std::vector<CallSite> &callSites(MethodId Id) const {
    return Sites[Id];
  }
  size_t numMethods() const { return Sites.size(); }

  /// Finds a call-graph cycle (static recursion) if one exists.
  /// \returns the methods on the first cycle found, in call order
  ///          (front() calls [1], ... back() calls front()); empty when
  ///          the call graph is acyclic.
  std::vector<MethodId> findCycle() const;

  /// Methods reachable (transitively, via call sites) from \p Entry,
  /// including \p Entry itself.
  /// \returns one flag per method id.
  std::vector<bool> reachableFrom(MethodId Entry) const;

  /// Renders the call graph as a Graphviz digraph (one node per method,
  /// one edge per distinct caller->callee pair, labeled with the call-site
  /// count).
  /// \returns the DOT text.
  std::string toDot(const Program &P) const;

private:
  std::vector<std::vector<CallSite>> Sites;
};

} // namespace analysis
} // namespace dynace

#endif // DYNACE_ANALYSIS_CFG_H
