//===- analysis/Dataflow.h - Worklist dataflow analyses ---------*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Worklist-based abstract interpretation over the per-method CFG
/// (DESIGN.md §18). Four analyses share one engine:
///
///  * **liveness** — backward bitvector analysis (one uint32_t per block,
///    kNumRegs == 32) feeding the dead-store diagnostic;
///  * **definite assignment** — forward intersection analysis over the
///    registers written on every path, seeded with the method's incoming
///    argument window, feeding the use-before-def diagnostic (frames are
///    zero-initialized, so an uninitialized read yields 0, not UB — the
///    diagnostic is a lint warning, not an executability error);
///  * **value ranges** — a signed-interval lattice per register
///    (constants, intervals, top), with widening at loop heads so the
///    fixpoint terminates, feeding the branch-guard diagnostics and the
///    trap-freedom proofs;
///  * **trap freedom** — per-instruction facts derived from the converged
///    ranges: a Div/Rem divisor that provably excludes zero, and a memory
///    address provably inside the program's static global segment (where
///    the interpreter's heap-base rebias and wrap mask are no-ops).
///
/// Soundness is by construction: every transfer function either models
/// the VM's uint64 wrap-around semantics exactly (interval arithmetic is
/// used only where __builtin overflow checks prove no wrap can occur for
/// any value in range) or returns top. A fact is emitted only when it
/// holds for every concrete execution; anything unknown keeps the guarded
/// path. The engine is deterministic — fixed worklist order, no hashing
/// of pointers — so facts (and the specializer images derived from them)
/// are identical across runs and hosts.
///
/// Consumers: the verifier's dataflow diagnostics (Verifier.h,
/// VerifierOptions::DataflowChecks), dynalint's --dataflow/--dot-dataflow
/// modes, and the specializer's proof-gated unguarded kernel tier
/// (vm/Specializer.h consumes a ProofSet).
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_ANALYSIS_DATAFLOW_H
#define DYNACE_ANALYSIS_DATAFLOW_H

#include "analysis/Cfg.h"
#include "isa/Program.h"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace dynace {
namespace analysis {

/// A signed interval [Lo, Hi] over the two's-complement reinterpretation
/// of a register's uint64 value. Lo > Hi encodes bottom (no value; the
/// state of an unreached path); the full int64 range is top.
struct ValueRange {
  int64_t Lo = 1;
  int64_t Hi = 0;

  static ValueRange bottom() { return {1, 0}; }
  static ValueRange top() { return {INT64_MIN, INT64_MAX}; }
  static ValueRange constant(int64_t V) { return {V, V}; }
  static ValueRange interval(int64_t Lo, int64_t Hi) { return {Lo, Hi}; }

  bool isBottom() const { return Lo > Hi; }
  bool isTop() const { return Lo == INT64_MIN && Hi == INT64_MAX; }
  bool isConstant() const { return Lo == Hi; }
  /// \returns true when \p V is a possible concrete value.
  bool contains(int64_t V) const { return Lo <= V && V <= Hi; }

  bool operator==(const ValueRange &O) const {
    if (isBottom() && O.isBottom())
      return true;
    return Lo == O.Lo && Hi == O.Hi;
  }

  /// Least upper bound (interval hull).
  ValueRange join(const ValueRange &O) const {
    if (isBottom())
      return O;
    if (O.isBottom())
      return *this;
    return {Lo < O.Lo ? Lo : O.Lo, Hi > O.Hi ? Hi : O.Hi};
  }

  /// Standard interval widening: any bound that moved since \p Prev jumps
  /// to the lattice extreme, bounding the ascending-chain length.
  ValueRange widen(const ValueRange &Prev) const {
    if (Prev.isBottom() || isBottom())
      return *this;
    return {Lo < Prev.Lo ? INT64_MIN : Lo, Hi > Prev.Hi ? INT64_MAX : Hi};
  }
};

/// Per-instruction fact bits (MethodDataflow::Facts / ProofSet). The
/// *proof* bits (DivisorNonZero, MemInBounds) license guard elision in
/// the specializer; the rest back diagnostics.
enum DataflowFact : uint8_t {
  DF_DivisorNonZero = 1u << 0, ///< Div/Rem divisor range excludes 0.
  DF_DivisorZero = 1u << 1,    ///< Div/Rem divisor is provably 0: the
                               ///< instruction always traps.
  DF_MemInBounds = 1u << 2,    ///< Load/Store/LoadIdx/StoreIdx address is
                               ///< provably inside the static global
                               ///< segment [kHeapBase, kHeapBase +
                               ///< 8*globalWords): the interpreter's
                               ///< rebias-and-wrap is the identity there.
  DF_DeadStore = 1u << 3,      ///< Pure register write never read.
  DF_MaybeUninitRead = 1u << 4,///< Reads a register not definitely
                               ///< assigned on every path (yields the
                               ///< frame's zero-fill, not UB).
  DF_BranchNeverTaken = 1u << 5,  ///< Conditional branch provably not
                                  ///< taken (always-false guard).
  DF_BranchAlwaysTaken = 1u << 6, ///< Conditional branch provably taken.
  DF_Unreachable = 1u << 7,    ///< Instruction in a block the value
                               ///< analysis never reached (no facts or
                               ///< diagnostics are derived there).
};

/// Converged analysis results for one method.
struct MethodDataflow {
  /// Per block: registers live at block entry / exit (bit r = register r).
  std::vector<uint32_t> LiveIn, LiveOut;
  /// Per block: registers definitely assigned on every path reaching the
  /// block entry (arguments count as assigned).
  std::vector<uint32_t> AssignedIn;
  /// Per block, per register: value range at block entry. Bottom
  /// everywhere in blocks the forward analysis never reached.
  std::vector<std::array<ValueRange, kNumRegs>> RangeIn;
  /// Per instruction: DataflowFact bits.
  std::vector<uint8_t> Facts;
};

/// Runs all analyses over \p M given its CFG \p G. \p EntryArgs is the
/// number of incoming argument registers to treat as unknown-but-assigned
/// (r0..EntryArgs-1); the remaining registers start as the frame's
/// zero-fill, i.e. constant 0. Pass the maximum Call-site argument count
/// targeting the method (0 for the program entry); computeProofSet and
/// the verifier derive it from the call graph.
/// \returns the converged per-block states and per-instruction facts.
MethodDataflow analyzeMethod(const Program &P, const Method &M, const Cfg &G,
                             unsigned EntryArgs);

/// \returns the number of incoming argument registers to assume for every
/// method of \p P: the maximum Src2 over all call sites targeting it
/// (kNoReg counts as 0; the entry method's initial invocation passes
/// none).
std::vector<unsigned> maxEntryArgs(const Program &P);

/// The proof bits the specializer consumes: per method, per instruction,
/// the DataflowFact mask from analyzeMethod. Built once per program;
/// deterministic.
struct ProofSet {
  std::vector<std::vector<uint8_t>> MethodFacts;

  /// \returns true when fact \p Bit holds for instruction \p I of method
  ///          \p Id (false for out-of-range queries).
  bool has(MethodId Id, uint32_t I, uint8_t Bit) const {
    return Id < MethodFacts.size() && I < MethodFacts[Id].size() &&
           (MethodFacts[Id][I] & Bit) != 0;
  }

  /// \returns the number of (instruction, proof-bit) pairs for the two
  ///          guard-elision facts — the coverage statistic dynalint and
  ///          the metrics registry report.
  uint64_t provenGuardCount() const {
    uint64_t N = 0;
    for (const std::vector<uint8_t> &MF : MethodFacts)
      for (uint8_t F : MF)
        N += ((F & DF_DivisorNonZero) ? 1 : 0) +
             ((F & DF_MemInBounds) ? 1 : 0);
    return N;
  }
};

/// Analyzes every method of \p P (building CFGs and the call-site arity
/// table internally).
/// \returns the per-instruction fact masks.
ProofSet computeProofSet(const Program &P);

/// Graphviz DOT dump of \p DF over \p G: one node per basic block
/// annotated with live-in/out masks, the definitely-assigned mask, and
/// the non-top entry ranges — dynalint's --dot-dataflow rendering.
/// \returns the DOT text (a single digraph).
std::string dataflowToDot(const Program &P, const Method &M, const Cfg &G,
                          const MethodDataflow &DF);

} // namespace analysis
} // namespace dynace

#endif // DYNACE_ANALYSIS_DATAFLOW_H
