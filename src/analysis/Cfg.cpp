//===- analysis/Cfg.cpp ---------------------------------------------------==//

#include "analysis/Cfg.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

using namespace dynace;
using namespace dynace::analysis;

Cfg Cfg::build(const Method &M) {
  assert(!M.Code.empty() && "CFG of an empty method");
  const size_t N = M.Code.size();

  // Pass 1: leaders. Instruction 0, every branch target, and every
  // instruction following a terminator.
  std::vector<bool> Leader(N, false);
  Leader[0] = true;
  for (size_t I = 0; I != N; ++I) {
    const Instruction &In = M.Code[I];
    switch (In.Op) {
    case Opcode::Br:
    case Opcode::BrI:
    case Opcode::Jmp:
      assert(In.Imm >= 0 && static_cast<size_t>(In.Imm) < N &&
             "CFG build requires in-range branch targets");
      Leader[static_cast<size_t>(In.Imm)] = true;
      [[fallthrough]];
    case Opcode::Ret:
    case Opcode::Halt:
      if (I + 1 < N)
        Leader[I + 1] = true;
      break;
    default:
      break;
    }
  }

  // Pass 2: blocks.
  Cfg G;
  std::vector<uint32_t> BlockOf(N, 0);
  for (size_t I = 0; I != N; ++I) {
    if (Leader[I]) {
      BasicBlock B;
      B.First = static_cast<uint32_t>(I);
      G.Blocks.push_back(B);
    }
    BlockOf[I] = static_cast<uint32_t>(G.Blocks.size() - 1);
    G.Blocks.back().Last = static_cast<uint32_t>(I);
  }

  // Pass 3: edges. A non-terminator block end (next instruction was a
  // leader) falls through; the block ending at the method's last
  // instruction with a fallthrough successor falls off the end instead.
  for (uint32_t B = 0, E = static_cast<uint32_t>(G.Blocks.size()); B != E;
       ++B) {
    const Instruction &In = M.Code[G.Blocks[B].Last];
    const bool HasNext = G.Blocks[B].Last + 1 < N;
    auto AddEdge = [&](uint32_t Succ) {
      G.Blocks[B].Succs.push_back(Succ);
      G.Blocks[Succ].Preds.push_back(B);
    };
    switch (In.Op) {
    case Opcode::Br:
    case Opcode::BrI:
      AddEdge(BlockOf[static_cast<size_t>(In.Imm)]);
      if (HasNext)
        AddEdge(B + 1);
      else
        G.OffEnd = true; // Not-taken path runs off the method.
      break;
    case Opcode::Jmp:
      AddEdge(BlockOf[static_cast<size_t>(In.Imm)]);
      break;
    case Opcode::Ret:
    case Opcode::Halt:
      break; // Exit: no intra-method successor.
    default:
      if (HasNext)
        AddEdge(B + 1);
      else
        G.OffEnd = true; // Straight-line code runs off the method.
      break;
    }
  }
  return G;
}

uint32_t Cfg::blockContaining(uint32_t Instr) const {
  // Blocks are sorted by First; find the last block with First <= Instr.
  auto It = std::upper_bound(Blocks.begin(), Blocks.end(), Instr,
                             [](uint32_t I, const BasicBlock &B) {
                               return I < B.First;
                             });
  assert(It != Blocks.begin() && "instruction before the entry block");
  return static_cast<uint32_t>(std::distance(Blocks.begin(), It) - 1);
}

std::string Cfg::toDot(const Method &M) const {
  std::string Out = "digraph \"" + M.Name + "\" {\n";
  Out += "  node [shape=box, fontname=\"monospace\"];\n";
  Out += "  label=\"" + M.Name + "\";\n";
  char Buf[128];
  for (uint32_t B = 0, E = static_cast<uint32_t>(Blocks.size()); B != E;
       ++B) {
    std::string Body;
    for (uint32_t I = Blocks[B].First; I <= Blocks[B].Last; ++I) {
      const Instruction &In = M.Code[I];
      std::snprintf(Buf, sizeof(Buf), "%u: %s", I, opcodeName(In.Op));
      Body += Buf;
      if (In.Op == Opcode::Br || In.Op == Opcode::BrI ||
          In.Op == Opcode::Jmp || In.Op == Opcode::Call) {
        std::snprintf(Buf, sizeof(Buf), " -> %lld",
                      static_cast<long long>(In.Imm));
        Body += Buf;
      }
      Body += "\\l"; // Graphviz left-justified line break.
    }
    std::snprintf(Buf, sizeof(Buf), "  bb%u [label=\"bb%u:\\l", B, B);
    Out += Buf;
    Out += Body + "\"];\n";
    for (uint32_t S : Blocks[B].Succs) {
      std::snprintf(Buf, sizeof(Buf), "  bb%u -> bb%u;\n", B, S);
      Out += Buf;
    }
  }
  Out += "}\n";
  return Out;
}

CallGraph CallGraph::build(const Program &P) {
  CallGraph G;
  G.Sites.resize(P.numMethods());
  for (MethodId Id = 0; Id != P.numMethods(); ++Id) {
    const Method &M = P.method(Id);
    for (size_t I = 0, E = M.Code.size(); I != E; ++I) {
      const Instruction &In = M.Code[I];
      if (In.Op != Opcode::Call)
        continue;
      if (In.Imm < 0 || static_cast<size_t>(In.Imm) >= P.numMethods())
        continue; // Out-of-range callee: reported by the verifier.
      G.Sites[Id].push_back({static_cast<uint32_t>(I),
                             static_cast<MethodId>(In.Imm)});
    }
  }
  return G;
}

std::vector<MethodId> CallGraph::findCycle() const {
  // Iterative DFS with colors; on hitting a gray node, unwind the explicit
  // stack to recover the cycle.
  enum : uint8_t { White, Gray, Black };
  std::vector<uint8_t> Color(Sites.size(), White);
  std::vector<MethodId> Stack; // Current DFS path.

  // Non-recursive DFS frame: (method, next call-site index).
  std::vector<std::pair<MethodId, size_t>> Frames;
  for (MethodId Root = 0; Root != Sites.size(); ++Root) {
    if (Color[Root] != White)
      continue;
    Frames.push_back({Root, 0});
    Color[Root] = Gray;
    Stack.push_back(Root);
    while (!Frames.empty()) {
      auto &[Id, Next] = Frames.back();
      if (Next < Sites[Id].size()) {
        MethodId Callee = Sites[Id][Next++].Callee;
        if (Color[Callee] == Gray) {
          // Cycle: the suffix of Stack starting at Callee.
          auto It = std::find(Stack.begin(), Stack.end(), Callee);
          return std::vector<MethodId>(It, Stack.end());
        }
        if (Color[Callee] == White) {
          Color[Callee] = Gray;
          Stack.push_back(Callee);
          Frames.push_back({Callee, 0});
        }
      } else {
        Color[Id] = Black;
        Stack.pop_back();
        Frames.pop_back();
      }
    }
  }
  return {};
}

std::vector<bool> CallGraph::reachableFrom(MethodId Entry) const {
  std::vector<bool> Seen(Sites.size(), false);
  if (Entry >= Sites.size())
    return Seen;
  std::vector<MethodId> Work{Entry};
  Seen[Entry] = true;
  while (!Work.empty()) {
    MethodId Id = Work.back();
    Work.pop_back();
    for (const CallSite &S : Sites[Id])
      if (!Seen[S.Callee]) {
        Seen[S.Callee] = true;
        Work.push_back(S.Callee);
      }
  }
  return Seen;
}

std::string CallGraph::toDot(const Program &P) const {
  std::string Out = "digraph callgraph {\n  node [shape=oval];\n";
  char Buf[160];
  for (MethodId Id = 0; Id != Sites.size(); ++Id) {
    std::snprintf(Buf, sizeof(Buf), "  m%u [label=\"%s\"%s];\n", Id,
                  P.method(Id).Name.c_str(),
                  Id == P.entry() ? ", penwidth=2" : "");
    Out += Buf;
    // Collapse duplicate edges, labeling with the call-site count.
    std::vector<std::pair<MethodId, unsigned>> Edges;
    for (const CallSite &S : Sites[Id]) {
      auto It = std::find_if(Edges.begin(), Edges.end(),
                             [&](const auto &E) {
                               return E.first == S.Callee;
                             });
      if (It == Edges.end())
        Edges.push_back({S.Callee, 1});
      else
        ++It->second;
    }
    for (const auto &[Callee, Count] : Edges) {
      if (Count == 1)
        std::snprintf(Buf, sizeof(Buf), "  m%u -> m%u;\n", Id, Callee);
      else
        std::snprintf(Buf, sizeof(Buf),
                      "  m%u -> m%u [label=\"x%u\"];\n", Id, Callee, Count);
      Out += Buf;
    }
  }
  Out += "}\n";
  return Out;
}
