//===- analysis/Verifier.h - Static IR verifier (dynalint) ------*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static verifier over the \c Program IR — "dynalint" (DESIGN.md §13).
///
/// The paper's tuning protocol only works when hotspot entry/exit hooks
/// fire at well-defined program points, and the hardware reconfiguration
/// guard (ConfigurableUnit) assumes reconfiguration requests are spaced.
/// Before this layer, a malformed program surfaced those violations as
/// runtime traps (or as silently wrong tuning measurements); the verifier
/// rejects them statically, before simulation runs.
///
/// Three groups of checks, each yielding a distinct \c DiagKind:
///
///  * **instruction checks** — register indices valid, branch/jump targets
///    inside the method, call targets valid method ids, call argument
///    windows inside the register file;
///  * **CFG checks** (per method, over analysis/Cfg.h) — no path runs off
///    the method end, every block is reachable from the entry, every
///    reachable block can reach an exit (no infinite loop without exit),
///    every exit instruction is reachable (hook coverage);
///  * **DO/ACE placement checks** — every hotspot-eligible method has a
///    single entry (no branch re-enters instruction 0, where the hotspot
///    entry hook fires); no static path places two reconfiguration points
///    (method-entry hooks, i.e. entering a method and then entering a
///    callee) closer than \c ReconfigMinGap retired instructions, which
///    would request two reconfigurations inside any CU's reconfiguration
///    interval; the call graph is acyclic (static recursion means call/ret
///    stack growth is unbounded — no stack balance along those paths).
///
/// Entry points: \c verifyProgram returns every diagnostic (for dynalint
/// and tests); \c verifyProgramStatus folds the first diagnostic into the
/// PR-3 \c Status taxonomy (InvalidInput, message prefixed
/// "dynalint[<kind>]") for \c Program::finalize's strict mode and the
/// workload-generator gate.
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_ANALYSIS_VERIFIER_H
#define DYNACE_ANALYSIS_VERIFIER_H

#include "isa/Program.h"
#include "support/Status.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dynace {
namespace analysis {

/// Every defect class the verifier can report. diagKindName() gives each a
/// stable short name used in messages, test expectations and dynalint
/// output.
enum class DiagKind : uint8_t {
  EmptyMethod,       ///< Method has no instructions.
  BadRegister,       ///< Register operand outside r0..r31 (and not kNoReg).
  BadBranchTarget,   ///< Br/BrI/Jmp target outside the method.
  BadCallTarget,     ///< Call target is not a method id of the program.
  BadCallWindow,     ///< Call argument window leaves the register file.
  OffEndFallthrough, ///< Some path runs past the method's last instruction.
  DeadBlock,         ///< Block unreachable from the method entry.
  UnreachableExit,   ///< Ret/Halt unreachable from the entry (the exit
                     ///< hook at that exit can never fire).
  NoExitPath,        ///< Reachable block from which no Ret/Halt is
                     ///< reachable (infinite loop without exit).
  ReentrantEntry,    ///< Branch targets instruction 0: the method-entry
                     ///< hook point is also a loop target (not a single
                     ///< entry).
  ReconfigInterval,  ///< Two reconfiguration points closer than the
                     ///< minimum gap on some static path.
  UnbalancedStack,   ///< Call-graph cycle: call/ret balance along the
                     ///< recursive path is statically unbounded.
  BadEntryMethod,    ///< Program entry id out of range.
  FusionAcrossBoundary, ///< Fusion candidate spans a method-boundary op
                        ///< (Call/Ret/Halt) or leaves its basic block, so
                        ///< fused execution would move a DO hook point
                        ///< (see analysis/Fusion.h).
  // Dataflow diagnostics (analysis/Dataflow.h; VerifierOptions::
  // DataflowChecks). The first three are warnings — the program still
  // executes deterministically — the fourth is an error.
  DeadStore,         ///< Pure register write that no path ever reads.
  UseBeforeDef,      ///< Reads a register not assigned on every path
                     ///< (observes the frame's zero-fill — legal but
                     ///< almost always a generator defect).
  ProvablyTrapping,  ///< Instruction traps on every execution reaching
                     ///< it (e.g. Div/Rem with a provably-zero divisor).
  AlwaysFalseGuard,  ///< Conditional branch whose outcome is statically
                     ///< known: the guard (or its fallthrough) is dead.
};

/// \returns the stable short name of \p Kind ("bad-branch-target",
///          "off-end-fallthrough", "reconfig-interval", ...).
const char *diagKindName(DiagKind Kind);

/// Diagnostic severity: errors reject the program (Status failure, nonzero
/// dynalint exit); warnings are advisory lint findings — the program still
/// executes deterministically, so they never gate finalize strict mode.
enum class DiagSeverity : uint8_t { Warning, Error };

/// \returns the severity of \p Kind. DeadStore, UseBeforeDef and
///          AlwaysFalseGuard are warnings; everything else is an error.
DiagSeverity diagSeverity(DiagKind Kind);

/// One verifier finding.
struct Diagnostic {
  DiagKind Kind = DiagKind::EmptyMethod;
  MethodId Method = 0;   ///< Offending method (0 for program-level diags —
                         ///< see Kind).
  uint32_t Instr = 0;    ///< Offending instruction index within Method.
  std::string Message;   ///< Human-readable detail (no location prefix).

  /// \returns "method '<name>' instr <i>: [<kind>] <message>" (the method
  ///          name is looked up in \p P).
  std::string render(const Program &P) const;
};

/// Verifier knobs.
struct VerifierOptions {
  /// Run the DO/ACE placement checks (single entry, reconfiguration gap,
  /// acyclic call graph). Off = pure structural/CFG verification.
  bool DoAceChecks = true;

  /// Minimum retired instructions between two reconfiguration points on
  /// any static path (method entry -> first nested call, and call ->
  /// next call). The default of 1 rejects only *coincident* points — a
  /// Call as a method's first instruction or two adjacent Calls — which
  /// violate every CU interval; larger values model a specific interval.
  /// 0 disables the check.
  uint64_t ReconfigMinGap = 1;

  /// Report unreachable blocks (DeadBlock/UnreachableExit). Off for
  /// tooling that only cares about executability.
  bool FlagDeadBlocks = true;

  /// Stop after this many diagnostics per program.
  size_t MaxDiagnostics = 64;

  /// Run the dataflow analyses (analysis/Dataflow.h) and report the
  /// derived diagnostics (DeadStore, UseBeforeDef, ProvablyTrapping,
  /// AlwaysFalseGuard). Off by default: the analyses cost a fixpoint per
  /// method, and the warning kinds are lint findings rather than
  /// executability errors. dynalint --dataflow and finalize strict mode
  /// turn this on.
  bool DataflowChecks = false;

  /// Suppress Warning-severity diagnostics (see diagSeverity). The Status
  /// wrapper forces this on: warnings never fold into a Status failure.
  bool ErrorsOnly = false;
};

/// Verifies one method of \p P (instruction + CFG checks, plus per-method
/// DO/ACE checks; the call-graph check lives in verifyProgram).
/// \returns all diagnostics found, in instruction order per check group.
std::vector<Diagnostic> verifyMethod(const Program &P, const Method &M,
                                     const VerifierOptions &O = {});

/// Verifies every method of \p P plus the program-level properties (entry
/// id in range, call graph acyclic).
/// \returns all diagnostics, methods in id order.
std::vector<Diagnostic> verifyProgram(const Program &P,
                                      const VerifierOptions &O = {});

/// Status-returning wrapper: success when \p P verifies clean of
/// Error-severity diagnostics (ErrorsOnly is forced on — warnings never
/// fail a Status), else an InvalidInput error carrying the first
/// diagnostic, rendered with a "dynalint[<kind>]: " prefix so callers
/// (and tests) can dispatch on the defect class.
/// \returns the verification status.
Status verifyProgramStatus(const Program &P, const VerifierOptions &O);

/// Default-options overload with DataflowChecks on — the strict-mode
/// gate also rejects provably-trapping instructions. Unary, so it
/// converts to \c Program::VerifyHook — pass it to \c Program::finalize
/// for the strict mode: \c Prog.finalize(analysis::verifyProgramStatus).
/// \returns the verification status.
Status verifyProgramStatus(const Program &P);

} // namespace analysis
} // namespace dynace

#endif // DYNACE_ANALYSIS_VERIFIER_H
