//===- obs/Trace.cpp ------------------------------------------------------==//

#include "obs/Trace.h"

#include "support/Env.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>

using namespace dynace;
using namespace dynace::obs;

namespace {

/// Per-thread event cap. 1 << 20 events * ~64 bytes is a few tens of MB in
/// the worst case — generous for a traced tuning grid, bounded for a
/// runaway loop. Overflow drops (counted), never reallocates unboundedly.
constexpr size_t kMaxEventsPerThread = size_t(1) << 20;

const char *const KnownCategories[] = {"hotspot", "tuning", "reconfig",
                                       "vm",      "cache",  "runner",
                                       "stage",   "serve"};

} // namespace

std::atomic<bool> dynace::obs::detail::TraceOn{false};

bool dynace::obs::isKnownTraceCategory(const char *Cat) {
  for (const char *Known : KnownCategories)
    if (!std::strcmp(Cat, Known))
      return true;
  return false;
}

const char *dynace::obs::internTraceString(const std::string &S) {
  for (const char *Known : KnownCategories)
    if (S == Known)
      return Known;
  // Leaked on purpose: interned strings back TraceEvent::Cat/Name, which
  // may sit in thread buffers until an atexit flush — no destructor may
  // ever pull the rug. The set keeps each distinct string to one entry.
  static Mutex *InternM = new Mutex();
  static std::set<std::string> *Table = new std::set<std::string>();
  MutexLock Lock(*InternM);
  return Table->insert(S).first->c_str();
}

std::string dynace::obs::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string dynace::obs::traceArg(const char *Key, uint64_t Value) {
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "\"%s\": %llu", Key,
                static_cast<unsigned long long>(Value));
  return Buf;
}

std::string dynace::obs::traceArg(const char *Key, const std::string &Value) {
  return std::string("\"") + Key + "\": \"" + jsonEscape(Value) + "\"";
}

void dynace::obs::traceInstant(const char *Cat, const char *Name,
                               std::string Args) {
  TraceCollector &TC = TraceCollector::instance();
  TraceEvent E;
  E.Cat = Cat;
  E.Name = Name;
  E.TsUs = TC.nowUs();
  E.Args = std::move(Args);
  TC.emit(std::move(E));
}

void dynace::obs::traceComplete(const char *Cat, const char *Name,
                                double StartUs, double DurUs,
                                std::string Args) {
  TraceEvent E;
  E.Cat = Cat;
  E.Name = Name;
  E.TsUs = StartUs;
  E.DurUs = DurUs < 0.0 ? 0.0 : DurUs;
  E.Args = std::move(Args);
  TraceCollector::instance().emit(std::move(E));
}

TraceCollector &TraceCollector::instance() {
  // Leaked so worker threads and atexit handlers can never race a static
  // destructor; configured from the environment exactly once.
  static TraceCollector *TC = [] {
    TraceCollector *C = new TraceCollector();
    std::string Path = envString("DYNACE_TRACE");
    if (!Path.empty())
      C->configure(Path);
    return C;
  }();
  return *TC;
}

// Force the env-driven configuration to happen at program start: emit
// sites consult only the TraceOn flag, so waiting for a first instance()
// call (which may not come until report time) would silently trace
// nothing. This TU is linked in whenever any emit macro is used (they
// reference detail::TraceOn), so the initializer runs in every
// instrumented binary.
const bool TraceEnvConfigured = (TraceCollector::instance(), true);

TraceCollector::TraceCollector() {
  EpochNs.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now().time_since_epoch())
                    .count(),
                std::memory_order_relaxed);
}

void TraceCollector::clearBuffersLocked() {
  for (std::unique_ptr<ThreadBuffer> &B : Buffers) {
    MutexLock BLock(B->M);
    B->Events.clear();
  }
}

void TraceCollector::configure(const std::string &NewPath) {
  MutexLock Lock(M);
  Path = NewPath;
  clearBuffersLocked();
  TrackNames.clear();
  Dropped.store(0, std::memory_order_relaxed);
  EpochNs.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now().time_since_epoch())
                    .count(),
                std::memory_order_relaxed);
  detail::TraceOn.store(!Path.empty(), std::memory_order_relaxed);
  if (!Path.empty() && !AtExitInstalled) {
    AtExitInstalled = true;
    std::atexit([] { TraceCollector::instance().flush(); });
  }
}

std::string TraceCollector::path() const {
  MutexLock Lock(M);
  return Path;
}

TraceCollector::ThreadBuffer &TraceCollector::threadBuffer() {
  thread_local ThreadBuffer *TLB = nullptr;
  if (!TLB) {
    auto B = std::make_unique<ThreadBuffer>();
    B->Tid = NextTid.fetch_add(1, std::memory_order_relaxed);
    TLB = B.get();
    MutexLock Lock(M);
    Buffers.push_back(std::move(B));
  }
  return *TLB;
}

void TraceCollector::emit(TraceEvent E) {
  if (!traceEnabled())
    return;
  ThreadBuffer &B = threadBuffer();
  E.Tid = B.Tid;
  MutexLock Lock(B.M);
  if (B.Events.size() >= kMaxEventsPerThread) {
    Dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  B.Events.push_back(std::move(E));
}

void TraceCollector::emitForeign(TraceEvent E) {
  if (!traceEnabled())
    return;
  // The foreign event keeps its own Tid (a merged worker track); it still
  // buffers in the calling thread so the cap/drop discipline is uniform.
  ThreadBuffer &B = threadBuffer();
  MutexLock Lock(B.M);
  if (B.Events.size() >= kMaxEventsPerThread) {
    Dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  B.Events.push_back(std::move(E));
}

std::vector<TraceEvent> TraceCollector::drain() {
  std::vector<TraceEvent> All;
  {
    MutexLock Lock(M);
    for (std::unique_ptr<ThreadBuffer> &B : Buffers) {
      MutexLock BLock(B->M);
      All.insert(All.end(), std::make_move_iterator(B->Events.begin()),
                 std::make_move_iterator(B->Events.end()));
      B->Events.clear();
    }
  }
  std::stable_sort(All.begin(), All.end(),
                   [](const TraceEvent &A, const TraceEvent &B) {
                     return A.TsUs < B.TsUs;
                   });
  return All;
}

void TraceCollector::nameTrack(uint32_t Tid, const std::string &Name) {
  MutexLock Lock(M);
  for (auto &[T, N] : TrackNames)
    if (T == Tid) {
      N = Name;
      return;
    }
  TrackNames.emplace_back(Tid, Name);
}

bool TraceCollector::flush() {
  std::string OutPath;
  std::vector<TraceEvent> All;
  std::vector<std::pair<uint32_t, std::string>> Tracks;
  {
    MutexLock Lock(M);
    if (Path.empty())
      return false;
    OutPath = Path;
    Tracks = TrackNames;
    for (std::unique_ptr<ThreadBuffer> &B : Buffers) {
      MutexLock BLock(B->M);
      All.insert(All.end(), std::make_move_iterator(B->Events.begin()),
                 std::make_move_iterator(B->Events.end()));
      B->Events.clear();
    }
  }
  std::stable_sort(All.begin(), All.end(),
                   [](const TraceEvent &A, const TraceEvent &B) {
                     return A.TsUs < B.TsUs;
                   });

  std::FILE *F = std::fopen(OutPath.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "[dynace] warning: cannot write trace to '%s'\n",
                 OutPath.c_str());
    return false;
  }
  std::fputs("{\"traceEvents\": [\n", F);
  bool First = true;
  // Track-name metadata first: Chrome/Perfetto label the tid rows (the
  // merged per-worker tracks) from these before any span lands on them.
  for (const auto &[Tid, Name] : Tracks) {
    if (!First)
      std::fputs(",\n", F);
    First = false;
    std::fprintf(F,
                 "{\"ph\": \"M\", \"pid\": 1, \"tid\": %u, "
                 "\"name\": \"thread_name\", \"args\": {\"name\": \"%s\"}}",
                 Tid, jsonEscape(Name).c_str());
  }
  for (const TraceEvent &E : All) {
    if (!First)
      std::fputs(",\n", F);
    First = false;
    // Chrome's importer wants integral pid/tid and microsecond ts/dur.
    if (E.DurUs < 0.0)
      std::fprintf(F,
                   "{\"ph\": \"i\", \"s\": \"t\", \"cat\": \"%s\", "
                   "\"name\": \"%s\", \"pid\": 1, \"tid\": %u, "
                   "\"ts\": %.3f%s%s%s}",
                   E.Cat, E.Name, E.Tid, E.TsUs,
                   E.Args.empty() ? "" : ", \"args\": {",
                   E.Args.c_str(), E.Args.empty() ? "" : "}");
    else
      std::fprintf(F,
                   "{\"ph\": \"X\", \"cat\": \"%s\", \"name\": \"%s\", "
                   "\"pid\": 1, \"tid\": %u, \"ts\": %.3f, "
                   "\"dur\": %.3f%s%s%s}",
                   E.Cat, E.Name, E.Tid, E.TsUs, E.DurUs,
                   E.Args.empty() ? "" : ", \"args\": {",
                   E.Args.c_str(), E.Args.empty() ? "" : "}");
  }
  uint64_t NDropped = Dropped.load(std::memory_order_relaxed);
  std::fprintf(F,
               "%s{\"ph\": \"i\", \"s\": \"t\", \"cat\": \"vm\", "
               "\"name\": \"trace.flush\", \"pid\": 1, \"tid\": 0, "
               "\"ts\": %.3f, \"args\": {\"events\": %zu, "
               "\"dropped\": %llu}}\n",
               First ? "" : ",\n", nowUs(), All.size(),
               static_cast<unsigned long long>(NDropped));
  std::fputs("]}\n", F);
  bool Ok = std::fclose(F) == 0;
  return Ok;
}
