//===- obs/Metrics.cpp ----------------------------------------------------==//

#include "obs/Metrics.h"

#include "support/Env.h"

#include <cstdio>
#include <cstdlib>

using namespace dynace;

void HistogramSnapshot::merge(const HistogramSnapshot &O) {
  Count += O.Count;
  Sum += O.Sum;
  if (Buckets.size() < O.Buckets.size())
    Buckets.resize(O.Buckets.size(), 0);
  for (size_t I = 0, E = O.Buckets.size(); I != E; ++I)
    Buckets[I] += O.Buckets[I];
}

uint64_t HistogramSnapshot::percentileLowerBound(double P) const {
  if (Count == 0)
    return 0;
  if (P < 0.0)
    P = 0.0;
  if (P > 1.0)
    P = 1.0;
  // Rank of the percentile element (1-based), then walk the buckets.
  uint64_t Rank = static_cast<uint64_t>(P * static_cast<double>(Count - 1)) + 1;
  uint64_t Seen = 0;
  for (size_t I = 0, E = Buckets.size(); I != E; ++I) {
    Seen += Buckets[I];
    if (Seen >= Rank)
      return histogramBucketLowerBound(static_cast<unsigned>(I));
  }
  return histogramBucketLowerBound(kHistogramBuckets - 1);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot S;
  S.Buckets.resize(kHistogramBuckets, 0);
  for (unsigned I = 0; I != kHistogramBuckets; ++I) {
    S.Buckets[I] = B[I].load(std::memory_order_relaxed);
    S.Count += S.Buckets[I];
  }
  S.Sum = this->S.load(std::memory_order_relaxed);
  // Trailing zero buckets carry no information; trimming keeps snapshots,
  // serializations and printed tables compact and still merge-compatible.
  while (!S.Buckets.empty() && S.Buckets.back() == 0)
    S.Buckets.pop_back();
  return S;
}

void MetricsSnapshot::merge(const MetricsSnapshot &O) {
  for (const auto &[Name, V] : O.Counters)
    Counters[Name] += V;
  for (const auto &[Name, V] : O.Gauges)
    Gauges[Name] = V;
  for (const auto &[Name, H] : O.Histograms)
    Histograms[Name].merge(H);
}

MetricsSnapshot MetricsSnapshot::delta(const MetricsSnapshot &Since) const {
  MetricsSnapshot D;
  for (const auto &[Name, V] : Counters) {
    uint64_t Base = Since.counterOr(Name);
    if (V > Base)
      D.Counters[Name] = V - Base;
  }
  for (const auto &[Name, V] : Gauges) {
    auto It = Since.Gauges.find(Name);
    if (It == Since.Gauges.end() || It->second != V)
      D.Gauges[Name] = V;
  }
  for (const auto &[Name, H] : Histograms) {
    auto It = Since.Histograms.find(Name);
    const HistogramSnapshot *Base = It == Since.Histograms.end()
                                        ? nullptr
                                        : &It->second;
    HistogramSnapshot DH;
    DH.Buckets.resize(H.Buckets.size(), 0);
    for (size_t I = 0, E = H.Buckets.size(); I != E; ++I) {
      uint64_t B = Base && I < Base->Buckets.size() ? Base->Buckets[I] : 0;
      if (H.Buckets[I] > B) {
        DH.Buckets[I] = H.Buckets[I] - B;
        DH.Count += DH.Buckets[I];
      }
    }
    uint64_t BaseSum = Base ? Base->Sum : 0;
    DH.Sum = H.Sum > BaseSum ? H.Sum - BaseSum : 0;
    while (!DH.Buckets.empty() && DH.Buckets.back() == 0)
      DH.Buckets.pop_back();
    if (DH.Count != 0 || DH.Sum != 0)
      D.Histograms[Name] = std::move(DH);
  }
  return D;
}

std::string MetricsSnapshot::toJson() const {
  std::string Out = "{\n  \"counters\": {";
  bool First = true;
  char Buf[64];
  for (const auto &[Name, V] : Counters) {
    std::snprintf(Buf, sizeof(Buf), "%llu",
                  static_cast<unsigned long long>(V));
    Out += First ? "\n" : ",\n";
    Out += "    \"" + Name + "\": " + Buf;
    First = false;
  }
  Out += First ? "},\n" : "\n  },\n";
  Out += "  \"gauges\": {";
  First = true;
  for (const auto &[Name, V] : Gauges) {
    std::snprintf(Buf, sizeof(Buf), "%.17g", V);
    Out += First ? "\n" : ",\n";
    Out += "    \"" + Name + "\": " + Buf;
    First = false;
  }
  Out += First ? "},\n" : "\n  },\n";
  Out += "  \"histograms\": {";
  First = true;
  for (const auto &[Name, H] : Histograms) {
    Out += First ? "\n" : ",\n";
    std::snprintf(Buf, sizeof(Buf), "{\"count\": %llu, \"sum\": %llu, ",
                  static_cast<unsigned long long>(H.Count),
                  static_cast<unsigned long long>(H.Sum));
    Out += "    \"" + Name + "\": " + Buf + "\"buckets\": [";
    for (size_t I = 0, E = H.Buckets.size(); I != E; ++I) {
      std::snprintf(Buf, sizeof(Buf), "%s%llu", I ? ", " : "",
                    static_cast<unsigned long long>(H.Buckets[I]));
      Out += Buf;
    }
    Out += "]}";
    First = false;
  }
  Out += First ? "}\n}\n" : "\n  }\n}\n";
  return Out;
}

Counter &MetricsRegistry::counter(const std::string &Name) {
  MutexLock Lock(M);
  std::unique_ptr<Counter> &Slot = Counters[Name];
  if (!Slot)
    Slot = std::make_unique<Counter>();
  return *Slot;
}

Gauge &MetricsRegistry::gauge(const std::string &Name) {
  MutexLock Lock(M);
  std::unique_ptr<Gauge> &Slot = Gauges[Name];
  if (!Slot)
    Slot = std::make_unique<Gauge>();
  return *Slot;
}

Histogram &MetricsRegistry::histogram(const std::string &Name) {
  MutexLock Lock(M);
  std::unique_ptr<Histogram> &Slot = Histograms[Name];
  if (!Slot)
    Slot = std::make_unique<Histogram>();
  return *Slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MutexLock Lock(M);
  MetricsSnapshot S;
  for (const auto &[Name, C] : Counters)
    S.Counters[Name] = C->value();
  for (const auto &[Name, G] : Gauges)
    S.Gauges[Name] = G->value();
  for (const auto &[Name, H] : Histograms)
    S.Histograms[Name] = H->snapshot();
  return S;
}

void MetricsRegistry::merge(const MetricsSnapshot &S) {
  for (const auto &[Name, V] : S.Counters)
    counter(Name).inc(V);
  for (const auto &[Name, V] : S.Gauges)
    gauge(Name).set(V);
  for (const auto &[Name, H] : S.Histograms) {
    Histogram &Dst = histogram(Name);
    for (size_t I = 0, E = H.Buckets.size(); I != E; ++I)
      if (H.Buckets[I])
        Dst.add(static_cast<unsigned>(I), H.Buckets[I], /*SumDelta=*/0);
    Dst.add(0, 0, H.Sum); // The exact sum transfers in one shot.
  }
}

MetricsRegistry &MetricsRegistry::process() {
  // Leaked (atexit handlers and worker threads may outlive statics). When
  // DYNACE_METRICS names a file, the registry's final snapshot is dumped
  // there as JSON at process exit.
  static MetricsRegistry *R = [] {
    auto *Reg = new MetricsRegistry();
    if (!envString("DYNACE_METRICS").empty())
      std::atexit([] {
        std::string Path = envString("DYNACE_METRICS");
        if (Path.empty())
          return;
        std::FILE *F = std::fopen(Path.c_str(), "w");
        if (!F) {
          std::fprintf(stderr,
                       "[dynace] warning: cannot write metrics to '%s'\n",
                       Path.c_str());
          return;
        }
        std::string Json = MetricsRegistry::process().snapshot().toJson();
        std::fwrite(Json.data(), 1, Json.size(), F);
        std::fclose(F);
      });
    return Reg;
  }();
  return *R;
}
