//===- obs/Profile.cpp ----------------------------------------------------==//

#include "obs/Profile.h"

#include "obs/Trace.h"
#include "support/Env.h"
#include "support/ThreadSafety.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <vector>

using namespace dynace;
using namespace dynace::obs;

std::atomic<bool> dynace::obs::detail::ProfileOn{false};

namespace {

double nowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct StageTotals {
  double TotalUs = 0.0;
  double SelfUs = 0.0;
  uint64_t Count = 0;
};

// Keyed by stage name; the literal pointers from call sites are unified
// through a string map so identical names from different TUs aggregate.
// REQUIRES makes the discipline checkable: every table() caller must hold
// TableMutex or the Clang thread-safety analysis rejects the TU.
Mutex TableMutex;
std::map<std::string, StageTotals> &table() REQUIRES(TableMutex) {
  static auto *T = new std::map<std::string, StageTotals>();
  return *T;
}

// Innermost active scope on this thread (the parent of a new scope).
thread_local ProfileScope *ActiveScope = nullptr;

} // namespace

Profiler &Profiler::instance() {
  static Profiler *P = [] {
    Profiler *Inst = new Profiler();
    if (envBoolOr("DYNACE_PROFILE", false))
      Inst->setEnabled(true);
    return Inst;
  }();
  return *P;
}

// Eager env configuration, for the same reason as the trace collector's:
// DYNACE_PROFILE_SCOPE consults only the ProfileOn flag, so the singleton
// must read DYNACE_PROFILE before the first scope runs, not after.
const bool ProfileEnvConfigured = (Profiler::instance(), true);

void Profiler::setEnabled(bool On) {
  static std::once_flag AtExitOnce;
  detail::ProfileOn.store(On, std::memory_order_relaxed);
  if (On)
    std::call_once(AtExitOnce, [] {
      std::atexit([] { Profiler::instance().print(stderr); });
    });
}

bool Profiler::enabled() const { return profileEnabled(); }

void Profiler::charge(const char *Stage, double TotalUs, double SelfUs) {
  MutexLock Lock(TableMutex);
  StageTotals &T = table()[Stage];
  T.TotalUs += TotalUs;
  T.SelfUs += SelfUs;
  T.Count += 1;
}

void Profiler::print(std::FILE *Out) const {
  std::vector<std::pair<std::string, StageTotals>> Rows;
  {
    MutexLock Lock(TableMutex);
    Rows.assign(table().begin(), table().end());
  }
  if (Rows.empty())
    return;
  std::sort(Rows.begin(), Rows.end(), [](const auto &A, const auto &B) {
    return A.second.SelfUs > B.second.SelfUs;
  });
  double TotalSelfUs = 0.0;
  for (const auto &[Name, T] : Rows)
    TotalSelfUs += T.SelfUs;
  std::fprintf(Out, "[dynace] profile (self-time attribution):\n");
  std::fprintf(Out, "  %-12s %12s %12s %10s %7s\n", "stage", "total(ms)",
               "self(ms)", "count", "self%");
  for (const auto &[Name, T] : Rows)
    std::fprintf(Out, "  %-12s %12.2f %12.2f %10llu %6.1f%%\n", Name.c_str(),
                 T.TotalUs / 1000.0, T.SelfUs / 1000.0,
                 static_cast<unsigned long long>(T.Count),
                 TotalSelfUs > 0.0 ? 100.0 * T.SelfUs / TotalSelfUs : 0.0);
}

void Profiler::reset() {
  MutexLock Lock(TableMutex);
  table().clear();
}

ProfileScope::ProfileScope(const char *Stage)
    : Stage(Stage), Enabled(profileEnabled()), Traced(traceEnabled()) {
  if (Traced)
    TraceStartUs = TraceCollector::instance().nowUs();
  if (!Enabled)
    return;
  StartUs = nowUs();
  Parent = ActiveScope;
  ActiveScope = this;
}

ProfileScope::~ProfileScope() {
  if (Traced)
    traceComplete("stage", Stage, TraceStartUs,
                  TraceCollector::instance().nowUs() - TraceStartUs);
  if (!Enabled)
    return;
  double TotalUs = nowUs() - StartUs;
  ActiveScope = Parent;
  if (Parent)
    Parent->ChildUs += TotalUs;
  Profiler::instance().charge(Stage, TotalUs, TotalUs - ChildUs);
}
