//===- obs/Metrics.h - Counters, gauges, log2 histograms --------*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metrics half of the observability layer (DESIGN.md §9): named
/// counters, gauges and power-of-two-bucket histograms collected in a
/// \c MetricsRegistry and frozen into a deterministic, mergeable
/// \c MetricsSnapshot.
///
/// Two kinds of registry exist:
///
///  * the **per-run registry** owned by each \c System — every increment is
///    driven by a deterministic simulation event (hotspot promoted,
///    reconfiguration accepted/rejected, batch drained, trap raised), so
///    the snapshot stored into \c SimulationResult::Metrics is bit-identical
///    across serial and parallel pipelines and participates in the result
///    cache and the golden determinism test;
///  * the **process registry** (\c MetricsRegistry::process()) accumulating
///    pipeline-level accounting — cache hits/misses/quarantines, worker
///    retries, per-cell wall-time histograms — which depends on disk state
///    and scheduling and is therefore reported, never cached. It is dumped
///    as JSON to the DYNACE_METRICS path at process exit.
///
/// Instruments are cheap enough to leave always-on at event granularity:
/// one relaxed atomic add per counter increment, two per histogram record.
/// Hot loops (the batched kernel) record per *batch*, never per
/// instruction, keeping the instrumented kernel inside the microbench's
/// 20% regression gate. Callers that need zero lookup cost cache the
/// Counter/Histogram pointers returned by the registry — they are stable
/// for the registry's lifetime.
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_OBS_METRICS_H
#define DYNACE_OBS_METRICS_H

#include "support/ThreadSafety.h"

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace dynace {

/// Monotonically increasing event count. Thread-safe (relaxed atomics);
/// per-run registries are single-threaded, the process registry is shared
/// by pipeline workers.
class Counter {
public:
  void inc(uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// Last-written scalar (e.g. the run's final IPC). Thread-safe.
class Gauge {
public:
  void set(double X) { V.store(X, std::memory_order_relaxed); }
  double value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<double> V{0.0};
};

/// Number of histogram buckets: bucket 0 holds value 0, bucket i >= 1
/// holds values in [2^(i-1), 2^i - 1] (i = std::bit_width(v)), so the full
/// uint64_t range maps to 65 fixed buckets and two histograms always merge
/// bucket-for-bucket.
inline constexpr unsigned kHistogramBuckets = 65;

/// \returns the bucket index of \p V (0 for 0, else bit_width).
inline unsigned histogramBucketFor(uint64_t V) {
  return V == 0 ? 0 : static_cast<unsigned>(std::bit_width(V));
}

/// \returns the smallest value mapping to bucket \p I.
inline uint64_t histogramBucketLowerBound(unsigned I) {
  return I == 0 ? 0 : uint64_t(1) << (I - 1);
}

/// Frozen histogram state (see Histogram).
struct HistogramSnapshot {
  uint64_t Count = 0; ///< Total recorded values.
  uint64_t Sum = 0;   ///< Sum of recorded values.
  /// One count per fixed log2 bucket (kHistogramBuckets entries).
  std::vector<uint64_t> Buckets;

  /// Bucket-wise accumulation of \p O into this snapshot.
  void merge(const HistogramSnapshot &O);
  /// Smallest value of the bucket containing the p-th percentile recorded
  /// value (0 when empty). \p P in [0, 1].
  uint64_t percentileLowerBound(double P) const;
  bool operator==(const HistogramSnapshot &O) const = default;
};

/// Fixed-log2-bucket histogram. record() is two relaxed atomic adds plus a
/// bit_width — safe and cheap from any thread.
class Histogram {
public:
  void record(uint64_t V) {
    B[histogramBucketFor(V)].fetch_add(1, std::memory_order_relaxed);
    S.fetch_add(V, std::memory_order_relaxed);
  }
  /// Bulk accumulation (snapshot merge): \p N values in bucket \p Bucket
  /// contributing \p SumDelta to the sum.
  void add(unsigned Bucket, uint64_t N, uint64_t SumDelta) {
    B[Bucket < kHistogramBuckets ? Bucket : kHistogramBuckets - 1].fetch_add(
        N, std::memory_order_relaxed);
    S.fetch_add(SumDelta, std::memory_order_relaxed);
  }
  HistogramSnapshot snapshot() const;

private:
  std::atomic<uint64_t> B[kHistogramBuckets]{};
  std::atomic<uint64_t> S{0};
};

/// Deterministically ordered (std::map) freeze of a registry; the form
/// that is serialized into cache entries, compared by the golden test, and
/// rendered by Reports::printMetrics.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> Counters;
  std::map<std::string, double> Gauges;
  std::map<std::string, HistogramSnapshot> Histograms;

  /// Accumulates \p O: counters and histograms add, gauges take \p O's
  /// value (last writer wins).
  void merge(const MetricsSnapshot &O);
  /// \returns what happened after \p Since: counter and histogram-bucket
  /// differences (clamped at zero, zero entries omitted) and every gauge
  /// whose value changed or appeared. delta(Since) is merge()'s inverse
  /// on a monotonically growing registry — how a serve worker reports
  /// per-cell increments the coordinator can fold into the fleet registry
  /// without double counting (including state inherited across fork()).
  MetricsSnapshot delta(const MetricsSnapshot &Since) const;
  /// \returns the named counter's value, or 0 when absent.
  uint64_t counterOr(const std::string &Name, uint64_t Default = 0) const {
    auto It = Counters.find(Name);
    return It == Counters.end() ? Default : It->second;
  }
  bool empty() const {
    return Counters.empty() && Gauges.empty() && Histograms.empty();
  }
  /// Renders the snapshot as a deterministic JSON object (the
  /// DYNACE_METRICS dump format).
  std::string toJson() const;
  bool operator==(const MetricsSnapshot &O) const = default;
};

/// Named instrument registry. Lookup (counter/gauge/histogram) takes a
/// mutex and is meant for setup paths; the returned references are stable
/// for the registry's lifetime, so hot call sites resolve once and cache
/// the pointer. The name->instrument maps are GUARDED_BY the registry
/// mutex (checked by Clang's -Wthread-safety); the instruments themselves
/// are internally atomic, so the returned references are written lock-free.
class MetricsRegistry {
public:
  Counter &counter(const std::string &Name) EXCLUDES(M);
  Gauge &gauge(const std::string &Name) EXCLUDES(M);
  Histogram &histogram(const std::string &Name) EXCLUDES(M);

  /// Freezes current values. Safe concurrently with writers (each value is
  /// read atomically; cross-instrument skew is acceptable by design).
  MetricsSnapshot snapshot() const EXCLUDES(M);

  /// Accumulates a frozen snapshot into this registry (counter adds,
  /// bucket-wise histogram adds, gauge overwrites) — how per-run snapshots
  /// roll up into the process registry.
  void merge(const MetricsSnapshot &S) EXCLUDES(M);

  /// The process-wide pipeline registry (cache/runner accounting).
  static MetricsRegistry &process();

private:
  mutable Mutex M;
  std::map<std::string, std::unique_ptr<Counter>> Counters GUARDED_BY(M);
  std::map<std::string, std::unique_ptr<Gauge>> Gauges GUARDED_BY(M);
  std::map<std::string, std::unique_ptr<Histogram>> Histograms GUARDED_BY(M);
};

} // namespace dynace

#endif // DYNACE_OBS_METRICS_H
