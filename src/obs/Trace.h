//===- obs/Trace.h - Chrome trace_event collection --------------*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tracing half of the observability layer (DESIGN.md §9): a
/// process-wide \c TraceCollector that buffers timeline events per thread
/// and writes them as Chrome \c trace_event JSON — loadable in
/// \c chrome://tracing or https://ui.perfetto.dev — when the process exits
/// (or on an explicit flush()).
///
/// Configuration: setting \c DYNACE_TRACE=<path> enables tracing to that
/// file; unset/empty disables it. Tests and benches may also call
/// \c TraceCollector::configure() directly (the microbench uses this to
/// measure traced-vs-untraced overhead in one process).
///
/// **Disabled-path invariant:** every emit site is guarded by the
/// \c DYNACE_TRACE_* macros, whose disabled path is a single relaxed
/// atomic-bool load and branch — argument rendering, clock reads and
/// buffer work all live behind it. The batched simulation kernel carries
/// no per-instruction emit site at all (batch-boundary granularity only),
/// so tracing-off throughput stays inside the microbench's 20% gate.
///
/// Emission is "lock-free-ish": each thread appends to its own buffer
/// under a per-thread mutex that only flush() ever contends, so the
/// enabled-path cost is one uncontended lock + vector push_back. Buffers
/// are capped (dropped events are counted and reported in the trace
/// metadata) so a pathological run cannot exhaust memory.
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_OBS_TRACE_H
#define DYNACE_OBS_TRACE_H

#include "support/ThreadSafety.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dynace {
namespace obs {

/// Event categories. A closed set so tools (scripts/check_trace.sh) can
/// reject unknown categories as schema drift; add here AND to the script's
/// known list when introducing a new one.
///  * "hotspot"  — DO hotspot detection/promotion;
///  * "tuning"   — ACE tuning-state transitions and measurements;
///  * "reconfig" — CU requests (accept/silent-reject) and cache flushes;
///  * "vm"       — interpreter/system events (run span, batches, traps);
///  * "cache"    — result-cache probes (hit/miss/quarantine/save);
///  * "runner"   — experiment-pipeline cells and retries;
///  * "stage"    — profiler stage spans (generate/simulate/tune/report);
///  * "serve"    — distributed experiment service (grid spans, lease
///                 re-dispatch, worker respawn, journal replay).
///
/// \returns true when \p Cat is one of the categories above.
bool isKnownTraceCategory(const char *Cat);

/// One buffered event. Cat/Name must be string literals (they are stored
/// unowned); Args is a pre-rendered JSON object body ("\"k\":1") or empty.
struct TraceEvent {
  const char *Cat = "";
  const char *Name = "";
  double TsUs = 0.0;  ///< Microseconds since collector epoch.
  double DurUs = -1.0; ///< Duration for complete events; < 0 = instant.
  uint32_t Tid = 0;
  std::string Args;
};

/// Process-wide trace sink.
class TraceCollector {
public:
  /// \returns the singleton, configured from DYNACE_TRACE on first use.
  static TraceCollector &instance();

  /// Points the collector at \p Path (empty disables tracing). Buffered
  /// events and drop counts are discarded; the epoch restarts. Installs an
  /// atexit flush the first time a non-empty path is configured.
  void configure(const std::string &Path) EXCLUDES(M);

  /// Output path; empty when tracing is disabled.
  std::string path() const EXCLUDES(M);

  /// Appends an event to the calling thread's buffer (no-op when
  /// disabled). Prefer the DYNACE_TRACE_* macros, which guard argument
  /// construction too.
  void emit(TraceEvent E);

  /// Writes all buffered events to the configured path as Chrome
  /// trace_event JSON, sorted by timestamp, and clears the buffers.
  /// \returns true on success (false: disabled or I/O failure).
  bool flush() EXCLUDES(M);

  /// Removes and returns every buffered event (all threads), sorted by
  /// timestamp. How a serve worker ships its span buffer back to the
  /// coordinator instead of writing a file: the worker drains, the
  /// coordinator re-emits clock-aligned via emitForeign(). Also used to
  /// discard a forked child's inherited parent buffers.
  std::vector<TraceEvent> drain() EXCLUDES(M);

  /// Appends an event that already carries its own Tid (a cross-process
  /// span merged by the coordinator) — unlike emit(), the calling
  /// thread's id is NOT stamped over E.Tid. E.Cat/E.Name must still be
  /// process-lifetime strings (see internTraceString()). No-op when
  /// disabled; the per-thread cap and drop accounting still apply.
  void emitForeign(TraceEvent E);

  /// Names the timeline track \p Tid (flush() renders a thread_name
  /// metadata event), e.g. "worker 3" for a merged per-worker track.
  void nameTrack(uint32_t Tid, const std::string &Name) EXCLUDES(M);

  /// The collector epoch as a steady_clock nanosecond count — what
  /// HelloMsg carries so the coordinator can align a worker's span
  /// timestamps onto its own clock.
  int64_t epochNs() const { return EpochNs.load(std::memory_order_relaxed); }

  /// Microseconds since the collector epoch (monotonic). Lock-free: the
  /// epoch is an atomic nanosecond count so hot emit paths never touch M
  /// and a concurrent configure() cannot race the read.
  double nowUs() const {
    int64_t Now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count();
    return static_cast<double>(
               Now - EpochNs.load(std::memory_order_relaxed)) /
           1000.0;
  }

  /// Events dropped because a thread buffer hit its cap, since the last
  /// configure()/flush().
  uint64_t droppedEvents() const {
    return Dropped.load(std::memory_order_relaxed);
  }

private:
  TraceCollector();

  struct ThreadBuffer {
    Mutex M; ///< Owner-appends vs flush; effectively uncontended.
    std::vector<TraceEvent> Events GUARDED_BY(M);
    uint32_t Tid = 0; ///< Written once before publication; then read-only.
  };

  ThreadBuffer &threadBuffer() EXCLUDES(M);

  /// Clears every thread buffer. Callers hold the registry lock (checked:
  /// the Buffers walk needs M, each Events wipe takes the buffer's lock).
  void clearBuffersLocked() REQUIRES(M);

  mutable Mutex M; ///< Guards collector-wide configuration state.
  std::string Path GUARDED_BY(M);
  std::vector<std::unique_ptr<ThreadBuffer>> Buffers GUARDED_BY(M);
  std::vector<std::pair<uint32_t, std::string>> TrackNames GUARDED_BY(M);
  std::atomic<uint64_t> Dropped{0};
  std::atomic<uint32_t> NextTid{1};
  bool AtExitInstalled GUARDED_BY(M) = false;
  /// steady_clock epoch as a nanosecond count — atomic so nowUs() stays
  /// lock-free against configure()'s epoch reset.
  std::atomic<int64_t> EpochNs{0};
};

namespace detail {
/// Tracing-enabled flag, mirrored out of the collector so emit sites pay
/// one relaxed load when disabled.
extern std::atomic<bool> TraceOn;
} // namespace detail

/// \returns true when tracing is configured (the macro guard).
inline bool traceEnabled() {
  return detail::TraceOn.load(std::memory_order_relaxed);
}

/// Minimal JSON string escaping for event argument values.
std::string jsonEscape(const std::string &S);

/// Interns \p S into a process-lifetime string (TraceEvent stores Cat and
/// Name unowned, which is free for literals but needs a stable home for
/// strings that arrived over the serve wire). Known categories intern to
/// their canonical literal; everything else is deduplicated in a leaked
/// table, so repeated span names cost one entry.
const char *internTraceString(const std::string &S);

// Argument-rendering helpers (called only on the enabled path).
std::string traceArg(const char *Key, uint64_t Value);
std::string traceArg(const char *Key, const std::string &Value);
inline std::string traceArg(const char *Key, const char *Value) {
  return traceArg(Key, std::string(Value));
}

/// Emits an instant event ("i") with pre-rendered \p Args.
void traceInstant(const char *Cat, const char *Name, std::string Args = "");

/// Emits a complete event ("X") spanning [\p StartUs, \p StartUs+\p DurUs].
void traceComplete(const char *Cat, const char *Name, double StartUs,
                   double DurUs, std::string Args = "");

/// RAII duration event: records the start at construction and emits a
/// complete event at destruction. Enabledness is latched at construction
/// so a mid-scope configure() cannot emit a garbage span.
class TraceScope {
public:
  TraceScope(const char *Cat, const char *Name, std::string Args = "")
      : Cat(Cat), Name(Name), Args(std::move(Args)),
        Enabled(traceEnabled()) {
    if (Enabled)
      StartUs = TraceCollector::instance().nowUs();
  }
  ~TraceScope() {
    if (Enabled)
      traceComplete(Cat, Name,
                    StartUs, TraceCollector::instance().nowUs() - StartUs,
                    std::move(Args));
  }
  TraceScope(const TraceScope &) = delete;
  TraceScope &operator=(const TraceScope &) = delete;

private:
  const char *Cat;
  const char *Name;
  std::string Args;
  bool Enabled;
  double StartUs = 0.0;
};

} // namespace obs
} // namespace dynace

/// Instant event; argument expressions are evaluated only when tracing is
/// enabled (the disabled path is the single traceEnabled() branch).
#define DYNACE_TRACE_INSTANT(Cat, Name, ...)                                   \
  do {                                                                         \
    if (dynace::obs::traceEnabled())                                           \
      dynace::obs::traceInstant(Cat, Name, ##__VA_ARGS__);                     \
  } while (0)

/// Scoped duration event (one TraceScope per use; args evaluated lazily).
#define DYNACE_TRACE_SCOPE_CONCAT2(A, B) A##B
#define DYNACE_TRACE_SCOPE_CONCAT(A, B) DYNACE_TRACE_SCOPE_CONCAT2(A, B)
#define DYNACE_TRACE_SCOPE(Cat, Name, ...)                                     \
  dynace::obs::TraceScope DYNACE_TRACE_SCOPE_CONCAT(DynaceTraceScope_,         \
                                                    __LINE__)(                 \
      Cat, Name,                                                               \
      dynace::obs::traceEnabled() ? std::string(__VA_ARGS__) : std::string())

#endif // DYNACE_OBS_TRACE_H
