//===- obs/Profile.h - Pipeline-stage wall-time profiling ------*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The profiling hook of the observability layer (DESIGN.md §9):
/// scoped timers that attribute wall time to named pipeline stages
/// (generate, simulate, tune, report, cache) and print a self-time table
/// at process exit when \c DYNACE_PROFILE=1.
///
/// Stages nest: "tune" runs inside "simulate", which runs inside an
/// ExperimentRunner cell. Each thread keeps a stack of active stages; when
/// a scope ends, its elapsed time is charged to its stage's *total* and
/// subtracted from the parent's *self* time, so the table's self column
/// sums to roughly the profiled wall clock without double counting.
///
/// Like tracing, the disabled path is a relaxed atomic-bool branch per
/// facility (the DYNACE_PROFILE_SCOPE macro checks profiling and tracing);
/// enabling it costs two clock reads per scope, and scopes sit at stage
/// granularity (per run / per cell), never inside the batched kernel.
/// When tracing is also enabled, each scope doubles as a "stage" duration
/// event on the trace timeline.
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_OBS_PROFILE_H
#define DYNACE_OBS_PROFILE_H

#include <atomic>
#include <cstdio>
#include <string>

namespace dynace {
namespace obs {

/// Process-wide stage profiler.
class Profiler {
public:
  /// \returns the singleton, configured from DYNACE_PROFILE on first use.
  static Profiler &instance();

  /// Enables/disables collection. Enabling the first time installs an
  /// atexit hook that prints the table to stderr.
  void setEnabled(bool On);
  bool enabled() const;

  /// Accumulates \p TotalUs/\p SelfUs onto stage \p Stage (which must be a
  /// string literal; it is stored unowned).
  void charge(const char *Stage, double TotalUs, double SelfUs);

  /// Prints the per-stage table (total, self, count, self%) to \p Out,
  /// widest self-time first. Safe to call when disabled (prints nothing).
  void print(std::FILE *Out) const;

  /// Drops all accumulated samples (tests).
  void reset();

private:
  Profiler() = default;
};

namespace detail {
extern std::atomic<bool> ProfileOn;
} // namespace detail

/// \returns true when profiling is collecting (the macro guard).
inline bool profileEnabled() {
  return detail::ProfileOn.load(std::memory_order_relaxed);
}

/// RAII stage scope. Pushes onto the calling thread's stage stack; on
/// destruction charges elapsed time to the stage and deducts it from the
/// parent scope's self time. When tracing is on, the scope additionally
/// emits a "stage" duration event so the stage structure shows up on the
/// Perfetto timeline. Enabledness of both facilities latches at
/// construction.
class ProfileScope {
public:
  explicit ProfileScope(const char *Stage);
  ~ProfileScope();
  ProfileScope(const ProfileScope &) = delete;
  ProfileScope &operator=(const ProfileScope &) = delete;

private:
  const char *Stage;
  bool Enabled;
  bool Traced;
  double StartUs = 0.0;
  double TraceStartUs = 0.0;    ///< Trace-epoch start (tracing only).
  double ChildUs = 0.0;         ///< Time claimed by nested scopes.
  ProfileScope *Parent = nullptr; ///< Enclosing scope on this thread.
};

} // namespace obs
} // namespace dynace

/// Stage scope; single-branch when profiling is off.
#define DYNACE_PROFILE_CONCAT2(A, B) A##B
#define DYNACE_PROFILE_CONCAT(A, B) DYNACE_PROFILE_CONCAT2(A, B)
#define DYNACE_PROFILE_SCOPE(Stage)                                            \
  dynace::obs::ProfileScope DYNACE_PROFILE_CONCAT(DynaceProfileScope_,         \
                                                  __LINE__)(Stage)

#endif // DYNACE_OBS_PROFILE_H
