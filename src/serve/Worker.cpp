//===- serve/Worker.cpp ---------------------------------------------------==//

#include "serve/Worker.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "serve/Protocol.h"
#include "serve/Wire.h"
#include "sim/ExperimentRunner.h"
#include "sim/ResultCache.h"
#include "support/FaultInjector.h"
#include "support/ThreadSafety.h"
#include "workloads/WorkloadProfile.h"

#include <atomic>
#include <chrono>
#include <thread>

#include <unistd.h>

using namespace dynace;
using namespace dynace::serve;

namespace {

/// Shared socket state: the cell loop and the heartbeat thread both send
/// frames, and frames must never interleave on the stream.
struct WorkerLink {
  int Fd;
  uint64_t WorkerId;
  Mutex SendMutex;
  /// Cell currently being simulated (HeartbeatMsg::kIdle between cells).
  std::atomic<uint64_t> CurrentCell{HeartbeatMsg::kIdle};
  std::atomic<bool> Stop{false};

  Status send(FrameType T, const std::string &Payload) EXCLUDES(SendMutex) {
    MutexLock L(SendMutex);
    return sendFrame(Fd, T, Payload);
  }
};

void heartbeatLoop(WorkerLink &Link, uint64_t HeartbeatMs) {
  while (!Link.Stop.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(HeartbeatMs));
    if (Link.Stop.load(std::memory_order_acquire))
      return;
    HeartbeatMsg M;
    M.WorkerId = Link.WorkerId;
    M.CellIndex = Link.CurrentCell.load(std::memory_order_relaxed);
    // A failed beat is not fatal here: the cell loop owns the verdict on
    // the transport (and an injected rpc.send drop merely skips a beat —
    // exactly the silence the coordinator is built to notice).
    (void)Link.send(FrameType::Heartbeat, encodeHeartbeat(M));
  }
}

} // namespace

CellResultMsg dynace::serve::runServeCell(const CellAssignMsg &Assign,
                                          const SimulationOptions &Base) {
  CellResultMsg Reply;
  Reply.CellIndex = Assign.CellIndex;
  Reply.Cell = Assign.Cell;

  const WorkloadProfile *Profile = findProfile(Assign.Cell.Benchmark);
  if (!Profile) {
    Reply.Failed = true;
    Reply.Code = static_cast<uint8_t>(ErrorCode::InvalidInput);
    Reply.Reason = "unknown benchmark '" + Assign.Cell.Benchmark + "'";
    Reply.Attempts = 0;
    // Even a failed cell carries a parseable (empty) result: commitLocked
    // re-parses every record, and an unparseable one would be rejected
    // and the cell re-dispatched forever. Mirrors runExperimentCell's
    // failed-cell shape.
    SimulationResult Empty;
    Empty.SchemeKind = Assign.Cell.SchemeKind;
    Reply.ResultText = serializeResult(Empty);
    return Reply;
  }

  auto [Result, Outcome] =
      runExperimentCell(*Profile, Assign.Cell.SchemeKind, Base);
  SimulationOptions KeyOpts = Base;
  KeyOpts.SchemeKind = Assign.Cell.SchemeKind;
  Reply.CacheKey = resultCacheKey(Profile->Name, KeyOpts);
  Reply.Failed = Outcome.Failed;
  Reply.Code = static_cast<uint8_t>(Outcome.Code);
  Reply.Attempts = Outcome.Attempts;
  Reply.CacheHit = Outcome.CacheHit;
  Reply.Quarantined = Outcome.Quarantined;
  Reply.Reason = Outcome.Reason;
  Reply.ResultText = serializeResult(Result);
  return Reply;
}

void dynace::serve::serveWorkerMain(int Fd, uint64_t WorkerId,
                                    uint64_t HeartbeatMs,
                                    const SimulationOptions &Base) {
  WorkerLink Link{};
  Link.Fd = Fd;
  Link.WorkerId = WorkerId;

  // Telemetry baseline. fork() copied the coordinator's trace buffers and
  // process registry into this worker; discard the inherited spans (the
  // coordinator still owns them) and snapshot the registry so per-cell
  // deltas report only work done *here*. Workers never flush a trace file
  // themselves — every exit is _exit(), which skips the atexit flush, and
  // spans travel home inside CellResult instead.
  obs::TraceCollector &Trace = obs::TraceCollector::instance();
  (void)Trace.drain();
  MetricsSnapshot MetricsBase = MetricsRegistry::process().snapshot();

  HelloMsg Hello;
  Hello.WorkerId = WorkerId;
  Hello.Pid = static_cast<uint64_t>(::getpid());
  Hello.TraceEpochNs = static_cast<uint64_t>(Trace.epochNs());
  if (!Link.send(FrameType::Hello, encodeHello(Hello)).ok())
    ::_exit(kWorkerExitError);

  if (HeartbeatMs != 0) {
    // The thread is never joined: every path below _exit()s, which is the
    // point — a worker must die instantly and completely, never run the
    // parent's inherited atexit work.
    std::thread(heartbeatLoop, std::ref(Link), HeartbeatMs).detach();
  }

  for (;;) {
    Expected<Frame> F = recvFrame(Fd);
    if (!F.ok()) {
      // EOF means the coordinator is gone or done with us: clean exit.
      // Anything else (corrupt frame, injected receive drop, I/O error)
      // is a transport failure the coordinator handles by respawning.
      ::_exit(F.status().code() == ErrorCode::Unavailable ? kWorkerExitClean
                                                          : kWorkerExitError);
    }
    Frame Msg = F.take();
    switch (Msg.Type) {
    case FrameType::Shutdown:
      ::_exit(kWorkerExitClean);
    case FrameType::CellAssign: {
      Expected<CellAssignMsg> E = decodeCellAssign(Msg.Payload);
      if (!E.ok())
        ::_exit(kWorkerExitError);
      CellAssignMsg Assign = E.take();
      // The chaos tests' crash stand-in: die exactly where a real fault
      // would — after taking the lease, before producing the result.
      if (FaultInjector::instance().shouldFail(FaultSite::WorkerCrash))
        ::_exit(kWorkerExitCrash);
      Link.CurrentCell.store(Assign.CellIndex, std::memory_order_relaxed);
      CellResultMsg Reply;
      {
        // The cell's own span: stamped with the trace context from the
        // lease so re-dispatched attempts stay distinguishable after the
        // coordinator merges every worker's buffer into one timeline.
        DYNACE_TRACE_SCOPE(
            "serve", "worker.cell",
            obs::traceArg("cell", Assign.CellIndex) + ", " +
                obs::traceArg("attempt",
                              static_cast<uint64_t>(Assign.Attempt)) +
                ", " + obs::traceArg("grid", Assign.GridId) + ", " +
                obs::traceArg("key", Assign.Cell.Benchmark + "/" +
                                         schemeName(Assign.Cell.SchemeKind)));
        Reply = runServeCell(Assign, Base);
      }
      Link.CurrentCell.store(HeartbeatMsg::kIdle, std::memory_order_relaxed);
      Reply.GridId = Assign.GridId;
      Reply.DispatchAttempt = Assign.Attempt;
      // Ship this cell's telemetry home: the drained trace buffer (the
      // worker.cell span plus whatever vm/cache/runner spans the
      // simulation emitted) and the registry delta since the last ship.
      if (obs::traceEnabled()) {
        std::vector<obs::TraceEvent> Events = Trace.drain();
        for (obs::TraceEvent &Ev : Events) {
          if (Reply.Spans.size() >= kMaxWireSpans) {
            Reply.DroppedSpans++;
            continue;
          }
          WireSpan S;
          S.Cat = Ev.Cat;
          S.Name = Ev.Name;
          S.TsUs = Ev.TsUs;
          S.DurUs = Ev.DurUs;
          S.Args = std::move(Ev.Args);
          Reply.Spans.push_back(std::move(S));
        }
      }
      MetricsSnapshot MetricsNow = MetricsRegistry::process().snapshot();
      Reply.MetricsDelta = MetricsNow.delta(MetricsBase);
      MetricsBase = std::move(MetricsNow);
      if (!Link.send(FrameType::CellResult, encodeCellResult(Reply)).ok())
        ::_exit(kWorkerExitError);
      break;
    }
    default:
      // A coordinator never sends anything else; a frame that decodes to
      // another type is protocol corruption.
      ::_exit(kWorkerExitError);
    }
  }
}
