//===- serve/Journal.h - Crash-resumable grid outcome journal ---*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Write-ahead journal of terminal cell outcomes, so a coordinator killed
/// mid-grid *resumes* on restart instead of re-running completed cells
/// (DESIGN.md §16). The file is append-only:
///
///   offset  size  field
///        0     4  magic "DYNJ"
///        4     1  journal version (kJournalVersion)
///        5     3  zero padding
///   then, per record:
///        0     4  body length (little-endian)
///        4     8  FNV-1a-64 checksum of the body
///       12   len  body — a CellResult payload (serve/Protocol.h), the
///                 exact bytes the wire carried
///
/// Appends open the file O_APPEND, write the whole record with one
/// write(2) and fsync before closing — no file descriptor is held
/// between appends, so forked worker processes never inherit one and a
/// record is either fully durable or (at worst) a torn tail.
///
/// replay() validates the header, then reads records until the first
/// torn or checksum-failing one; everything from that point on is
/// discarded (the cells re-run — always safe, results are
/// content-addressed and deterministic). A mid-file flip therefore costs
/// re-execution, never a wrong result: record bodies are re-decoded and
/// the embedded result text re-parsed by the consumer, the same
/// zero-trust path as the wire.
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_SERVE_JOURNAL_H
#define DYNACE_SERVE_JOURNAL_H

#include "serve/Protocol.h"
#include "support/Status.h"

#include <string>
#include <vector>

namespace dynace {
namespace serve {

/// Journal format version; bump on any layout or record-body change.
/// v2: record bodies are wire-v2 CellResult payloads (trace context,
/// span list, metrics block) — telemetry fields are stripped before
/// appending, but the encoding itself changed shape.
inline constexpr uint8_t kJournalVersion = 2;

/// Result of replaying a journal file.
struct JournalReplay {
  /// Fully validated records, in append order (may contain duplicates of
  /// one CellIndex when a grid was resumed more than once; last wins).
  std::vector<CellResultMsg> Records;
  /// Bytes dropped from the tail (0 = clean file). A non-zero value after
  /// a crash is expected — a torn final record — and harmless.
  uint64_t DroppedTailBytes = 0;
};

/// Appends one outcome record to the journal at \p Path, creating the
/// file (with its header) on first use. Durable on return (fsync).
/// \returns the bytes appended (header + record on first use), or
///          IoError naming the failing step.
Expected<uint64_t> journalAppend(const std::string &Path,
                                 const CellResultMsg &M);

/// Replays the journal at \p Path.
/// \returns the validated records (a missing file is an empty replay, not
///          an error), or IoError (unreadable) / InvalidInput (the header
///          is not a journal — refusing to append garbage to garbage).
Expected<JournalReplay> journalReplay(const std::string &Path);

} // namespace serve
} // namespace dynace

#endif // DYNACE_SERVE_JOURNAL_H
