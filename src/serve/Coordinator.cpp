//===- serve/Coordinator.cpp ----------------------------------------------==//

#include "serve/Coordinator.h"

#include "serve/Journal.h"
#include "serve/Wire.h"
#include "serve/Worker.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "sim/ResultCache.h"
#include "support/Env.h"
#include "support/ThreadSafety.h"
#include "workloads/WorkloadProfile.h"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <memory>
#include <set>
#include <thread>

#include <csignal>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace dynace;
using namespace dynace::serve;

Expected<ServeConfig> dynace::serve::ServeConfig::fromEnv() {
  ServeConfig C;
  Expected<uint64_t> Workers =
      envUnsignedChecked("DYNACE_SERVE_WORKERS", C.Workers, 0, 64);
  if (!Workers.ok())
    return Workers.status();
  C.Workers = static_cast<unsigned>(Workers.get());

  Expected<uint64_t> Lease =
      envUnsignedChecked("DYNACE_SERVE_LEASE_MS", C.LeaseMs, 1, 3600000);
  if (!Lease.ok())
    return Lease.status();
  C.LeaseMs = Lease.get();

  Expected<uint64_t> Beat =
      envUnsignedChecked("DYNACE_SERVE_HEARTBEAT_MS", C.HeartbeatMs, 0, 60000);
  if (!Beat.ok())
    return Beat.status();
  C.HeartbeatMs = Beat.get();

  Expected<uint64_t> Respawns =
      envUnsignedChecked("DYNACE_SERVE_MAX_RESPAWNS", C.MaxRespawns, 0, 1024);
  if (!Respawns.ok())
    return Respawns.status();
  C.MaxRespawns = Respawns.get();

  Expected<uint64_t> Dispatches =
      envUnsignedChecked("DYNACE_SERVE_MAX_RETRIES", C.MaxDispatches, 1, 64);
  if (!Dispatches.ok())
    return Dispatches.status();
  C.MaxDispatches = Dispatches.get();

  C.JournalPath = envString("DYNACE_SERVE_JOURNAL");
  return C;
}

std::vector<CellSpec> dynace::serve::gridForBenchmarks(
    const std::vector<std::string> &Benchmarks) {
  std::vector<CellSpec> Cells;
  Cells.reserve(Benchmarks.size() * 3);
  for (const std::string &B : Benchmarks)
    for (Scheme S : {Scheme::Baseline, Scheme::Bbv, Scheme::Hotspot})
      Cells.push_back(CellSpec{B, S});
  return Cells;
}

Expected<std::vector<BenchmarkRun>> dynace::serve::assembleBenchmarkRuns(
    const std::vector<CellSpec> &Cells, const std::vector<GridCell> &Results) {
  if (Cells.size() != Results.size() || Cells.size() % 3 != 0)
    return Status::error(ErrorCode::InvalidInput,
                         "grid is not a profile-major (benchmark x scheme) "
                         "grid of triples");
  std::vector<BenchmarkRun> Runs;
  for (size_t I = 0; I < Cells.size(); I += 3) {
    constexpr Scheme Order[3] = {Scheme::Baseline, Scheme::Bbv,
                                 Scheme::Hotspot};
    BenchmarkRun Run;
    Run.Name = Cells[I].Benchmark;
    for (size_t J = 0; J != 3; ++J) {
      const CellSpec &Spec = Cells[I + J];
      if (Spec.Benchmark != Run.Name || Spec.SchemeKind != Order[J])
        return Status::error(ErrorCode::InvalidInput,
                             "cell " + std::to_string(I + J) +
                                 " breaks profile-major grid order");
      const GridCell &Cell = Results[I + J];
      switch (Order[J]) {
      case Scheme::Baseline:
        Run.Baseline = Cell.Result;
        Run.BaselineOutcome = Cell.Outcome;
        break;
      case Scheme::Bbv:
        Run.Bbv = Cell.Result;
        Run.BbvOutcome = Cell.Outcome;
        break;
      case Scheme::Hotspot:
        Run.Hotspot = Cell.Result;
        Run.HotspotOutcome = Cell.Outcome;
        break;
      }
    }
    Runs.push_back(std::move(Run));
  }
  return Runs;
}

namespace {

constexpr uint64_t kNoCell = ~0ull;

using Clock = std::chrono::steady_clock;

/// One worker slot: process + socket + handler thread. Mutable fields are
/// guarded by GridRun::M (not annotatable from here: the mutex lives in
/// the owning GridRun); SendM alone orders frames on Fd.
struct WorkerSlot {
  unsigned Index = 0;
  uint64_t WorkerId = 0;
  pid_t Pid = -1;
  int Fd = -1;
  std::thread Handler;
  Mutex SendM;            ///< Serializes sendFrame on Fd (handler vs main).
  bool Live = false;      ///< Worker believed alive, handler running.
  uint64_t LeasedCell = kNoCell;
  bool LeaseRequeued = false; ///< This lease already expired and re-queued.
  Clock::time_point LeaseDeadline;
  Clock::time_point LeaseStart; ///< When the current lease was dispatched.
  Clock::time_point LastSeen;
  uint64_t CellsDone = 0; ///< Results this worker landed (first-wins only).
  /// Microseconds to add to this worker's span timestamps to land them on
  /// the coordinator's trace clock: (worker epoch - coordinator epoch).
  /// ~0 for fork()ed workers, which inherit the epoch; the Hello exchange
  /// is what keeps future remote workers mergeable.
  double ClockOffsetUs = 0.0;
};

/// A worker's span buffer for one cell, parked by the handler thread for
/// the runGrid thread to merge into the trace (fork discipline: handler
/// threads never touch the TraceCollector's registry lock).
struct SpanBatch {
  uint64_t WorkerId = 0;
  double OffsetUs = 0.0; ///< The worker's ClockOffsetUs at receive time.
  std::vector<WireSpan> Spans;
  uint32_t Dropped = 0; ///< Worker-side cap casualties.
};

/// A coordinator-side "serve" timeline event recorded by a handler thread
/// and emitted later from the runGrid thread (same fork discipline).
struct DeferredLease {
  double TsUs = 0.0;
  double DurUs = 0.0;
  uint64_t WorkerId = 0;
  uint64_t Cell = 0;
  uint32_t Attempt = 0;
};

/// All state of one in-flight grid. Handler threads and the runGrid
/// thread rendezvous on M/Cv; fork() happens only on the runGrid thread.
struct GridRun {
  ServeConfig Cfg;
  SimulationOptions Base;
  std::vector<CellSpec> Specs;
  std::vector<std::string> ExpectedKeys; ///< Content address per cell.
  uint64_t GridId = 0;     ///< Trace correlation id (set before threads).
  int64_t CoordEpochNs = 0; ///< Coordinator trace epoch (set before threads).

  Mutex M;
  std::condition_variable_any Cv;

  std::vector<bool> Done GUARDED_BY(M);
  std::vector<GridCell> Results GUARDED_BY(M);
  std::deque<size_t> Pending GUARDED_BY(M); ///< Dispatchable to workers.
  std::deque<size_t> InlineOnly GUARDED_BY(M); ///< Dispatch-capped cells.
  std::vector<uint32_t> Dispatches GUARDED_BY(M);
  size_t DoneCount GUARDED_BY(M) = 0;
  GridStats Stats GUARDED_BY(M);
  std::vector<std::unique_ptr<WorkerSlot>> Slots GUARDED_BY(M);
  unsigned LiveWorkers GUARDED_BY(M) = 0;
  uint64_t NextWorkerId GUARDED_BY(M) = 1;
  std::deque<unsigned> DeadSlots GUARDED_BY(M); ///< Awaiting reap/respawn.
  bool Stop GUARDED_BY(M) = false;

  /// Observability freight parked for the runGrid thread.
  std::vector<SpanBatch> SpanBatches GUARDED_BY(M);
  std::vector<DeferredLease> DeferredLeases GUARDED_BY(M);
  MetricsSnapshot FleetDelta GUARDED_BY(M); ///< Folded worker deltas.
  uint64_t WorkerDroppedSpans GUARDED_BY(M) = 0;

  /// Fleet latency/depth instruments (internally atomic; recorded under M
  /// anyway, folded into the process registry once at grid end).
  Histogram LeaseLatencyMs;
  Histogram HeartbeatGapMs;
  Histogram QueueDepth;
};

/// The stats plane's view of the coordinator: at most one grid is ever
/// in flight per process — the daemon serves clients sequentially — and
/// the listener thread reads it through this registration. Lock order:
/// StatsRegM before GridRun::M, everywhere.
Mutex StatsRegM;
GridRun *ActiveRun GUARDED_BY(StatsRegM) = nullptr;
StatsReplyMsg LastGridStats GUARDED_BY(StatsRegM);
uint64_t GridsServed GUARDED_BY(StatsRegM) = 0;

/// Millisecond count of \p D, clamped at zero.
template <class Dur> uint64_t toMs(Dur D) {
  auto Ms = std::chrono::duration_cast<std::chrono::milliseconds>(D).count();
  return Ms < 0 ? 0 : static_cast<uint64_t>(Ms);
}

/// \p T as microseconds on the coordinator's trace clock.
double traceUs(const GridRun &Run, Clock::time_point T) {
  int64_t Ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                   T.time_since_epoch())
                   .count();
  return static_cast<double>(Ns - Run.CoordEpochNs) / 1000.0;
}

/// Builds the CellOutcome a CellResultMsg describes.
CellOutcome outcomeOf(const CellResultMsg &M) {
  CellOutcome O;
  O.Failed = M.Failed;
  O.Code = static_cast<ErrorCode>(M.Code);
  O.Reason = M.Reason;
  O.Attempts = M.Attempts;
  O.CacheHit = M.CacheHit;
  O.Quarantined = M.Quarantined;
  return O;
}

/// Validates and adopts one terminal cell record (wire or journal or
/// inline — one zero-trust path for all three).
///
/// \param FromJournal true during replay: counts ReplayedCells and never
///        re-appends to the journal.
/// \returns ok (including the benign already-done duplicate case), or
///          InvalidInput when the record is malformed/mismatched — the
///          caller treats the source as corrupt.
Status commitLocked(GridRun &Run, const CellResultMsg &Msg, bool FromJournal)
    REQUIRES(Run.M) {
  size_t N = Run.Specs.size();
  if (Msg.CellIndex >= N)
    return Status::error(ErrorCode::InvalidInput,
                         "cell index " + std::to_string(Msg.CellIndex) +
                             " out of range");
  size_t I = static_cast<size_t>(Msg.CellIndex);
  const CellSpec &Spec = Run.Specs[I];
  if (Msg.Cell.Benchmark != Spec.Benchmark ||
      Msg.Cell.SchemeKind != Spec.SchemeKind)
    return Status::error(ErrorCode::InvalidInput,
                         "cell " + std::to_string(I) +
                             " spec mismatch: got (" + Msg.Cell.Benchmark +
                             ", " + schemeName(Msg.Cell.SchemeKind) + ")");
  // Content-address check: first-completed-wins is only safe because any
  // two honest executions of one cell share a cache key and, being
  // deterministic, the exact result bytes. A failed cell may carry an
  // empty key (unknown benchmark never reaches key derivation).
  if (!(Msg.CacheKey == Run.ExpectedKeys[I] ||
        (Msg.Failed && Msg.CacheKey.empty())))
    return Status::error(ErrorCode::InvalidInput,
                         "cell " + std::to_string(I) +
                             " cache-key mismatch (stale config?)");
  if (Run.Done[I]) {
    if (!FromJournal)
      Run.Stats.DuplicateResults++;
    return Status();
  }
  Expected<SimulationResult> R = parseResultText(Msg.ResultText);
  if (!R.ok())
    return Status::error(ErrorCode::InvalidInput,
                         "cell " + std::to_string(I) +
                             " result rejected: " + R.status().toString());

  Run.Results[I].Result = R.take();
  Run.Results[I].Outcome = outcomeOf(Msg);
  Run.Results[I].CacheKey = Msg.CacheKey;
  Run.Done[I] = true;
  Run.DoneCount++;
  if (Msg.Failed)
    Run.Stats.FailedCells++;
  if (Msg.Quarantined != 0)
    Run.Stats.QuarantinedCells++;
  if (FromJournal) {
    Run.Stats.ReplayedCells++;
  } else if (!Run.Cfg.JournalPath.empty()) {
    // Journal before anyone can observe the cell as done. Held-lock fsync
    // is deliberate: it keeps "done" strictly behind "durable", and grid
    // commit rates are far below fsync rates. Telemetry (spans, metrics
    // delta) is stripped first: it is per-execution freight, and a replay
    // re-merging stale telemetry would double count the fleet registry.
    CellResultMsg Record = Msg;
    Record.Spans.clear();
    Record.DroppedSpans = 0;
    Record.MetricsDelta = MetricsSnapshot();
    Expected<uint64_t> Appended =
        journalAppend(Run.Cfg.JournalPath, Record);
    if (!Appended.ok())
      std::fprintf(stderr, "[dynace-serve] journal append failed: %s\n",
                   Appended.status().toString().c_str());
    else
      Run.Stats.JournalBytes += Appended.get();
  }
  Run.Cv.notify_all();
  return Status();
}

/// Hands the next dispatchable pending cell to \p Slot (no-op when it
/// already holds a lease or nothing is pending). Dispatch-capped cells
/// divert to the inline queue. Send failure marks nothing — the caller's
/// transport error handling owns the slot's fate; the cell is re-queued.
void assignNextLocked(GridRun &Run, WorkerSlot &Slot) REQUIRES(Run.M) {
  if (!Slot.Live || Slot.LeasedCell != kNoCell)
    return;
  while (!Run.Pending.empty()) {
    size_t I = Run.Pending.front();
    Run.QueueDepth.record(Run.Pending.size());
    Run.Pending.pop_front();
    if (Run.Done[I])
      continue;
    if (Run.Dispatches[I] >= Run.Cfg.MaxDispatches) {
      Run.InlineOnly.push_back(I);
      Run.Cv.notify_all();
      continue;
    }
    CellAssignMsg Assign;
    Assign.CellIndex = I;
    Assign.Cell = Run.Specs[I];
    Assign.GridId = Run.GridId;
    Assign.Attempt = Run.Dispatches[I] + 1;
    Run.Dispatches[I]++;
    Run.Stats.WorkerDispatches++;
    Slot.LeasedCell = I;
    Slot.LeaseRequeued = false;
    Slot.LeaseStart = Clock::now();
    Slot.LeaseDeadline =
        Clock::now() + std::chrono::milliseconds(Run.Cfg.LeaseMs);
    Status Sent;
    {
      MutexLock SL(Slot.SendM);
      Sent = sendFrame(Slot.Fd, FrameType::CellAssign,
                       encodeCellAssign(Assign));
    }
    if (!Sent.ok()) {
      // The worker never saw the lease; give the cell back immediately.
      // The slot stays Live — if the transport is truly gone the handler
      // will find out on its next receive.
      Slot.LeasedCell = kNoCell;
      Run.Pending.push_back(I);
      return;
    }
    return;
  }
}

/// Marks \p Slot dead: re-queues its lease and schedules it for reaping
/// (and possible respawn) by the runGrid thread.
void markDeadLocked(GridRun &Run, WorkerSlot &Slot) REQUIRES(Run.M) {
  if (!Slot.Live)
    return;
  Slot.Live = false;
  Run.LiveWorkers--;
  if (Slot.LeasedCell != kNoCell && !Run.Done[Slot.LeasedCell] &&
      !Slot.LeaseRequeued)
    Run.Pending.push_back(Slot.LeasedCell);
  Slot.LeasedCell = kNoCell;
  // During shutdown every handler exits through here; those deaths are
  // orchestrated, not failures — the post-loop reap owns them.
  if (!Run.Stop)
    Run.DeadSlots.push_back(Slot.Index);
  Run.Cv.notify_all();
}

/// Per-worker receive loop. Touches no singleton locks in steady state
/// (see the fork discipline in Coordinator.h).
void handlerLoop(GridRun &Run, WorkerSlot &Slot) {
  uint64_t SilenceMs = Run.Cfg.silenceMs();
  for (;;) {
    Expected<Frame> F = recvFrame(Slot.Fd, 100);
    MutexLock L(Run.M);
    if (Run.Stop || !Slot.Live) {
      markDeadLocked(Run, Slot);
      return;
    }
    if (!F.ok()) {
      if (F.status().code() == ErrorCode::Timeout) {
        // No traffic. Heartbeat silence beyond the threshold means the
        // worker is gone or wedged; either way its lease must move on.
        if (SilenceMs != 0 &&
            Clock::now() - Slot.LastSeen >
                std::chrono::milliseconds(SilenceMs)) {
          markDeadLocked(Run, Slot);
          return;
        }
        continue;
      }
      // EOF, injected drop, corrupt frame, I/O error: the stream is dead
      // or untrustworthy. Same verdict for all of them.
      markDeadLocked(Run, Slot);
      return;
    }
    Clock::time_point Now = Clock::now();
    Frame Msg = F.take();
    switch (Msg.Type) {
    case FrameType::Hello: {
      Expected<HelloMsg> Hello = decodeHello(Msg.Payload);
      if (!Hello.ok()) {
        markDeadLocked(Run, Slot); // A worker that garbles its own
        return;                    // introduction is not trustworthy.
      }
      // Clock alignment: the worker's spans are stamped on *its* trace
      // clock; this offset re-bases them onto the coordinator's. (~0 for
      // fork()ed workers — they inherit the epoch.)
      Slot.ClockOffsetUs =
          static_cast<double>(
              static_cast<int64_t>(Hello.get().TraceEpochNs) -
              Run.CoordEpochNs) /
          1000.0;
      Slot.LastSeen = Now;
      assignNextLocked(Run, Slot);
      break;
    }
    case FrameType::Heartbeat:
      Run.HeartbeatGapMs.record(toMs(Now - Slot.LastSeen));
      Slot.LastSeen = Now;
      break;
    case FrameType::CellResult: {
      Expected<CellResultMsg> Result = decodeCellResult(Msg.Payload);
      Slot.LastSeen = Now;
      if (!Result.ok()) {
        markDeadLocked(Run, Slot);
        return;
      }
      CellResultMsg R = Result.take();
      if (!commitLocked(Run, R, /*FromJournal=*/false).ok()) {
        markDeadLocked(Run, Slot);
        return;
      }
      // Fleet telemetry folds in even for a dropped duplicate: the
      // straggler's work was real, and its spans belong on the timeline
      // (the (cell, attempt) stamps keep the two executions apart).
      Run.FleetDelta.merge(R.MetricsDelta);
      Run.WorkerDroppedSpans += R.DroppedSpans;
      if (obs::traceEnabled() && (!R.Spans.empty() || R.DroppedSpans != 0))
        Run.SpanBatches.push_back(SpanBatch{Slot.WorkerId, Slot.ClockOffsetUs,
                                            std::move(R.Spans),
                                            R.DroppedSpans});
      if (Slot.LeasedCell == R.CellIndex) {
        Run.LeaseLatencyMs.record(toMs(Now - Slot.LeaseStart));
        Slot.CellsDone++;
        if (obs::traceEnabled()) {
          DeferredLease D;
          D.TsUs = traceUs(Run, Slot.LeaseStart);
          D.DurUs = traceUs(Run, Now) - D.TsUs;
          D.WorkerId = Slot.WorkerId;
          D.Cell = R.CellIndex;
          D.Attempt = R.DispatchAttempt;
          Run.DeferredLeases.push_back(D);
        }
        Slot.LeasedCell = kNoCell;
        Slot.LeaseRequeued = false;
      }
      assignNextLocked(Run, Slot);
      break;
    }
    default:
      markDeadLocked(Run, Slot); // Workers never send anything else.
      return;
    }
  }
}

/// Merges parked observability freight into the trace — runGrid thread
/// only (the TraceCollector's registry lock must never be held by a
/// thread that could race fork()). \p NamedWorkers dedupes track naming.
void emitParkedTelemetry(std::vector<SpanBatch> Batches,
                         std::vector<DeferredLease> Leases,
                         std::set<uint64_t> &NamedWorkers) {
  if (!obs::traceEnabled())
    return;
  auto &TC = obs::TraceCollector::instance();
  for (SpanBatch &B : Batches) {
    uint32_t Tid = 1000 + static_cast<uint32_t>(B.WorkerId);
    if (NamedWorkers.insert(B.WorkerId).second)
      TC.nameTrack(Tid, "worker " + std::to_string(B.WorkerId));
    for (WireSpan &S : B.Spans) {
      obs::TraceEvent E;
      E.Cat = obs::internTraceString(S.Cat);
      E.Name = obs::internTraceString(S.Name);
      E.TsUs = S.TsUs + B.OffsetUs;
      E.DurUs = S.DurUs;
      E.Tid = Tid;
      E.Args = std::move(S.Args);
      TC.emitForeign(std::move(E));
    }
  }
  for (const DeferredLease &D : Leases) {
    obs::TraceEvent E;
    E.Cat = "serve";
    E.Name = "lease";
    E.TsUs = D.TsUs;
    E.DurUs = D.DurUs;
    E.Tid = 1000 + static_cast<uint32_t>(D.WorkerId);
    E.Args = obs::traceArg("cell", D.Cell) + ", " +
             obs::traceArg("attempt", static_cast<uint64_t>(D.Attempt)) +
             ", " + obs::traceArg("worker", D.WorkerId);
    TC.emitForeign(std::move(E));
  }
}

/// Forks a worker into \p Slot and starts its handler thread. runGrid
/// thread only.
/// \returns true on success.
bool spawnWorker(GridRun &Run, WorkerSlot &Slot) EXCLUDES(Run.M) {
  int Sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, Sv) != 0)
    return false;

  // Snapshot sibling fds before forking so the child can drop them: a
  // child holding another worker's socket would defeat EOF-based death
  // detection for that worker.
  std::vector<int> CloseFds = Run.Cfg.CloseInChild;
  uint64_t WorkerId;
  {
    MutexLock L(Run.M);
    WorkerId = Run.NextWorkerId++;
    for (const auto &S : Run.Slots)
      if (S.get() != &Slot && S->Fd >= 0)
        CloseFds.push_back(S->Fd);
  }

  pid_t Pid = ::fork();
  if (Pid < 0) {
    ::close(Sv[0]);
    ::close(Sv[1]);
    return false;
  }
  if (Pid == 0) {
    ::close(Sv[0]);
    for (int Fd : CloseFds)
      ::close(Fd);
    serveWorkerMain(Sv[1], WorkerId, Run.Cfg.HeartbeatMs, Run.Base);
    // serveWorkerMain never returns.
  }
  ::close(Sv[1]);

  MutexLock L(Run.M);
  Slot.WorkerId = WorkerId;
  Slot.Pid = Pid;
  Slot.Fd = Sv[0];
  Slot.Live = true;
  Slot.LeasedCell = kNoCell;
  Slot.LeaseRequeued = false;
  Slot.LastSeen = Clock::now();
  Run.LiveWorkers++;
  Slot.Handler = std::thread(handlerLoop, std::ref(Run), std::ref(Slot));
  return true;
}

/// Reaps \p Slot's dead worker process and closes its socket. runGrid
/// thread only; the handler thread must already be joined.
/// \returns true when the worker did NOT exit cleanly (a crash).
bool reapWorker(WorkerSlot &Slot) {
  bool Crashed = false;
  if (Slot.Pid > 0) {
    ::kill(Slot.Pid, SIGKILL); // Idempotent; usually already dead.
    int WStatus = 0;
    if (::waitpid(Slot.Pid, &WStatus, 0) == Slot.Pid)
      Crashed = !(WIFEXITED(WStatus) &&
                  WEXITSTATUS(WStatus) == kWorkerExitClean);
    Slot.Pid = -1;
  }
  if (Slot.Fd >= 0) {
    ::close(Slot.Fd);
    Slot.Fd = -1;
  }
  return Crashed;
}

/// Validates the grid and precomputes content-address keys.
Status prepareGrid(GridRun &Run) {
  std::set<std::pair<std::string, uint8_t>> Seen;
  for (const CellSpec &C : Run.Specs) {
    if (C.Benchmark.empty())
      return Status::error(ErrorCode::InvalidInput,
                           "grid contains an empty benchmark name");
    if (!Seen.insert({C.Benchmark, static_cast<uint8_t>(C.SchemeKind)})
             .second)
      return Status::error(ErrorCode::InvalidInput,
                           "duplicate grid cell (" + C.Benchmark + ", " +
                               schemeName(C.SchemeKind) + ")");
  }
  Run.ExpectedKeys.reserve(Run.Specs.size());
  for (const CellSpec &C : Run.Specs) {
    SimulationOptions Opts = Run.Base;
    Opts.SchemeKind = C.SchemeKind;
    Run.ExpectedKeys.push_back(resultCacheKey(C.Benchmark, Opts));
  }
  // Pre-generate every known workload once: the memo (cachedWorkload) is
  // inherited copy-on-write by forked workers, so no worker re-generates
  // programs — and generation happens before any thread exists that could
  // hold the memo lock across a fork.
  std::set<std::string> Generated;
  for (const CellSpec &C : Run.Specs)
    if (Generated.insert(C.Benchmark).second)
      if (const WorkloadProfile *P = findProfile(C.Benchmark))
        cachedWorkload(*P);
  return Status();
}

/// Replays the journal into the grid (runGrid thread, before workers).
Status replayJournalLocked(GridRun &Run) REQUIRES(Run.M) {
  if (Run.Cfg.JournalPath.empty())
    return Status();
  Expected<JournalReplay> Replay = journalReplay(Run.Cfg.JournalPath);
  if (!Replay.ok())
    return Replay.status();
  Run.Stats.JournalTailDropBytes = Replay.get().DroppedTailBytes;
  for (const CellResultMsg &Rec : Replay.get().Records) {
    // Records that do not match this grid (other run, other config, or a
    // corrupt-but-checksummed body) are skipped, not fatal: the journal
    // resumes what it can and the rest re-runs.
    (void)commitLocked(Run, Rec, /*FromJournal=*/true);
  }
  return Status();
}

} // namespace

Expected<GridResult> dynace::serve::runGrid(const ServeConfig &Config,
                                            const SimulationOptions &Base,
                                            const std::vector<CellSpec> &Cells,
                                            const CellSink &Sink) {
  GridRun Run;
  Run.Cfg = Config;
  Run.Base = Base;
  Run.Specs = Cells;
  if (Status S = prepareGrid(Run); !S)
    return S;

  // Trace correlation identity: workers echo the grid id on every span,
  // so one daemon's timeline keeps consecutive grids apart. Uniqueness per
  // process suffices (and pid-tagging keeps restarted daemons apart too);
  // the id is telemetry, never part of any cached or golden artifact.
  static std::atomic<uint64_t> GridSeq{0};
  Run.GridId = (static_cast<uint64_t>(::getpid()) << 32) |
               (GridSeq.fetch_add(1, std::memory_order_relaxed) + 1);
  Run.CoordEpochNs = obs::TraceCollector::instance().epochNs();

  size_t N = Cells.size();
  DYNACE_TRACE_SCOPE("serve", "grid",
                     obs::traceArg("cells", static_cast<uint64_t>(N)) +
                         ", " + obs::traceArg("grid", Run.GridId));
  size_t NextStream = 0;
  {
    MutexLock L(Run.M);
    Run.Done.assign(N, false);
    Run.Results.assign(N, GridCell());
    Run.Dispatches.assign(N, 0);
    Run.Stats.Cells = N;
    if (Status S = replayJournalLocked(Run); !S)
      return S;
    for (size_t I = 0; I != N; ++I)
      if (!Run.Done[I])
        Run.Pending.push_back(I);
  }

  // Publish to the stats plane (dynace-top polls through this). From here
  // to the matching unpublish there are no early returns.
  {
    MutexLock SL(StatsRegM);
    ActiveRun = &Run;
  }
  std::set<uint64_t> NamedWorkers; ///< Trace tracks already labelled.

  // Spawn the initial fleet (never more workers than open cells).
  size_t Open;
  {
    MutexLock L(Run.M);
    Open = N - Run.DoneCount;
    if (Run.Stats.ReplayedCells != 0)
      DYNACE_TRACE_INSTANT("serve", "journal.replay",
                           obs::traceArg("cells", Run.Stats.ReplayedCells));
  }
  unsigned Fleet =
      static_cast<unsigned>(std::min<uint64_t>(Config.Workers, Open));
  for (unsigned I = 0; I != Fleet; ++I) {
    auto Slot = std::make_unique<WorkerSlot>();
    Slot->Index = I;
    {
      MutexLock L(Run.M);
      Run.Slots.push_back(std::move(Slot));
    }
    WorkerSlot *S;
    {
      MutexLock L(Run.M);
      S = Run.Slots.back().get();
    }
    spawnWorker(Run, *S); // Failure: fewer workers; inline path covers.
  }

  // The coordination loop: stream results, reap/respawn dead workers,
  // expire leases, run fallback cells — until every cell is terminal.
  for (;;) {
    std::vector<std::pair<size_t, GridCell>> ToStream;
    unsigned RespawnSlot = ~0u;
    bool RespawnAllowed = false;
    size_t InlineCell = kNoCell;

    {
      MutexLock L(Run.M);
      while (NextStream < N && Run.Done[NextStream]) {
        ToStream.emplace_back(NextStream, Run.Results[NextStream]);
        NextStream++;
      }
      if (Run.DoneCount == N && Run.DeadSlots.empty()) {
        Run.Stop = true;
        Run.Cv.notify_all();
      } else if (!Run.DeadSlots.empty()) {
        RespawnSlot = Run.DeadSlots.front();
        Run.DeadSlots.pop_front();
        RespawnAllowed = !Run.Stop && Run.DoneCount < N &&
                         Run.Stats.Respawns < Run.Cfg.MaxRespawns;
        if (RespawnAllowed)
          Run.Stats.Respawns++;
      } else {
        // Fixed-deadline lease expiry: the straggler keeps computing, the
        // cell goes back in the queue for someone faster. First result in
        // wins; the duplicate is dropped at commit.
        for (auto &SlotPtr : Run.Slots) {
          WorkerSlot &Slot = *SlotPtr;
          if (Slot.Live && Slot.LeasedCell != kNoCell &&
              !Slot.LeaseRequeued && Clock::now() > Slot.LeaseDeadline &&
              !Run.Done[Slot.LeasedCell]) {
            Run.Pending.push_back(Slot.LeasedCell);
            Slot.LeaseRequeued = true;
            Run.Stats.Redispatches++;
            DYNACE_TRACE_INSTANT(
                "serve", "lease.redispatch",
                obs::traceArg("cell",
                              static_cast<uint64_t>(Slot.LeasedCell)));
          }
        }
        // Poke idle workers (a worker with no lease blocks in recv and
        // cannot notice a refilled queue on its own).
        for (auto &SlotPtr : Run.Slots)
          assignNextLocked(Run, *SlotPtr);

        // Inline fallback: dispatch-capped cells always; everything else
        // only once no worker can make progress.
        if (!Run.InlineOnly.empty()) {
          InlineCell = Run.InlineOnly.front();
          Run.InlineOnly.pop_front();
          if (Run.Done[InlineCell])
            InlineCell = kNoCell;
        }
        if (InlineCell == kNoCell && Run.LiveWorkers == 0 &&
            Run.DoneCount < N) {
          for (size_t I = 0; I != N; ++I)
            if (!Run.Done[I]) {
              InlineCell = I;
              break;
            }
        }
        if (InlineCell == kNoCell && Run.DoneCount < N)
          Run.Cv.wait_for(L, std::chrono::milliseconds(20));
      }
      if (Run.Stop && Run.DeadSlots.empty() && ToStream.empty() &&
          NextStream == N && Run.DoneCount == N)
        break;
    }

    for (auto &[Index, Cell] : ToStream)
      if (Sink)
        Sink(Index, Cell);

    if (RespawnSlot != ~0u) {
      WorkerSlot *Slot;
      {
        MutexLock L(Run.M);
        Slot = Run.Slots[RespawnSlot].get();
      }
      if (Slot->Handler.joinable())
        Slot->Handler.join();
      bool Crashed = reapWorker(*Slot);
      {
        MutexLock L(Run.M);
        if (Crashed)
          Run.Stats.WorkerCrashes++;
      }
      if (RespawnAllowed) {
        DYNACE_TRACE_INSTANT("serve", "worker.respawn",
                             obs::traceArg("slot",
                                           static_cast<uint64_t>(RespawnSlot)));
        if (!spawnWorker(Run, *Slot)) {
          MutexLock L(Run.M);
          Run.Stats.Respawns--; // The fork failed; refund the budget.
        }
      } else {
        MutexLock L(Run.M);
        if (!Run.Stop && Run.LiveWorkers == 0 && Run.DoneCount < N)
          DYNACE_TRACE_INSTANT("serve", "breaker.open");
      }
    }

    if (InlineCell != kNoCell) {
      CellAssignMsg Assign;
      Assign.CellIndex = InlineCell;
      {
        MutexLock L(Run.M);
        Assign.Cell = Run.Specs[InlineCell];
        Run.Stats.InlineCells++;
      }
      DYNACE_TRACE_INSTANT("serve", "inline.cell",
                           obs::traceArg("cell",
                                         static_cast<uint64_t>(InlineCell)));
      CellResultMsg Msg = runServeCell(Assign, Base);
      MutexLock L(Run.M);
      if (Status S = commitLocked(Run, Msg, /*FromJournal=*/false); !S)
        // An inline cell rejecting its own record means the grid config
        // itself is inconsistent; surface it as the cell's outcome.
        std::fprintf(stderr, "[dynace-serve] inline cell %zu rejected: %s\n",
                     InlineCell, S.toString().c_str());
    }

    // Merge this round's parked worker spans and lease events into the
    // trace — from this thread only (fork discipline), outside Run.M.
    {
      std::vector<SpanBatch> Batches;
      std::vector<DeferredLease> Leases;
      {
        MutexLock L(Run.M);
        Batches.swap(Run.SpanBatches);
        Leases.swap(Run.DeferredLeases);
      }
      emitParkedTelemetry(std::move(Batches), std::move(Leases),
                          NamedWorkers);
    }
  }

  // Shutdown: ask politely, then reap unconditionally.
  std::vector<WorkerSlot *> AllSlots;
  {
    MutexLock L(Run.M);
    Run.Stop = true;
    Run.Cv.notify_all();
    for (auto &SlotPtr : Run.Slots)
      AllSlots.push_back(SlotPtr.get());
  }
  for (WorkerSlot *Slot : AllSlots) {
    if (Slot->Fd >= 0) {
      MutexLock SL(Slot->SendM);
      (void)sendFrame(Slot->Fd, FrameType::Shutdown, "");
    }
  }
  for (WorkerSlot *Slot : AllSlots)
    if (Slot->Handler.joinable())
      Slot->Handler.join();
  // A worker SIGKILLed here while still chewing a superseded lease is not
  // a crash — every cell completed; mid-grid deaths were already tallied.
  for (WorkerSlot *Slot : AllSlots)
    (void)reapWorker(*Slot);

  GridResult Out;
  MetricsSnapshot FleetDelta;
  uint64_t DroppedSpans = 0;
  {
    MutexLock L(Run.M);
    Out.Cells = Run.Results;
    Out.Stats = Run.Stats;
    FleetDelta = std::move(Run.FleetDelta);
    DroppedSpans = Run.WorkerDroppedSpans;
  }

  // Final telemetry drain: every handler is joined, so nothing can park
  // more freight after this.
  {
    std::vector<SpanBatch> Batches;
    std::vector<DeferredLease> Leases;
    {
      MutexLock L(Run.M);
      Batches.swap(Run.SpanBatches);
      Leases.swap(Run.DeferredLeases);
    }
    emitParkedTelemetry(std::move(Batches), std::move(Leases), NamedWorkers);
  }

  // One-shot flush of the grid's accounting into the process registry —
  // from this thread only, after all forking is over (fork discipline).
  // The daemon's "grid done" line is renderServeSummary() over a delta of
  // exactly these serve.* counters, so the human text and the registry
  // cannot drift apart.
  auto &Reg = MetricsRegistry::process();
  Reg.counter("serve.grids").inc();
  Reg.counter("serve.cells.total").inc(Out.Stats.Cells);
  Reg.counter("serve.cells.replayed").inc(Out.Stats.ReplayedCells);
  Reg.counter("serve.cells.inline").inc(Out.Stats.InlineCells);
  Reg.counter("serve.cells.failed").inc(Out.Stats.FailedCells);
  Reg.counter("serve.cells.quarantined").inc(Out.Stats.QuarantinedCells);
  Reg.counter("serve.dispatches").inc(Out.Stats.WorkerDispatches);
  Reg.counter("serve.redispatches").inc(Out.Stats.Redispatches);
  Reg.counter("serve.duplicates.dropped").inc(Out.Stats.DuplicateResults);
  Reg.counter("serve.workers.crashed").inc(Out.Stats.WorkerCrashes);
  Reg.counter("serve.workers.respawned").inc(Out.Stats.Respawns);
  Reg.counter("serve.journal.bytes").inc(Out.Stats.JournalBytes);
  Reg.counter("serve.spans.dropped").inc(DroppedSpans);
  // Fleet roll-up: the workers' own per-cell registry deltas (cache
  // probes, runner retries...) plus the coordinator-side latency/depth
  // histograms. Worker deltas exclude state inherited across fork(), so
  // nothing here double counts the coordinator's own increments.
  Reg.merge(FleetDelta);
  MetricsSnapshot Hists;
  if (HistogramSnapshot H = Run.LeaseLatencyMs.snapshot(); H.Count != 0)
    Hists.Histograms["serve.lease.latency_ms"] = std::move(H);
  if (HistogramSnapshot H = Run.HeartbeatGapMs.snapshot(); H.Count != 0)
    Hists.Histograms["serve.heartbeat.gap_ms"] = std::move(H);
  if (HistogramSnapshot H = Run.QueueDepth.snapshot(); H.Count != 0)
    Hists.Histograms["serve.queue.depth"] = std::move(H);
  Reg.merge(Hists);

  // Unpublish from the stats plane; between grids the totals of this one
  // stay visible as the "last grid" snapshot.
  {
    MutexLock SL(StatsRegM);
    ActiveRun = nullptr;
    GridsServed++;
    StatsReplyMsg Last;
    Last.GridActive = false;
    Last.GridsServed = GridsServed;
    Last.GridId = Run.GridId;
    Last.Cells = Out.Stats.Cells;
    Last.DoneCells = Out.Stats.Cells;
    Last.FailedCells = Out.Stats.FailedCells;
    Last.ReplayedCells = Out.Stats.ReplayedCells;
    Last.InlineCells = Out.Stats.InlineCells;
    Last.Dispatches = Out.Stats.WorkerDispatches;
    Last.Redispatches = Out.Stats.Redispatches;
    Last.DuplicateResults = Out.Stats.DuplicateResults;
    Last.WorkerCrashes = Out.Stats.WorkerCrashes;
    Last.Respawns = Out.Stats.Respawns;
    Last.QuarantinedCells = Out.Stats.QuarantinedCells;
    Last.JournalBytes = Out.Stats.JournalBytes;
    LastGridStats = std::move(Last);
  }
  return Out;
}

StatsReplyMsg dynace::serve::currentServeStats() {
  MutexLock SL(StatsRegM);
  if (ActiveRun == nullptr) {
    StatsReplyMsg S = LastGridStats;
    S.GridsServed = GridsServed;
    return S;
  }
  GridRun &Run = *ActiveRun;
  StatsReplyMsg S;
  S.GridActive = true;
  S.GridsServed = GridsServed;
  Clock::time_point Now = Clock::now();
  MutexLock L(Run.M);
  S.GridId = Run.GridId;
  S.Cells = Run.Stats.Cells;
  S.DoneCells = Run.DoneCount;
  S.PendingCells = Run.Pending.size() + Run.InlineOnly.size();
  S.FailedCells = Run.Stats.FailedCells;
  S.ReplayedCells = Run.Stats.ReplayedCells;
  S.InlineCells = Run.Stats.InlineCells;
  S.Dispatches = Run.Stats.WorkerDispatches;
  S.Redispatches = Run.Stats.Redispatches;
  S.DuplicateResults = Run.Stats.DuplicateResults;
  S.WorkerCrashes = Run.Stats.WorkerCrashes;
  S.Respawns = Run.Stats.Respawns;
  S.QuarantinedCells = Run.Stats.QuarantinedCells;
  S.JournalBytes = Run.Stats.JournalBytes;
  for (const auto &SlotPtr : Run.Slots) {
    const WorkerSlot &W = *SlotPtr;
    if (W.WorkerId == 0)
      continue; // Never spawned.
    WorkerStatMsg WS;
    WS.WorkerId = W.WorkerId;
    WS.Pid = W.Pid > 0 ? static_cast<uint64_t>(W.Pid) : 0;
    WS.Live = W.Live;
    WS.CellsDone = W.CellsDone;
    WS.LastSeenMsAgo = toMs(Now - W.LastSeen);
    if (W.Live && W.LeasedCell != kNoCell) {
      S.InFlightLeases++;
      WS.LeasedCell = W.LeasedCell;
      WS.LeaseRemainingMs =
          W.LeaseDeadline > Now ? toMs(W.LeaseDeadline - Now) : 0;
    }
    S.Workers.push_back(WS);
  }
  return S;
}

std::string dynace::serve::renderServeStats(const StatsReplyMsg &S) {
  auto U = [](uint64_t V) { return std::to_string(V); };
  std::string Out;
  if (S.GridActive)
    Out += "grid " + U(S.GridId) + " active (grids served: " +
           U(S.GridsServed) + ")\n";
  else if (S.GridsServed != 0)
    Out += "idle; last grid " + U(S.GridId) + " (grids served: " +
           U(S.GridsServed) + ")\n";
  else
    return "idle (no grids served yet)\n";
  Out += "  cells: " + U(S.Cells) + " total, " + U(S.DoneCells) + " done, " +
         U(S.PendingCells) + " pending, " + U(S.InFlightLeases) +
         " in flight, " + U(S.FailedCells) + " failed (" +
         U(S.ReplayedCells) + " replayed, " + U(S.InlineCells) +
         " inline, " + U(S.QuarantinedCells) + " quarantined)\n";
  Out += "  dispatches: " + U(S.Dispatches) + " (" + U(S.Redispatches) +
         " re-dispatched, " + U(S.DuplicateResults) +
         " duplicates dropped), " + U(S.WorkerCrashes) + " crashes, " +
         U(S.Respawns) + " respawns, journal " + U(S.JournalBytes) +
         " bytes\n";
  for (const WorkerStatMsg &W : S.Workers) {
    Out += "  worker " + U(W.WorkerId) + " (pid " + U(W.Pid) + "): " +
           (W.Live ? "live" : "dead");
    if (W.Live && W.LeasedCell != WorkerStatMsg::kIdle)
      Out += ", cell " + U(W.LeasedCell) + " leased (" +
             U(W.LeaseRemainingMs) + " ms left)";
    else if (W.Live)
      Out += ", idle";
    Out += ", seen " + U(W.LastSeenMsAgo) + " ms ago, " + U(W.CellsDone) +
           " done\n";
  }
  return Out;
}

std::string dynace::serve::renderServeSummary(const MetricsSnapshot &Delta) {
  auto C = [&Delta](const char *Name) {
    return std::to_string(Delta.counterOr(Name));
  };
  return "grid done: " + C("serve.cells.total") + " cells (" +
         C("serve.cells.replayed") + " replayed, " +
         C("serve.cells.inline") + " inline, " + C("serve.cells.failed") +
         " failed), " + C("serve.dispatches") + " dispatches (" +
         C("serve.redispatches") + " re-dispatched, " +
         C("serve.duplicates.dropped") + " duplicates dropped), " +
         C("serve.workers.crashed") + " crashes, " +
         C("serve.workers.respawned") + " respawns";
}
