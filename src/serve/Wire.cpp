//===- serve/Wire.cpp -----------------------------------------------------==//

#include "serve/Wire.h"

#include "support/FaultInjector.h"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace dynace;
using namespace dynace::serve;

const char *dynace::serve::frameTypeName(FrameType T) {
  switch (T) {
  case FrameType::Hello:
    return "hello";
  case FrameType::GridRequest:
    return "grid-request";
  case FrameType::CellAssign:
    return "cell-assign";
  case FrameType::CellResult:
    return "cell-result";
  case FrameType::Heartbeat:
    return "heartbeat";
  case FrameType::Shutdown:
    return "shutdown";
  case FrameType::Done:
    return "done";
  case FrameType::Error:
    return "error";
  case FrameType::StatsRequest:
    return "stats-request";
  case FrameType::StatsReply:
    return "stats-reply";
  }
  return "?";
}

uint64_t dynace::serve::fnv1a64(const void *Data, size_t Size, uint64_t Seed) {
  uint64_t H = Seed;
  const auto *P = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I != Size; ++I) {
    H ^= P[I];
    H *= 1099511628211ull;
  }
  return H;
}

namespace {

constexpr char kMagic[4] = {'D', 'Y', 'N', 'W'};

void putU32(std::string &Out, uint32_t V) {
  for (unsigned I = 0; I != 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putU64(std::string &Out, uint64_t V) {
  for (unsigned I = 0; I != 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

uint32_t getU32(const unsigned char *P) {
  uint32_t V = 0;
  for (unsigned I = 0; I != 4; ++I)
    V |= static_cast<uint32_t>(P[I]) << (8 * I);
  return V;
}

uint64_t getU64(const unsigned char *P) {
  uint64_t V = 0;
  for (unsigned I = 0; I != 8; ++I)
    V |= static_cast<uint64_t>(P[I]) << (8 * I);
  return V;
}

/// Checksum covering the type byte and the payload: a frame whose type
/// byte is flipped must fail the checksum, not execute as another message.
uint64_t frameChecksum(FrameType Type, const std::string &Payload) {
  unsigned char T = static_cast<unsigned char>(Type);
  uint64_t H = fnv1a64(&T, 1);
  return fnv1a64(Payload.data(), Payload.size(), H);
}

bool knownFrameType(uint8_t T) {
  return T >= static_cast<uint8_t>(FrameType::Hello) &&
         T <= static_cast<uint8_t>(FrameType::StatsReply);
}

} // namespace

std::string dynace::serve::encodeFrame(FrameType Type,
                                       const std::string &Payload) {
  if (Payload.size() > kMaxFramePayload)
    fatalError("serve frame payload exceeds kMaxFramePayload",
               Status::error(ErrorCode::InvalidInput,
                             std::to_string(Payload.size()) + " bytes"));
  std::string Out;
  Out.reserve(kFrameHeaderSize + Payload.size());
  Out.append(kMagic, sizeof(kMagic));
  Out.push_back(static_cast<char>(kWireVersion));
  Out.push_back(static_cast<char>(Type));
  putU32(Out, static_cast<uint32_t>(Payload.size()));
  putU64(Out, frameChecksum(Type, Payload));
  Out += Payload;
  return Out;
}

Expected<Frame> dynace::serve::decodeFrame(const std::string &Bytes,
                                           size_t &Consumed) {
  Consumed = 0;
  const auto *P = reinterpret_cast<const unsigned char *>(Bytes.data());
  // Reject a wrong magic as soon as the prefix diverges — a stream that
  // does not open with "DYNW" is not a short frame, it is garbage.
  size_t MagicLen = Bytes.size() < sizeof(kMagic) ? Bytes.size()
                                                  : sizeof(kMagic);
  if (std::memcmp(Bytes.data(), kMagic, MagicLen) != 0)
    return Status::error(ErrorCode::InvalidInput, "bad frame magic");
  if (Bytes.size() < kFrameHeaderSize)
    return Status::error(ErrorCode::IoError, "incomplete frame header");
  if (P[4] != kWireVersion)
    return Status::error(ErrorCode::InvalidInput,
                         "wire version " + std::to_string(P[4]) +
                             ", want " + std::to_string(kWireVersion));
  if (!knownFrameType(P[5]))
    return Status::error(ErrorCode::InvalidInput,
                         "unknown frame type " + std::to_string(P[5]));
  uint32_t Len = getU32(P + 6);
  if (Len > kMaxFramePayload)
    return Status::error(ErrorCode::InvalidInput,
                         "frame payload length " + std::to_string(Len) +
                             " exceeds cap");
  uint64_t WantSum = getU64(P + 10);
  if (Bytes.size() < kFrameHeaderSize + Len)
    return Status::error(ErrorCode::IoError, "incomplete frame payload");

  Frame F;
  F.Type = static_cast<FrameType>(P[5]);
  F.Payload.assign(Bytes, kFrameHeaderSize, Len);
  if (frameChecksum(F.Type, F.Payload) != WantSum)
    return Status::error(ErrorCode::InvalidInput,
                         std::string("frame checksum mismatch (type ") +
                             frameTypeName(F.Type) + ")");
  Consumed = kFrameHeaderSize + Len;
  return F;
}

namespace {

Status mapSendErrno(int E) {
  if (E == EPIPE || E == ECONNRESET || E == ENOTCONN)
    return Status::error(ErrorCode::Unavailable,
                         std::string("peer gone: ") + std::strerror(E));
  return Status::error(ErrorCode::IoError,
                       std::string("send failed: ") + std::strerror(E));
}

} // namespace

Status dynace::serve::sendFrame(int Fd, FrameType Type,
                                const std::string &Payload) {
  if (FaultInjector::instance().shouldFail(FaultSite::RpcSend))
    return FaultInjector::makeError(FaultSite::RpcSend);
  std::string Bytes = encodeFrame(Type, Payload);
  size_t Off = 0;
  while (Off < Bytes.size()) {
    ssize_t N = ::send(Fd, Bytes.data() + Off, Bytes.size() - Off,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return mapSendErrno(errno);
    }
    Off += static_cast<size_t>(N);
  }
  return Status();
}

Expected<Frame> dynace::serve::recvFrame(int Fd, int TimeoutMs) {
  if (FaultInjector::instance().shouldFail(FaultSite::RpcRecv))
    return FaultInjector::makeError(FaultSite::RpcRecv);

  std::string Buf;
  bool FirstByte = true;
  for (;;) {
    size_t Consumed = 0;
    Expected<Frame> F = decodeFrame(Buf, Consumed);
    if (F.ok())
      return F;
    if (F.status().code() != ErrorCode::IoError)
      return F.status(); // Corrupt beyond repair; more bytes cannot help.

    if (FirstByte && TimeoutMs >= 0) {
      struct pollfd P = {Fd, POLLIN, 0};
      int R;
      do {
        R = ::poll(&P, 1, TimeoutMs);
      } while (R < 0 && errno == EINTR);
      if (R == 0)
        return Status::error(ErrorCode::Timeout,
                             "no frame within " +
                                 std::to_string(TimeoutMs) + " ms");
      if (R < 0)
        return Status::error(ErrorCode::IoError,
                             std::string("poll failed: ") +
                                 std::strerror(errno));
    }

    // Read ONLY up to this frame's end, never past it: callers share the
    // socket across recvFrame() calls with no buffer between them, so a
    // byte of the next frame pulled here would be lost on return. Until
    // the header is complete the frame length is unknown and reads stay
    // within the header; after that the remainder is exact. (decodeFrame
    // rejects oversized lengths from a bare header, so Need is bounded.)
    size_t Need;
    if (Buf.size() < kFrameHeaderSize) {
      Need = kFrameHeaderSize - Buf.size();
    } else {
      uint32_t Len = 0;
      for (unsigned I = 0; I != 4; ++I)
        Len |= static_cast<uint32_t>(
                   static_cast<unsigned char>(Buf[6 + I]))
               << (8 * I);
      Need = kFrameHeaderSize + Len - Buf.size();
    }
    size_t Old = Buf.size();
    Buf.resize(Old + Need);
    ssize_t N = ::recv(Fd, &Buf[Old], Need, 0);
    Buf.resize(Old + (N > 0 ? static_cast<size_t>(N) : 0));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return Status::error(ErrorCode::IoError,
                           std::string("recv failed: ") +
                               std::strerror(errno));
    }
    if (N == 0)
      return Status::error(ErrorCode::Unavailable,
                           Buf.empty() ? "peer closed the connection"
                                       : "peer closed mid-frame");
    FirstByte = false;
  }
}
