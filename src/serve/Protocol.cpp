//===- serve/Protocol.cpp -------------------------------------------------==//

#include "serve/Protocol.h"

#include "serve/Wire.h"

using namespace dynace;
using namespace dynace::serve;

namespace {

/// Append-only little-endian payload builder.
class PayloadWriter {
public:
  void u8(uint8_t V) { Buf.push_back(static_cast<char>(V)); }
  void u32(uint32_t V) {
    for (unsigned I = 0; I != 4; ++I)
      Buf.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
  }
  void u64(uint64_t V) {
    for (unsigned I = 0; I != 8; ++I)
      Buf.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
  }
  void str(const std::string &S) {
    u32(static_cast<uint32_t>(S.size()));
    Buf += S;
  }
  std::string take() { return std::move(Buf); }

private:
  std::string Buf;
};

/// Bounds-checked reader; any overrun poisons the parse. finish() rejects
/// trailing bytes so a payload is consumed exactly or not at all.
class PayloadReader {
public:
  explicit PayloadReader(const std::string &Buf) : Buf(Buf) {}
  bool ok() const { return Ok; }

  uint8_t u8() {
    if (!need(1))
      return 0;
    return static_cast<uint8_t>(Buf[Pos++]);
  }
  uint32_t u32() {
    if (!need(4))
      return 0;
    uint32_t V = 0;
    for (unsigned I = 0; I != 4; ++I)
      V |= static_cast<uint32_t>(static_cast<unsigned char>(Buf[Pos++]))
           << (8 * I);
    return V;
  }
  uint64_t u64() {
    if (!need(8))
      return 0;
    uint64_t V = 0;
    for (unsigned I = 0; I != 8; ++I)
      V |= static_cast<uint64_t>(static_cast<unsigned char>(Buf[Pos++]))
           << (8 * I);
    return V;
  }
  std::string str() {
    uint32_t N = u32();
    // The cap bounds a corrupted length before the need() subtraction can
    // be reasoned about; it can never exceed a legal frame anyway.
    if (N > kMaxFramePayload || !need(N))
      return std::string();
    std::string S(Buf, Pos, N);
    Pos += N;
    return S;
  }
  Status finish(const char *What) {
    if (!Ok)
      return Status::error(ErrorCode::InvalidInput,
                           std::string("truncated ") + What + " payload");
    if (Pos != Buf.size())
      return Status::error(ErrorCode::InvalidInput,
                           std::string(What) + " payload has " +
                               std::to_string(Buf.size() - Pos) +
                               " trailing bytes");
    return Status();
  }

private:
  bool need(size_t N) {
    if (!Ok || Buf.size() - Pos < N) {
      Ok = false;
      return false;
    }
    return true;
  }

  const std::string &Buf;
  size_t Pos = 0;
  bool Ok = true;
};

Status badEnum(const char *What, uint64_t V) {
  return Status::error(ErrorCode::InvalidInput,
                       std::string("out-of-range ") + What + " value " +
                           std::to_string(V));
}

void writeCellSpec(PayloadWriter &W, const CellSpec &C) {
  W.str(C.Benchmark);
  W.u8(static_cast<uint8_t>(C.SchemeKind));
}

/// \returns ok and fills \p C, or the range error (reader errors surface
///          via finish()).
Status readCellSpec(PayloadReader &R, CellSpec &C) {
  C.Benchmark = R.str();
  uint8_t S = R.u8();
  if (R.ok() && S > static_cast<uint8_t>(Scheme::Hotspot))
    return badEnum("scheme", S);
  C.SchemeKind = static_cast<Scheme>(S);
  return Status();
}

} // namespace

std::string dynace::serve::encodeGridRequest(const GridRequestMsg &M) {
  PayloadWriter W;
  W.u32(static_cast<uint32_t>(M.Cells.size()));
  for (const CellSpec &C : M.Cells)
    writeCellSpec(W, C);
  return W.take();
}

Expected<GridRequestMsg> dynace::serve::decodeGridRequest(
    const std::string &Payload) {
  PayloadReader R(Payload);
  GridRequestMsg M;
  uint32_t N = R.u32();
  // Each cell costs at least 5 bytes on the wire; a count the payload
  // cannot possibly hold is a corrupted length, not a big grid.
  if (R.ok() && static_cast<uint64_t>(N) * 5 > Payload.size())
    return Status::error(ErrorCode::InvalidInput,
                         "grid cell count " + std::to_string(N) +
                             " exceeds payload");
  for (uint32_t I = 0; I != N && R.ok(); ++I) {
    CellSpec C;
    if (Status S = readCellSpec(R, C); !S)
      return S;
    M.Cells.push_back(std::move(C));
  }
  if (Status S = R.finish("grid-request"); !S)
    return S;
  return M;
}

std::string dynace::serve::encodeCellAssign(const CellAssignMsg &M) {
  PayloadWriter W;
  W.u64(M.CellIndex);
  writeCellSpec(W, M.Cell);
  return W.take();
}

Expected<CellAssignMsg> dynace::serve::decodeCellAssign(
    const std::string &Payload) {
  PayloadReader R(Payload);
  CellAssignMsg M;
  M.CellIndex = R.u64();
  if (Status S = readCellSpec(R, M.Cell); !S)
    return S;
  if (Status S = R.finish("cell-assign"); !S)
    return S;
  return M;
}

std::string dynace::serve::encodeCellResult(const CellResultMsg &M) {
  PayloadWriter W;
  W.u64(M.CellIndex);
  writeCellSpec(W, M.Cell);
  W.str(M.CacheKey);
  W.u8(M.Failed ? 1 : 0);
  W.u8(M.Code);
  W.u32(M.Attempts);
  W.u8(M.CacheHit ? 1 : 0);
  W.u64(M.Quarantined);
  W.str(M.Reason);
  W.str(M.ResultText);
  return W.take();
}

Expected<CellResultMsg> dynace::serve::decodeCellResult(
    const std::string &Payload) {
  PayloadReader R(Payload);
  CellResultMsg M;
  M.CellIndex = R.u64();
  if (Status S = readCellSpec(R, M.Cell); !S)
    return S;
  M.CacheKey = R.str();
  uint8_t Failed = R.u8();
  M.Code = R.u8();
  M.Attempts = R.u32();
  uint8_t CacheHit = R.u8();
  M.Quarantined = R.u64();
  M.Reason = R.str();
  M.ResultText = R.str();
  if (R.ok()) {
    if (Failed > 1)
      return badEnum("failed flag", Failed);
    if (CacheHit > 1)
      return badEnum("cache-hit flag", CacheHit);
    if (M.Code > static_cast<uint8_t>(ErrorCode::Unavailable))
      return badEnum("error code", M.Code);
  }
  M.Failed = Failed != 0;
  M.CacheHit = CacheHit != 0;
  if (Status S = R.finish("cell-result"); !S)
    return S;
  return M;
}

std::string dynace::serve::encodeHello(const HelloMsg &M) {
  PayloadWriter W;
  W.u64(M.WorkerId);
  W.u64(M.Pid);
  return W.take();
}

Expected<HelloMsg> dynace::serve::decodeHello(const std::string &Payload) {
  PayloadReader R(Payload);
  HelloMsg M;
  M.WorkerId = R.u64();
  M.Pid = R.u64();
  if (Status S = R.finish("hello"); !S)
    return S;
  return M;
}

std::string dynace::serve::encodeHeartbeat(const HeartbeatMsg &M) {
  PayloadWriter W;
  W.u64(M.WorkerId);
  W.u64(M.CellIndex);
  return W.take();
}

Expected<HeartbeatMsg> dynace::serve::decodeHeartbeat(
    const std::string &Payload) {
  PayloadReader R(Payload);
  HeartbeatMsg M;
  M.WorkerId = R.u64();
  M.CellIndex = R.u64();
  if (Status S = R.finish("heartbeat"); !S)
    return S;
  return M;
}

std::string dynace::serve::encodeDone(const DoneMsg &M) {
  PayloadWriter W;
  W.u64(M.Cells);
  W.u64(M.FailedCells);
  W.str(M.Report);
  return W.take();
}

Expected<DoneMsg> dynace::serve::decodeDone(const std::string &Payload) {
  PayloadReader R(Payload);
  DoneMsg M;
  M.Cells = R.u64();
  M.FailedCells = R.u64();
  M.Report = R.str();
  if (Status S = R.finish("done"); !S)
    return S;
  return M;
}

std::string dynace::serve::encodeErrorMsg(const ErrorMsg &M) {
  PayloadWriter W;
  W.str(M.Reason);
  return W.take();
}

Expected<ErrorMsg> dynace::serve::decodeErrorMsg(const std::string &Payload) {
  PayloadReader R(Payload);
  ErrorMsg M;
  M.Reason = R.str();
  if (Status S = R.finish("error"); !S)
    return S;
  return M;
}
