//===- serve/Protocol.cpp -------------------------------------------------==//

#include "serve/Protocol.h"

#include "obs/Trace.h"
#include "serve/Wire.h"

#include <bit>
#include <cctype>
#include <cmath>

using namespace dynace;
using namespace dynace::serve;

namespace {

/// Append-only little-endian payload builder.
class PayloadWriter {
public:
  void u8(uint8_t V) { Buf.push_back(static_cast<char>(V)); }
  void u32(uint32_t V) {
    for (unsigned I = 0; I != 4; ++I)
      Buf.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
  }
  void u64(uint64_t V) {
    for (unsigned I = 0; I != 8; ++I)
      Buf.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
  }
  void str(const std::string &S) {
    u32(static_cast<uint32_t>(S.size()));
    Buf += S;
  }
  std::string take() { return std::move(Buf); }

private:
  std::string Buf;
};

/// Bounds-checked reader; any overrun poisons the parse. finish() rejects
/// trailing bytes so a payload is consumed exactly or not at all.
class PayloadReader {
public:
  explicit PayloadReader(const std::string &Buf) : Buf(Buf) {}
  bool ok() const { return Ok; }

  uint8_t u8() {
    if (!need(1))
      return 0;
    return static_cast<uint8_t>(Buf[Pos++]);
  }
  uint32_t u32() {
    if (!need(4))
      return 0;
    uint32_t V = 0;
    for (unsigned I = 0; I != 4; ++I)
      V |= static_cast<uint32_t>(static_cast<unsigned char>(Buf[Pos++]))
           << (8 * I);
    return V;
  }
  uint64_t u64() {
    if (!need(8))
      return 0;
    uint64_t V = 0;
    for (unsigned I = 0; I != 8; ++I)
      V |= static_cast<uint64_t>(static_cast<unsigned char>(Buf[Pos++]))
           << (8 * I);
    return V;
  }
  std::string str() {
    uint32_t N = u32();
    // The cap bounds a corrupted length before the need() subtraction can
    // be reasoned about; it can never exceed a legal frame anyway.
    if (N > kMaxFramePayload || !need(N))
      return std::string();
    std::string S(Buf, Pos, N);
    Pos += N;
    return S;
  }
  Status finish(const char *What) {
    if (!Ok)
      return Status::error(ErrorCode::InvalidInput,
                           std::string("truncated ") + What + " payload");
    if (Pos != Buf.size())
      return Status::error(ErrorCode::InvalidInput,
                           std::string(What) + " payload has " +
                               std::to_string(Buf.size() - Pos) +
                               " trailing bytes");
    return Status();
  }

private:
  bool need(size_t N) {
    if (!Ok || Buf.size() - Pos < N) {
      Ok = false;
      return false;
    }
    return true;
  }

  const std::string &Buf;
  size_t Pos = 0;
  bool Ok = true;
};

Status badEnum(const char *What, uint64_t V) {
  return Status::error(ErrorCode::InvalidInput,
                       std::string("out-of-range ") + What + " value " +
                           std::to_string(V));
}

Status badField(const char *What, const std::string &Why) {
  return Status::error(ErrorCode::InvalidInput,
                       std::string("bad ") + What + ": " + Why);
}

/// Doubles travel as their IEEE-754 bit pattern in a u64 (bit-exact,
/// endian-defined by the integer encoding). Finiteness is checked at
/// decode where it matters (timestamps and gauges end up in JSON, where
/// NaN/Inf have no spelling).
void writeF64(PayloadWriter &W, double V) { W.u64(std::bit_cast<uint64_t>(V)); }
double readF64(PayloadReader &R) { return std::bit_cast<double>(R.u64()); }

/// A span name lands unescaped in the trace JSON, so the wire only admits
/// printable ASCII without the two JSON-active characters. (Worker-side
/// names are string literals that trivially satisfy this; the check is
/// for the hostile peer.)
bool isSafeTraceName(const std::string &S) {
  if (S.empty() || S.size() > 256)
    return false;
  for (char C : S) {
    unsigned char U = static_cast<unsigned char>(C);
    if (U < 0x20 || U > 0x7e || C == '"' || C == '\\')
      return false;
  }
  return true;
}

/// Validates a pre-rendered trace-args body: zero or more comma-separated
/// `"key": value` pairs where value is a JSON string, number, true, false
/// or null — exactly the grammar traceArg() produces. Anything else
/// (nested containers, stray braces, raw control bytes) is rejected: the
/// body is spliced verbatim into the merged trace file, so this validator
/// is the only thing between a hostile worker and corrupt JSON.
bool isValidTraceArgsBody(const std::string &S) {
  size_t Pos = 0;
  auto SkipWs = [&] {
    while (Pos < S.size() && (S[Pos] == ' ' || S[Pos] == '\t'))
      Pos++;
  };
  auto ParseString = [&] {
    if (Pos >= S.size() || S[Pos] != '"')
      return false;
    Pos++;
    while (Pos < S.size() && S[Pos] != '"') {
      unsigned char U = static_cast<unsigned char>(S[Pos]);
      if (U < 0x20)
        return false;
      if (S[Pos] == '\\') {
        if (Pos + 1 >= S.size())
          return false;
        char E = S[Pos + 1];
        if (E == 'u') {
          if (Pos + 5 >= S.size())
            return false;
          for (size_t I = Pos + 2; I != Pos + 6; ++I)
            if (!std::isxdigit(static_cast<unsigned char>(S[I])))
              return false;
          Pos += 6;
          continue;
        }
        if (E != '"' && E != '\\' && E != '/' && E != 'b' && E != 'f' &&
            E != 'n' && E != 'r' && E != 't')
          return false;
        Pos += 2;
        continue;
      }
      Pos++;
    }
    if (Pos >= S.size())
      return false;
    Pos++; // Closing quote.
    return true;
  };
  auto ParseNumber = [&] {
    size_t Start = Pos;
    if (Pos < S.size() && S[Pos] == '-')
      Pos++;
    size_t Digits = Pos;
    while (Pos < S.size() && std::isdigit(static_cast<unsigned char>(S[Pos])))
      Pos++;
    if (Pos == Digits)
      return false;
    if (Pos < S.size() && S[Pos] == '.') {
      Pos++;
      size_t Frac = Pos;
      while (Pos < S.size() &&
             std::isdigit(static_cast<unsigned char>(S[Pos])))
        Pos++;
      if (Pos == Frac)
        return false;
    }
    if (Pos < S.size() && (S[Pos] == 'e' || S[Pos] == 'E')) {
      Pos++;
      if (Pos < S.size() && (S[Pos] == '+' || S[Pos] == '-'))
        Pos++;
      size_t Exp = Pos;
      while (Pos < S.size() &&
             std::isdigit(static_cast<unsigned char>(S[Pos])))
        Pos++;
      if (Pos == Exp)
        return false;
    }
    return Pos != Start;
  };
  auto ParseLiteral = [&](const char *Lit) {
    size_t N = std::char_traits<char>::length(Lit);
    if (S.compare(Pos, N, Lit) != 0)
      return false;
    Pos += N;
    return true;
  };

  SkipWs();
  if (Pos == S.size())
    return true; // Empty body: event with no args.
  for (;;) {
    if (!ParseString()) // Key.
      return false;
    SkipWs();
    if (Pos >= S.size() || S[Pos] != ':')
      return false;
    Pos++;
    SkipWs();
    if (Pos < S.size() && S[Pos] == '"') {
      if (!ParseString())
        return false;
    } else if (ParseLiteral("true") || ParseLiteral("false") ||
               ParseLiteral("null")) {
      // Literal consumed.
    } else if (!ParseNumber()) {
      return false;
    }
    SkipWs();
    if (Pos == S.size())
      return true;
    if (S[Pos] != ',')
      return false;
    Pos++;
    SkipWs();
  }
}

void writeSpan(PayloadWriter &W, const WireSpan &S) {
  W.str(S.Cat);
  W.str(S.Name);
  writeF64(W, S.TsUs);
  writeF64(W, S.DurUs);
  W.str(S.Args);
}

Status readSpan(PayloadReader &R, WireSpan &S) {
  S.Cat = R.str();
  S.Name = R.str();
  S.TsUs = readF64(R);
  S.DurUs = readF64(R);
  S.Args = R.str();
  if (!R.ok())
    return Status(); // finish() reports truncation.
  if (!obs::isKnownTraceCategory(S.Cat.c_str()))
    return badField("span category", "'" + S.Cat + "' is not known");
  if (!isSafeTraceName(S.Name))
    return badField("span name", "empty, oversized or non-printable");
  if (!std::isfinite(S.TsUs) || !std::isfinite(S.DurUs))
    return badField("span timestamp", "non-finite value");
  if (S.Args.size() > 4096 || !isValidTraceArgsBody(S.Args))
    return badField("span args", "not a rendered JSON object body");
  return Status();
}

/// Metric names follow the result cache's charset discipline and each
/// section arrives strictly name-ascending (what a std::map serializes),
/// so a forged block can neither smuggle JSON through a name nor inflate
/// the registry with duplicates.
bool isValidMetricName(const std::string &Name) {
  if (Name.empty() || Name.size() > kMaxMetricNameLen)
    return false;
  for (char C : Name)
    if (!std::isalnum(static_cast<unsigned char>(C)) && C != '.' &&
        C != '_' && C != '-' && C != '#')
      return false;
  return true;
}

void writeMetricsBlock(PayloadWriter &W, const MetricsSnapshot &S) {
  W.u32(static_cast<uint32_t>(S.Counters.size()));
  for (const auto &[Name, V] : S.Counters) {
    W.str(Name);
    W.u64(V);
  }
  W.u32(static_cast<uint32_t>(S.Gauges.size()));
  for (const auto &[Name, V] : S.Gauges) {
    W.str(Name);
    writeF64(W, V);
  }
  W.u32(static_cast<uint32_t>(S.Histograms.size()));
  for (const auto &[Name, H] : S.Histograms) {
    W.str(Name);
    W.u64(H.Sum);
    W.u32(static_cast<uint32_t>(H.Buckets.size()));
    for (uint64_t B : H.Buckets)
      W.u64(B);
  }
}

Status readMetricsBlock(PayloadReader &R, MetricsSnapshot &S) {
  uint32_t NC = R.u32();
  if (R.ok() && NC > kMaxWireMetrics)
    return badField("metrics block", "counter count exceeds cap");
  std::string Prev;
  for (uint32_t I = 0; I != NC && R.ok(); ++I) {
    std::string Name = R.str();
    uint64_t V = R.u64();
    if (!R.ok())
      break;
    if (!isValidMetricName(Name))
      return badField("counter name", "'" + Name + "'");
    if (I != 0 && Name <= Prev)
      return badField("metrics block", "counter names not ascending");
    Prev = Name;
    S.Counters.emplace(std::move(Name), V);
  }
  uint32_t NG = R.u32();
  if (R.ok() && NG > kMaxWireMetrics)
    return badField("metrics block", "gauge count exceeds cap");
  Prev.clear();
  for (uint32_t I = 0; I != NG && R.ok(); ++I) {
    std::string Name = R.str();
    double V = readF64(R);
    if (!R.ok())
      break;
    if (!isValidMetricName(Name))
      return badField("gauge name", "'" + Name + "'");
    if (I != 0 && Name <= Prev)
      return badField("metrics block", "gauge names not ascending");
    if (!std::isfinite(V))
      return badField("gauge value", "non-finite");
    Prev = Name;
    S.Gauges.emplace(std::move(Name), V);
  }
  uint32_t NH = R.u32();
  if (R.ok() && NH > kMaxWireMetrics)
    return badField("metrics block", "histogram count exceeds cap");
  Prev.clear();
  for (uint32_t I = 0; I != NH && R.ok(); ++I) {
    std::string Name = R.str();
    HistogramSnapshot H;
    H.Sum = R.u64();
    uint32_t NB = R.u32();
    if (R.ok() && NB > kHistogramBuckets)
      return badField("histogram", "'" + Name + "' bucket count " +
                                       std::to_string(NB) + " exceeds " +
                                       std::to_string(kHistogramBuckets));
    for (uint32_t B = 0; B != NB && R.ok(); ++B) {
      uint64_t V = R.u64();
      H.Buckets.push_back(V);
      H.Count += V; // Count is derived, never trusted off the wire.
    }
    if (!R.ok())
      break;
    if (!isValidMetricName(Name))
      return badField("histogram name", "'" + Name + "'");
    if (I != 0 && Name <= Prev)
      return badField("metrics block", "histogram names not ascending");
    Prev = Name;
    S.Histograms.emplace(std::move(Name), std::move(H));
  }
  return Status();
}

void writeCellSpec(PayloadWriter &W, const CellSpec &C) {
  W.str(C.Benchmark);
  W.u8(static_cast<uint8_t>(C.SchemeKind));
}

/// \returns ok and fills \p C, or the range error (reader errors surface
///          via finish()).
Status readCellSpec(PayloadReader &R, CellSpec &C) {
  C.Benchmark = R.str();
  uint8_t S = R.u8();
  if (R.ok() && S > static_cast<uint8_t>(Scheme::Hotspot))
    return badEnum("scheme", S);
  C.SchemeKind = static_cast<Scheme>(S);
  return Status();
}

} // namespace

std::string dynace::serve::encodeGridRequest(const GridRequestMsg &M) {
  PayloadWriter W;
  W.u32(static_cast<uint32_t>(M.Cells.size()));
  for (const CellSpec &C : M.Cells)
    writeCellSpec(W, C);
  return W.take();
}

Expected<GridRequestMsg> dynace::serve::decodeGridRequest(
    const std::string &Payload) {
  PayloadReader R(Payload);
  GridRequestMsg M;
  uint32_t N = R.u32();
  // Each cell costs at least 5 bytes on the wire; a count the payload
  // cannot possibly hold is a corrupted length, not a big grid.
  if (R.ok() && static_cast<uint64_t>(N) * 5 > Payload.size())
    return Status::error(ErrorCode::InvalidInput,
                         "grid cell count " + std::to_string(N) +
                             " exceeds payload");
  for (uint32_t I = 0; I != N && R.ok(); ++I) {
    CellSpec C;
    if (Status S = readCellSpec(R, C); !S)
      return S;
    M.Cells.push_back(std::move(C));
  }
  if (Status S = R.finish("grid-request"); !S)
    return S;
  return M;
}

std::string dynace::serve::encodeCellAssign(const CellAssignMsg &M) {
  PayloadWriter W;
  W.u64(M.CellIndex);
  writeCellSpec(W, M.Cell);
  W.u64(M.GridId);
  W.u32(M.Attempt);
  return W.take();
}

Expected<CellAssignMsg> dynace::serve::decodeCellAssign(
    const std::string &Payload) {
  PayloadReader R(Payload);
  CellAssignMsg M;
  M.CellIndex = R.u64();
  if (Status S = readCellSpec(R, M.Cell); !S)
    return S;
  M.GridId = R.u64();
  M.Attempt = R.u32();
  if (Status S = R.finish("cell-assign"); !S)
    return S;
  return M;
}

std::string dynace::serve::encodeCellResult(const CellResultMsg &M) {
  PayloadWriter W;
  W.u64(M.CellIndex);
  writeCellSpec(W, M.Cell);
  W.str(M.CacheKey);
  W.u8(M.Failed ? 1 : 0);
  W.u8(M.Code);
  W.u32(M.Attempts);
  W.u8(M.CacheHit ? 1 : 0);
  W.u64(M.Quarantined);
  W.str(M.Reason);
  W.str(M.ResultText);
  W.u64(M.GridId);
  W.u32(M.DispatchAttempt);
  W.u32(static_cast<uint32_t>(M.Spans.size()));
  for (const WireSpan &S : M.Spans)
    writeSpan(W, S);
  W.u32(M.DroppedSpans);
  writeMetricsBlock(W, M.MetricsDelta);
  return W.take();
}

Expected<CellResultMsg> dynace::serve::decodeCellResult(
    const std::string &Payload) {
  PayloadReader R(Payload);
  CellResultMsg M;
  M.CellIndex = R.u64();
  if (Status S = readCellSpec(R, M.Cell); !S)
    return S;
  M.CacheKey = R.str();
  uint8_t Failed = R.u8();
  M.Code = R.u8();
  M.Attempts = R.u32();
  uint8_t CacheHit = R.u8();
  M.Quarantined = R.u64();
  M.Reason = R.str();
  M.ResultText = R.str();
  if (R.ok()) {
    if (Failed > 1)
      return badEnum("failed flag", Failed);
    if (CacheHit > 1)
      return badEnum("cache-hit flag", CacheHit);
    if (M.Code > static_cast<uint8_t>(ErrorCode::Unavailable))
      return badEnum("error code", M.Code);
  }
  M.Failed = Failed != 0;
  M.CacheHit = CacheHit != 0;
  M.GridId = R.u64();
  M.DispatchAttempt = R.u32();
  uint32_t NSpans = R.u32();
  if (R.ok() && NSpans > kMaxWireSpans)
    return badField("cell-result", "span count " + std::to_string(NSpans) +
                                       " exceeds cap");
  // Each span costs at least 28 bytes (3 length prefixes + 2 doubles);
  // a count the payload cannot hold is a corrupted length.
  if (R.ok() && static_cast<uint64_t>(NSpans) * 28 > Payload.size())
    return badField("cell-result", "span count exceeds payload");
  for (uint32_t I = 0; I != NSpans && R.ok(); ++I) {
    WireSpan S;
    if (Status St = readSpan(R, S); !St)
      return St;
    M.Spans.push_back(std::move(S));
  }
  M.DroppedSpans = R.u32();
  if (Status S = readMetricsBlock(R, M.MetricsDelta); !S)
    return S;
  if (Status S = R.finish("cell-result"); !S)
    return S;
  return M;
}

std::string dynace::serve::encodeHello(const HelloMsg &M) {
  PayloadWriter W;
  W.u64(M.WorkerId);
  W.u64(M.Pid);
  W.u64(M.TraceEpochNs);
  return W.take();
}

Expected<HelloMsg> dynace::serve::decodeHello(const std::string &Payload) {
  PayloadReader R(Payload);
  HelloMsg M;
  M.WorkerId = R.u64();
  M.Pid = R.u64();
  M.TraceEpochNs = R.u64();
  if (Status S = R.finish("hello"); !S)
    return S;
  return M;
}

std::string dynace::serve::encodeHeartbeat(const HeartbeatMsg &M) {
  PayloadWriter W;
  W.u64(M.WorkerId);
  W.u64(M.CellIndex);
  return W.take();
}

Expected<HeartbeatMsg> dynace::serve::decodeHeartbeat(
    const std::string &Payload) {
  PayloadReader R(Payload);
  HeartbeatMsg M;
  M.WorkerId = R.u64();
  M.CellIndex = R.u64();
  if (Status S = R.finish("heartbeat"); !S)
    return S;
  return M;
}

std::string dynace::serve::encodeDone(const DoneMsg &M) {
  PayloadWriter W;
  W.u64(M.Cells);
  W.u64(M.FailedCells);
  W.str(M.Report);
  return W.take();
}

Expected<DoneMsg> dynace::serve::decodeDone(const std::string &Payload) {
  PayloadReader R(Payload);
  DoneMsg M;
  M.Cells = R.u64();
  M.FailedCells = R.u64();
  M.Report = R.str();
  if (Status S = R.finish("done"); !S)
    return S;
  return M;
}

std::string dynace::serve::encodeErrorMsg(const ErrorMsg &M) {
  PayloadWriter W;
  W.str(M.Reason);
  return W.take();
}

Expected<ErrorMsg> dynace::serve::decodeErrorMsg(const std::string &Payload) {
  PayloadReader R(Payload);
  ErrorMsg M;
  M.Reason = R.str();
  if (Status S = R.finish("error"); !S)
    return S;
  return M;
}

std::string dynace::serve::encodeStatsRequest(const StatsRequestMsg &) {
  return std::string();
}

Expected<StatsRequestMsg> dynace::serve::decodeStatsRequest(
    const std::string &Payload) {
  PayloadReader R(Payload);
  if (Status S = R.finish("stats-request"); !S)
    return S;
  return StatsRequestMsg();
}

std::string dynace::serve::encodeStatsReply(const StatsReplyMsg &M) {
  PayloadWriter W;
  W.u8(M.GridActive ? 1 : 0);
  W.u64(M.GridsServed);
  W.u64(M.GridId);
  W.u64(M.Cells);
  W.u64(M.DoneCells);
  W.u64(M.PendingCells);
  W.u64(M.InFlightLeases);
  W.u64(M.FailedCells);
  W.u64(M.ReplayedCells);
  W.u64(M.InlineCells);
  W.u64(M.Dispatches);
  W.u64(M.Redispatches);
  W.u64(M.DuplicateResults);
  W.u64(M.WorkerCrashes);
  W.u64(M.Respawns);
  W.u64(M.QuarantinedCells);
  W.u64(M.JournalBytes);
  W.u32(static_cast<uint32_t>(M.Workers.size()));
  for (const WorkerStatMsg &S : M.Workers) {
    W.u64(S.WorkerId);
    W.u64(S.Pid);
    W.u8(S.Live ? 1 : 0);
    W.u64(S.LeasedCell);
    W.u64(S.LeaseRemainingMs);
    W.u64(S.LastSeenMsAgo);
    W.u64(S.CellsDone);
  }
  return W.take();
}

Expected<StatsReplyMsg> dynace::serve::decodeStatsReply(
    const std::string &Payload) {
  PayloadReader R(Payload);
  StatsReplyMsg M;
  uint8_t Active = R.u8();
  M.GridsServed = R.u64();
  M.GridId = R.u64();
  M.Cells = R.u64();
  M.DoneCells = R.u64();
  M.PendingCells = R.u64();
  M.InFlightLeases = R.u64();
  M.FailedCells = R.u64();
  M.ReplayedCells = R.u64();
  M.InlineCells = R.u64();
  M.Dispatches = R.u64();
  M.Redispatches = R.u64();
  M.DuplicateResults = R.u64();
  M.WorkerCrashes = R.u64();
  M.Respawns = R.u64();
  M.QuarantinedCells = R.u64();
  M.JournalBytes = R.u64();
  if (R.ok() && Active > 1)
    return badEnum("grid-active flag", Active);
  M.GridActive = Active != 0;
  uint32_t NW = R.u32();
  if (R.ok() && NW > kMaxWireWorkerStats)
    return badField("stats-reply", "worker count " + std::to_string(NW) +
                                       " exceeds cap");
  // Each worker entry is exactly 49 bytes; a count the payload cannot
  // hold is a corrupted length.
  if (R.ok() && static_cast<uint64_t>(NW) * 49 > Payload.size())
    return badField("stats-reply", "worker count exceeds payload");
  for (uint32_t I = 0; I != NW && R.ok(); ++I) {
    WorkerStatMsg S;
    S.WorkerId = R.u64();
    S.Pid = R.u64();
    uint8_t Live = R.u8();
    S.LeasedCell = R.u64();
    S.LeaseRemainingMs = R.u64();
    S.LastSeenMsAgo = R.u64();
    S.CellsDone = R.u64();
    if (R.ok() && Live > 1)
      return badEnum("worker live flag", Live);
    S.Live = Live != 0;
    M.Workers.push_back(S);
  }
  if (Status S = R.finish("stats-reply"); !S)
    return S;
  return M;
}
