//===- serve/Journal.cpp --------------------------------------------------==//

#include "serve/Journal.h"

#include "serve/Wire.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace dynace;
using namespace dynace::serve;

namespace {

constexpr char kJournalMagic[4] = {'D', 'Y', 'N', 'J'};
constexpr size_t kJournalHeaderSize = 8;
constexpr size_t kRecordHeaderSize = 12;

std::string journalHeader() {
  std::string H(kJournalMagic, sizeof(kJournalMagic));
  H.push_back(static_cast<char>(kJournalVersion));
  H.append(3, '\0');
  return H;
}

Status ioError(const std::string &What, const std::string &Path) {
  return Status::error(ErrorCode::IoError,
                       What + " '" + Path + "': " + std::strerror(errno));
}

/// Writes all of \p Bytes to \p Fd (O_APPEND keeps the record contiguous
/// for any one write; the loop only resumes after EINTR/short writes,
/// which on a regular file never interleave with another appender of
/// well-formed records anyway — and this journal has one writer).
Status writeAll(int Fd, const std::string &Bytes, const std::string &Path) {
  size_t Off = 0;
  while (Off < Bytes.size()) {
    ssize_t N = ::write(Fd, Bytes.data() + Off, Bytes.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return ioError("write journal", Path);
    }
    Off += static_cast<size_t>(N);
  }
  return Status();
}

} // namespace

Expected<uint64_t> dynace::serve::journalAppend(const std::string &Path,
                                                const CellResultMsg &M) {
  // O_APPEND per call: no descriptor survives between appends, so a
  // fork()ed worker can never inherit (and corrupt) the journal position.
  int Fd = ::open(Path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (Fd < 0)
    return ioError("open journal", Path);

  struct stat St;
  if (::fstat(Fd, &St) != 0) {
    Status S = ioError("stat journal", Path);
    ::close(Fd);
    return S;
  }
  std::string Bytes;
  if (St.st_size == 0)
    Bytes += journalHeader();

  std::string Body = encodeCellResult(M);
  for (unsigned I = 0; I != 4; ++I)
    Bytes.push_back(static_cast<char>((Body.size() >> (8 * I)) & 0xff));
  uint64_t Sum = fnv1a64(Body.data(), Body.size());
  for (unsigned I = 0; I != 8; ++I)
    Bytes.push_back(static_cast<char>((Sum >> (8 * I)) & 0xff));
  Bytes += Body;

  Status S = writeAll(Fd, Bytes, Path);
  if (S.ok() && ::fsync(Fd) != 0)
    S = ioError("fsync journal", Path);
  ::close(Fd);
  if (!S)
    return S;
  return static_cast<uint64_t>(Bytes.size());
}

Expected<JournalReplay> dynace::serve::journalReplay(const std::string &Path) {
  FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    if (errno == ENOENT)
      return JournalReplay(); // First run: nothing to resume.
    return ioError("open journal", Path);
  }
  std::string Bytes;
  char Chunk[1 << 16];
  size_t N;
  while ((N = std::fread(Chunk, 1, sizeof(Chunk), F)) > 0)
    Bytes.append(Chunk, N);
  bool ReadErr = std::ferror(F) != 0;
  std::fclose(F);
  if (ReadErr)
    return ioError("read journal", Path);

  if (Bytes.empty())
    return JournalReplay(); // Created but never written: empty resume.
  if (Bytes.size() < kJournalHeaderSize ||
      std::memcmp(Bytes.data(), kJournalMagic, sizeof(kJournalMagic)) != 0)
    return Status::error(ErrorCode::InvalidInput,
                         "'" + Path + "' is not a dynace-serve journal");
  if (static_cast<uint8_t>(Bytes[4]) != kJournalVersion)
    return Status::error(ErrorCode::InvalidInput,
                         "journal '" + Path + "' has version " +
                             std::to_string(static_cast<uint8_t>(Bytes[4])) +
                             ", want " + std::to_string(kJournalVersion));

  JournalReplay Replay;
  size_t Pos = kJournalHeaderSize;
  const auto *P = reinterpret_cast<const unsigned char *>(Bytes.data());
  while (Pos < Bytes.size()) {
    // A record that does not fully parse ends the replay: everything from
    // here is a torn tail (crash mid-append) or corruption; either way
    // the safe move is to drop it and let those cells re-run.
    if (Bytes.size() - Pos < kRecordHeaderSize)
      break;
    uint32_t Len = 0;
    for (unsigned I = 0; I != 4; ++I)
      Len |= static_cast<uint32_t>(P[Pos + I]) << (8 * I);
    uint64_t Sum = 0;
    for (unsigned I = 0; I != 8; ++I)
      Sum |= static_cast<uint64_t>(P[Pos + 4 + I]) << (8 * I);
    if (Len > kMaxFramePayload || Bytes.size() - Pos - kRecordHeaderSize < Len)
      break;
    std::string Body(Bytes, Pos + kRecordHeaderSize, Len);
    if (fnv1a64(Body.data(), Body.size()) != Sum)
      break;
    Expected<CellResultMsg> M = decodeCellResult(Body);
    if (!M.ok())
      break;
    Replay.Records.push_back(M.take());
    Pos += kRecordHeaderSize + Len;
  }
  Replay.DroppedTailBytes = Bytes.size() - Pos;
  return Replay;
}
