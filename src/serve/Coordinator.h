//===- serve/Coordinator.h - Fault-tolerant grid coordinator ----*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The coordinator half of the distributed experiment service
/// (DESIGN.md §16): shards a (benchmark × scheme) grid across fork()ed
/// worker processes and survives every failure mode the chaos tests can
/// inject while keeping the final report bit-identical to a serial
/// in-process run.
///
/// Mechanisms, in the order a cell meets them:
///
///  * **Journal replay** — with DYNACE_SERVE_JOURNAL set, completed cells
///    from a previous (killed) coordinator are validated and adopted, so
///    a restart resumes the grid instead of re-running it.
///  * **Lease-based assignment** — each dispatched cell carries a fixed
///    deadline (DYNACE_SERVE_LEASE_MS from assignment). Heartbeats prove
///    liveness but never extend a lease.
///  * **Straggler re-dispatch** — an expired lease re-queues the cell for
///    another worker while the straggler keeps running; the first
///    CellResult to arrive wins and later duplicates are dropped, which
///    is safe because results are content-addressed (identical cache key
///    ⇒ identical deterministic bytes).
///  * **Death detection & respawn** — heartbeat silence, EOF or a
///    transport error marks a worker dead: it is killed, reaped, its
///    lease re-queued and a replacement forked, up to
///    DYNACE_SERVE_MAX_RESPAWNS total (the crash-loop circuit breaker).
///  * **Dispatch cap** — a cell dispatched DYNACE_SERVE_MAX_RETRIES times
///    to workers without completing is taken away from them and executed
///    inline.
///  * **Inline fallback** — with the breaker open and no live workers
///    (or DYNACE_SERVE_WORKERS=0 from the start), remaining cells run in
///    the coordinator thread via the same execution core, so a grid
///    always completes.
///
/// Concurrency/fork discipline: one handler thread per worker reads its
/// socket; all shared state hangs off a single grid mutex. fork() happens
/// only on the runGrid() caller's thread, and handler threads touch no
/// singleton locks in steady state (serve metrics are aggregated under
/// the grid mutex and flushed to the process MetricsRegistry once, at
/// grid end; serve trace events are emitted from the runGrid thread
/// only), so a forked child never inherits a held lock it would later
/// need.
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_SERVE_COORDINATOR_H
#define DYNACE_SERVE_COORDINATOR_H

#include "serve/Protocol.h"
#include "sim/ExperimentRunner.h"
#include "support/Status.h"

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

namespace dynace {
namespace serve {

/// Coordinator configuration, normally read from DYNACE_SERVE_* (see
/// README "Environment variables").
struct ServeConfig {
  /// Worker processes to fork (0 = run every cell inline, no forks).
  unsigned Workers = 2;
  /// Fixed lease per dispatched cell; expiry re-queues the cell.
  uint64_t LeaseMs = 30000;
  /// Worker heartbeat period (0 disables heartbeats AND silence-based
  /// death detection; EOF/errors still detect death).
  uint64_t HeartbeatMs = 100;
  /// Total worker respawns allowed per grid (the circuit breaker).
  uint64_t MaxRespawns = 8;
  /// Worker dispatches allowed per cell before it runs inline only.
  uint64_t MaxDispatches = 4;
  /// Write-ahead journal path; empty disables journaling.
  std::string JournalPath;
  /// Extra parent file descriptors to close in forked workers (a daemon
  /// passes its listening and client sockets so workers never hold them).
  std::vector<int> CloseInChild;

  /// Heartbeat-silence threshold after which a worker is declared dead.
  uint64_t silenceMs() const {
    return HeartbeatMs == 0 ? 0 : std::max<uint64_t>(10 * HeartbeatMs, 500);
  }

  /// Reads DYNACE_SERVE_WORKERS / _LEASE_MS / _HEARTBEAT_MS /
  /// _MAX_RESPAWNS / _MAX_RETRIES / _JOURNAL.
  /// \returns the config, or InvalidInput naming the malformed variable.
  static Expected<ServeConfig> fromEnv();
};

/// What happened while running one grid (asserted by the chaos tests and
/// summarized by the daemon log line).
struct GridStats {
  uint64_t Cells = 0;            ///< Grid size.
  uint64_t ReplayedCells = 0;    ///< Adopted from the journal, not run.
  uint64_t WorkerDispatches = 0; ///< CellAssign frames sent.
  uint64_t Redispatches = 0;     ///< Lease expiries that re-queued a cell.
  uint64_t DuplicateResults = 0; ///< Late straggler results dropped.
  uint64_t WorkerCrashes = 0;    ///< Workers that died without exit 0.
  uint64_t Respawns = 0;         ///< Replacement workers forked.
  uint64_t InlineCells = 0;      ///< Cells executed in the coordinator.
  uint64_t FailedCells = 0;      ///< Cells whose outcome is Failed.
  uint64_t JournalTailDropBytes = 0; ///< Torn journal tail discarded.
  uint64_t JournalBytes = 0;     ///< Bytes appended to the journal.
  uint64_t QuarantinedCells = 0; ///< Cells whose outcome quarantined runs.
};

/// Terminal state of one grid cell.
struct GridCell {
  SimulationResult Result;
  CellOutcome Outcome;
  std::string CacheKey;
};

/// A completed grid: per-cell results in grid order, plus the stats.
struct GridResult {
  std::vector<GridCell> Cells;
  GridStats Stats;
};

/// Streaming callback: invoked strictly in grid order (cell 0, 1, 2...)
/// as soon as each cell and all its predecessors are terminal, from the
/// runGrid() caller's thread.
using CellSink =
    std::function<void(size_t Index, const GridCell &Cell)>;

/// Runs \p Cells under \p Config with base simulation options \p Base.
///
/// Blocks until every cell is terminal (the fallback ladder above makes
/// that unconditional) and returns results in grid order, bit-identical
/// to a serial in-process run of the same cells. \p Sink, when set,
/// observes cells streaming in grid order.
/// \returns the grid result, or an error when the grid could not start
///          (corrupt journal file, duplicate cell specs).
Expected<GridResult> runGrid(const ServeConfig &Config,
                             const SimulationOptions &Base,
                             const std::vector<CellSpec> &Cells,
                             const CellSink &Sink = {});

/// \returns the standard profile-major grid for \p Benchmarks: for each
///          name, one cell per scheme (Baseline, Bbv, Hotspot).
std::vector<CellSpec> gridForBenchmarks(
    const std::vector<std::string> &Benchmarks);

/// Groups a profile-major grid (gridForBenchmarks order) back into
/// BenchmarkRun triples for the report printers.
/// \returns the runs, or InvalidInput when \p Cells is not such a grid.
Expected<std::vector<BenchmarkRun>>
assembleBenchmarkRuns(const std::vector<CellSpec> &Cells,
                      const std::vector<GridCell> &Results);

/// Live introspection source for the stats plane (dynace-top,
/// dynace-submit --stats): a snapshot of the active grid — queue depths,
/// lease state and per-worker liveness — or, between grids, the totals of
/// the last completed one. Callable from any thread (the daemon's stats
/// listener); internally ordered before the grid mutex.
StatsReplyMsg currentServeStats();

/// Renders \p S as the multi-line human text dynace-top and
/// dynace-submit --stats print. Deterministic given the snapshot.
std::string renderServeStats(const StatsReplyMsg &S);

/// Renders the daemon's one-line grid summary from the serve.* counters
/// in \p Delta (a process-registry delta covering exactly one grid) —
/// the "grid done: ..." line is a *rendering of the metrics registry*,
/// not an independent tally.
std::string renderServeSummary(const MetricsSnapshot &Delta);

} // namespace serve
} // namespace dynace

#endif // DYNACE_SERVE_COORDINATOR_H
