//===- serve/Protocol.h - Serve message payload encodings -------*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Payload encodings for the serve frame types (serve/Wire.h): a tiny
/// little-endian binary format — u8/u32/u64 integers and u32
/// length-prefixed strings — with strict, Status-returning decoders.
///
/// Decoders share one contract with the wire layer: payload bytes are
/// *input*, not state. Every read is bounds-checked, string lengths are
/// capped by the frame cap, enums are range-checked, and a payload must
/// be consumed exactly — trailing bytes are corruption, not padding. A
/// malformed payload yields InvalidInput and the message is discarded;
/// nothing is ever partially applied.
///
/// The CellResult encoding doubles as the journal record body
/// (serve/Journal.h): a journaled cell is exactly what the wire would
/// have carried, so replay and receive share one validation path.
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_SERVE_PROTOCOL_H
#define DYNACE_SERVE_PROTOCOL_H

#include "sim/ExperimentRunner.h"
#include "sim/System.h"
#include "support/Status.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dynace {
namespace serve {

/// One (benchmark, scheme) cell of a grid, addressed by profile name.
struct CellSpec {
  std::string Benchmark;
  Scheme SchemeKind = Scheme::Baseline;
};

/// GridRequest payload: the ordered list of cells to run. Order is
/// load-bearing — results stream back and journal in this order.
struct GridRequestMsg {
  std::vector<CellSpec> Cells;
};

/// CellAssign payload: lease cell \p CellIndex (an index into the grid
/// order) to the receiving worker.
struct CellAssignMsg {
  uint64_t CellIndex = 0;
  CellSpec Cell;
};

/// CellResult payload: the terminal outcome of one cell. Also the journal
/// record body. \p ResultText is the canonical serializeResult() form and
/// is re-parsed (sim/ResultCache.h parseResultText) by every consumer —
/// a worker or journal is no more trusted than any other peer.
struct CellResultMsg {
  uint64_t CellIndex = 0;
  CellSpec Cell;          ///< Echoed spec; must match the lease/grid.
  std::string CacheKey;   ///< resultCacheKey() — content address.
  bool Failed = false;
  uint8_t Code = 0;       ///< ErrorCode of the final attempt (when Failed).
  uint32_t Attempts = 1;
  bool CacheHit = false;
  uint64_t Quarantined = 0;
  std::string Reason;     ///< Final error message (when Failed).
  std::string ResultText; ///< serializeResult() bytes.
};

/// Hello payload: a worker announcing itself.
struct HelloMsg {
  uint64_t WorkerId = 0;
  uint64_t Pid = 0;
};

/// Heartbeat payload: liveness while a cell simulates.
struct HeartbeatMsg {
  uint64_t WorkerId = 0;
  /// Cell currently leased, or kIdle between assignments.
  uint64_t CellIndex = 0;
  static constexpr uint64_t kIdle = ~0ull;
};

/// Done payload: the grid completed; \p Report is the full deterministic
/// report text (sim/Reports.h printGridReport).
struct DoneMsg {
  std::string Report;
  uint64_t Cells = 0;
  uint64_t FailedCells = 0;
};

/// Error payload: a human-readable reason the request was refused.
struct ErrorMsg {
  std::string Reason;
};

std::string encodeGridRequest(const GridRequestMsg &M);
std::string encodeCellAssign(const CellAssignMsg &M);
std::string encodeCellResult(const CellResultMsg &M);
std::string encodeHello(const HelloMsg &M);
std::string encodeHeartbeat(const HeartbeatMsg &M);
std::string encodeDone(const DoneMsg &M);
std::string encodeErrorMsg(const ErrorMsg &M);

/// Strict decoders: InvalidInput on any malformed, truncated, trailing or
/// out-of-range byte; the message is never partially applied.
Expected<GridRequestMsg> decodeGridRequest(const std::string &Payload);
Expected<CellAssignMsg> decodeCellAssign(const std::string &Payload);
Expected<CellResultMsg> decodeCellResult(const std::string &Payload);
Expected<HelloMsg> decodeHello(const std::string &Payload);
Expected<HeartbeatMsg> decodeHeartbeat(const std::string &Payload);
Expected<DoneMsg> decodeDone(const std::string &Payload);
Expected<ErrorMsg> decodeErrorMsg(const std::string &Payload);

} // namespace serve
} // namespace dynace

#endif // DYNACE_SERVE_PROTOCOL_H
