//===- serve/Protocol.h - Serve message payload encodings -------*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Payload encodings for the serve frame types (serve/Wire.h): a tiny
/// little-endian binary format — u8/u32/u64 integers and u32
/// length-prefixed strings — with strict, Status-returning decoders.
///
/// Decoders share one contract with the wire layer: payload bytes are
/// *input*, not state. Every read is bounds-checked, string lengths are
/// capped by the frame cap, enums are range-checked, and a payload must
/// be consumed exactly — trailing bytes are corruption, not padding. A
/// malformed payload yields InvalidInput and the message is discarded;
/// nothing is ever partially applied.
///
/// The CellResult encoding doubles as the journal record body
/// (serve/Journal.h): a journaled cell is exactly what the wire would
/// have carried, so replay and receive share one validation path.
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_SERVE_PROTOCOL_H
#define DYNACE_SERVE_PROTOCOL_H

#include "obs/Metrics.h"
#include "sim/ExperimentRunner.h"
#include "sim/System.h"
#include "support/Status.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dynace {
namespace serve {

/// One (benchmark, scheme) cell of a grid, addressed by profile name.
struct CellSpec {
  std::string Benchmark;
  Scheme SchemeKind = Scheme::Baseline;
};

/// GridRequest payload: the ordered list of cells to run. Order is
/// load-bearing — results stream back and journal in this order.
struct GridRequestMsg {
  std::vector<CellSpec> Cells;
};

/// CellAssign payload: lease cell \p CellIndex (an index into the grid
/// order) to the receiving worker. GridId/Attempt are the trace context:
/// the worker stamps both onto its spans, so re-dispatched attempts of
/// one cell stay distinguishable in the merged timeline.
struct CellAssignMsg {
  uint64_t CellIndex = 0;
  CellSpec Cell;
  uint64_t GridId = 0;  ///< Coordinator-assigned id of the owning grid.
  uint32_t Attempt = 0; ///< Dispatch ordinal of this cell (1-based).
};

/// One trace span shipped inside a CellResult: a worker-side TraceEvent
/// with owned strings. Timestamps are microseconds on the *worker's*
/// trace clock; the coordinator re-bases them using the epoch exchanged
/// in Hello. Decoding is zero-trust: the category must be a known trace
/// category, the name printable, timestamps finite and Args a valid
/// rendered JSON-object body — a hostile worker must not be able to
/// corrupt the merged trace file.
struct WireSpan {
  std::string Cat;
  std::string Name;
  double TsUs = 0.0;
  double DurUs = -1.0; ///< < 0 encodes an instant event.
  std::string Args;    ///< Pre-rendered JSON object body ("\"k\": 1").
};

/// Hard cap on spans per CellResult, enforced on both sides: the worker
/// truncates (counting DroppedSpans), the decoder rejects anything above.
inline constexpr uint32_t kMaxWireSpans = 8192;

/// Instrument-count / name-length caps for the metrics block, mirroring
/// the result cache's serialization discipline (sim/ResultCache.cpp).
inline constexpr uint32_t kMaxWireMetrics = 512;
inline constexpr uint32_t kMaxMetricNameLen = 200;

/// CellResult payload: the terminal outcome of one cell. Also the journal
/// record body. \p ResultText is the canonical serializeResult() form and
/// is re-parsed (sim/ResultCache.h parseResultText) by every consumer —
/// a worker or journal is no more trusted than any other peer. Spans and
/// MetricsDelta are observability freight: the worker's trace buffer for
/// this cell and its process-registry delta, folded fleet-side by the
/// coordinator (and stripped before journaling — replay must not re-merge
/// stale telemetry).
struct CellResultMsg {
  uint64_t CellIndex = 0;
  CellSpec Cell;          ///< Echoed spec; must match the lease/grid.
  std::string CacheKey;   ///< resultCacheKey() — content address.
  bool Failed = false;
  uint8_t Code = 0;       ///< ErrorCode of the final attempt (when Failed).
  uint32_t Attempts = 1;
  bool CacheHit = false;
  uint64_t Quarantined = 0;
  std::string Reason;     ///< Final error message (when Failed).
  std::string ResultText; ///< serializeResult() bytes.
  uint64_t GridId = 0;       ///< Echoed trace context.
  uint32_t DispatchAttempt = 0;
  std::vector<WireSpan> Spans;
  uint32_t DroppedSpans = 0; ///< Spans lost to the worker-side cap.
  MetricsSnapshot MetricsDelta; ///< Worker process-registry delta.
};

/// Hello payload: a worker announcing itself. TraceEpochNs is the
/// worker's trace-collector epoch (steady_clock nanoseconds) so the
/// coordinator can align the worker's span timestamps onto its own
/// timeline (zero for fork()ed workers, which inherit the epoch — the
/// exchange is what makes future remote workers mergeable).
struct HelloMsg {
  uint64_t WorkerId = 0;
  uint64_t Pid = 0;
  uint64_t TraceEpochNs = 0;
};

/// Heartbeat payload: liveness while a cell simulates.
struct HeartbeatMsg {
  uint64_t WorkerId = 0;
  /// Cell currently leased, or kIdle between assignments.
  uint64_t CellIndex = 0;
  static constexpr uint64_t kIdle = ~0ull;
};

/// Done payload: the grid completed; \p Report is the full deterministic
/// report text (sim/Reports.h printGridReport).
struct DoneMsg {
  std::string Report;
  uint64_t Cells = 0;
  uint64_t FailedCells = 0;
};

/// Error payload: a human-readable reason the request was refused.
struct ErrorMsg {
  std::string Reason;
};

/// StatsRequest payload: an introspection poll (no fields yet; the empty
/// payload still travels framed and checksummed like every message).
struct StatsRequestMsg {};

/// Per-worker slice of a StatsReply.
struct WorkerStatMsg {
  uint64_t WorkerId = 0;
  uint64_t Pid = 0;
  bool Live = false;
  uint64_t LeasedCell = ~0ull;    ///< ~0 = idle.
  uint64_t LeaseRemainingMs = 0;  ///< 0 when idle or expired.
  uint64_t LastSeenMsAgo = 0;
  uint64_t CellsDone = 0;
  static constexpr uint64_t kIdle = ~0ull;
};

/// StatsReply payload: a live snapshot of the daemon's serve state —
/// what dynace-top and dynace-submit --stats render. When no grid is
/// active the totals describe the last completed grid.
struct StatsReplyMsg {
  bool GridActive = false;
  uint64_t GridsServed = 0;
  uint64_t GridId = 0;
  uint64_t Cells = 0;
  uint64_t DoneCells = 0;
  uint64_t PendingCells = 0;   ///< Queued (worker + inline-only queues).
  uint64_t InFlightLeases = 0;
  uint64_t FailedCells = 0;
  uint64_t ReplayedCells = 0;
  uint64_t InlineCells = 0;
  uint64_t Dispatches = 0;
  uint64_t Redispatches = 0;
  uint64_t DuplicateResults = 0;
  uint64_t WorkerCrashes = 0;
  uint64_t Respawns = 0;
  uint64_t QuarantinedCells = 0;
  uint64_t JournalBytes = 0;
  std::vector<WorkerStatMsg> Workers;
};

/// Decode-side cap on StatsReply worker entries (the coordinator caps
/// workers at 64; anything past this is a forged count).
inline constexpr uint32_t kMaxWireWorkerStats = 1024;

std::string encodeGridRequest(const GridRequestMsg &M);
std::string encodeCellAssign(const CellAssignMsg &M);
std::string encodeCellResult(const CellResultMsg &M);
std::string encodeHello(const HelloMsg &M);
std::string encodeHeartbeat(const HeartbeatMsg &M);
std::string encodeDone(const DoneMsg &M);
std::string encodeErrorMsg(const ErrorMsg &M);
std::string encodeStatsRequest(const StatsRequestMsg &M);
std::string encodeStatsReply(const StatsReplyMsg &M);

/// Strict decoders: InvalidInput on any malformed, truncated, trailing or
/// out-of-range byte; the message is never partially applied.
Expected<GridRequestMsg> decodeGridRequest(const std::string &Payload);
Expected<CellAssignMsg> decodeCellAssign(const std::string &Payload);
Expected<CellResultMsg> decodeCellResult(const std::string &Payload);
Expected<HelloMsg> decodeHello(const std::string &Payload);
Expected<HeartbeatMsg> decodeHeartbeat(const std::string &Payload);
Expected<DoneMsg> decodeDone(const std::string &Payload);
Expected<ErrorMsg> decodeErrorMsg(const std::string &Payload);
Expected<StatsRequestMsg> decodeStatsRequest(const std::string &Payload);
Expected<StatsReplyMsg> decodeStatsReply(const std::string &Payload);

} // namespace serve
} // namespace dynace

#endif // DYNACE_SERVE_PROTOCOL_H
