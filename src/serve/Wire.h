//===- serve/Wire.h - Length-prefixed framed transport ----------*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The framing layer of the distributed experiment service (DESIGN.md §16):
/// every message between the dynace-serve coordinator, its worker
/// processes and the dynace-submit client travels as one frame over a
/// local stream socket.
///
/// Frame layout (all integers little-endian):
///
///   offset  size  field
///        0     4  magic "DYNW"
///        4     1  wire version (kWireVersion)
///        5     1  frame type (FrameType)
///        6     4  payload length (bytes; <= kMaxFramePayload)
///       10     8  FNV-1a-64 checksum over type byte + payload
///       18   len  payload
///
/// Bytes off the wire are never trusted: decodeFrame() rejects bad magic,
/// unknown versions/types, oversized lengths and checksum mismatches with
/// a structured InvalidInput status, and a peer that feeds garbage is cut
/// off rather than reasoned with. Truncation at *any* byte offset parses
/// as "incomplete" (recvFrame keeps reading) or, at EOF, as Unavailable —
/// never as a different message (pinned by the serve_wire fuzz test,
/// which truncates and bit-flips a frame at every offset).
///
/// sendFrame()/recvFrame() arm the deterministic fault-injection sites
/// `rpc.send` / `rpc.recv` (support/FaultInjector.h) before touching the
/// socket, so transport loss is reproducible on demand.
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_SERVE_WIRE_H
#define DYNACE_SERVE_WIRE_H

#include "support/Status.h"

#include <cstdint>
#include <string>

namespace dynace {
namespace serve {

/// Wire format version; bump on any change to the frame layout or to a
/// message payload encoding. Peers of a different version are rejected at
/// decode (a version skew must never be half-understood).
/// v2: Hello carries the worker trace epoch, CellAssign a trace context
/// (grid id + dispatch attempt), CellResult the worker's span buffer and
/// metrics delta; StatsRequest/StatsReply added.
inline constexpr uint8_t kWireVersion = 2;

/// Frame header size in bytes (magic + version + type + length + checksum).
inline constexpr size_t kFrameHeaderSize = 18;

/// Hard cap on a frame payload. Large enough for a full grid report,
/// small enough that a corrupted length field cannot drive an allocation
/// bomb.
inline constexpr uint32_t kMaxFramePayload = 32u << 20;

/// Message kinds of the serve protocol (payload encodings in Protocol.h).
enum class FrameType : uint8_t {
  Hello = 1,    ///< worker -> coordinator: "worker <id> is live".
  GridRequest,  ///< client -> daemon: run this list of cells.
  CellAssign,   ///< coordinator -> worker: lease one cell.
  CellResult,   ///< worker -> coordinator: terminal outcome of a cell.
  Heartbeat,    ///< worker -> coordinator: liveness while simulating.
  Shutdown,     ///< "stop after current work" (daemon and workers).
  Done,         ///< daemon -> client: grid complete + report text.
  Error,        ///< either direction: structured failure message.
  StatsRequest, ///< client -> daemon (stats socket): introspection poll.
  StatsReply,   ///< daemon -> client: live fleet/grid state snapshot.
};

/// \returns the spelling of \p T (for diagnostics), or "?".
const char *frameTypeName(FrameType T);

/// One decoded frame.
struct Frame {
  FrameType Type = FrameType::Error;
  std::string Payload;
};

/// FNV-1a 64-bit over \p Size bytes at \p Data.
uint64_t fnv1a64(const void *Data, size_t Size,
                 uint64_t Seed = 14695981039346656037ull);

/// Encodes a frame of \p Type around \p Payload.
/// \returns the full wire bytes (header + payload). Payloads above
///          kMaxFramePayload are a caller bug and are reported via a
///          fatal error (they cannot be represented on the wire).
std::string encodeFrame(FrameType Type, const std::string &Payload);

/// Parses one frame from the front of \p Bytes without consuming input.
///
/// Outcomes:
///  * ok — a complete, checksummed frame; \p Consumed is set to its total
///    size (header + payload);
///  * IoError "incomplete frame" — \p Bytes is a valid prefix; read more;
///  * InvalidInput — the bytes can never become a valid frame (bad magic,
///    version or type, oversized length, checksum mismatch). The caller
///    must drop the connection; resynchronising inside a corrupt stream
///    is guessing.
/// \returns the frame or the status above.
Expected<Frame> decodeFrame(const std::string &Bytes, size_t &Consumed);

/// Sends one frame over socket \p Fd (blocking, handles partial writes,
/// MSG_NOSIGNAL so a dead peer reports instead of killing the process).
/// Arms fault site `rpc.send` first.
/// \returns ok, or Injected / Unavailable (peer gone: EPIPE, ECONNRESET)
///          / IoError (other send failure).
Status sendFrame(int Fd, FrameType Type, const std::string &Payload);

/// Receives exactly one frame from socket \p Fd. Arms fault site
/// `rpc.recv` first (a fired injection reads nothing — the frame stays
/// queued for a later, luckier receiver of the stream's next owner; the
/// caller must treat the peer as lost).
///
/// \param TimeoutMs poll budget for the *first* byte; -1 blocks forever.
///        Once a header starts arriving the frame is read to completion.
/// \returns the frame, or Timeout (no data inside \p TimeoutMs) /
///          Unavailable (clean EOF before a frame, or mid-frame EOF) /
///          InvalidInput (corrupt bytes, via decodeFrame) / Injected.
Expected<Frame> recvFrame(int Fd, int TimeoutMs = -1);

} // namespace serve
} // namespace dynace

#endif // DYNACE_SERVE_WIRE_H
