//===- serve/Worker.h - Serve worker process main ---------------*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The worker half of the distributed experiment service. A worker is a
/// fork()ed child of the coordinator sharing one socketpair end with it;
/// it announces itself (Hello), then loops: receive a CellAssign, run the
/// cell via sim/ExperimentRunner.h runExperimentCell() — the exact same
/// execution core as the in-process pipeline, so results are bit-identical
/// — and reply with a CellResult carrying the serialized result text and
/// its content-addressed cache key.
///
/// A heartbeat thread sends a Heartbeat frame every \p HeartbeatMs while
/// the main thread simulates, so the coordinator can tell "slow cell"
/// from "dead worker". Both threads share the socket through one send
/// mutex (frames must never interleave).
///
/// Workers never return: every exit path is _exit(2) —
///  * kWorkerExitClean (0): Shutdown frame or coordinator EOF;
///  * kWorkerExitError (2): transport/protocol failure;
///  * kWorkerExitCrash (3): the deterministic `worker.crash` fault site
///    fired on a CellAssign — the chaos tests' stand-in for a real crash.
/// _exit skips atexit handlers (trace flush, sanitizer leak check), which
/// is deliberate: a worker shares the parent's inherited state and must
/// not flush or double-report it.
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_SERVE_WORKER_H
#define DYNACE_SERVE_WORKER_H

#include "serve/Protocol.h"
#include "sim/System.h"

#include <cstdint>

namespace dynace {
namespace serve {

inline constexpr int kWorkerExitClean = 0;
inline constexpr int kWorkerExitError = 2;
inline constexpr int kWorkerExitCrash = 3;

/// Runs one assigned cell to its terminal outcome (runExperimentCell
/// under \p Base) and encodes the CellResult reply: serialized result
/// text, content-addressed cache key, outcome taxonomy. Shared by the
/// worker loop and by the coordinator's inline-fallback path, so both
/// produce byte-identical records. An unknown benchmark name yields a
/// Failed/InvalidInput reply (Attempts = 0), never a crash.
/// \returns the encoded reply message.
CellResultMsg runServeCell(const CellAssignMsg &Assign,
                           const SimulationOptions &Base);

/// Runs the worker protocol loop on socket \p Fd. Never returns (always
/// _exit with one of the codes above).
///
/// \param Fd the worker's socketpair end to the coordinator.
/// \param WorkerId this worker's id (echoed in Hello and Heartbeats).
/// \param HeartbeatMs heartbeat period; 0 disables the heartbeat thread.
/// \param Base simulation options shared by every cell (SchemeKind is
///        overridden per assignment).
[[noreturn]] void serveWorkerMain(int Fd, uint64_t WorkerId,
                                  uint64_t HeartbeatMs,
                                  const SimulationOptions &Base);

} // namespace serve
} // namespace dynace

#endif // DYNACE_SERVE_WORKER_H
