//===- power/EnergyModel.cpp ----------------------------------------------==//

#include "power/EnergyModel.h"

#include <cmath>

using namespace dynace;

static double sizeScale(uint64_t SizeBytes, uint64_t RefBytes,
                        double Exponent) {
  return std::pow(static_cast<double>(SizeBytes) /
                      static_cast<double>(RefBytes),
                  Exponent);
}

double EnergyModel::l1DynamicAccess(const CacheGeometry &G) const {
  return Params.L1DynamicAt64K *
         sizeScale(G.SizeBytes, 64 * 1024, Params.DynamicExponent);
}

double EnergyModel::l2DynamicAccess(const CacheGeometry &G) const {
  return Params.L2DynamicAt1M *
         sizeScale(G.SizeBytes, 1024 * 1024, Params.DynamicExponent);
}

double EnergyModel::l1LeakagePerCycle(const CacheGeometry &G) const {
  return Params.L1LeakagePer64K * static_cast<double>(G.SizeBytes) /
         static_cast<double>(64 * 1024);
}

double EnergyModel::l2LeakagePerCycle(const CacheGeometry &G) const {
  return Params.L2LeakagePer1M * static_cast<double>(G.SizeBytes) /
         static_cast<double>(1024 * 1024);
}
