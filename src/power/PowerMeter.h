//===- power/PowerMeter.h - Energy accounting -------------------*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Accumulates cache energy over a simulation:
///
///  * dynamic energy — per-setting access counts (kept by the
///    ReconfigurableCache) times the per-setting access energy, so every
///    access is charged at the energy of the configuration that served it;
///  * leakage energy — integrated over cycles at the active setting; the
///    simulator calls syncLeakage() before every reconfiguration and before
///    reading totals;
///  * reconfiguration energy — the paper's "power consumed for writing dirty
///    cache lines into the lower level of memory hierarchy": reading the
///    dirty line plus transferring it (the receiving level's write energy is
///    already counted in that level's dynamic accesses).
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_POWER_POWERMETER_H
#define DYNACE_POWER_POWERMETER_H

#include "cache/MemoryHierarchy.h"
#include "power/EnergyModel.h"

namespace dynace {

/// Per-cache energy breakdown (nanojoules).
struct EnergyBreakdown {
  double Dynamic = 0.0;
  double Leakage = 0.0;
  double Reconfig = 0.0;

  double total() const { return Dynamic + Leakage + Reconfig; }
};

/// Tracks the energy of one MemoryHierarchy over a run.
class PowerMeter {
public:
  PowerMeter(const MemoryHierarchy &Hierarchy, const EnergyModel &Model);

  /// Integrates leakage from the last sync point to \p CycleNow at the
  /// currently active settings. Must be called before any reconfiguration
  /// and before reading energies. \p CycleNow must not decrease.
  void syncLeakage(uint64_t CycleNow);

  /// L1D energy so far (call syncLeakage first for up-to-date leakage).
  EnergyBreakdown l1dEnergy() const;

  /// L2 energy so far.
  EnergyBreakdown l2Energy() const;

  /// L1I energy so far (fixed configuration).
  EnergyBreakdown l1iEnergy() const;

  /// Main-memory access energy so far.
  double memoryEnergy() const;

  /// Grand total across caches and memory; the tuner's objective.
  double totalEnergy() const;

  const EnergyModel &model() const { return Model; }

private:
  const MemoryHierarchy &Hierarchy;
  const EnergyModel &Model;
  uint64_t LastSyncCycle = 0;
  double L1DLeakage = 0.0;
  double L2Leakage = 0.0;
  double L1ILeakage = 0.0;
};

} // namespace dynace

#endif // DYNACE_POWER_POWERMETER_H
