//===- power/PowerMeter.cpp -----------------------------------------------==//

#include "power/PowerMeter.h"

#include <cassert>

using namespace dynace;

PowerMeter::PowerMeter(const MemoryHierarchy &Hierarchy,
                       const EnergyModel &Model)
    : Hierarchy(Hierarchy), Model(Model) {}

void PowerMeter::syncLeakage(uint64_t CycleNow) {
  assert(CycleNow >= LastSyncCycle && "cycle time moved backwards");
  double Elapsed = static_cast<double>(CycleNow - LastSyncCycle);
  LastSyncCycle = CycleNow;
  L1DLeakage += Elapsed * Model.l1LeakagePerCycle(Hierarchy.l1d().geometry());
  L2Leakage += Elapsed * Model.l2LeakagePerCycle(Hierarchy.l2().geometry());
  L1ILeakage +=
      Elapsed * Model.l1LeakagePerCycle(Hierarchy.l1i().geometry());
}

EnergyBreakdown PowerMeter::l1dEnergy() const {
  EnergyBreakdown E;
  const ReconfigurableCache &C = Hierarchy.l1d();
  for (unsigned S = 0, N = C.numSettings(); S != N; ++S)
    E.Dynamic += static_cast<double>(C.statsOf(S).accesses()) *
                 Model.l1DynamicAccess(C.geometryOf(S));
  E.Leakage = L1DLeakage;
  // Flush: read each dirty line out (charged at the largest setting, a
  // conservative bound) and drive it across the bus.
  E.Reconfig = static_cast<double>(C.reconfigurationWritebacks()) *
               (Model.l1DynamicAccess(C.geometryOf(0)) +
                Model.flushLineTransfer());
  return E;
}

EnergyBreakdown PowerMeter::l2Energy() const {
  EnergyBreakdown E;
  const ReconfigurableCache &C = Hierarchy.l2();
  for (unsigned S = 0, N = C.numSettings(); S != N; ++S)
    E.Dynamic += static_cast<double>(C.statsOf(S).accesses()) *
                 Model.l2DynamicAccess(C.geometryOf(S));
  E.Leakage = L2Leakage;
  E.Reconfig = static_cast<double>(C.reconfigurationWritebacks()) *
               (Model.l2DynamicAccess(C.geometryOf(0)) +
                Model.flushLineTransfer());
  return E;
}

EnergyBreakdown PowerMeter::l1iEnergy() const {
  EnergyBreakdown E;
  const Cache &C = Hierarchy.l1i();
  E.Dynamic = static_cast<double>(C.stats().accesses()) *
              Model.l1DynamicAccess(C.geometry());
  E.Leakage = L1ILeakage;
  return E;
}

double PowerMeter::memoryEnergy() const {
  return static_cast<double>(Hierarchy.memoryReads() +
                             Hierarchy.memoryWrites()) *
         Model.memoryAccess();
}

double PowerMeter::totalEnergy() const {
  return l1dEnergy().total() + l2Energy().total() + l1iEnergy().total() +
         memoryEnergy();
}
