//===- power/EnergyModel.h - Cache energy parameters ------------*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An analytic cache energy model standing in for the paper's Wattch-based
/// power model (1 GHz, 2 V). Absolute joules are calibration constants; the
/// experiments report energy *reductions*, which depend only on the relative
/// energies across configurations:
///
///   dynamic per-access energy  ~ SizeBytes^0.7   (bitline/wordline scaling,
///                                                 CACTI-like exponent)
///   leakage power              ~ SizeBytes       (proportional to SRAM area)
///
/// With these, the L1D energy is dominated by dynamic access energy (it is
/// touched by every load/store) while the L2 energy is dominated by leakage
/// (few accesses, large array) — the regime the paper's Figure 3 reflects.
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_POWER_ENERGYMODEL_H
#define DYNACE_POWER_ENERGYMODEL_H

#include "cache/Cache.h"

#include <cstdint>

namespace dynace {

/// Tunable constants of the analytic model.
struct EnergyModelParams {
  /// Dynamic energy (nJ) of one access to a 64 KB, 2-way, 64 B-block array.
  double L1DynamicAt64K = 1.0;
  /// Dynamic energy (nJ) of one access to a 1 MB, 4-way, 128 B-block array.
  double L2DynamicAt1M = 3.0;
  /// Leakage power (nJ/cycle at 1 GHz, i.e. W) per 64 KB of L1-style SRAM.
  double L1LeakagePer64K = 0.05;
  /// Leakage power (nJ/cycle) per 1 MB of L2-style SRAM.
  double L2LeakagePer1M = 0.40;
  /// Size-scaling exponent for dynamic access energy.
  double DynamicExponent = 0.7;
  /// Energy (nJ) to drive one cache line over the bus during a
  /// reconfiguration flush, in addition to the next level's write energy.
  double FlushLineTransfer = 0.2;
  /// Energy (nJ) of one main-memory access (used in the tuner's total-energy
  /// objective so that undersized caches pay for the traffic they create).
  double MemoryAccess = 5.0;
  /// Dynamic energy (nJ) per executed instruction of a 64-entry issue
  /// window (CAM wakeup + select; Ponomarev et al.'s adaptive RUU).
  double WindowDynamicAt64 = 0.3;
  /// Leakage power (nJ/cycle) of a 64-entry issue window.
  double WindowLeakageAt64 = 0.02;
};

/// Computes per-configuration energies.
class EnergyModel {
public:
  explicit EnergyModel(const EnergyModelParams &P = EnergyModelParams())
      : Params(P) {}

  /// Dynamic energy (nJ) per access for an L1-class array of \p G's size.
  double l1DynamicAccess(const CacheGeometry &G) const;

  /// Dynamic energy (nJ) per access for an L2-class array of \p G's size.
  double l2DynamicAccess(const CacheGeometry &G) const;

  /// Leakage power (nJ/cycle) for an L1-class array of \p G's size.
  double l1LeakagePerCycle(const CacheGeometry &G) const;

  /// Leakage power (nJ/cycle) for an L2-class array of \p G's size.
  double l2LeakagePerCycle(const CacheGeometry &G) const;

  /// Extra per-line transfer energy charged on reconfiguration flushes.
  double flushLineTransfer() const { return Params.FlushLineTransfer; }

  /// Energy of one main-memory access.
  double memoryAccess() const { return Params.MemoryAccess; }

  /// Dynamic energy per instruction for an issue window of \p Entries
  /// (CAM structures scale ~linearly with entry count).
  double windowDynamicPerInstr(uint32_t Entries) const {
    return Params.WindowDynamicAt64 * static_cast<double>(Entries) / 64.0;
  }

  /// Leakage power (nJ/cycle) for an issue window of \p Entries.
  double windowLeakagePerCycle(uint32_t Entries) const {
    return Params.WindowLeakageAt64 * static_cast<double>(Entries) / 64.0;
  }

  const EnergyModelParams &params() const { return Params; }

private:
  EnergyModelParams Params;
};

} // namespace dynace

#endif // DYNACE_POWER_ENERGYMODEL_H
