//===- isa/Program.h - Methods and programs ---------------------*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// \c Method and \c Program: the static code representation loaded by the
/// VM. A program is a set of methods plus statically allocated global data
/// regions; methods are the unit of hotspot detection, mirroring Jikes RVM
/// where hotspots are procedures.
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_ISA_PROGRAM_H
#define DYNACE_ISA_PROGRAM_H

#include "isa/Instruction.h"
#include "support/Status.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dynace {

/// Identifies a method within its program.
using MethodId = uint32_t;

/// Base byte address of the code region (instruction-cache address space).
inline constexpr uint64_t kCodeBase = 0x40000000ull;

/// Base byte address of the data region (data-cache address space).
inline constexpr uint64_t kHeapBase = 0x00010000ull;

/// Tenant tag value for methods that belong to no tenant (single-tenant
/// programs, and the interleaving driver of a multi-tenant mix).
inline constexpr uint16_t kNoTenant = 0;

/// One procedure: a name, a register budget and a code vector.
struct Method {
  std::string Name;
  MethodId Id = 0;
  std::vector<Instruction> Code;
  /// Byte address of Code[0]; assigned by Program::finalize().
  uint64_t CodeBase = 0;
  /// Owning tenant in a multi-tenant mix (1-based; kNoTenant = unowned).
  /// Purely attributive: execution semantics ignore it, but the DO system
  /// uses it to attribute hotspots and count cross-tenant switches.
  uint16_t Tenant = kNoTenant;

  /// \returns the byte address of the instruction at \p Index.
  uint64_t pcOf(size_t Index) const {
    return CodeBase + static_cast<uint64_t>(Index) * kInstrBytes;
  }
};

/// A complete executable program.
class Program {
public:
  /// A deep-verification pass finalize() can run after its structural
  /// checks. The canonical hook is \c analysis::verifyProgramStatus (the
  /// dynalint strict mode); the indirection keeps the ISA layer free of a
  /// dependency on the analysis library.
  using VerifyHook = Status (*)(const Program &);

  /// Adds a method and \returns its id. The method's Id field is filled in.
  MethodId addMethod(Method M);

  /// Reserves \p Words 8-byte words of statically addressed global data and
  /// \returns the base byte address of the region. Addresses are assigned
  /// deterministically so the generated code can embed them as immediates.
  uint64_t addGlobal(uint64_t Words);

  /// Assigns code addresses to all methods and verifies the program:
  /// always the structural checks (targets in range, terminator present),
  /// then \p Strict when non-null — the dynalint strict mode, normally
  /// \c analysis::verifyProgramStatus, which adds the CFG and DO/ACE
  /// placement checks (DESIGN.md section 13).
  /// \returns success, or an InvalidInput error describing the first
  ///          verification failure (the program stays unfinalized).
  Status finalize(VerifyHook Strict = nullptr);

  /// Sets/gets the entry method.
  void setEntry(MethodId Id) { Entry = Id; }
  MethodId entry() const { return Entry; }

  const Method &method(MethodId Id) const { return Methods[Id]; }
  Method &method(MethodId Id) { return Methods[Id]; }
  size_t numMethods() const { return Methods.size(); }

  /// Total statically allocated global words (the VM sizes its heap from
  /// this plus a dynamic-allocation margin).
  uint64_t globalWords() const { return GlobalWords; }

  /// Highest tenant tag across all methods: 0 for single-tenant programs,
  /// the tenant count for a generated mix (tenants are tagged 1..N).
  uint16_t maxTenant() const {
    uint16_t Max = kNoTenant;
    for (const Method &M : Methods)
      if (M.Tenant > Max)
        Max = M.Tenant;
    return Max;
  }

  /// Total static instruction count across all methods.
  uint64_t staticInstructionCount() const;

  bool isFinalized() const { return Finalized; }

private:
  /// Verifies one method: branch targets in range, register indices valid,
  /// call targets valid, terminator present.
  /// \returns success or an InvalidInput error.
  Status verifyMethod(const Method &M) const;

  std::vector<Method> Methods;
  MethodId Entry = 0;
  uint64_t GlobalWords = 0;
  bool Finalized = false;
};

} // namespace dynace

#endif // DYNACE_ISA_PROGRAM_H
