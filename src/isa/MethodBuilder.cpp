//===- isa/MethodBuilder.cpp ----------------------------------------------==//

#include "isa/MethodBuilder.h"

#include <bit>
#include <cassert>

using namespace dynace;

MethodBuilder::Label MethodBuilder::newLabel() {
  LabelTargets.push_back(kUnbound);
  return static_cast<Label>(LabelTargets.size() - 1);
}

MethodBuilder &MethodBuilder::bind(Label L) {
  assert(L < LabelTargets.size() && "unknown label");
  assert(LabelTargets[L] == kUnbound && "label bound twice");
  LabelTargets[L] = static_cast<int64_t>(M.Code.size());
  return *this;
}

Instruction &MethodBuilder::emit(Opcode Op) {
  Instruction In;
  In.Op = Op;
  M.Code.push_back(In);
  return M.Code.back();
}

MethodBuilder &MethodBuilder::iconst(Reg Dst, int64_t Imm) {
  Instruction &In = emit(Opcode::IConst);
  In.Dst = Dst;
  In.Imm = Imm;
  return *this;
}

MethodBuilder &MethodBuilder::fconst(Reg Dst, double Value) {
  return iconst(Dst, std::bit_cast<int64_t>(Value));
}

MethodBuilder &MethodBuilder::mov(Reg Dst, Reg Src) {
  Instruction &In = emit(Opcode::Mov);
  In.Dst = Dst;
  In.Src1 = Src;
  return *this;
}

#define DYNACE_BIN_OP(NAME, OP)                                              \
  MethodBuilder &MethodBuilder::NAME(Reg Dst, Reg A, Reg B) {                \
    Instruction &In = emit(Opcode::OP);                                      \
    In.Dst = Dst;                                                            \
    In.Src1 = A;                                                             \
    In.Src2 = B;                                                             \
    return *this;                                                            \
  }

DYNACE_BIN_OP(add, Add)
DYNACE_BIN_OP(sub, Sub)
DYNACE_BIN_OP(mul, Mul)
DYNACE_BIN_OP(div, Div)
DYNACE_BIN_OP(rem, Rem)
DYNACE_BIN_OP(and_, And)
DYNACE_BIN_OP(or_, Or)
DYNACE_BIN_OP(xor_, Xor)
DYNACE_BIN_OP(shl, Shl)
DYNACE_BIN_OP(shr, Shr)
DYNACE_BIN_OP(fadd, FAdd)
DYNACE_BIN_OP(fsub, FSub)
DYNACE_BIN_OP(fmul, FMul)
DYNACE_BIN_OP(fdiv, FDiv)
#undef DYNACE_BIN_OP

#define DYNACE_IMM_OP(NAME, OP)                                              \
  MethodBuilder &MethodBuilder::NAME(Reg Dst, Reg A, int64_t Imm) {          \
    Instruction &In = emit(Opcode::OP);                                      \
    In.Dst = Dst;                                                            \
    In.Src1 = A;                                                             \
    In.Imm = Imm;                                                            \
    return *this;                                                            \
  }

DYNACE_IMM_OP(addi, AddI)
DYNACE_IMM_OP(muli, MulI)
DYNACE_IMM_OP(andi, AndI)
#undef DYNACE_IMM_OP

MethodBuilder &MethodBuilder::load(Reg Dst, Reg Base, int64_t Disp) {
  Instruction &In = emit(Opcode::Load);
  In.Dst = Dst;
  In.Src1 = Base;
  In.Imm = Disp;
  return *this;
}

MethodBuilder &MethodBuilder::store(Reg Base, Reg Value, int64_t Disp) {
  Instruction &In = emit(Opcode::Store);
  In.Src1 = Base;
  In.Src2 = Value;
  In.Imm = Disp;
  return *this;
}

MethodBuilder &MethodBuilder::loadIdx(Reg Dst, Reg Base, Reg Index,
                                      int64_t Disp) {
  Instruction &In = emit(Opcode::LoadIdx);
  In.Dst = Dst;
  In.Src1 = Base;
  In.Src2 = Index;
  In.Imm = Disp;
  return *this;
}

MethodBuilder &MethodBuilder::storeIdx(Reg Base, Reg Index, Reg Value,
                                       int64_t Disp) {
  Instruction &In = emit(Opcode::StoreIdx);
  In.Src1 = Base;
  In.Dst = Index;
  In.Src2 = Value;
  In.Imm = Disp;
  return *this;
}

MethodBuilder &MethodBuilder::br(CondKind Cond, Reg A, Reg B, Label Target) {
  Instruction &In = emit(Opcode::Br);
  In.Cond = Cond;
  In.Src1 = A;
  In.Src2 = B;
  Fixups.push_back({M.Code.size() - 1, Target});
  return *this;
}

MethodBuilder &MethodBuilder::bri(CondKind Cond, Reg A, int64_t Imm,
                                  Label Target) {
  Instruction &In = emit(Opcode::BrI);
  In.Cond = Cond;
  In.Src1 = A;
  In.Aux = Imm;
  Fixups.push_back({M.Code.size() - 1, Target});
  return *this;
}

MethodBuilder &MethodBuilder::jmp(Label Target) {
  emit(Opcode::Jmp);
  Fixups.push_back({M.Code.size() - 1, Target});
  return *this;
}

MethodBuilder &MethodBuilder::call(Reg Dst, MethodId Callee, Reg FirstArg,
                                   unsigned NumArgs) {
  Instruction &In = emit(Opcode::Call);
  In.Dst = Dst;
  In.Imm = static_cast<int64_t>(Callee);
  In.Src1 = NumArgs == 0 ? kNoReg : FirstArg;
  In.Src2 = static_cast<uint8_t>(NumArgs);
  return *this;
}

MethodBuilder &MethodBuilder::ret(Reg Value) {
  Instruction &In = emit(Opcode::Ret);
  In.Src1 = Value;
  return *this;
}

MethodBuilder &MethodBuilder::halt() {
  emit(Opcode::Halt);
  return *this;
}

MethodBuilder &MethodBuilder::alloc(Reg Dst, Reg Words) {
  Instruction &In = emit(Opcode::Alloc);
  In.Dst = Dst;
  In.Src1 = Words;
  return *this;
}

Method MethodBuilder::take() {
  for (auto &[Index, L] : Fixups) {
    assert(L < LabelTargets.size() && "fixup references unknown label");
    assert(LabelTargets[L] != kUnbound && "fixup references unbound label");
    M.Code[Index].Imm = LabelTargets[L];
  }
  Fixups.clear();
  LabelTargets.clear();
  return std::move(M);
}
