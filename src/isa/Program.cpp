//===- isa/Program.cpp ----------------------------------------------------==//

#include "isa/Program.h"

#include <cassert>

using namespace dynace;

MethodId Program::addMethod(Method M) {
  assert(!Finalized && "cannot add methods after finalize()");
  MethodId Id = static_cast<MethodId>(Methods.size());
  M.Id = Id;
  Methods.push_back(std::move(M));
  return Id;
}

uint64_t Program::addGlobal(uint64_t Words) {
  assert(Words > 0 && "empty global region");
  uint64_t Base = kHeapBase + GlobalWords * 8;
  GlobalWords += Words;
  return Base;
}

uint64_t Program::staticInstructionCount() const {
  uint64_t N = 0;
  for (const Method &M : Methods)
    N += M.Code.size();
  return N;
}

Status Program::verifyMethod(const Method &M) const {
  auto Fail = [&](const std::string &Msg) {
    return Status::error(ErrorCode::InvalidInput,
                         "method '" + M.Name + "': " + Msg);
  };

  if (M.Code.empty())
    return Fail("empty code");

  auto RegOk = [](uint8_t R) { return R == kNoReg || R < kNumRegs; };
  for (size_t I = 0, E = M.Code.size(); I != E; ++I) {
    const Instruction &In = M.Code[I];
    if (!RegOk(In.Dst) || !RegOk(In.Src1) || !RegOk(In.Src2))
      return Fail("register index out of range at instruction " +
                  std::to_string(I));
    switch (In.Op) {
    case Opcode::Br:
    case Opcode::BrI:
    case Opcode::Jmp:
      if (In.Imm < 0 || static_cast<size_t>(In.Imm) >= M.Code.size())
        return Fail("branch target out of range at instruction " +
                    std::to_string(I));
      break;
    case Opcode::Call: {
      if (In.Imm < 0 || static_cast<size_t>(In.Imm) >= Methods.size())
        return Fail("call target out of range at instruction " +
                    std::to_string(I));
      unsigned NumArgs = In.Src2 == kNoReg ? 0 : In.Src2;
      if (NumArgs > kNumRegs ||
          (NumArgs > 0 && (In.Src1 == kNoReg || In.Src1 + NumArgs > kNumRegs)))
        return Fail("bad call argument window at instruction " +
                    std::to_string(I));
      break;
    }
    default:
      break;
    }
  }

  // Falling off the end of a method is a verification error: the last
  // instruction must be an unconditional transfer.
  const Instruction &Last = M.Code.back();
  if (Last.Op != Opcode::Ret && Last.Op != Opcode::Halt &&
      Last.Op != Opcode::Jmp)
    return Fail("method does not end in ret/halt/jmp");
  return Status();
}

Status Program::finalize(VerifyHook Strict) {
  assert(!Finalized && "finalize() called twice");
  if (Methods.empty())
    return Status::error(ErrorCode::InvalidInput, "program has no methods");
  if (Entry >= Methods.size())
    return Status::error(ErrorCode::InvalidInput,
                         "entry method id out of range");

  uint64_t Base = kCodeBase;
  for (Method &M : Methods) {
    M.CodeBase = Base;
    Base += static_cast<uint64_t>(M.Code.size()) * kInstrBytes;
    if (Status S = verifyMethod(M); !S)
      return S;
  }
  if (Strict)
    if (Status S = Strict(*this); !S)
      return S;
  Finalized = true;
  return Status();
}
