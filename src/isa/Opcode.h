//===- isa/Opcode.h - Bytecode opcode definitions ---------------*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The register-based bytecode ISA executed by the DynACE virtual machine.
///
/// The paper's evaluation runs Java bytecode under Jikes RVM on Dynamic
/// SimpleScalar. Our substitute is a compact register VM: each executed
/// bytecode is one dynamic instruction of a given microarchitectural class
/// (integer ALU, multiply, load, store, branch, ...), which is exactly the
/// granularity the timing, cache and power models consume.
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_ISA_OPCODE_H
#define DYNACE_ISA_OPCODE_H

#include <cstddef>
#include <cstdint>

namespace dynace {

/// Bytecode operations.
enum class Opcode : uint8_t {
  IConst,   ///< Dst = Imm
  Mov,      ///< Dst = Src1
  Add,      ///< Dst = Src1 + Src2
  Sub,      ///< Dst = Src1 - Src2
  Mul,      ///< Dst = Src1 * Src2
  Div,      ///< Dst = Src1 / Src2 (0 when Src2 == 0)
  Rem,      ///< Dst = Src1 % Src2 (0 when Src2 == 0)
  And,      ///< Dst = Src1 & Src2
  Or,       ///< Dst = Src1 | Src2
  Xor,      ///< Dst = Src1 ^ Src2
  Shl,      ///< Dst = Src1 << (Src2 & 63)
  Shr,      ///< Dst = Src1 >> (Src2 & 63) (logical)
  AddI,     ///< Dst = Src1 + Imm
  MulI,     ///< Dst = Src1 * Imm
  AndI,     ///< Dst = Src1 & Imm
  FAdd,     ///< Dst = fp(Src1) + fp(Src2)
  FSub,     ///< Dst = fp(Src1) - fp(Src2)
  FMul,     ///< Dst = fp(Src1) * fp(Src2)
  FDiv,     ///< Dst = fp(Src1) / fp(Src2)
  Load,     ///< Dst = mem[Src1 + Imm]
  Store,    ///< mem[Src1 + Imm] = Src2
  LoadIdx,  ///< Dst = mem[Src1 + Src2 * 8 + Imm]
  StoreIdx, ///< mem[Src1 + Dst * 8 + Imm] = Src2 (Dst holds the index reg)
  Br,       ///< if (Src1 <Cond> Src2) goto Imm (instruction index)
  BrI,      ///< if (Src1 <Cond> Imm2) goto Imm (Imm2 packed in Aux)
  Jmp,      ///< goto Imm (instruction index)
  Call,     ///< call method Imm; copies Src2 args from [Src1..) into callee
            ///< r0..; return value lands in Dst
  Ret,      ///< return Src1 to the caller
  Alloc,    ///< Dst = address of a fresh region of Src1 words
  Halt,     ///< stop the program
};

/// Comparison kinds for Br / BrI.
enum class CondKind : uint8_t { Eq, Ne, Lt, Le, Gt, Ge };

/// Microarchitectural operation classes consumed by the timing model
/// (mirrors SimpleScalar's functional-unit classes in Table 2).
enum class OpClass : uint8_t {
  IntAlu,
  IntMult,
  IntDiv,
  FpAlu,
  FpMultDiv,
  Load,
  Store,
  Branch, ///< conditional branches (predicted)
  Jump,   ///< unconditional control flow: Jmp / Call / Ret
  Other,
};

/// Number of OpClass values (lookup tables in the timing model index by
/// class).
inline constexpr unsigned kNumOpClasses = 10;

namespace detail {
/// Timing class per opcode, indexed by the opcode's integral value. Kept
/// as a table (not a switch) so the per-instruction hot loops compile the
/// lookup to one load.
inline constexpr OpClass kOpClassTable[] = {
    OpClass::IntAlu,    // IConst
    OpClass::IntAlu,    // Mov
    OpClass::IntAlu,    // Add
    OpClass::IntAlu,    // Sub
    OpClass::IntMult,   // Mul
    OpClass::IntDiv,    // Div
    OpClass::IntDiv,    // Rem
    OpClass::IntAlu,    // And
    OpClass::IntAlu,    // Or
    OpClass::IntAlu,    // Xor
    OpClass::IntAlu,    // Shl
    OpClass::IntAlu,    // Shr
    OpClass::IntAlu,    // AddI
    OpClass::IntMult,   // MulI
    OpClass::IntAlu,    // AndI
    OpClass::FpAlu,     // FAdd
    OpClass::FpAlu,     // FSub
    OpClass::FpMultDiv, // FMul
    OpClass::FpMultDiv, // FDiv
    OpClass::Load,      // Load
    OpClass::Store,     // Store
    OpClass::Load,      // LoadIdx
    OpClass::Store,     // StoreIdx
    OpClass::Branch,    // Br
    OpClass::Branch,    // BrI
    OpClass::Jump,      // Jmp
    OpClass::Jump,      // Call
    OpClass::Jump,      // Ret
    OpClass::Other,     // Alloc
    OpClass::Other,     // Halt
};
static_assert(sizeof(kOpClassTable) / sizeof(kOpClassTable[0]) ==
                  static_cast<size_t>(Opcode::Halt) + 1,
              "opcode/class table out of sync");
} // namespace detail

/// \returns the timing class of \p Op.
inline constexpr OpClass opClassOf(Opcode Op) {
  return detail::kOpClassTable[static_cast<size_t>(Op)];
}

/// \returns a printable mnemonic for \p Op.
const char *opcodeName(Opcode Op);

/// \returns a printable name for \p Cond ("eq", "ne", ...).
const char *condName(CondKind Cond);

/// Number of virtual registers per frame.
inline constexpr unsigned kNumRegs = 32;

/// Byte size of one encoded instruction; used to derive instruction-cache
/// addresses (PC = method code base + index * kInstrBytes).
inline constexpr uint64_t kInstrBytes = 4;

} // namespace dynace

#endif // DYNACE_ISA_OPCODE_H
