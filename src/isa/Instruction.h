//===- isa/Instruction.h - Bytecode instruction encoding --------*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The in-memory representation of one bytecode instruction.
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_ISA_INSTRUCTION_H
#define DYNACE_ISA_INSTRUCTION_H

#include "isa/Opcode.h"

#include <cstdint>

namespace dynace {

/// Register index value meaning "no register operand".
inline constexpr uint8_t kNoReg = 0xff;

/// One decoded bytecode instruction.
///
/// Field usage varies per opcode; see the per-opcode comments in Opcode.h.
/// \c Imm doubles as: immediate constant, branch/jump target (instruction
/// index within the method), callee method id (Call), or load/store
/// displacement. \c Aux holds BrI's comparison immediate.
struct Instruction {
  Opcode Op = Opcode::Halt;
  CondKind Cond = CondKind::Eq;
  uint8_t Dst = kNoReg;
  uint8_t Src1 = kNoReg;
  uint8_t Src2 = kNoReg;
  int64_t Imm = 0;
  int64_t Aux = 0;

  /// \returns true for instructions that may redirect control flow.
  bool isControlFlow() const {
    return Op == Opcode::Br || Op == Opcode::BrI || Op == Opcode::Jmp ||
           Op == Opcode::Call || Op == Opcode::Ret || Op == Opcode::Halt;
  }

  /// \returns true for conditional branches.
  bool isConditionalBranch() const {
    return Op == Opcode::Br || Op == Opcode::BrI;
  }

  /// \returns true for memory operations.
  bool isMemOp() const {
    OpClass C = opClassOf(Op);
    return C == OpClass::Load || C == OpClass::Store;
  }
};

} // namespace dynace

#endif // DYNACE_ISA_INSTRUCTION_H
