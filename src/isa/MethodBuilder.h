//===- isa/MethodBuilder.h - Bytecode assembler -----------------*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small assembler for building methods programmatically, with forward
/// label references. Used by the synthetic workload generator and by the
/// examples and tests.
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_ISA_METHODBUILDER_H
#define DYNACE_ISA_METHODBUILDER_H

#include "isa/Program.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dynace {

/// Fluent builder for one method.
///
/// Typical usage:
/// \code
///   MethodBuilder B("loop");
///   Reg I = 1, Sum = 2;
///   B.iconst(I, 0).iconst(Sum, 0);
///   Label Top = B.newLabel();
///   B.bind(Top);
///   B.add(Sum, Sum, I).addi(I, I, 1);
///   B.bri(CondKind::Lt, I, /*Imm=*/100, Top);
///   B.ret(Sum);
///   MethodId Id = Prog.addMethod(B.take());
/// \endcode
class MethodBuilder {
public:
  using Reg = uint8_t;
  using Label = uint32_t;

  explicit MethodBuilder(std::string Name) { M.Name = std::move(Name); }

  /// Creates a fresh, unbound label.
  Label newLabel();

  /// Binds \p L to the next emitted instruction.
  MethodBuilder &bind(Label L);

  // Constants and moves.
  MethodBuilder &iconst(Reg Dst, int64_t Imm);
  MethodBuilder &fconst(Reg Dst, double Value);
  MethodBuilder &mov(Reg Dst, Reg Src);

  // Integer arithmetic.
  MethodBuilder &add(Reg Dst, Reg A, Reg B);
  MethodBuilder &sub(Reg Dst, Reg A, Reg B);
  MethodBuilder &mul(Reg Dst, Reg A, Reg B);
  MethodBuilder &div(Reg Dst, Reg A, Reg B);
  MethodBuilder &rem(Reg Dst, Reg A, Reg B);
  MethodBuilder &and_(Reg Dst, Reg A, Reg B);
  MethodBuilder &or_(Reg Dst, Reg A, Reg B);
  MethodBuilder &xor_(Reg Dst, Reg A, Reg B);
  MethodBuilder &shl(Reg Dst, Reg A, Reg B);
  MethodBuilder &shr(Reg Dst, Reg A, Reg B);
  MethodBuilder &addi(Reg Dst, Reg A, int64_t Imm);
  MethodBuilder &muli(Reg Dst, Reg A, int64_t Imm);
  MethodBuilder &andi(Reg Dst, Reg A, int64_t Imm);

  // Floating point (operands interpreted as IEEE double bit patterns).
  MethodBuilder &fadd(Reg Dst, Reg A, Reg B);
  MethodBuilder &fsub(Reg Dst, Reg A, Reg B);
  MethodBuilder &fmul(Reg Dst, Reg A, Reg B);
  MethodBuilder &fdiv(Reg Dst, Reg A, Reg B);

  // Memory.
  MethodBuilder &load(Reg Dst, Reg Base, int64_t Disp = 0);
  MethodBuilder &store(Reg Base, Reg Value, int64_t Disp = 0);
  MethodBuilder &loadIdx(Reg Dst, Reg Base, Reg Index, int64_t Disp = 0);
  MethodBuilder &storeIdx(Reg Base, Reg Index, Reg Value, int64_t Disp = 0);

  // Control flow.
  MethodBuilder &br(CondKind Cond, Reg A, Reg B, Label Target);
  MethodBuilder &bri(CondKind Cond, Reg A, int64_t Imm, Label Target);
  MethodBuilder &jmp(Label Target);
  MethodBuilder &call(Reg Dst, MethodId Callee, Reg FirstArg = 0,
                      unsigned NumArgs = 0);
  MethodBuilder &ret(Reg Value);
  MethodBuilder &halt();

  // Misc.
  MethodBuilder &alloc(Reg Dst, Reg Words);

  /// Number of instructions emitted so far.
  size_t size() const { return M.Code.size(); }

  /// Finalizes label fixups and \returns the built method. The builder is
  /// left empty; reuse requires constructing a new builder.
  Method take();

private:
  Instruction &emit(Opcode Op);

  Method M;
  /// Per-label bound instruction index; kUnbound until bind().
  std::vector<int64_t> LabelTargets;
  /// (instruction index, label) pairs awaiting resolution.
  std::vector<std::pair<size_t, Label>> Fixups;

  static constexpr int64_t kUnbound = -1;
};

} // namespace dynace

#endif // DYNACE_ISA_METHODBUILDER_H
