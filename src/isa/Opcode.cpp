//===- isa/Opcode.cpp -----------------------------------------------------==//

#include "isa/Opcode.h"

#include <cassert>

using namespace dynace;

const char *dynace::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::IConst:
    return "iconst";
  case Opcode::Mov:
    return "mov";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Div:
    return "div";
  case Opcode::Rem:
    return "rem";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Shl:
    return "shl";
  case Opcode::Shr:
    return "shr";
  case Opcode::AddI:
    return "addi";
  case Opcode::MulI:
    return "muli";
  case Opcode::AndI:
    return "andi";
  case Opcode::FAdd:
    return "fadd";
  case Opcode::FSub:
    return "fsub";
  case Opcode::FMul:
    return "fmul";
  case Opcode::FDiv:
    return "fdiv";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::LoadIdx:
    return "loadidx";
  case Opcode::StoreIdx:
    return "storeidx";
  case Opcode::Br:
    return "br";
  case Opcode::BrI:
    return "bri";
  case Opcode::Jmp:
    return "jmp";
  case Opcode::Call:
    return "call";
  case Opcode::Ret:
    return "ret";
  case Opcode::Alloc:
    return "alloc";
  case Opcode::Halt:
    return "halt";
  }
  assert(false && "unknown opcode");
  return "?";
}

const char *dynace::condName(CondKind Cond) {
  switch (Cond) {
  case CondKind::Eq:
    return "eq";
  case CondKind::Ne:
    return "ne";
  case CondKind::Lt:
    return "lt";
  case CondKind::Le:
    return "le";
  case CondKind::Gt:
    return "gt";
  case CondKind::Ge:
    return "ge";
  }
  assert(false && "unknown condition");
  return "?";
}
