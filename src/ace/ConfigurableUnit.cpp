//===- ace/ConfigurableUnit.cpp -------------------------------------------==//

#include "ace/ConfigurableUnit.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <cassert>

using namespace dynace;

ConfigurableUnit::ConfigurableUnit(std::string Name, unsigned NumSettings,
                                   uint64_t ReconfigInterval,
                                   unsigned InitialSetting, ApplyFn Apply)
    : Name(std::move(Name)), NumSettings(NumSettings),
      ReconfigInterval(ReconfigInterval), Current(InitialSetting),
      Apply(std::move(Apply)), LastChangeInstr(0) {
  assert(NumSettings > 0 && "CU needs at least one setting");
  assert(InitialSetting < NumSettings && "initial setting out of range");
  assert(this->Apply && "CU needs an apply function");
}

void ConfigurableUnit::setMetrics(MetricsRegistry *M) {
  RequestsCounter = M ? &M->counter("cu." + Name + ".requests") : nullptr;
  ChangesCounter = M ? &M->counter("cu." + Name + ".changes") : nullptr;
  RejectsCounter = M ? &M->counter("cu." + Name + ".rejects") : nullptr;
}

CuRequestResult ConfigurableUnit::request(unsigned Setting, uint64_t NowInstr,
                                          bool GuardEnabled) {
  assert(Setting < NumSettings && "setting out of range");
  CuRequestResult Result;
  if (Setting == Current) {
    // Already in effect: a no-op by design, not an observable request
    // (neither metric nor trace — it carries no information).
    Result.InEffect = true;
    return Result;
  }
  if (RequestsCounter)
    RequestsCounter->inc();
  // Hardware guard: reject changes arriving within the reconfiguration
  // interval of the previous change.
  if (GuardEnabled && HasChanged &&
      NowInstr - LastChangeInstr < ReconfigInterval) {
    ++GuardRejections;
    if (RejectsCounter)
      RejectsCounter->inc();
    DYNACE_TRACE_INSTANT("reconfig", "reject",
                         obs::traceArg("cu", Name) + ", " +
                             obs::traceArg("setting", uint64_t(Setting)) +
                             ", " + obs::traceArg("at_instr", NowInstr));
    return Result;
  }
  Result.Cost = Apply(Setting);
  Current = Setting;
  LastChangeInstr = NowInstr;
  HasChanged = true;
  Result.InEffect = true;
  Result.Changed = true;
  ++ChangesApplied;
  if (ChangesCounter)
    ChangesCounter->inc();
  DYNACE_TRACE_INSTANT("reconfig", "accept",
                       obs::traceArg("cu", Name) + ", " +
                           obs::traceArg("setting", uint64_t(Setting)) +
                           ", " + obs::traceArg("at_instr", NowInstr));
  return Result;
}
