//===- ace/ConfigurableUnit.cpp -------------------------------------------==//

#include "ace/ConfigurableUnit.h"

#include <cassert>

using namespace dynace;

ConfigurableUnit::ConfigurableUnit(std::string Name, unsigned NumSettings,
                                   uint64_t ReconfigInterval,
                                   unsigned InitialSetting, ApplyFn Apply)
    : Name(std::move(Name)), NumSettings(NumSettings),
      ReconfigInterval(ReconfigInterval), Current(InitialSetting),
      Apply(std::move(Apply)), LastChangeInstr(0) {
  assert(NumSettings > 0 && "CU needs at least one setting");
  assert(InitialSetting < NumSettings && "initial setting out of range");
  assert(this->Apply && "CU needs an apply function");
}

CuRequestResult ConfigurableUnit::request(unsigned Setting, uint64_t NowInstr,
                                          bool GuardEnabled) {
  assert(Setting < NumSettings && "setting out of range");
  CuRequestResult Result;
  if (Setting == Current) {
    Result.InEffect = true;
    return Result;
  }
  // Hardware guard: reject changes arriving within the reconfiguration
  // interval of the previous change.
  if (GuardEnabled && HasChanged &&
      NowInstr - LastChangeInstr < ReconfigInterval) {
    ++GuardRejections;
    return Result;
  }
  Result.Cost = Apply(Setting);
  Current = Setting;
  LastChangeInstr = NowInstr;
  HasChanged = true;
  Result.InEffect = true;
  Result.Changed = true;
  ++ChangesApplied;
  return Result;
}
