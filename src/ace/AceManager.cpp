//===- ace/AceManager.cpp -------------------------------------------------==//

#include "ace/AceManager.h"

#include "obs/Metrics.h"
#include "obs/Profile.h"
#include "obs/Trace.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace dynace;

void AceManager::setMetrics(MetricsRegistry *M) {
  ClassifiedCounter = M ? &M->counter("ace.classified") : nullptr;
  TuningsCounter = M ? &M->counter("ace.tunings") : nullptr;
  TunedCounter = M ? &M->counter("ace.tuned") : nullptr;
  RetunesCounter = M ? &M->counter("ace.retunes") : nullptr;
  SizeHistogram = M ? &M->histogram("ace.hotspot_size") : nullptr;
}

AceManager::AceManager(std::vector<ConfigurableUnit *> Units,
                       const DoSystem &Do, AcePlatform Platform,
                       const AceManagerConfig &Config)
    : Units(std::move(Units)), Do(Do), Platform(std::move(Platform)),
      Config(Config), Table(Do.numMethods()),
      ClassDepth(this->Units.size() + 1, 0),
      ClassStartInstr(this->Units.size() + 1, 0),
      ClassCovered(this->Units.size() + 1, 0) {
  assert(!this->Units.empty() && "ACE manager needs at least one CU");
  assert(this->Platform.Cycles && this->Platform.Instructions &&
         this->Platform.Energy && this->Platform.Stall &&
         "ACE manager needs a complete platform");
  for (size_t I = 1, E = this->Units.size(); I != E; ++I)
    assert(this->Units[I - 1]->reconfigInterval() <=
               this->Units[I]->reconfigInterval() &&
           "units must be ordered by ascending reconfiguration interval");
}

std::vector<unsigned> AceManager::managedUnits(
    const HotspotAceData &H) const {
  if (H.CuClass >= 0)
    return {static_cast<unsigned>(H.CuClass)};
  std::vector<unsigned> All(Units.size());
  for (unsigned I = 0, E = static_cast<unsigned>(Units.size()); I != E; ++I)
    All[I] = I;
  return All;
}

bool AceManager::classify(HotspotAceData &H, double Size) const {
  if (Size < static_cast<double>(Config.MinHotspotSize))
    return false;

  if (Config.DecouplingEnabled) {
    // CU decoupling: the hotspot tunes the single CU whose reconfiguration
    // interval matches its size — the largest CU with interval/2 <= size.
    // With the Table 2 units this yields the paper's bands: sizes in
    // [interval_L1D/2, interval_L2/2) tune the L1D, larger ones the L2.
    int Class = -1;
    for (unsigned I = 0, E = static_cast<unsigned>(Units.size()); I != E;
         ++I) {
      double Band = static_cast<double>(Units[I]->reconfigInterval()) / 2.0;
      if (Size >= Band)
        Class = static_cast<int>(I);
    }
    if (Class < 0)
      return false;
    H.CuClass = Class;
    unsigned N = Units[Class]->numSettings();
    H.Configs.clear();
    for (unsigned S = 0; S != N; ++S)
      H.Configs.push_back({S});
  } else {
    // Ablation: test the full cross product of all CU settings, largest
    // configurations first (lexicographic), as prior tuning algorithms do.
    H.CuClass = -1;
    H.Configs.assign(1, {});
    for (ConfigurableUnit *U : Units) {
      std::vector<std::vector<unsigned>> Next;
      for (const auto &Partial : H.Configs)
        for (unsigned S = 0, N = U->numSettings(); S != N; ++S) {
          auto Extended = Partial;
          Extended.push_back(S);
          Next.push_back(std::move(Extended));
        }
      H.Configs = std::move(Next);
    }
  }

  resetTuning(H);
  return true;
}

void AceManager::resetTuning(HotspotAceData &H) const {
  size_t N = H.Configs.size();
  H.MeasuredIpc.assign(N, std::numeric_limits<double>::quiet_NaN());
  H.MeasuredEpi.assign(N, std::numeric_limits<double>::quiet_NaN());
  H.RelIpc.assign(N, std::numeric_limits<double>::quiet_NaN());
  H.RelEpi.assign(N, std::numeric_limits<double>::quiet_NaN());
  H.Plan.clear();
  if (Config.PairedReference) {
    // 0,1,0,2,0,3,...: every candidate is preceded by a fresh reference
    // measurement so scores are drift-free ratios.
    for (unsigned C = 1; C != N; ++C) {
      H.Plan.push_back(0);
      H.Plan.push_back(C);
    }
    if (N == 1)
      H.Plan.push_back(0);
  } else {
    for (unsigned C = 0; C != N; ++C)
      H.Plan.push_back(C);
  }
  H.PlanPos = 0;
  H.LastRefIpc = 0.0;
  H.LastRefEpi = 0.0;
  H.WarmupRemaining = Config.WarmupInvocations;
  H.MeasurementPending = false;
  H.PendingIpcSum = H.PendingEpiSum = 0.0;
  H.PendingSamples = 0;
}

bool AceManager::applyConfig(HotspotAceData &H, unsigned ConfigIndex,
                             bool CountReconfig) {
  assert(ConfigIndex < H.Configs.size() && "config index out of range");
  const std::vector<unsigned> &Settings = H.Configs[ConfigIndex];
  std::vector<unsigned> Managed = managedUnits(H);
  assert(Settings.size() == Managed.size() && "config/unit arity mismatch");

  uint64_t Now = Platform.Instructions();
  bool AllInEffect = true;
  for (size_t I = 0, E = Managed.size(); I != E; ++I) {
    CuRequestResult R =
        Units[Managed[I]]->request(Settings[I], Now, Config.GuardEnabled);
    AllInEffect &= R.InEffect;
    if (R.Changed && CountReconfig)
      ++H.ReconfigApplications;
  }
  return AllInEffect;
}

void AceManager::classEnter(int Cu) {
  size_t Slot = Cu < 0 ? Units.size() : static_cast<size_t>(Cu);
  if (ClassDepth[Slot]++ == 0)
    ClassStartInstr[Slot] = Platform.Instructions();
}

void AceManager::classExit(int Cu) {
  size_t Slot = Cu < 0 ? Units.size() : static_cast<size_t>(Cu);
  assert(ClassDepth[Slot] > 0 && "class exit without matching enter");
  if (--ClassDepth[Slot] == 0)
    ClassCovered[Slot] += Platform.Instructions() - ClassStartInstr[Slot];
}

void AceManager::onHotspotDetected(MethodId Id) {
  assert(Id < Table.size() && "method id out of range");
  (void)Id; // The table entry is lazily classified at first entry.
}

void AceManager::onHotspotEnter(MethodId Id) {
  HotspotAceData &H = Table[Id];

  if (H.Depth++ != 0)
    return; // Nested re-entry: the outermost invocation is the phase.
  DYNACE_PROFILE_SCOPE("tune");

  // Classification happens at the first outermost entry with a usable size
  // estimate (and is retried while the estimate stays below the bands).
  if (H.State == TuneState::Inactive && H.Configs.empty()) {
    double Size = Do.hotspotSize(Id);
    if (classify(H, Size)) {
      H.State = TuneState::Tuning;
      if (ClassifiedCounter)
        ClassifiedCounter->inc();
      if (SizeHistogram)
        SizeHistogram->record(static_cast<uint64_t>(Size));
      DYNACE_TRACE_INSTANT(
          "tuning", "tune.start",
          obs::traceArg("method", uint64_t(Id)) + ", " +
              obs::traceArg("size", static_cast<uint64_t>(Size)) + ", " +
              obs::traceArg("cu", H.CuClass < 0
                                      ? std::string("all")
                                      : Units[H.CuClass]->name()));
    }
  }

  H.EntryCycles = Platform.Cycles();
  H.EntryInstrs = Platform.Instructions();

  switch (H.State) {
  case TuneState::Inactive:
    return;
  case TuneState::Tuning: {
    // Tuning code: apply the scheduled configuration. If the hardware
    // guard defers any request, skip this invocation's measurement. Each
    // slot first runs warm-up invocations so the caches refill after the
    // reconfiguration flush.
    bool InEffect =
        applyConfig(H, H.Plan[H.PlanPos], /*CountReconfig=*/false);
    if (InEffect) {
      if (H.WarmupRemaining > 0) {
        --H.WarmupRemaining;
      } else {
        H.MeasurementPending = true;
        H.EntryEnergy = Platform.Energy();
      }
    }
    Platform.Stall(Config.TuningEntryCycles);
    break;
  }
  case TuneState::Configured:
    // Configuration code: snap the ACE to this hotspot's best setting.
    applyConfig(H, H.BestConfig, /*CountReconfig=*/true);
    Platform.Stall(Config.ConfigEntryCycles);
    break;
  }
  classEnter(H.CuClass);
}

void AceManager::onHotspotExit(MethodId Id, uint64_t InclusiveInstructions) {
  (void)InclusiveInstructions;
  HotspotAceData &H = Table[Id];
  assert(H.Depth > 0 && "hotspot exit without matching enter");
  if (--H.Depth != 0)
    return;

  if (H.State == TuneState::Inactive)
    return;
  DYNACE_PROFILE_SCOPE("tune");
  classExit(H.CuClass);

  uint64_t DeltaInstr = Platform.Instructions() - H.EntryInstrs;
  uint64_t DeltaCycles = Platform.Cycles() - H.EntryCycles;
  double Ipc = DeltaCycles ? static_cast<double>(DeltaInstr) /
                                 static_cast<double>(DeltaCycles)
                           : 0.0;
  // Per-hotspot IPC homogeneity is measured at the fixed (tuned)
  // configuration, so the statistic reflects the hotspot's behavior rather
  // than the configurations being swept during tuning.
  if (DeltaCycles > 0 && H.State == TuneState::Configured)
    H.InvocationIpc.add(Ipc);
  ++H.ExitCount;

  if (H.State == TuneState::Tuning) {
    if (!H.MeasurementPending)
      return;
    H.MeasurementPending = false;
    Platform.Stall(Config.ProfilingExitCycles);
    finishTuningMeasurement(H, Id, Ipc, DeltaInstr, DeltaCycles);
    return;
  }

  // Configured: sampling code occasionally compares performance against the
  // tuned level; a large change means the hotspot's behavior shifted and it
  // is tuned again (rare, per Wu et al.).
  if (H.ExitCount % Config.SampleEveryN == 0) {
    Platform.Stall(Config.SamplingExitCycles);
    if (DeltaCycles == 0 || H.ConfiguredIpc <= 0.0)
      return;
    double Rel = std::fabs(Ipc - H.ConfiguredIpc) / H.ConfiguredIpc;
    if (Rel > Config.RetuneThreshold && H.Retunes < Config.MaxRetunes) {
      ++H.Retunes;
      H.State = TuneState::Tuning;
      resetTuning(H);
      if (RetunesCounter)
        RetunesCounter->inc();
      DYNACE_TRACE_INSTANT("tuning", "tune.retune",
                           obs::traceArg("method", uint64_t(Id)));
    }
  }
}

void AceManager::finishTuningMeasurement(HotspotAceData &H, MethodId Id,
                                         double Ipc, uint64_t DeltaInstr,
                                         uint64_t DeltaCycles) {
  // Discard measurements from atypically short invocations.
  double SizeEstimate = Do.hotspotSize(Id);
  if (DeltaCycles == 0 ||
      static_cast<double>(DeltaInstr) <
          Config.MinMeasureFraction * SizeEstimate)
    return;

  double Epi = (Platform.Energy() - H.EntryEnergy) /
               static_cast<double>(DeltaInstr);
  H.PendingIpcSum += Ipc;
  H.PendingEpiSum += Epi;
  if (++H.PendingSamples < Config.MeasureInvocations)
    return; // Keep sampling this slot.

  double AvgIpc = H.PendingIpcSum / H.PendingSamples;
  double AvgEpi = H.PendingEpiSum / H.PendingSamples;
  H.PendingIpcSum = H.PendingEpiSum = 0.0;
  H.PendingSamples = 0;

  unsigned SlotConfig = H.Plan[H.PlanPos];
  H.MeasuredIpc[SlotConfig] = AvgIpc;
  H.MeasuredEpi[SlotConfig] = AvgEpi;
  ++H.TuningsCompleted;
  if (TuningsCounter)
    TuningsCounter->inc();
  DYNACE_TRACE_INSTANT("tuning", "tune.measure",
                       obs::traceArg("method", uint64_t(Id)) + ", " +
                           obs::traceArg("config", uint64_t(SlotConfig)));

  bool Stop = false;
  if (SlotConfig == 0) {
    H.LastRefIpc = AvgIpc;
    H.LastRefEpi = AvgEpi;
    H.RelIpc[0] = 1.0;
    H.RelEpi[0] = 1.0;
    H.ReferenceIpc = AvgIpc;
  } else if (H.LastRefIpc > 0.0 && H.LastRefEpi > 0.0) {
    H.RelIpc[SlotConfig] = AvgIpc / H.LastRefIpc;
    H.RelEpi[SlotConfig] = AvgEpi / H.LastRefEpi;
    // The paper's early abort: stop once a configuration degrades IPC past
    // performance_threshold (configurations shrink monotonically, so the
    // rest can only be worse).
    Stop = H.CuClass >= 0 &&
           H.RelIpc[SlotConfig] < 1.0 - Config.PerformanceThreshold;
  }

  ++H.PlanPos;
  H.WarmupRemaining = Config.WarmupInvocations;
  if (Stop || H.PlanPos == H.Plan.size())
    selectBestConfig(H, Id);
}

void AceManager::selectBestConfig(HotspotAceData &H, MethodId Id) {
  // The most energy-efficient configuration whose relative IPC meets the
  // threshold; the largest configuration is always an acceptable fallback,
  // and a smaller one must beat it by EpiMargin (noise hysteresis).
  unsigned Best = 0;
  double BestRelEpi = 1.0 - Config.EpiMargin;
  for (unsigned C = 1, E = static_cast<unsigned>(H.Configs.size()); C != E;
       ++C) {
    if (std::isnan(H.RelEpi[C]) || std::isnan(H.RelIpc[C]))
      continue;
    if (H.RelIpc[C] < 1.0 - Config.PerformanceThreshold)
      continue;
    if (H.RelEpi[C] < BestRelEpi) {
      BestRelEpi = H.RelEpi[C];
      Best = C;
    }
  }
  H.BestConfig = Best;
  H.ConfiguredIpc = std::isnan(H.MeasuredIpc[Best]) ? H.ReferenceIpc
                                                    : H.MeasuredIpc[Best];
  H.State = TuneState::Configured;
  H.EverConfigured = true;
  if (TunedCounter)
    TunedCounter->inc();
  DYNACE_TRACE_INSTANT("tuning", "tune.configured",
                       obs::traceArg("method", uint64_t(Id)) + ", " +
                           obs::traceArg("best", uint64_t(Best)));
}

AceReport AceManager::report(uint64_t TotalInstructions) const {
  AceReport R;
  R.PerCu.resize(Units.size() + 1);
  for (size_t I = 0, E = Units.size(); I != E; ++I)
    R.PerCu[I].CuName = Units[I]->name();
  R.PerCu.back().CuName = "all";

  RunningStat PerHotspotCovs;
  RunningStat HotspotMeanIpcs;

  for (const HotspotAceData &H : Table) {
    if (H.Configs.empty())
      continue; // Never classified as ACE-managed.
    size_t Slot = H.CuClass < 0 ? Units.size()
                                : static_cast<size_t>(H.CuClass);
    AceCuReport &Cu = R.PerCu[Slot];
    ++R.TotalHotspots;
    ++Cu.NumHotspots;
    if (H.EverConfigured) {
      ++R.TunedHotspots;
      ++Cu.TunedHotspots;
    }
    Cu.Tunings += H.TuningsCompleted;
    Cu.Reconfigs += H.ReconfigApplications;
    if (H.InvocationIpc.count() >= 2)
      PerHotspotCovs.add(H.InvocationIpc.cov());
    if (H.InvocationIpc.count() >= 1)
      HotspotMeanIpcs.add(H.InvocationIpc.mean());
  }

  for (size_t Slot = 0, E = R.PerCu.size(); Slot != E; ++Slot)
    if (TotalInstructions)
      R.PerCu[Slot].Coverage = static_cast<double>(ClassCovered[Slot]) /
                               static_cast<double>(TotalInstructions);

  R.PerHotspotIpcCov = PerHotspotCovs.mean();
  R.InterHotspotIpcCov = HotspotMeanIpcs.cov();
  return R;
}
