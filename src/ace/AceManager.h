//===- ace/AceManager.h - DO-based ACE management ---------------*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's core contribution (Section 3): managing multiple configurable
/// units at hotspot boundaries detected by a dynamic optimization system.
///
/// Per hotspot, the manager:
///  1. classifies the hotspot by its inclusive dynamic size and — via *CU
///     decoupling* — assigns it the CU whose reconfiguration interval
///     matches that size (small hotspots tune the L1D cache, large hotspots
///     the L2), cutting the tested configurations from the cross product to
///     one CU's settings;
///  2. *tunes*: successive invocations each test the next configuration;
///     testing stops when all are tested or IPC degrades beyond
///     performance_threshold relative to the largest configuration; the
///     most energy-efficient configuration wins;
///  3. *reconfigures*: after tuning, configuration code at the hotspot entry
///     applies the winning configuration (subject to the hardware guard),
///     and sampling code at exits occasionally checks for behavior changes
///     that warrant a rare re-tune.
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_ACE_ACEMANAGER_H
#define DYNACE_ACE_ACEMANAGER_H

#include "ace/ConfigurableUnit.h"
#include "dosys/DoSystem.h"
#include "support/Statistics.h"

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

namespace dynace {

class Histogram;

/// Host callbacks the manager needs from the simulated platform.
struct AcePlatform {
  /// Current core cycle count.
  std::function<uint64_t()> Cycles;
  /// Current dynamic instruction count.
  std::function<uint64_t()> Instructions;
  /// Running value of the energy objective (total cache+memory energy, nJ).
  std::function<double()> Energy;
  /// Charges instrumentation overhead cycles to the core.
  std::function<void(uint64_t)> Stall;
};

/// Manager parameters. Size bands follow Section 5.2 (values already scaled
/// by kSimScale = 10: the paper's 50K..500K L1D-hotspot band becomes
/// 5K..50K).
struct AceManagerConfig {
  /// Minimum hotspot size eligible for ACE management (smaller hotspots are
  /// JIT-optimized but do not adapt hardware).
  uint64_t MinHotspotSize = 5000;
  /// Tuning aborts when a configuration's IPC falls below
  /// (1 - PerformanceThreshold) * reference IPC (paper: 2%).
  double PerformanceThreshold = 0.02;
  /// Relative IPC deviation (sampled vs tune-time) that triggers a re-tune.
  /// Kept loose: hotspot behavior is stable (Wu et al.), and aggressive
  /// re-tuning cascades — each re-tune sweep perturbs its neighbors'
  /// measurements.
  double RetuneThreshold = 0.5;
  /// Sampling code runs at every Nth exit of a configured hotspot.
  uint64_t SampleEveryN = 16;
  /// Upper bound on re-tunes per hotspot (oscillation guard).
  uint32_t MaxRetunes = 4;
  /// CU decoupling (the paper's scheme). When false, every eligible hotspot
  /// tunes the full cross product of all CU settings (ablation).
  bool DecouplingEnabled = true;
  /// Hardware reconfiguration guard (ablation switch).
  bool GuardEnabled = true;
  /// Instrumentation overhead, in cycles, charged per executed hook.
  uint64_t TuningEntryCycles = 12;
  uint64_t ProfilingExitCycles = 8;
  uint64_t ConfigEntryCycles = 3;
  uint64_t SamplingExitCycles = 5;
  /// A tuning measurement is discarded when the invocation ran fewer
  /// instructions than this fraction of the hotspot's size estimate
  /// (guards against wildly atypical invocations polluting the tuner).
  double MinMeasureFraction = 0.25;
  /// Unmeasured invocations run at each configuration under test before the
  /// measured ones, letting the caches refill after the reconfiguration
  /// flush so configurations are compared warm against warm.
  uint32_t WarmupInvocations = 1;
  /// Measured invocations averaged per tested configuration; averaging
  /// keeps per-invocation IPC noise from swamping the 2% threshold.
  uint32_t MeasureInvocations = 2;
  /// Interleave the reference (largest) configuration between candidates:
  /// the test sequence becomes 0,1,0,2,0,3,... and every candidate is
  /// scored *relative to its adjacent reference measurement*. Early in a
  /// run everything (predictor, L1I, L2, neighboring hotspots still
  /// tuning) is colder and IPC/EPI drift upward as the run warms; absolute
  /// comparisons across that drift mis-rank configurations, while paired
  /// ratios cancel it to first order.
  bool PairedReference = true;
  /// A non-largest configuration must beat the largest configuration's
  /// energy-per-instruction by this margin to win; hysteresis against
  /// measurement noise picking undersized configurations for no real gain.
  double EpiMargin = 0.05;
};

/// Tuning lifecycle of one hotspot.
enum class TuneState : uint8_t {
  Inactive,   ///< Not (yet) ACE-managed (too small or unclassified).
  Tuning,     ///< Testing configurations invocation by invocation.
  Configured, ///< Best configuration installed.
};

/// Per-hotspot ACE bookkeeping (lives in the DO database entry).
struct HotspotAceData {
  TuneState State = TuneState::Inactive;
  /// Index of the CU this hotspot manages (decoupled mode); -1 before
  /// classification or when managing all CUs (no-decoupling ablation).
  int CuClass = -1;
  /// One entry per configuration to test; each is a setting per managed CU.
  std::vector<std::vector<unsigned>> Configs;
  /// Test schedule: configuration index per tuning slot (paired-reference
  /// mode interleaves config 0 between candidates).
  std::vector<unsigned> Plan;
  /// Position in Plan of the slot currently being warmed/measured.
  unsigned PlanPos = 0;
  /// Most recent reference-slot measurements (paired-reference mode).
  double LastRefIpc = 0.0;
  double LastRefEpi = 0.0;
  /// Per-configuration scores relative to the adjacent reference.
  std::vector<double> RelIpc;
  std::vector<double> RelEpi;
  unsigned NextConfig = 0;
  /// Warm-up invocations still to run before measuring the current slot.
  uint32_t WarmupRemaining = 0;
  bool MeasurementPending = false;
  /// Accumulated samples for the current slot (averaged when complete).
  double PendingIpcSum = 0.0;
  double PendingEpiSum = 0.0;
  uint32_t PendingSamples = 0;
  uint64_t EntryCycles = 0;
  uint64_t EntryInstrs = 0;
  double EntryEnergy = 0.0;
  std::vector<double> MeasuredIpc;
  std::vector<double> MeasuredEpi;
  double ReferenceIpc = 0.0; ///< IPC at the largest configuration.
  unsigned BestConfig = 0;
  double ConfiguredIpc = 0.0;
  bool EverConfigured = false;
  uint32_t Depth = 0; ///< Active invocation nesting of this hotspot.
  uint64_t ExitCount = 0;
  uint64_t TuningsCompleted = 0;
  uint64_t ReconfigApplications = 0; ///< Hardware changes to BestConfig.
  uint64_t Retunes = 0;
  RunningStat InvocationIpc; ///< Outermost-invocation IPC samples.
};

/// Per-CU aggregate results for Table 6.
struct AceCuReport {
  std::string CuName;
  uint64_t NumHotspots = 0;   ///< Hotspots classified to this CU.
  uint64_t TunedHotspots = 0; ///< ... that finished tuning.
  uint64_t Tunings = 0;       ///< Configuration-test measurements.
  uint64_t Reconfigs = 0;     ///< Hardware changes to a best config.
  double Coverage = 0.0;      ///< Fraction of instructions under management.
};

/// Aggregate results for Table 5's hotspot columns.
struct AceReport {
  std::vector<AceCuReport> PerCu;
  uint64_t TotalHotspots = 0; ///< ACE-managed hotspots (all classes).
  uint64_t TunedHotspots = 0;
  double PerHotspotIpcCov = 0.0;   ///< Mean CoV across invocations.
  double InterHotspotIpcCov = 0.0; ///< CoV of per-hotspot mean IPCs.
};

/// The ACE management framework (Figure 2).
class AceManager : public DoClient {
public:
  /// \param Units the configurable units, ordered by ascending
  ///        reconfiguration interval (L1D before L2). Not owned.
  /// \param Do the DO system, queried for hotspot size estimates.
  AceManager(std::vector<ConfigurableUnit *> Units, const DoSystem &Do,
             AcePlatform Platform, const AceManagerConfig &Config);

  // DoClient:
  void onHotspotDetected(MethodId Id) override;
  void onHotspotEnter(MethodId Id) override;
  void onHotspotExit(MethodId Id, uint64_t InclusiveInstructions) override;

  /// Builds the aggregate report. \p TotalInstructions is the run's dynamic
  /// instruction count (for coverage fractions).
  AceReport report(uint64_t TotalInstructions) const;

  /// Per-hotspot data (tests / diagnostics).
  const HotspotAceData &hotspotData(MethodId Id) const {
    return Table.at(Id);
  }

  const AceManagerConfig &config() const { return Config; }

  /// Attaches the run's metrics registry (null detaches); resolves the
  /// ace.* counters and the hotspot-size histogram once.
  void setMetrics(MetricsRegistry *M);

private:
  /// Assigns the CU subset for a hotspot of size \p Size; fills CuClass and
  /// Configs. \returns false when the hotspot is too small to manage.
  bool classify(HotspotAceData &H, double Size) const;

  /// Rebuilds the tuning schedule and clears measurement state.
  void resetTuning(HotspotAceData &H) const;

  /// Requests every managed CU setting of \p Config. \returns true when all
  /// are now in effect.
  bool applyConfig(HotspotAceData &H, unsigned ConfigIndex,
                   bool CountReconfig);

  /// Completes a pending tuning measurement at an outermost exit.
  void finishTuningMeasurement(HotspotAceData &H, MethodId Id, double Ipc,
                               uint64_t DeltaInstr, uint64_t DeltaCycles);

  /// Picks the most energy-efficient measured configuration meeting the
  /// performance threshold and installs it.
  void selectBestConfig(HotspotAceData &H, MethodId Id);

  /// Coverage accounting: instructions executed while >= 1 managed hotspot
  /// of class \p Cu is active.
  void classEnter(int Cu);
  void classExit(int Cu);

  /// CUs managed by \p H, as indices into Units.
  std::vector<unsigned> managedUnits(const HotspotAceData &H) const;

  std::vector<ConfigurableUnit *> Units;
  const DoSystem &Do;
  AcePlatform Platform;
  AceManagerConfig Config;

  std::vector<HotspotAceData> Table; ///< Indexed by MethodId.

  /// Per-CU-class coverage accounting; index Units.size() is the shared
  /// slot used by the no-decoupling ablation ("all CUs").
  std::vector<uint32_t> ClassDepth;
  std::vector<uint64_t> ClassStartInstr;
  std::vector<uint64_t> ClassCovered;

  /// Cached per-run instruments (null = metrics detached).
  Counter *ClassifiedCounter = nullptr;
  Counter *TuningsCounter = nullptr;
  Counter *TunedCounter = nullptr;
  Counter *RetunesCounter = nullptr;
  Histogram *SizeHistogram = nullptr;
};

} // namespace dynace

#endif // DYNACE_ACE_ACEMANAGER_H
