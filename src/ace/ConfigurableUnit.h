//===- ace/ConfigurableUnit.h - CU + reconfiguration guard ------*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// \c ConfigurableUnit models one adaptable hardware resource (Section 3.4):
/// a control register selecting among fixed settings, written by a special
/// instruction, plus the per-CU hardware counter holding the most recent
/// reconfiguration time. A request arriving within the CU's reconfiguration
/// interval is ignored without modifying the configuration — this guard
/// frees the software framework from tracking minimum intervals itself.
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_ACE_CONFIGURABLEUNIT_H
#define DYNACE_ACE_CONFIGURABLEUNIT_H

#include "cache/MemoryHierarchy.h"

#include <cstdint>
#include <functional>
#include <string>

namespace dynace {

class MetricsRegistry;
class Counter;

/// Outcome of a guarded reconfiguration request.
struct CuRequestResult {
  /// True when the requested setting is now in effect (either it already
  /// was, or the request passed the guard and was applied).
  bool InEffect = false;
  /// True when the hardware configuration actually changed.
  bool Changed = false;
  /// Cost of the change (zero when !Changed).
  ReconfigCost Cost;
};

/// One configurable unit.
class ConfigurableUnit {
public:
  /// Applies a setting to the underlying hardware and reports the cost.
  using ApplyFn = std::function<ReconfigCost(unsigned Setting)>;

  /// \param ReconfigInterval minimum instructions between configuration
  ///        changes (Table 2: 100K for L1D, 1M for L2; scaled by 1/10 in
  ///        this reproduction).
  /// \param NumSettings settings 0..NumSettings-1, largest/most-capable
  ///        first by convention.
  /// \param InitialSetting setting in effect at reset.
  ConfigurableUnit(std::string Name, unsigned NumSettings,
                   uint64_t ReconfigInterval, unsigned InitialSetting,
                   ApplyFn Apply);

  /// Requests \p Setting at time \p NowInstr (dynamic instruction count).
  /// Ignored by the hardware guard when the previous change is more recent
  /// than the reconfiguration interval. When \p GuardEnabled is false the
  /// guard is bypassed (ablation).
  CuRequestResult request(unsigned Setting, uint64_t NowInstr,
                          bool GuardEnabled = true);

  /// Attaches the run's metrics registry (null detaches); resolves the
  /// cu.<name>.{requests,changes,rejects} counters once.
  void setMetrics(MetricsRegistry *M);

  const std::string &name() const { return Name; }
  unsigned numSettings() const { return NumSettings; }
  uint64_t reconfigInterval() const { return ReconfigInterval; }
  unsigned currentSetting() const { return Current; }

  /// Requests rejected by the hardware guard.
  uint64_t guardRejections() const { return GuardRejections; }
  /// Requests that changed the hardware configuration.
  uint64_t changesApplied() const { return ChangesApplied; }

private:
  std::string Name;
  unsigned NumSettings;
  uint64_t ReconfigInterval;
  unsigned Current;
  ApplyFn Apply;
  /// The "last-reconfiguration" hardware counter. Starts far in the past so
  /// the first request is never rejected.
  uint64_t LastChangeInstr;
  bool HasChanged = false;
  uint64_t GuardRejections = 0;
  uint64_t ChangesApplied = 0;
  /// Cached per-run counters (null = metrics detached).
  Counter *RequestsCounter = nullptr;
  Counter *ChangesCounter = nullptr;
  Counter *RejectsCounter = nullptr;
};

} // namespace dynace

#endif // DYNACE_ACE_CONFIGURABLEUNIT_H
