//===- workloads/WorkloadGenerator.cpp ------------------------------------==//

#include "workloads/WorkloadGenerator.h"

#include "analysis/Verifier.h"
#include "isa/MethodBuilder.h"
#include "support/Random.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

using namespace dynace;

namespace {

using Reg = MethodBuilder::Reg;

/// Kernel registers (r0 is the salt argument; r1..r7 are reserved for the
/// caller-side control code of mids/regions/main).
constexpr Reg RegI = 8;
constexpr Reg RegBase = 9;
constexpr Reg RegMask = 10;
constexpr Reg RegIdx = 11;
constexpr Reg RegVal = 12;
constexpr Reg RegAcc = 13;
constexpr Reg RegScratch = 14;
constexpr Reg RegFpA = 15;
constexpr Reg RegFpB = 16;
constexpr Reg RegIdx2 = 17;
constexpr Reg RegHotMask = 18;
constexpr Reg RegHash = 19;

/// Parameters of one compute kernel (an array walk).
struct KernelSpec {
  uint64_t Iters = 1;
  uint64_t BaseAddr = 0;
  uint64_t FootprintWords = 256; ///< Power of two.
  uint32_t StrideWords = 1;
  uint32_t FpOps = 0;
  uint32_t AluOps = 1;
  uint32_t StoreEveryLog2 = 2;
  bool DataDependentBranch = false;
  /// Data-access skew ladder (DataZipfTheta > 0): size of the hot array
  /// prefix in words (power of two; 0 = ladder off, legacy uniform walk).
  uint64_t HotMaskWords = 0;
  /// Out-of-256 threshold routing an iteration's access into the hot
  /// prefix; derived from the Zipf(theta) head-mass fraction.
  uint32_t HotThresh256 = 0;
};

/// Configures \p K's skew ladder from the profile's DataZipfTheta: the
/// fraction of accesses Zipf(theta) would place on the top 1/16 of ranks is
/// routed into the array's 1/16 hot prefix. Theta == 0 leaves the ladder
/// off, emitting exactly the legacy uniform walk (and the uniform
/// distribution itself puts 1/16 of its mass there, so 0 is the correct
/// degenerate point, not a discontinuity).
void applyDataSkew(KernelSpec &K, double Theta) {
  if (Theta <= 0.0 || K.FootprintWords < 32)
    return;
  uint64_t HotPrefix = K.FootprintWords / 16;
  double HotFrac = zipfMassFraction(K.FootprintWords, HotPrefix, Theta);
  K.HotMaskWords = HotPrefix;
  K.HotThresh256 = static_cast<uint32_t>(std::clamp<long>(
      std::lround(HotFrac * 256.0), 1, 256));
}

/// Average executed instructions per kernel iteration.
double kernelIterCost(const KernelSpec &K) {
  double Body = 3.0  // index: muli + add + and
                + 1.0 // loadIdx
                + 1.0 // accumulate
                + static_cast<double>(K.AluOps) + static_cast<double>(K.FpOps)
                + 3.0 // second load: addi + and + loadIdx
                + 1.0 // accumulate second
                + 2.0 // store guard: andi + bri
                + 1.0 / static_cast<double>(1u << K.StoreEveryLog2) // store
                + 2.0; // induction: addi + backedge bri
  if (K.DataDependentBranch)
    Body += 2.5; // andi + bri + taken-half addi
  if (K.HotMaskWords)
    Body += 3.0 // hot-route: muli + andi + bri
            + static_cast<double>(K.HotThresh256) / 256.0; // hot-path and
  return Body;
}

/// Emits the kernel loop. The caller provides the salt in r0.
void emitKernel(MethodBuilder &B, const KernelSpec &K) {
  assert(std::has_single_bit(K.FootprintWords) &&
         "footprint must be a power of two");
  B.iconst(RegI, 0);
  B.iconst(RegBase, static_cast<int64_t>(K.BaseAddr));
  B.iconst(RegMask, static_cast<int64_t>(K.FootprintWords - 1));
  B.iconst(RegAcc, 0x9e3779b9);
  if (K.HotMaskWords) {
    assert(std::has_single_bit(K.HotMaskWords) &&
           "hot prefix must be a power of two");
    B.iconst(RegHotMask, static_cast<int64_t>(K.HotMaskWords - 1));
  }
  if (K.FpOps) {
    B.fconst(RegFpA, 1.0000001);
    B.fconst(RegFpB, 0.9999999);
  }

  MethodBuilder::Label Top = B.newLabel();
  B.bind(Top);
  // idx = (i * stride + salt) & mask
  B.muli(RegIdx, RegI, K.StrideWords);
  B.add(RegIdx, RegIdx, 0);
  B.and_(RegIdx, RegIdx, RegMask);
  if (K.HotMaskWords) {
    // Zipf data skew: hash the iteration counter to a lane in [0, 256);
    // lanes below the threshold re-mask the access into the hot prefix.
    // The multiplier is odd, so i -> lane is a bijection mod 256 and
    // exactly HotThresh256/256 of iterations take the hot route.
    MethodBuilder::Label SkipHot = B.newLabel();
    B.muli(RegHash, RegI, 0x9e37);
    B.andi(RegHash, RegHash, 255);
    B.bri(CondKind::Ge, RegHash, static_cast<int64_t>(K.HotThresh256),
          SkipHot);
    B.and_(RegIdx, RegIdx, RegHotMask);
    B.bind(SkipHot);
  }
  B.loadIdx(RegVal, RegBase, RegIdx);
  B.add(RegAcc, RegAcc, RegVal);
  for (uint32_t I = 0; I != K.AluOps; ++I) {
    if (I % 2 == 0)
      B.xor_(RegScratch, RegAcc, RegVal);
    else
      B.addi(RegAcc, RegScratch, 0x5bd1);
  }
  for (uint32_t I = 0; I != K.FpOps; ++I) {
    if (I % 2 == 0)
      B.fmul(RegFpA, RegFpA, RegFpB);
    else
      B.fadd(RegFpB, RegFpB, RegFpA);
  }
  // Second (shifted) load from the same array.
  B.addi(RegIdx2, RegIdx, 64);
  B.and_(RegIdx2, RegIdx2, RegMask);
  B.loadIdx(RegScratch, RegBase, RegIdx2);
  B.add(RegAcc, RegAcc, RegScratch);
  // Store every 2^k-th iteration.
  MethodBuilder::Label SkipStore = B.newLabel();
  B.andi(RegScratch, RegI, (1 << K.StoreEveryLog2) - 1);
  B.bri(CondKind::Ne, RegScratch, 0, SkipStore);
  B.storeIdx(RegBase, RegIdx, RegAcc);
  B.bind(SkipStore);
  // Optional hard-to-predict branch on loaded data.
  if (K.DataDependentBranch) {
    MethodBuilder::Label SkipOdd = B.newLabel();
    B.andi(RegScratch, RegVal, 1);
    B.bri(CondKind::Eq, RegScratch, 0, SkipOdd);
    B.addi(RegAcc, RegAcc, 1);
    B.bind(SkipOdd);
  }
  B.addi(RegI, RegI, 1);
  B.bri(CondKind::Lt, RegI, static_cast<int64_t>(K.Iters), Top);
}

/// Rounds \p V to the nearest power of two within [Lo, Hi].
uint64_t powerOfTwoIn(uint64_t V, uint64_t Lo, uint64_t Hi) {
  uint64_t P = std::bit_ceil(std::max<uint64_t>(V, 1));
  return std::clamp(P, std::bit_ceil(Lo), std::bit_ceil(Hi));
}

/// Samples a log-uniform value in [Lo, Hi].
uint64_t logUniform(SplitMix64 &Rng, uint64_t Lo, uint64_t Hi) {
  assert(Lo > 0 && Lo <= Hi && "bad log-uniform range");
  double L = std::log2(static_cast<double>(Lo));
  double H = std::log2(static_cast<double>(Hi));
  double X = L + Rng.nextDouble() * (H - L);
  return static_cast<uint64_t>(std::llround(std::exp2(X)));
}

/// Build products of one tenant's method tiers, consumed by main emission.
struct TenantBuild {
  std::vector<MethodId> Regions;
  uint32_t RegionsPerSegment = 0;
};

/// Builds the three method tiers (leaves, mids, regions + scanners) for
/// profile \p P into \p Prog, tagging every method with \p Tenant. Each
/// tenant draws from its own SplitMix64 seeded exactly as the single-tenant
/// generator seeds it, so a tenant's methods are bit-identical inside and
/// outside a mix (only code addresses and method ids shift).
TenantBuild buildTenantTiers(Program &Prog, const WorkloadProfile &P,
                             GeneratedWorkload &W, uint16_t Tenant) {
  assert(P.NumRegions >= P.NumSegments &&
         "each segment needs at least one region");
  SplitMix64 Rng(P.Seed * 0x9e3779b97f4a7c15ull + 0xd1b54a32d192ed03ull);

  W.NumLeaves += P.NumLeaves;
  W.NumMids += P.NumMids;
  W.NumRegions += P.NumRegions;

  auto Record = [&](MethodId Id, double Est) {
    if (W.MethodSizeEst.size() <= Id)
      W.MethodSizeEst.resize(Id + 1, 0.0);
    W.MethodSizeEst[Id] = Est;
  };
  auto AddMethod = [&](Method M) {
    MethodId Id = Prog.addMethod(std::move(M));
    Prog.method(Id).Tenant = Tenant;
    return Id;
  };

  // --- Tier 1: leaf methods ----------------------------------------------
  std::vector<MethodId> Leaves;
  Leaves.reserve(P.NumLeaves);
  for (uint32_t L = 0; L != P.NumLeaves; ++L) {
    uint64_t Target = logUniform(Rng, P.LeafSizeMin, P.LeafSizeMax);
    KernelSpec K;
    K.FootprintWords =
        powerOfTwoIn(logUniform(Rng, P.LeafFootMin, P.LeafFootMax),
                     P.LeafFootMin, P.LeafFootMax);
    K.BaseAddr = Prog.addGlobal(K.FootprintWords);
    K.StrideWords = Rng.nextBool(0.3) ? 8 : 1;
    K.FpOps = P.FpOpsPerIter;
    K.AluOps = P.AluOpsPerIter;
    K.StoreEveryLog2 = P.StoreEveryLog2;
    K.DataDependentBranch = P.DataDependentBranch && Rng.nextBool(0.5);
    applyDataSkew(K, P.DataZipfTheta);
    double IterCost = kernelIterCost(K);
    K.Iters = std::max<uint64_t>(
        4, static_cast<uint64_t>(static_cast<double>(Target) / IterCost));

    MethodBuilder B("leaf" + std::to_string(L));
    emitKernel(B, K);
    B.ret(RegAcc);
    MethodId Id = AddMethod(B.take());
    Leaves.push_back(Id);
    Record(Id, static_cast<double>(K.Iters) * IterCost + 6.0);
  }
  // Skewed leaf popularity: a few leaves take most calls (hotspot
  // concentration), with the skew exponent as the profile's
  // MethodZipfTheta knob. A round-robin cursor guarantees every leaf is
  // bound to some mid, so the whole method population is reachable.
  ZipfSampler LeafPicker(Leaves.size(), P.MethodZipfTheta);
  size_t LeafCursor = 0;

  // --- Tier 2: mid methods (L1D-hotspot band) -----------------------------
  std::vector<MethodId> Mids;
  std::vector<uint64_t> MidFootprints;
  Mids.reserve(P.NumMids);
  MidFootprints.reserve(P.NumMids);
  for (uint32_t M = 0; M != P.NumMids; ++M) {
    uint64_t Target = logUniform(Rng, P.MidSizeMin, P.MidSizeMax);
    KernelSpec K;
    bool Big = Rng.nextBool(P.BigFootprintFraction);
    uint64_t Foot =
        Big ? P.MidFootBigWords : logUniform(Rng, P.MidFootMin, P.MidFootMax);
    K.FootprintWords =
        powerOfTwoIn(Foot, P.MidFootMin,
                     std::max(P.MidFootBigWords, P.MidFootMax));
    K.BaseAddr = Prog.addGlobal(K.FootprintWords);
    K.StrideWords = Big ? 8 : (Rng.nextBool(0.4) ? 4 : 1);
    K.FpOps = P.FpOpsPerIter;
    K.AluOps = P.AluOpsPerIter;
    K.StoreEveryLog2 = P.StoreEveryLog2;
    K.DataDependentBranch = P.DataDependentBranch && Rng.nextBool(0.5);
    applyDataSkew(K, P.DataZipfTheta);

    // Pick callees first, then size the kernel to hit the target. Cursor
    // picks guarantee full leaf coverage across the mid population; one
    // zipf-skewed pick concentrates execution on a few hot leaves. The
    // call count is raised when needed so the cursor can reach every leaf.
    uint32_t NumCalls = std::max<uint32_t>(
        P.LeafCallsPerMid,
        static_cast<uint32_t>(
            (Leaves.size() + P.NumMids - 1) / P.NumMids + 1));
    std::vector<MethodId> Picks;
    double CallCost = 0.0;
    for (uint32_t C = 0; C != NumCalls; ++C) {
      MethodId Callee =
          C + 1 == NumCalls
              ? Leaves[LeafPicker.next(Rng)]
              : Leaves[LeafCursor++ % Leaves.size()];
      double Cost = W.MethodSizeEst[Callee];
      if (CallCost + Cost > 0.7 * static_cast<double>(Target) && C > 0)
        break;
      Picks.push_back(Callee);
      CallCost += Cost;
    }
    double IterCost = kernelIterCost(K);
    double OwnBudget =
        std::max(200.0, static_cast<double>(Target) - CallCost);
    K.Iters = std::max<uint64_t>(
        8, static_cast<uint64_t>(OwnBudget / IterCost));

    MethodBuilder B("mid" + std::to_string(M));
    emitKernel(B, K);
    for (size_t C = 0, E = Picks.size(); C != E; ++C) {
      B.addi(/*Dst=*/1, /*A=*/0, static_cast<int64_t>(C) + 17);
      B.call(/*Dst=*/2, Picks[C], /*FirstArg=*/1, /*NumArgs=*/1);
    }
    B.ret(RegAcc);
    MethodId Id = AddMethod(B.take());
    Mids.push_back(Id);
    MidFootprints.push_back(K.FootprintWords);
    Record(Id, static_cast<double>(K.Iters) * IterCost + CallCost +
                   2.0 * static_cast<double>(Picks.size()) + 6.0);
  }
  // Temporal working-set coherence: real phases touch related data, so
  // methods that execute near each other in time should prefer similar
  // cache sizes. Mids are ordered by footprint; each region draws its mids
  // from a contiguous window of that order, and regions themselves are
  // built in ascending-footprint order (segments then take contiguous
  // chunks). Without this, back-to-back hotspots disagree on the best
  // configuration and the ACE thrashes through reconfigurations at a rate
  // the paper's workloads never exhibit.
  std::vector<uint32_t> MidOrder(Mids.size());
  for (uint32_t I = 0, E = static_cast<uint32_t>(Mids.size()); I != E; ++I)
    MidOrder[I] = I;
  std::sort(MidOrder.begin(), MidOrder.end(),
            [&](uint32_t A, uint32_t B) {
              return MidFootprints[A] < MidFootprints[B];
            });

  // Region footprints are drawn once per *segment* and shared by the
  // segment's regions (each still owns its array): a macro phase works on
  // one kind of data, so back-to-back regions agree on the preferred L2
  // size and the ACE is not forced to reconfigure at every region switch.
  // Segment footprints ascend so neighboring segments stay similar too.
  std::vector<uint64_t> SegmentFoots;
  SegmentFoots.reserve(P.NumSegments);
  for (uint32_t S = 0; S != P.NumSegments; ++S)
    SegmentFoots.push_back(
        powerOfTwoIn(logUniform(Rng, P.RegionFootMin, P.RegionFootMax),
                     P.RegionFootMin, P.RegionFootMax));
  std::sort(SegmentFoots.begin(), SegmentFoots.end());
  // Region R belongs to segment R / RegionsPerSegment (contiguous chunks).
  uint32_t RegionsPerSegment =
      (P.NumRegions + P.NumSegments - 1) / P.NumSegments;
  std::vector<uint64_t> RegionFoots;
  RegionFoots.reserve(P.NumRegions);
  for (uint32_t R = 0; R != P.NumRegions; ++R)
    RegionFoots.push_back(SegmentFoots[std::min<uint32_t>(
        R / RegionsPerSegment, P.NumSegments - 1)]);

  // --- Tier 3: region methods (L2-hotspot band) ----------------------------
  // A region's bulk data walk lives in its own *scanner* method sized into
  // the L1D-hotspot band: in the paper's model, large hotspots consist
  // almost entirely of nested small hotspots, so every significant working
  // set belongs to some L1D-manageable procedure. The scanner touches the
  // region's (L2-sized) array, driving the enclosing region's L2 decision
  // while its own L1D needs are measured and managed directly.
  std::vector<MethodId> Regions;
  Regions.reserve(P.NumRegions);
  for (uint32_t R = 0; R != P.NumRegions; ++R) {
    uint64_t Target = logUniform(Rng, P.RegionSizeMin, P.RegionSizeMax);
    KernelSpec K;
    K.FootprintWords = RegionFoots[R];
    K.BaseAddr = Prog.addGlobal(K.FootprintWords);
    K.StrideWords = P.RegionStrideWords;
    K.FpOps = P.FpOpsPerIter;
    K.AluOps = P.AluOpsPerIter;
    K.StoreEveryLog2 = P.StoreEveryLog2;
    applyDataSkew(K, P.DataZipfTheta);

    // Scanner method over the region's array, sized into the L1D band.
    uint64_t ScanTarget = std::clamp<uint64_t>(
        static_cast<uint64_t>(0.3 * static_cast<double>(Target)),
        P.MidSizeMin, 40000);
    double ScanIterCost = kernelIterCost(K);
    KernelSpec ScanK = K;
    ScanK.Iters = std::max<uint64_t>(
        16, static_cast<uint64_t>(static_cast<double>(ScanTarget) /
                                  ScanIterCost));
    MethodBuilder ScanB("scan" + std::to_string(R));
    emitKernel(ScanB, ScanK);
    ScanB.ret(RegAcc);
    MethodId ScanId = AddMethod(ScanB.take());
    double ScanEst =
        static_cast<double>(ScanK.Iters) * ScanIterCost + 6.0;
    Record(ScanId, ScanEst);

    // Mid picks come from a footprint-coherent window whose position slides
    // with the region index, guaranteeing every mid is reachable across the
    // region population.
    size_t NumMids = Mids.size();
    size_t Window = std::min<size_t>(NumMids,
                                     std::max<size_t>(P.MidsPerRegion * 2, 6));
    size_t MaxStart = NumMids - Window;
    size_t Start = P.NumRegions > 1
                       ? (static_cast<size_t>(R) * MaxStart) /
                             (P.NumRegions - 1)
                       : 0;
    std::vector<MethodId> Picks;
    double MidCost = 0.0;
    for (uint32_t C = 0; C != P.MidsPerRegion; ++C) {
      size_t Offset = C == 0 ? (R % Window)
                             : Rng.nextBelow(Window);
      MethodId Callee = Mids[MidOrder[Start + Offset]];
      Picks.push_back(Callee);
      MidCost += W.MethodSizeEst[Callee];
    }
    // Split the target: the scanner call plus repeated mid calls.
    double CallBudget =
        std::max(0.0, static_cast<double>(Target) - ScanEst);
    uint64_t MidRepeat = std::max<uint64_t>(
        1, static_cast<uint64_t>(CallBudget / std::max(1.0, MidCost)));
    MidRepeat = std::min<uint64_t>(MidRepeat, 64);

    MethodBuilder B("region" + std::to_string(R));
    B.mov(/*Dst=*/4, /*Src=*/0);
    B.call(/*Dst=*/5, ScanId, /*FirstArg=*/4, /*NumArgs=*/1);
    // Each mid runs as a burst of MidRepeat back-to-back invocations —
    // real code dwells in one subroutine for a stretch, which keeps a mid's
    // working set resident across consecutive invocations (and makes
    // per-invocation tuning measurements comparable).
    for (size_t C = 0, E = Picks.size(); C != E; ++C) {
      B.iconst(/*Dst=*/1, 0);
      MethodBuilder::Label RepTop = B.newLabel();
      B.bind(RepTop);
      B.add(/*Dst=*/2, /*A=*/0, /*B=*/1);
      B.addi(/*Dst=*/2, /*A=*/2, static_cast<int64_t>(C) * 1023);
      B.call(/*Dst=*/3, Picks[C], /*FirstArg=*/2, /*NumArgs=*/1);
      B.addi(/*Dst=*/1, /*A=*/1, 1);
      B.bri(CondKind::Lt, /*A=*/1, static_cast<int64_t>(MidRepeat), RepTop);
    }
    B.ret(/*Value=*/5);
    MethodId Id = AddMethod(B.take());
    Regions.push_back(Id);
    Record(Id, ScanEst + 2.0 +
                   static_cast<double>(MidRepeat) *
                       (MidCost + 4.0 * static_cast<double>(Picks.size()) +
                        2.0) +
                   8.0);
  }

  return TenantBuild{std::move(Regions), RegionsPerSegment};
}

/// Emits segment \p S's region bursts into the main under construction
/// (r1 holds the outer-iteration counter). Segment s owns the contiguous
/// chunk of regions starting at s * RegionsPerSegment (matching the
/// footprint assignment in buildTenantTiers). Each region runs as a
/// *burst* of SegmentRepeats back-to-back invocations: real programs
/// dwell in one code region for a stretch, which is what gives BBV its
/// stable phases and gives recurring hotspots their guard-friendly
/// invocation pattern. \p SaltBias perturbs the salt per tenant in a mix
/// (0 for single-tenant mains, which must stay bit-identical to the
/// historical emission).
/// \returns the estimated instructions contributed per outer iteration.
double emitSegment(MethodBuilder &B, const WorkloadProfile &P,
                   const GeneratedWorkload &W, const TenantBuild &T,
                   uint32_t S, int64_t SaltBias) {
  double PerSegment = 0.0;
  uint32_t ChunkBegin = S * T.RegionsPerSegment;
  uint32_t ChunkEnd =
      std::min<uint32_t>(ChunkBegin + T.RegionsPerSegment, P.NumRegions);
  for (uint32_t R = ChunkBegin; R < ChunkEnd; ++R) {
    B.iconst(/*Dst=*/2, 0); // rep
    MethodBuilder::Label RepTop = B.newLabel();
    B.bind(RepTop);
    // salt = outer * 31 + rep (+ tenant bias in mixes)
    B.muli(/*Dst=*/3, /*A=*/1, 31);
    B.add(/*Dst=*/3, /*A=*/3, /*B=*/2);
    if (SaltBias != 0)
      B.addi(/*Dst=*/3, /*A=*/3, SaltBias);
    double PerRep = 6.0 + W.MethodSizeEst[T.Regions[R]];
    B.call(/*Dst=*/4, T.Regions[R], /*FirstArg=*/3, /*NumArgs=*/1);
    if (P.PhaseNoiseEveryN >= 2) {
      // Every Nth repetition also runs a foreign region, blurring this
      // burst's BBV signature (javac-style irregularity).
      uint64_t NoiseMask = std::bit_ceil<uint64_t>(P.PhaseNoiseEveryN) - 1;
      MethodBuilder::Label SkipNoise = B.newLabel();
      B.andi(/*Dst=*/5, /*A=*/2, static_cast<int64_t>(NoiseMask));
      B.bri(CondKind::Ne, /*A=*/5, 0, SkipNoise);
      uint32_t Confuser = (R + 1) % P.NumRegions;
      B.call(/*Dst=*/4, T.Regions[Confuser], /*FirstArg=*/3, /*NumArgs=*/1);
      B.bind(SkipNoise);
      PerRep += W.MethodSizeEst[T.Regions[Confuser]] /
                    static_cast<double>(NoiseMask + 1) +
                2.0;
    }
    B.addi(/*Dst=*/2, /*A=*/2, 1);
    B.bri(CondKind::Lt, /*A=*/2, static_cast<int64_t>(P.SegmentRepeats),
          RepTop);
    PerSegment += PerRep * static_cast<double>(P.SegmentRepeats) + 2.0;
  }
  return PerSegment;
}

} // namespace

GeneratedWorkload WorkloadGenerator::generate(const WorkloadProfile &P) {
  GeneratedWorkload W;
  Program &Prog = W.Prog;

  // Tier construction: one tenant for ordinary profiles, each listed
  // tenant (tagged 1..N) for a mix.
  std::vector<TenantBuild> Builds;
  if (P.isMix()) {
    assert(P.Tenants.size() >= 2 && "a mix needs at least two tenants");
    Builds.reserve(P.Tenants.size());
    for (size_t I = 0; I != P.Tenants.size(); ++I)
      Builds.push_back(buildTenantTiers(
          Prog, P.Tenants[I], W, static_cast<uint16_t>(I + 1)));
  } else {
    Builds.push_back(buildTenantTiers(Prog, P, W, kNoTenant));
  }

  // --- main: segments and phase recurrence --------------------------------
  // Single-tenant mains walk the profile's segments in order. Mix mains
  // round-robin one segment per tenant per slot — tenant t's slot-k
  // segment is k % NumSegments(t) — so the adaptive schemes see
  // cross-tenant phase interference at every segment boundary. The mix
  // driver itself is untagged (kNoTenant); only tenant methods carry tags.
  MethodBuilder B("main");
  B.iconst(/*Dst=*/1, 0); // outer
  MethodBuilder::Label OuterTop = B.newLabel();
  B.bind(OuterTop);
  double PerOuter = 0.0;
  if (P.isMix()) {
    uint32_t MaxSegments = 0;
    for (const WorkloadProfile &T : P.Tenants)
      MaxSegments = std::max(MaxSegments, T.NumSegments);
    for (uint32_t Slot = 0; Slot != MaxSegments; ++Slot)
      for (size_t I = 0; I != P.Tenants.size(); ++I)
        PerOuter += emitSegment(
            B, P.Tenants[I], W, Builds[I], Slot % P.Tenants[I].NumSegments,
            /*SaltBias=*/static_cast<int64_t>(I + 1) * 7);
  } else {
    for (uint32_t S = 0; S != P.NumSegments; ++S)
      PerOuter += emitSegment(B, P, W, Builds[0], S, /*SaltBias=*/0);
  }
  B.addi(/*Dst=*/1, /*A=*/1, 1);
  B.bri(CondKind::Lt, /*A=*/1, static_cast<int64_t>(P.OuterIterations),
        OuterTop);
  B.halt();
  double MainEst = PerOuter * static_cast<double>(P.OuterIterations) + 4.0;
  MethodId MainId = Prog.addMethod(B.take());
  if (W.MethodSizeEst.size() <= MainId)
    W.MethodSizeEst.resize(MainId + 1, 0.0);
  W.MethodSizeEst[MainId] = MainEst;
  Prog.setEntry(MainId);
  W.EstimatedInstructions = MainEst;

  // Post-generation gate: finalize runs the full dynalint verification
  // (CFG + DO/ACE placement checks) on every generated program, so a
  // generator bug is rejected here — with a classified diagnostic — rather
  // than surfacing later as a runtime trap or a silently mistuned run.
  if (Status S = Prog.finalize(analysis::verifyProgramStatus); !S)
    fatalError("workload generator produced invalid program", S);
  return W;
}
