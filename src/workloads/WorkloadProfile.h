//===- workloads/WorkloadProfile.h - Benchmark descriptors ------*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Profiles describing the seven synthetic stand-ins for SPECjvm98 (Table
/// 3). Each profile parameterizes the workload generator so the resulting
/// program reproduces the benchmark's *hotspot statistics* — method
/// population, hotspot size distribution, invocation frequencies, working
/// sets and phase (ir)regularity — which are what the paper's evaluation
/// depends on. All instruction-denominated values are already scaled by
/// kSimScale = 10 relative to the paper.
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_WORKLOADS_WORKLOADPROFILE_H
#define DYNACE_WORKLOADS_WORKLOADPROFILE_H

#include <cstdint>
#include <string>
#include <vector>

namespace dynace {

/// Generator parameters for one synthetic benchmark.
struct WorkloadProfile {
  std::string Name;
  std::string Description;
  uint64_t Seed = 1;

  // --- Method population -------------------------------------------------
  /// Leaf methods: small compute kernels (< L1D-hotspot band).
  uint32_t NumLeaves = 200;
  /// Mid-tier methods targeting the L1D-hotspot size band.
  uint32_t NumMids = 64;
  /// Region methods targeting the L2-hotspot size band.
  uint32_t NumRegions = 22;
  /// Macro phases; regions are distributed among segments round-robin.
  uint32_t NumSegments = 8;

  // --- Execution shape ----------------------------------------------------
  /// Times the whole segment sequence repeats (phase recurrence).
  uint32_t OuterIterations = 3;
  /// Consecutive repetitions of each segment's region sequence.
  uint32_t SegmentRepeats = 4;
  /// Every Nth segment repetition also calls a region from a different
  /// segment, blurring phase boundaries (0 = off). Used for javac.
  uint32_t PhaseNoiseEveryN = 0;

  // --- Per-tier dynamic size targets (inclusive instructions) -------------
  uint64_t LeafSizeMin = 150, LeafSizeMax = 2500;
  uint64_t MidSizeMin = 6000, MidSizeMax = 45000;
  uint64_t RegionSizeMin = 60000, RegionSizeMax = 400000;

  // --- Memory behavior -----------------------------------------------------
  /// Footprints in 8-byte words, rounded to powers of two (log-uniform).
  /// Scaled 1/8 with the cache capacities (see HierarchyConfig).
  uint64_t LeafFootMin = 16, LeafFootMax = 128;
  uint64_t MidFootMin = 32, MidFootMax = 256;
  uint64_t RegionFootMin = 256, RegionFootMax = 2048;
  /// Fraction of mid methods pinned to MidFootBigWords — db's "fewer than
  /// 10 procedures cause >95% of data misses" concentration.
  double BigFootprintFraction = 0.1;
  /// Footprint of the "big" mids (words); large enough to defeat every L1D
  /// setting so these methods miss regardless of configuration.
  uint64_t MidFootBigWords = 4096;
  /// Access stride in words for region scans (larger = more cache lines
  /// touched per instruction).
  uint32_t RegionStrideWords = 8;

  // --- Instruction mix -----------------------------------------------------
  uint32_t FpOpsPerIter = 0;  ///< FP ops per kernel-loop iteration.
  uint32_t AluOpsPerIter = 3; ///< Extra integer ops per iteration.
  uint32_t StoreEveryLog2 = 2; ///< Store on every 2^k-th iteration.
  bool DataDependentBranch = false; ///< Hard-to-predict branch per iter.

  // --- Call structure ------------------------------------------------------
  uint32_t LeafCallsPerMid = 4;
  uint32_t MidsPerRegion = 3;
  uint32_t MidRepeatPerRegion = 3;
};

/// \returns the seven SPECjvm98-like profiles in the paper's order
/// (compress, db, jack, javac, jess, mpegaudio, mtrt).
const std::vector<WorkloadProfile> &specjvm98Profiles();

/// \returns the profile named \p Name, or null when unknown.
const WorkloadProfile *findProfile(const std::string &Name);

} // namespace dynace

#endif // DYNACE_WORKLOADS_WORKLOADPROFILE_H
