//===- workloads/WorkloadProfile.h - Benchmark descriptors ------*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Profiles describing the seven synthetic stand-ins for SPECjvm98 (Table
/// 3). Each profile parameterizes the workload generator so the resulting
/// program reproduces the benchmark's *hotspot statistics* — method
/// population, hotspot size distribution, invocation frequencies, working
/// sets and phase (ir)regularity — which are what the paper's evaluation
/// depends on. All instruction-denominated values are already scaled by
/// kSimScale = 10 relative to the paper.
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_WORKLOADS_WORKLOADPROFILE_H
#define DYNACE_WORKLOADS_WORKLOADPROFILE_H

#include <cstdint>
#include <string>
#include <vector>

namespace dynace {

/// Generator parameters for one synthetic benchmark.
struct WorkloadProfile {
  std::string Name;
  std::string Description;
  uint64_t Seed = 1;

  // --- Method population -------------------------------------------------
  /// Leaf methods: small compute kernels (< L1D-hotspot band).
  uint32_t NumLeaves = 200;
  /// Mid-tier methods targeting the L1D-hotspot size band.
  uint32_t NumMids = 64;
  /// Region methods targeting the L2-hotspot size band.
  uint32_t NumRegions = 22;
  /// Macro phases; regions are distributed among segments round-robin.
  uint32_t NumSegments = 8;

  // --- Execution shape ----------------------------------------------------
  /// Times the whole segment sequence repeats (phase recurrence).
  uint32_t OuterIterations = 3;
  /// Consecutive repetitions of each segment's region sequence.
  uint32_t SegmentRepeats = 4;
  /// Every Nth segment repetition also calls a region from a different
  /// segment, blurring phase boundaries (0 = off). Used for javac.
  uint32_t PhaseNoiseEveryN = 0;

  // --- Per-tier dynamic size targets (inclusive instructions) -------------
  uint64_t LeafSizeMin = 150, LeafSizeMax = 2500;
  uint64_t MidSizeMin = 6000, MidSizeMax = 45000;
  uint64_t RegionSizeMin = 60000, RegionSizeMax = 400000;

  // --- Memory behavior -----------------------------------------------------
  /// Footprints in 8-byte words, rounded to powers of two (log-uniform).
  /// Scaled 1/8 with the cache capacities (see HierarchyConfig).
  uint64_t LeafFootMin = 16, LeafFootMax = 128;
  uint64_t MidFootMin = 32, MidFootMax = 256;
  uint64_t RegionFootMin = 256, RegionFootMax = 2048;
  /// Fraction of mid methods pinned to MidFootBigWords — db's "fewer than
  /// 10 procedures cause >95% of data misses" concentration.
  double BigFootprintFraction = 0.1;
  /// Footprint of the "big" mids (words); large enough to defeat every L1D
  /// setting so these methods miss regardless of configuration.
  uint64_t MidFootBigWords = 4096;
  /// Access stride in words for region scans (larger = more cache lines
  /// touched per instruction).
  uint32_t RegionStrideWords = 8;

  // --- Instruction mix -----------------------------------------------------
  uint32_t FpOpsPerIter = 0;  ///< FP ops per kernel-loop iteration.
  uint32_t AluOpsPerIter = 3; ///< Extra integer ops per iteration.
  uint32_t StoreEveryLog2 = 2; ///< Store on every 2^k-th iteration.
  bool DataDependentBranch = false; ///< Hard-to-predict branch per iter.

  // --- Call structure ------------------------------------------------------
  uint32_t LeafCallsPerMid = 4;
  uint32_t MidsPerRegion = 3;
  uint32_t MidRepeatPerRegion = 3;

  // --- Skew knobs (scenario frontier) --------------------------------------
  /// Zipf exponent on method-invocation popularity: each mid's skewed leaf
  /// pick draws from zipfWeights(NumLeaves, MethodZipfTheta). 0 = uniform
  /// picks; larger values concentrate invocations (and therefore hotspot
  /// mass) on fewer leaves. The default 0.8 is the suite's historical
  /// fixed skew — default-constructed profiles generate bit-identical
  /// programs to the pre-knob generator.
  double MethodZipfTheta = 0.8;
  /// Zipf exponent on data-access distributions: 0 (the default) walks
  /// each kernel's array uniformly, exactly the legacy access pattern;
  /// when > 0 the kernel routes the Zipf(theta) head mass of its accesses
  /// into a 1/16 hot prefix of the array, so higher theta shrinks the
  /// effective working set the way skewed key popularity does in storage
  /// workloads (SNIPPETS.md Snippet 3).
  double DataZipfTheta = 0.0;

  // --- Multi-tenant mixes --------------------------------------------------
  /// Non-empty = this profile is a mix: the listed tenant profiles are all
  /// generated into one program (tenant-tagged methods, disjoint data) and
  /// an interleaving main round-robins their segments so the adaptive
  /// schemes re-tune under cross-tenant phase interference. For a mix,
  /// OuterIterations drives the mix main's outer loop; the per-tenant
  /// execution-shape knobs come from each tenant's own profile.
  std::vector<WorkloadProfile> Tenants;

  /// \returns true when this profile describes a multi-tenant mix.
  bool isMix() const { return !Tenants.empty(); }
};

/// \returns the seven SPECjvm98-like profiles in the paper's order
/// (compress, db, jack, javac, jess, mpegaudio, mtrt).
const std::vector<WorkloadProfile> &specjvm98Profiles();

/// \returns the profile named \p Name, or null when unknown.
const WorkloadProfile *findProfile(const std::string &Name);

/// Derives a skewed variant of \p Base: sets both MethodZipfTheta and
/// DataZipfTheta to \p Theta and renames it "<base>@z<theta>" (two
/// decimals), so sweep variants get distinct result-cache identities.
/// \returns the derived profile.
WorkloadProfile withZipfTheta(WorkloadProfile Base, double Theta);

/// Builds the theta-sweep profile list for \p Base — one withZipfTheta()
/// variant per value of \p Thetas, in order.
std::vector<WorkloadProfile>
zipfSweepProfiles(const WorkloadProfile &Base,
                  const std::vector<double> &Thetas);

/// Builds a multi-tenant mix profile named "mix:<a>+<b>+..." over
/// \p TenantProfiles (at least two). \p OuterIterations bounds the mix
/// main's outer loop (0 = derive from the tenants: the minimum of their
/// OuterIterations, at least 1).
/// \returns the mix profile.
WorkloadProfile makeMixProfile(std::vector<WorkloadProfile> TenantProfiles,
                               uint32_t OuterIterations = 0);

/// \returns the standard mix grid — the multi-tenant scenarios the mix
/// bench runs: a two-tenant cache-antagonist pair, a three-tenant
/// irregular mix, and a skewed two-tenant mix.
const std::vector<WorkloadProfile> &standardMixProfiles();

} // namespace dynace

#endif // DYNACE_WORKLOADS_WORKLOADPROFILE_H
