//===- workloads/Benchmarks.cpp - The seven SPECjvm98 stand-ins -----------==//
//
// Profiles are calibrated against the paper's Tables 3-5: method population
// (hotspot counts), hotspot size distributions, invocation frequencies,
// working-set skew and phase regularity. Dynamic instruction counts are
// ~1/200 of the paper's runs; all interval-denominated parameters elsewhere
// are scaled by kSimScale = 10 (see DESIGN.md section 6).
//
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadProfile.h"

#include <cstdio>

using namespace dynace;

static std::vector<WorkloadProfile> makeProfiles() {
  std::vector<WorkloadProfile> Out;

  {
    // compress: LZW compression. Few, large, regular loops; writes often;
    // the largest average hotspot size of the suite and very stable phases.
    WorkloadProfile P;
    P.Name = "compress";
    P.Description = "A popular LZW compression program.";
    P.Seed = 101;
    P.NumLeaves = 215;
    P.NumMids = 62;
    P.NumRegions = 22;
    P.NumSegments = 7;
    P.OuterIterations = 12;
    P.SegmentRepeats = 8;
    P.LeafSizeMin = 300;
    P.LeafSizeMax = 4000;
    P.MidSizeMin = 14000;
    P.MidSizeMax = 45000;
    P.RegionSizeMin = 55000;
    P.RegionSizeMax = 150000;
    P.LeafFootMin = 16;
    P.LeafFootMax = 128;
    P.MidFootMin = 64;
    P.MidFootMax = 512;
    P.BigFootprintFraction = 0.15;
    P.RegionFootMin = 256;
    P.RegionFootMax = 2048;
    P.AluOpsPerIter = 2;
    P.StoreEveryLog2 = 1;
    P.LeafCallsPerMid = 3;
    P.MidsPerRegion = 3;
    Out.push_back(P);
  }

  {
    // db: data management. A handful of procedures owns nearly all data
    // cache misses (Shuf et al.); everything else has a tiny working set.
    WorkloadProfile P;
    P.Name = "db";
    P.Description = "Data management benchmarking software written by IBM.";
    P.Seed = 202;
    P.NumLeaves = 229;
    P.NumMids = 58;
    P.NumRegions = 29;
    P.NumSegments = 9;
    P.OuterIterations = 12;
    P.SegmentRepeats = 4;
    P.LeafSizeMin = 250;
    P.LeafSizeMax = 3500;
    P.MidSizeMin = 14000;
    P.MidSizeMax = 45000;
    P.RegionSizeMin = 65000;
    P.RegionSizeMax = 250000;
    P.LeafFootMin = 8;
    P.LeafFootMax = 64;
    P.MidFootMin = 16;
    P.MidFootMax = 64;
    P.BigFootprintFraction = 0.10;
    P.RegionFootMin = 256;
    P.RegionFootMax = 1024;
    P.AluOpsPerIter = 2;
    P.DataDependentBranch = true;
    P.LeafCallsPerMid = 4;
    Out.push_back(P);
  }

  {
    // jack: parser generator. Many small methods invoked extremely often;
    // the smallest average hotspot size of the suite.
    WorkloadProfile P;
    P.Name = "jack";
    P.Description = "A real parser-generator from Sun Microsystems.";
    P.Seed = 303;
    P.NumLeaves = 358;
    P.NumMids = 81;
    P.NumRegions = 31;
    P.NumSegments = 10;
    P.OuterIterations = 12;
    P.SegmentRepeats = 4;
    P.LeafSizeMin = 80;
    P.LeafSizeMax = 600;
    P.MidSizeMin = 14000;
    P.MidSizeMax = 35000;
    P.RegionSizeMin = 60000;
    P.RegionSizeMax = 200000;
    P.LeafFootMin = 8;
    P.LeafFootMax = 64;
    P.MidFootMin = 32;
    P.MidFootMax = 128;
    P.BigFootprintFraction = 0.08;
    P.RegionFootMin = 256;
    P.RegionFootMax = 2048;
    P.AluOpsPerIter = 1;
    P.DataDependentBranch = true;
    P.LeafCallsPerMid = 6;
    P.MidsPerRegion = 3;
    Out.push_back(P);
  }

  {
    // javac: the JDK 1.0.2 compiler. The largest method population and the
    // most irregular phase behavior (lowest stable-interval fraction).
    WorkloadProfile P;
    P.Name = "javac";
    P.Description = "The JDK 1.0.2 Java compiler.";
    P.Seed = 404;
    P.NumLeaves = 544;
    P.NumMids = 108;
    P.NumRegions = 33;
    P.NumSegments = 16;
    P.OuterIterations = 14;
    P.SegmentRepeats = 3;
    P.PhaseNoiseEveryN = 2;
    P.LeafSizeMin = 100;
    P.LeafSizeMax = 1200;
    P.MidSizeMin = 14000;
    P.MidSizeMax = 40000;
    P.RegionSizeMin = 60000;
    P.RegionSizeMax = 200000;
    P.LeafFootMin = 16;
    P.LeafFootMax = 128;
    P.MidFootMin = 64;
    P.MidFootMax = 512;
    P.BigFootprintFraction = 0.12;
    P.RegionFootMin = 512;
    P.RegionFootMax = 4096;
    P.AluOpsPerIter = 1;
    P.DataDependentBranch = true;
    P.LeafCallsPerMid = 5;
    Out.push_back(P);
  }

  {
    // jess: CLIPS-style expert system. Rule matching: data-dependent
    // control, moderate phase stability.
    WorkloadProfile P;
    P.Name = "jess";
    P.Description =
        "A Java version of NASA's popular CLIPS rule-based expert system.";
    P.Seed = 505;
    P.NumLeaves = 336;
    P.NumMids = 68;
    P.NumRegions = 30;
    P.NumSegments = 10;
    P.OuterIterations = 10;
    P.SegmentRepeats = 3;
    P.PhaseNoiseEveryN = 8;
    P.LeafSizeMin = 200;
    P.LeafSizeMax = 3000;
    P.MidSizeMin = 14000;
    P.MidSizeMax = 45000;
    P.RegionSizeMin = 60000;
    P.RegionSizeMax = 220000;
    P.LeafFootMin = 16;
    P.LeafFootMax = 128;
    P.MidFootMin = 32;
    P.MidFootMax = 256;
    P.BigFootprintFraction = 0.10;
    P.RegionFootMin = 256;
    P.RegionFootMax = 2048;
    P.AluOpsPerIter = 2;
    P.DataDependentBranch = true;
    P.LeafCallsPerMid = 4;
    Out.push_back(P);
  }

  {
    // mpegaudio: MP3 decoding. FP-heavy kernels with regular structure and
    // the largest run of the suite.
    WorkloadProfile P;
    P.Name = "mpegaudio";
    P.Description =
        "The core algorithm for software that decodes an MPEG-3 audio "
        "stream.";
    P.Seed = 606;
    P.NumLeaves = 299;
    P.NumMids = 64;
    P.NumRegions = 23;
    P.NumSegments = 8;
    P.OuterIterations = 14;
    P.SegmentRepeats = 5;
    P.LeafSizeMin = 300;
    P.LeafSizeMax = 3000;
    P.MidSizeMin = 14000;
    P.MidSizeMax = 45000;
    P.RegionSizeMin = 65000;
    P.RegionSizeMax = 250000;
    P.LeafFootMin = 16;
    P.LeafFootMax = 64;
    P.MidFootMin = 32;
    P.MidFootMax = 128;
    P.BigFootprintFraction = 0.06;
    P.RegionFootMin = 256;
    P.RegionFootMax = 1024;
    P.FpOpsPerIter = 3;
    P.AluOpsPerIter = 1;
    P.LeafCallsPerMid = 3;
    Out.push_back(P);
  }

  {
    // mtrt: dual-threaded ray tracer (modeled single-threaded, as DSS
    // serializes Java threads onto one simulated CPU). FP-heavy, extremely
    // stable phases.
    WorkloadProfile P;
    P.Name = "mtrt";
    P.Description = "A dual-threaded program that ray traces an image file.";
    P.Seed = 707;
    P.NumLeaves = 269;
    P.NumMids = 73;
    P.NumRegions = 21;
    P.NumSegments = 5;
    P.OuterIterations = 9;
    P.SegmentRepeats = 8;
    P.LeafSizeMin = 120;
    P.LeafSizeMax = 900;
    P.MidSizeMin = 14000;
    P.MidSizeMax = 35000;
    P.RegionSizeMin = 60000;
    P.RegionSizeMax = 150000;
    P.LeafFootMin = 16;
    P.LeafFootMax = 128;
    P.MidFootMin = 64;
    P.MidFootMax = 256;
    P.BigFootprintFraction = 0.08;
    P.RegionFootMin = 512;
    P.RegionFootMax = 2048;
    P.FpOpsPerIter = 3;
    P.AluOpsPerIter = 1;
    P.LeafCallsPerMid = 4;
    Out.push_back(P);
  }

  return Out;
}

const std::vector<WorkloadProfile> &dynace::specjvm98Profiles() {
  static const std::vector<WorkloadProfile> Profiles = makeProfiles();
  return Profiles;
}

const WorkloadProfile *dynace::findProfile(const std::string &Name) {
  for (const WorkloadProfile &P : specjvm98Profiles())
    if (P.Name == Name)
      return &P;
  return nullptr;
}

WorkloadProfile dynace::withZipfTheta(WorkloadProfile Base, double Theta) {
  char Suffix[32];
  std::snprintf(Suffix, sizeof(Suffix), "@z%.2f", Theta);
  Base.Name += Suffix;
  Base.MethodZipfTheta = Theta;
  Base.DataZipfTheta = Theta;
  return Base;
}

std::vector<WorkloadProfile>
dynace::zipfSweepProfiles(const WorkloadProfile &Base,
                          const std::vector<double> &Thetas) {
  std::vector<WorkloadProfile> Out;
  Out.reserve(Thetas.size());
  for (double Theta : Thetas)
    Out.push_back(withZipfTheta(Base, Theta));
  return Out;
}

WorkloadProfile
dynace::makeMixProfile(std::vector<WorkloadProfile> TenantProfiles,
                       uint32_t OuterIterations) {
  WorkloadProfile Mix;
  Mix.Name = "mix:";
  Mix.Description = "Multi-tenant interleaving of:";
  uint32_t MinOuter = 0;
  for (size_t I = 0; I != TenantProfiles.size(); ++I) {
    const WorkloadProfile &T = TenantProfiles[I];
    if (I != 0)
      Mix.Name += "+";
    Mix.Name += T.Name;
    Mix.Description += (I == 0 ? " " : ", ") + T.Name;
    if (MinOuter == 0 || T.OuterIterations < MinOuter)
      MinOuter = T.OuterIterations;
  }
  Mix.OuterIterations = OuterIterations != 0 ? OuterIterations
                        : MinOuter != 0      ? MinOuter
                                             : 1;
  // The mix's own seed only varies the (unused) single-tenant knobs; each
  // tenant generates from its own Seed so a tenant's instruction stream is
  // the same inside and outside the mix.
  Mix.Seed = 0;
  Mix.Tenants = std::move(TenantProfiles);
  return Mix;
}

const std::vector<WorkloadProfile> &dynace::standardMixProfiles() {
  static const std::vector<WorkloadProfile> Mixes = [] {
    std::vector<WorkloadProfile> Out;
    const WorkloadProfile &Compress = *findProfile("compress");
    const WorkloadProfile &Db = *findProfile("db");
    const WorkloadProfile &Javac = *findProfile("javac");
    const WorkloadProfile &Mpeg = *findProfile("mpegaudio");
    // Cache antagonists: compress's large stable working sets against db's
    // tiny ones — the schemes should want different L1D splits per tenant.
    Out.push_back(makeMixProfile({Compress, Db}));
    // Irregular three-way mix: javac's phase noise disrupts the other two
    // tenants' stable phases.
    Out.push_back(makeMixProfile({Db, Javac, Mpeg}));
    // Skewed pair: a heavily skewed db against baseline compress.
    Out.push_back(makeMixProfile({withZipfTheta(Db, 1.2), Compress}));
    return Out;
  }();
  return Mixes;
}
