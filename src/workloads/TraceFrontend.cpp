//===- workloads/TraceFrontend.cpp ----------------------------------------==//

#include "workloads/TraceFrontend.h"

#include "analysis/Verifier.h"
#include "isa/MethodBuilder.h"
#include "support/Env.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <functional>
#include <map>

using namespace dynace;

namespace {

using Reg = MethodBuilder::Reg;

/// Kernel registers; same convention as the workload generator (r0 is the
/// salt argument, r1..r7 belong to caller-side control code).
constexpr Reg RegI = 8;
constexpr Reg RegBase = 9;
constexpr Reg RegMask = 10;
constexpr Reg RegIdx = 11;
constexpr Reg RegVal = 12;
constexpr Reg RegAcc = 13;
constexpr Reg RegScratch = 14;
constexpr Reg RegFpA = 15;
constexpr Reg RegFpB = 16;
constexpr Reg RegIdx2 = 17;

/// Grammar limits: strict by design — a count outside these ranges is far
/// more likely a capture bug than a real workload, and rejecting it here
/// beats simulating garbage.
constexpr uint64_t kMaxBlockIters = 1000000000;  // 1e9
constexpr uint64_t kMaxCallTimes = 1000000;      // 1e6
constexpr uint32_t kMaxOpsPerIter = 64;
constexpr uint64_t kMinFootprintWords = 16;
constexpr uint64_t kMaxFootprintWords = 1ull << 22;

Status parseError(std::string_view File, size_t Line, std::string Msg) {
  return Status::error(ErrorCode::InvalidInput,
                       std::string(File) + ":" + std::to_string(Line) + ": " +
                           std::move(Msg));
}

/// Splits \p Line into whitespace-separated tokens, dropping everything
/// from the first '#'.
std::vector<std::string> tokenize(std::string_view Line) {
  std::vector<std::string> Tokens;
  std::string Cur;
  for (char C : Line) {
    if (C == '#')
      break;
    if (C == ' ' || C == '\t' || C == '\r') {
      if (!Cur.empty())
        Tokens.push_back(std::move(Cur));
      Cur.clear();
    } else {
      Cur.push_back(C);
    }
  }
  if (!Cur.empty())
    Tokens.push_back(std::move(Cur));
  return Tokens;
}

bool validMethodName(const std::string &Name) {
  if (Name.empty())
    return false;
  for (char C : Name)
    if (!((C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
          (C >= '0' && C <= '9') || C == '_' || C == '.' || C == '-'))
      return false;
  return true;
}

/// Average executed instructions per block-loop iteration, mirroring the
/// lowering in emitBlock().
double blockIterCost(const TraceBlock &Blk) {
  return 3.0 + 4.0 * Blk.Loads + static_cast<double>(Blk.Alu) +
         static_cast<double>(Blk.Fp) + 3.0 * Blk.Stores +
         (Blk.Branchy ? 2.5 : 0.0) + 2.0;
}

/// Emits one block's counted kernel loop. \p BlockIndex salts the access
/// pattern so different blocks of a method do not walk identical indices.
void emitBlock(MethodBuilder &B, const TraceBlock &Blk, size_t BlockIndex) {
  B.iconst(RegI, 0);
  MethodBuilder::Label Top = B.newLabel();
  B.bind(Top);
  // idx = (i * 7 + blockSalt) & mask
  B.muli(RegIdx, RegI, 7);
  B.addi(RegIdx, RegIdx, static_cast<int64_t>(BlockIndex) * 13 + 1);
  B.and_(RegIdx, RegIdx, RegMask);
  for (uint32_t L = 0; L != Blk.Loads; ++L) {
    B.addi(RegIdx2, RegIdx, static_cast<int64_t>(L) * 64);
    B.and_(RegIdx2, RegIdx2, RegMask);
    B.loadIdx(RegVal, RegBase, RegIdx2);
    B.add(RegAcc, RegAcc, RegVal);
  }
  for (uint32_t A = 0; A != Blk.Alu; ++A) {
    if (A % 2 == 0)
      B.xor_(RegScratch, RegAcc, RegVal);
    else
      B.addi(RegAcc, RegScratch, 0x5bd1);
  }
  for (uint32_t F = 0; F != Blk.Fp; ++F) {
    if (F % 2 == 0)
      B.fmul(RegFpA, RegFpA, RegFpB);
    else
      B.fadd(RegFpB, RegFpB, RegFpA);
  }
  for (uint32_t S = 0; S != Blk.Stores; ++S) {
    B.addi(RegIdx2, RegIdx, static_cast<int64_t>(S) * 32);
    B.and_(RegIdx2, RegIdx2, RegMask);
    B.storeIdx(RegBase, RegIdx2, RegAcc);
  }
  if (Blk.Branchy) {
    MethodBuilder::Label SkipOdd = B.newLabel();
    B.andi(RegScratch, RegVal, 1);
    B.bri(CondKind::Eq, RegScratch, 0, SkipOdd);
    B.addi(RegAcc, RegAcc, 1);
    B.bind(SkipOdd);
  }
  B.addi(RegI, RegI, 1);
  B.bri(CondKind::Lt, RegI, static_cast<int64_t>(Blk.Iters), Top);
}

} // namespace

Expected<TraceSpec> dynace::parseTraceSpec(std::string_view Text,
                                           std::string_view Name) {
  TraceSpec Spec;
  bool SeenHeader = false;
  bool InMethod = false;
  size_t MethodLine = 0;
  std::map<std::string, size_t> MethodIndex;

  size_t LineNo = 0;
  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    std::string_view Line = Text.substr(
        Pos, Eol == std::string_view::npos ? std::string_view::npos
                                           : Eol - Pos);
    Pos = Eol == std::string_view::npos ? Text.size() + 1 : Eol + 1;
    ++LineNo;

    std::vector<std::string> Tok = tokenize(Line);
    if (Tok.empty())
      continue;
    const std::string &Dir = Tok[0];

    if (!SeenHeader) {
      if (Dir != "dynatrace")
        return parseError(Name, LineNo,
                          "expected 'dynatrace 1' header, got '" + Dir + "'");
      if (Tok.size() != 2 || Tok[1] != "1")
        return parseError(Name, LineNo,
                          "unsupported dynatrace version (only 1)");
      SeenHeader = true;
      continue;
    }

    if (Dir == "method") {
      if (InMethod)
        return parseError(Name, LineNo,
                          "nested 'method' (missing 'end' for '" +
                              Spec.Methods.back().Name + "'?)");
      if (Tok.size() < 2 || Tok.size() > 3)
        return parseError(Name, LineNo,
                          "usage: method NAME [footprint=WORDS]");
      TraceMethod M;
      M.Name = Tok[1];
      if (!validMethodName(M.Name))
        return parseError(Name, LineNo,
                          "invalid method name '" + M.Name +
                              "' (use [A-Za-z0-9_.-]+)");
      if (MethodIndex.count(M.Name))
        return parseError(Name, LineNo,
                          "duplicate method '" + M.Name + "'");
      if (Tok.size() == 3) {
        if (Tok[2].rfind("footprint=", 0) != 0)
          return parseError(Name, LineNo,
                            "unknown method attribute '" + Tok[2] + "'");
        std::optional<uint64_t> Words =
            parseUnsignedInt(Tok[2].c_str() + 10);
        if (!Words || *Words < kMinFootprintWords ||
            *Words > kMaxFootprintWords)
          return parseError(Name, LineNo,
                            "footprint must be an integer in [" +
                                std::to_string(kMinFootprintWords) + ", " +
                                std::to_string(kMaxFootprintWords) + "]");
        M.FootprintWords = *Words;
      }
      MethodIndex[M.Name] = Spec.Methods.size();
      Spec.Methods.push_back(std::move(M));
      InMethod = true;
      MethodLine = LineNo;
      continue;
    }

    if (Dir == "block") {
      if (!InMethod)
        return parseError(Name, LineNo, "'block' outside a method");
      if (Tok.size() < 6 || Tok.size() > 7)
        return parseError(
            Name, LineNo,
            "usage: block ITERS LOADS STORES ALU FP [branchy]");
      uint64_t Vals[5];
      static const char *const Fields[5] = {"ITERS", "LOADS", "STORES",
                                            "ALU", "FP"};
      for (int I = 0; I != 5; ++I) {
        std::optional<uint64_t> V = parseUnsignedInt(Tok[I + 1].c_str());
        if (!V)
          return parseError(Name, LineNo,
                            std::string("block ") + Fields[I] + " '" +
                                Tok[I + 1] +
                                "' is not a non-negative integer");
        Vals[I] = *V;
      }
      TraceStmt S;
      S.K = TraceStmt::Block;
      S.B.Iters = Vals[0];
      if (S.B.Iters < 1 || S.B.Iters > kMaxBlockIters)
        return parseError(Name, LineNo,
                          "block ITERS must be in [1, " +
                              std::to_string(kMaxBlockIters) + "]");
      for (int I = 1; I != 5; ++I)
        if (Vals[I] > kMaxOpsPerIter)
          return parseError(Name, LineNo,
                            std::string("block ") + Fields[I] +
                                " exceeds the per-iteration cap of " +
                                std::to_string(kMaxOpsPerIter));
      S.B.Loads = static_cast<uint32_t>(Vals[1]);
      S.B.Stores = static_cast<uint32_t>(Vals[2]);
      S.B.Alu = static_cast<uint32_t>(Vals[3]);
      S.B.Fp = static_cast<uint32_t>(Vals[4]);
      if (Tok.size() == 7) {
        if (Tok[6] != "branchy")
          return parseError(Name, LineNo,
                            "unknown block flag '" + Tok[6] +
                                "' (only 'branchy')");
        S.B.Branchy = true;
      }
      Spec.Methods.back().Stmts.push_back(std::move(S));
      continue;
    }

    if (Dir == "call") {
      if (!InMethod)
        return parseError(Name, LineNo, "'call' outside a method");
      if (Tok.size() < 2 || Tok.size() > 3)
        return parseError(Name, LineNo, "usage: call NAME [TIMES]");
      TraceStmt S;
      S.K = TraceStmt::Call;
      S.C.Callee = Tok[1];
      if (!validMethodName(S.C.Callee))
        return parseError(Name, LineNo,
                          "invalid call target '" + S.C.Callee + "'");
      if (Tok.size() == 3) {
        std::optional<uint64_t> Times = parseUnsignedInt(Tok[2].c_str());
        if (!Times || *Times < 1 || *Times > kMaxCallTimes)
          return parseError(Name, LineNo,
                            "call TIMES must be an integer in [1, " +
                                std::to_string(kMaxCallTimes) + "]");
        S.C.Times = *Times;
      }
      Spec.Methods.back().Stmts.push_back(std::move(S));
      continue;
    }

    if (Dir == "end") {
      if (!InMethod)
        return parseError(Name, LineNo, "'end' without a matching 'method'");
      if (Tok.size() != 1)
        return parseError(Name, LineNo, "'end' takes no operands");
      if (Spec.Methods.back().Stmts.empty())
        return parseError(Name, MethodLine,
                          "method '" + Spec.Methods.back().Name +
                              "' has no statements");
      InMethod = false;
      continue;
    }

    if (Dir == "entry") {
      if (InMethod)
        return parseError(Name, LineNo, "'entry' inside a method body");
      if (Tok.size() != 2)
        return parseError(Name, LineNo, "usage: entry NAME");
      if (!Spec.Entry.empty())
        return parseError(Name, LineNo, "duplicate 'entry' directive");
      Spec.Entry = Tok[1];
      continue;
    }

    return parseError(Name, LineNo, "unknown directive '" + Dir + "'");
  }

  if (!SeenHeader)
    return parseError(Name, 1, "empty trace (missing 'dynatrace 1' header)");
  if (InMethod)
    return parseError(Name, MethodLine,
                      "method '" + Spec.Methods.back().Name +
                          "' is missing its 'end'");
  if (Spec.Methods.empty())
    return parseError(Name, LineNo, "trace defines no methods");
  if (Spec.Entry.empty())
    return parseError(Name, LineNo, "missing 'entry' directive");
  if (!MethodIndex.count(Spec.Entry))
    return parseError(Name, LineNo,
                      "entry '" + Spec.Entry + "' is not a defined method");
  return Spec;
}

std::string dynace::formatTraceSpec(const TraceSpec &Spec) {
  std::string Out = "dynatrace 1\n";
  for (const TraceMethod &M : Spec.Methods) {
    Out += "method " + M.Name +
           " footprint=" + std::to_string(M.FootprintWords) + "\n";
    for (const TraceStmt &S : M.Stmts) {
      if (S.K == TraceStmt::Block) {
        char Buf[128];
        std::snprintf(Buf, sizeof(Buf), "  block %llu %u %u %u %u%s\n",
                      static_cast<unsigned long long>(S.B.Iters), S.B.Loads,
                      S.B.Stores, S.B.Alu, S.B.Fp,
                      S.B.Branchy ? " branchy" : "");
        Out += Buf;
      } else {
        Out += "  call " + S.C.Callee + " " + std::to_string(S.C.Times) +
               "\n";
      }
    }
    Out += "end\n";
  }
  Out += "entry " + Spec.Entry + "\n";
  return Out;
}

Expected<GeneratedWorkload> dynace::compileTraceSpec(const TraceSpec &Spec) {
  // Resolve names and reject call cycles: the per-method cost estimate is
  // computed bottom-up, and trace captures are call trees — a cycle means
  // the capture (or a hand-edit) went wrong.
  std::map<std::string, size_t> Index;
  for (size_t I = 0; I != Spec.Methods.size(); ++I)
    Index[Spec.Methods[I].Name] = I;

  std::vector<double> Estimates(Spec.Methods.size(), 0.0);
  std::vector<uint8_t> Color(Spec.Methods.size(), 0); // 0 new 1 open 2 done
  // DFS recursion depth is bounded by the method count (cycles are cut
  // off), which the grammar keeps small.
  std::function<Status(size_t)> Visit = [&](size_t I) -> Status {
    if (Color[I] == 2)
      return Status();
    if (Color[I] == 1)
      return Status::error(ErrorCode::InvalidInput,
                           "recursive call cycle through method '" +
                               Spec.Methods[I].Name + "'");
    Color[I] = 1;
    double Est = 4.0; // preamble + terminator
    for (const TraceStmt &S : Spec.Methods[I].Stmts) {
      if (S.K == TraceStmt::Block) {
        Est += static_cast<double>(S.B.Iters) * blockIterCost(S.B) + 1.0;
      } else {
        auto It = Index.find(S.C.Callee);
        if (It == Index.end())
          return Status::error(ErrorCode::InvalidInput,
                               "method '" + Spec.Methods[I].Name +
                                   "' calls undefined method '" +
                                   S.C.Callee + "'");
        if (Status Sub = Visit(It->second); !Sub)
          return Sub;
        Est += static_cast<double>(S.C.Times) *
                   (4.0 + Estimates[It->second]) +
               1.0;
      }
    }
    Estimates[I] = Est;
    Color[I] = 2;
    return Status();
  };
  for (size_t I = 0; I != Spec.Methods.size(); ++I)
    if (Status S = Visit(I); !S)
      return S;

  GeneratedWorkload W;
  Program &Prog = W.Prog;

  // Two passes: reserve ids in spec order so forward calls resolve, then
  // fill in each method's code.
  std::vector<MethodId> Ids(Spec.Methods.size());
  std::vector<uint64_t> Bases(Spec.Methods.size());
  for (size_t I = 0; I != Spec.Methods.size(); ++I) {
    Method Placeholder;
    Placeholder.Name = Spec.Methods[I].Name;
    Ids[I] = Prog.addMethod(std::move(Placeholder));
    Bases[I] = Prog.addGlobal(std::bit_ceil(Spec.Methods[I].FootprintWords));
  }

  for (size_t I = 0; I != Spec.Methods.size(); ++I) {
    const TraceMethod &M = Spec.Methods[I];
    uint64_t FootWords = std::bit_ceil(M.FootprintWords);
    bool AnyFp = false;
    for (const TraceStmt &S : M.Stmts)
      AnyFp |= S.K == TraceStmt::Block && S.B.Fp > 0;

    MethodBuilder B(M.Name);
    B.iconst(RegBase, static_cast<int64_t>(Bases[I]));
    B.iconst(RegMask, static_cast<int64_t>(FootWords - 1));
    B.iconst(RegAcc, 0x9e3779b9);
    if (AnyFp) {
      B.fconst(RegFpA, 1.0000001);
      B.fconst(RegFpB, 0.9999999);
    }
    size_t BlockIndex = 0;
    for (const TraceStmt &S : M.Stmts) {
      if (S.K == TraceStmt::Block) {
        emitBlock(B, S.B, BlockIndex++);
        continue;
      }
      // call X n: a counted loop of invocations, salted by the counter.
      MethodId Callee = Ids[Index[S.C.Callee]];
      B.iconst(/*Dst=*/1, 0);
      MethodBuilder::Label Top = B.newLabel();
      B.bind(Top);
      B.addi(/*Dst=*/2, /*A=*/1, 17);
      B.call(/*Dst=*/3, Callee, /*FirstArg=*/2, /*NumArgs=*/1);
      B.addi(/*Dst=*/1, /*A=*/1, 1);
      B.bri(CondKind::Lt, /*A=*/1, static_cast<int64_t>(S.C.Times), Top);
    }
    if (M.Name == Spec.Entry)
      B.halt();
    else
      B.ret(RegAcc);
    Method Built = B.take();
    Built.Name = M.Name;
    Prog.method(Ids[I]).Code = std::move(Built.Code);
  }

  W.MethodSizeEst.resize(Spec.Methods.size(), 0.0);
  for (size_t I = 0; I != Spec.Methods.size(); ++I)
    W.MethodSizeEst[Ids[I]] = Estimates[I];
  Prog.setEntry(Ids[Index.at(Spec.Entry)]);
  W.EstimatedInstructions = Estimates[Index.at(Spec.Entry)];

  // The same gate generated workloads pass: structural finalize plus the
  // full dynalint verification. A rejected trace surfaces the verifier's
  // diagnostic as a returned Status (the trace is external input — never
  // fatalError here).
  if (Status S = Prog.finalize(analysis::verifyProgramStatus); !S)
    return Status::error(ErrorCode::InvalidInput,
                         "trace failed verification: " + S.message());
  return W;
}

Expected<GeneratedWorkload> dynace::ingestTrace(std::string_view Text,
                                                std::string_view Name) {
  Expected<TraceSpec> Spec = parseTraceSpec(Text, Name);
  if (!Spec)
    return Spec.status();
  return compileTraceSpec(*Spec);
}
