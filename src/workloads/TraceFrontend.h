//===- workloads/TraceFrontend.h - Text-trace program ingest ----*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ingests the "dynatrace v1" text format — a simple basic-block/call trace
/// grammar — and compiles it into an executable \c Program, gated through
/// the same strict finalize + dynalint pipeline as generated workloads.
/// This is the path for driving the simulator with externally captured
/// workload shapes instead of the synthetic SPECjvm98 stand-ins; the full
/// grammar is documented in docs/WORKLOADS.md. Sketch:
///
/// \code
///   dynatrace 1
///   # comment
///   method scan footprint=1024
///     block 500 2 1 3 0          # iters loads stores alu fp [branchy]
///     call helper 4
///   end
///   method helper
///     block 64 1 0 2 0 branchy
///   end
///   entry scan
/// \endcode
///
/// Parsing is strict: unknown directives, malformed counts, duplicate or
/// unknown method names, missing entry, and recursive call cycles are all
/// rejected with a Status diagnostic carrying "<file>:<line>: <problem>",
/// never a best-effort program.
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_WORKLOADS_TRACEFRONTEND_H
#define DYNACE_WORKLOADS_TRACEFRONTEND_H

#include "support/Status.h"
#include "workloads/WorkloadGenerator.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dynace {

/// One `block` line: a counted loop with a fixed per-iteration op mix over
/// the owning method's data array.
struct TraceBlock {
  uint64_t Iters = 1;
  uint32_t Loads = 1;
  uint32_t Stores = 0;
  uint32_t Alu = 1;
  uint32_t Fp = 0;
  bool Branchy = false; ///< Adds a hard-to-predict data-dependent branch.
};

/// One `call` line: \c Times back-to-back invocations of \c Callee.
struct TraceCall {
  std::string Callee;
  uint64_t Times = 1;
};

/// One statement in a method body, in source order.
struct TraceStmt {
  enum Kind { Block, Call } K = Block;
  TraceBlock B;
  TraceCall C;
};

/// One `method ... end` group.
struct TraceMethod {
  std::string Name;
  /// Words of statically allocated data the method's blocks walk; rounded
  /// up to a power of two at compile time.
  uint64_t FootprintWords = 256;
  std::vector<TraceStmt> Stmts;
};

/// A parsed (but not yet compiled) trace file.
struct TraceSpec {
  std::vector<TraceMethod> Methods;
  std::string Entry;
};

/// Parses dynatrace-v1 text into a TraceSpec.
/// \param Text the whole file contents; \param Name the file name used in
///        diagnostics.
/// \returns the spec, or an InvalidInput error with a "<file>:<line>:"
///          prefixed message for the first problem found.
Expected<TraceSpec> parseTraceSpec(std::string_view Text,
                                   std::string_view Name = "<trace>");

/// Emits the canonical text form of \p Spec — normalized spacing, explicit
/// footprints, defaults spelled out. parse(format(parse(X))) is identical
/// to parse(X), which the dynatrace round-trip smoke relies on.
/// \returns the canonical dynatrace-v1 text.
std::string formatTraceSpec(const TraceSpec &Spec);

/// Lowers \p Spec to an executable program: each block becomes a kernel
/// loop over the method's array, each call a counted call loop. The result
/// passes through Program::finalize with the full dynalint verification —
/// a trace that compiles is exactly as trusted as a generated benchmark.
/// \returns the workload (with instruction estimates), or an InvalidInput
///          error (unknown callee, recursive cycle, verifier rejection).
Expected<GeneratedWorkload> compileTraceSpec(const TraceSpec &Spec);

/// Convenience: parseTraceSpec + compileTraceSpec.
/// \returns the compiled workload or the first error from either stage.
Expected<GeneratedWorkload> ingestTrace(std::string_view Text,
                                        std::string_view Name = "<trace>");

} // namespace dynace

#endif // DYNACE_WORKLOADS_TRACEFRONTEND_H
