//===- workloads/WorkloadGenerator.h - Synthetic program builder -*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds a complete bytecode program from a WorkloadProfile. Programs have
/// a three-tier call structure mirroring the nested-hotspot shape the paper
/// relies on (Section 3.2.1):
///
///   main -> segments -> region methods (L2-hotspot sized)
///                         -> mid methods (L1D-hotspot sized)
///                              -> leaf methods (small hotspots)
///
/// Each method owns a data region with a profile-drawn footprint and walks
/// it in a compute kernel, so different hotspots genuinely prefer different
/// cache sizes; segments give the dynamic execution its macro phases.
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_WORKLOADS_WORKLOADGENERATOR_H
#define DYNACE_WORKLOADS_WORKLOADGENERATOR_H

#include "isa/Program.h"
#include "workloads/WorkloadProfile.h"

#include <vector>

namespace dynace {

/// A generated benchmark program plus build-time metadata.
struct GeneratedWorkload {
  Program Prog;
  /// Build-time estimate of the total dynamic instruction count.
  double EstimatedInstructions = 0.0;
  /// Build-time inclusive-size estimate per method id.
  std::vector<double> MethodSizeEst;
  uint32_t NumLeaves = 0;
  uint32_t NumMids = 0;
  uint32_t NumRegions = 0;
};

/// Deterministic program generator (same profile -> same program).
class WorkloadGenerator {
public:
  /// Builds and finalizes the program for \p P, gating it through the full
  /// dynalint verification (finalize with analysis::verifyProgramStatus).
  /// Terminates via fatalError() on an internally inconsistent profile —
  /// generator bugs surface as classified verifier diagnostics.
  static GeneratedWorkload generate(const WorkloadProfile &P);
};

} // namespace dynace

#endif // DYNACE_WORKLOADS_WORKLOADGENERATOR_H
