//===- uarch/BranchPredictor.h - Combined branch predictor ------*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A 2K-entry combined (bimodal + gshare with a chooser) branch predictor,
/// matching the Table 2 baseline ("2K-entry combined predictor, 3-cycle
/// misprediction penalty").
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_UARCH_BRANCHPREDICTOR_H
#define DYNACE_UARCH_BRANCHPREDICTOR_H

#include <cstdint>
#include <vector>

namespace dynace {

/// Combined predictor with 2-bit saturating counters.
class BranchPredictor {
public:
  /// \param Entries table size for each component; must be a power of two.
  explicit BranchPredictor(uint32_t Entries = 2048);

  /// Predicts the direction of the branch at \p PC.
  bool predict(uint64_t PC) const {
    uint32_t BI = indexOf(PC);
    bool B = taken(Pc[BI].Bimodal);
    bool G = taken(Gshare[gshareIndexOf(PC)]);
    return taken(Pc[BI].Chooser) ? G : B;
  }

  /// Updates all component tables with the resolved outcome.
  void update(uint64_t PC, bool Taken) {
    uint32_t BI = indexOf(PC);
    uint32_t GI = gshareIndexOf(PC);
    bool B = taken(Pc[BI].Bimodal);
    bool G = taken(Gshare[GI]);
    // Train the chooser toward the component that was right (when they
    // disagree). A select, not a branch: whether the components disagree
    // is data-dependent noise to the host's branch predictor.
    Pc[BI].Chooser = B != G ? bump(Pc[BI].Chooser, G == Taken) : Pc[BI].Chooser;
    Pc[BI].Bimodal = bump(Pc[BI].Bimodal, Taken);
    Gshare[GI] = bump(Gshare[GI], Taken);
    History = ((History << 1) | (Taken ? 1u : 0u)) & Mask;
  }

  /// Predicts, updates, and \returns true when the prediction was wrong.
  /// Inline: called once per conditional branch from the batched core loop.
  /// Fuses predict() + update() so each component table is indexed and
  /// loaded exactly once per branch (the split path reads all three tables
  /// twice); the resulting predictor state is identical.
  bool predictAndUpdate(uint64_t PC, bool Taken) {
    ++Lookups;
    bool Wrong = predictAndUpdateUncounted(PC, Taken);
    Mispredicts += Wrong;
    return Wrong;
  }

  /// predictAndUpdate() without the lookup/mispredict bookkeeping. The
  /// batched core loop accumulates both counts in locals and flushes them
  /// once per batch through addStats(); the member read-modify-writes would
  /// otherwise execute once per simulated branch.
  bool predictAndUpdateUncounted(uint64_t PC, bool Taken) {
    uint32_t BI = indexOf(PC);
    uint32_t GI = gshareIndexOf(PC);
    PcEntry E = Pc[BI];
    uint8_t GC = Gshare[GI];
    bool B = taken(E.Bimodal);
    bool G = taken(GC);
    bool Predicted = taken(E.Chooser) ? G : B;
    E.Chooser = B != G ? bump(E.Chooser, G == Taken) : E.Chooser;
    E.Bimodal = bump(E.Bimodal, Taken);
    Pc[BI] = E;
    Gshare[GI] = bump(GC, Taken);
    History = ((History << 1) | (Taken ? 1u : 0u)) & Mask;
    return Predicted != Taken;
  }

  /// Adds batch-accumulated statistics (see predictAndUpdateUncounted()).
  void addStats(uint64_t NewLookups, uint64_t NewMispredicts) {
    Lookups += NewLookups;
    Mispredicts += NewMispredicts;
  }

  uint64_t lookups() const { return Lookups; }
  uint64_t mispredicts() const { return Mispredicts; }
  double mispredictRate() const {
    return Lookups ? static_cast<double>(Mispredicts) /
                         static_cast<double>(Lookups)
                   : 0.0;
  }

private:
  uint32_t indexOf(uint64_t PC) const {
    return static_cast<uint32_t>(PC >> 2) & Mask;
  }
  uint32_t gshareIndexOf(uint64_t PC) const {
    return (static_cast<uint32_t>(PC >> 2) ^ History) & Mask;
  }
  static bool taken(uint8_t Counter) { return Counter >= 2; }
  static uint8_t bump(uint8_t Counter, bool Taken) {
    // Saturate both directions with arithmetic and one select; Taken is
    // the least predictable bit in the workload.
    uint8_t Up = Counter + (Counter < 3);
    uint8_t Down = Counter - (Counter > 0);
    return Taken ? Up : Down;
  }

  /// The two PC-indexed counters share one entry so a branch touches one
  /// cache line here plus one in the gshare table, rather than three.
  struct PcEntry {
    uint8_t Bimodal = 0;
    /// Chooser counter: >= 2 selects gshare.
    uint8_t Chooser = 0;
  };

  uint32_t Mask;
  std::vector<PcEntry> Pc;
  std::vector<uint8_t> Gshare;
  uint32_t History = 0;
  uint64_t Lookups = 0;
  uint64_t Mispredicts = 0;
};

} // namespace dynace

#endif // DYNACE_UARCH_BRANCHPREDICTOR_H
