//===- uarch/BranchPredictor.h - Combined branch predictor ------*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A 2K-entry combined (bimodal + gshare with a chooser) branch predictor,
/// matching the Table 2 baseline ("2K-entry combined predictor, 3-cycle
/// misprediction penalty").
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_UARCH_BRANCHPREDICTOR_H
#define DYNACE_UARCH_BRANCHPREDICTOR_H

#include <cstdint>
#include <vector>

namespace dynace {

/// Combined predictor with 2-bit saturating counters.
class BranchPredictor {
public:
  /// \param Entries table size for each component; must be a power of two.
  explicit BranchPredictor(uint32_t Entries = 2048);

  /// Predicts the direction of the branch at \p PC.
  bool predict(uint64_t PC) const {
    uint32_t BI = indexOf(PC);
    bool B = taken(Bimodal[BI]);
    bool G = taken(Gshare[gshareIndexOf(PC)]);
    return taken(Chooser[BI]) ? G : B;
  }

  /// Updates all component tables with the resolved outcome.
  void update(uint64_t PC, bool Taken) {
    uint32_t BI = indexOf(PC);
    uint32_t GI = gshareIndexOf(PC);
    bool B = taken(Bimodal[BI]);
    bool G = taken(Gshare[GI]);
    // Train the chooser toward the component that was right (when they
    // disagree).
    if (B != G)
      Chooser[BI] = bump(Chooser[BI], G == Taken);
    Bimodal[BI] = bump(Bimodal[BI], Taken);
    Gshare[GI] = bump(Gshare[GI], Taken);
    History = ((History << 1) | (Taken ? 1u : 0u)) & Mask;
  }

  /// Predicts, updates, and \returns true when the prediction was wrong.
  /// Inline: called once per conditional branch from the batched core loop.
  bool predictAndUpdate(uint64_t PC, bool Taken) {
    ++Lookups;
    bool Predicted = predict(PC);
    update(PC, Taken);
    bool Wrong = Predicted != Taken;
    if (Wrong)
      ++Mispredicts;
    return Wrong;
  }

  uint64_t lookups() const { return Lookups; }
  uint64_t mispredicts() const { return Mispredicts; }
  double mispredictRate() const {
    return Lookups ? static_cast<double>(Mispredicts) /
                         static_cast<double>(Lookups)
                   : 0.0;
  }

private:
  uint32_t indexOf(uint64_t PC) const {
    return static_cast<uint32_t>(PC >> 2) & Mask;
  }
  uint32_t gshareIndexOf(uint64_t PC) const {
    return (static_cast<uint32_t>(PC >> 2) ^ History) & Mask;
  }
  static bool taken(uint8_t Counter) { return Counter >= 2; }
  static uint8_t bump(uint8_t Counter, bool Taken) {
    if (Taken)
      return Counter < 3 ? Counter + 1 : 3;
    return Counter > 0 ? Counter - 1 : 0;
  }

  uint32_t Mask;
  std::vector<uint8_t> Bimodal;
  std::vector<uint8_t> Gshare;
  /// Chooser counters: >= 2 selects gshare.
  std::vector<uint8_t> Chooser;
  uint32_t History = 0;
  uint64_t Lookups = 0;
  uint64_t Mispredicts = 0;
};

} // namespace dynace

#endif // DYNACE_UARCH_BRANCHPREDICTOR_H
