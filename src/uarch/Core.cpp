//===- uarch/Core.cpp -----------------------------------------------------==//

#include "uarch/Core.h"

#include <algorithm>
#include <cassert>

using namespace dynace;

Core::Core(const CoreConfig &Config, MemoryHierarchy &Hierarchy)
    : Config(Config), Hierarchy(Hierarchy),
      Predictor(Config.PredictorEntries) {
  reset();
}

void Core::reset() {
  InstrCount = 0;
  LastCommitCycle = 0;
  LastCommitCount = 0;
  RegReady.fill(0);
  WindowRing.assign(Config.WindowSize, 0);
  WindowPos = 0;
  EffectiveWindow = Config.WindowSize;
  WindowSettings.assign(1, Config.WindowSize);
  ActiveWindowSetting = 0;
  InstrByWindowSetting.assign(1, 0);
  LsqRing.assign(Config.LsqSize, 0);
  LsqPos = 0;

  auto InitPool = [this](uint8_t Pool, uint32_t Count) {
    assert(Count >= 1 && Count <= kMaxFuUnits && "bad FU count");
    Pools[Pool].Free.fill(0);
    Pools[Pool].Count = Count;
  };
  InitPool(kPoolIntAlu, Config.NumIntAlu);
  InitPool(kPoolIntMult, Config.NumIntMult);
  InitPool(kPoolFpAlu, Config.NumFpAlu);
  InitPool(kPoolFpMult, Config.NumFpMult);
  InitPool(kPoolMem, Config.NumMemPorts);

  auto SetTiming = [this](OpClass Class, uint32_t Latency, uint8_t Pool,
                          bool Unpipelined = false) {
    Timing[static_cast<size_t>(Class)] = {Latency, Pool, Unpipelined};
  };
  SetTiming(OpClass::IntAlu, Config.IntAluLat, kPoolIntAlu);
  SetTiming(OpClass::Branch, Config.IntAluLat, kPoolIntAlu);
  SetTiming(OpClass::Jump, Config.IntAluLat, kPoolIntAlu);
  SetTiming(OpClass::Other, Config.IntAluLat, kPoolIntAlu);
  SetTiming(OpClass::IntMult, Config.IntMultLat, kPoolIntMult);
  SetTiming(OpClass::IntDiv, Config.IntDivLat, kPoolIntMult,
            /*Unpipelined=*/true);
  SetTiming(OpClass::FpAlu, Config.FpAluLat, kPoolFpAlu);
  SetTiming(OpClass::FpMultDiv, Config.FpMultLat, kPoolFpMult);
  // Load/Store latency is resolved through the hierarchy per access.
  SetTiming(OpClass::Load, 1, kPoolMem);
  SetTiming(OpClass::Store, 1, kPoolMem);

  FetchCycle = 0;
  FetchedThisCycle = 0;
  FetchBlockAddr = ~0ull;
  FrontendRedirect = 0;
}

void Core::consumeBatch(const DynInst *Buf, size_t N) {
  if (Pools[kPoolIntAlu].Count == 4 && Pools[kPoolMem].Count == 2 &&
      Pools[kPoolFpAlu].Count == 4 && Pools[kPoolFpMult].Count == 2)
    consumeBatchImpl<true>(Buf, N);
  else
    consumeBatchImpl<false>(Buf, N);
}

template <bool FastFu>
void Core::consumeBatchImpl(const DynInst *Buf, size_t N) {
  if (N == 0)
    return;

  // Hoist the per-instruction pipeline state into locals for the batch;
  // everything is written back on exit. stall() and setWindowSetting()
  // only run between batches (listener / manager boundaries), so none of
  // these can go stale mid-batch.
  uint64_t CommitCycle = LastCommitCycle;
  uint64_t CommitCount = LastCommitCount;
  uint64_t Redirect = FrontendRedirect;
  uint64_t Fetch = FetchCycle;
  uint32_t FetchedNow = FetchedThisCycle;
  uint64_t BlockAddr = FetchBlockAddr;
  uint64_t *const __restrict Window = WindowRing.data();
  const uint32_t WSize = Config.WindowSize;
  uint32_t WPos = WindowPos;
  // A smaller active window setting reads further forward in the ring.
  const uint32_t WOcc = WSize - EffectiveWindow;
  uint64_t *const __restrict Lsq = LsqRing.data();
  const uint32_t LSize = Config.LsqSize;
  uint32_t LPos = LsqPos;
  uint64_t *const __restrict Reg = RegReady.data();
  const uint32_t FetchWidth = Config.FetchWidth;
  const uint32_t CommitWidth = Config.CommitWidth;
  const uint64_t FrontDepth = Config.FrontendDepth;
  const uint32_t MispredictPenalty = Config.MispredictPenalty;
  // The two pools nearly every instruction touches live on the stack for
  // the batch; stores into the hierarchy (cache stats, LRU stamps) would
  // otherwise force the member arrays to be re-loaded every iteration.
  // The cold pools (mult/div, FP) stay in Pools and are disjoint from
  // these, so writing both back at the end cannot lose an update.
  FuPool AluPool = Pools[kPoolIntAlu];
  FuPool MemPool = Pools[kPoolMem];

  // FastFu: the pipelined pools live in sorted registers for the batch —
  // reservation becomes a handful of selects with no loads, no stores and
  // no victim-index tracking. Only the multiset of free times is
  // observable, so keeping it sorted (and writing it back sorted) cannot
  // change any issue cycle. The int-mult pool stays generic: IntDiv is
  // unpipelined there, so its busy interval is not always 1.
  uint64_t A0 = 0, A1 = 0, A2 = 0, A3 = 0, M0 = 0, M1 = 0;
  uint64_t F0 = 0, F1 = 0, F2 = 0, F3 = 0, P0 = 0, P1 = 0;
  auto Sort4 = [](uint64_t &X0, uint64_t &X1, uint64_t &X2, uint64_t &X3) {
    auto CSwap = [](uint64_t &X, uint64_t &Y) {
      uint64_t Lo = X < Y ? X : Y;
      Y = X < Y ? Y : X;
      X = Lo;
    };
    CSwap(X0, X1);
    CSwap(X2, X3);
    CSwap(X0, X2);
    CSwap(X1, X3);
    CSwap(X1, X2);
  };
  // Reserve a pipelined unit (busy one cycle) from a sorted quad: issue on
  // the earliest-free unit, then one insertion-merge pass restores
  // sortedness.
  auto ReserveSorted4 = [](uint64_t &X0, uint64_t &X1, uint64_t &X2,
                           uint64_t &X3, uint64_t Ready) {
    const uint64_t Issue = Ready > X0 ? Ready : X0;
    const uint64_t V = Issue + 1;
    const uint64_t H1 = X1 > V ? X1 : V;
    X0 = X1 > V ? V : X1;
    const uint64_t H2 = X2 > H1 ? X2 : H1;
    X1 = X2 > H1 ? H1 : X2;
    X2 = X3 > H2 ? H2 : X3;
    X3 = X3 > H2 ? X3 : H2;
    return Issue;
  };
  // Same for a sorted pair: re-sort with one compare.
  auto ReserveSorted2 = [](uint64_t &X0, uint64_t &X1, uint64_t Ready) {
    const uint64_t Issue = Ready > X0 ? Ready : X0;
    const uint64_t V = Issue + 1;
    X0 = X1 < V ? X1 : V;
    X1 = X1 < V ? V : X1;
    return Issue;
  };
  if constexpr (FastFu) {
    A0 = AluPool.Free[0];
    A1 = AluPool.Free[1];
    A2 = AluPool.Free[2];
    A3 = AluPool.Free[3];
    Sort4(A0, A1, A2, A3);
    M0 = MemPool.Free[0];
    M1 = MemPool.Free[1];
    if (M1 < M0)
      std::swap(M0, M1);
    F0 = Pools[kPoolFpAlu].Free[0];
    F1 = Pools[kPoolFpAlu].Free[1];
    F2 = Pools[kPoolFpAlu].Free[2];
    F3 = Pools[kPoolFpAlu].Free[3];
    Sort4(F0, F1, F2, F3);
    P0 = Pools[kPoolFpMult].Free[0];
    P1 = Pools[kPoolFpMult].Free[1];
    if (P1 < P0)
      std::swap(P0, P1);
  }

  // Predictor statistics are accumulated here and flushed once per batch.
  uint64_t CondSeen = 0;
  uint64_t CondWrong = 0;

  for (size_t I = 0; I != N; ++I) {
    const DynInst &In = Buf[I];

    // Front end: redirects (mispredict recovery / injected stalls) move
    // the fetch point forward and start a fresh fetch group; crossing into
    // a new I-cache block costs the excess fetch latency. A pending
    // redirect is rare — it fires on the first instruction after each
    // mispredicted branch — so it is a predicted-not-taken branch rather
    // than three selects feeding the loop-carried fetch chain. The width
    // wrap fires every FetchWidth-th instruction out of phase with
    // everything else, so it stays branchless.
    if (Redirect > Fetch) [[unlikely]] {
      Fetch = Redirect;
      FetchedNow = 0;
      BlockAddr = ~0ull;
    }
    const bool WidthWrap = FetchedNow >= FetchWidth;
    Fetch += WidthWrap;
    FetchedNow = WidthWrap ? 0 : FetchedNow;
    uint64_t Block = In.PC & ~63ull;
    if (Block != BlockAddr) {
      uint32_t FetchLat = Hierarchy.instrFetch(In.PC);
      BlockAddr = Block;
      if (FetchLat > 1) {
        Fetch += FetchLat - 1;
        FetchedNow = 0;
      }
    }
    ++FetchedNow;

    uint64_t Ready = Fetch + FrontDepth;

    // RUU occupancy: cannot dispatch before the instruction
    // EffectiveWindow older has committed. Whether each structural or data
    // hazard below binds is per-instruction noise, so every clamp is a
    // select rather than a branch.
    uint32_t WIdx = WPos + WOcc;
    WIdx = WIdx >= WSize ? WIdx - WSize : WIdx;
    const uint64_t WReady = Window[WIdx];
    Ready = WReady > Ready ? WReady : Ready;

    const ClassTiming T = Timing[static_cast<size_t>(In.Class)];
    const bool IsMemOp =
        In.Class == OpClass::Load || In.Class == OpClass::Store;
    const uint64_t LReady = Lsq[LPos];
    Ready = (IsMemOp && LReady > Ready) ? LReady : Ready;

    // Source-operand dependences. Reg is indexable by the full uint8_t id
    // space; slot kNoReg holds 0, so no branch is needed.
    const uint64_t S1 = Reg[In.Src1];
    const uint64_t S2 = Reg[In.Src2];
    Ready = S1 > Ready ? S1 : Ready;
    Ready = S2 > Ready ? S2 : Ready;

    uint64_t Issue;
    uint64_t Complete;
    if (IsMemOp) {
      MemAccessInfo Mem =
          Hierarchy.dataAccess(In.MemAddr, In.Class == OpClass::Store);
      if constexpr (FastFu)
        Issue = ReserveSorted2(M0, M1, Ready);
      else
        Issue = reserveIn(MemPool, Ready, 1);
      // Stores retire through the store buffer; their miss latency is
      // hidden. Loads expose the full access latency to dependents.
      Complete = Issue + (In.Class == OpClass::Load ? Mem.Latency : 1);
    } else if (FastFu && T.Pool == kPoolIntAlu) {
      Issue = ReserveSorted4(A0, A1, A2, A3, Ready);
      Complete = Issue + T.Latency;
    } else if (FastFu && T.Pool == kPoolFpAlu) {
      Issue = ReserveSorted4(F0, F1, F2, F3, Ready);
      Complete = Issue + T.Latency;
    } else if (FastFu && T.Pool == kPoolFpMult) {
      Issue = ReserveSorted2(P0, P1, Ready);
      Complete = Issue + T.Latency;
    } else {
      FuPool &P = T.Pool == kPoolIntAlu ? AluPool : Pools[T.Pool];
      Issue = reserveIn(P, Ready, T.Unpipelined ? T.Latency : 1);
      Complete = Issue + T.Latency;
    }

    // Unconditional store, then re-zero the kNoReg slot: cheaper than a
    // data-dependent "has destination?" branch. Slot kNoReg is read as a
    // source only to contribute 0 to the ready-time max, so clobbering and
    // restoring it within the same iteration is invisible.
    Reg[In.Dst] = Complete;
    Reg[kNoReg] = 0;

    // Control flow. Inside the conditional-branch case everything hinges
    // on Taken and the predictor outcome — the two most data-dependent
    // bits in the stream — so those updates are selects, not branches.
    if (In.IsCondBranch) {
      ++CondSeen;
      bool Mispredicted = Predictor.predictAndUpdateUncounted(In.PC, In.Taken);
      CondWrong += Mispredicted;
      uint64_t Resume = Complete + MispredictPenalty;
      Redirect = (Mispredicted && Resume > Redirect) ? Resume : Redirect;
      // Fetch group ends at a taken branch.
      FetchedNow = In.Taken ? FetchWidth : FetchedNow;
    } else if (In.Class == OpClass::Jump) {
      // Unconditional transfers end the fetch group (target assumed
      // BTB-hit).
      FetchedNow = FetchWidth;
    }

    // In-order commit, CommitWidth per cycle — branchless: which of the
    // three cases fires depends on the critical path of this particular
    // instruction, the least predictable quantity in the model.
    uint64_t CommitReady = Complete + 1;
    const bool Later = CommitReady > CommitCycle;
    const bool Full = CommitCount >= CommitWidth;
    CommitCycle = Later ? CommitReady : CommitCycle + (!Later & Full);
    CommitCount = (Later | Full) ? 1 : CommitCount + 1;

    Window[WPos] = CommitCycle;
    if (++WPos == WSize)
      WPos = 0;
    if (IsMemOp) {
      Lsq[LPos] = CommitCycle;
      if (++LPos == LSize)
        LPos = 0;
    }
  }

  if constexpr (FastFu) {
    AluPool.Free[0] = A0;
    AluPool.Free[1] = A1;
    AluPool.Free[2] = A2;
    AluPool.Free[3] = A3;
    MemPool.Free[0] = M0;
    MemPool.Free[1] = M1;
    Pools[kPoolFpAlu].Free[0] = F0;
    Pools[kPoolFpAlu].Free[1] = F1;
    Pools[kPoolFpAlu].Free[2] = F2;
    Pools[kPoolFpAlu].Free[3] = F3;
    Pools[kPoolFpMult].Free[0] = P0;
    Pools[kPoolFpMult].Free[1] = P1;
  }
  Pools[kPoolIntAlu] = AluPool;
  Pools[kPoolMem] = MemPool;
  Predictor.addStats(CondSeen, CondWrong);
  InstrCount += N;
  InstrByWindowSetting[ActiveWindowSetting] += N;
  LastCommitCycle = CommitCycle;
  LastCommitCount = CommitCount;
  FrontendRedirect = Redirect;
  FetchCycle = Fetch;
  FetchedThisCycle = FetchedNow;
  FetchBlockAddr = BlockAddr;
  WindowPos = WPos;
  LsqPos = LPos;
}

void Core::configureWindowSettings(std::vector<uint32_t> Settings) {
  assert(!Settings.empty() && "window CU needs settings");
  for (uint32_t S : Settings) {
    (void)S;
    assert(S >= 1 && S <= Config.WindowSize &&
           "window setting exceeds the physical RUU");
  }
  WindowSettings = std::move(Settings);
  InstrByWindowSetting.assign(WindowSettings.size(), 0);
  ActiveWindowSetting = 0;
  EffectiveWindow = WindowSettings[0];
}

void Core::setWindowSetting(unsigned Setting) {
  assert(Setting < WindowSettings.size() && "window setting out of range");
  ActiveWindowSetting = Setting;
  EffectiveWindow = WindowSettings[Setting];
}

void Core::stall(uint64_t Cycles) {
  FrontendRedirect =
      std::max(FrontendRedirect, std::max(FetchCycle, LastCommitCycle)) +
      Cycles;
}
