//===- uarch/Core.cpp -----------------------------------------------------==//

#include "uarch/Core.h"

#include <algorithm>
#include <cassert>

using namespace dynace;

Core::Core(const CoreConfig &Config, MemoryHierarchy &Hierarchy)
    : Config(Config), Hierarchy(Hierarchy),
      Predictor(Config.PredictorEntries) {
  reset();
}

void Core::reset() {
  InstrCount = 0;
  LastCommitCycle = 0;
  LastCommitCount = 0;
  RegReady.fill(0);
  WindowRing.assign(Config.WindowSize, 0);
  WindowPos = 0;
  EffectiveWindow = Config.WindowSize;
  WindowSettings.assign(1, Config.WindowSize);
  ActiveWindowSetting = 0;
  InstrByWindowSetting.assign(1, 0);
  LsqRing.assign(Config.LsqSize, 0);
  LsqPos = 0;

  auto InitPool = [this](uint8_t Pool, uint32_t Count) {
    assert(Count >= 1 && Count <= kMaxFuUnits && "bad FU count");
    Pools[Pool].Free.fill(0);
    Pools[Pool].Count = Count;
  };
  InitPool(kPoolIntAlu, Config.NumIntAlu);
  InitPool(kPoolIntMult, Config.NumIntMult);
  InitPool(kPoolFpAlu, Config.NumFpAlu);
  InitPool(kPoolFpMult, Config.NumFpMult);
  InitPool(kPoolMem, Config.NumMemPorts);

  auto SetTiming = [this](OpClass Class, uint32_t Latency, uint8_t Pool,
                          bool Unpipelined = false) {
    Timing[static_cast<size_t>(Class)] = {Latency, Pool, Unpipelined};
  };
  SetTiming(OpClass::IntAlu, Config.IntAluLat, kPoolIntAlu);
  SetTiming(OpClass::Branch, Config.IntAluLat, kPoolIntAlu);
  SetTiming(OpClass::Jump, Config.IntAluLat, kPoolIntAlu);
  SetTiming(OpClass::Other, Config.IntAluLat, kPoolIntAlu);
  SetTiming(OpClass::IntMult, Config.IntMultLat, kPoolIntMult);
  SetTiming(OpClass::IntDiv, Config.IntDivLat, kPoolIntMult,
            /*Unpipelined=*/true);
  SetTiming(OpClass::FpAlu, Config.FpAluLat, kPoolFpAlu);
  SetTiming(OpClass::FpMultDiv, Config.FpMultLat, kPoolFpMult);
  // Load/Store latency is resolved through the hierarchy per access.
  SetTiming(OpClass::Load, 1, kPoolMem);
  SetTiming(OpClass::Store, 1, kPoolMem);

  FetchCycle = 0;
  FetchedThisCycle = 0;
  FetchBlockAddr = ~0ull;
  FrontendRedirect = 0;
}

void Core::consumeBatch(const DynInst *Buf, size_t N) {
  if (N == 0)
    return;

  // Hoist the per-instruction pipeline state into locals for the batch;
  // everything is written back on exit. stall() and setWindowSetting()
  // only run between batches (listener / manager boundaries), so none of
  // these can go stale mid-batch.
  uint64_t CommitCycle = LastCommitCycle;
  uint64_t CommitCount = LastCommitCount;
  uint64_t Redirect = FrontendRedirect;
  uint64_t Fetch = FetchCycle;
  uint32_t FetchedNow = FetchedThisCycle;
  uint64_t BlockAddr = FetchBlockAddr;
  uint64_t *const __restrict Window = WindowRing.data();
  const uint32_t WSize = Config.WindowSize;
  uint32_t WPos = WindowPos;
  // A smaller active window setting reads further forward in the ring.
  const uint32_t WOcc = WSize - EffectiveWindow;
  uint64_t *const __restrict Lsq = LsqRing.data();
  const uint32_t LSize = Config.LsqSize;
  uint32_t LPos = LsqPos;
  uint64_t *const __restrict Reg = RegReady.data();
  const uint32_t FetchWidth = Config.FetchWidth;
  const uint32_t CommitWidth = Config.CommitWidth;
  const uint64_t FrontDepth = Config.FrontendDepth;
  const uint32_t MispredictPenalty = Config.MispredictPenalty;
  // The two pools nearly every instruction touches live on the stack for
  // the batch; stores into the hierarchy (cache stats, LRU stamps) would
  // otherwise force the member arrays to be re-loaded every iteration.
  // The cold pools (mult/div, FP) stay in Pools and are disjoint from
  // these, so writing both back at the end cannot lose an update.
  FuPool AluPool = Pools[kPoolIntAlu];
  FuPool MemPool = Pools[kPoolMem];

  for (size_t I = 0; I != N; ++I) {
    const DynInst &In = Buf[I];

    // Front end: redirects (mispredict recovery / injected stalls) move
    // the fetch point forward and start a fresh fetch group; crossing into
    // a new I-cache block costs the excess fetch latency.
    if (Redirect > Fetch) {
      Fetch = Redirect;
      FetchedNow = 0;
      BlockAddr = ~0ull;
    }
    if (FetchedNow >= FetchWidth) {
      ++Fetch;
      FetchedNow = 0;
    }
    uint64_t Block = In.PC & ~63ull;
    if (Block != BlockAddr) {
      uint32_t FetchLat = Hierarchy.instrFetch(In.PC);
      BlockAddr = Block;
      if (FetchLat > 1) {
        Fetch += FetchLat - 1;
        FetchedNow = 0;
      }
    }
    ++FetchedNow;

    uint64_t Ready = Fetch + FrontDepth;

    // RUU occupancy: cannot dispatch before the instruction
    // EffectiveWindow older has committed.
    uint32_t WIdx = WPos + WOcc;
    if (WIdx >= WSize)
      WIdx -= WSize;
    if (Window[WIdx] > Ready)
      Ready = Window[WIdx];

    const ClassTiming T = Timing[static_cast<size_t>(In.Class)];
    const bool IsMemOp =
        In.Class == OpClass::Load || In.Class == OpClass::Store;
    if (IsMemOp && Lsq[LPos] > Ready)
      Ready = Lsq[LPos];

    // Source-operand dependences. Reg is indexable by the full uint8_t id
    // space; slot kNoReg holds 0, so no branch is needed.
    if (Reg[In.Src1] > Ready)
      Ready = Reg[In.Src1];
    if (Reg[In.Src2] > Ready)
      Ready = Reg[In.Src2];

    uint64_t Issue;
    uint64_t Complete;
    if (IsMemOp) {
      MemAccessInfo Mem =
          Hierarchy.dataAccess(In.MemAddr, In.Class == OpClass::Store);
      Issue = reserveIn(MemPool, Ready, 1);
      // Stores retire through the store buffer; their miss latency is
      // hidden. Loads expose the full access latency to dependents.
      Complete = Issue + (In.Class == OpClass::Load ? Mem.Latency : 1);
    } else {
      FuPool &P = T.Pool == kPoolIntAlu ? AluPool : Pools[T.Pool];
      Issue = reserveIn(P, Ready, T.Unpipelined ? T.Latency : 1);
      Complete = Issue + T.Latency;
    }

    if (In.Dst != kNoReg)
      Reg[In.Dst] = Complete;

    // Control flow.
    if (In.IsCondBranch) {
      bool Mispredicted = Predictor.predictAndUpdate(In.PC, In.Taken);
      if (Mispredicted) {
        uint64_t Resume = Complete + MispredictPenalty;
        if (Resume > Redirect)
          Redirect = Resume;
      }
      if (In.Taken)
        FetchedNow = FetchWidth; // Fetch group ends at the taken branch.
    } else if (In.Class == OpClass::Jump) {
      // Unconditional transfers end the fetch group (target assumed
      // BTB-hit).
      FetchedNow = FetchWidth;
    }

    // In-order commit, CommitWidth per cycle.
    uint64_t CommitReady = Complete + 1;
    if (CommitReady > CommitCycle) {
      CommitCycle = CommitReady;
      CommitCount = 1;
    } else if (CommitCount >= CommitWidth) {
      ++CommitCycle;
      CommitCount = 1;
    } else {
      ++CommitCount;
    }

    Window[WPos] = CommitCycle;
    if (++WPos == WSize)
      WPos = 0;
    if (IsMemOp) {
      Lsq[LPos] = CommitCycle;
      if (++LPos == LSize)
        LPos = 0;
    }
  }

  Pools[kPoolIntAlu] = AluPool;
  Pools[kPoolMem] = MemPool;
  InstrCount += N;
  InstrByWindowSetting[ActiveWindowSetting] += N;
  LastCommitCycle = CommitCycle;
  LastCommitCount = CommitCount;
  FrontendRedirect = Redirect;
  FetchCycle = Fetch;
  FetchedThisCycle = FetchedNow;
  FetchBlockAddr = BlockAddr;
  WindowPos = WPos;
  LsqPos = LPos;
}

void Core::configureWindowSettings(std::vector<uint32_t> Settings) {
  assert(!Settings.empty() && "window CU needs settings");
  for (uint32_t S : Settings) {
    (void)S;
    assert(S >= 1 && S <= Config.WindowSize &&
           "window setting exceeds the physical RUU");
  }
  WindowSettings = std::move(Settings);
  InstrByWindowSetting.assign(WindowSettings.size(), 0);
  ActiveWindowSetting = 0;
  EffectiveWindow = WindowSettings[0];
}

void Core::setWindowSetting(unsigned Setting) {
  assert(Setting < WindowSettings.size() && "window setting out of range");
  ActiveWindowSetting = Setting;
  EffectiveWindow = WindowSettings[Setting];
}

void Core::stall(uint64_t Cycles) {
  FrontendRedirect =
      std::max(FrontendRedirect, std::max(FetchCycle, LastCommitCycle)) +
      Cycles;
}
