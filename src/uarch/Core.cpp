//===- uarch/Core.cpp -----------------------------------------------------==//

#include "uarch/Core.h"

#include <algorithm>
#include <cassert>

using namespace dynace;

Core::Core(const CoreConfig &Config, MemoryHierarchy &Hierarchy)
    : Config(Config), Hierarchy(Hierarchy),
      Predictor(Config.PredictorEntries) {
  reset();
}

void Core::reset() {
  InstrCount = 0;
  LastCommitCycle = 0;
  LastCommitCount = 0;
  RegReady.fill(0);
  WindowRing.assign(Config.WindowSize, 0);
  WindowPos = 0;
  EffectiveWindow = Config.WindowSize;
  WindowSettings.assign(1, Config.WindowSize);
  ActiveWindowSetting = 0;
  InstrByWindowSetting.assign(1, 0);
  LsqRing.assign(Config.LsqSize, 0);
  LsqPos = 0;
  IntAluFree.assign(Config.NumIntAlu, 0);
  IntMultFree.assign(Config.NumIntMult, 0);
  FpAluFree.assign(Config.NumFpAlu, 0);
  FpMultFree.assign(Config.NumFpMult, 0);
  MemPortFree.assign(Config.NumMemPorts, 0);
  FetchCycle = 0;
  FetchedThisCycle = 0;
  FetchBlockAddr = ~0ull;
  FrontendRedirect = 0;
}

uint64_t Core::reserveUnit(OpClass Class, uint64_t Ready, uint32_t Latency,
                           bool Unpipelined) {
  std::vector<uint64_t> *Pool = nullptr;
  switch (Class) {
  case OpClass::IntAlu:
  case OpClass::Branch:
  case OpClass::Jump:
  case OpClass::Other:
    Pool = &IntAluFree;
    break;
  case OpClass::IntMult:
  case OpClass::IntDiv:
    Pool = &IntMultFree;
    break;
  case OpClass::FpAlu:
    Pool = &FpAluFree;
    break;
  case OpClass::FpMultDiv:
    Pool = &FpMultFree;
    break;
  case OpClass::Load:
  case OpClass::Store:
    Pool = &MemPortFree;
    break;
  }
  assert(Pool && "unmapped op class");

  auto Earliest = std::min_element(Pool->begin(), Pool->end());
  uint64_t Issue = std::max(Ready, *Earliest);
  *Earliest = Issue + (Unpipelined ? Latency : 1);
  return Issue;
}

uint64_t Core::nextFetchCycle(const DynInst &In) {
  // A front-end redirect (mispredict recovery or injected stall) moves the
  // fetch point forward and starts a fresh fetch group.
  if (FrontendRedirect > FetchCycle) {
    FetchCycle = FrontendRedirect;
    FetchedThisCycle = 0;
    FetchBlockAddr = ~0ull;
  }
  if (FetchedThisCycle >= Config.FetchWidth) {
    ++FetchCycle;
    FetchedThisCycle = 0;
  }

  // Crossing into a new I-cache block costs the fetch latency (1 cycle hit,
  // more on L1I/L2 misses). The first cycle is already part of the fetch
  // pipeline, so only the excess stalls.
  uint64_t BlockAddr = In.PC & ~63ull;
  if (BlockAddr != FetchBlockAddr) {
    uint32_t FetchLat = Hierarchy.instrFetch(In.PC);
    FetchBlockAddr = BlockAddr;
    if (FetchLat > 1) {
      FetchCycle += FetchLat - 1;
      FetchedThisCycle = 0;
    }
  }
  ++FetchedThisCycle;
  return FetchCycle;
}

void Core::consume(const DynInst &In) {
  ++InstrCount;

  uint64_t Fetch = nextFetchCycle(In);
  uint64_t Ready = Fetch + Config.FrontendDepth;

  // RUU occupancy: this instruction cannot dispatch before the instruction
  // EffectiveWindow older has committed (the ring stores the last
  // WindowSize commit cycles; a smaller active setting reads further
  // forward in the ring).
  size_t OccupancyIndex =
      (WindowPos + (Config.WindowSize - EffectiveWindow)) %
      WindowRing.size();
  Ready = std::max(Ready, WindowRing[OccupancyIndex]);
  ++InstrByWindowSetting[ActiveWindowSetting];

  bool IsMemOp = In.Class == OpClass::Load || In.Class == OpClass::Store;
  if (IsMemOp)
    Ready = std::max(Ready, LsqRing[LsqPos]);

  // Source-operand dependences.
  if (In.Src1 != kNoReg)
    Ready = std::max(Ready, RegReady[In.Src1]);
  if (In.Src2 != kNoReg)
    Ready = std::max(Ready, RegReady[In.Src2]);

  // Execution latency.
  uint32_t Latency = Config.IntAluLat;
  bool Unpipelined = false;
  switch (In.Class) {
  case OpClass::IntAlu:
  case OpClass::Branch:
  case OpClass::Jump:
  case OpClass::Other:
    Latency = Config.IntAluLat;
    break;
  case OpClass::IntMult:
    Latency = Config.IntMultLat;
    break;
  case OpClass::IntDiv:
    Latency = Config.IntDivLat;
    Unpipelined = true;
    break;
  case OpClass::FpAlu:
    Latency = Config.FpAluLat;
    break;
  case OpClass::FpMultDiv:
    Latency = Config.FpMultLat;
    break;
  case OpClass::Load:
  case OpClass::Store:
    break; // Resolved below via the hierarchy.
  }

  uint64_t Issue;
  uint64_t Complete;
  if (IsMemOp) {
    MemAccessInfo Mem =
        Hierarchy.dataAccess(In.MemAddr, In.Class == OpClass::Store);
    Issue = reserveUnit(In.Class, Ready, 1, /*Unpipelined=*/false);
    // Stores retire through the store buffer; their miss latency is hidden.
    // Loads expose the full access latency to dependents.
    Complete =
        Issue + (In.Class == OpClass::Load ? Mem.Latency : 1);
  } else {
    Issue = reserveUnit(In.Class, Ready, Latency, Unpipelined);
    Complete = Issue + Latency;
  }

  if (In.Dst != kNoReg)
    RegReady[In.Dst] = Complete;

  // Control flow.
  if (In.IsCondBranch) {
    bool Mispredicted = Predictor.predictAndUpdate(In.PC, In.Taken);
    if (Mispredicted)
      FrontendRedirect =
          std::max(FrontendRedirect, Complete + Config.MispredictPenalty);
    if (In.Taken)
      FetchedThisCycle = Config.FetchWidth; // Fetch group ends at the
                                            // taken branch.
  } else if (In.Class == OpClass::Jump) {
    // Unconditional transfers end the fetch group (target assumed BTB-hit).
    FetchedThisCycle = Config.FetchWidth;
  }

  // In-order commit, CommitWidth per cycle.
  uint64_t CommitReady = Complete + 1;
  if (CommitReady > LastCommitCycle) {
    LastCommitCycle = CommitReady;
    LastCommitCount = 1;
  } else if (LastCommitCount >= Config.CommitWidth) {
    ++LastCommitCycle;
    LastCommitCount = 1;
  } else {
    ++LastCommitCount;
  }

  WindowRing[WindowPos] = LastCommitCycle;
  WindowPos = (WindowPos + 1) % WindowRing.size();
  if (IsMemOp) {
    LsqRing[LsqPos] = LastCommitCycle;
    LsqPos = (LsqPos + 1) % LsqRing.size();
  }
}

void Core::configureWindowSettings(std::vector<uint32_t> Settings) {
  assert(!Settings.empty() && "window CU needs settings");
  for (uint32_t S : Settings)
    assert(S >= 1 && S <= Config.WindowSize &&
           "window setting exceeds the physical RUU");
  WindowSettings = std::move(Settings);
  InstrByWindowSetting.assign(WindowSettings.size(), 0);
  ActiveWindowSetting = 0;
  EffectiveWindow = WindowSettings[0];
}

void Core::setWindowSetting(unsigned Setting) {
  assert(Setting < WindowSettings.size() && "window setting out of range");
  ActiveWindowSetting = Setting;
  EffectiveWindow = WindowSettings[Setting];
}

void Core::stall(uint64_t Cycles) {
  FrontendRedirect =
      std::max(FrontendRedirect, std::max(FetchCycle, LastCommitCycle)) +
      Cycles;
}
