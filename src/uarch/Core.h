//===- uarch/Core.h - Out-of-order core timing model ------------*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The out-of-order superscalar timing model standing in for Dynamic
/// SimpleScalar's sim-outorder. It is a dependence-driven (critical-path)
/// model: every dynamic instruction is assigned fetch, issue, complete and
/// commit cycles subject to the Table 2 resources — 64-entry RUU, 32-entry
/// LSQ, 4-wide fetch/issue/commit, functional-unit counts and latencies, a
/// 2K-entry combined branch predictor with a 3-cycle misprediction penalty,
/// and memory latencies supplied by the MemoryHierarchy.
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_UARCH_CORE_H
#define DYNACE_UARCH_CORE_H

#include "cache/MemoryHierarchy.h"
#include "isa/Instruction.h"
#include "isa/Opcode.h"
#include "uarch/BranchPredictor.h"
#include "vm/DynInst.h"

#include <array>
#include <cstdint>
#include <vector>

namespace dynace {

/// Core resource parameters; defaults reproduce Table 2.
struct CoreConfig {
  uint32_t FetchWidth = 4;
  uint32_t IssueWidth = 4;
  uint32_t CommitWidth = 4;
  uint32_t WindowSize = 64; ///< RUU entries.
  uint32_t LsqSize = 32;
  uint32_t MispredictPenalty = 3;
  uint32_t FrontendDepth = 3; ///< Fetch-to-issue pipeline stages.
  uint32_t PredictorEntries = 2048;

  uint32_t NumIntAlu = 4;
  uint32_t NumIntMult = 2; ///< Shared int mult/div units.
  uint32_t NumFpAlu = 4;
  uint32_t NumFpMult = 2; ///< Shared FP mult/div units.
  uint32_t NumMemPorts = 2;

  uint32_t IntAluLat = 1;
  uint32_t IntMultLat = 3;
  uint32_t IntDivLat = 20;
  uint32_t FpAluLat = 2;
  uint32_t FpMultLat = 4;
  uint32_t FpDivLat = 12;
};

/// Consumes the VM's dynamic instruction stream and maintains cycle time.
class Core {
public:
  Core(const CoreConfig &Config, MemoryHierarchy &Hierarchy);

  /// Resets timing state (does not touch the hierarchy).
  void reset();

  /// Declares the instruction-window (RUU) settings available to the
  /// window configurable unit, in entries, largest first; each must be
  /// <= Config.WindowSize. Setting 0 becomes active.
  void configureWindowSettings(std::vector<uint32_t> Settings);

  /// Switches the active window setting (index into the declared list).
  /// Models the partitioned-RUU adaptation of Ponomarev et al.
  void setWindowSetting(unsigned Setting);

  unsigned windowSetting() const { return ActiveWindowSetting; }
  const std::vector<uint32_t> &windowSettings() const {
    return WindowSettings;
  }

  /// Instructions executed while each window setting was active (energy
  /// accounting).
  const std::vector<uint64_t> &instructionsByWindowSetting() const {
    return InstrByWindowSetting;
  }

  /// Advances the model by one dynamic instruction.
  void consume(const DynInst &In) { consumeBatch(&In, 1); }

  /// Advances the model by \p N dynamic instructions from \p Buf in one
  /// pass, hoisting hot pipeline state into locals. Observable state after
  /// the call is identical to N consume() calls; callers must not invoke
  /// stall() or setWindowSetting() with a partially-consumed batch
  /// outstanding (the simulation driver only reconfigures between batches).
  void consumeBatch(const DynInst *Buf, size_t N);

private:
  /// consumeBatch() body. FastFu selects the register-resident sorted
  /// reservation path for the stock functional-unit configuration (4 int
  /// ALUs, 2 memory ports, 4 FP ALUs, 2 FP multipliers); any other
  /// configuration takes the generic array-scan path. Both produce
  /// identical issue cycles — the pool is a multiset of free times either
  /// way.
  template <bool FastFu> void consumeBatchImpl(const DynInst *Buf, size_t N);

public:

  /// Injects a full pipeline stall of \p Cycles (used for reconfiguration
  /// overhead and DO-system service pauses).
  void stall(uint64_t Cycles);

  /// Current cycle count (commit time of the youngest instruction).
  uint64_t cycles() const { return LastCommitCycle; }

  /// Instructions consumed since reset().
  uint64_t instructions() const { return InstrCount; }

  /// Overall IPC since reset().
  double ipc() const {
    return LastCommitCycle
               ? static_cast<double>(InstrCount) /
                     static_cast<double>(LastCommitCycle)
               : 0.0;
  }

  BranchPredictor &predictor() { return Predictor; }
  const BranchPredictor &predictor() const { return Predictor; }
  const CoreConfig &config() const { return Config; }

private:
  /// Functional-unit pool identifiers (indices into Pools).
  enum : uint8_t {
    kPoolIntAlu = 0,
    kPoolIntMult, ///< Shared int mult/div units.
    kPoolFpAlu,
    kPoolFpMult, ///< Shared FP mult/div units.
    kPoolMem,
    kNumFuPools
  };

  /// Upper bound on units per pool, so pools live in fixed arrays scanned
  /// without heap indirection in the hot loop.
  static constexpr uint32_t kMaxFuUnits = 16;

  /// Next-free times for one class group of functional units.
  struct FuPool {
    std::array<uint64_t, kMaxFuUnits> Free{};
    uint32_t Count = 0;
  };

  /// Per-OpClass dispatch recipe, built by reset() from Config. Divides
  /// hold their unit for the full latency (unpipelined); everything else
  /// is fully pipelined. Load/Store latency comes from the hierarchy, not
  /// from here.
  struct ClassTiming {
    uint32_t Latency = 1;
    uint8_t Pool = kPoolIntAlu;
    bool Unpipelined = false;
  };

  /// Reserves the earliest-available unit in \p P at or after \p Ready,
  /// holding it for \p Busy cycles. \returns the issue cycle.
  static uint64_t reserveIn(FuPool &P, uint64_t Ready, uint64_t Busy) {
    uint64_t *Free = P.Free.data();
    uint32_t BestIdx = 0;
    uint64_t Best = Free[0];
    // Selects, not branches: which unit frees first is load noise to the
    // host predictor, and this runs once per consumed instruction.
    for (uint32_t I = 1; I != P.Count; ++I) {
      const bool Less = Free[I] < Best;
      Best = Less ? Free[I] : Best;
      BestIdx = Less ? I : BestIdx;
    }
    uint64_t Issue = Ready > Best ? Ready : Best;
    Free[BestIdx] = Issue + Busy;
    return Issue;
  }

  CoreConfig Config;
  MemoryHierarchy &Hierarchy;
  BranchPredictor Predictor;

  uint64_t InstrCount = 0;
  uint64_t LastCommitCycle = 0;
  uint64_t LastCommitCount = 0; ///< Commits in LastCommitCycle so far.

  /// Register ready times (virtual registers shared across frames; calls
  /// serialize through few registers, an acceptable renaming approximation).
  /// Sized for the full uint8_t id space so the hot loop can index with
  /// Src1/Src2 unconditionally: slot kNoReg (0xff) is never written (Dst is
  /// checked) and stays 0, which is a no-op in the max-of-ready-times.
  std::array<uint64_t, 256> RegReady{};

  /// Ring of the last WindowSize commit cycles (RUU occupancy constraint).
  /// Indexed with conditional-wrap arithmetic — WindowSize is not required
  /// to be a power of two and `%` is a real divide in the hot loop.
  std::vector<uint64_t> WindowRing;
  uint32_t WindowPos = 0;
  /// Effective window capacity (<= Config.WindowSize) and the adaptive
  /// setting machinery.
  uint32_t EffectiveWindow = 0;
  std::vector<uint32_t> WindowSettings;
  unsigned ActiveWindowSetting = 0;
  std::vector<uint64_t> InstrByWindowSetting;
  /// Ring of the last LsqSize memory-op commit cycles (LSQ constraint).
  std::vector<uint64_t> LsqRing;
  uint32_t LsqPos = 0;

  /// Functional-unit pools and the per-class dispatch table.
  std::array<FuPool, kNumFuPools> Pools{};
  std::array<ClassTiming, kNumOpClasses> Timing{};

  /// Front-end state.
  uint64_t FetchCycle = 0;      ///< Cycle of the current fetch group.
  uint32_t FetchedThisCycle = 0;
  uint64_t FetchBlockAddr = ~0ull; ///< Current I-fetch block address.
  uint64_t FrontendRedirect = 0;   ///< Earliest fetch after a redirect.
};

} // namespace dynace

#endif // DYNACE_UARCH_CORE_H
