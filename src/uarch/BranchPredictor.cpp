//===- uarch/BranchPredictor.cpp ------------------------------------------==//

#include "uarch/BranchPredictor.h"

#include <bit>
#include <cassert>

using namespace dynace;

BranchPredictor::BranchPredictor(uint32_t Entries)
    : Mask(Entries - 1), Pc(Entries, PcEntry{/*Bimodal=*/2, /*Chooser=*/1}),
      Gshare(Entries, 2) {
  assert(std::has_single_bit(Entries) && "entries must be a power of two");
}
