//===- uarch/BranchPredictor.cpp ------------------------------------------==//

#include "uarch/BranchPredictor.h"

#include <bit>
#include <cassert>

using namespace dynace;

BranchPredictor::BranchPredictor(uint32_t Entries)
    : Mask(Entries - 1), Bimodal(Entries, 2), Gshare(Entries, 2),
      Chooser(Entries, 1) {
  assert(std::has_single_bit(Entries) && "entries must be a power of two");
}

bool BranchPredictor::predict(uint64_t PC) const {
  uint32_t BI = indexOf(PC);
  bool B = taken(Bimodal[BI]);
  bool G = taken(Gshare[gshareIndexOf(PC)]);
  return taken(Chooser[BI]) ? G : B;
}

void BranchPredictor::update(uint64_t PC, bool Taken) {
  uint32_t BI = indexOf(PC);
  uint32_t GI = gshareIndexOf(PC);
  bool B = taken(Bimodal[BI]);
  bool G = taken(Gshare[GI]);
  // Train the chooser toward the component that was right (when they
  // disagree).
  if (B != G)
    Chooser[BI] = bump(Chooser[BI], G == Taken);
  Bimodal[BI] = bump(Bimodal[BI], Taken);
  Gshare[GI] = bump(Gshare[GI], Taken);
  History = ((History << 1) | (Taken ? 1u : 0u)) & Mask;
}

bool BranchPredictor::predictAndUpdate(uint64_t PC, bool Taken) {
  ++Lookups;
  bool Predicted = predict(PC);
  update(PC, Taken);
  bool Wrong = Predicted != Taken;
  if (Wrong)
    ++Mispredicts;
  return Wrong;
}
