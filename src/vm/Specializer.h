//===- vm/Specializer.h - Specialized simulation kernels --------*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-program kernel specialization for the batched interpreter
/// (DESIGN.md §15). The Specializer is a static pass over a finalized
/// \c Program: it pre-decodes every instruction into a 32-byte \c SpecInst
/// (handler id, raw operands, immediate, and the precomputed DynInst event
/// bytes) and — using the analysis-layer CFG and fusion rules
/// (analysis/Fusion.h) — assigns superinstruction handlers to the hottest
/// fusible pair/triple opcode sequences. \c Interpreter::stepBatch
/// dispatches over the image instead of raw bytecode when an image is
/// installed; a fused dispatch retires two or three instructions with one
/// indirect branch while still emitting one DynInst per retired
/// instruction.
///
/// Invariants (enforced by the differential test in vm_test and the
/// fusion-plan dynalint check):
///  * **event-stream identity** — the specialized kernels produce exactly
///    the DynInst stream of the generic kernel (lean batch contract);
///  * **hook-boundary rule** — no fused group contains or crosses a
///    Call/Ret/Halt or a basic-block boundary, so DO method hooks fire at
///    identical instruction counts;
///  * **variant-pick determinism** — the *results* never depend on the
///    picked variant, and `DYNACE_SPECIALIZE=1` forces the most
///    specialized variant without any timing so golden digests are
///    reproducible bit-for-bit.
///
/// \c VariantPicker selects among the variant family at System::run
/// start: a short calibration burst per (program, variant) on a scratch
/// interpreter, memoized process-wide by program digest
/// (`DYNACE_SPECIALIZE=0|1|auto|<variant>`; libVC's compile-and-pick
/// pattern). The pick and fusion coverage are recorded in the *process*
/// metrics registry only — per-run metrics are serialized into result
/// digests, which must not depend on wall-clock calibration.
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_VM_SPECIALIZER_H
#define DYNACE_VM_SPECIALIZER_H

#include "analysis/Fusion.h"
#include "isa/Program.h"
#include "support/Status.h"

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace dynace {

/// Number of defined opcodes (Opcode is dense, Halt last).
inline constexpr size_t kNumOpcodes = static_cast<size_t>(Opcode::Halt) + 1;

/// The fixed kernel-variant family, least to most specialized. Each
/// variant adds handler forms on top of the previous one; all share the
/// pre-decoded image format.
enum class SpecVariant : uint8_t {
  Generic,    ///< The PR-2 threaded bytecode kernel (no image).
  Fused2,     ///< Pre-decoded image + fused pair handlers.
  Fused3,     ///< Fused2 + fused triple handlers.
  BranchSpec, ///< Fused3 + condition-baked Br/BrI handlers.
  Unguarded,  ///< BranchSpec + proof-gated unguarded handlers: where the
              ///< dataflow analysis (analysis/Dataflow.h) proves a memory
              ///< address inside the static global segment or a Div/Rem
              ///< divisor nonzero, the handler skips the rebias-select,
              ///< wrap mask or zero check. Facts are sound, so the event
              ///< stream and every trap stay bit-identical; unproven
              ///< instructions keep the guarded handlers.
};
inline constexpr size_t kNumSpecVariants = 5;

/// \returns the stable lowercase name of \p V ("generic", "fused2",
///          "fused3", "branchspec", "unguarded") — the DYNACE_SPECIALIZE
///          vocabulary.
const char *specVariantName(SpecVariant V);

//===----------------------------------------------------------------------===//
// Fused handler family
//
// The X-macro lists below are the single source of truth for the fixed
// superinstruction family: they generate the SpecHandler enum here and the
// dispatch table + handler bodies in InterpreterSpec.cpp, so the two can
// never disagree on ordering. The family was curated from the static
// hot-sequence query (analysis::hotSequences) over the seven workload
// profiles: AddI/Add/BrI/LoadIdx/And dominate, with compare-branch and
// load-op pairs close behind.
//===----------------------------------------------------------------------===//

/// Single-op handlers, one per opcode that executes inside a batch.
/// Call/Ret/Halt get the dedicated HS_Call/HS_Ret/HS_Halt boundary
/// handlers: with a listener attached the batch stops BEFORE them so
/// method hooks fire at exact instruction counts; without one they
/// execute inline, mirroring the generic kernel's no-listener bodies.
#define DYNACE_SPEC_SINGLE(X)                                                  \
  X(IConst) X(Mov) X(Add) X(Sub) X(Mul) X(Div) X(Rem) X(And) X(Or) X(Xor)     \
  X(Shl) X(Shr) X(AddI) X(MulI) X(AndI) X(FAdd) X(FSub) X(FMul) X(FDiv)       \
  X(Load) X(Store) X(LoadIdx) X(StoreIdx) X(Br) X(BrI) X(Jmp) X(Alloc)

/// Condition kinds baked into branch-specialized handlers (BranchSpec).
#define DYNACE_SPEC_COND(X) X(Eq) X(Ne) X(Lt) X(Le) X(Gt) X(Ge)

/// Fused pairs with a non-branch tail.
#define DYNACE_SPEC_F2(X)                                                      \
  X(Add, Add) X(Add, AddI) X(AddI, Add) X(AddI, AddI) X(Add, And)             \
  X(And, Add) X(Add, AndI) X(Add, Xor) X(Xor, Add) X(Xor, AddI)               \
  X(AddI, Xor) X(Sub, AddI) X(AddI, Sub) X(MulI, Add) X(Add, MulI)            \
  X(MulI, AddI) X(Mov, AddI) X(IConst, Add) X(And, LoadIdx)                   \
  X(AndI, LoadIdx) X(AddI, LoadIdx) X(Add, LoadIdx) X(LoadIdx, Add)           \
  X(LoadIdx, AddI) X(LoadIdx, And) X(LoadIdx, Xor) X(AddI, StoreIdx)          \
  X(Add, StoreIdx) X(StoreIdx, AddI) X(StoreIdx, Add) X(Load, AddI)           \
  X(AddI, Load) X(Store, AddI) X(Shl, Or) X(Shr, And) X(AddI, And)            \
  X(Xor, FMul) X(FMul, FAdd) X(FAdd, FMul) X(FMul, AddI)                      \
  X(IConst, IConst)

/// Fused pairs whose tail is a BrI compare-branch.
#define DYNACE_SPEC_F2B(X)                                                     \
  X(AddI) X(Add) X(Sub) X(And) X(AndI) X(Xor) X(MulI) X(LoadIdx) X(Load)      \
  X(Mov)

/// Fused triples with a non-branch tail.
#define DYNACE_SPEC_F3(X)                                                      \
  X(AddI, AddI, AddI) X(Add, AddI, AddI) X(LoadIdx, Add, AddI)                \
  X(And, LoadIdx, Add) X(AddI, LoadIdx, Add) X(Add, Xor, AddI)                \
  X(LoadIdx, Xor, AddI) X(MulI, Add, AddI) X(Add, And, LoadIdx)               \
  X(AndI, LoadIdx, Add) X(MulI, Add, And) X(LoadIdx, Add, Xor)                \
  X(LoadIdx, Add, AndI) X(AddI, And, LoadIdx) X(Xor, AddI, AddI)              \
  X(AddI, AddI, And) X(Xor, AddI, And) X(Add, Xor, FMul)                      \
  X(FMul, FAdd, FMul) X(FMul, AddI, And) X(FAdd, FMul, AddI)                  \
  X(Xor, FMul, FAdd) X(IConst, IConst, IConst)

/// Fused triples whose tail is a BrI compare-branch.
#define DYNACE_SPEC_F3B(X)                                                     \
  X(AddI, AddI) X(Add, AddI) X(Sub, AddI) X(AddI, Sub) X(Xor, AddI)           \
  X(LoadIdx, And) X(LoadIdx, AddI) X(StoreIdx, AddI) X(Add, Sub)              \
  X(Add, AndI) X(And, AddI) X(AndI, AddI)

//===----------------------------------------------------------------------===//
// Unguarded (proof-gated) handler family — the Unguarded variant.
//
// Twins of the guarded handlers above for exactly the instructions the
// dataflow proofs can license: memory ops with a DF_MemInBounds fact drop
// the heap-base rebias select and the power-of-two wrap mask (the address
// is statically inside the global segment, where both are the identity),
// and Div/Rem with DF_DivisorNonZero drop the zero check. The specializer
// swaps a guarded handler for its U twin only when the ProofSet carries
// the fact for that instruction; everything else keeps the guarded form,
// so unproven paths are untouched and the event stream is bit-identical.
//===----------------------------------------------------------------------===//

/// Memory opcodes with unguarded single-op twins (HS_<Op>U).
#define DYNACE_SPEC_MEMU(X) X(Load) X(Store) X(LoadIdx) X(StoreIdx)

/// Fused pairs containing one memory op (unguarded twins HS_F2U_*). Must
/// stay a subset of DYNACE_SPEC_F2.
#define DYNACE_SPEC_F2U(X)                                                     \
  X(And, LoadIdx) X(AndI, LoadIdx) X(AddI, LoadIdx) X(Add, LoadIdx)           \
  X(LoadIdx, Add) X(LoadIdx, AddI) X(LoadIdx, And) X(LoadIdx, Xor)            \
  X(AddI, StoreIdx) X(Add, StoreIdx) X(StoreIdx, AddI) X(StoreIdx, Add)       \
  X(Load, AddI) X(AddI, Load) X(Store, AddI)

/// Memory-headed pairs with a BrI tail (unguarded twins HS_F2BU_*).
/// Subset of DYNACE_SPEC_F2B.
#define DYNACE_SPEC_F2BU(X) X(LoadIdx) X(Load)

/// Fused triples containing one memory op (unguarded twins HS_F3U_*).
/// Subset of DYNACE_SPEC_F3.
#define DYNACE_SPEC_F3U(X)                                                     \
  X(LoadIdx, Add, AddI) X(And, LoadIdx, Add) X(AddI, LoadIdx, Add)            \
  X(LoadIdx, Xor, AddI) X(Add, And, LoadIdx) X(AndI, LoadIdx, Add)            \
  X(LoadIdx, Add, Xor) X(LoadIdx, Add, AndI) X(AddI, And, LoadIdx)

/// Memory-containing triples with a BrI tail (unguarded twins HS_F3BU_*).
/// Subset of DYNACE_SPEC_F3B.
#define DYNACE_SPEC_F3BU(X) X(LoadIdx, And) X(LoadIdx, AddI) X(StoreIdx, AddI)

/// Handler ids. The dispatch table in InterpreterSpec.cpp is generated
/// from the same X-macros in the same order; SpecInst::Handler indexes it.
enum SpecHandler : uint16_t {
#define DYNACE_X(Op) HS_##Op,
  DYNACE_SPEC_SINGLE(DYNACE_X)
#undef DYNACE_X
  HS_Call,        ///< Call: stop with a listener, else push a frame inline.
  HS_Ret,         ///< Ret: stop with a listener, else pop a frame inline.
  HS_Halt,        ///< Halt: stop with a listener, else unwind and halt.
  HS_TrapInvalid, ///< Invalid opcode byte: raise InvalidOpcode.
  HS_TrapOffEnd,  ///< Off-end sentinel: raise PcOutOfRange.
#define DYNACE_X(C) HS_Br_##C, HS_BrI_##C,
  DYNACE_SPEC_COND(DYNACE_X)
#undef DYNACE_X
#define DYNACE_X(A, B) HS_F2_##A##_##B,
  DYNACE_SPEC_F2(DYNACE_X)
#undef DYNACE_X
#define DYNACE_X(A) HS_F2B_##A,
  DYNACE_SPEC_F2B(DYNACE_X)
#undef DYNACE_X
#define DYNACE_X(A, B, C) HS_F3_##A##_##B##_##C,
  DYNACE_SPEC_F3(DYNACE_X)
#undef DYNACE_X
#define DYNACE_X(A, B) HS_F3B_##A##_##B,
  DYNACE_SPEC_F3B(DYNACE_X)
#undef DYNACE_X
  // Unguarded twins (Unguarded variant; appended so every guarded id
  // above stays stable).
#define DYNACE_X(Op) HS_##Op##U,
  DYNACE_SPEC_MEMU(DYNACE_X)
#undef DYNACE_X
  HS_DivNZ, ///< Div with a proven nonzero divisor: no zero check.
  HS_RemNZ, ///< Rem with a proven nonzero divisor: no zero check.
#define DYNACE_X(A, B) HS_F2U_##A##_##B,
  DYNACE_SPEC_F2U(DYNACE_X)
#undef DYNACE_X
#define DYNACE_X(A) HS_F2BU_##A,
  DYNACE_SPEC_F2BU(DYNACE_X)
#undef DYNACE_X
#define DYNACE_X(A, B, C) HS_F3U_##A##_##B##_##C,
  DYNACE_SPEC_F3U(DYNACE_X)
#undef DYNACE_X
#define DYNACE_X(A, B) HS_F3BU_##A##_##B,
  DYNACE_SPEC_F3BU(DYNACE_X)
#undef DYNACE_X
  HS_Count,
};

/// One pre-decoded instruction of a specialized image. 32 bytes — the
/// image streams through L1 at two entries per cache line, like DynInst.
struct SpecInst {
  /// Full instruction byte address (kCodeBase + index * kInstrBytes; code
  /// addresses fit in 32 bits, see DynInst::Target).
  uint32_t PC = 0;
  /// Taken-target image index for Br/BrI/Jmp; 0 otherwise.
  uint32_t Alt = 0;
  /// Immediate: IConst/AddI/MulI/AndI value, Load/Store displacement,
  /// BrI compare immediate (the instruction's Aux).
  int64_t Imm = 0;
  /// Precomputed DynInst bytes [16, 24): Class, the *event view* of
  /// Dst/Src1/Src2 (StoreIdx swap baked in), IsCondBranch = Taken = false
  /// and the tail padding. The kernel stores this as one 8-byte write;
  /// branch handlers OR in a specEvtBranch() image first.
  uint64_t EvtA = 0;
  uint16_t Handler = HS_TrapOffEnd;
  /// Raw execution operands (StoreIdx keeps Dst = index register here).
  uint8_t Dst = 0xff;
  uint8_t Src1 = 0xff;
  uint8_t Src2 = 0xff;
  /// CondKind for Br/BrI.
  uint8_t Cond = 0;
  uint16_t Pad = 0;
};
static_assert(sizeof(SpecInst) == 32, "SpecInst must stay two per line");

/// Packs 8 bytes (lowest address first) into the uint64_t with exactly
/// that object representation — endianness-agnostic by construction.
inline uint64_t specPackBytes(const unsigned char (&B)[8]) {
  uint64_t V;
  std::memcpy(&V, B, 8);
  return V;
}

/// \returns the EvtA image for an event with timing class \p C and event
///          operands \p Dst / \p Src1 / \p Src2 (not a branch).
inline uint64_t specEvtA(OpClass C, uint8_t Dst, uint8_t Src1, uint8_t Src2) {
  const unsigned char B[8] = {static_cast<unsigned char>(C), Dst, Src1, Src2,
                              0, 0, 0, 0};
  return specPackBytes(B);
}

/// \returns the IsCondBranch/Taken image for a conditional branch with
///          outcome \p Taken, to be ORed into an EvtA image.
inline uint64_t specEvtBranch(bool Taken) {
  const unsigned char B[8] = {0, 0, 0, 0,
                              1, static_cast<unsigned char>(Taken ? 1 : 0),
                              0, 0};
  return specPackBytes(B);
}

/// The specialized image of one method: one SpecInst per instruction plus
/// an off-end sentinel (index Code.size()) that raises PcOutOfRange, so
/// the kernel needs no per-instruction PC bounds check.
struct SpecMethodImage {
  std::vector<SpecInst> Insts;
  /// The fusion plan the image encodes (group heads carry fused
  /// handlers). Verified against analysis::verifyFusionPlan at build.
  std::vector<analysis::FusionGroup> Plan;
};

/// A full specialized program image. Immutable after build; shared
/// read-only across interpreters and worker threads.
struct SpecProgram {
  std::vector<SpecMethodImage> Methods;
  SpecVariant Variant = SpecVariant::Generic;
  /// Static instructions covered by fused groups / total static
  /// instructions — the fusion-coverage metric.
  uint64_t FusedInstructions = 0;
  uint64_t TotalInstructions = 0;

  /// \returns the fusion coverage in percent (0 when the program is
  ///          empty).
  double coveragePct() const {
    return TotalInstructions
               ? 100.0 * static_cast<double>(FusedInstructions) /
                     static_cast<double>(TotalInstructions)
               : 0.0;
  }
};

/// The static specialization pass.
class Specializer {
public:
  /// Builds the \p V image of finalized program \p P. The fusion plan of
  /// every method is re-verified against the hook-boundary rule
  /// (analysis::verifyFusionPlan); a violation — impossible unless the
  /// selector and verifier disagree — falls back to an unfused image for
  /// that method and bumps the `vm.specialize.plan_rejected` process
  /// counter.
  static SpecProgram build(const Program &P, SpecVariant V);

  /// FNV-1a digest over \p P's code bytes, entry and global size — the
  /// memoization key for images and calibration picks. Two Programs with
  /// identical content share a digest (and may share images).
  static uint64_t programDigest(const Program &P);
};

/// A parsed DYNACE_SPECIALIZE request.
struct SpecRequest {
  enum class Kind : uint8_t {
    Off,   ///< "0" / "generic": always the generic kernel.
    Auto,  ///< "auto": calibrate per program, pick the fastest.
    Force, ///< "1" (-> Unguarded, the most specialized tier) or an
           ///< explicit variant name.
  };
  Kind K = Kind::Auto;
  SpecVariant Variant = SpecVariant::Generic;
};

/// Strict-parses a DYNACE_SPECIALIZE value ("0", "1", "auto", "generic",
/// "fused2", "fused3", "branchspec", "unguarded").
/// \returns the request, or InvalidInput for anything else.
Expected<SpecRequest> parseSpecializeValue(const std::string &Value);

/// What VariantPicker decided for one program.
struct SpecDecision {
  /// Image to install (null = generic kernel). Process-lifetime storage.
  const SpecProgram *Image = nullptr;
  SpecVariant Variant = SpecVariant::Generic;
  double CoveragePct = 0.0;
  /// True when a calibration burst ran for this decision (Auto, first
  /// sighting of the program digest).
  bool Calibrated = false;
};

/// Runtime variant selection (libVC compile-and-pick): builds the image
/// family for a program on first sight, optionally times a short
/// deterministic calibration burst per variant, and memoizes both images
/// and pick process-wide keyed by Specializer::programDigest. Thread-safe.
class VariantPicker {
public:
  /// Resolves \p Req for \p P. Off returns the null decision; Force
  /// returns the requested variant's image without timing; Auto runs the
  /// calibration burst (once per program digest per process) and returns
  /// the measured winner, which may be Generic.
  static SpecDecision decide(const Program &P, const SpecRequest &Req);

  /// Parses \p Override when non-empty, else the DYNACE_SPECIALIZE
  /// environment variable (default "auto") — strict support/Env parsing:
  /// a malformed value is fatal.
  /// \returns the request.
  static SpecRequest requestFromEnv(const std::string &Override = "");

  /// Instructions each calibration burst executes per variant.
  static constexpr uint64_t kCalibInstructions = 400'000;
};

} // namespace dynace

#endif // DYNACE_VM_SPECIALIZER_H
