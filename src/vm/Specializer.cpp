//===- vm/Specializer.cpp - Specialized simulation kernels ----------------===//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//

#include "vm/Specializer.h"

#include "analysis/Cfg.h"
#include "analysis/Dataflow.h"
#include "obs/Metrics.h"
#include "support/Env.h"
#include "support/ThreadSafety.h"
#include "vm/Interpreter.h"

#include <chrono>
#include <map>
#include <memory>

using namespace dynace;

const char *dynace::specVariantName(SpecVariant V) {
  switch (V) {
  case SpecVariant::Generic:
    return "generic";
  case SpecVariant::Fused2:
    return "fused2";
  case SpecVariant::Fused3:
    return "fused3";
  case SpecVariant::BranchSpec:
    return "branchspec";
  case SpecVariant::Unguarded:
    return "unguarded";
  }
  return "unknown";
}

Expected<SpecRequest> dynace::parseSpecializeValue(const std::string &Value) {
  SpecRequest R;
  if (Value == "0" || Value == "generic") {
    R.K = SpecRequest::Kind::Off;
    return R;
  }
  if (Value == "1") {
    R.K = SpecRequest::Kind::Force;
    R.Variant = SpecVariant::Unguarded; // The most specialized tier.
    return R;
  }
  if (Value == "auto") {
    R.K = SpecRequest::Kind::Auto;
    return R;
  }
  for (SpecVariant V : {SpecVariant::Fused2, SpecVariant::Fused3,
                        SpecVariant::BranchSpec, SpecVariant::Unguarded}) {
    if (Value == specVariantName(V)) {
      R.K = SpecRequest::Kind::Force;
      R.Variant = V;
      return R;
    }
  }
  return Status::error(ErrorCode::InvalidInput,
                       "DYNACE_SPECIALIZE: expected 0|1|auto|generic|fused2|"
                       "fused3|branchspec|unguarded, got '" +
                           Value + "'");
}

namespace {

// The branch-specialized handler ids are laid out Br/BrI interleaved per
// CondKind by the X-macro; these asserts pin the arithmetic used below.
static_assert(HS_BrI_Eq == HS_Br_Eq + 1, "cond handler layout");
static_assert(HS_Br_Ne == HS_Br_Eq + 2, "cond handler layout");
static_assert(HS_BrI_Ge == HS_Br_Eq + 2 * 5 + 1, "cond handler layout");

/// Single-op handler per opcode, in Opcode order.
constexpr uint16_t kSingleHandler[kNumOpcodes] = {
    HS_IConst, HS_Mov,      HS_Add,      HS_Sub,      HS_Mul,
    HS_Div,    HS_Rem,      HS_And,      HS_Or,       HS_Xor,
    HS_Shl,    HS_Shr,      HS_AddI,     HS_MulI,     HS_AndI,
    HS_FAdd,   HS_FSub,     HS_FMul,     HS_FDiv,     HS_Load,
    HS_Store,  HS_LoadIdx,  HS_StoreIdx, HS_Br,       HS_BrI,
    HS_Jmp,    HS_Call,     HS_Ret,      HS_Alloc,    HS_Halt,
};
static_assert(static_cast<size_t>(Opcode::Halt) == kNumOpcodes - 1,
              "kSingleHandler must cover every opcode");

struct PairEntry {
  Opcode A, B;
  uint16_t H;
};
constexpr PairEntry kPairs[] = {
#define DYNACE_X(A, B) {Opcode::A, Opcode::B, HS_F2_##A##_##B},
    DYNACE_SPEC_F2(DYNACE_X)
#undef DYNACE_X
#define DYNACE_X(A) {Opcode::A, Opcode::BrI, HS_F2B_##A},
    DYNACE_SPEC_F2B(DYNACE_X)
#undef DYNACE_X
};

struct TripleEntry {
  Opcode A, B, C;
  uint16_t H;
};
constexpr TripleEntry kTriples[] = {
#define DYNACE_X(A, B, C) {Opcode::A, Opcode::B, Opcode::C, HS_F3_##A##_##B##_##C},
    DYNACE_SPEC_F3(DYNACE_X)
#undef DYNACE_X
#define DYNACE_X(A, B) {Opcode::A, Opcode::B, Opcode::BrI, HS_F3B_##A##_##B},
    DYNACE_SPEC_F3B(DYNACE_X)
#undef DYNACE_X
};

/// \returns the fused-pair handler for (A, B), or 0 when the family has
///          none (0 is HS_IConst, never a fused id).
uint16_t findPair(Opcode A, Opcode B) {
  for (const PairEntry &E : kPairs)
    if (E.A == A && E.B == B)
      return E.H;
  return 0;
}

uint16_t findTriple(Opcode A, Opcode B, Opcode C) {
  for (const TripleEntry &E : kTriples)
    if (E.A == A && E.B == B && E.C == C)
      return E.H;
  return 0;
}

// Unguarded twins (Unguarded variant): same lookup shape, separate tables
// so the guarded fast path never scans them.
constexpr PairEntry kPairsU[] = {
#define DYNACE_X(A, B) {Opcode::A, Opcode::B, HS_F2U_##A##_##B},
    DYNACE_SPEC_F2U(DYNACE_X)
#undef DYNACE_X
#define DYNACE_X(A) {Opcode::A, Opcode::BrI, HS_F2BU_##A},
    DYNACE_SPEC_F2BU(DYNACE_X)
#undef DYNACE_X
};

constexpr TripleEntry kTriplesU[] = {
#define DYNACE_X(A, B, C) {Opcode::A, Opcode::B, Opcode::C, HS_F3U_##A##_##B##_##C},
    DYNACE_SPEC_F3U(DYNACE_X)
#undef DYNACE_X
#define DYNACE_X(A, B) {Opcode::A, Opcode::B, Opcode::BrI, HS_F3BU_##A##_##B},
    DYNACE_SPEC_F3BU(DYNACE_X)
#undef DYNACE_X
};

uint16_t findPairU(Opcode A, Opcode B) {
  for (const PairEntry &E : kPairsU)
    if (E.A == A && E.B == B)
      return E.H;
  return 0;
}

uint16_t findTripleU(Opcode A, Opcode B, Opcode C) {
  for (const TripleEntry &E : kTriplesU)
    if (E.A == A && E.B == B && E.C == C)
      return E.H;
  return 0;
}

bool isMemOp(Opcode Op) {
  return Op == Opcode::Load || Op == Opcode::Store ||
         Op == Opcode::LoadIdx || Op == Opcode::StoreIdx;
}

/// True when every memory instruction of the group [\p First, \p First +
/// \p Len) carries a DF_MemInBounds proof — the license for the group's
/// unguarded fused twin. Groups without memory ops return true trivially,
/// but have no U twin in the tables, so the lookup still keeps them
/// guarded.
bool groupMemProven(const Method &M, const std::vector<uint8_t> &Facts,
                    uint32_t First, uint32_t Len) {
  for (uint32_t I = First; I != First + Len; ++I)
    if (isMemOp(M.Code[I].Op) &&
        !(Facts[I] & analysis::DF_MemInBounds))
      return false;
  return true;
}

/// Specialization requires what the strict verifier guarantees; programs
/// finalized with a lax hook (tests) may violate it. \returns true when
/// every method is non-empty with valid opcode bytes and in-image branch
/// targets (target == code size falls through to the off-end sentinel,
/// like the generic kernel's bounds check).
bool isSpecializable(const Program &P) {
  if (P.numMethods() == 0)
    return false;
  for (MethodId Id = 0; Id < P.numMethods(); ++Id) {
    const Method &M = P.method(Id);
    if (M.Code.empty())
      return false;
    for (const Instruction &In : M.Code) {
      if (static_cast<uint8_t>(In.Op) >= kNumOpcodes)
        return false;
      if (In.Op == Opcode::Br || In.Op == Opcode::BrI ||
          In.Op == Opcode::Jmp) {
        if (In.Imm < 0 ||
            In.Imm > static_cast<int64_t>(M.Code.size()))
          return false;
      }
    }
  }
  return true;
}

/// Builds the unfused pre-decoded entry for instruction \p I of \p M.
/// \p Facts is the method's per-instruction dataflow mask (null for every
/// variant below Unguarded): a DF_MemInBounds or DF_DivisorNonZero proof
/// swaps the guarded handler for its unguarded twin.
SpecInst singleEntry(const Method &M, uint32_t I, SpecVariant V,
                     const uint8_t *Facts) {
  const Instruction &In = M.Code[I];
  SpecInst S;
  S.PC = static_cast<uint32_t>(M.pcOf(I));
  S.Handler = kSingleHandler[static_cast<uint8_t>(In.Op)];
  S.Dst = In.Dst;
  S.Src1 = In.Src1;
  S.Src2 = In.Src2;
  S.Cond = static_cast<uint8_t>(In.Cond);
  switch (In.Op) {
  case Opcode::Br:
    S.Alt = static_cast<uint32_t>(In.Imm);
    if (V >= SpecVariant::BranchSpec)
      S.Handler = static_cast<uint16_t>(HS_Br_Eq + 2 * S.Cond);
    break;
  case Opcode::BrI:
    S.Alt = static_cast<uint32_t>(In.Imm);
    S.Imm = In.Aux; // Compare immediate; the branch target lives in Alt.
    if (V >= SpecVariant::BranchSpec)
      S.Handler = static_cast<uint16_t>(HS_Br_Eq + 2 * S.Cond + 1);
    break;
  case Opcode::Jmp:
    S.Alt = static_cast<uint32_t>(In.Imm);
    break;
  default:
    S.Imm = In.Imm;
    break;
  }
  if (Facts) {
    const uint8_t F = Facts[I];
    if (isMemOp(In.Op) && (F & analysis::DF_MemInBounds))
      switch (In.Op) {
      case Opcode::Load:
        S.Handler = HS_LoadU;
        break;
      case Opcode::Store:
        S.Handler = HS_StoreU;
        break;
      case Opcode::LoadIdx:
        S.Handler = HS_LoadIdxU;
        break;
      default:
        S.Handler = HS_StoreIdxU;
        break;
      }
    else if (In.Op == Opcode::Div && (F & analysis::DF_DivisorNonZero))
      S.Handler = HS_DivNZ;
    else if (In.Op == Opcode::Rem && (F & analysis::DF_DivisorNonZero))
      S.Handler = HS_RemNZ;
  }
  // Event view: identical to the generic batch contract, which copies the
  // instruction operands except for StoreIdx's index-register swap.
  uint8_t EvDst = In.Dst, EvSrc2 = In.Src2;
  if (In.Op == Opcode::StoreIdx) {
    EvDst = kNoReg;
    EvSrc2 = In.Dst;
  }
  S.EvtA = specEvtA(opClassOf(In.Op), EvDst, In.Src1, EvSrc2);
  return S;
}

} // namespace

uint64_t Specializer::programDigest(const Program &P) {
  uint64_t H = 1469598103934665603ull;
  auto Mix = [&H](uint64_t V) {
    for (int I = 0; I < 8; ++I) {
      H ^= (V >> (I * 8)) & 0xff;
      H *= 1099511628211ull;
    }
  };
  Mix(P.numMethods());
  Mix(P.entry());
  Mix(P.globalWords());
  for (MethodId Id = 0; Id < P.numMethods(); ++Id) {
    const Method &M = P.method(Id);
    Mix(M.Code.size());
    Mix(M.CodeBase);
    for (const Instruction &In : M.Code) {
      Mix(static_cast<uint64_t>(In.Op) | (static_cast<uint64_t>(In.Cond) << 8) |
          (static_cast<uint64_t>(In.Dst) << 16) |
          (static_cast<uint64_t>(In.Src1) << 24) |
          (static_cast<uint64_t>(In.Src2) << 32));
      Mix(static_cast<uint64_t>(In.Imm));
      Mix(static_cast<uint64_t>(In.Aux));
    }
  }
  return H;
}

SpecProgram Specializer::build(const Program &P, SpecVariant V) {
  SpecProgram SP;
  if (V == SpecVariant::Generic || !isSpecializable(P)) {
    if (V != SpecVariant::Generic)
      MetricsRegistry::process()
          .counter("vm.specialize.unsupported_program")
          .inc();
    return SP; // Variant stays Generic: "no image".
  }
  SP.Variant = V;
  SP.Methods.resize(P.numMethods());
  const unsigned MaxLen = V >= SpecVariant::Fused3 ? 3 : 2;
  // The Unguarded tier consumes the dataflow proofs; every lower tier
  // builds without them (Proofs stays empty and Facts below stays null),
  // so guarded images are byte-identical to what they were before the
  // proof layer existed.
  analysis::ProofSet Proofs;
  if (V >= SpecVariant::Unguarded) {
    Proofs = analysis::computeProofSet(P);
    MetricsRegistry::process()
        .counter("vm.specialize.proven_guards")
        .inc(Proofs.provenGuardCount());
  }
  for (MethodId Id = 0; Id < P.numMethods(); ++Id) {
    const Method &M = P.method(Id);
    const uint8_t *Facts =
        V >= SpecVariant::Unguarded && Id < Proofs.MethodFacts.size() &&
                Proofs.MethodFacts[Id].size() == M.Code.size()
            ? Proofs.MethodFacts[Id].data()
            : nullptr;
    SpecMethodImage &Img = SP.Methods[Id];
    SP.TotalInstructions += M.Code.size();
    Img.Insts.reserve(M.Code.size() + 1);
    for (uint32_t I = 0; I < M.Code.size(); ++I)
      Img.Insts.push_back(singleEntry(M, I, V, Facts));
    // Off-end sentinel: running past the last instruction raises
    // PcOutOfRange without a per-instruction bounds check.
    SpecInst Sentinel;
    Sentinel.PC = static_cast<uint32_t>(M.pcOf(M.Code.size()));
    Sentinel.Handler = HS_TrapOffEnd;
    Img.Insts.push_back(Sentinel);

    // Fusion selection: greedy longest-match over the fusible runs, so
    // groups can never contain a boundary op or leave a basic block.
    const analysis::Cfg G = analysis::Cfg::build(M);
    for (const analysis::FusionRun &Run : analysis::fusibleRuns(M, G)) {
      uint32_t I = Run.First;
      const uint32_t End = Run.First + Run.Len;
      while (I + 2 <= End) {
        uint16_t H = 0;
        uint32_t Len = 0;
        if (MaxLen >= 3 && I + 3 <= End) {
          H = findTriple(M.Code[I].Op, M.Code[I + 1].Op, M.Code[I + 2].Op);
          if (H)
            Len = 3;
        }
        if (!H) {
          H = findPair(M.Code[I].Op, M.Code[I + 1].Op);
          if (H)
            Len = 2;
        }
        if (!H) {
          ++I;
          continue;
        }
        // Unguarded: swap in the group's U twin when every memory op in
        // it carries an in-bounds proof. Twin-less groups (no memory op,
        // or no proof) keep the guarded handler — same retired work.
        if (Facts && groupMemProven(M, Proofs.MethodFacts[Id], I, Len)) {
          const uint16_t HU =
              Len == 3 ? findTripleU(M.Code[I].Op, M.Code[I + 1].Op,
                                     M.Code[I + 2].Op)
                       : findPairU(M.Code[I].Op, M.Code[I + 1].Op);
          if (HU)
            H = HU;
        }
        Img.Insts[I].Handler = H;
        Img.Plan.push_back({I, Len});
        SP.FusedInstructions += Len;
        I += Len;
      }
    }

    // Defense in depth: the dynalint fusion check must agree that the
    // plan respects the hook-boundary rule; a disagreement voids the
    // method's fusion rather than shipping a hook-moving kernel.
    if (!Img.Plan.empty() &&
        !analysis::verifyFusionPlan(P, Id, Img.Plan).empty()) {
      MetricsRegistry::process()
          .counter("vm.specialize.plan_rejected")
          .inc();
      for (const analysis::FusionGroup &F : Img.Plan) {
        SP.FusedInstructions -= F.Len;
        Img.Insts[F.First] = singleEntry(M, F.First, V, Facts);
      }
      Img.Plan.clear();
    }
  }
  return SP;
}

//===----------------------------------------------------------------------===//
// VariantPicker
//===----------------------------------------------------------------------===//

namespace {

/// Process-wide image + pick memoization, keyed by program digest. Images
/// are immutable after build and outlive every System, so workers under
/// DYNACE_JOBS share them safely.
struct SpecCache {
  struct Entry {
    std::unique_ptr<SpecProgram> Images[kNumSpecVariants];
    bool HasAutoPick = false;
    SpecVariant AutoPick = SpecVariant::Generic;
  };
  Mutex M;
  std::map<uint64_t, Entry> Entries GUARDED_BY(M);
};

SpecCache &specCache() {
  static SpecCache C;
  return C;
}

/// Times one calibration burst: kCalibInstructions through stepBatch on a
/// scratch interpreter (no listener — method boundaries execute inline,
/// as in the no-listener contract). The instruction stream is fixed by
/// the program, so every variant measures identical work.
/// \returns achieved instructions per second.
double calibrate(const Program &P, const SpecProgram *Image) {
  Interpreter I(P);
  I.setSpecialization(Image);
  std::vector<DynInst> Buf(1024);
  uint64_t Executed = 0;
  const auto Start = std::chrono::steady_clock::now();
  while (Executed < VariantPicker::kCalibInstructions) {
    size_t N = I.stepBatch(Buf.data(), Buf.size());
    if (N == 0) {
      if (I.trapped())
        break;
      if (I.isHalted()) {
        I.reset(); // Loop short programs; the stream stays deterministic.
        continue;
      }
      DynInst D;
      if (I.step(D) == Interpreter::Status::Running)
        ++Executed;
      continue;
    }
    Executed += N;
  }
  const std::chrono::duration<double> Secs =
      std::chrono::steady_clock::now() - Start;
  if (Executed == 0 || Secs.count() <= 0.0)
    return 0.0;
  return static_cast<double>(Executed) / Secs.count();
}

} // namespace

SpecRequest VariantPicker::requestFromEnv(const std::string &Override) {
  const std::string Value =
      !Override.empty() ? Override : envString("DYNACE_SPECIALIZE", "auto");
  Expected<SpecRequest> R = parseSpecializeValue(Value);
  if (!R)
    fatalError("invalid DYNACE_SPECIALIZE", R.status());
  return *R;
}

SpecDecision VariantPicker::decide(const Program &P, const SpecRequest &Req) {
  SpecDecision D;
  if (Req.K == SpecRequest::Kind::Off ||
      (Req.K == SpecRequest::Kind::Force &&
       Req.Variant == SpecVariant::Generic))
    return D;

  const uint64_t Digest = Specializer::programDigest(P);
  MutexLock Lock(specCache().M);
  SpecCache::Entry &E = specCache().Entries[Digest];
  auto ImageFor = [&](SpecVariant V) -> const SpecProgram * {
    if (V == SpecVariant::Generic)
      return nullptr;
    std::unique_ptr<SpecProgram> &Slot = E.Images[static_cast<size_t>(V)];
    if (!Slot)
      Slot = std::make_unique<SpecProgram>(Specializer::build(P, V));
    return Slot->Variant == V ? Slot.get() : nullptr;
  };

  if (Req.K == SpecRequest::Kind::Force) {
    D.Image = ImageFor(Req.Variant);
    D.Variant = D.Image ? Req.Variant : SpecVariant::Generic;
    D.CoveragePct = D.Image ? D.Image->coveragePct() : 0.0;
    return D;
  }

  // Auto: calibrate once per program digest per process. Each variant is
  // timed in several rounds interleaved with the others and scored by its
  // best round: a single burst on a loaded host swings by more than the
  // spread between variants, and interleaving exposes every variant to
  // the same transient load. Only the pick's wall-clock inputs vary; the
  // simulated streams are deterministic for every candidate.
  if (!E.HasAutoPick) {
    E.HasAutoPick = true;
    E.AutoPick = SpecVariant::Generic;
    if (ImageFor(SpecVariant::Fused2)) { // Program is specializable.
      constexpr SpecVariant Cands[] = {SpecVariant::Fused2,
                                       SpecVariant::Fused3,
                                       SpecVariant::BranchSpec,
                                       SpecVariant::Unguarded};
      constexpr int kRounds = 3;
      double GenericBest = 0.0;
      double CandBest[std::size(Cands)] = {};
      for (int Round = 0; Round != kRounds; ++Round) {
        GenericBest = std::max(GenericBest, calibrate(P, nullptr));
        for (size_t I = 0; I != std::size(Cands); ++I)
          CandBest[I] = std::max(CandBest[I], calibrate(P, ImageFor(Cands[I])));
      }
      double Best = GenericBest;
      for (size_t I = 0; I != std::size(Cands); ++I) {
        if (CandBest[I] > Best) {
          Best = CandBest[I];
          E.AutoPick = Cands[I];
        }
      }
      D.Calibrated = true;
    }
  }
  D.Image = ImageFor(E.AutoPick);
  D.Variant = D.Image ? E.AutoPick : SpecVariant::Generic;
  D.CoveragePct = D.Image ? D.Image->coveragePct() : 0.0;
  return D;
}
