//===- vm/Interpreter.h - Bytecode interpreter ------------------*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interpreting virtual machine. It executes a finalized Program and
/// emits one DynInst per executed bytecode. Method entry/exit hooks give the
/// dynamic optimization system its view of procedure invocations — the same
/// boundary Jikes RVM instruments for hotspot detection and, in the paper's
/// framework, for tuning/configuration code.
///
/// Malformed execution is a structured trap, never UB or an assert: an
/// invalid opcode byte, a PC that leaves the method's code (bad branch
/// target), a call to a nonexistent method, integer division by zero, or
/// runaway recursion stops the machine with Status::Trapped and a TrapInfo
/// describing what happened where. The trapping instruction does not
/// retire (the instruction count excludes it), and the machine stays
/// trapped until reset(). The program verifier rejects most of these
/// statically; the traps are the defense-in-depth backstop that turns a
/// verifier escape or in-memory corruption into a reportable, retryable
/// error instead of undefined behavior.
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_VM_INTERPRETER_H
#define DYNACE_VM_INTERPRETER_H

#include "isa/Program.h"
#include "vm/DynInst.h"

#include <cstdint>
#include <vector>

namespace dynace {

struct SpecProgram;

/// Observer of VM-level events. The dynamic optimization system implements
/// this to detect hotspots and drive tuning at hotspot boundaries.
class VmListener {
public:
  virtual ~VmListener();

  /// Called immediately after control enters \p Id. \p InstrCount is the
  /// dynamic instruction count at entry.
  virtual void onMethodEnter(MethodId Id, uint64_t InstrCount) {
    (void)Id;
    (void)InstrCount;
  }

  /// Called when \p Id returns. \p InclusiveInstructions is the number of
  /// dynamic instructions executed between entry and exit, including
  /// callees — the paper's notion of hotspot size, which determines the CU
  /// subset a hotspot may tune (CU decoupling). \p InstrCount is the dynamic
  /// instruction count at exit.
  virtual void onMethodExit(MethodId Id, uint64_t InclusiveInstructions,
                            uint64_t InstrCount) {
    (void)Id;
    (void)InclusiveInstructions;
    (void)InstrCount;
  }
};

/// What stopped a trapped execution (see Interpreter::trapInfo()).
enum class TrapKind : uint8_t {
  None,          ///< Not trapped.
  InvalidOpcode, ///< Opcode byte outside the defined ISA.
  PcOutOfRange,  ///< PC left the method's code (bad branch target).
  BadCallTarget, ///< Call to a method id outside the program.
  DivideByZero,  ///< Integer Div/Rem with a zero divisor.
  StackOverflow, ///< Call depth exceeded kMaxCallDepth.
};

/// \returns a stable human-readable name for \p Kind.
const char *trapKindName(TrapKind Kind);

/// Where and why the machine trapped.
struct TrapInfo {
  TrapKind Kind = TrapKind::None;
  uint64_t PC = 0;     ///< Byte address of the faulting instruction.
  MethodId Method = 0; ///< Method executing at the trap.
};

/// Hard bound on interpreter call depth; exceeding it traps with
/// StackOverflow instead of growing the frame stack without limit.
inline constexpr size_t kMaxCallDepth = 1 << 16;

/// Executes a finalized Program one instruction at a time.
class Interpreter {
public:
  enum class Status : uint8_t { Running, Halted, Trapped };

  /// \param Prog must outlive the interpreter and be finalized.
  /// \param DynamicHeapWords extra heap words available to Alloc.
  explicit Interpreter(const Program &Prog,
                       uint64_t DynamicHeapWords = 1 << 20);

  /// Resets all execution state (memory contents are zeroed).
  void reset();

  /// Installs the method-boundary listener (may be null).
  void setListener(VmListener *L) { Listener = L; }

  /// Installs a specialized kernel image (vm/Specializer.h; null reverts
  /// to the generic kernel). \p S must have been built from this
  /// interpreter's program and must outlive the interpreter. stepBatch
  /// then dispatches over the pre-decoded image; the emitted DynInst
  /// stream and all architectural state remain exactly those of the
  /// generic kernel (the §15 event-stream-identity invariant). Survives
  /// reset().
  void setSpecialization(const SpecProgram *S) { Spec = S; }

  /// \returns the installed specialization image (null = generic).
  const SpecProgram *specialization() const { return Spec; }

  /// Executes one instruction. \p Out receives the dynamic instruction
  /// event. \returns Halted once the program executed Halt or returned from
  /// the entry method (further calls keep returning Halted), or Trapped
  /// when the instruction faulted (see trapInfo(); \p Out is not filled
  /// and the instruction does not retire).
  Status step(DynInst &Out);

  /// Batched execution: fills \p Buf with up to \p N dynamic instructions
  /// from one tight dispatch loop and \returns the number filled.
  ///
  /// Semantics relative to N calls of step():
  ///  * When a listener is installed, the batch stops BEFORE any Call, Ret
  ///    or Halt so that method-boundary events fire only from step() —
  ///    after the caller has drained the batch into the timing model. A
  ///    return of 0 with !isHalted() therefore means "the next instruction
  ///    is a method boundary: execute it with step()".
  ///  * Without a listener, Call/Ret/Halt execute inline and the batch only
  ///    ends at \p N or program halt.
  ///  * Buffer entries carry the lean timing contract (see DynInst): PC,
  ///    Class, Dst, Src1, Src2, IsCondBranch always; MemAddr for loads and
  ///    stores; Taken for conditional branches. Target is NOT written.
  ///
  /// Architectural state (registers, memory, instruction count) advances
  /// exactly as under step().
  size_t stepBatch(DynInst *Buf, size_t N);

  /// Convenience: runs up to \p MaxInstructions (dropping the events).
  /// \returns the number of instructions actually executed.
  uint64_t run(uint64_t MaxInstructions);

  /// Total dynamic instructions executed since reset().
  uint64_t instructionCount() const { return InstrCount; }

  /// True once the program halted.
  bool isHalted() const { return Halted; }

  /// True once execution trapped; cleared by reset().
  bool trapped() const { return Trap.Kind != TrapKind::None; }

  /// Details of the trap that stopped the machine (Kind == None when not
  /// trapped).
  const TrapInfo &trapInfo() const { return Trap; }

  /// Current call depth (frames on the stack).
  size_t callDepth() const { return Frames.size(); }

  /// Direct word access to VM memory, for tests and workload setup.
  /// \p ByteAddr must be word-aligned and within the heap.
  uint64_t readWord(uint64_t ByteAddr) const;
  void writeWord(uint64_t ByteAddr, uint64_t Value);

  /// Heap capacity in words.
  uint64_t heapWords() const { return Memory.size(); }

  /// Snapshot of the top frame's registers (empty when no frame is
  /// live) — lets the differential tests compare final register state
  /// across kernel variants.
  std::vector<uint64_t> topFrameRegs() const;

private:
  struct Frame {
    MethodId Id;
    uint32_t PC; ///< Instruction index within the method.
    uint8_t RetReg;
    uint64_t EntryInstrCount;
    uint64_t Regs[kNumRegs];
  };

  /// Maps a byte address to a word index, wrapping into the heap (the
  /// synthetic workloads are generated in-bounds; stray addresses wrap so a
  /// malformed program cannot crash the simulation). Memory is sized to a
  /// power of two so the wrap is a mask.
  uint64_t wordIndex(uint64_t ByteAddr) const {
    uint64_t Index = (ByteAddr >= kHeapBase ? ByteAddr - kHeapBase : ByteAddr)
                     >> 3;
    return Index & WordMask;
  }

  bool evalCond(CondKind Cond, int64_t A, int64_t B) const;
  /// The specialized-image dispatch loop (InterpreterSpec.cpp); stepBatch
  /// tail-calls it when an image is installed. Identical contract.
  size_t stepBatchSpec(DynInst *Buf, size_t N);
  /// Records a trap at instruction index \p PC of method \p Id and puts
  /// the machine into the trapped state.
  /// \returns Status::Trapped for tail-returning from step().
  Status raiseTrap(TrapKind Kind, MethodId Id, uint32_t PC);
  void pushFrame(MethodId Id, uint8_t RetReg);
  /// Pops the top frame; fires onMethodExit. \returns false when the entry
  /// frame was popped (program end).
  bool popFrame(uint64_t RetValue);

  const Program &Prog;
  std::vector<uint64_t> Memory;
  uint64_t WordMask = 0; ///< Memory.size() - 1 (size is a power of two).
  uint64_t AllocCursorWords; ///< Bump pointer for Alloc, in words.
  std::vector<Frame> Frames;
  VmListener *Listener = nullptr;
  const SpecProgram *Spec = nullptr;
  uint64_t InstrCount = 0;
  bool Halted = false;
  TrapInfo Trap;
  uint64_t DynamicHeapWords;
};

} // namespace dynace

#endif // DYNACE_VM_INTERPRETER_H
