//===- vm/Interpreter.cpp -------------------------------------------------==//

#include "vm/Interpreter.h"

#include <bit>
#include <cassert>
#include <cstring>

using namespace dynace;

VmListener::~VmListener() = default;

Interpreter::Interpreter(const Program &Prog, uint64_t DynamicHeapWords)
    : Prog(Prog), DynamicHeapWords(DynamicHeapWords) {
  assert(Prog.isFinalized() && "interpreter requires a finalized program");
  reset();
}

void Interpreter::reset() {
  uint64_t Words = Prog.globalWords() + DynamicHeapWords;
  if (Words == 0)
    Words = 1;
  Words = std::bit_ceil(Words);
  Memory.assign(Words, 0);
  WordMask = Words - 1;
  AllocCursorWords = Prog.globalWords();
  Frames.clear();
  InstrCount = 0;
  Halted = false;
  pushFrame(Prog.entry(), kNoReg);
}

uint64_t Interpreter::readWord(uint64_t ByteAddr) const {
  assert((ByteAddr & 7) == 0 && "unaligned word read");
  return Memory[wordIndex(ByteAddr)];
}

void Interpreter::writeWord(uint64_t ByteAddr, uint64_t Value) {
  assert((ByteAddr & 7) == 0 && "unaligned word write");
  Memory[wordIndex(ByteAddr)] = Value;
}

bool Interpreter::evalCond(CondKind Cond, int64_t A, int64_t B) const {
  switch (Cond) {
  case CondKind::Eq:
    return A == B;
  case CondKind::Ne:
    return A != B;
  case CondKind::Lt:
    return A < B;
  case CondKind::Le:
    return A <= B;
  case CondKind::Gt:
    return A > B;
  case CondKind::Ge:
    return A >= B;
  }
  assert(false && "unknown condition");
  return false;
}

void Interpreter::pushFrame(MethodId Id, uint8_t RetReg) {
  Frame F;
  F.Id = Id;
  F.PC = 0;
  F.RetReg = RetReg;
  F.EntryInstrCount = InstrCount;
  std::memset(F.Regs, 0, sizeof(F.Regs));
  Frames.push_back(F);
  if (Listener)
    Listener->onMethodEnter(Id, InstrCount);
}

bool Interpreter::popFrame(uint64_t RetValue) {
  assert(!Frames.empty() && "pop from empty call stack");
  Frame Top = Frames.back();
  Frames.pop_back();
  if (Listener)
    Listener->onMethodExit(Top.Id, InstrCount - Top.EntryInstrCount,
                           InstrCount);
  if (Frames.empty())
    return false;
  if (Top.RetReg != kNoReg)
    Frames.back().Regs[Top.RetReg] = RetValue;
  return true;
}

Interpreter::Status Interpreter::step(DynInst &Out) {
  if (Halted)
    return Status::Halted;

  Frame &F = Frames.back();
  const Method &M = Prog.method(F.Id);
  assert(F.PC < M.Code.size() && "PC out of range (verifier bug?)");
  const Instruction &In = M.Code[F.PC];
  uint64_t *R = F.Regs;

  Out = DynInst();
  Out.PC = M.pcOf(F.PC);
  Out.Class = opClassOf(In.Op);
  Out.Dst = In.Dst;
  Out.Src1 = In.Src1;
  Out.Src2 = In.Src2;

  ++InstrCount;
  uint32_t NextPC = F.PC + 1;

  auto AsF = [](uint64_t V) { return std::bit_cast<double>(V); };
  auto FromF = [](double V) { return std::bit_cast<uint64_t>(V); };

  switch (In.Op) {
  case Opcode::IConst:
    R[In.Dst] = static_cast<uint64_t>(In.Imm);
    break;
  case Opcode::Mov:
    R[In.Dst] = R[In.Src1];
    break;
  case Opcode::Add:
    R[In.Dst] = R[In.Src1] + R[In.Src2];
    break;
  case Opcode::Sub:
    R[In.Dst] = R[In.Src1] - R[In.Src2];
    break;
  case Opcode::Mul:
    R[In.Dst] = R[In.Src1] * R[In.Src2];
    break;
  case Opcode::Div: {
    int64_t B = static_cast<int64_t>(R[In.Src2]);
    R[In.Dst] = B == 0 ? 0
                       : static_cast<uint64_t>(
                             static_cast<int64_t>(R[In.Src1]) / B);
    break;
  }
  case Opcode::Rem: {
    int64_t B = static_cast<int64_t>(R[In.Src2]);
    R[In.Dst] = B == 0 ? 0
                       : static_cast<uint64_t>(
                             static_cast<int64_t>(R[In.Src1]) % B);
    break;
  }
  case Opcode::And:
    R[In.Dst] = R[In.Src1] & R[In.Src2];
    break;
  case Opcode::Or:
    R[In.Dst] = R[In.Src1] | R[In.Src2];
    break;
  case Opcode::Xor:
    R[In.Dst] = R[In.Src1] ^ R[In.Src2];
    break;
  case Opcode::Shl:
    R[In.Dst] = R[In.Src1] << (R[In.Src2] & 63);
    break;
  case Opcode::Shr:
    R[In.Dst] = R[In.Src1] >> (R[In.Src2] & 63);
    break;
  case Opcode::AddI:
    R[In.Dst] = R[In.Src1] + static_cast<uint64_t>(In.Imm);
    break;
  case Opcode::MulI:
    R[In.Dst] = R[In.Src1] * static_cast<uint64_t>(In.Imm);
    break;
  case Opcode::AndI:
    R[In.Dst] = R[In.Src1] & static_cast<uint64_t>(In.Imm);
    break;
  case Opcode::FAdd:
    R[In.Dst] = FromF(AsF(R[In.Src1]) + AsF(R[In.Src2]));
    break;
  case Opcode::FSub:
    R[In.Dst] = FromF(AsF(R[In.Src1]) - AsF(R[In.Src2]));
    break;
  case Opcode::FMul:
    R[In.Dst] = FromF(AsF(R[In.Src1]) * AsF(R[In.Src2]));
    break;
  case Opcode::FDiv:
    R[In.Dst] = FromF(AsF(R[In.Src1]) / AsF(R[In.Src2]));
    break;
  case Opcode::Load: {
    uint64_t Addr = R[In.Src1] + static_cast<uint64_t>(In.Imm);
    Out.MemAddr = Addr;
    R[In.Dst] = Memory[wordIndex(Addr)];
    break;
  }
  case Opcode::Store: {
    uint64_t Addr = R[In.Src1] + static_cast<uint64_t>(In.Imm);
    Out.MemAddr = Addr;
    Memory[wordIndex(Addr)] = R[In.Src2];
    break;
  }
  case Opcode::LoadIdx: {
    uint64_t Addr =
        R[In.Src1] + R[In.Src2] * 8 + static_cast<uint64_t>(In.Imm);
    Out.MemAddr = Addr;
    R[In.Dst] = Memory[wordIndex(Addr)];
    break;
  }
  case Opcode::StoreIdx: {
    uint64_t Addr = R[In.Src1] + R[In.Dst] * 8 + static_cast<uint64_t>(In.Imm);
    Out.MemAddr = Addr;
    // The Dst field holds the *index* register for StoreIdx; it is a source
    // for timing purposes, not a written register.
    Out.Dst = kNoReg;
    Out.Src2 = In.Dst;
    Memory[wordIndex(Addr)] = R[In.Src2];
    break;
  }
  case Opcode::Br:
  case Opcode::BrI: {
    int64_t A = static_cast<int64_t>(R[In.Src1]);
    int64_t B = In.Op == Opcode::Br ? static_cast<int64_t>(R[In.Src2])
                                    : In.Aux;
    bool Taken = evalCond(In.Cond, A, B);
    Out.IsCondBranch = true;
    Out.Taken = Taken;
    Out.Target = M.pcOf(static_cast<size_t>(In.Imm));
    if (Taken)
      NextPC = static_cast<uint32_t>(In.Imm);
    break;
  }
  case Opcode::Jmp:
    Out.Target = M.pcOf(static_cast<size_t>(In.Imm));
    NextPC = static_cast<uint32_t>(In.Imm);
    break;
  case Opcode::Call: {
    MethodId Callee = static_cast<MethodId>(In.Imm);
    Out.Target = Prog.method(Callee).pcOf(0);
    // Advance the caller past the call before pushing the callee frame.
    F.PC = NextPC;
    unsigned NumArgs = In.Src2 == kNoReg ? 0 : In.Src2;
    uint64_t Args[kNumRegs];
    for (unsigned I = 0; I != NumArgs; ++I)
      Args[I] = R[In.Src1 + I];
    pushFrame(Callee, In.Dst);
    Frame &CalleeFrame = Frames.back();
    for (unsigned I = 0; I != NumArgs; ++I)
      CalleeFrame.Regs[I] = Args[I];
    return Status::Running;
  }
  case Opcode::Ret: {
    uint64_t Value = In.Src1 == kNoReg ? 0 : R[In.Src1];
    if (!popFrame(Value)) {
      Halted = true;
      return Status::Running; // The Ret itself still executed.
    }
    Out.Target = Prog.method(Frames.back().Id).pcOf(Frames.back().PC);
    return Status::Running;
  }
  case Opcode::Alloc: {
    uint64_t Words = R[In.Src1];
    if (Words == 0)
      Words = 1;
    if (AllocCursorWords + Words > Memory.size())
      AllocCursorWords = Prog.globalWords(); // Wrap: arena reuse.
    R[In.Dst] = kHeapBase + AllocCursorWords * 8;
    AllocCursorWords += Words;
    break;
  }
  case Opcode::Halt:
    // Unwind remaining frames so listeners see balanced enter/exit events.
    while (popFrame(0))
      ;
    Halted = true;
    return Status::Running;
  }

  F.PC = NextPC;
  return Status::Running;
}

uint64_t Interpreter::run(uint64_t MaxInstructions) {
  DynInst Scratch;
  uint64_t Executed = 0;
  while (Executed < MaxInstructions && !Halted) {
    step(Scratch);
    ++Executed;
  }
  return Executed;
}
