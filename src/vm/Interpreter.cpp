//===- vm/Interpreter.cpp -------------------------------------------------==//

#include "vm/Interpreter.h"

#include "obs/Trace.h"

#include <bit>
#include <cassert>
#include <cstring>

using namespace dynace;

VmListener::~VmListener() = default;

Interpreter::Interpreter(const Program &Prog, uint64_t DynamicHeapWords)
    : Prog(Prog), DynamicHeapWords(DynamicHeapWords) {
  assert(Prog.isFinalized() && "interpreter requires a finalized program");
  reset();
}

void Interpreter::reset() {
  uint64_t Words = Prog.globalWords() + DynamicHeapWords;
  if (Words == 0)
    Words = 1;
  Words = std::bit_ceil(Words);
  Memory.assign(Words, 0);
  WordMask = Words - 1;
  AllocCursorWords = Prog.globalWords();
  Frames.clear();
  InstrCount = 0;
  Halted = false;
  Trap = TrapInfo();
  pushFrame(Prog.entry(), kNoReg);
}

const char *dynace::trapKindName(TrapKind Kind) {
  switch (Kind) {
  case TrapKind::None:
    return "none";
  case TrapKind::InvalidOpcode:
    return "invalid-opcode";
  case TrapKind::PcOutOfRange:
    return "pc-out-of-range";
  case TrapKind::BadCallTarget:
    return "bad-call-target";
  case TrapKind::DivideByZero:
    return "divide-by-zero";
  case TrapKind::StackOverflow:
    return "stack-overflow";
  }
  return "unknown";
}

Interpreter::Status Interpreter::raiseTrap(TrapKind Kind, MethodId Id,
                                           uint32_t PC) {
  Trap.Kind = Kind;
  Trap.PC = Prog.method(Id).pcOf(PC);
  Trap.Method = Id;
  DYNACE_TRACE_INSTANT("vm", "trap",
                       obs::traceArg("kind", trapKindName(Kind)) + ", " +
                           obs::traceArg("method", uint64_t(Id)) + ", " +
                           obs::traceArg("pc", uint64_t(Trap.PC)));
  return Status::Trapped;
}

uint64_t Interpreter::readWord(uint64_t ByteAddr) const {
  assert((ByteAddr & 7) == 0 && "unaligned word read");
  return Memory[wordIndex(ByteAddr)];
}

void Interpreter::writeWord(uint64_t ByteAddr, uint64_t Value) {
  assert((ByteAddr & 7) == 0 && "unaligned word write");
  Memory[wordIndex(ByteAddr)] = Value;
}

std::vector<uint64_t> Interpreter::topFrameRegs() const {
  if (Frames.empty())
    return {};
  const Frame &F = Frames.back();
  return std::vector<uint64_t>(F.Regs, F.Regs + kNumRegs);
}

bool Interpreter::evalCond(CondKind Cond, int64_t A, int64_t B) const {
  switch (Cond) {
  case CondKind::Eq:
    return A == B;
  case CondKind::Ne:
    return A != B;
  case CondKind::Lt:
    return A < B;
  case CondKind::Le:
    return A <= B;
  case CondKind::Gt:
    return A > B;
  case CondKind::Ge:
    return A >= B;
  }
  assert(false && "unknown condition");
  return false;
}

void Interpreter::pushFrame(MethodId Id, uint8_t RetReg) {
  Frame F;
  F.Id = Id;
  F.PC = 0;
  F.RetReg = RetReg;
  F.EntryInstrCount = InstrCount;
  std::memset(F.Regs, 0, sizeof(F.Regs));
  Frames.push_back(F);
  if (Listener)
    Listener->onMethodEnter(Id, InstrCount);
}

bool Interpreter::popFrame(uint64_t RetValue) {
  assert(!Frames.empty() && "pop from empty call stack");
  Frame Top = Frames.back();
  Frames.pop_back();
  if (Listener)
    Listener->onMethodExit(Top.Id, InstrCount - Top.EntryInstrCount,
                           InstrCount);
  if (Frames.empty())
    return false;
  if (Top.RetReg != kNoReg)
    Frames.back().Regs[Top.RetReg] = RetValue;
  return true;
}

Interpreter::Status Interpreter::step(DynInst &Out) {
  if (Halted)
    return Status::Halted;
  if (trapped())
    return Status::Trapped;

  Frame &F = Frames.back();
  const Method &M = Prog.method(F.Id);
  if (F.PC >= M.Code.size())
    return raiseTrap(TrapKind::PcOutOfRange, F.Id, F.PC);
  const Instruction &In = M.Code[F.PC];
  if (static_cast<unsigned>(In.Op) > static_cast<unsigned>(Opcode::Halt))
    return raiseTrap(TrapKind::InvalidOpcode, F.Id, F.PC);
  uint64_t *R = F.Regs;

  Out = DynInst();
  Out.PC = static_cast<uint32_t>(M.pcOf(F.PC));
  Out.Class = opClassOf(In.Op);
  Out.Dst = In.Dst;
  Out.Src1 = In.Src1;
  Out.Src2 = In.Src2;

  ++InstrCount;
  uint32_t NextPC = F.PC + 1;

  auto AsF = [](uint64_t V) { return std::bit_cast<double>(V); };
  auto FromF = [](double V) { return std::bit_cast<uint64_t>(V); };

  switch (In.Op) {
  case Opcode::IConst:
    R[In.Dst] = static_cast<uint64_t>(In.Imm);
    break;
  case Opcode::Mov:
    R[In.Dst] = R[In.Src1];
    break;
  case Opcode::Add:
    R[In.Dst] = R[In.Src1] + R[In.Src2];
    break;
  case Opcode::Sub:
    R[In.Dst] = R[In.Src1] - R[In.Src2];
    break;
  case Opcode::Mul:
    R[In.Dst] = R[In.Src1] * R[In.Src2];
    break;
  case Opcode::Div: {
    int64_t B = static_cast<int64_t>(R[In.Src2]);
    if (B == 0) {
      --InstrCount; // The trapping instruction does not retire.
      return raiseTrap(TrapKind::DivideByZero, F.Id, F.PC);
    }
    R[In.Dst] = static_cast<uint64_t>(static_cast<int64_t>(R[In.Src1]) / B);
    break;
  }
  case Opcode::Rem: {
    int64_t B = static_cast<int64_t>(R[In.Src2]);
    if (B == 0) {
      --InstrCount;
      return raiseTrap(TrapKind::DivideByZero, F.Id, F.PC);
    }
    R[In.Dst] = static_cast<uint64_t>(static_cast<int64_t>(R[In.Src1]) % B);
    break;
  }
  case Opcode::And:
    R[In.Dst] = R[In.Src1] & R[In.Src2];
    break;
  case Opcode::Or:
    R[In.Dst] = R[In.Src1] | R[In.Src2];
    break;
  case Opcode::Xor:
    R[In.Dst] = R[In.Src1] ^ R[In.Src2];
    break;
  case Opcode::Shl:
    R[In.Dst] = R[In.Src1] << (R[In.Src2] & 63);
    break;
  case Opcode::Shr:
    R[In.Dst] = R[In.Src1] >> (R[In.Src2] & 63);
    break;
  case Opcode::AddI:
    R[In.Dst] = R[In.Src1] + static_cast<uint64_t>(In.Imm);
    break;
  case Opcode::MulI:
    R[In.Dst] = R[In.Src1] * static_cast<uint64_t>(In.Imm);
    break;
  case Opcode::AndI:
    R[In.Dst] = R[In.Src1] & static_cast<uint64_t>(In.Imm);
    break;
  case Opcode::FAdd:
    R[In.Dst] = FromF(AsF(R[In.Src1]) + AsF(R[In.Src2]));
    break;
  case Opcode::FSub:
    R[In.Dst] = FromF(AsF(R[In.Src1]) - AsF(R[In.Src2]));
    break;
  case Opcode::FMul:
    R[In.Dst] = FromF(AsF(R[In.Src1]) * AsF(R[In.Src2]));
    break;
  case Opcode::FDiv:
    R[In.Dst] = FromF(AsF(R[In.Src1]) / AsF(R[In.Src2]));
    break;
  case Opcode::Load: {
    uint64_t Addr = R[In.Src1] + static_cast<uint64_t>(In.Imm);
    Out.MemAddr = Addr;
    R[In.Dst] = Memory[wordIndex(Addr)];
    break;
  }
  case Opcode::Store: {
    uint64_t Addr = R[In.Src1] + static_cast<uint64_t>(In.Imm);
    Out.MemAddr = Addr;
    Memory[wordIndex(Addr)] = R[In.Src2];
    break;
  }
  case Opcode::LoadIdx: {
    uint64_t Addr =
        R[In.Src1] + R[In.Src2] * 8 + static_cast<uint64_t>(In.Imm);
    Out.MemAddr = Addr;
    R[In.Dst] = Memory[wordIndex(Addr)];
    break;
  }
  case Opcode::StoreIdx: {
    uint64_t Addr = R[In.Src1] + R[In.Dst] * 8 + static_cast<uint64_t>(In.Imm);
    Out.MemAddr = Addr;
    // The Dst field holds the *index* register for StoreIdx; it is a source
    // for timing purposes, not a written register.
    Out.Dst = kNoReg;
    Out.Src2 = In.Dst;
    Memory[wordIndex(Addr)] = R[In.Src2];
    break;
  }
  case Opcode::Br:
  case Opcode::BrI: {
    int64_t A = static_cast<int64_t>(R[In.Src1]);
    int64_t B = In.Op == Opcode::Br ? static_cast<int64_t>(R[In.Src2])
                                    : In.Aux;
    bool Taken = evalCond(In.Cond, A, B);
    Out.IsCondBranch = true;
    Out.Taken = Taken;
    Out.Target = static_cast<uint32_t>(M.pcOf(static_cast<size_t>(In.Imm)));
    if (Taken)
      NextPC = static_cast<uint32_t>(In.Imm);
    break;
  }
  case Opcode::Jmp:
    Out.Target = static_cast<uint32_t>(M.pcOf(static_cast<size_t>(In.Imm)));
    NextPC = static_cast<uint32_t>(In.Imm);
    break;
  case Opcode::Call: {
    MethodId Callee = static_cast<MethodId>(In.Imm);
    if (Callee >= Prog.numMethods()) {
      --InstrCount;
      return raiseTrap(TrapKind::BadCallTarget, F.Id, F.PC);
    }
    if (Frames.size() >= kMaxCallDepth) {
      --InstrCount;
      return raiseTrap(TrapKind::StackOverflow, F.Id, F.PC);
    }
    Out.Target = static_cast<uint32_t>(Prog.method(Callee).pcOf(0));
    // Advance the caller past the call before pushing the callee frame.
    F.PC = NextPC;
    unsigned NumArgs = In.Src2 == kNoReg ? 0 : In.Src2;
    uint64_t Args[kNumRegs];
    for (unsigned I = 0; I != NumArgs; ++I)
      Args[I] = R[In.Src1 + I];
    pushFrame(Callee, In.Dst);
    Frame &CalleeFrame = Frames.back();
    for (unsigned I = 0; I != NumArgs; ++I)
      CalleeFrame.Regs[I] = Args[I];
    return Status::Running;
  }
  case Opcode::Ret: {
    uint64_t Value = In.Src1 == kNoReg ? 0 : R[In.Src1];
    if (!popFrame(Value)) {
      Halted = true;
      return Status::Running; // The Ret itself still executed.
    }
    Out.Target = static_cast<uint32_t>(
        Prog.method(Frames.back().Id).pcOf(Frames.back().PC));
    return Status::Running;
  }
  case Opcode::Alloc: {
    uint64_t Words = R[In.Src1];
    if (Words == 0)
      Words = 1;
    if (AllocCursorWords + Words > Memory.size())
      AllocCursorWords = Prog.globalWords(); // Wrap: arena reuse.
    R[In.Dst] = kHeapBase + AllocCursorWords * 8;
    AllocCursorWords += Words;
    break;
  }
  case Opcode::Halt:
    // Unwind remaining frames so listeners see balanced enter/exit events.
    while (popFrame(0))
      ;
    Halted = true;
    return Status::Running;
  }

  F.PC = NextPC;
  return Status::Running;
}

size_t Interpreter::stepBatch(DynInst *Buf, size_t N) {
  if (Halted || trapped())
    return 0;
  if (Spec)
    return stepBatchSpec(Buf, N);

  // Hot state hoisted out of the dispatch loop. The frame/method pointers
  // are refreshed after any operation that changes the top frame (Call/Ret
  // can reallocate the Frames vector).
  Frame *F = nullptr;
  const Instruction *Code = nullptr;
  uint32_t CodeSize = 0;
  uint64_t CodeBase = 0;
  uint64_t *R = nullptr;
  uint32_t PC = 0;
  uint64_t Count = InstrCount;
  auto Refresh = [&] {
    F = &Frames.back();
    const Method &M = Prog.method(F->Id);
    Code = M.Code.data();
    CodeSize = static_cast<uint32_t>(M.Code.size());
    CodeBase = M.CodeBase;
    R = F->Regs;
    PC = F->PC;
  };
  Refresh();

  uint64_t *const Mem = Memory.data();
  const uint64_t Mask = WordMask;
  // Same mapping as wordIndex(), on hoisted locals.
  auto WordAt = [Mem, Mask](uint64_t ByteAddr) -> uint64_t & {
    uint64_t Index =
        (ByteAddr >= kHeapBase ? ByteAddr - kHeapBase : ByteAddr) >> 3;
    return Mem[Index & Mask];
  };
  auto AsF = [](uint64_t V) { return std::bit_cast<double>(V); };
  auto FromF = [](double V) { return std::bit_cast<uint64_t>(V); };

  // Opcodes that end a batch when a listener is installed: the caller
  // drains the batch, then step()s the boundary instruction so method
  // enter/exit and halt events fire at exact instruction counts.
  const uint64_t BoundaryMask =
      Listener ? (1ull << static_cast<unsigned>(Opcode::Call)) |
                     (1ull << static_cast<unsigned>(Opcode::Ret)) |
                     (1ull << static_cast<unsigned>(Opcode::Halt))
               : 0;
  size_t Filled = 0;
  const Instruction *In;
  DynInst *Out;
  uint32_t NextPC;
  TrapKind TrapK = TrapKind::None;

  // Threaded dispatch (GNU labels-as-values; GCC and Clang are the
  // supported toolchains): every opcode body ends by jumping straight to
  // the next opcode's body, so the host's indirect-branch predictor gets
  // one prediction site per opcode instead of a single shared dispatch
  // branch that mispredicts on nearly every bytecode transition.
  // Entries must match the Opcode enumerator order exactly.
  static const void *const Tbl[] = {
      &&Op_IConst, &&Op_Mov,      &&Op_Add,  &&Op_Sub,  &&Op_Mul,
      &&Op_Div,    &&Op_Rem,      &&Op_And,  &&Op_Or,   &&Op_Xor,
      &&Op_Shl,    &&Op_Shr,      &&Op_AddI, &&Op_MulI, &&Op_AndI,
      &&Op_FAdd,   &&Op_FSub,     &&Op_FMul, &&Op_FDiv, &&Op_Load,
      &&Op_Store,  &&Op_LoadIdx,  &&Op_StoreIdx,        &&Op_Br,
      &&Op_BrI,    &&Op_Jmp,      &&Op_Call, &&Op_Ret,  &&Op_Alloc,
      &&Op_Halt};
  static_assert(sizeof(Tbl) / sizeof(Tbl[0]) ==
                    static_cast<size_t>(Opcode::Halt) + 1,
                "dispatch table out of sync with Opcode");

  // Per-instruction prologue + dispatch. PC advance happens here so Call/
  // Ret/Jmp simply set NextPC.
#define DYNACE_NEXT()                                                        \
  do {                                                                       \
    PC = NextPC;                                                             \
    if (Filled == N)                                                         \
      goto BatchDone;                                                        \
    if (PC >= CodeSize) {                                                    \
      TrapK = TrapKind::PcOutOfRange;                                        \
      goto BatchTrap;                                                        \
    }                                                                        \
    In = &Code[PC];                                                          \
    if (static_cast<unsigned>(In->Op) > static_cast<unsigned>(Opcode::Halt)) {\
      TrapK = TrapKind::InvalidOpcode;                                       \
      goto BatchTrap;                                                        \
    }                                                                        \
    if ((BoundaryMask >> static_cast<unsigned>(In->Op)) & 1)                 \
      goto BatchDone;                                                        \
    Out = &Buf[Filled++];                                                    \
    Out->PC = static_cast<uint32_t>(CodeBase + uint64_t(PC) * kInstrBytes); \
    Out->Class = opClassOf(In->Op);                                          \
    Out->Dst = In->Dst;                                                      \
    Out->Src1 = In->Src1;                                                    \
    Out->Src2 = In->Src2;                                                    \
    Out->IsCondBranch = false;                                               \
    ++Count;                                                                 \
    NextPC = PC + 1;                                                         \
    goto *Tbl[static_cast<unsigned>(In->Op)];                                \
  } while (0)

  NextPC = PC;
  DYNACE_NEXT();

Op_IConst:
  R[In->Dst] = static_cast<uint64_t>(In->Imm);
  DYNACE_NEXT();
Op_Mov:
  R[In->Dst] = R[In->Src1];
  DYNACE_NEXT();
Op_Add:
  R[In->Dst] = R[In->Src1] + R[In->Src2];
  DYNACE_NEXT();
Op_Sub:
  R[In->Dst] = R[In->Src1] - R[In->Src2];
  DYNACE_NEXT();
Op_Mul:
  R[In->Dst] = R[In->Src1] * R[In->Src2];
  DYNACE_NEXT();
Op_Div: {
  int64_t B = static_cast<int64_t>(R[In->Src2]);
  if (B == 0) {
    TrapK = TrapKind::DivideByZero;
    --Filled; // The trapping instruction does not retire.
    --Count;
    goto BatchTrap;
  }
  R[In->Dst] = static_cast<uint64_t>(static_cast<int64_t>(R[In->Src1]) / B);
  DYNACE_NEXT();
}
Op_Rem: {
  int64_t B = static_cast<int64_t>(R[In->Src2]);
  if (B == 0) {
    TrapK = TrapKind::DivideByZero;
    --Filled;
    --Count;
    goto BatchTrap;
  }
  R[In->Dst] = static_cast<uint64_t>(static_cast<int64_t>(R[In->Src1]) % B);
  DYNACE_NEXT();
}
Op_And:
  R[In->Dst] = R[In->Src1] & R[In->Src2];
  DYNACE_NEXT();
Op_Or:
  R[In->Dst] = R[In->Src1] | R[In->Src2];
  DYNACE_NEXT();
Op_Xor:
  R[In->Dst] = R[In->Src1] ^ R[In->Src2];
  DYNACE_NEXT();
Op_Shl:
  R[In->Dst] = R[In->Src1] << (R[In->Src2] & 63);
  DYNACE_NEXT();
Op_Shr:
  R[In->Dst] = R[In->Src1] >> (R[In->Src2] & 63);
  DYNACE_NEXT();
Op_AddI:
  R[In->Dst] = R[In->Src1] + static_cast<uint64_t>(In->Imm);
  DYNACE_NEXT();
Op_MulI:
  R[In->Dst] = R[In->Src1] * static_cast<uint64_t>(In->Imm);
  DYNACE_NEXT();
Op_AndI:
  R[In->Dst] = R[In->Src1] & static_cast<uint64_t>(In->Imm);
  DYNACE_NEXT();
Op_FAdd:
  R[In->Dst] = FromF(AsF(R[In->Src1]) + AsF(R[In->Src2]));
  DYNACE_NEXT();
Op_FSub:
  R[In->Dst] = FromF(AsF(R[In->Src1]) - AsF(R[In->Src2]));
  DYNACE_NEXT();
Op_FMul:
  R[In->Dst] = FromF(AsF(R[In->Src1]) * AsF(R[In->Src2]));
  DYNACE_NEXT();
Op_FDiv:
  R[In->Dst] = FromF(AsF(R[In->Src1]) / AsF(R[In->Src2]));
  DYNACE_NEXT();
Op_Load: {
  uint64_t Addr = R[In->Src1] + static_cast<uint64_t>(In->Imm);
  Out->MemAddr = Addr;
  R[In->Dst] = WordAt(Addr);
  DYNACE_NEXT();
}
Op_Store: {
  uint64_t Addr = R[In->Src1] + static_cast<uint64_t>(In->Imm);
  Out->MemAddr = Addr;
  WordAt(Addr) = R[In->Src2];
  DYNACE_NEXT();
}
Op_LoadIdx: {
  uint64_t Addr =
      R[In->Src1] + R[In->Src2] * 8 + static_cast<uint64_t>(In->Imm);
  Out->MemAddr = Addr;
  R[In->Dst] = WordAt(Addr);
  DYNACE_NEXT();
}
Op_StoreIdx: {
  uint64_t Addr =
      R[In->Src1] + R[In->Dst] * 8 + static_cast<uint64_t>(In->Imm);
  Out->MemAddr = Addr;
  // Dst holds the index register: a source for timing, not a write.
  Out->Dst = kNoReg;
  Out->Src2 = In->Dst;
  WordAt(Addr) = R[In->Src2];
  DYNACE_NEXT();
}
Op_Br:
Op_BrI: {
  int64_t A = static_cast<int64_t>(R[In->Src1]);
  int64_t B =
      In->Op == Opcode::Br ? static_cast<int64_t>(R[In->Src2]) : In->Aux;
  bool Taken = evalCond(In->Cond, A, B);
  Out->IsCondBranch = true;
  Out->Taken = Taken;
  if (Taken)
    NextPC = static_cast<uint32_t>(In->Imm);
  DYNACE_NEXT();
}
Op_Jmp:
  NextPC = static_cast<uint32_t>(In->Imm);
  DYNACE_NEXT();
Op_Call: {
  // Only reached without a listener; no method-entry event fires.
  MethodId Callee = static_cast<MethodId>(In->Imm);
  if (Callee >= Prog.numMethods() || Frames.size() >= kMaxCallDepth) {
    TrapK = Callee >= Prog.numMethods() ? TrapKind::BadCallTarget
                                        : TrapKind::StackOverflow;
    --Filled;
    --Count;
    goto BatchTrap;
  }
  F->PC = NextPC;
  InstrCount = Count; // pushFrame snapshots the entry count.
  unsigned NumArgs = In->Src2 == kNoReg ? 0 : In->Src2;
  uint64_t Args[kNumRegs];
  for (unsigned I = 0; I != NumArgs; ++I)
    Args[I] = R[In->Src1 + I];
  pushFrame(Callee, In->Dst);
  Frame &CalleeFrame = Frames.back();
  for (unsigned I = 0; I != NumArgs; ++I)
    CalleeFrame.Regs[I] = Args[I];
  Refresh();
  NextPC = PC; // Refresh() loaded the callee's PC; keep it.
  DYNACE_NEXT();
}
Op_Ret: {
  uint64_t Value = In->Src1 == kNoReg ? 0 : R[In->Src1];
  InstrCount = Count;
  if (!popFrame(Value)) {
    Halted = true;
    return Filled; // The Ret itself still executed.
  }
  Refresh();
  NextPC = PC; // Refresh() loaded the caller's resume PC; keep it.
  DYNACE_NEXT();
}
Op_Alloc: {
  uint64_t Words = R[In->Src1];
  if (Words == 0)
    Words = 1;
  if (AllocCursorWords + Words > Memory.size())
    AllocCursorWords = Prog.globalWords(); // Wrap: arena reuse.
  R[In->Dst] = kHeapBase + AllocCursorWords * 8;
  AllocCursorWords += Words;
  DYNACE_NEXT();
}
Op_Halt:
  InstrCount = Count;
  while (popFrame(0))
    ;
  Halted = true;
  return Filled;

#undef DYNACE_NEXT

BatchTrap:
  F->PC = PC;
  InstrCount = Count;
  raiseTrap(TrapK, F->Id, PC);
  return Filled;

BatchDone:
  F->PC = PC;
  InstrCount = Count;
  return Filled;
}

uint64_t Interpreter::run(uint64_t MaxInstructions) {
  DynInst Scratch;
  uint64_t Executed = 0;
  while (Executed < MaxInstructions && !Halted) {
    if (step(Scratch) == Status::Trapped)
      break; // The trapping instruction did not execute.
    ++Executed;
  }
  return Executed;
}
