//===- vm/InterpreterSpec.cpp - Specialized dispatch kernels --------------===//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The specialized stepBatch kernel (DESIGN.md §15): threaded dispatch
/// over a Specializer-built image of pre-decoded 32-byte SpecInst entries
/// instead of raw bytecode. Relative to the generic kernel it removes the
/// per-instruction PC bounds check (off-end sentinel), the opcode
/// validity check (validated at build), and the boundary-mask test
/// (Call/Ret/Halt have their own handler), collapses the seven DynInst
/// field stores into two 8-byte event-template stores, and — through the
/// fused pair/triple handlers — amortizes the indirect dispatch branch
/// over up to three retired instructions.
///
/// Every handler preserves the generic batch contract exactly: one
/// DynInst per retired instruction with identical contract fields,
/// identical architectural state transitions, identical trap points and
/// identical batch-boundary behavior (the differential test in vm_test
/// checks all four across every workload profile). When a fused group
/// does not fit in the batch's remaining capacity, the head instruction
/// falls back to its single-op handler — the batch fills to exactly N,
/// like the generic kernel, and the next batch re-enters at the
/// interior entry the image keeps for every instruction.
///
//===----------------------------------------------------------------------===//

#include "isa/Opcode.h"
#include "vm/DynInst.h"
#include "vm/Interpreter.h"
#include "vm/Specializer.h"

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstring>

using namespace dynace;

namespace {

// The 8-byte event-template store below writes DynInst bytes [16, 24)
// (Class through the tail padding); these asserts pin the layout it
// assumes.
static_assert(sizeof(DynInst) == 24, "event-template store assumes 24B");
static_assert(offsetof(DynInst, Class) == 16, "Evt store offset");
static_assert(offsetof(DynInst, Dst) == 17, "Evt byte 1");
static_assert(offsetof(DynInst, Src1) == 18, "Evt byte 2");
static_assert(offsetof(DynInst, Src2) == 19, "Evt byte 3");
static_assert(offsetof(DynInst, IsCondBranch) == 20, "Evt byte 4");
static_assert(offsetof(DynInst, Taken) == 21, "Evt byte 5");

/// Stores the event template (compilers lower the memcpy to one 8-byte
/// store).
inline void putEvt(DynInst *O, uint64_t Evt) {
  std::memcpy(reinterpret_cast<unsigned char *>(O) + 16, &Evt, 8);
}

} // namespace

size_t Interpreter::stepBatchSpec(DynInst *Buf, size_t N) {
  if (N == 0)
    return 0;
  assert(Spec && Spec->Methods.size() == Prog.numMethods() &&
         "image does not match the program");

  Frame *F = nullptr;
  const SpecInst *MBase = nullptr;
  const SpecInst *SI = nullptr;
  uint64_t *R = nullptr;
  // The retired count is not carried in a register: every retired
  // instruction emits exactly one DynInst, so it is always
  // CountBase + (Out - Buf) — one fewer loop-carried value in a kernel
  // that is starved for registers.
  const uint64_t CountBase = InstrCount;
  auto RefreshSpec = [&] {
    F = &Frames.back();
    const SpecMethodImage &MI = Spec->Methods[F->Id];
    MBase = MI.Insts.data();
    // Image index Code.size() is the off-end sentinel; clamping an (only
    // defensively possible) larger PC there raises the same trap kind.
    const uint32_t Sentinel = static_cast<uint32_t>(MI.Insts.size() - 1);
    SI = MBase + (F->PC < Sentinel ? F->PC : Sentinel);
    R = F->Regs;
  };
  RefreshSpec();

  uint64_t *const Mem = Memory.data();
  const uint64_t Mask = WordMask;
  auto WordAt = [Mem, Mask](uint64_t ByteAddr) -> uint64_t & {
    uint64_t Index =
        (ByteAddr >= kHeapBase ? ByteAddr - kHeapBase : ByteAddr) >> 3;
    return Mem[Index & Mask];
  };
  // Proof-gated variant (Unguarded images): the dataflow analysis proved
  // the address inside [kHeapBase, kHeapBase + 8*globalWords), where the
  // rebias select always takes the subtract arm and the resulting index
  // is < globalWords <= Memory.size(), so the wrap mask is the identity.
  auto WordAtU = [Mem](uint64_t ByteAddr) -> uint64_t & {
    return Mem[(ByteAddr - kHeapBase) >> 3];
  };
  auto AsF = [](uint64_t V) { return std::bit_cast<double>(V); };
  auto FromF = [](double V) { return std::bit_cast<uint64_t>(V); };
  const uint64_t EvtBrTaken = specEvtBranch(true);
  const uint64_t EvtBrNot = specEvtBranch(false);

  DynInst *Out = Buf;
  DynInst *const OutEnd = Buf + N;
  TrapKind TrapK = TrapKind::None;

  // Handler table in exact SpecHandler order — generated from the same
  // X-macros as the enum, so the two cannot drift.
  static const void *const Tbl[] = {
#define DYNACE_X(Op) &&L_##Op,
      DYNACE_SPEC_SINGLE(DYNACE_X)
#undef DYNACE_X
      &&L_Call,
      &&L_Ret,
      &&L_Halt,
      &&L_TrapInvalid,
      &&L_TrapOffEnd,
#define DYNACE_X(C) &&L_Br_##C, &&L_BrI_##C,
      DYNACE_SPEC_COND(DYNACE_X)
#undef DYNACE_X
#define DYNACE_X(A, B) &&L_F2_##A##_##B,
      DYNACE_SPEC_F2(DYNACE_X)
#undef DYNACE_X
#define DYNACE_X(A) &&L_F2B_##A,
      DYNACE_SPEC_F2B(DYNACE_X)
#undef DYNACE_X
#define DYNACE_X(A, B, C) &&L_F3_##A##_##B##_##C,
      DYNACE_SPEC_F3(DYNACE_X)
#undef DYNACE_X
#define DYNACE_X(A, B) &&L_F3B_##A##_##B,
      DYNACE_SPEC_F3B(DYNACE_X)
#undef DYNACE_X
#define DYNACE_X(Op) &&L_##Op##U,
      DYNACE_SPEC_MEMU(DYNACE_X)
#undef DYNACE_X
      &&L_DivNZ,
      &&L_RemNZ,
#define DYNACE_X(A, B) &&L_F2U_##A##_##B,
      DYNACE_SPEC_F2U(DYNACE_X)
#undef DYNACE_X
#define DYNACE_X(A) &&L_F2BU_##A,
      DYNACE_SPEC_F2BU(DYNACE_X)
#undef DYNACE_X
#define DYNACE_X(A, B, C) &&L_F3U_##A##_##B##_##C,
      DYNACE_SPEC_F3U(DYNACE_X)
#undef DYNACE_X
#define DYNACE_X(A, B) &&L_F3BU_##A##_##B,
      DYNACE_SPEC_F3BU(DYNACE_X)
#undef DYNACE_X
  };
  static_assert(sizeof(Tbl) / sizeof(Tbl[0]) == HS_Count,
                "dispatch table out of sync with SpecHandler");

// Emits the pre-decoded event for (S) into (O); EvtA carries
// IsCondBranch = Taken = false for non-branches.
#define SPEC_EMIT(S, O)                                                      \
  do {                                                                       \
    (O)->PC = (S)->PC;                                                       \
    putEvt((O), (S)->EvtA);                                                  \
  } while (0)

// One execute+emit step per fusible opcode, usable from both the single
// and the fused handler bodies. (S): const SpecInst*, (O): DynInst*.
#define SPEC_STEP_IConst(S, O)                                               \
  do {                                                                       \
    R[(S)->Dst] = static_cast<uint64_t>((S)->Imm);                           \
    SPEC_EMIT(S, O);                                                         \
  } while (0)
#define SPEC_STEP_Mov(S, O)                                                  \
  do {                                                                       \
    R[(S)->Dst] = R[(S)->Src1];                                              \
    SPEC_EMIT(S, O);                                                         \
  } while (0)
#define SPEC_STEP_Add(S, O)                                                  \
  do {                                                                       \
    R[(S)->Dst] = R[(S)->Src1] + R[(S)->Src2];                               \
    SPEC_EMIT(S, O);                                                         \
  } while (0)
#define SPEC_STEP_Sub(S, O)                                                  \
  do {                                                                       \
    R[(S)->Dst] = R[(S)->Src1] - R[(S)->Src2];                               \
    SPEC_EMIT(S, O);                                                         \
  } while (0)
#define SPEC_STEP_Mul(S, O)                                                  \
  do {                                                                       \
    R[(S)->Dst] = R[(S)->Src1] * R[(S)->Src2];                               \
    SPEC_EMIT(S, O);                                                         \
  } while (0)
#define SPEC_STEP_And(S, O)                                                  \
  do {                                                                       \
    R[(S)->Dst] = R[(S)->Src1] & R[(S)->Src2];                               \
    SPEC_EMIT(S, O);                                                         \
  } while (0)
#define SPEC_STEP_Or(S, O)                                                   \
  do {                                                                       \
    R[(S)->Dst] = R[(S)->Src1] | R[(S)->Src2];                               \
    SPEC_EMIT(S, O);                                                         \
  } while (0)
#define SPEC_STEP_Xor(S, O)                                                  \
  do {                                                                       \
    R[(S)->Dst] = R[(S)->Src1] ^ R[(S)->Src2];                               \
    SPEC_EMIT(S, O);                                                         \
  } while (0)
#define SPEC_STEP_Shl(S, O)                                                  \
  do {                                                                       \
    R[(S)->Dst] = R[(S)->Src1] << (R[(S)->Src2] & 63);                       \
    SPEC_EMIT(S, O);                                                         \
  } while (0)
#define SPEC_STEP_Shr(S, O)                                                  \
  do {                                                                       \
    R[(S)->Dst] = R[(S)->Src1] >> (R[(S)->Src2] & 63);                       \
    SPEC_EMIT(S, O);                                                         \
  } while (0)
#define SPEC_STEP_AddI(S, O)                                                 \
  do {                                                                       \
    R[(S)->Dst] = R[(S)->Src1] + static_cast<uint64_t>((S)->Imm);            \
    SPEC_EMIT(S, O);                                                         \
  } while (0)
#define SPEC_STEP_MulI(S, O)                                                 \
  do {                                                                       \
    R[(S)->Dst] = R[(S)->Src1] * static_cast<uint64_t>((S)->Imm);            \
    SPEC_EMIT(S, O);                                                         \
  } while (0)
#define SPEC_STEP_AndI(S, O)                                                 \
  do {                                                                       \
    R[(S)->Dst] = R[(S)->Src1] & static_cast<uint64_t>((S)->Imm);            \
    SPEC_EMIT(S, O);                                                         \
  } while (0)
#define SPEC_STEP_FAdd(S, O)                                                 \
  do {                                                                       \
    R[(S)->Dst] = FromF(AsF(R[(S)->Src1]) + AsF(R[(S)->Src2]));              \
    SPEC_EMIT(S, O);                                                         \
  } while (0)
#define SPEC_STEP_FSub(S, O)                                                 \
  do {                                                                       \
    R[(S)->Dst] = FromF(AsF(R[(S)->Src1]) - AsF(R[(S)->Src2]));              \
    SPEC_EMIT(S, O);                                                         \
  } while (0)
#define SPEC_STEP_FMul(S, O)                                                 \
  do {                                                                       \
    R[(S)->Dst] = FromF(AsF(R[(S)->Src1]) * AsF(R[(S)->Src2]));              \
    SPEC_EMIT(S, O);                                                         \
  } while (0)
#define SPEC_STEP_FDiv(S, O)                                                 \
  do {                                                                       \
    R[(S)->Dst] = FromF(AsF(R[(S)->Src1]) / AsF(R[(S)->Src2]));              \
    SPEC_EMIT(S, O);                                                         \
  } while (0)
#define SPEC_STEP_Load(S, O)                                                 \
  do {                                                                       \
    const uint64_t A_ = R[(S)->Src1] + static_cast<uint64_t>((S)->Imm);      \
    (O)->MemAddr = A_;                                                       \
    R[(S)->Dst] = WordAt(A_);                                                \
    SPEC_EMIT(S, O);                                                         \
  } while (0)
#define SPEC_STEP_Store(S, O)                                                \
  do {                                                                       \
    const uint64_t A_ = R[(S)->Src1] + static_cast<uint64_t>((S)->Imm);      \
    (O)->MemAddr = A_;                                                       \
    WordAt(A_) = R[(S)->Src2];                                               \
    SPEC_EMIT(S, O);                                                         \
  } while (0)
#define SPEC_STEP_LoadIdx(S, O)                                              \
  do {                                                                       \
    const uint64_t A_ =                                                      \
        R[(S)->Src1] + R[(S)->Src2] * 8 + static_cast<uint64_t>((S)->Imm);   \
    (O)->MemAddr = A_;                                                       \
    R[(S)->Dst] = WordAt(A_);                                                \
    SPEC_EMIT(S, O);                                                         \
  } while (0)
#define SPEC_STEP_StoreIdx(S, O)                                             \
  do {                                                                       \
    const uint64_t A_ =                                                      \
        R[(S)->Src1] + R[(S)->Dst] * 8 + static_cast<uint64_t>((S)->Imm);    \
    (O)->MemAddr = A_;                                                       \
    WordAt(A_) = R[(S)->Src2];                                               \
    SPEC_EMIT(S, O);                                                         \
  } while (0)
#define SPEC_STEP_Alloc(S, O)                                                \
  do {                                                                       \
    uint64_t Words_ = R[(S)->Src1];                                          \
    if (Words_ == 0)                                                         \
      Words_ = 1;                                                            \
    if (AllocCursorWords + Words_ > Memory.size())                           \
      AllocCursorWords = Prog.globalWords(); /* Wrap: arena reuse. */        \
    R[(S)->Dst] = kHeapBase + AllocCursorWords * 8;                          \
    AllocCursorWords += Words_;                                              \
    SPEC_EMIT(S, O);                                                         \
  } while (0)

// Unguarded twins of the memory steps (Unguarded images only; installed
// solely where the image carries a DF_MemInBounds proof). Identical
// contract — same MemAddr event, same cell — minus the rebias select and
// wrap mask.
#define SPEC_STEP_LoadU(S, O)                                                \
  do {                                                                       \
    const uint64_t A_ = R[(S)->Src1] + static_cast<uint64_t>((S)->Imm);      \
    (O)->MemAddr = A_;                                                       \
    R[(S)->Dst] = WordAtU(A_);                                               \
    SPEC_EMIT(S, O);                                                         \
  } while (0)
#define SPEC_STEP_StoreU(S, O)                                               \
  do {                                                                       \
    const uint64_t A_ = R[(S)->Src1] + static_cast<uint64_t>((S)->Imm);      \
    (O)->MemAddr = A_;                                                       \
    WordAtU(A_) = R[(S)->Src2];                                              \
    SPEC_EMIT(S, O);                                                         \
  } while (0)
#define SPEC_STEP_LoadIdxU(S, O)                                             \
  do {                                                                       \
    const uint64_t A_ =                                                      \
        R[(S)->Src1] + R[(S)->Src2] * 8 + static_cast<uint64_t>((S)->Imm);   \
    (O)->MemAddr = A_;                                                       \
    R[(S)->Dst] = WordAtU(A_);                                               \
    SPEC_EMIT(S, O);                                                         \
  } while (0)
#define SPEC_STEP_StoreIdxU(S, O)                                            \
  do {                                                                       \
    const uint64_t A_ =                                                      \
        R[(S)->Src1] + R[(S)->Dst] * 8 + static_cast<uint64_t>((S)->Imm);    \
    (O)->MemAddr = A_;                                                       \
    WordAtU(A_) = R[(S)->Src2];                                              \
    SPEC_EMIT(S, O);                                                         \
  } while (0)
// Non-memory members of unguarded fused groups run their normal steps;
// these aliases let the U fused bodies paste SPEC_STEP_<Op>U uniformly.
#define SPEC_STEP_AddU(S, O) SPEC_STEP_Add(S, O)
#define SPEC_STEP_AddIU(S, O) SPEC_STEP_AddI(S, O)
#define SPEC_STEP_AndU(S, O) SPEC_STEP_And(S, O)
#define SPEC_STEP_AndIU(S, O) SPEC_STEP_AndI(S, O)
#define SPEC_STEP_XorU(S, O) SPEC_STEP_Xor(S, O)

// Capacity check + dispatch on the next image entry.
#define SPEC_DISPATCH()                                                      \
  do {                                                                       \
    if (Out == OutEnd)                                                       \
      goto SpecDone;                                                         \
    goto *Tbl[SI->Handler];                                                  \
  } while (0)

// Branch tail shared by every conditional-branch handler: emit the event
// with the Taken outcome, then continue at the taken target or fall
// through.
#define SPEC_BR_TAIL(T)                                                      \
  Out->PC = SI->PC;                                                          \
  putEvt(Out, SI->EvtA | ((T) ? EvtBrTaken : EvtBrNot));                        \
  ++Out;                                                                     \
  SI = (T) ? MBase + SI->Alt : SI + 1;                                       \
  SPEC_DISPATCH()

  // Opcode-valid, PC-in-image and capacity >= 1 all hold here (see the
  // prologue and SPEC_DISPATCH); go straight to the first handler.
  goto *Tbl[SI->Handler];

// Plain single-op handlers (execute + emit + advance). The fusible subset
// of DYNACE_SPEC_SINGLE; Div/Rem/branches/Jmp need bespoke bodies below.
#define DYNACE_SPEC_PLAIN(X)                                                 \
  X(IConst) X(Mov) X(Add) X(Sub) X(Mul) X(And) X(Or) X(Xor) X(Shl) X(Shr)   \
  X(AddI) X(MulI) X(AndI) X(FAdd) X(FSub) X(FMul) X(FDiv) X(Load) X(Store)  \
  X(LoadIdx) X(StoreIdx) X(Alloc)

#define DYNACE_X(Op)                                                         \
  L_##Op : {                                                                 \
    SPEC_STEP_##Op(SI, Out);                                                 \
    ++Out;                                                                   \
    ++SI;                                                                    \
    SPEC_DISPATCH();                                                         \
  }
  DYNACE_SPEC_PLAIN(DYNACE_X)
#undef DYNACE_X

L_Div : {
  const int64_t B = static_cast<int64_t>(R[SI->Src2]);
  if (B == 0) {
    TrapK = TrapKind::DivideByZero;
    goto SpecTrap;
  }
  R[SI->Dst] = static_cast<uint64_t>(static_cast<int64_t>(R[SI->Src1]) / B);
  SPEC_EMIT(SI, Out);
  ++Out;
  ++SI;
  SPEC_DISPATCH();
}
L_Rem : {
  const int64_t B = static_cast<int64_t>(R[SI->Src2]);
  if (B == 0) {
    TrapK = TrapKind::DivideByZero;
    goto SpecTrap;
  }
  R[SI->Dst] = static_cast<uint64_t>(static_cast<int64_t>(R[SI->Src1]) % B);
  SPEC_EMIT(SI, Out);
  ++Out;
  ++SI;
  SPEC_DISPATCH();
}

// Runtime-condition branches (Generic..Fused3 images).
L_Br : {
  const bool T = evalCond(static_cast<CondKind>(SI->Cond),
                          static_cast<int64_t>(R[SI->Src1]),
                          static_cast<int64_t>(R[SI->Src2]));
  SPEC_BR_TAIL(T);
}
L_BrI : {
  const bool T = evalCond(static_cast<CondKind>(SI->Cond),
                          static_cast<int64_t>(R[SI->Src1]), SI->Imm);
  SPEC_BR_TAIL(T);
}

// Condition-baked branches (BranchSpec images): the CondKind switch is
// resolved at image build.
#define SPEC_CMP_Eq(A, B) ((A) == (B))
#define SPEC_CMP_Ne(A, B) ((A) != (B))
#define SPEC_CMP_Lt(A, B) ((A) < (B))
#define SPEC_CMP_Le(A, B) ((A) <= (B))
#define SPEC_CMP_Gt(A, B) ((A) > (B))
#define SPEC_CMP_Ge(A, B) ((A) >= (B))
#define DYNACE_X(C)                                                          \
  L_Br_##C : {                                                               \
    const bool T = SPEC_CMP_##C(static_cast<int64_t>(R[SI->Src1]),           \
                                static_cast<int64_t>(R[SI->Src2]));          \
    SPEC_BR_TAIL(T);                                                         \
  }                                                                          \
  L_BrI_##C : {                                                              \
    const bool T =                                                           \
        SPEC_CMP_##C(static_cast<int64_t>(R[SI->Src1]), SI->Imm);            \
    SPEC_BR_TAIL(T);                                                         \
  }
  DYNACE_SPEC_COND(DYNACE_X)
#undef DYNACE_X

L_Jmp : {
  SPEC_EMIT(SI, Out);
  ++Out;
  SI = MBase + SI->Alt;
  SPEC_DISPATCH();
}

// Boundary handlers. With a listener the batch stops BEFORE the boundary
// (the caller drains it, then step()s the instruction so method hooks
// fire at exact instruction counts); without one the boundary executes
// inline, mirroring the generic kernel's no-listener Op_Call/Op_Ret/
// Op_Halt bodies state transition for state transition.
L_Call : {
  if (Listener) {
    F->PC = static_cast<uint32_t>(SI - MBase);
    InstrCount = CountBase + static_cast<uint64_t>(Out - Buf);
    return static_cast<size_t>(Out - Buf);
  }
  const MethodId Callee = static_cast<MethodId>(SI->Imm);
  if (Callee >= Prog.numMethods() || Frames.size() >= kMaxCallDepth) {
    TrapK = Callee >= Prog.numMethods() ? TrapKind::BadCallTarget
                                        : TrapKind::StackOverflow;
    goto SpecTrap; // No event: the trapping Call did not retire.
  }
  SPEC_EMIT(SI, Out);
  ++Out;
  F->PC = static_cast<uint32_t>(SI - MBase) + 1; // Resume after the Call.
  InstrCount = CountBase + static_cast<uint64_t>(Out - Buf); // pushFrame snapshots the entry count.
  const unsigned NumArgs = SI->Src2 == kNoReg ? 0 : SI->Src2;
  uint64_t Args[kNumRegs];
  for (unsigned I = 0; I != NumArgs; ++I)
    Args[I] = R[SI->Src1 + I];
  pushFrame(Callee, SI->Dst);
  Frame &CalleeFrame = Frames.back();
  for (unsigned I = 0; I != NumArgs; ++I)
    CalleeFrame.Regs[I] = Args[I];
  RefreshSpec();
  SPEC_DISPATCH();
}
L_Ret : {
  if (Listener) {
    F->PC = static_cast<uint32_t>(SI - MBase);
    InstrCount = CountBase + static_cast<uint64_t>(Out - Buf);
    return static_cast<size_t>(Out - Buf);
  }
  SPEC_EMIT(SI, Out);
  ++Out;
  const uint64_t Value = SI->Src1 == kNoReg ? 0 : R[SI->Src1];
  InstrCount = CountBase + static_cast<uint64_t>(Out - Buf);
  if (!popFrame(Value)) {
    Halted = true;
    return static_cast<size_t>(Out - Buf); // The Ret itself still executed.
  }
  RefreshSpec();
  SPEC_DISPATCH();
}
L_Halt : {
  if (Listener) {
    F->PC = static_cast<uint32_t>(SI - MBase);
    InstrCount = CountBase + static_cast<uint64_t>(Out - Buf);
    return static_cast<size_t>(Out - Buf);
  }
  SPEC_EMIT(SI, Out);
  ++Out;
  InstrCount = CountBase + static_cast<uint64_t>(Out - Buf);
  while (popFrame(0))
    ;
  Halted = true;
  return static_cast<size_t>(Out - Buf);
}

L_TrapInvalid:
  TrapK = TrapKind::InvalidOpcode;
  goto SpecTrap;
L_TrapOffEnd:
  TrapK = TrapKind::PcOutOfRange;
  goto SpecTrap;

// Fused pairs: one capacity check and one dispatch per two retired
// instructions. On insufficient capacity the head falls back to its
// single-op handler — the image keeps an interior entry per instruction,
// so the next batch resumes mid-group.
#define DYNACE_X(A, B)                                                       \
  L_F2_##A##_##B : {                                                         \
    if (OutEnd - Out < 2)                                                    \
      goto L_##A;                                                            \
    SPEC_STEP_##A(SI, Out);                                                  \
    SPEC_STEP_##B((SI + 1), (Out + 1));                                      \
    Out += 2;                                                                \
    SI += 2;                                                                 \
    SPEC_DISPATCH();                                                         \
  }
  DYNACE_SPEC_F2(DYNACE_X)
#undef DYNACE_X

// Fused (op, BrI) compare-branch pairs.
#define DYNACE_X(A)                                                          \
  L_F2B_##A : {                                                              \
    if (OutEnd - Out < 2)                                                    \
      goto L_##A;                                                            \
    SPEC_STEP_##A(SI, Out);                                                  \
    const SpecInst *S1 = SI + 1;                                             \
    DynInst *O1 = Out + 1;                                                   \
    const bool T = evalCond(static_cast<CondKind>(S1->Cond),                 \
                            static_cast<int64_t>(R[S1->Src1]), S1->Imm);     \
    O1->PC = S1->PC;                                                         \
    putEvt(O1, S1->EvtA | (T ? EvtBrTaken : EvtBrNot));                         \
    Out += 2;                                                                \
    SI = T ? MBase + S1->Alt : SI + 2;                                       \
    SPEC_DISPATCH();                                                         \
  }
  DYNACE_SPEC_F2B(DYNACE_X)
#undef DYNACE_X

// Fused triples.
#define DYNACE_X(A, B, C)                                                    \
  L_F3_##A##_##B##_##C : {                                                   \
    if (OutEnd - Out < 3)                                                    \
      goto L_##A;                                                            \
    SPEC_STEP_##A(SI, Out);                                                  \
    SPEC_STEP_##B((SI + 1), (Out + 1));                                      \
    SPEC_STEP_##C((SI + 2), (Out + 2));                                      \
    Out += 3;                                                                \
    SI += 3;                                                                 \
    SPEC_DISPATCH();                                                         \
  }
  DYNACE_SPEC_F3(DYNACE_X)
#undef DYNACE_X

// Fused (op, op, BrI) triples.
#define DYNACE_X(A, B)                                                       \
  L_F3B_##A##_##B : {                                                        \
    if (OutEnd - Out < 3)                                                    \
      goto L_##A;                                                            \
    SPEC_STEP_##A(SI, Out);                                                  \
    SPEC_STEP_##B((SI + 1), (Out + 1));                                      \
    const SpecInst *S2 = SI + 2;                                             \
    DynInst *O2 = Out + 2;                                                   \
    const bool T = evalCond(static_cast<CondKind>(S2->Cond),                 \
                            static_cast<int64_t>(R[S2->Src1]), S2->Imm);     \
    O2->PC = S2->PC;                                                         \
    putEvt(O2, S2->EvtA | (T ? EvtBrTaken : EvtBrNot));                         \
    Out += 3;                                                                \
    SI = T ? MBase + S2->Alt : SI + 3;                                       \
    SPEC_DISPATCH();                                                         \
  }
  DYNACE_SPEC_F3B(DYNACE_X)
#undef DYNACE_X

// Unguarded single-op handlers (Unguarded images; proof-gated at build).
#define DYNACE_X(Op)                                                         \
  L_##Op##U : {                                                              \
    SPEC_STEP_##Op##U(SI, Out);                                              \
    ++Out;                                                                   \
    ++SI;                                                                    \
    SPEC_DISPATCH();                                                         \
  }
  DYNACE_SPEC_MEMU(DYNACE_X)
#undef DYNACE_X

// Div/Rem with a proven-nonzero divisor: the generic bodies minus the
// zero check (the proof says the trap arm is dead code here).
L_DivNZ : {
  R[SI->Dst] = static_cast<uint64_t>(static_cast<int64_t>(R[SI->Src1]) /
                                     static_cast<int64_t>(R[SI->Src2]));
  SPEC_EMIT(SI, Out);
  ++Out;
  ++SI;
  SPEC_DISPATCH();
}
L_RemNZ : {
  R[SI->Dst] = static_cast<uint64_t>(static_cast<int64_t>(R[SI->Src1]) %
                                     static_cast<int64_t>(R[SI->Src2]));
  SPEC_EMIT(SI, Out);
  ++Out;
  ++SI;
  SPEC_DISPATCH();
}

// Unguarded fused pairs. The capacity fallback targets the head's plain
// guarded single handler — correct on a proven address too, and the
// interior image entries keep their (possibly unguarded) single handlers
// for the re-entry.
#define DYNACE_X(A, B)                                                       \
  L_F2U_##A##_##B : {                                                        \
    if (OutEnd - Out < 2)                                                    \
      goto L_##A;                                                            \
    SPEC_STEP_##A##U(SI, Out);                                               \
    SPEC_STEP_##B##U((SI + 1), (Out + 1));                                   \
    Out += 2;                                                                \
    SI += 2;                                                                 \
    SPEC_DISPATCH();                                                         \
  }
  DYNACE_SPEC_F2U(DYNACE_X)
#undef DYNACE_X

// Unguarded (mem op, BrI) pairs.
#define DYNACE_X(A)                                                          \
  L_F2BU_##A : {                                                             \
    if (OutEnd - Out < 2)                                                    \
      goto L_##A;                                                            \
    SPEC_STEP_##A##U(SI, Out);                                               \
    const SpecInst *S1 = SI + 1;                                             \
    DynInst *O1 = Out + 1;                                                   \
    const bool T = evalCond(static_cast<CondKind>(S1->Cond),                 \
                            static_cast<int64_t>(R[S1->Src1]), S1->Imm);     \
    O1->PC = S1->PC;                                                         \
    putEvt(O1, S1->EvtA | (T ? EvtBrTaken : EvtBrNot));                         \
    Out += 2;                                                                \
    SI = T ? MBase + S1->Alt : SI + 2;                                       \
    SPEC_DISPATCH();                                                         \
  }
  DYNACE_SPEC_F2BU(DYNACE_X)
#undef DYNACE_X

// Unguarded fused triples.
#define DYNACE_X(A, B, C)                                                    \
  L_F3U_##A##_##B##_##C : {                                                  \
    if (OutEnd - Out < 3)                                                    \
      goto L_##A;                                                            \
    SPEC_STEP_##A##U(SI, Out);                                               \
    SPEC_STEP_##B##U((SI + 1), (Out + 1));                                   \
    SPEC_STEP_##C##U((SI + 2), (Out + 2));                                   \
    Out += 3;                                                                \
    SI += 3;                                                                 \
    SPEC_DISPATCH();                                                         \
  }
  DYNACE_SPEC_F3U(DYNACE_X)
#undef DYNACE_X

// Unguarded (op, op, BrI) triples.
#define DYNACE_X(A, B)                                                       \
  L_F3BU_##A##_##B : {                                                       \
    if (OutEnd - Out < 3)                                                    \
      goto L_##A;                                                            \
    SPEC_STEP_##A##U(SI, Out);                                               \
    SPEC_STEP_##B##U((SI + 1), (Out + 1));                                   \
    const SpecInst *S2 = SI + 2;                                             \
    DynInst *O2 = Out + 2;                                                   \
    const bool T = evalCond(static_cast<CondKind>(S2->Cond),                 \
                            static_cast<int64_t>(R[S2->Src1]), S2->Imm);     \
    O2->PC = S2->PC;                                                         \
    putEvt(O2, S2->EvtA | (T ? EvtBrTaken : EvtBrNot));                         \
    Out += 3;                                                                \
    SI = T ? MBase + S2->Alt : SI + 3;                                       \
    SPEC_DISPATCH();                                                         \
  }
  DYNACE_SPEC_F3BU(DYNACE_X)
#undef DYNACE_X

SpecTrap : {
  const uint32_t PcIdx = static_cast<uint32_t>(SI - MBase);
  F->PC = PcIdx;
  InstrCount = CountBase + static_cast<uint64_t>(Out - Buf);
  raiseTrap(TrapK, F->Id, PcIdx);
  return static_cast<size_t>(Out - Buf);
}

SpecDone:
  F->PC = static_cast<uint32_t>(SI - MBase);
  InstrCount = CountBase + static_cast<uint64_t>(Out - Buf);
  return static_cast<size_t>(Out - Buf);

#undef SPEC_EMIT
#undef SPEC_DISPATCH
#undef SPEC_BR_TAIL
#undef DYNACE_SPEC_PLAIN
}
