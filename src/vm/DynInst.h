//===- vm/DynInst.h - Dynamic instruction event -----------------*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// \c DynInst is the event the VM emits for every executed bytecode; it is
/// the interface between the VM and the microarchitecture simulator (the
/// analogue of Dynamic SimpleScalar's decoded-instruction stream).
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_VM_DYNINST_H
#define DYNACE_VM_DYNINST_H

#include "isa/Opcode.h"

#include <cstdint>

namespace dynace {

/// One executed dynamic instruction.
///
/// Two producer contracts exist:
///  * Interpreter::step() fully initializes every field (tests and tools
///    may rely on Target and on zeroed MemAddr for non-memory ops);
///  * Interpreter::stepBatch() writes only what the timing model reads —
///    PC, Class, Dst, Src1, Src2, IsCondBranch always; MemAddr for loads
///    and stores; Taken for conditional branches. Target and the remaining
///    fields keep whatever the buffer previously held.
/// Consumers on the hot path (Core, BbvManager) must therefore not read
/// Target, nor MemAddr/Taken outside their validity classes.
/// Kept to 24 bytes — the 1024-entry batch buffer is resident in the host
/// L1 on every step/consume round trip, so every byte here is paid twice
/// per simulated instruction.
struct DynInst {
  /// Effective byte address for loads/stores; 0 otherwise.
  uint64_t MemAddr = 0;
  /// Byte address of the instruction (instruction-cache address).
  /// uint32_t: code addresses start at kCodeBase (2^30) and programs are
  /// far smaller than the remaining 3 GiB of that space.
  uint32_t PC = 0;
  /// Byte address of the branch/jump target when control transferred
  /// (uint32_t for the same reason as PC).
  uint32_t Target = 0;
  /// Timing class.
  OpClass Class = OpClass::IntAlu;
  /// Destination register; kNoReg when none. Register ids are the frame's
  /// virtual registers; the timing model treats them as architectural names.
  uint8_t Dst = 0xff;
  uint8_t Src1 = 0xff;
  uint8_t Src2 = 0xff;
  /// True for conditional branches.
  bool IsCondBranch = false;
  /// Branch outcome (conditional branches only).
  bool Taken = false;
};

static_assert(sizeof(DynInst) <= 24, "DynInst grew; the batch buffer pays "
                                     "for every byte twice per instruction");

} // namespace dynace

#endif // DYNACE_VM_DYNINST_H
